package allocgate

import (
	"sync"
	"testing"

	"repro/internal/analysis/allocbudget"
	"repro/internal/server"
	"repro/internal/sketch"
	_ "repro/internal/sketch/kinds"
	"repro/internal/wal"
)

// Gate-sized configuration: small sketches, a modest distinct-label
// set, warmed before measurement so steady-state growth (amortized
// sites) has already happened.
const (
	gateEps    = 0.5
	gateSeed   = 42
	gateLabels = 64
	gateRuns   = 50
)

var (
	loadOnce sync.Once
	loadSet  *allocbudget.Set
	loadErr  error
)

// budgets harvests the allocflow summaries once per test binary: it
// re-runs the analyzer over the module, so the licensed ceilings are
// always those of the tree under test, never a stale artifact.
func budgets(t *testing.T) *allocbudget.Set {
	t.Helper()
	loadOnce.Do(func() {
		loadSet, loadErr = allocbudget.Load(".",
			"./internal/server", "./internal/wal", "./internal/sketch/...",
			"./internal/core", "./internal/exact", "./internal/window")
	})
	if loadErr != nil {
		t.Fatalf("harvesting allocflow summaries: %v", loadErr)
	}
	return loadSet
}

// mustBeBounded lists the paths whose static boundedness is
// ratcheted: these are bounded today, and a change that reintroduces
// an unlicensed allocation or dynamic call on one of them fails here
// (an unbounded path only logs otherwise, since the numeric gate has
// nothing to compare against).
var mustBeBounded = map[string]bool{
	"gt/process": true, "exact/process": true, "ams/process": true,
	"bjkst/process": true, "fm/process": true, "kmv/process": true,
	"hll/process": true, "window/process": true,
	"gt/merge": true, "exact/merge": true, "ams/merge": true,
	"bjkst/merge": true, "fm/merge": true, "kmv/merge": true, "hll/merge": true,
	"gt/decode": true, "exact/decode": true, "ams/decode": true,
	"bjkst/decode": true, "fm/decode": true, "kmv/decode": true,
	"hll/decode": true, "window/decode": true,
	"gt/absorb": true, "exact/absorb": true, "ams/absorb": true,
	"bjkst/absorb": true, "fm/absorb": true, "kmv/absorb": true,
	"hll/absorb": true,
	// window/merge and window/absorb stay unbounded by design:
	// window.mergeLevel rebuilds per-level samples on every merge.
	"wal/append": true,
}

// gate compares one observed AllocsPerRun figure against the path's
// licensed ceiling. Unbounded paths are logged (and ratchet-checked);
// bounded paths fail when the runtime out-allocates the license.
func gate(t *testing.T, set *allocbudget.Set, name string, p allocbudget.Path, perRun int, f func()) {
	t.Helper()
	res := set.Eval(p)
	if !res.Bounded {
		t.Logf("%s: statically unbounded (no numeric gate): %v", name, res.Blockers)
		if mustBeBounded[name] {
			t.Errorf("%s: must stay statically bounded, blockers: %v", name, res.Blockers)
		}
		return
	}
	budget := float64(res.Ceiling * perRun)
	observed := testing.AllocsPerRun(gateRuns, f)
	t.Logf("%s: observed %.1f allocs/run, licensed %d (ceiling %d × %d ops)",
		name, observed, res.Ceiling*perRun, res.Ceiling, perRun)
	if observed > budget {
		t.Errorf("%s: observed %.1f allocs/run exceeds the licensed ceiling %d — either the summaries under-count (fix allocflow) or the path grew an allocation (hoist or annotate it)",
			name, observed, res.Ceiling*perRun)
	}
}

// newWarm builds a sketch of the kind and feeds it the gate label
// set, so capacity growth is behind it.
func newWarm(t *testing.T, info sketch.KindInfo) sketch.Sketch {
	t.Helper()
	s := info.New(gateEps, gateSeed)
	for l := uint64(0); l < gateLabels; l++ {
		s.Process(l)
	}
	return s
}

// TestHotPathAllocSummaries is the runtime cross-check of the
// allocflow analyzer: for every registered kind it drives the
// Process, Merge, envelope-decode, coordinator-absorb, and WAL-append
// paths under testing.AllocsPerRun and fails if observed allocations
// exceed the malloc ceiling the kind's summaries license.
func TestHotPathAllocSummaries(t *testing.T) {
	if testing.Short() {
		t.Skip("harvesting summaries re-analyzes the module; skipped in -short")
	}
	set := budgets(t)

	for _, kind := range allocbudget.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			info, ok := sketch.LookupName(kind)
			if !ok {
				t.Fatalf("kind %q not registered", kind)
			}

			t.Run("process", func(t *testing.T) {
				p, _ := allocbudget.ProcessPath(kind)
				s := newWarm(t, info)
				gate(t, set, kind+"/process", p, gateLabels, func() {
					for l := uint64(0); l < gateLabels; l++ {
						s.Process(l)
					}
				})
			})

			t.Run("merge", func(t *testing.T) {
				p, _ := allocbudget.MergePath(kind)
				a, b := newWarm(t, info), newWarm(t, info)
				if err := a.Merge(b); err != nil { // warm: reach merge steady state
					t.Fatalf("warm merge: %v", err)
				}
				gate(t, set, kind+"/merge", p, 1, func() {
					if err := a.Merge(b); err != nil {
						t.Fatalf("merge: %v", err)
					}
				})
			})

			t.Run("decode", func(t *testing.T) {
				p, _ := allocbudget.DecodePath(kind)
				env, err := sketch.Envelope(newWarm(t, info))
				if err != nil {
					t.Fatalf("envelope: %v", err)
				}
				gate(t, set, kind+"/decode", p, 1, func() {
					if _, err := sketch.Open(env); err != nil {
						t.Fatalf("open: %v", err)
					}
				})
			})

			t.Run("absorb", func(t *testing.T) {
				p, _ := allocbudget.AbsorbPath(kind)
				env, err := sketch.Envelope(newWarm(t, info))
				if err != nil {
					t.Fatalf("envelope: %v", err)
				}
				srv := server.New(server.Config{Workers: 1})
				if err := srv.Absorb(env); err != nil { // warm: create the group
					t.Fatalf("warm absorb: %v", err)
				}
				gate(t, set, kind+"/absorb", p, 1, func() {
					if err := srv.Absorb(env); err != nil {
						t.Fatalf("absorb: %v", err)
					}
				})
			})
		})
	}

	t.Run("wal/append", func(t *testing.T) {
		info, _ := sketch.LookupName("gt")
		env, err := sketch.Envelope(newWarm(t, info))
		if err != nil {
			t.Fatalf("envelope: %v", err)
		}
		// A huge segment keeps rotation (cold-annotated) out of the
		// measured runs; SyncNever keeps fsync policy out of them too.
		l, err := wal.Open(t.TempDir(), wal.Options{SegmentBytes: 1 << 40})
		if err != nil {
			t.Fatalf("wal open: %v", err)
		}
		defer l.Close()
		if _, err := l.Replay(func(string, []byte) error { return nil }); err != nil {
			t.Fatalf("wal replay: %v", err)
		}
		if err := l.AppendNamed("s", env); err != nil { // warm
			t.Fatalf("warm append: %v", err)
		}
		gate(t, set, "wal/append", allocbudget.WALAppendPath(), 1, func() {
			if err := l.AppendNamed("s", env); err != nil {
				t.Fatalf("append: %v", err)
			}
		})
	})
}
