// Package allocgate closes the loop between allocflow's static
// allocation summaries and the runtime: its test harvests the
// analyzer's AllocSummary facts through internal/analysis/allocbudget
// and drives every per-kind hot path — Process, Merge, envelope
// decode, the coordinator's absorb, the WAL append — under
// testing.AllocsPerRun, failing if observed allocations exceed what
// the summaries license. The static side anchors the benches (a
// summary gone unbounded is caught before a bench regresses); the
// runtime side anchors the static side (a summary that under-counts
// real allocations fails here, not silently).
package allocgate
