package wal_test

// Unit suite for the durability layer in isolation: append/replay
// round-trips, segment rotation, snapshot+prune, torn-tail truncation
// at Open, and the replay-before-append discipline. The server-level
// crash matrix (internal/server/recovery_test.go) exercises the same
// machinery end to end through failpoints.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sketch"
	"repro/internal/sketch/kmv"
	"repro/internal/wal"
	"repro/internal/wire"
)

// walEnvelopes builds n envelopes in n distinct kmv merge groups.
func walEnvelopes(t *testing.T, n int) [][]byte {
	t.Helper()
	envs := make([][]byte, n)
	for i := range envs {
		sk := kmv.New(4, uint64(7000+i))
		for x := uint64(0); x < 16; x++ {
			sk.Process(x*11 + uint64(i))
		}
		env, err := sketch.Envelope(sk)
		if err != nil {
			t.Fatal(err)
		}
		envs[i] = env
	}
	return envs
}

// openReplayed opens a log in dir and runs an empty-log replay so
// appends are allowed.
func openReplayed(t *testing.T, dir string, opts wal.Options) *wal.Log {
	t.Helper()
	l, err := wal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Replay(func(string, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	return l
}

// collect replays a fresh Open of dir and returns the envelopes in
// replay order.
func collect(t *testing.T, dir string, opts wal.Options) (*wal.Log, [][]byte, wal.ReplayStats) {
	t.Helper()
	l, err := wal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	st, err := l.Replay(func(_ string, env []byte) error {
		got = append(got, append([]byte(nil), env...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, got, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	envs := walEnvelopes(t, 8)
	l := openReplayed(t, dir, wal.Options{})
	for _, env := range envs {
		if err := l.Append(env); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, st := collect(t, dir, wal.Options{})
	defer l2.Close()
	if len(got) != len(envs) {
		t.Fatalf("replayed %d records, appended %d", len(got), len(envs))
	}
	for i := range envs {
		if !bytes.Equal(got[i], envs[i]) {
			t.Fatalf("record %d: replay differs from append", i)
		}
	}
	if st.Damaged {
		t.Fatalf("clean log reported damage in %s", st.DamagedFile)
	}
	if st.Records != int64(len(envs)) {
		t.Fatalf("ReplayStats.Records = %d, want %d", st.Records, len(envs))
	}
}

func TestAppendBeforeReplayRefused(t *testing.T) {
	l, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("x")); !errors.Is(err, wal.ErrNotReplayed) {
		t.Fatalf("append before replay: err = %v, want ErrNotReplayed", err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	envs := walEnvelopes(t, 12)
	// Rotate roughly every other record.
	opts := wal.Options{SegmentBytes: int64(2 * (len(envs[0]) + wire.HeaderSize))}
	l := openReplayed(t, dir, opts)
	for _, env := range envs {
		if err := l.Append(env); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Rotations == 0 {
		t.Fatalf("no rotations after %d appends with SegmentBytes=%d", len(envs), opts.SegmentBytes)
	}
	if st.LiveSegments < 2 {
		t.Fatalf("LiveSegments = %d after rotation", st.LiveSegments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay must stitch the segments back together in order.
	l2, got, _ := collect(t, dir, opts)
	defer l2.Close()
	if len(got) != len(envs) {
		t.Fatalf("replayed %d records across segments, appended %d", len(got), len(envs))
	}
	for i := range envs {
		if !bytes.Equal(got[i], envs[i]) {
			t.Fatalf("record %d out of order or damaged after rotation", i)
		}
	}
}

func TestSnapshotPrunesAndReplays(t *testing.T) {
	dir := t.TempDir()
	envs := walEnvelopes(t, 6)
	opts := wal.Options{SegmentBytes: int64(2 * (len(envs[0]) + wire.HeaderSize))}
	l := openReplayed(t, dir, opts)
	for _, env := range envs[:4] {
		if err := l.Append(env); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot "merged state" standing in for the first four records.
	cut := l.CurrentSegment()
	if err := l.Snapshot(cut, records(envs[:4])); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Snapshots != 1 || st.LastSnapshotGroups != 4 {
		t.Fatalf("snapshot stats = %+v", st)
	}
	if st.PrunedSegments == 0 {
		t.Fatalf("snapshot at cut %d pruned nothing (stats %+v)", cut, st)
	}
	// Tail records after the snapshot.
	for _, env := range envs[4:] {
		if err := l.Append(env); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, rst := collect(t, dir, opts)
	defer l2.Close()
	if rst.SnapshotGroups != 4 {
		t.Fatalf("replayed %d snapshot groups, want 4", rst.SnapshotGroups)
	}
	// Snapshot first, then the surviving tail; the tail may also
	// re-deliver pre-snapshot records from the cut segment — the
	// at-least-once overlap idempotent joins absorb. Every envelope we
	// appended must appear at least once.
	seen := make(map[string]bool, len(got))
	for _, env := range got {
		seen[string(env)] = true
	}
	for i, env := range envs {
		if !seen[string(env)] {
			t.Fatalf("record %d lost across snapshot+replay", i)
		}
	}
}

func TestSnapshotCutBehindLiveRefused(t *testing.T) {
	dir := t.TempDir()
	l := openReplayed(t, dir, wal.Options{})
	defer l.Close()
	if err := l.Snapshot(l.CurrentSegment(), nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(l.CurrentSegment()-1, nil); err == nil {
		t.Fatal("snapshot with a stale cut was accepted")
	}
}

func TestTornTailTruncatedAtOpen(t *testing.T) {
	dir := t.TempDir()
	envs := walEnvelopes(t, 3)
	l := openReplayed(t, dir, wal.Options{})
	for _, env := range envs {
		if err := l.Append(env); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record mid-frame, the shape a crash mid-append
	// leaves on disk.
	seg := onlySegment(t, dir)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, got, st := collect(t, dir, wal.Options{})
	defer l2.Close()
	if len(got) != len(envs)-1 {
		t.Fatalf("replayed %d records after torn tail, want %d", len(got), len(envs)-1)
	}
	if st.Damaged {
		t.Fatal("a truncated tail must be cut at Open, not reported as mid-log damage")
	}
	if l2.Stats().TruncatedTailBytes == 0 {
		t.Fatal("TruncatedTailBytes = 0 after torn-tail recovery")
	}
	// The log must accept appends right where the clean prefix ends.
	if err := l2.Append(envs[2]); err != nil {
		t.Fatal(err)
	}
}

func TestMidLogDamageStopsCleanly(t *testing.T) {
	dir := t.TempDir()
	envs := walEnvelopes(t, 4)
	l := openReplayed(t, dir, wal.Options{})
	for _, env := range envs {
		if err := l.Append(env); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload bit in the SECOND record: the CRC catches it, and
	// replay must deliver record 1 then stop — never interpreting the
	// damaged record or anything after it.
	seg := onlySegment(t, dir)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	rec := wire.HeaderSize + len(envs[0])
	b[rec+wire.HeaderSize+3] ^= 0x40
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, got, _ := collect(t, dir, wal.Options{})
	defer l2.Close()
	if len(got) != 1 || !bytes.Equal(got[0], envs[0]) {
		t.Fatalf("replayed %d records past mid-log damage, want exactly the first", len(got))
	}
	if l2.Stats().TruncatedTailBytes == 0 {
		t.Fatal("bit-flip damage reached replay instead of being truncated at Open")
	}
}

func TestCrashLeftoversCollectedAtOpen(t *testing.T) {
	dir := t.TempDir()
	envs := walEnvelopes(t, 2)
	l := openReplayed(t, dir, wal.Options{})
	for _, env := range envs {
		if err := l.Append(env); err != nil {
			t.Fatal(err)
		}
	}
	cut := l.CurrentSegment()
	if err := l.Snapshot(cut, records(envs)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant the debris a crash can leave: a half-written temp
	// snapshot, and a stale segment below the live cut (as if the
	// crash hit between rename and prune).
	if err := os.WriteFile(filepath.Join(dir, "snap-99999999.snap.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "wal-00000000.seg")
	if err := os.WriteFile(stale, wire.EncodeFrame(wire.MsgPush, envs[0]), 0o644); err != nil {
		t.Fatal(err)
	}

	l2, got, _ := collect(t, dir, wal.Options{})
	defer l2.Close()
	if len(got) < 2 {
		t.Fatalf("replayed %d records, want the 2 snapshot groups", len(got))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp snapshot %s survived Open", e.Name())
		}
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale pre-snapshot segment survived Open (err=%v)", err)
	}
}

func TestReplayTwiceRefused(t *testing.T) {
	l := openReplayed(t, t.TempDir(), wal.Options{})
	defer l.Close()
	if _, err := l.Replay(func(string, []byte) error { return nil }); err == nil {
		t.Fatal("second Replay on the same Log was accepted")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want wal.SyncPolicy
		ok   bool
	}{
		{"always", wal.SyncAlways, true},
		{"never", wal.SyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := wal.ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if s := wal.SyncAlways.String(); s != "always" {
		t.Errorf("SyncAlways.String() = %q", s)
	}
}

// onlySegment returns the path of the single segment file in dir.
func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one segment, got %v (err=%v)", matches, err)
	}
	return matches[0]
}

// records wraps plain envelopes as default-stream snapshot records.
func records(envs [][]byte) []wal.Record {
	out := make([]wal.Record, len(envs))
	for i, env := range envs {
		out[i] = wal.Record{Envelope: env}
	}
	return out
}
