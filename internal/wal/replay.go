package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/failpoint"
	"repro/internal/wire"
)

// DecodeSegment reads wire frames from r, calling fn with each
// record's stream name and sketch envelope, until the stream ends. It
// returns the number of records delivered and the byte offset of the
// last clean record boundary — the truncation point for a torn tail.
//
// A record is either a MsgPush frame (the pre-stream format; its
// stream is the default "") or a MsgPushNamed frame carrying an
// explicit stream name — so every log written before streams existed
// replays into the default stream unchanged.
//
// The error is nil when the stream ends cleanly between frames,
// satisfies errors.Is(err, ErrDamaged) on any structural damage (a
// torn or bit-flipped frame, a malformed named-push payload, or a
// frame of any other type — a segment never legitimately holds one),
// and is fn's error verbatim if fn rejects a record. fn is never
// called with bytes past the first damage: each record's CRC is
// verified before delivery.
//
// The function is pure with respect to the Log — FuzzWALReplay drives
// it directly with the wire fuzz corpus and mutated segments.
func DecodeSegment(r io.Reader, limit uint32, fn func(stream string, envelope []byte) error) (records, clean int64, err error) {
	for {
		t, payload, rerr := wire.ReadFrame(r, limit)
		if rerr != nil {
			if errors.Is(rerr, io.EOF) && !errors.Is(rerr, io.ErrUnexpectedEOF) {
				return records, clean, nil
			}
			return records, clean, fmt.Errorf("%w: record %d at offset %d: %w", ErrDamaged, records, clean, rerr)
		}
		var stream string
		envelope := payload
		switch t {
		case wire.MsgPush:
		case wire.MsgPushNamed:
			var perr error
			stream, envelope, perr = wire.DecodePushNamed(payload)
			if perr != nil {
				return records, clean, fmt.Errorf("%w: record %d at offset %d: %w", ErrDamaged, records, clean, perr)
			}
		default:
			return records, clean, fmt.Errorf("%w: record %d at offset %d: frame type %s in a wal segment", ErrDamaged, records, clean, t)
		}
		if ferr := fn(stream, envelope); ferr != nil {
			return records, clean, ferr
		}
		records++
		clean += int64(wire.HeaderSize + len(payload))
	}
}

// ReplayStats summarizes one recovery pass.
type ReplayStats struct {
	// SnapshotGroups is how many group envelopes the snapshot restored.
	SnapshotGroups int64
	// Records and Bytes count the segment records replayed after it.
	Records int64
	Bytes   int64
	// Damaged reports that replay hit a damaged record mid-log and
	// stopped cleanly at the boundary before it; DamagedFile names the
	// file. (The active segment's torn tail was already truncated at
	// Open and does not set this.) The server responds by snapshotting
	// immediately, which supersedes the unreadable suffix.
	Damaged     bool
	DamagedFile string
}

// Replay feeds every recovered record (stream name plus envelope) to
// fn, snapshot first (one merged envelope per group), then the
// surviving segments in order. It must run to completion before the
// first Append; until it has, Append refuses with ErrNotReplayed.
//
// A damaged record mid-log stops replay cleanly at the last good
// boundary (reported in ReplayStats, not as an error): everything
// before the damage is restored, nothing after it is interpreted. An
// error from fn or from the wal/replay failpoint aborts recovery —
// the coordinator refuses to serve rather than serve partial state.
func (l *Log) Replay(fn func(stream string, envelope []byte) error) (ReplayStats, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ReplayStats{}, ErrClosed
	}
	if l.replayed {
		l.mu.Unlock()
		return ReplayStats{}, errors.New("wal: replay ran twice")
	}
	l.mu.Unlock()

	var st ReplayStats
	if l.replaySnap != "" {
		n, err := l.replayFile(l.replaySnap, fn)
		st.SnapshotGroups = n
		if err != nil {
			if !errors.Is(err, ErrDamaged) {
				return st, err
			}
			// A damaged snapshot cannot be skipped — the segments it
			// superseded are gone — so restore what it held up to the
			// damage and stop; the immediate re-snapshot rewrites it.
			st.Damaged, st.DamagedFile = true, filepath.Base(l.replaySnap)
		}
		l.replayedGroups.Store(n)
	}
	if !st.Damaged {
		for _, idx := range l.replaySegs {
			path := filepath.Join(l.dir, segName(idx))
			n, err := l.replayFile(path, fn)
			st.Records += n
			if err != nil {
				if !errors.Is(err, ErrDamaged) {
					return st, err
				}
				st.Damaged, st.DamagedFile = true, segName(idx)
				break
			}
		}
	}

	l.mu.Lock()
	l.replayed = true
	l.mu.Unlock()
	l.replayedRecords.Store(st.Records)
	st.Bytes = l.replayedBytes.Load()
	return st, nil
}

// replayFile streams one snapshot or segment file through fn.
func (l *Log) replayFile(path string, fn func(stream string, envelope []byte) error) (int64, error) {
	if err := failpoint.Inject(failpoint.WALReplay); err != nil {
		return 0, fmt.Errorf("wal: replay %s: %w", filepath.Base(path), err)
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			// The active segment the Open scan listed but never wrote:
			// nothing to restore from it.
			return 0, nil
		}
		return 0, fmt.Errorf("wal: replay %s: %w", filepath.Base(path), err)
	}
	defer f.Close()
	records, _, derr := DecodeSegment(f, l.limit(), func(stream string, envelope []byte) error {
		l.replayedBytes.Add(int64(wire.HeaderSize + len(envelope)))
		return fn(stream, envelope)
	})
	return records, derr
}
