// Package wal is the coordinator's durability layer: a segmented
// append-only log of accepted sketch envelopes, plus periodic
// merged-state snapshots that let replay-on-boot rebuild every merge
// group a crash would otherwise lose.
//
// # Format
//
// A segment file (wal-NNNNNNNN.seg) is a sequence of ordinary wire
// frames — the same magic/version/CRC discipline the network speaks —
// each of type wire.MsgPush wrapping one self-describing sketch
// envelope (internal/sketch). Nothing about a record is WAL-specific:
// the bytes a site pushed are the bytes logged, so the wire decoder,
// its fuzz corpus, and its torn-frame semantics all apply verbatim. A
// snapshot file (snap-NNNNNNNN.snap) uses the identical framing, one
// record per merge group, holding the group's merged envelope.
//
// # Recovery model
//
// The log is at-least-once by construction: a crash between the
// append and the merge (or between a snapshot and its prune) leaves
// records that replay will apply again, and snapshots overlap the
// tail of the segment they cut. That is safe for exactly the reason
// the relay tier is safe — coordinated-sample merges are idempotent
// lattice joins, so replaying a record any number of times, in any
// interleaving with a snapshot that already covers it, converges to
// the same state. The recovery suites prove this by killing the
// coordinator at every wal/* failpoint and asserting the reboot is
// bit-identical to an uninterrupted control.
//
// A torn tail — the classic mid-append crash — is detected by the
// frame CRC and truncated at the last record boundary when the log
// reopens; replay stops cleanly at the first damaged record and never
// interprets bytes past it.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/failpoint"
	"repro/internal/wire"
)

// SyncPolicy says when appends reach stable storage.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs after every appended record: an acked push
	// survives an immediate power cut. The default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS: fastest, and an OS crash
	// may lose the most recent acked records (a process crash does
	// not). Replay idempotence makes the partial tail safe either way.
	SyncNever

	numSyncPolicies
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
	}
}

// ParseSyncPolicy maps the -wal-fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always or never)", s)
	}
}

// DefaultSegmentBytes is the rotation threshold when Options leaves it
// zero: small enough that a snapshot prunes quickly, large enough that
// rotation cost vanishes against fsync cost.
const DefaultSegmentBytes = 4 << 20

// Options parameterizes a Log. The zero value is a durable default:
// fsync on every append, 4 MiB segments, wire-default record limit.
type Options struct {
	// SegmentBytes rotates the active segment once it reaches this
	// size; <= 0 selects DefaultSegmentBytes.
	SegmentBytes int64
	// MaxRecordBytes bounds a decoded record's payload, exactly like
	// the wire listener's frame limit; 0 selects
	// wire.DefaultMaxPayload.
	MaxRecordBytes uint32
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
}

// Errors the log surfaces. ErrDamaged marks structural damage in a
// segment or snapshot (bad frame, CRC mismatch, truncation, foreign
// frame type); callers distinguish it from their own replay-callback
// errors with errors.Is.
var (
	ErrDamaged = errors.New("wal: damaged record")
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrNotReplayed reports an append before Replay ran: appending
	// ahead of recovery would interleave new records with unread old
	// ones, so the log refuses.
	ErrNotReplayed = errors.New("wal: append before replay")
)

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"
)

func segName(idx uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix) }

func snapName(cut uint64) string { return fmt.Sprintf("%s%08d%s", snapPrefix, cut, snapSuffix) }

// parseIndexed extracts the index from a "<prefix>NNN<suffix>" name.
func parseIndexed(name, prefix, suffix string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return 0, false
	}
	if rest, ok = strings.CutSuffix(rest, suffix); !ok {
		return 0, false
	}
	idx, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return idx, true
}

// Log is one coordinator's write-ahead log: an open active segment,
// the sealed segments behind it, and at most one live snapshot.
// Append and Snapshot are safe for concurrent use (Snapshot rounds
// themselves must be serialized by the caller, as the server's
// snapshot loop does); Replay must complete before the first Append.
type Log struct {
	dir  string
	opts Options

	mu sync.Mutex // guards: f, segBytes, liveSegs, replayed, closed
	f  *os.File
	// segBytes is the active segment's current size; liveSegs counts
	// segment files on disk.
	segBytes int64
	liveSegs int64
	replayed bool
	closed   bool

	// seg is the active segment index, snapSeg the live snapshot's cut
	// (0 = none); written under mu, read lock-free by Stats.
	seg     atomic.Uint64
	snapSeg atomic.Uint64

	// replaySegs and replaySnap are the recovery work list captured at
	// Open: the snapshot to load (empty = none) and the segment
	// indexes to replay after it, ascending.
	replaySegs []uint64
	replaySnap string

	// Counters, all atomics so /statsz never takes the append lock.
	appended        atomic.Int64
	appendedBytes   atomic.Int64
	fsyncs          atomic.Int64
	rotations       atomic.Int64
	snapshots       atomic.Int64
	snapGroups      atomic.Int64
	prunedSegs      atomic.Int64
	replayedGroups  atomic.Int64
	replayedRecords atomic.Int64
	replayedBytes   atomic.Int64
	truncatedTail   atomic.Int64
}

// Stats is a point-in-time snapshot of the log's counters, surfaced
// by the server's /statsz wal block.
type Stats struct {
	Dir                    string
	CurrentSegment         uint64
	LiveSegments           int64
	SnapshotSegment        uint64
	AppendedRecords        int64
	AppendedBytes          int64
	Fsyncs                 int64
	Rotations              int64
	Snapshots              int64
	LastSnapshotGroups     int64
	PrunedSegments         int64
	ReplayedSnapshotGroups int64
	ReplayedRecords        int64
	ReplayedBytes          int64
	TruncatedTailBytes     int64
}

// Stats returns the log's current counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	liveSegs := l.liveSegs
	l.mu.Unlock()
	return Stats{
		Dir:                    l.dir,
		CurrentSegment:         l.seg.Load(),
		LiveSegments:           liveSegs,
		SnapshotSegment:        l.snapSeg.Load(),
		AppendedRecords:        l.appended.Load(),
		AppendedBytes:          l.appendedBytes.Load(),
		Fsyncs:                 l.fsyncs.Load(),
		Rotations:              l.rotations.Load(),
		Snapshots:              l.snapshots.Load(),
		LastSnapshotGroups:     l.snapGroups.Load(),
		PrunedSegments:         l.prunedSegs.Load(),
		ReplayedSnapshotGroups: l.replayedGroups.Load(),
		ReplayedRecords:        l.replayedRecords.Load(),
		ReplayedBytes:          l.replayedBytes.Load(),
		TruncatedTailBytes:     l.truncatedTail.Load(),
	}
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// CurrentSegment returns the active segment's index. A snapshot built
// from state collected after this call covers every sealed segment
// below it (see Snapshot).
func (l *Log) CurrentSegment() uint64 { return l.seg.Load() }

func (l *Log) limit() uint32 {
	if l.opts.MaxRecordBytes == 0 {
		return wire.DefaultMaxPayload
	}
	return l.opts.MaxRecordBytes
}

func (l *Log) segmentBytes() int64 {
	if l.opts.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return l.opts.SegmentBytes
}

// Open opens (or creates) the log in dir: it discards temp files and
// files a finished snapshot superseded, truncates the active
// segment's torn tail at the last clean record boundary, and captures
// the recovery work list for Replay. The caller must run Replay
// before the first Append.
func Open(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{dir: dir, opts: opts}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	var segs []uint64
	var snapGen uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			// A half-written snapshot from a crash mid-write: the
			// rename never happened, so it covers nothing.
			os.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, segPrefix):
			if idx, ok := parseIndexed(name, segPrefix, segSuffix); ok {
				segs = append(segs, idx)
			}
		case strings.HasPrefix(name, snapPrefix):
			if gen, ok := parseIndexed(name, snapPrefix, snapSuffix); ok && gen > snapGen {
				snapGen = gen
			}
		}
	}
	// Drop what the live snapshot superseded — including leftovers
	// from a crash between a snapshot's rename and its prune.
	kept := segs[:0]
	for _, idx := range segs {
		if idx < snapGen {
			os.Remove(filepath.Join(dir, segName(idx)))
			continue
		}
		kept = append(kept, idx)
	}
	segs = kept
	for _, e := range entries {
		if gen, ok := parseIndexed(e.Name(), snapPrefix, snapSuffix); ok && gen < snapGen {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	// The active segment: the highest on disk (tail-truncated to its
	// clean prefix), or a fresh one right above the snapshot cut.
	var cur uint64
	if n := len(segs); n > 0 {
		cur = segs[n-1]
		if err := l.truncateTornTail(filepath.Join(dir, segName(cur))); err != nil {
			return nil, err
		}
	} else {
		cur = snapGen + 1
		segs = append(segs, cur)
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(cur)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}

	l.mu.Lock()
	l.f = f
	l.segBytes = st.Size()
	l.liveSegs = int64(len(segs))
	l.mu.Unlock()
	l.seg.Store(cur)
	l.snapSeg.Store(snapGen)
	l.replaySegs = segs
	if snapGen > 0 {
		l.replaySnap = filepath.Join(dir, snapName(snapGen))
	}
	return l, nil
}

// truncateTornTail cuts path back to its longest clean prefix of
// records — the recovery move for a crash mid-append.
func (l *Log) truncateTornTail(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: scanning tail: %w", err)
	}
	_, clean, derr := DecodeSegment(f, l.limit(), func(string, []byte) error { return nil })
	f.Close()
	if derr == nil {
		return nil
	}
	if !errors.Is(derr, ErrDamaged) {
		return derr
	}
	st, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("wal: scanning tail: %w", err)
	}
	if err := os.Truncate(path, clean); err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	l.truncatedTail.Add(st.Size() - clean)
	return nil
}

// Append logs one accepted envelope for the default (unnamed)
// stream, fsyncing per the sync policy and rotating a full segment.
// The coordinator calls it after validating a push and before merging
// or acking it: an error means the push must be refused (transiently),
// because an un-logged merge would not survive a crash the ack
// promised it would.
func (l *Log) Append(envelope []byte) error {
	return l.AppendNamed("", envelope)
}

// AppendNamed logs one accepted envelope for the given stream. The
// default stream ("") is written as a plain MsgPush frame —
// bit-identical to what every pre-stream log holds — so logs written
// by old coordinators and new ones carrying only default-stream
// traffic are interchangeable. Named records are MsgPushNamed frames.
//
// hotpath: called once per accepted push when the WAL is armed.
func (l *Log) AppendNamed(stream string, envelope []byte) error {
	if err := failpoint.Inject(failpoint.WALAppend); err != nil {
		// allocflow:cold a chaos-armed append failure refuses the push
		return fmt.Errorf("wal: append: %w", err)
	}
	var frame []byte
	if stream == "" {
		frame = wire.EncodeFrame(wire.MsgPush, envelope)
	} else {
		payload, err := wire.EncodePushNamed(stream, envelope)
		if err != nil {
			// allocflow:cold a bad stream name refuses the append outright
			return fmt.Errorf("wal: append: %w", err)
		}
		frame = wire.EncodeFrame(wire.MsgPushNamed, payload)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return ErrClosed
	case !l.replayed:
		return ErrNotReplayed
	}
	if _, err := l.f.Write(frame); err != nil {
		// allocflow:cold a failed write refuses the push; not the streaming path
		return fmt.Errorf("wal: append: %w", err)
	}
	l.segBytes += int64(len(frame))
	l.appended.Add(1)
	l.appendedBytes.Add(int64(len(frame)))
	if l.opts.Sync == SyncAlways {
		if err := failpoint.Inject(failpoint.WALFsync); err != nil {
			// allocflow:cold a chaos-armed fsync failure refuses the push
			return fmt.Errorf("wal: fsync: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			// allocflow:cold a failed fsync refuses the push; not the streaming path
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.fsyncs.Add(1)
	}
	if l.segBytes >= l.segmentBytes() {
		// Rotation failure is not an append failure: the record above
		// is already durable, so a failed rotation just leaves an
		// oversized segment for the next append to retry.
		// allocflow:cold rotation runs once per SegmentBytes of appends
		_ = l.rotateLocked()
	}
	return nil
}

// rotateLocked seals the active segment and opens the next one.
//
// locked: mu
func (l *Log) rotateLocked() error {
	if err := failpoint.Inject(failpoint.WALRotate); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	next := l.seg.Load() + 1
	nf, err := os.OpenFile(filepath.Join(l.dir, segName(next)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	// Seal the old segment: sync it so a sealed segment is always
	// durable regardless of policy, then move on.
	l.f.Sync()
	l.f.Close()
	l.f = nf
	l.segBytes = 0
	l.liveSegs++
	l.seg.Store(next)
	l.rotations.Add(1)
	l.syncDir()
	return nil
}

// syncDir fsyncs the log directory so renames and new segment files
// survive a crash. Best-effort: filesystems without directory sync
// still get the data-file syncs.
func (l *Log) syncDir() {
	if d, err := os.Open(l.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Close syncs and closes the active segment. It does not snapshot;
// the server's Shutdown does that first (and its Abort deliberately
// does not).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	l.f.Sync()
	err := l.f.Close()
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}
