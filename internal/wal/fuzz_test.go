package wal_test

// FuzzWALReplay drives the segment decoder and the full Open/Replay
// recovery path with arbitrary segment bytes: the decoder must never
// panic, must stop cleanly at the first damaged record (classifying it
// ErrDamaged, never a bare io.EOF), and the clean prefix it reports
// must re-decode byte-for-byte deterministically. The seed corpus is
// shared with internal/wire's FuzzWireDecode, plus composed segments
// with torn tails and flipped bits — the two shapes a crash actually
// leaves on disk. Explore further with
//
//	go test -fuzz=FuzzWALReplay ./internal/wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sketch"
	"repro/internal/sketch/kmv"
	"repro/internal/wal"
	"repro/internal/wire"
)

const fuzzLimit = 1 << 16

// wireCorpus loads internal/wire's seed corpus files (go test fuzz v1
// format, one []byte("...") line per file).
func wireCorpus(f *testing.F) [][]byte {
	f.Helper()
	dir := filepath.Join("..", "wire", "testdata", "fuzz", "FuzzWireDecode")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("shared corpus missing: %v", err)
	}
	var out [][]byte
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "[]byte(") || !strings.HasSuffix(line, ")") {
				continue
			}
			s, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")"))
			if err != nil {
				f.Fatalf("%s: unquoting corpus line: %v", e.Name(), err)
			}
			out = append(out, []byte(s))
		}
	}
	if len(out) == 0 {
		f.Fatal("shared corpus parsed to zero seeds")
	}
	return out
}

// fuzzSegment composes a well-formed 3-record segment the mutator can
// tear and flip from.
func fuzzSegment(f *testing.F) []byte {
	f.Helper()
	var seg []byte
	for i := 0; i < 3; i++ {
		sk := kmv.New(4, uint64(31000+i))
		for x := uint64(0); x < 12; x++ {
			sk.Process(x*13 + uint64(i))
		}
		env, err := sketch.Envelope(sk)
		if err != nil {
			f.Fatal(err)
		}
		seg = wire.AppendFrame(seg, wire.MsgPush, env)
	}
	return seg
}

func FuzzWALReplay(f *testing.F) {
	for _, seed := range wireCorpus(f) {
		f.Add(seed)
	}
	seg := fuzzSegment(f)
	f.Add(seg)
	f.Add(seg[:len(seg)-7])        // torn tail, mid-record
	f.Add(seg[:wire.HeaderSize/2]) // torn tail, mid-header
	flipped := append([]byte(nil), seg...)
	flipped[wire.HeaderSize+5] ^= 0x20 // payload bit flip in record 1
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decoder invariants on the raw bytes.
		var records int64
		n, clean, err := wal.DecodeSegment(bytes.NewReader(data), fuzzLimit, func(_ string, env []byte) error {
			records++
			return nil
		})
		if n != records {
			t.Fatalf("reported %d records, delivered %d", n, records)
		}
		if clean < 0 || clean > int64(len(data)) {
			t.Fatalf("clean offset %d outside [0, %d]", clean, len(data))
		}
		if err != nil && !errors.Is(err, wal.ErrDamaged) {
			t.Fatalf("decode error not classified as damage: %v", err)
		}
		if err != nil && errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("damage error satisfies bare io.EOF: %v", err)
		}

		// The clean prefix must re-decode deterministically and fully.
		n2, clean2, err2 := wal.DecodeSegment(bytes.NewReader(data[:clean]), fuzzLimit, func(string, []byte) error { return nil })
		if err2 != nil {
			t.Fatalf("clean prefix re-decode failed: %v", err2)
		}
		if n2 != n || clean2 != clean {
			t.Fatalf("clean prefix re-decode gave (%d, %d), first pass gave (%d, %d)", n2, clean2, n, clean)
		}

		// End to end: the same bytes planted as a live segment must
		// boot. Open truncates the torn tail; Replay surfaces mid-log
		// damage as a stat, not an error; appends work afterwards.
		dir := t.TempDir()
		if werr := os.WriteFile(filepath.Join(dir, "wal-00000001.seg"), data, 0o644); werr != nil {
			t.Fatal(werr)
		}
		l, oerr := wal.Open(dir, wal.Options{MaxRecordBytes: fuzzLimit})
		if oerr != nil {
			t.Fatalf("Open on fuzzed segment: %v", oerr)
		}
		defer l.Close()
		var replayed int64
		st, rerr := l.Replay(func(_ string, env []byte) error {
			replayed++
			return nil
		})
		if rerr != nil {
			t.Fatalf("Replay on fuzzed segment: %v", rerr)
		}
		if st.Records != replayed {
			t.Fatalf("replay stats report %d records, delivered %d", st.Records, replayed)
		}
		if !st.Damaged && replayed != n {
			t.Fatalf("undamaged replay delivered %d records, decoder saw %d", replayed, n)
		}
		sk := kmv.New(4, 777)
		sk.Process(42)
		env, eerr := sketch.Envelope(sk)
		if eerr != nil {
			t.Fatal(eerr)
		}
		if aerr := l.Append(env); aerr != nil {
			t.Fatalf("append after fuzzed replay: %v", aerr)
		}
	})
}
