package wal

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/failpoint"
	"repro/internal/wire"
)

// Record is one WAL entry: a sketch envelope tagged with the stream
// it belongs to. The default stream is "".
type Record struct {
	Stream   string
	Envelope []byte
}

// Snapshot durably writes one merged record per group and prunes
// every segment below cut, the active segment index at the moment the
// caller collected that state (CurrentSegment). The caller guarantees
// the records cover every record in segments below cut — the
// server's seal barrier provides exactly that — while records still
// in flight to the active segment survive in it and replay after the
// snapshot, where idempotent joins absorb the overlap.
//
// Default-stream records are written as plain MsgPush frames (the
// pre-stream snapshot format, byte for byte); named records as
// MsgPushNamed frames.
//
// The write is atomic: records go to a temp file which is fsynced,
// renamed into place, and followed by a directory fsync. A crash at
// any point leaves either the old recovery state (temp files and
// stale snapshots are discarded at Open) or the new one — never a
// half-snapshot that prunes what it does not cover, because the prune
// happens strictly after the rename.
func (l *Log) Snapshot(cut uint64, records []Record) error {
	if err := failpoint.Inject(failpoint.WALSnapshot); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	l.mu.Lock()
	switch {
	case l.closed:
		l.mu.Unlock()
		return ErrClosed
	case !l.replayed:
		l.mu.Unlock()
		return ErrNotReplayed
	}
	l.mu.Unlock()
	if prev := l.snapSeg.Load(); cut < prev {
		return fmt.Errorf("wal: snapshot cut %d behind live snapshot %d", cut, prev)
	}

	final := filepath.Join(l.dir, snapName(cut))
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	for _, rec := range records {
		frame := wire.EncodeFrame(wire.MsgPush, rec.Envelope)
		if rec.Stream != "" {
			payload, perr := wire.EncodePushNamed(rec.Stream, rec.Envelope)
			if perr != nil {
				f.Close()
				os.Remove(tmp)
				return fmt.Errorf("wal: snapshot write: %w", perr)
			}
			frame = wire.EncodeFrame(wire.MsgPushNamed, payload)
		}
		if _, err := f.Write(frame); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("wal: snapshot write: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	l.syncDir()

	// The snapshot is live; everything it supersedes can go. A crash
	// from here on just leaves garbage for the next Open to collect.
	prev := l.snapSeg.Load()
	l.snapSeg.Store(cut)
	l.snapshots.Add(1)
	l.snapGroups.Store(int64(len(records)))
	if prev > 0 && prev != cut {
		os.Remove(filepath.Join(l.dir, snapName(prev)))
	}
	l.prune(cut)
	return nil
}

// prune removes segment files strictly below cut and updates the live
// segment count.
func (l *Log) prune(cut uint64) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	var pruned, live int64
	for _, e := range entries {
		idx, ok := parseIndexed(e.Name(), segPrefix, segSuffix)
		if !ok {
			continue
		}
		if idx < cut {
			if os.Remove(filepath.Join(l.dir, e.Name())) == nil {
				pruned++
				continue
			}
		}
		live++
	}
	l.prunedSegs.Add(pruned)
	l.mu.Lock()
	l.liveSegs = live
	l.mu.Unlock()
	l.syncDir()
}
