// Package estimate provides the measurement plumbing shared by the
// experiments: relative-error metrics, summary statistics over trial
// ensembles, and a parallel trial runner that spreads independent
// seeded trials across CPUs (each trial is a pure function of its
// seed, so parallel and serial runs produce identical ensembles).
package estimate

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// RelErr returns |est - truth| / truth. truth must be nonzero; a zero
// truth returns NaN for nonzero est and 0 for est == 0, so degenerate
// cases surface rather than divide-by-zero panics.
func RelErr(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.NaN()
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// SignedRelErr returns (est - truth) / truth, preserving the direction
// of the error (overcounting is positive). Same zero-truth handling as
// RelErr.
func SignedRelErr(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.NaN()
	}
	return (est - truth) / truth
}

// Summary holds order statistics of a trial ensemble.
type Summary struct {
	N                int
	Mean, Stddev     float64
	Min, Max         float64
	Median, P90, P95 float64
	P99              float64
	FailureRate      float64 // fraction of trials exceeding the Fail threshold
	FailThreshold    float64 // the threshold FailureRate was computed against (0 = unset)
}

// Summarize computes a Summary over vals. If failThreshold > 0,
// FailureRate is the fraction of values strictly above it (the
// empirical δ for an ε-threshold).
func Summarize(vals []float64, failThreshold float64) Summary {
	s := Summary{N: len(vals), FailThreshold: failThreshold}
	if len(vals) == 0 {
		return s
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	failures := 0
	for _, v := range sorted {
		sum += v
		sumSq += v * v
		if failThreshold > 0 && v > failThreshold {
			failures++
		}
	}
	n := float64(len(sorted))
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance < 0 {
		variance = 0
	}
	s.Stddev = math.Sqrt(variance)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.90)
	s.P95 = Quantile(sorted, 0.95)
	s.P99 = Quantile(sorted, 0.99)
	if failThreshold > 0 {
		s.FailureRate = float64(failures) / n
	}
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// slice by linear interpolation. It panics on an empty slice or a q
// outside [0, 1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("estimate: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("estimate: quantile %v outside [0,1]", q))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// TrialFunc runs one independent trial from a seed and returns its
// measurement (typically a relative error). It must be a pure function
// of the seed.
type TrialFunc func(seed uint64) float64

// RunTrials executes n independent trials with seeds derived from
// baseSeed, in parallel across GOMAXPROCS workers, and returns the
// measurements indexed by trial. The output is identical to a serial
// run: trial i always uses the same derived seed and lands at index i.
func RunTrials(n int, baseSeed uint64, f TrialFunc) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var next int64
	var mu sync.Mutex
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(n) {
			return 0, false
		}
		i := int(next)
		next++
		return i, true
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				out[i] = f(trialSeed(baseSeed, i))
			}
		}()
	}
	wg.Wait()
	return out
}

// trialSeed derives the seed for trial i. Exposed to tests via
// TrialSeed.
func trialSeed(baseSeed uint64, i int) uint64 {
	x := baseSeed + 0x9e3779b97f4a7c15*uint64(i+1)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TrialSeed returns the seed RunTrials gives trial i under baseSeed,
// so callers can reproduce a single interesting trial.
func TrialSeed(baseSeed uint64, i int) uint64 { return trialSeed(baseSeed, i) }
