package estimate

import (
	"math"
	"testing"
)

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %v", got)
	}
	if got := RelErr(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %v", got)
	}
	if got := RelErr(0, 0); got != 0 {
		t.Errorf("RelErr(0,0) = %v", got)
	}
	if got := RelErr(5, 0); !math.IsNaN(got) {
		t.Errorf("RelErr(5,0) = %v, want NaN", got)
	}
}

func TestSignedRelErr(t *testing.T) {
	if got := SignedRelErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("over = %v", got)
	}
	if got := SignedRelErr(90, 100); math.Abs(got+0.1) > 1e-12 {
		t.Errorf("under = %v", got)
	}
	if got := SignedRelErr(0, 0); got != 0 {
		t.Errorf("SignedRelErr(0,0) = %v", got)
	}
	if !math.IsNaN(SignedRelErr(1, 0)) {
		t.Error("SignedRelErr(1,0) not NaN")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.875, 4.5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Errorf("single-element quantile = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty": func() { Quantile(nil, 0.5) },
		"q<0":   func() { Quantile([]float64{1}, -0.1) },
		"q>1":   func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSummarize(t *testing.T) {
	vals := []float64{0.05, 0.15, 0.10, 0.20, 0.30}
	s := Summarize(vals, 0.18)
	if s.N != 5 {
		t.Errorf("N = %d", s.N)
	}
	if math.Abs(s.Mean-0.16) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.Min != 0.05 || s.Max != 0.30 || s.Median != 0.15 {
		t.Errorf("order stats: %+v", s)
	}
	if math.Abs(s.FailureRate-0.4) > 1e-12 { // 0.20 and 0.30 exceed 0.18
		t.Errorf("FailureRate = %v", s.FailureRate)
	}
	if s.Stddev <= 0 {
		t.Errorf("Stddev = %v", s.Stddev)
	}
	// Summarize must not mutate input order.
	if vals[0] != 0.05 || vals[4] != 0.30 {
		t.Error("input mutated")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 0.1)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestSummarizeNoThreshold(t *testing.T) {
	s := Summarize([]float64{1, 2}, 0)
	if s.FailureRate != 0 || s.FailThreshold != 0 {
		t.Errorf("threshold-free summary: %+v", s)
	}
}

func TestRunTrialsDeterministicAndParallel(t *testing.T) {
	f := func(seed uint64) float64 { return float64(seed % 1000) }
	a := RunTrials(100, 42, f)
	b := RunTrials(100, 42, f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs across runs", i)
		}
		if a[i] != f(TrialSeed(42, i)) {
			t.Fatalf("trial %d seed mismatch", i)
		}
	}
	c := RunTrials(100, 43, f)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 10 {
		t.Errorf("base seeds 42/43 collided on %d/100 trials", same)
	}
}

func TestRunTrialsEdge(t *testing.T) {
	if got := RunTrials(0, 1, func(uint64) float64 { return 1 }); got != nil {
		t.Errorf("0 trials = %v", got)
	}
	if got := RunTrials(-5, 1, func(uint64) float64 { return 1 }); got != nil {
		t.Errorf("-5 trials = %v", got)
	}
	if got := RunTrials(1, 1, func(uint64) float64 { return 7 }); len(got) != 1 || got[0] != 7 {
		t.Errorf("1 trial = %v", got)
	}
}
