package cluster

import (
	"errors"
	"fmt"

	"repro/internal/failpoint"
)

// Group is one merge group's portable state: its identity plus the
// self-describing envelope of its merged sketch — exactly what
// server.(*Server).Snapshots returns and exactly what an ordinary site
// would push. Migration and relay both move groups in this form, so
// the receiving coordinator cannot tell a migrated group from a very
// well-informed site.
type Group struct {
	Key      GroupKey
	Envelope []byte
}

// Migration is the plan for moving one shard's groups after a ring
// membership change: which groups to re-push, and where.
type Migration struct {
	// Key identifies the group; Shard is its owner under the new ring.
	Key   GroupKey
	Shard int
}

// Plan computes the migrations for the groups a shard holds: every
// group whose owner under next differs from its owner under prev.
// Groups are returned in input order; Plan is pure so callers can
// compute it anywhere (the shard itself, an operator tool, a test)
// and get the same answer.
func Plan(groups []Group, prev, next *Ring) []Migration {
	var out []Migration
	for _, g := range groups {
		if was, now := prev.Owner(g.Key), next.Owner(g.Key); was != now {
			out = append(out, Migration{Key: g.Key, Shard: now})
		}
	}
	return out
}

// Migrate executes a plan: for each group whose owner changed from
// prev to next, it pushes the group's envelope to the new owner via
// push(shard, envelope). Because merges are idempotent, Migrate is
// safe to run twice, to race with live site pushes for the same
// groups, and to re-run after a partial failure — the new owner
// absorbs duplicates into the same fixpoint.
//
// Migrate attempts every group even after a failure and returns the
// number of groups successfully moved alongside the joined errors, so
// a caller can retry exactly the stragglers.
func Migrate(groups []Group, prev, next *Ring, push func(shard int, envelope []byte) error) (moved int, err error) {
	var errs []error
	for _, g := range groups {
		shard := next.Owner(g.Key)
		if prev.Owner(g.Key) == shard {
			continue
		}
		if ferr := failpoint.Inject(failpoint.ClusterMigrate); ferr != nil {
			errs = append(errs, fmt.Errorf("cluster: migrating group %s to shard %d: %w", g.Key, shard, ferr))
			continue
		}
		if perr := push(shard, g.Envelope); perr != nil {
			errs = append(errs, fmt.Errorf("cluster: migrating group %s to shard %d: %w", g.Key, shard, perr))
			continue
		}
		moved++
	}
	return moved, errors.Join(errs...)
}
