package cluster

import (
	"errors"
	"testing"

	"repro/internal/failpoint"
	"repro/internal/sketch"
)

// testKeys builds n distinct group keys spread over a few kinds, the
// way a real deployment's groups spread over backends and configs.
func testKeys(n int) []GroupKey {
	kinds := []sketch.Kind{sketch.KindGT, sketch.KindKMV, sketch.KindLogLog}
	keys := make([]GroupKey, n)
	for i := range keys {
		keys[i] = GroupKey{
			Kind:   kinds[i%len(kinds)],
			Digest: sketch.ConfigDigest(kinds[i%len(kinds)], uint64(i)),
		}
	}
	return keys
}

// TestRingDeterministic: equal (shards, vnodes, seed) must yield the
// identical assignment — the property that lets clients, shards, and
// tests share a ring by sharing three numbers.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(5, 64, 42)
	b := NewRing(5, 64, 42)
	for _, k := range testKeys(10_000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("group %s: owners differ between identically-built rings", k)
		}
	}
}

// TestRingSeedMatters: a different ring seed must shard the same
// group population differently (with overwhelming probability).
func TestRingSeedMatters(t *testing.T) {
	a := NewRing(4, 64, 1)
	b := NewRing(4, 64, 2)
	same := 0
	keys := testKeys(4096)
	for _, k := range keys {
		if a.Owner(k) == b.Owner(k) {
			same++
		}
	}
	// Independent uniform assignments agree ~1/4 of the time; total
	// agreement would mean the seed is ignored.
	if same == len(keys) {
		t.Fatalf("rings with different seeds assigned all %d groups identically", len(keys))
	}
}

// TestRingCoversAllShards: every shard must own a reasonable share of
// a large group population — no dead shards, no runaway imbalance.
func TestRingCoversAllShards(t *testing.T) {
	const shards = 3
	r := NewRing(shards, 0, 7)
	counts := make([]int, shards)
	keys := testKeys(30_000)
	for _, k := range keys {
		o := r.Owner(k)
		if o < 0 || o >= shards {
			t.Fatalf("group %s: owner %d outside [0,%d)", k, o, shards)
		}
		counts[o]++
	}
	for s, c := range counts {
		// Perfect balance is 10000 per shard; with 64 vnodes the
		// spread stays well within a factor of two.
		if c < len(keys)/shards/2 || c > len(keys)/shards*2 {
			t.Errorf("shard %d owns %d of %d groups — imbalance beyond 2x", s, c, len(keys))
		}
	}
}

// TestRingWithoutMovesOnlyDepartingGroups: removing a shard must
// reassign exactly the groups it owned; every other group keeps its
// owner. This is the consistent-hashing contract migration relies on
// to re-push only the dead shard's groups.
func TestRingWithoutMovesOnlyDepartingGroups(t *testing.T) {
	const dead = 1
	prev := NewRing(4, 64, 99)
	next := prev.Without(dead)
	moved, stayed := 0, 0
	for _, k := range testKeys(20_000) {
		was, now := prev.Owner(k), next.Owner(k)
		if was == dead {
			if now == dead {
				t.Fatalf("group %s still owned by removed shard %d", k, dead)
			}
			moved++
			continue
		}
		if was != now {
			t.Fatalf("group %s moved %d -> %d though shard %d was the one removed", k, was, now, dead)
		}
		stayed++
	}
	if moved == 0 {
		t.Fatal("removed shard owned no groups — test vacuous")
	}
	if got := next.Members(); len(got) != 3 {
		t.Fatalf("members after Without: %v", got)
	}
	t.Logf("membership change moved %d groups, kept %d", moved, stayed)
}

// TestRingWithoutIdempotent: removing an absent shard returns the
// ring unchanged.
func TestRingWithoutIdempotent(t *testing.T) {
	r := NewRing(3, 8, 1).Without(2)
	if r.Without(2) != r {
		t.Error("Without of an absent member built a new ring")
	}
}

// TestRingPanics: invalid constructions must fail loudly.
func TestRingPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero shards":    func() { NewRing(0, 8, 1) },
		"out of range":   func() { NewRing(2, 8, 1).Without(5) },
		"empty the ring": func() { NewRing(1, 8, 1).Without(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestRingOwnerOfMatchesOwner: the client-facing Router signature
// must agree with the typed one.
func TestRingOwnerOfMatchesOwner(t *testing.T) {
	r := NewRing(3, 16, 5)
	for _, k := range testKeys(1000) {
		if r.OwnerOf(uint8(k.Kind), k.Digest) != r.Owner(k) {
			t.Fatalf("OwnerOf disagrees with Owner for %s", k)
		}
	}
}

// TestMigrate: only groups owned by the removed shard are re-pushed,
// each to its new owner, and a failing push leaves the rest moving.
func TestMigrate(t *testing.T) {
	prev := NewRing(3, 64, 11)
	next := prev.Without(0)

	var groups []Group
	for i, k := range testKeys(300) {
		groups = append(groups, Group{Key: k, Envelope: []byte{byte(i)}})
	}

	pushed := map[int]int{}
	moved, err := Migrate(groups, prev, next, func(shard int, env []byte) error {
		if len(env) == 0 {
			t.Fatal("migration pushed an empty envelope")
		}
		pushed[shard]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := len(Plan(groups, prev, next))
	if moved != want || want == 0 {
		t.Fatalf("moved %d groups, plan says %d", moved, want)
	}
	if pushed[0] != 0 {
		t.Errorf("%d groups pushed to the removed shard", pushed[0])
	}

	// A push error must not abort the remaining migrations, and must
	// surface in the joined error.
	boom := errors.New("boom")
	calls := 0
	moved, err = Migrate(groups, prev, next, func(int, []byte) error {
		calls++
		if calls == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if moved != want-1 || calls != want {
		t.Fatalf("moved %d of %d with %d attempts after one failure", moved, want, calls)
	}
}

// TestMigrateFailpoint: the cluster/migrate site must gate each
// re-push, and an injected fault must leave the group unmoved but the
// run continuing — the at-least-once retry contract.
func TestMigrateFailpoint(t *testing.T) {
	prev := NewRing(2, 64, 13)
	next := prev.Without(1)
	var groups []Group
	for _, k := range testKeys(100) {
		groups = append(groups, Group{Key: k, Envelope: []byte{1}})
	}
	want := len(Plan(groups, prev, next))
	if want < 2 {
		t.Fatalf("plan too small (%d) for the test to bite", want)
	}

	injected := errors.New("injected")
	failpoint.Enable(failpoint.ClusterMigrate, failpoint.Times(1, injected))
	defer failpoint.Disable(failpoint.ClusterMigrate)

	moved, err := Migrate(groups, prev, next, func(int, []byte) error { return nil })
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if moved != want-1 {
		t.Fatalf("moved %d, want %d (one injected failure)", moved, want-1)
	}
	if failpoint.Hits(failpoint.ClusterMigrate) != int64(want) {
		t.Fatalf("failpoint hit %d times, want %d", failpoint.Hits(failpoint.ClusterMigrate), want)
	}

	// Retrying just the straggler converges: idempotent merges make
	// the duplicate-free bookkeeping unnecessary — re-running the
	// whole migration is also correct.
	failpoint.Disable(failpoint.ClusterMigrate)
	moved, err = Migrate(groups, prev, next, func(int, []byte) error { return nil })
	if err != nil || moved != want {
		t.Fatalf("re-run moved %d, err %v", moved, err)
	}
}
