// Package cluster implements the sharded, hierarchical aggregation
// tier on top of the single-coordinator referee: a deterministic
// consistent-hash ring that assigns merge groups — identified by the
// same (kind, config digest) pair the coordinator keys its groups on
// — to N unionstreamd shards, and the group-migration step a ring
// membership change requires.
//
// The whole tier leans on one fact, pinned bit-identical for every
// registered kind by the sketchtest conformance suite: sketch merges
// are commutative, associative, and idempotent. Any *tree* of
// coordinators therefore computes exactly the same merged state as a
// single coordinator absorbing every site message itself — shards
// merge their slice of the groups, relay their merged envelopes
// upstream as if they were ordinary sites, and the parent's groups
// converge to the single-coordinator fixpoint regardless of flush
// timing, duplicate deliveries, or the order shards push in. The
// distnet cluster suite asserts that equivalence byte for byte, at
// 10^5-group scale and under seeded fault schedules.
//
// The ring itself is a pure, deterministic function of (shard count,
// virtual-node count, seed): every participant — pushing clients,
// shards reporting ownership in /statsz, the migration planner — can
// derive the identical assignment locally with no coordination
// service, which is what keeps the data path zero-round-trip.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/hashing"
	"repro/internal/sketch"
)

// DefaultVirtualNodes is the per-shard virtual-node count when a
// Config leaves it zero. 64 points per shard keeps the expected load
// imbalance across a handful of shards within a few percent while the
// ring stays small enough to rebuild on every membership change.
const DefaultVirtualNodes = 64

// GroupKey identifies one merge group, exactly as the coordinator
// keys its group table: the logical stream the group belongs to (""
// for the default stream), a sketch kind, and its canonical config
// digest. Two envelopes land in the same group — and therefore on the
// same shard — exactly when they name the same stream and their
// sketches are merge-compatible.
type GroupKey struct {
	Stream string
	Kind   sketch.Kind
	Digest uint64
}

// String renders the key the way /statsz renders groups.
func (k GroupKey) String() string {
	if k.Stream == "" {
		return fmt.Sprintf("%s/%016x", k.Kind, k.Digest)
	}
	return fmt.Sprintf("%s:%s/%016x", k.Stream, k.Kind, k.Digest)
}

// point is one virtual node: a position on the 64-bit ring owned by a
// shard.
type point struct {
	pos   uint64
	shard int
}

// Ring is a deterministic consistent-hash ring over a fixed set of
// shard indices. Construct with NewRing; the zero value is not valid.
// A Ring is immutable and safe for concurrent use.
type Ring struct {
	shards int
	vnodes int
	seed   uint64
	// members[i] reports whether shard i is present. Rings built by
	// NewRing have every shard present; Without clears one.
	members []bool
	points  []point // sorted by pos
}

// NewRing builds a ring of `shards` shards (indices 0..shards-1),
// each contributing `vnodes` virtual nodes (<= 0 selects
// DefaultVirtualNodes), with every virtual-node position derived
// deterministically from seed. Equal (shards, vnodes, seed) always
// yields the identical assignment, on every machine — clients, shard
// daemons, and tests share the ring by sharing those three numbers.
func NewRing(shards, vnodes int, seed uint64) *Ring {
	if shards < 1 {
		panic(fmt.Sprintf("cluster: ring needs at least 1 shard, got %d", shards))
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	members := make([]bool, shards)
	for i := range members {
		members[i] = true
	}
	return build(shards, vnodes, seed, members)
}

// build assembles the sorted point list for the member shards.
func build(shards, vnodes int, seed uint64, members []bool) *Ring {
	r := &Ring{shards: shards, vnodes: vnodes, seed: seed, members: members}
	for s := 0; s < shards; s++ {
		if !members[s] {
			continue
		}
		// Each shard's virtual nodes come from a SplitMix64 stream
		// keyed by (seed, shard), so one shard's points do not depend
		// on how many other shards exist — the property that makes
		// membership change move only the departing shard's arcs.
		rng := hashing.NewSplitMix64(seed ^ (uint64(s)+1)*0x9E3779B97F4A7C15)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{pos: rng.Next(), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		// Position collisions (astronomically rare at 64 bits) break
		// ties by shard index so the ring stays deterministic.
		return a.shard < b.shard
	})
	return r
}

// Without returns a new ring with shard s removed — the membership
// change a shard death or decommission induces. Only groups whose
// owning arc belonged to s change owner (the consistent-hashing
// guarantee TestRingWithoutMovesOnlyDepartingGroups pins); everything
// else keeps its assignment, so migration re-pushes exactly the dead
// shard's groups.
func (r *Ring) Without(s int) *Ring {
	if s < 0 || s >= r.shards {
		panic(fmt.Sprintf("cluster: Without(%d) outside ring of %d shards", s, r.shards))
	}
	members := make([]bool, r.shards)
	copy(members, r.members)
	if !members[s] {
		return r
	}
	members[s] = false
	live := 0
	for _, m := range members {
		if m {
			live++
		}
	}
	if live == 0 {
		panic("cluster: Without would empty the ring")
	}
	return build(r.shards, r.vnodes, r.seed, members)
}

// Shards returns the ring's shard-index space (including removed
// members: indices are stable across membership changes).
func (r *Ring) Shards() int { return r.shards }

// Seed returns the ring seed.
func (r *Ring) Seed() uint64 { return r.seed }

// VirtualNodes returns the per-shard virtual-node count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Members returns the live shard indices in ascending order.
func (r *Ring) Members() []int {
	var out []int
	for i, m := range r.members {
		if m {
			out = append(out, i)
		}
	}
	return out
}

// streamHash folds a stream name into the key-hash pre-image. The
// default stream hashes to zero BY CONTRACT: a default-stream key's
// ring position is then bit-identical to the position the same
// (kind, digest) key had before streams existed, so upgrading a
// deployment to named streams moves no existing group.
func streamHash(s string) uint64 {
	if s == "" {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// keyHash maps a group key onto the ring's 64-bit space. The ring
// seed participates so distinct deployments shard the same group
// population differently; SplitMix64's finalizer scrambles the raw
// digest (which is itself an FNV hash, but of structured low-entropy
// fields) into a uniform position.
func (r *Ring) keyHash(key GroupKey) uint64 {
	return hashing.NewSplitMix64(r.seed ^ uint64(key.Kind)<<56 ^ key.Digest ^ streamHash(key.Stream)).Next()
}

// Owner returns the shard owning the group: the shard of the first
// virtual node at or clockwise of the key's ring position.
func (r *Ring) Owner(key GroupKey) int {
	h := r.keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the ring's first
	}
	return r.points[i].shard
}

// OwnerOf is Owner for a default-stream key with the fields unpacked;
// see OwnerOfGroup.
func (r *Ring) OwnerOf(kind uint8, digest uint64) int {
	return r.OwnerOfGroup("", kind, digest)
}

// OwnerOfGroup is Owner with the key unpacked — the signature the
// client-side Router interface uses, so a *Ring plugs straight into
// client.NewSharded without the client package importing this one.
// OwnerOfGroup("", k, d) == OwnerOf(k, d) exactly (streamHash pins the
// default stream to the pre-stream key space).
func (r *Ring) OwnerOfGroup(stream string, kind uint8, digest uint64) int {
	return r.Owner(GroupKey{Stream: stream, Kind: sketch.Kind(kind), Digest: digest})
}
