// Package analysis is a deliberately small, dependency-free skeleton
// of golang.org/x/tools/go/analysis: an Analyzer is a named check with
// a Run function over one type-checked package (a Pass), reporting
// Diagnostics that may carry mechanical SuggestedFixes.
//
// The repository vendors no third-party modules, so this package
// reimplements just the slice of the x/tools surface the unionlint
// analyzers need, keeping their code shaped so a future migration to
// the real framework is a find-and-replace. Drivers live in
// internal/analysis/driver (standalone + `go vet -vettool` modes) and
// internal/analysis/analysistest (golden tests).
//
// # Suppression
//
// Every analyzer honors one escape hatch: a comment of the form
//
//	// unionlint:allow <name>[,<name>...] [reason]
//
// on the offending line, or on the line directly above it, suppresses
// diagnostics from the named analyzers. Reasons are free text and
// strongly encouraged — the annotation is a reviewed exception, not an
// off switch.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags
	// (-<name>.<flag>), and unionlint:allow annotations.
	Name string
	// Doc is a one-paragraph description; the first line is the
	// summary shown by `unionlint -help`.
	Doc string
	// Flags holds analyzer-specific flags, registered by drivers under
	// the -<name>. prefix. Nil means no flags.
	Flags []*Flag
	// FactTypes lists one zero value per concrete Fact type the
	// analyzer exports or imports, so drivers can register them for
	// gob (de)serialization. Nil means the analyzer uses no facts.
	FactTypes []Fact
	// Run performs the check on one package.
	Run func(*Pass) error
}

// A Flag is one analyzer-specific string flag. (All unionlint analyzer
// flags are strings; a richer set is not needed.)
type Flag struct {
	Name  string // without the analyzer prefix
	Usage string
	Value string // default; drivers overwrite before Run
}

// Lookup returns the analyzer's flag with the given name, or nil.
func (a *Analyzer) Lookup(name string) *Flag {
	for _, f := range a.Flags {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers a diagnostic; drivers set it. Analyzers should
	// call Pass.Reportf / Pass.Report, which apply unionlint:allow
	// suppression before forwarding here.
	Report func(Diagnostic)

	// Facts is the driver's fact store view for this pass: exports
	// attach to this package, imports see the transitive imports. Nil
	// when the driver does not support facts; the Pass fact methods
	// (facts.go) degrade gracefully then.
	Facts FactContext

	allow map[allowKey]bool // lazily built unionlint:allow index
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional (NoPos)
	Message string
	// SuggestedFixes carries mechanical rewrites a driver may apply
	// (unionlint -fix).
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one self-contained rewrite.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces the source in [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Reportf reports a diagnostic at pos, subject to unionlint:allow
// suppression.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportDiag(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportDiag reports d unless an unionlint:allow comment suppresses it.
func (p *Pass) ReportDiag(d Diagnostic) {
	if p.Allowed(d.Pos) {
		return
	}
	p.Report(d)
}

// PkgPath returns the package's import path with any test-variant
// suffix ("pkg [pkg.test]") stripped, so scope regexps and baseline
// keys treat a package and its internal-test compilation alike.
func (p *Pass) PkgPath() string {
	path := p.Pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.File(pos).Name(), "_test.go")
}

// Inspect walks every file of the package in depth-first order,
// calling fn as ast.Inspect does.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

type allowKey struct {
	file string
	line int
	name string
}

// allowPrefix introduces a suppression comment.
const allowPrefix = "unionlint:allow"

// Allowed reports whether an `unionlint:allow <name>` comment for this
// pass's analyzer covers pos (same line, or the line above).
func (p *Pass) Allowed(pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	if p.allow == nil {
		p.allow = map[allowKey]bool{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					cp := p.Fset.Position(c.Pos())
					for _, n := range names {
						// The annotation covers its own line and the
						// following one, so it can trail the offending
						// code or sit on its own line above it.
						p.allow[allowKey{cp.Filename, cp.Line, n}] = true
						p.allow[allowKey{cp.Filename, cp.Line + 1, n}] = true
					}
				}
			}
		}
	}
	pp := p.Fset.Position(pos)
	return p.allow[allowKey{pp.Filename, pp.Line, p.Analyzer.Name}] ||
		p.allow[allowKey{pp.Filename, pp.Line, "all"}]
}

// parseAllow extracts the analyzer names from one comment's text if it
// is an unionlint:allow annotation.
func parseAllow(text string) ([]string, bool) {
	text = strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(text, "//"), "/*"))
	if !strings.HasPrefix(text, allowPrefix) {
		return nil, false
	}
	rest := strings.TrimSpace(text[len(allowPrefix):])
	// Names are the first whitespace-delimited field; anything after
	// is a free-text reason.
	field := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		field = rest[:i]
	}
	var names []string
	for _, n := range strings.Split(field, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}
