// Package wire exercises every declaration-side ackcontract failure:
// a missing annotation, a double annotation, an unknown class, and an
// aliased code value.
package wire

type AckCode uint8

const (
	// AckOK: accepted.
	// ackclass: success
	AckOK AckCode = iota
	// AckMissing has prose but no classification.
	AckMissing // want "ack code AckMissing has no // ackclass: annotation"
	// AckDouble cannot make up its mind.
	// ackclass: transient
	// ackclass: permanent
	AckDouble // want "ack code AckDouble is classified more than once"
	// AckWeird invents a category.
	// ackclass: sometimes
	AckWeird // want "ack code AckWeird has unknown ackclass \"sometimes\""
)

// AckAlias shadows AckOK's value.
// ackclass: permanent
const AckAlias AckCode = 0 // want "ack code AckAlias has the same value \\(0\\) as AckOK"
