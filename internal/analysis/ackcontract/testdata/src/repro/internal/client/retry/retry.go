// Package retry mirrors the real client's ackError/permanent pair,
// with two deliberate misclassifications and a default clause that
// swallows a transient code.
package retry

import (
	"errors"
	"fmt"

	"repro/internal/wire"
)

var (
	ErrVersionMismatch = errors.New("retry: version")
	ErrSeedMismatch    = errors.New("retry: seed")
	ErrRejected        = errors.New("retry: rejected")
	ErrFrameDamaged    = errors.New("retry: frame damaged")
)

// permanent reports whether err is a refusal retrying cannot fix.
func permanent(err error) bool {
	return errors.Is(err, ErrVersionMismatch) ||
		errors.Is(err, ErrSeedMismatch) ||
		errors.Is(err, ErrRejected)
}

func ackError(code wire.AckCode, detail string) error {
	switch code {
	case wire.AckOK:
		return nil
	case wire.AckVersionMismatch:
		return fmt.Errorf("%w: %s", ErrVersionMismatch, detail)
	case wire.AckSeedMismatch: // want "ack code AckSeedMismatch is declared permanent but is treated as transient"
		return fmt.Errorf("%w: %s", ErrFrameDamaged, detail)
	case wire.AckBadFrame: // want "ack code AckBadFrame is declared transient but is treated as permanent"
		return fmt.Errorf("%w: %s", ErrRejected, detail)
	default: // want "ack code AckError is declared transient but is treated as permanent by the default clause"
		return fmt.Errorf("%w: %s", ErrRejected, detail)
	}
}

var _ = ackError
