// Package nopermanent switches on ack codes without any permanent()
// classifier: the retry loop has no way to stop retrying refusals.
package nopermanent

import "repro/internal/wire"

func kind(code wire.AckCode) string {
	switch code { // want "no permanent\\(err\\) classifier in this package"
	case wire.AckOK:
		return "ok"
	}
	return "other"
}

var _ = kind
