// Package nodefault leaves declared ack codes both uncased and
// undefaulted: a new AckCode would be silently dropped.
package nodefault

import (
	"errors"
	"fmt"

	"repro/internal/wire"
)

var ErrRejected = errors.New("nodefault: rejected")

func permanent(err error) bool { return errors.Is(err, ErrRejected) }

func handle(code wire.AckCode) error {
	switch code { // want "ack code AckBadFrame \\(transient\\) is not handled by this switch and there is no default clause" "ack code AckCorrupt \\(permanent\\) is not handled" "ack code AckError \\(transient\\) is not handled"
	case wire.AckOK:
		return nil
	case wire.AckVersionMismatch, wire.AckSeedMismatch:
		return fmt.Errorf("%w: %s", ErrRejected, code)
	}
	return nil
}

var _, _ = handle, permanent
