// Package wire is a fully annotated stub of the real framing package:
// every AckCode carries exactly one ackclass line, so ackcontract has
// facts to check client packages against and nothing to report here.
package wire

// AckCode classifies the coordinator's response to a message.
type AckCode uint8

const (
	// AckOK: the message was absorbed.
	// ackclass: success
	AckOK AckCode = iota
	// AckVersionMismatch: the peer spoke a different protocol version.
	// ackclass: permanent
	AckVersionMismatch
	// AckSeedMismatch: incompatible coordination seed.
	// ackclass: permanent
	AckSeedMismatch
	// AckCorrupt: the payload failed sketch-level validation.
	// ackclass: permanent
	AckCorrupt
	// AckBadFrame: wire-level damage; the sender may retry.
	// ackclass: transient
	AckBadFrame
	// AckError: server-side failure; the message was not condemned.
	// ackclass: transient
	AckError

	numAckCodes
)

var _ = numAckCodes
