package ackcontract_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/ackcontract"
	"repro/internal/analysis/analysistest"
)

func testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestAckcontractDeclarations(t *testing.T) {
	analysistest.Run(t, testdata(t), ackcontract.Analyzer,
		"repro/internal/wire",
		"repro/bad/internal/wire",
	)
}

func TestAckcontractRetrySwitches(t *testing.T) {
	analysistest.Run(t, testdata(t), ackcontract.Analyzer,
		"repro/internal/client/retry",
		"repro/internal/client/nopermanent",
		"repro/internal/client/nodefault",
	)
}
