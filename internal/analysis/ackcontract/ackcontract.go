// Package ackcontract enforces the wire ack retry contract end to end:
//
//   - in internal/wire, every exported AckCode constant carries exactly
//     one `// ackclass: success|transient|permanent` line in its doc
//     comment (the machine-readable half of the prose that already
//     documents each code), and no two constants share a value; each
//     classification is exported as an object fact on the constant;
//   - in the client (scope flag), every switch over an AckCode maps
//     each code to a retry disposition consistent with its fact: a
//     permanent-fact code must resolve to a sentinel the package's
//     permanent() classifier recognizes, a transient-fact code must
//     not, and a success-fact code must return nil. Codes left to the
//     default clause are checked against the default's disposition,
//     so adding a new AckCode without deciding its retry behavior is
//     an analysis error, not a silent retry storm (or a silent
//     never-retry) discovered in a chaos run.
//
// The annotation lives with the constant and the enforcement lives
// with the retry loop, in different packages; the fact mechanism
// carries the classification across the package boundary.
package ackcontract

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Class is the object fact attached to each AckCode constant:
// "success", "transient", or "permanent".
type Class struct {
	Class string
}

// AFact marks Class as a fact type.
func (*Class) AFact() {}

var validClasses = map[string]bool{"success": true, "transient": true, "permanent": true}

var scopeFlag = &analysis.Flag{
	Name:  "scope",
	Usage: "regexp of import paths whose AckCode switches must agree with the ackclass facts",
	Value: `(^|/)internal/client(/|$)`,
}

// Analyzer is the ackcontract analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ackcontract",
	Doc: "require exactly one ackclass annotation per wire.AckCode and retry logic that " +
		"agrees with it (only transient codes may be retried)",
	Flags:     []*analysis.Flag{scopeFlag},
	FactTypes: []analysis.Fact{(*Class)(nil)},
	Run:       run,
}

func wirePath(path string) bool {
	return path == "internal/wire" || strings.HasSuffix(path, "/internal/wire")
}

func run(pass *analysis.Pass) error {
	if wirePath(pass.PkgPath()) {
		checkDeclarations(pass)
	}
	scope, err := regexp.Compile(scopeFlag.Value)
	if err != nil {
		return err
	}
	if scope.MatchString(pass.PkgPath()) {
		checkRetrySwitches(pass)
	}
	return nil
}

// checkDeclarations validates the ackclass annotations on AckCode
// constants and exports one Class fact per annotated constant.
func checkDeclarations(pass *analysis.Pass) {
	values := map[uint64]string{} // value → first constant name
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || !isNamed(obj.Type(), "AckCode") {
						continue
					}
					// Unexported bound sentinels (numAckCodes) are not
					// wire codes; they need no classification.
					if strings.HasPrefix(name.Name, "num") || strings.HasPrefix(name.Name, "max") {
						continue
					}
					if v, exact := constant.Uint64Val(obj.Val()); exact {
						if first, dup := values[v]; dup {
							pass.Reportf(name.Pos(),
								"ack code %s has the same value (%d) as %s; aliased codes make the transient/permanent classification ambiguous",
								name.Name, v, first)
						} else {
							values[v] = name.Name
						}
					}
					classes := ackclassLines(vs.Doc, gd.Doc)
					switch {
					case len(classes) == 0:
						pass.Reportf(name.Pos(),
							"ack code %s has no // ackclass: annotation; every wire code must be classified success, transient, or permanent",
							name.Name)
						continue
					case len(classes) > 1:
						pass.Reportf(name.Pos(),
							"ack code %s is classified more than once (%s); exactly one ackclass line is allowed",
							name.Name, strings.Join(classes, ", "))
						continue
					}
					class := classes[0]
					if !validClasses[class] {
						pass.Reportf(name.Pos(),
							"ack code %s has unknown ackclass %q (want success, transient, or permanent)",
							name.Name, class)
						continue
					}
					pass.ExportObjectFact(obj, &Class{Class: class})
				}
			}
		}
	}
}

// ackclassLines extracts the values of `ackclass:` lines from the
// spec's doc comment (falling back to the decl group's doc for
// one-spec declarations).
func ackclassLines(docs ...*ast.CommentGroup) []string {
	var out []string
	for _, doc := range docs {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "ackclass:"); ok {
				out = append(out, strings.TrimSpace(rest))
			}
		}
	}
	return out
}

// checkRetrySwitches finds switches over AckCode values and checks
// each clause's retry disposition against the codes' Class facts.
func checkRetrySwitches(pass *analysis.Pass) {
	permSet := permanentSentinels(pass)
	pass.Inspect(func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		tagType := pass.TypesInfo.Types[sw.Tag].Type
		if tagType == nil || !isAckCode(tagType) {
			return true
		}
		if permSet == nil {
			pass.Reportf(sw.Pos(),
				"switch on wire.AckCode but no permanent(err) classifier in this package; the retry loop cannot distinguish transient from permanent codes")
			return true
		}
		cased := map[string]bool{} // object paths handled by explicit cases
		var wirePkg *types.Package
		var defaultClause *ast.CaseClause
		for _, stmt := range sw.Body.List {
			clause, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			if clause.List == nil {
				defaultClause = clause
				continue
			}
			disp := clauseDisposition(pass, clause, permSet)
			for _, expr := range clause.List {
				obj := constObject(pass, expr)
				if obj == nil || !isAckCode(obj.Type()) {
					continue
				}
				wirePkg = obj.Pkg()
				if p, ok := analysis.ObjectPath(obj); ok {
					cased[p] = true
				}
				checkCode(pass, expr.Pos(), obj, disp, "")
			}
		}
		// Codes without an explicit case fall to the default clause
		// (or, with no default, are silently dropped — also an error).
		if wirePkg == nil {
			return true
		}
		defaultDisp := ""
		if defaultClause != nil {
			defaultDisp = clauseDisposition(pass, defaultClause, permSet)
		}
		for _, of := range pass.AllObjectFacts() {
			cf, ok := of.Fact.(*Class)
			if !ok || of.Path != analysis.TrimPkgPath(wirePkg.Path()) || cased[of.Object] {
				continue
			}
			if defaultClause == nil {
				pass.Reportf(sw.Pos(),
					"ack code %s (%s) is not handled by this switch and there is no default clause",
					of.Object, cf.Class)
				continue
			}
			obj := analysis.FindObject(wirePkg, of.Object)
			if obj == nil {
				continue
			}
			checkCode(pass, defaultClause.Pos(), obj, defaultDisp, " by the default clause")
		}
		return true
	})
}

// checkCode compares one code's fact against the disposition the
// clause handling it implements.
func checkCode(pass *analysis.Pass, pos token.Pos, obj types.Object, disp, via string) {
	var fact Class
	if !pass.ImportObjectFact(obj, &fact) {
		pass.Reportf(pos,
			"ack code %s has no ackclass fact; annotate it in the wire package so retry behavior is declared once",
			obj.Name())
		return
	}
	if disp == "" || disp == fact.Class {
		return
	}
	pass.Reportf(pos,
		"ack code %s is declared %s but is treated as %s%s; retry logic may only retry transient codes",
		obj.Name(), fact.Class, disp, via)
}

// clauseDisposition classifies what a case body does with the code:
// "permanent" if it surfaces a sentinel the permanent() classifier
// recognizes, "transient" if it surfaces any other package sentinel,
// "success" if it only returns nil, "" when undecidable.
func clauseDisposition(pass *analysis.Pass, clause *ast.CaseClause, permSet map[types.Object]bool) string {
	usesPermanent, usesOther, returnsNil := false, false, false
	for _, stmt := range clause.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[n]
				if obj == nil {
					return true
				}
				if v, ok := obj.(*types.Var); ok && isErrorVar(v) && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
					if permSet[obj] {
						usesPermanent = true
					} else if analysis.TrimPkgPath(obj.Pkg().Path()) == pass.PkgPath() {
						usesOther = true
					}
				}
			case *ast.ReturnStmt:
				if len(n.Results) == 1 {
					if id, ok := n.Results[0].(*ast.Ident); ok && id.Name == "nil" {
						returnsNil = true
					}
				}
			}
			return true
		})
	}
	switch {
	case usesPermanent:
		return "permanent"
	case usesOther:
		return "transient"
	case returnsNil:
		return "success"
	}
	return ""
}

// permanentSentinels finds the package's `func permanent(error) bool`
// classifier and returns the sentinel objects it matches with
// errors.Is. Nil means no classifier exists.
func permanentSentinels(pass *analysis.Pass) map[types.Object]bool {
	var body *ast.BlockStmt
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "permanent" || fd.Recv != nil {
				continue
			}
			ft := fd.Type
			if len(ft.Params.List) == 1 && ft.Results != nil && len(ft.Results.List) == 1 {
				body = fd.Body
			}
		}
	}
	if body == nil {
		return nil
	}
	set := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Is" {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "errors" {
			return true
		}
		var id *ast.Ident
		switch target := ast.Unparen(call.Args[1]).(type) {
		case *ast.Ident:
			id = target
		case *ast.SelectorExpr:
			id = target.Sel
		default:
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			set[obj] = true
		}
		return true
	})
	return set
}

// isAckCode reports whether t is (a pointer to) the named type
// AckCode declared in a wire package.
func isAckCode(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "AckCode" || named.Obj().Pkg() == nil {
		return false
	}
	return wirePath(named.Obj().Pkg().Path())
}

func isNamed(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// isErrorVar reports whether v has static type error.
func isErrorVar(v *types.Var) bool {
	return types.Identical(v.Type(), types.Universe.Lookup("error").Type())
}

// constObject resolves a case expression to its constant object.
func constObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}
