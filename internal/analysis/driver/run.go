package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Finding is one diagnostic located in file space.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Diag     analysis.Diagnostic
	Fset     *token.FileSet
}

// RunAnalyzers runs every analyzer over pkg and returns the findings.
// facts is the pass's fact store view (FactStore.View); nil disables
// facts, which only fact-free analyzers tolerate meaningfully.
func RunAnalyzers(pkg *Package, analyzers []*analysis.Analyzer, facts analysis.FactContext) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			Facts:     facts,
		}
		pass.Report = func(d analysis.Diagnostic) {
			out = append(out, Finding{
				Analyzer: a.Name,
				Pos:      pkg.Fset.Position(d.Pos),
				Diag:     d,
				Fset:     pkg.Fset,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
}

// PrintPlain writes findings one per line as "file:line:col: [name]
// message" — the format the vet front end relays and -summarize
// re-groups.
func PrintPlain(w io.Writer, fs []Finding) {
	for _, f := range fs {
		fmt.Fprintf(w, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Diag.Message)
	}
}

// PrintGrouped writes a per-analyzer summary: a header with the count
// for each analyzer that fired, then its findings as file:line lines.
func PrintGrouped(w io.Writer, fs []Finding) {
	byName := map[string][]Finding{}
	var names []string
	for _, f := range fs {
		if _, ok := byName[f.Analyzer]; !ok {
			names = append(names, f.Analyzer)
		}
		byName[f.Analyzer] = append(byName[f.Analyzer], f)
	}
	sort.Strings(names)
	for _, name := range names {
		group := byName[name]
		fmt.Fprintf(w, "-- %s: %d finding(s)\n", name, len(group))
		for _, f := range group {
			fmt.Fprintf(w, "   %s: %s\n", f.Pos, f.Diag.Message)
			for _, fix := range f.Diag.SuggestedFixes {
				fmt.Fprintf(w, "      fix available: %s (run unionlint -fix)\n", fix.Message)
			}
		}
	}
}

// jsonFinding is the -json wire shape: one object per diagnostic.
type jsonFinding struct {
	Analyzer string   `json:"analyzer"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Column   int      `json:"column"`
	Message  string   `json:"message"`
	Fixes    []string `json:"suggested_fixes,omitempty"`
}

// PrintJSON writes findings as JSON Lines — one object per diagnostic
// with analyzer, position, message, and any suggested-fix summaries —
// so CI can archive a machine-readable findings artifact.
func PrintJSON(w io.Writer, fs []Finding) error {
	enc := json.NewEncoder(w)
	for _, f := range fs {
		jf := jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Diag.Message,
		}
		for _, fix := range f.Diag.SuggestedFixes {
			jf.Fixes = append(jf.Fixes, fix.Message)
		}
		if err := enc.Encode(jf); err != nil {
			return err
		}
	}
	return nil
}

// Summarize reads plain "file:line:col: [name] message" lines (as
// emitted by the vet mode, possibly interleaved with go vet's own "#
// package" headers) and prints the grouped per-analyzer summary.
func Summarize(r io.Reader, w io.Writer) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	type line struct{ loc, name, msg string }
	byName := map[string][]line{}
	var names []string
	seen := map[string]bool{}
	for _, l := range strings.Split(string(data), "\n") {
		l = strings.TrimSpace(l)
		open := strings.Index(l, "[")
		end := strings.Index(l, "]")
		if open < 0 || end < open || !strings.HasSuffix(strings.TrimSpace(l[:open]), ":") {
			continue
		}
		name := l[open+1 : end]
		loc := strings.TrimSuffix(strings.TrimSpace(l[:open]), ":")
		msg := strings.TrimSpace(l[end+1:])
		key := loc + name + msg // vet analyzes test variants too; dedup
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, ok := byName[name]; !ok {
			names = append(names, name)
		}
		byName[name] = append(byName[name], line{loc, name, msg})
	}
	sort.Strings(names)
	total := 0
	for _, name := range names {
		group := byName[name]
		total += len(group)
		fmt.Fprintf(w, "-- %s: %d finding(s)\n", name, len(group))
		for _, l := range group {
			fmt.Fprintf(w, "   %s: %s\n", l.loc, l.msg)
		}
	}
	if total > 0 {
		fmt.Fprintf(w, "unionlint: %d finding(s) across %d analyzer(s)\n", total, len(names))
	}
	return nil
}

// edit is one byte-offset splice within a single file.
type edit struct {
	start, end int
	text       []byte
}

// collectEdits gathers every suggested-fix text edit from fs, grouped
// by filename and expressed as byte offsets.
func collectEdits(fs []Finding) map[string][]edit {
	perFile := map[string][]edit{}
	for _, f := range fs {
		for _, fix := range f.Diag.SuggestedFixes {
			for _, te := range fix.TextEdits {
				start := f.Fset.Position(te.Pos)
				end := f.Fset.Position(te.End)
				if start.Filename == "" || start.Filename != end.Filename {
					continue
				}
				perFile[start.Filename] = append(perFile[start.Filename],
					edit{start.Offset, end.Offset, te.NewText})
			}
		}
	}
	return perFile
}

// applyEdits splices edits into src, latest offsets first so earlier
// edits do not shift later ones; overlapping or out-of-range edits are
// skipped. It returns the new contents and the count applied.
func applyEdits(src []byte, edits []edit) ([]byte, int) {
	sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
	applied := 0
	prev := len(src) + 1
	for _, e := range edits {
		if e.end > prev || e.start > e.end || e.end > len(src) {
			continue // overlapping or out-of-range edit: skip
		}
		src = append(src[:e.start], append(append([]byte(nil), e.text...), src[e.end:]...)...)
		prev = e.start
		applied++
	}
	return src, applied
}

// FixedSources computes the result of applying every suggested fix in
// fs without touching disk: filename → new contents, only for files
// with at least one applied edit. Tests use it to check fix output
// (and re-run analysis over it) against golden files.
func FixedSources(fs []Finding) (map[string][]byte, int, error) {
	return FixedSourcesFrom(fs, nil)
}

// FixedSourcesFrom is FixedSources reading input from overlay first
// and disk second, so a test can apply fixes to already-fixed sources
// (the idempotency check) without writing them anywhere.
func FixedSourcesFrom(fs []Finding, overlay map[string][]byte) (map[string][]byte, int, error) {
	out := map[string][]byte{}
	applied := 0
	for name, edits := range collectEdits(fs) {
		src, ok := overlay[name]
		if !ok {
			var err error
			src, err = os.ReadFile(name)
			if err != nil {
				return nil, applied, err
			}
		}
		fixed, n := applyEdits(src, edits)
		if n > 0 {
			out[name] = fixed
			applied += n
		}
	}
	return out, applied, nil
}

// ApplyFixes applies every suggested fix carried by fs to the files on
// disk. It returns the number of edits applied.
func ApplyFixes(fs []Finding) (int, error) {
	fixed, applied, err := FixedSources(fs)
	if err != nil {
		return applied, err
	}
	for name, src := range fixed {
		if err := os.WriteFile(name, src, 0o644); err != nil {
			return applied, err
		}
	}
	return applied, nil
}
