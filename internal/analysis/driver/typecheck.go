// Package driver loads type-checked packages and runs unionlint
// analyzers over them. It offers two front ends over one core:
//
//   - RunVetUnit implements the `go vet -vettool` protocol: the go
//     command hands us one package at a time as a JSON config naming
//     source files and the compiler-produced export data of every
//     dependency.
//   - RunStandalone loads packages itself via `go list -deps -export`
//     and analyzes every package of the enclosing module, with
//     optional application of suggested fixes.
//
// Both reuse the compiler's export data for imports (no source
// re-typechecking of dependencies), which keeps a full-repo run well
// under a second after the build cache is warm.
package driver

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"
)

// ExportLookup resolves an import path to a reader of gc export data.
type ExportLookup func(path string) (io.ReadCloser, error)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Deps lists the transitive import paths of the package (from
	// `go list -deps`), used to scope fact visibility in the
	// standalone driver. Nil when the loader does not know.
	Deps []string
}

// ParseFiles parses the named Go files into fset, keeping comments
// (annotations and unionlint:allow suppressions live there).
func ParseFiles(fset *token.FileSet, filenames []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// TypeCheck type-checks files as package path, resolving imports
// through lookup. goVersion may be empty.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, lookup ExportLookup, goVersion string) (*Package, error) {
	imp := unsafeAware{importer.ForCompiler(fset, "gc", importer.Lookup(lookup))}
	return TypeCheckImporter(fset, path, files, imp, goVersion)
}

// TypeCheckImporter is TypeCheck with a caller-supplied types.Importer,
// for front ends (analysistest) that resolve some imports from source.
func TypeCheckImporter(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	if goVersion != "" && !strings.HasPrefix(goVersion, "go1.") && goVersion != "go1" {
		// go/types wants "go1.N"; ignore anything else (e.g. devel).
		goVersion = ""
	}
	cfg.GoVersion = goVersion
	pkg, err := cfg.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// unsafeAware short-circuits the magic "unsafe" package, which has no
// export data on disk.
type unsafeAware struct{ base types.Importer }

func (i unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.base.Import(path)
}

// FileLookup builds an ExportLookup over an importPath→exportFile map,
// with an optional importMap applied first (vet configs use it for
// vendoring and test-variant remapping).
func FileLookup(importMap, packageFile map[string]string) ExportLookup {
	return func(path string) (io.ReadCloser, error) {
		if canon, ok := importMap[path]; ok && canon != "" {
			path = canon
		}
		file, ok := packageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}
