package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listedPackage is the slice of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Deps       []string // transitive import paths
	Module     *struct{ Path, Dir string }
}

// GoList runs `go list -deps -export -json` for patterns in dir and
// decodes the package stream. Export data is compiled (from cache) as
// a side effect, so every dependency can be imported without source
// re-typechecking.
func GoList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Standard,Export,GoFiles,Deps,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			cmd.Wait()
			return nil, fmt.Errorf("go list: decoding output: %v (stderr: %s)", err, stderr.String())
		}
		pkgs = append(pkgs, &p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	return pkgs, nil
}

// ExportMap extracts importPath→exportFile from a listed package set.
func ExportMap(pkgs []*listedPackage) map[string]string {
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m
}

// LoadModulePackages loads, parses and type-checks every non-test
// package matched by patterns that belongs to the enclosing module
// (identified from dir's go.mod). Test compilations are covered by the
// `go vet -vettool` front end, which the go command feeds test
// variants natively.
//
// Packages come back in dependency order (every package after all of
// its imports) so a driver analyzing them in sequence sees facts from
// a package's imports before reaching the package itself; sorting by
// transitive-dep count achieves that, since an importer always has a
// strictly larger dependency closure than each of its imports.
func LoadModulePackages(dir string, patterns ...string) ([]*Package, error) {
	modRoot, modPath, err := FindModule(dir)
	if err != nil {
		return nil, err
	}
	listed, err := GoList(modRoot, patterns...)
	if err != nil {
		return nil, err
	}
	exports := ExportMap(listed)
	lookup := FileLookup(nil, exports)
	var inModule []*listedPackage
	for _, lp := range listed {
		if lp.Standard || lp.Module == nil || lp.Module.Path != modPath || len(lp.GoFiles) == 0 {
			continue
		}
		inModule = append(inModule, lp)
	}
	sort.SliceStable(inModule, func(i, j int) bool {
		return len(inModule[i].Deps) < len(inModule[j].Deps)
	})
	var out []*Package
	for _, lp := range inModule {
		fset := token.NewFileSet()
		var filenames []string
		for _, f := range lp.GoFiles {
			filenames = append(filenames, filepath.Join(lp.Dir, f))
		}
		files, err := ParseFiles(fset, filenames)
		if err != nil {
			return nil, err
		}
		pkg, err := TypeCheck(fset, lp.ImportPath, files, lookup, "")
		if err != nil {
			return nil, err
		}
		pkg.Deps = lp.Deps
		out = append(out, pkg)
	}
	return out, nil
}

// FindModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			return dir, modulePath(data), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range bytes.Split(gomod, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if rest, ok := bytes.CutPrefix(line, []byte("module")); ok {
			return string(bytes.Trim(bytes.TrimSpace(rest), `"`))
		}
	}
	return ""
}
