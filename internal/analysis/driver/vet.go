package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"

	"repro/internal/analysis"
)

// vetConfig mirrors the JSON configuration the go command writes for
// `go vet -vettool` tools (x/tools unitchecker.Config). Fields we do
// not consume are still listed so decoding stays strict-compatible.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements the `-V=full` handshake: the go command
// hashes this line into its action cache key, so it must change when
// the tool's behavior does — we hash the executable itself.
func PrintVersion(w io.Writer, progname string) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Fprintf(w, "%s version devel buildID=%s\n", progname, id)
}

// PrintFlagDefs implements the `-flags` handshake: a JSON array
// describing the tool's flags, which the go command splices into its
// own vet flag parsing so `go vet -vettool=... -<name>.<flag>=v` works.
func PrintFlagDefs(w io.Writer, analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []jsonFlag{}
	for _, a := range analyzers {
		for _, f := range a.Flags {
			defs = append(defs, jsonFlag{Name: a.Name + "." + f.Name, Usage: f.Usage})
		}
	}
	data, _ := json.Marshal(defs)
	fmt.Fprintf(w, "%s\n", data)
}

// RunVetUnit analyzes the single compilation unit described by the
// .cfg file, printing findings to stderr in plain form. Its exit-code
// contract matches x/tools unitchecker: 0 clean, nonzero otherwise
// (the go command relays stderr and fails the vet step).
func RunVetUnit(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unionlint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "unionlint: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts output to exist even though
	// unionlint's analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("unionlint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "unionlint: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// This package was only needed for facts; nothing to do.
		return 0
	}
	fset := token.NewFileSet()
	files, err := ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "unionlint: %v\n", err)
		return 1
	}
	pkg, err := TypeCheck(fset, cfg.ImportPath, files, FileLookup(cfg.ImportMap, cfg.PackageFile), cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "unionlint: %v\n", err)
		return 1
	}
	findings, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unionlint: %v\n", err)
		return 1
	}
	if len(findings) > 0 {
		PrintPlain(os.Stderr, findings)
		return 2
	}
	return 0
}
