package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"

	"repro/internal/analysis"
)

// vetConfig mirrors the JSON configuration the go command writes for
// `go vet -vettool` tools (x/tools unitchecker.Config). Fields we do
// not consume are still listed so decoding stays strict-compatible.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements the `-V=full` handshake: the go command
// hashes this line into its action cache key, so it must change when
// the tool's behavior does — we hash the executable itself.
func PrintVersion(w io.Writer, progname string) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Fprintf(w, "%s version devel buildID=%s\n", progname, id)
}

// PrintFlagDefs implements the `-flags` handshake: a JSON array
// describing the tool's flags, which the go command splices into its
// own vet flag parsing so `go vet -vettool=... -<name>.<flag>=v` works.
func PrintFlagDefs(w io.Writer, analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []jsonFlag{}
	for _, a := range analyzers {
		for _, f := range a.Flags {
			defs = append(defs, jsonFlag{Name: a.Name + "." + f.Name, Usage: f.Usage})
		}
	}
	data, _ := json.Marshal(defs)
	fmt.Fprintf(w, "%s\n", data)
}

// RunVetUnit analyzes the single compilation unit described by the
// .cfg file, printing findings to stderr in plain form. Its exit-code
// contract matches x/tools unitchecker: 0 clean, nonzero otherwise
// (the go command relays stderr and fails the vet step).
//
// Facts flow per the unitchecker protocol: the .vetx files of the
// unit's direct imports (cfg.PackageVetx) are merged into a fresh
// FactStore before analysis, and the store — now holding the imports'
// transitive facts plus this unit's exports — is written to
// cfg.VetxOutput for the go command to cache and feed to importers.
// VetxOnly units (needed only as dependencies) still run every
// analyzer so their facts exist, but their diagnostics are discarded.
func RunVetUnit(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unionlint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "unionlint: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}
	store := NewFactStore(analyzers)
	// The go command's cache invalidates .vetx files whenever this
	// tool's -V=full buildID changes, so any file present here was
	// written by this exact binary and must decode.
	for _, vetx := range cfg.PackageVetx {
		if err := store.ReadFile(vetx); err != nil {
			fmt.Fprintf(os.Stderr, "unionlint: %v\n", err)
			return 1
		}
	}
	// The go command requires the facts output to exist even when
	// analysis bails out (typecheck failure under
	// SucceedOnTypecheckFailure); writeFacts is called on every path.
	writeFacts := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := store.WriteFile(cfg.VetxOutput); err != nil {
			fmt.Fprintf(os.Stderr, "unionlint: writing facts: %v\n", err)
			return false
		}
		return true
	}
	// Standard-library units reach this tool only as dependencies
	// (VetxOnly), but none of our analyzers state invariants about the
	// standard library — its behavior is axiomatic in their models.
	// Analyzing it is not just wasted work, it is wrong: mergepure
	// would taint every allocating function (the runtime's GC starts
	// goroutines), and that poison would spread to every module
	// function that calls fmt.Errorf. The standalone driver never
	// loads stdlib sources; match that here by contributing an empty
	// fact set. Stdlib units are the ones with no module: the go
	// command sets ModulePath for every module package but leaves it
	// empty for the standard library (cfg.Standard only describes the
	// unit's imports, not the unit itself).
	if cfg.ModulePath == "" {
		if !writeFacts() {
			return 1
		}
		return 0
	}
	fset := token.NewFileSet()
	files, err := ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure && writeFacts() {
			return 0
		}
		fmt.Fprintf(os.Stderr, "unionlint: %v\n", err)
		return 1
	}
	pkg, err := TypeCheck(fset, cfg.ImportPath, files, FileLookup(cfg.ImportMap, cfg.PackageFile), cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure && writeFacts() {
			return 0
		}
		fmt.Fprintf(os.Stderr, "unionlint: %v\n", err)
		return 1
	}
	// The store holds exactly the unit's visible closure, so the view
	// needs no extra visibility restriction (nil = everything).
	findings, err := RunAnalyzers(pkg, analyzers, store.View(pkg.Pkg, nil))
	if err != nil {
		fmt.Fprintf(os.Stderr, "unionlint: %v\n", err)
		return 1
	}
	if !writeFacts() {
		return 1
	}
	if cfg.VetxOnly {
		// This unit was only needed for its facts; suppress findings
		// (they are reported when the package is vetted directly).
		return 0
	}
	if len(findings) > 0 {
		PrintPlain(os.Stderr, findings)
		return 2
	}
	return 0
}
