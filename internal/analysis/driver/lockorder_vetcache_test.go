package driver_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetLockSummaryRoundTrip proves lockorder's LockSummary object
// facts survive go vet's .vetx cache: package x exports a function
// whose summary says "blocks" (it sleeps), package y calls it while
// holding a guards-annotated mutex. The diagnostic in y depends
// entirely on x's fact. The second run touches only y, so x's summary
// must come back out of the cached .vetx file for the diagnostic to
// survive.
func TestVetLockSummaryRoundTrip(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "unionlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/unionlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building unionlint: %v\n%s", err, out)
	}

	tmod := t.TempDir()
	writeTree(t, tmod, map[string]string{
		"go.mod": "module tmod\n\ngo 1.22\n",
		"x/x.go": `// Package x exports a blocking push, like the real client.
package x

import "time"

// SlowPush stalls like a network round trip.
func SlowPush() {
	time.Sleep(time.Millisecond)
}
`,
		"y/y.go": `// Package y holds an annotated mutex across the blocking call.
package y

import (
	"sync"

	"tmod/x"
)

type Shard struct {
	mu sync.Mutex // guards: n
	n  int
}

var shared Shard

// Flush blocks while locked; only x.SlowPush's LockSummary fact makes
// that visible here.
func Flush() {
	shared.mu.Lock()
	x.SlowPush()
	shared.mu.Unlock()
}
`,
	})

	vet := func() string {
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = tmod
		out, _ := cmd.CombinedOutput()
		return string(out)
	}

	const finding = "Flush calls x.SlowPush, which calls time.Sleep, while holding y.Shard.mu"
	out1 := vet()
	if !strings.Contains(out1, finding) {
		t.Fatalf("first vet run: blocking-while-locked not reported\noutput:\n%s", out1)
	}
	// Rewrite y (content change, so its vet action re-runs) without
	// touching x: SlowPush's LockSummary must now come back out of the
	// cached .vetx file.
	yfile := filepath.Join(tmod, "y", "y.go")
	src, err := os.ReadFile(yfile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(yfile, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	out2 := vet()
	if !strings.Contains(out2, finding) {
		t.Fatalf("second vet run: blocking-while-locked lost after cache round-trip\noutput:\n%s", out2)
	}
}
