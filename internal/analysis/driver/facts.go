package driver

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"os"
	"reflect"
	"sort"
	"sync"

	"repro/internal/analysis"
)

// A FactStore accumulates the facts exported by analyzer passes and
// serves them back to later passes, keyed by (package, object, fact
// type). One store serves one driver invocation:
//
//   - the standalone driver keeps a single in-process store and hands
//     each package a View restricted to its transitive imports;
//   - the vet front end builds a fresh store per compilation unit,
//     seeded from the .vetx files of the unit's direct imports
//     (ReadFile) and flushed to the unit's own .vetx (WriteFile).
//     Every .vetx re-exports the facts it imported, so direct-import
//     files carry the whole transitive closure — exactly the x/tools
//     unitchecker contract.
//
// Facts are stored and shipped as gob; RegisterFactTypes must see
// every analyzer before any store I/O so the concrete types decode.
type FactStore struct {
	mu    sync.Mutex
	facts map[factKey]analysis.Fact
}

type factKey struct {
	pkg string // import path, test-variant suffix stripped
	obj string // object path; "" for package facts
	typ reflect.Type
}

// NewFactStore returns an empty store with the analyzers' fact types
// gob-registered.
func NewFactStore(analyzers []*analysis.Analyzer) *FactStore {
	RegisterFactTypes(analyzers)
	return &FactStore{facts: map[factKey]analysis.Fact{}}
}

// RegisterFactTypes registers every analyzer's FactTypes with gob.
// Safe to call repeatedly with the same types.
func RegisterFactTypes(analyzers []*analysis.Analyzer) {
	for _, a := range analyzers {
		for _, ft := range a.FactTypes {
			gob.Register(ft)
		}
	}
}

// set validates and records one fact.
func (s *FactStore) set(key factKey, fact analysis.Fact) error {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		return fmt.Errorf("fact %T is not a pointer to a struct", fact)
	}
	s.mu.Lock()
	s.facts[key] = fact
	s.mu.Unlock()
	return nil
}

// get copies the stored fact for key's (pkg, obj, type-of-dst) into
// dst, reporting whether one existed.
func (s *FactStore) get(pkg, obj string, dst analysis.Fact) bool {
	key := factKey{pkg, obj, reflect.TypeOf(dst)}
	s.mu.Lock()
	src, ok := s.facts[key]
	s.mu.Unlock()
	if !ok {
		return false
	}
	// Copy so the caller cannot mutate the stored fact in place.
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
	return true
}

// gobFact is the serialized form of one fact.
type gobFact struct {
	Pkg  string
	Obj  string
	Fact analysis.Fact
}

// Encode serializes every fact in the store.
func (s *FactStore) Encode() ([]byte, error) {
	s.mu.Lock()
	out := make([]gobFact, 0, len(s.facts))
	for k, f := range s.facts {
		out = append(out, gobFact{Pkg: k.pkg, Obj: k.obj, Fact: f})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return fmt.Sprintf("%T", a.Fact) < fmt.Sprintf("%T", b.Fact)
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode merges serialized facts into the store.
func (s *FactStore) Decode(data []byte) error {
	var in []gobFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&in); err != nil {
		return err
	}
	for _, gf := range in {
		if gf.Fact == nil {
			continue
		}
		if err := s.set(factKey{gf.Pkg, gf.Obj, reflect.TypeOf(gf.Fact)}, gf.Fact); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes the store's full contents to a .vetx-style file.
func (s *FactStore) WriteFile(path string) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

// ReadFile merges a .vetx-style file into the store. An empty file is
// a valid empty fact set.
func (s *FactStore) ReadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	if err := s.Decode(data); err != nil {
		return fmt.Errorf("decoding facts from %s: %w", path, err)
	}
	return nil
}

// Packages returns the import paths that have at least one fact.
func (s *FactStore) Packages() []string {
	s.mu.Lock()
	set := map[string]bool{}
	for k := range s.facts {
		set[k.pkg] = true
	}
	s.mu.Unlock()
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// View binds the store to one pass: exports attach to pkg, and imports
// are restricted to visible import paths (plus pkg itself). A nil
// visible set means everything in the store is visible — the vet front
// end uses that, since its store holds exactly the unit's transitive
// closure by construction.
func (s *FactStore) View(pkg *types.Package, visible map[string]bool) analysis.FactContext {
	return &storeView{store: s, pkg: pkg, visible: visible}
}

type storeView struct {
	store   *FactStore
	pkg     *types.Package
	visible map[string]bool // nil = all
}

func (v *storeView) selfPath() string {
	return analysis.TrimPkgPath(v.pkg.Path())
}

func (v *storeView) canSee(path string) bool {
	return v.visible == nil || v.visible[path] || path == v.selfPath()
}

func (v *storeView) ImportPackageFact(path string, fact analysis.Fact) bool {
	path = analysis.TrimPkgPath(path)
	if !v.canSee(path) {
		return false
	}
	return v.store.get(path, "", fact)
}

func (v *storeView) ExportPackageFact(fact analysis.Fact) {
	key := factKey{v.selfPath(), "", reflect.TypeOf(fact)}
	if err := v.store.set(key, fact); err != nil {
		panic(fmt.Sprintf("ExportPackageFact(%s): %v", key.pkg, err))
	}
}

func (v *storeView) ImportObjectFact(obj types.Object, fact analysis.Fact) bool {
	path, objPath, ok := v.keyFor(obj)
	if !ok || !v.canSee(path) {
		return false
	}
	return v.store.get(path, objPath, fact)
}

func (v *storeView) ExportObjectFact(obj types.Object, fact analysis.Fact) {
	path, objPath, ok := v.keyFor(obj)
	if !ok {
		panic(fmt.Sprintf("ExportObjectFact: no object path for %v", obj))
	}
	if path != v.selfPath() {
		panic(fmt.Sprintf("ExportObjectFact: %v belongs to %s, not the package under analysis (%s)",
			obj, path, v.selfPath()))
	}
	if err := v.store.set(factKey{path, objPath, reflect.TypeOf(fact)}, fact); err != nil {
		panic(fmt.Sprintf("ExportObjectFact(%s.%s): %v", path, objPath, err))
	}
}

func (v *storeView) keyFor(obj types.Object) (pkgPath, objPath string, ok bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	objPath, ok = analysis.ObjectPath(obj)
	if !ok {
		return "", "", false
	}
	return analysis.TrimPkgPath(obj.Pkg().Path()), objPath, true
}

func (v *storeView) AllPackageFacts() []analysis.PackageFact {
	v.store.mu.Lock()
	var out []analysis.PackageFact
	for k, f := range v.store.facts {
		if k.obj == "" && v.canSee(k.pkg) {
			out = append(out, analysis.PackageFact{Path: k.pkg, Fact: f})
		}
	}
	v.store.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return fmt.Sprintf("%T", out[i].Fact) < fmt.Sprintf("%T", out[j].Fact)
	})
	return out
}

func (v *storeView) AllObjectFacts() []analysis.ObjectFact {
	v.store.mu.Lock()
	var out []analysis.ObjectFact
	for k, f := range v.store.facts {
		if k.obj != "" && v.canSee(k.pkg) {
			out = append(out, analysis.ObjectFact{Path: k.pkg, Object: k.obj, Fact: f})
		}
	}
	v.store.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return fmt.Sprintf("%T", out[i].Fact) < fmt.Sprintf("%T", out[j].Fact)
	})
	return out
}
