package driver_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestAllocFlowFactsRoundTrip proves allocflow's AllocSummary facts
// survive go's vet cache: a temp module has a helper package whose
// only allocation is an append, and a hot package whose `// hotpath:`
// function reaches it transitively. The finding exists only because
// the helper's AllocSummary fact crosses the package boundary. The
// second run re-analyzes only the (touched) hot package, so the
// helper's summary must come back out of the cached .vetx file — the
// finding surviving that run is the round trip.
func TestAllocFlowFactsRoundTrip(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "unionlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/unionlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building unionlint: %v\n%s", err, out)
	}

	tmod := t.TempDir()
	writeTree(t, tmod, map[string]string{
		"go.mod": "module tmod\n\ngo 1.22\n",
		"help/help.go": `// Package help allocates on behalf of its callers.
package help

// Grow appends one value.
func Grow(dst []uint64, v uint64) []uint64 {
	return append(dst, v)
}
`,
		"hot/hot.go": `// Package hot has a hotpath root that allocates only
// through its dependency.
package hot

import "tmod/help"

// Sketch is a miniature sampler.
type Sketch struct{ buf []uint64 }

// Process observes one item.
//
// hotpath: called once per stream item.
func (s *Sketch) Process(v uint64) {
	s.buf = help.Grow(s.buf, v)
}
`,
	})

	vet := func() string {
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = tmod
		out, _ := cmd.CombinedOutput()
		return string(out)
	}

	const finding = "1 append site(s) in tmod/help.Grow"
	out1 := vet()
	if !strings.Contains(out1, finding) {
		t.Fatalf("first vet run: transitive allocation not reported\noutput:\n%s", out1)
	}
	// Rewrite only the hot package: help's vet action is now a cache
	// hit, so its AllocSummary must round-trip through the .vetx file.
	hot := filepath.Join(tmod, "hot", "hot.go")
	src, err := os.ReadFile(hot)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(hot, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	out2 := vet()
	if !strings.Contains(out2, finding) {
		t.Fatalf("second vet run: finding lost after cache round-trip\noutput:\n%s", out2)
	}
}
