package driver_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetFactsRoundTrip proves the facts protocol end to end under
// `go vet -vettool`: a temp module has two kind packages registering
// the same sketch tag and a blank-import aggregator; the collision is
// only detectable by combining RegisteredKind facts from two separate
// compilation units, so it appearing at all shows facts flow through
// .vetx files. The second run re-analyzes only the (touched)
// aggregator, whose dependencies' facts now come from go's vet cache —
// the collision surviving that run is the round-trip.
func TestVetFactsRoundTrip(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "unionlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/unionlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building unionlint: %v\n%s", err, out)
	}

	tmod := t.TempDir()
	writeTree(t, tmod, map[string]string{
		"go.mod": "module tmod\n\ngo 1.22\n",
		"internal/sketch/sketch.go": `package sketch

import "errors"

type Kind uint8

var (
	ErrMismatch    = errors.New("sketch: mismatch")
	ErrCorrupt     = errors.New("sketch: corrupt")
	ErrUnknownKind = errors.New("sketch: unknown kind")
)

type Sketch interface{ Kind() Kind }

type KindInfo struct {
	Kind    Kind
	Name    string
	Version uint8
	New     func() Sketch
	Decode  func([]byte) (Sketch, error)
}

func Register(info KindInfo) {}
`,
		"internal/sketch/a/a.go": kindPackage("a", "alpha"),
		"internal/sketch/b/b.go": kindPackage("b", "beta"),
		"agg/agg.go": `// Package agg blank-imports every kind, like the real
// internal/sketch/kinds aggregator.
package agg

import (
	_ "tmod/internal/sketch/a"
	_ "tmod/internal/sketch/b"
)
`,
	})

	vet := func() string {
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = tmod
		out, _ := cmd.CombinedOutput()
		return string(out)
	}

	const collision = "sketch kind tag 1 registered by both tmod/internal/sketch/a and tmod/internal/sketch/b"
	out1 := vet()
	if !strings.Contains(out1, collision) {
		t.Fatalf("first vet run: collision not reported\noutput:\n%s", out1)
	}
	// Rewrite the aggregator (content change, so its vet action re-runs)
	// without touching a or b: their RegisteredKind facts must now come
	// back out of the cached .vetx files.
	agg := filepath.Join(tmod, "agg", "agg.go")
	src, err := os.ReadFile(agg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(agg, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	out2 := vet()
	if !strings.Contains(out2, collision) {
		t.Fatalf("second vet run: collision lost after cache round-trip\noutput:\n%s", out2)
	}
}

// kindPackage renders a kind package that is clean under kindcheck
// except for its tag choice: both generated packages use tag 1.
func kindPackage(pkg, name string) string {
	return `package ` + pkg + `

import (
	"fmt"

	"tmod/internal/sketch"
)

const (
	kindTag     sketch.Kind = 1
	kindName                = "` + name + `"
	kindVersion             = 1
)

func init() {
	sketch.Register(sketch.KindInfo{Kind: kindTag, Name: kindName, Version: kindVersion})
}

// wrap keeps the typed sentinels in use, as kindcheck requires.
func wrap() error {
	return fmt.Errorf("%w: %w", sketch.ErrMismatch, sketch.ErrCorrupt)
}

var _ = wrap
`
}

// writeTree writes files (path → contents) under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for path, contents := range files {
		full := filepath.Join(dir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
