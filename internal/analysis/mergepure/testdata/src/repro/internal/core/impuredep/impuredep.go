// Package impuredep exports an impure function with no root name: it
// is not reported here, but its Impure fact follows the import edge.
package impuredep

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}
