// Package caller reaches nondeterminism only through another
// package's exported function; the Impure fact carries the reason
// across the import edge.
package caller

import "repro/internal/core/impuredep"

type X struct {
	at int64
}

func (x *X) MergeFrom(other *X) error {
	x.at = impuredep.Stamp() // want "MergeFrom must be deterministic \\(merge/estimate contract\\) but calls impuredep.Stamp, which calls time.Now"
	return nil
}
