// Package impure puts each nondeterminism source on a root: a clock,
// randomness through a helper, an undeclared goroutine fan-out, and a
// seam annotation with no reason.
package impure

import (
	"math/rand"
	"time"
)

type S struct {
	entries map[uint64]uint64
	stamp   int64
}

func (s *S) Merge(other *S) error {
	s.stamp = time.Now().UnixNano() // want "Merge must be deterministic \\(merge/estimate contract\\) but calls time.Now"
	for k, v := range other.entries {
		s.entries[k] = v
	}
	return nil
}

// helper is not a root, so it is not reported itself — but roots that
// call it are.
func helper() uint64 {
	return rand.Uint64()
}

func (s *S) Estimate() float64 {
	return float64(helper()) // want "Estimate must be deterministic \\(merge/estimate contract\\) but calls helper, which uses math/rand"
}

func (s *S) Process(label uint64) {
	done := make(chan struct{})
	go func() { // want "Process must be deterministic \\(merge/estimate contract\\) but starts goroutines"
		s.entries[label]++
		close(done)
	}()
	<-done
}

// ProcessBatch is parallel on purpose, but the seam annotation below
// is missing its justification.
// mergepure:seam
func (s *S) ProcessBatch(labels []uint64) { // want "mergepure:seam needs a reason"
	for _, l := range labels {
		go s.Process(l)
	}
}
