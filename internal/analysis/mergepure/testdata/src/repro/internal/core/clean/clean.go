// Package clean holds every idiom mergepure must accept: counters,
// keyed writes, deletes, guarded extrema, sorted marshaling, unsorted
// non-root helpers, and a seam-annotated parallel fan-out.
package clean

import (
	"sort"
	"sync"
)

type S struct {
	entries map[uint64]uint64
	total   uint64
	max     uint64
}

// Merge folds other into s with order-independent operations only.
func (s *S) Merge(other *S) error {
	for k, v := range other.entries {
		if _, ok := s.entries[k]; ok {
			continue
		}
		s.entries[k] = v
		s.total += v
		if v > s.max {
			s.max = v
		}
	}
	for k, v := range s.entries {
		if v == 0 {
			delete(s.entries, k)
		}
	}
	return nil
}

// EstimateDistinct counts in map order, which cannot be observed.
func (s *S) EstimateDistinct() float64 {
	n := 0
	for range s.entries {
		n++
	}
	return float64(n)
}

// MarshalBinary builds from a sorted key list, so equal states encode
// to equal bytes.
func (s *S) MarshalBinary() ([]byte, error) {
	keys := make([]uint64, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]byte, 0, 8*len(keys))
	for _, k := range keys {
		out = append(out, byte(k))
	}
	return out, nil
}

// Sample returns the retained labels, unordered; it is not a root, so
// callers own the sort.
func (s *S) Sample() []uint64 {
	out := make([]uint64, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	return out
}

// ProcessSlice shards the batch across goroutines.
// mergepure:seam each shard folds into a private S and the merge is a
// set union, so the final state is independent of completion order.
func (s *S) ProcessSlice(labels []uint64) {
	var wg sync.WaitGroup
	for range labels {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}
