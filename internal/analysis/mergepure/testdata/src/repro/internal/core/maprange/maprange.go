// Package maprange holds the map-iteration-order leaks: last-write-
// wins assignment, floating-point accumulation, and unsorted append.
package maprange

type S struct {
	entries map[uint64]float64
	last    float64
	max     float64
}

func (s *S) MergeCounts(other map[uint64]float64) {
	n := 0
	for k, v := range other {
		s.entries[k] = v // keyed writes commute; never flagged
		s.last = v       // want "assignment to s.last inside a map range is last-write-wins"
		if v > s.max {
			s.max = v // guarded extremum idiom; never flagged
		}
		n++
	}
	_ = n
}

func (s *S) EstimateMean() float64 {
	var sum float64
	for _, v := range s.entries {
		sum += v // want "floating-point accumulation into sum in map-range order is nondeterministic"
	}
	return sum / float64(len(s.entries))
}

func (s *S) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, byte(k)) // want "append to out inside a map range leaks map iteration order"
	}
	return out, nil
}
