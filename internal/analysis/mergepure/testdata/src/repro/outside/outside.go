// Package outside sits outside -mergepure.scope: the same clock call
// on a root produces no diagnostic here (but the fact still exports).
package outside

import "time"

type S struct {
	at int64
}

func (s *S) Merge(other *S) error {
	s.at = time.Now().UnixNano()
	return nil
}
