// Package mergepure enforces the determinism contract of the sketch
// merge/estimate path: two parties that fold the same label sets must
// arrive at bit-identical state (DESIGN "mergeability"; the paper's
// union protocol depends on it), so the functions that implement that
// path must not consult wall clocks, randomness, or scheduler order.
//
// The analyzer treats every package-level function or method whose
// name starts with Process, Merge, or Estimate, or is MarshalBinary,
// as a determinism root. A root is impure — and reported — when it, or
// anything it (transitively) calls, does one of:
//
//   - call time.Now, time.Since, or time.Until;
//   - call into math/rand, math/rand/v2, or crypto/rand;
//   - start a goroutine (completion order is scheduler-dependent).
//
// Impurity crosses package boundaries through Impure object facts:
// analyzing a package exports a fact for each impure package-level
// function, and a root in a downstream package that calls one is
// reported at the call site.
//
// Deliberate, order-independent uses of these constructs — the
// parallel sharding in core/parallel.go is the canonical case — are
// declared, not silenced: a
//
//	// mergepure:seam <reason>
//
// line in the function's doc comment marks a reviewed seam. The reason
// is mandatory; it should say why the observable result does not
// depend on order.
//
// Roots additionally must not leak map iteration order (randomized per
// range in Go). Inside a `for ... range m` over a map, in a root
// function, the analyzer flags:
//
//   - an unguarded plain assignment to a variable declared outside the
//     range whose value varies per iteration (last write wins, in
//     random order);
//   - floating-point compound assignment (+=, -=, ...): float
//     arithmetic is not associative, so even commutative-looking
//     accumulation drifts with order;
//   - append to an outer slice in a function that never sorts: the
//     slice ends up in map order. (Non-root helpers such as
//     Sampler.Sample legitimately return unordered copies that their
//     callers sort; only roots are held to this rule.)
//
// Integer counters, delete, and keyed map/index writes are order-
// independent and never flagged. The check is scoped to the sketch
// state packages by -mergepure.scope.
package mergepure

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Impure is the object fact exported for a package-level function that
// is (transitively) nondeterministic, so downstream roots that call it
// are reported without re-analyzing its body.
type Impure struct {
	Reason string
}

// AFact marks Impure as a fact type.
func (*Impure) AFact() {}

var scopeFlag = &analysis.Flag{
	Name:  "scope",
	Usage: "regexp of package paths whose determinism roots are reported (facts are exported everywhere)",
	Value: `(^|/)internal/(core|exact|window|sketch)(/|$)`,
}

// Analyzer is the mergepure analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "mergepure",
	Doc: "require functions on the sketch merge/estimate path to be deterministic: no clocks, " +
		"no randomness, no goroutine fan-out outside declared seams, no map-order leaks",
	Flags:     []*analysis.Flag{scopeFlag},
	FactTypes: []analysis.Fact{(*Impure)(nil)},
	Run:       run,
}

// seamPrefix introduces a declared-seam annotation in a doc comment.
const seamPrefix = "mergepure:seam"

// rootNamed reports whether a function name puts it on the
// deterministic merge/estimate path.
func rootNamed(name string) bool {
	return strings.HasPrefix(name, "Process") ||
		strings.HasPrefix(name, "Merge") ||
		strings.HasPrefix(name, "Estimate") ||
		name == "MarshalBinary"
}

// A taint is one direct nondeterminism source in a function body.
type taint struct {
	pos    token.Pos
	reason string
}

// An edge is one call to another function whose impurity may
// propagate here.
type edge struct {
	pos    token.Pos
	callee *types.Func
}

type funcInfo struct {
	decl    *ast.FuncDecl
	seam    bool
	taints  []taint
	edges   []edge
	sorts   bool // body contains a sort/slices ordering call
	visited bool // resolve() in progress (cycle guard)
	reason  string
	badPos  token.Pos // where the impurity enters this function
	solved  bool
}

func run(pass *analysis.Pass) error {
	scopeRe, err := regexp.Compile(scopeFlag.Value)
	if err != nil {
		return err
	}
	inScope := scopeRe.MatchString(pass.PkgPath())

	funcs := map[types.Object]*funcInfo{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			funcs[obj] = collect(pass, fd)
		}
	}

	var resolve func(obj types.Object) string
	resolve = func(obj types.Object) string {
		fi := funcs[obj]
		if fi == nil || fi.seam {
			return ""
		}
		if fi.solved {
			return fi.reason
		}
		if fi.visited {
			return "" // recursion: resolved by the outer frame
		}
		fi.visited = true
		defer func() { fi.visited = false; fi.solved = true }()
		if len(fi.taints) > 0 {
			fi.reason = fi.taints[0].reason
			fi.badPos = fi.taints[0].pos
			return fi.reason
		}
		for _, e := range fi.edges {
			if _, local := funcs[e.callee]; local {
				if r := resolve(e.callee); r != "" {
					fi.reason = "calls " + e.callee.Name() + ", which " + r
					fi.badPos = e.pos
					return fi.reason
				}
				continue
			}
			var imp Impure
			if pass.ImportObjectFact(e.callee, &imp) {
				fi.reason = "calls " + qualifiedName(e.callee) + ", which " + imp.Reason
				fi.badPos = e.pos
				return fi.reason
			}
		}
		return ""
	}

	// Export an Impure fact for every impure package-level function, so
	// downstream packages see through this one without its source.
	for obj := range funcs {
		if reason := resolve(obj); reason != "" {
			if _, ok := analysis.ObjectPath(obj); ok {
				pass.ExportObjectFact(obj, &Impure{Reason: reason})
			}
		}
	}

	if !inScope {
		return nil
	}
	for obj, fi := range funcs {
		checkSeamReason(pass, fi)
		if !rootNamed(obj.Name()) || fi.seam {
			continue
		}
		if reason := resolve(obj); reason != "" {
			pos := fi.badPos
			if !pos.IsValid() {
				pos = fi.decl.Name.Pos()
			}
			pass.Reportf(pos,
				"%s must be deterministic (merge/estimate contract) but %s; if the construct is order-independent, declare it with // mergepure:seam <reason>",
				obj.Name(), reason)
		}
		checkMapRanges(pass, fi)
	}
	return nil
}

// collect gathers a function's direct taints, call edges, seam
// annotation, and whether it sorts anything.
func collect(pass *analysis.Pass, fd *ast.FuncDecl) *funcInfo {
	fi := &funcInfo{decl: fd}
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, seamPrefix) {
				fi.seam = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			fi.taints = append(fi.taints, taint{n.Pos(),
				"starts goroutines whose completion order is scheduler-dependent"})
		case *ast.CallExpr:
			fn := calleeFunc(pass, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch path := fn.Pkg().Path(); {
			case path == "time" && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until"):
				fi.taints = append(fi.taints, taint{n.Pos(), "calls time." + fn.Name()})
			case path == "math/rand" || path == "math/rand/v2" || path == "crypto/rand":
				fi.taints = append(fi.taints, taint{n.Pos(), "uses " + path})
			case path == "sort" || path == "slices" && strings.HasPrefix(fn.Name(), "Sort"):
				fi.sorts = true
			default:
				// Every other callee may carry impurity — same-package
				// bodies are resolved locally, anything else through
				// Impure facts (a miss is cheap and means pure).
				fi.edges = append(fi.edges, edge{n.Pos(), fn})
			}
		}
		return true
	})
	return fi
}

// checkSeamReason requires every seam annotation to carry a reason.
func checkSeamReason(pass *analysis.Pass, fi *funcInfo) {
	if fi.decl.Doc == nil {
		return
	}
	for _, c := range fi.decl.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, seamPrefix) {
			continue
		}
		if strings.TrimSpace(text[len(seamPrefix):]) == "" {
			pass.Reportf(fi.decl.Name.Pos(),
				"mergepure:seam needs a reason: say why the observable result does not depend on order")
		}
	}
}

// checkMapRanges flags map-iteration-order leaks in one root function.
func checkMapRanges(pass *analysis.Pass, fi *funcInfo) {
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		rangeVars := rangeVarObjects(pass, rs)
		checkRangeBody(pass, fi, rs, rs.Body, rangeVars, false)
		return true
	})
}

// checkRangeBody walks the statements of a map-range body. guarded is
// true once the walk has passed through an if or switch — a guarded
// plain assignment is usually an order-independent extremum idiom
// (`if v > best { best = v }`), so only unguarded ones are flagged.
func checkRangeBody(pass *analysis.Pass, fi *funcInfo, rs *ast.RangeStmt, stmt ast.Stmt, rangeVars map[types.Object]bool, guarded bool) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			checkRangeBody(pass, fi, rs, st, rangeVars, guarded)
		}
	case *ast.IfStmt:
		checkRangeBody(pass, fi, rs, s.Body, rangeVars, true)
		if s.Else != nil {
			checkRangeBody(pass, fi, rs, s.Else, rangeVars, true)
		}
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			for _, st := range cc.(*ast.CaseClause).Body {
				checkRangeBody(pass, fi, rs, st, rangeVars, true)
			}
		}
	case *ast.ForStmt:
		checkRangeBody(pass, fi, rs, s.Body, rangeVars, guarded)
	case *ast.RangeStmt:
		checkRangeBody(pass, fi, rs, s.Body, rangeVars, guarded)
	case *ast.AssignStmt:
		checkRangeAssign(pass, fi, rs, s, rangeVars, guarded)
	}
}

func checkRangeAssign(pass *analysis.Pass, fi *funcInfo, rs *ast.RangeStmt, s *ast.AssignStmt, rangeVars map[types.Object]bool, guarded bool) {
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if i < len(s.Rhs) {
			rhs = s.Rhs[i]
		}
		// Keyed writes (m[k] = v, a[i] += w) are order-independent.
		if _, isIndex := ast.Unparen(lhs).(*ast.IndexExpr); isIndex {
			continue
		}
		name, outer := outerTarget(pass, rs, lhs)
		if !outer {
			continue
		}
		// append to an outer slice: map order leaks into element order
		// unless the function sorts.
		if call, isCall := rhs.(*ast.CallExpr); isCall {
			if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && id.Name == "append" {
				if !fi.sorts {
					pass.Reportf(s.Pos(),
						"append to %s inside a map range leaks map iteration order into the slice; sort before use (or build from a sorted key list)",
						name)
				}
				continue
			}
		}
		if s.Tok != token.ASSIGN {
			// Compound assignment: integers commute exactly, floats
			// do not.
			if isFloat(pass.TypesInfo.Types[lhs].Type) {
				pass.Reportf(s.Pos(),
					"floating-point accumulation into %s in map-range order is nondeterministic (float addition is not associative and map order is randomized)",
					name)
			}
			continue
		}
		if !guarded && rhs != nil && mentionsAny(pass, rhs, rangeVars) {
			pass.Reportf(s.Pos(),
				"assignment to %s inside a map range is last-write-wins in randomized map order; the surviving value is nondeterministic",
				name)
		}
	}
}

// outerTarget reports whether lhs writes a variable declared outside
// the range statement (or a field through one), and names it.
func outerTarget(pass *analysis.Pass, rs *ast.RangeStmt, lhs ast.Expr) (string, bool) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[l]
		if obj == nil || obj.Pos() >= rs.Pos() {
			return "", false
		}
		return l.Name, true
	case *ast.SelectorExpr:
		// A field write through any base (typically the receiver)
		// outlives the iteration.
		if base, ok := ast.Unparen(l.X).(*ast.Ident); ok {
			return base.Name + "." + l.Sel.Name, true
		}
		return l.Sel.Name, true
	}
	return "", false
}

// rangeVarObjects returns the objects of the range's key/value vars.
func rangeVarObjects(pass *analysis.Pass, rs *ast.RangeStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// mentionsAny reports whether expr references any of the given objects.
func mentionsAny(pass *analysis.Pass, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// qualifiedName renders a cross-package callee for a diagnostic.
func qualifiedName(fn *types.Func) string {
	name := fn.Name()
	if path, ok := analysis.ObjectPath(fn); ok {
		name = path
	}
	return fn.Pkg().Name() + "." + name
}

// isFloat reports whether t's underlying basic kind is a float.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// calleeFunc resolves a call's callee to a *types.Func, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return f
}
