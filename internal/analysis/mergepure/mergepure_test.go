package mergepure_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/mergepure"
)

func testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestMergepure(t *testing.T) {
	analysistest.Run(t, testdata(t), mergepure.Analyzer,
		"repro/internal/core/clean",
		"repro/internal/core/impure",
		"repro/internal/core/maprange",
		"repro/internal/core/impuredep",
		"repro/internal/core/caller",
		"repro/outside",
	)
}
