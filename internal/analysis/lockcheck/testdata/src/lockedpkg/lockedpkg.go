// Package lockedpkg is the lockcheck golden package.
package lockedpkg

import "sync"

// Registry mirrors the coordinator's shape: a mutex with a documented
// guard list over sibling fields, plus an unguarded field.
type Registry struct {
	mu sync.Mutex // guards: count, names

	count int
	names []string

	free int // not guarded
}

// Inc locks the declared mutex: fine.
func (r *Registry) Inc() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
}

// Snapshot locks around a multi-field read: fine.
func (r *Registry) Snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Bad touches a guarded field with no lock and no annotation.
func (r *Registry) Bad() int {
	return r.count // want "Registry.count is guarded by Registry.mu"
}

// BadClosure shows nested function literals are checked too.
func (r *Registry) BadClosure() func() int {
	return func() int { return r.count } // want "Registry.count is guarded by Registry.mu"
}

// incLocked declares its callers hold mu.
//
// locked: mu
func (r *Registry) incLocked() {
	r.count++
}

// nameCount declares its callers hold every relevant mutex.
//
// locked:
func (r *Registry) nameCount() int { return len(r.names) }

// Free touches only an unguarded field: fine.
func (r *Registry) Free() int { return r.free }

// Stale has a guard list naming a field that no longer exists.
type Stale struct {
	// guards: gone
	mu sync.Mutex // want "not a field of Stale"

	kept int
}

// NotMutex puts the annotation on a non-mutex field.
type NotMutex struct {
	// guards: x
	lock int // want "must sit on a single sync.Mutex/sync.RWMutex field"

	x int
}

// RW shows RWMutex and RLock are understood.
type RW struct {
	mu sync.RWMutex // guards: data

	data map[string]int
}

// Get read-locks: fine.
func (r *RW) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.data[k]
}
