// Package lockcheck enforces documented mutex protection: a struct
// field listed in a mutex's `// guards:` comment may only be touched
// inside functions that visibly lock that mutex, or that declare the
// caller holds it.
//
// The concurrent coordinator (internal/server) is only bit-identical
// to serial merging because every access to a merge group's state
// happens under its group mutex; the invariant lives in comments the
// compiler cannot read. lockcheck reads them. Grammar:
//
//	mu sync.Mutex // guards: groups, ln, conns
//
// on a sync.Mutex/sync.RWMutex field declares which sibling fields it
// protects (names must be fields of the same struct — a rename that
// orphans the list is itself a diagnostic). A function that accesses a
// guarded field must either contain a call to <x>.<mu>.Lock or
// <x>.<mu>.RLock somewhere in its body, or carry a
//
//	// locked: mu
//
// doc-comment line declaring that its callers hold the named
// mutex(es) (a bare `// locked:` covers all mutexes of the package).
//
// This is a lexical, per-function check, not an alias or path
// analysis: locking any instance's mutex satisfies accesses through
// any value of that struct type, and nested function literals are
// checked as part of their enclosing declaration. It will not catch
// every misuse — it exists to catch the easy, common one: a new code
// path reading s.groups without s.mu. _test.go files are skipped.
package lockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "accesses to `// guards:`-annotated fields must hold the declared mutex",
	Run:  run,
}

// guardInfo describes one guarded field.
type guardInfo struct {
	structName string
	mutexName  string // sibling mutex field protecting it
}

func run(pass *analysis.Pass) error {
	guarded := map[*types.Var]guardInfo{} // guarded field object → info
	mutexes := map[*types.Var]string{}    // mutex field object → struct name

	// Pass 1: collect `// guards:` annotations from struct types.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			collectGuards(pass, ts.Name.Name, st, guarded, mutexes)
			return true
		})
	}
	if len(guarded) == 0 {
		return nil
	}

	// Pass 2: check every function declaration.
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guarded, mutexes)
		}
	}
	return nil
}

// collectGuards parses guards: comments on the fields of one struct.
func collectGuards(pass *analysis.Pass, structName string, st *ast.StructType,
	guarded map[*types.Var]guardInfo, mutexes map[*types.Var]string) {

	// Index the struct's fields by name so guard lists can be
	// validated against them.
	fieldByName := map[string]*types.Var{}
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				fieldByName[name.Name] = v
			}
		}
	}
	for _, f := range st.Fields.List {
		names := parseGuardList(f)
		if names == nil {
			continue
		}
		if len(f.Names) != 1 || !isMutex(pass.TypesInfo.Defs[f.Names[0]]) {
			pass.Reportf(f.Pos(), "guards: annotation must sit on a single sync.Mutex/sync.RWMutex field")
			continue
		}
		mutexName := f.Names[0].Name
		mutexes[fieldByName[mutexName]] = structName
		for _, g := range names {
			v, ok := fieldByName[g]
			if !ok {
				pass.Reportf(f.Pos(), "guards: lists %q, which is not a field of %s (stale annotation after a rename?)", g, structName)
				continue
			}
			guarded[v] = guardInfo{structName: structName, mutexName: mutexName}
		}
	}
}

// parseGuardList extracts the field names from a `// guards: a, b`
// comment attached to field f (doc or trailing), or nil.
func parseGuardList(f *ast.Field) []string {
	var names []string
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "guards:")
			if !ok {
				continue
			}
			for _, n := range strings.Split(rest, ",") {
				if n = strings.TrimSpace(n); n != "" {
					names = append(names, n)
				}
			}
		}
	}
	return names
}

// isMutex reports whether obj is a field of type sync.Mutex or
// sync.RWMutex.
func isMutex(obj types.Object) bool {
	if obj == nil {
		return false
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == "sync" &&
		(o.Name() == "Mutex" || o.Name() == "RWMutex")
}

// checkFunc verifies one function's guarded-field accesses.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl,
	guarded map[*types.Var]guardInfo, mutexes map[*types.Var]string) {

	heldAll, heldNames := parseLockedAnnotation(fd)

	// Which mutexes does the body visibly lock?
	locked := map[string]bool{} // "struct.mutex"
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := pass.TypesInfo.Selections[inner]; ok {
			if v, ok := s.Obj().(*types.Var); ok {
				if structName, ok := mutexes[v]; ok {
					locked[structName+"."+v.Name()] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		info, ok := guarded[v]
		if !ok {
			return true
		}
		key := info.structName + "." + info.mutexName
		if locked[key] {
			return true
		}
		if heldAll || heldNames[info.mutexName] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s.%s is guarded by %s.%s, but %s neither locks it nor declares `// locked: %s`",
			info.structName, v.Name(), info.structName, info.mutexName, funcName(fd), info.mutexName)
		return true
	})
}

// parseLockedAnnotation reads a `// locked:` doc-comment line: a bare
// annotation means callers hold every relevant mutex; otherwise the
// comma-separated mutex field names are held.
func parseLockedAnnotation(fd *ast.FuncDecl) (all bool, names map[string]bool) {
	names = map[string]bool{}
	if fd.Doc == nil {
		return false, names
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		rest, ok := strings.CutPrefix(text, "locked:")
		if !ok {
			continue
		}
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return true, names
		}
		for _, n := range strings.Split(rest, ",") {
			n = strings.TrimSpace(n)
			// Tolerate a trailing free-text reason after the names:
			// take the first identifier-looking token of each part.
			if i := strings.IndexAny(n, " \t"); i >= 0 {
				n = n[:i]
			}
			if n != "" {
				names[n] = true
			}
		}
	}
	return false, names
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}
