package errcontract_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errcontract"
)

func TestErrcontract(t *testing.T) {
	analysistest.Run(t, "testdata", errcontract.Analyzer,
		"repro/internal/wire/errs",     // in scope: flags + allowed wrapping
		"repro/internal/report/logfmt", // out of scope: silent
	)
}
