package errcontract_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errcontract"
)

func TestErrcontract(t *testing.T) {
	analysistest.Run(t, "testdata", errcontract.Analyzer,
		"repro/internal/wire/errs",     // in scope: flags + allowed wrapping
		"repro/internal/report/logfmt", // out of scope: silent
	)
}

// TestErrcontractFixes pins the -fix pipeline end to end: suggested
// fixes produce the golden tree, the fixed tree compiles, and a second
// application is a no-op.
func TestErrcontractFixes(t *testing.T) {
	analysistest.RunFixes(t, "testdata", errcontract.Analyzer, "repro/internal/wire/fixme")
}
