package errcontract

import (
	"fmt"
	"testing"
)

// TestParseVerbs pins the raw-literal scanner: ordering, %% skipping,
// flag/width handling, explicit argument indexes, multiple %w verbs,
// and the conservative bail-outs.
func TestParseVerbs(t *testing.T) {
	cases := []struct {
		raw   string
		verbs string // concatenated verb runes, in scan order
		args  string // the argIndex of each verb, as digits
	}{
		{`"plain"`, "", ""},
		{`"a %v b"`, "v", "0"},
		{`"%w: %v"`, "wv", "01"},
		{`"%w; %w"`, "ww", "01"}, // multi-error wrapping, Go 1.20+
		{`"100%% done: %s"`, "s", "0"},
		{`"%+v %-8s %.2f %03d"`, "vsfd", "0123"},
		{`"%[1]v %v"`, "vv", "01"}, // index then continue from it
		{`"%[3]s %s %[1]w"`, "ssw", "230"},
		{`"%[x]v"`, "", ""},  // malformed index: scan stops
		{`"%*d %v"`, "", ""}, // *-width shifts arguments: scan stops
	}
	for _, c := range cases {
		got, idx := "", ""
		for _, v := range parseVerbs(c.raw) {
			got += string(v.verb)
			idx += fmt.Sprint(v.argIndex)
		}
		if got != c.verbs || idx != c.args {
			t.Errorf("parseVerbs(%s) = %q/%q, want %q/%q", c.raw, got, idx, c.verbs, c.args)
		}
	}
}

// TestRewriteVerb pins the %v→%w suggested-fix rewrite on raw literals.
func TestRewriteVerb(t *testing.T) {
	raw := `"%w: truncated: %v"`
	verbs := parseVerbs(raw)
	if len(verbs) != 2 {
		t.Fatalf("parseVerbs(%s): got %d verbs, want 2", raw, len(verbs))
	}
	fixed, ok := rewriteVerb(raw, verbs[1], 'w')
	if !ok || fixed != `"%w: truncated: %w"` {
		t.Fatalf("rewriteVerb = %q, %v; want %q, true", fixed, ok, `"%w: truncated: %w"`)
	}
}

// TestRewriteVerbIndexed pins the rewrite on an indexed directive: the
// index is kept, only the verb rune changes.
func TestRewriteVerbIndexed(t *testing.T) {
	raw := `"op %[1]v"`
	verbs := parseVerbs(raw)
	if len(verbs) != 1 {
		t.Fatalf("parseVerbs(%s): got %d verbs, want 1", raw, len(verbs))
	}
	fixed, ok := rewriteVerb(raw, verbs[0], 'w')
	if !ok || fixed != `"op %[1]w"` {
		t.Fatalf("rewriteVerb = %q, %v; want %q, true", fixed, ok, `"op %[1]w"`)
	}
}
