package errcontract

import "testing"

// TestParseVerbs pins the raw-literal scanner: ordering, %% skipping,
// flag/width handling, and the conservative bail-out on indexed args.
func TestParseVerbs(t *testing.T) {
	cases := []struct {
		raw   string
		verbs string // concatenated verb runes, in argument order
	}{
		{`"plain"`, ""},
		{`"a %v b"`, "v"},
		{`"%w: %v"`, "wv"},
		{`"100%% done: %s"`, "s"},
		{`"%+v %-8s %.2f %03d"`, "vsfd"},
		{`"%[1]v %v"`, ""}, // indexed form: scan stops
	}
	for _, c := range cases {
		got := ""
		for _, v := range parseVerbs(c.raw) {
			got += string(v.verb)
		}
		if got != c.verbs {
			t.Errorf("parseVerbs(%s) = %q, want %q", c.raw, got, c.verbs)
		}
	}
}

// TestRewriteVerb pins the %v→%w suggested-fix rewrite on raw literals.
func TestRewriteVerb(t *testing.T) {
	raw := `"%w: truncated: %v"`
	verbs := parseVerbs(raw)
	if len(verbs) != 2 {
		t.Fatalf("parseVerbs(%s): got %d verbs, want 2", raw, len(verbs))
	}
	fixed, ok := rewriteVerb(raw, verbs[1], 'w')
	if !ok || fixed != `"%w: truncated: %w"` {
		t.Fatalf("rewriteVerb = %q, %v; want %q, true", fixed, ok, `"%w: truncated: %w"`)
	}
}
