// Package fixme is the -fix golden package: every diagnostic below
// carries a mechanical suggested fix, the fixed tree must match
// fixme.go.golden, still compile, and re-fixing must change nothing.
package fixme

import (
	"errors"
	"fmt"
)

// ErrFrame stands in for the real wire sentinels.
var ErrFrame = errors.New("fixme: bad frame")

// Wrap flattens with %v; -fix rewrites it to %w.
func Wrap(err error) error {
	return fmt.Errorf("read frame: %v", err)
}

// WrapMixed wraps the sentinel but flattens the cause with %s.
func WrapMixed(err error) error {
	return fmt.Errorf("%w: truncated: %s", ErrFrame, err)
}

// WrapIndexed flattens through an explicit index; the index survives
// the rewrite.
func WrapIndexed(err error) error {
	return fmt.Errorf("op %[1]v", err)
}
