// Package errs is a golden-test package on an in-scope import path
// (matches internal/wire in errcontract's default scope).
package errs

import (
	"errors"
	"fmt"
)

// ErrFrame stands in for the real wire sentinels.
var ErrFrame = errors.New("errs: bad frame")

// WrapBad formats an error with %v: flagged, with a suggested fix.
func WrapBad(err error) error {
	return fmt.Errorf("read frame: %v", err) // want "error formatted with %v loses the error chain"
}

// WrapBadS uses %s, the other common flattener.
func WrapBadS(err error) error {
	return fmt.Errorf("read frame: %s", err) // want "error formatted with %s loses the error chain"
}

// WrapMixed wraps the sentinel but flattens the cause.
func WrapMixed(err error) error {
	return fmt.Errorf("%w: truncated: %v", ErrFrame, err) // want "error formatted with %v loses the error chain"
}

// WrapGood wraps with %w: allowed.
func WrapGood(err error) error {
	return fmt.Errorf("read frame: %w", err)
}

// Flatten passes err.Error() as the argument: flagged.
func Flatten(err error) error {
	return fmt.Errorf("read frame: %s", err.Error()) // want "err.Error\\(\\) passed to fmt.Errorf flattens the error chain"
}

// Match compares error strings: flagged.
func Match(err error) bool {
	return err.Error() == "errs: bad frame" // want "comparing error strings"
}

// MatchGood inspects the chain the supported way.
func MatchGood(err error) bool {
	return errors.Is(err, ErrFrame)
}

// NonError formats plain values: allowed.
func NonError(n int, s string) error {
	return fmt.Errorf("count %d at %q", n, s)
}

// WrapBoth wraps two causes with two %w verbs (legal since Go 1.20);
// the server drain path combines a context error with close errors
// this way, and both chains survive.
func WrapBoth(drain, closeErr error) error {
	return fmt.Errorf("drain: %w; close: %w", drain, closeErr)
}

// JoinGood combines errors without losing either chain: allowed.
func JoinGood(a, b error) error {
	return errors.Join(a, b)
}

// JoinFlattened formats a joined chain with %v: the combined chain is
// an error like any other, and flattening it breaks errors.Is on
// every branch at once.
func JoinFlattened(a, b error) error {
	return fmt.Errorf("drain: %v", errors.Join(a, b)) // want "error formatted with %v loses the error chain"
}

// IndexedGood selects arguments explicitly; the error is wrapped, the
// indexed string verb targets a non-error, so nothing is flagged.
func IndexedGood(err error, op string) error {
	return fmt.Errorf("%[2]s: %[1]w", err, op)
}

// IndexedFlatten selects the error by index and flattens it: the
// directive is checked against the argument it actually consumes.
func IndexedFlatten(err error) error {
	return fmt.Errorf("op %[1]v", err) // want "error formatted with %v loses the error chain"
}
