// Package logfmt is outside errcontract's scope: log formatting may
// flatten errors to text.
package logfmt

import "fmt"

// Line renders an error for a log line.
func Line(err error) string {
	return fmt.Errorf("while reporting: %v", err).Error()
}
