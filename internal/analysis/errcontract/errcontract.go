// Package errcontract enforces the error contract of the networked
// boundary: errors that cross between internal/wire, internal/client,
// internal/server and internal/distnet must stay inspectable with
// errors.Is — typed sentinels, wrapped with %w — never flattened to
// text.
//
// The client's retry loop decides permanent-vs-transient via
// errors.Is(err, ErrVersionMismatch/ErrSeedMismatch/ErrRejected); the
// server maps core.ErrMismatch/ErrCorrupt to typed ack codes the same
// way. One fmt.Errorf("...: %v", err) anywhere on those paths severs
// the chain and turns a typed refusal into an infinitely retried
// string. The analyzer flags, in the boundary packages (non-test
// files):
//
//   - fmt.Errorf calls where an error-typed argument is formatted with
//     any verb but %w (each such diagnostic carries a mechanical
//     suggested fix, applied by `unionlint -fix`);
//   - fmt.Errorf calls passing err.Error() as an argument (the same
//     flattening, pre-chewed);
//   - == / != comparisons of err.Error() strings (string matching;
//     use errors.Is).
//
// Multi-error wrapping is part of the contract, not a violation:
// fmt.Errorf with several %w verbs (legal since Go 1.20) and
// errors.Join both preserve every branch of the chain for errors.Is,
// so neither is flagged — but a joined error formatted with %v is,
// like any other error: the server's drain path may combine a context
// error with per-connection close errors, and the combined chain must
// survive to the caller. Indexed directives (%[1]v) are parsed and
// checked against the argument they actually select.
package errcontract

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// DefaultScope is the set of packages forming the network boundary.
const DefaultScope = `(^|/)internal/(wire|client|server|distnet)(/|$)`

var scopeFlag = &analysis.Flag{
	Name:  "scope",
	Usage: "regexp of package import paths the analyzer applies to",
	Value: DefaultScope,
}

// Analyzer is the errcontract analyzer.
var Analyzer = &analysis.Analyzer{
	Name:  "errcontract",
	Doc:   "errors crossing the wire/client boundary must wrap with %w, not flatten to text",
	Flags: []*analysis.Flag{scopeFlag},
	Run:   run,
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func run(pass *analysis.Pass) error {
	scope, err := regexp.Compile(scopeFlag.Value)
	if err != nil {
		return err
	}
	if !scope.MatchString(pass.PkgPath()) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkErrorf(pass, n)
		case *ast.BinaryExpr:
			checkStringCompare(pass, n)
		}
		return true
	})
	return nil
}

// checkErrorf inspects one fmt.Errorf call.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if pass.IsTestFile(call.Pos()) {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); !ok || pn.Imported().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrorDotError(pass, arg) {
			pass.Reportf(arg.Pos(),
				"err.Error() passed to fmt.Errorf flattens the error chain; pass the error itself with %%w so errors.Is keeps working across the wire/client boundary")
		}
	}
	for _, v := range parseVerbs(lit.Value) {
		if v.verb == 'w' || v.argIndex >= len(call.Args)-1 {
			continue
		}
		arg := call.Args[1+v.argIndex]
		if isErrorDotError(pass, arg) || !isErrorTyped(pass, arg) {
			continue
		}
		d := analysis.Diagnostic{
			Pos: arg.Pos(),
			Message: fmt.Sprintf(
				"error formatted with %%%c loses the error chain at the wire/client boundary; wrap with %%w so errors.Is/As keep working", v.verb),
		}
		if fixed, ok := rewriteVerb(lit.Value, v, 'w'); ok {
			d.SuggestedFixes = []analysis.SuggestedFix{{
				Message: fmt.Sprintf("replace %%%c with %%w in the format string", v.verb),
				TextEdits: []analysis.TextEdit{{
					Pos:     lit.Pos(),
					End:     lit.End(),
					NewText: []byte(fixed),
				}},
			}}
		}
		pass.ReportDiag(d)
	}
}

// checkStringCompare flags err.Error() == "..." style matching.
func checkStringCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if pass.IsTestFile(be.Pos()) {
		return
	}
	if isErrorDotError(pass, be.X) || isErrorDotError(pass, be.Y) {
		pass.Reportf(be.OpPos,
			"comparing error strings; match errors with errors.Is against the typed sentinels instead")
	}
}

// isErrorTyped reports whether the expression's static type implements
// error.
func isErrorTyped(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	return t != nil && types.Implements(t, errorType)
}

// isErrorDotError matches a call of the Error() method on an error
// value.
func isErrorDotError(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorTyped(pass, sel.X)
}

// verb is one % directive located in the *raw source text* of a string
// literal (offsets index lit.Value, quotes included). Scanning raw
// text is sound because '%' is never produced by an escape sequence.
// argIndex is the 0-based format argument the directive consumes,
// accounting for explicit indexes (%[2]v selects argument 1, and the
// following unindexed directive continues from argument 2, as in fmt).
type verb struct {
	rawStart, rawEnd int // [start, end) of the whole directive in the raw literal
	verb             rune
	argIndex         int
}

// parseVerbs scans a string literal's source text for fmt directives
// (%% consumed; a malformed explicit index stops the scan
// conservatively, as does a *-width, which would shift the argument
// mapping — neither appears in this codebase).
func parseVerbs(raw string) []verb {
	var out []verb
	next := 0
	for i := 0; i < len(raw); i++ {
		if raw[i] != '%' {
			continue
		}
		start := i
		i++
		if i < len(raw) && raw[i] == '%' {
			continue // literal percent
		}
		// flags, width, precision
		for i < len(raw) && strings.ContainsRune("+-# 0123456789.", rune(raw[i])) {
			i++
		}
		if i < len(raw) && raw[i] == '*' {
			return out // *-width consumes an argument: bail out
		}
		if i < len(raw) && raw[i] == '[' {
			j, n := i+1, 0
			for j < len(raw) && raw[j] >= '0' && raw[j] <= '9' {
				n = n*10 + int(raw[j]-'0')
				j++
			}
			if j >= len(raw) || raw[j] != ']' || n == 0 {
				return out // malformed index: bail out
			}
			next = n - 1
			i = j + 1
		}
		if i >= len(raw) {
			break
		}
		out = append(out, verb{rawStart: start, rawEnd: i + 1, verb: rune(raw[i]), argIndex: next})
		next++
	}
	return out
}

// rewriteVerb returns the literal with v's verb rune replaced.
func rewriteVerb(raw string, v verb, to rune) (string, bool) {
	if v.rawEnd > len(raw) || v.rawEnd < 1 {
		return "", false
	}
	return raw[:v.rawEnd-1] + string(to) + raw[v.rawEnd:], true
}
