package bad

import "repro/internal/failpoint"

// A test may range over declared sites with a variable name; the
// chaos suites do exactly this, so no diagnostic here.
func chaos() {
	for _, site := range []string{failpoint.ServerAccept, failpoint.ClientDial} {
		failpoint.Enable(site, func() error { return nil })
		failpoint.Disable(site)
	}
	failpoint.Hits("client/dail") // want "failpoint name \"client/dail\" does not resolve to a declared site"
}

var _ = chaos
