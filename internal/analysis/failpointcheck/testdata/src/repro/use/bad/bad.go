// Package bad misnames one site and computes another in production
// code.
package bad

import "repro/internal/failpoint"

func siteName() string { return "server/accept" }

func serve() error {
	if err := failpoint.Inject("server/acept"); err != nil { // want "failpoint name \"server/acept\" does not resolve to a declared site"
		return err
	}
	failpoint.Enable(siteName(), func() error { return nil }) // want "failpoint name passed to Enable must be a site constant"
	return nil
}

var _ = serve
