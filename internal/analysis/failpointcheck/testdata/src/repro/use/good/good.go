// Package good uses only declared failpoint sites, by direct constant
// reference and through a local constant alias.
package good

import "repro/internal/failpoint"

const drainSite = failpoint.ClientDial

func serve() error {
	if err := failpoint.Inject(failpoint.ServerAccept); err != nil {
		return err
	}
	failpoint.Enable(failpoint.WireEncode, func() error { return nil })
	defer failpoint.Disable(failpoint.WireEncode)
	if err := failpoint.Inject(drainSite); err != nil {
		return err
	}
	_ = failpoint.Hits("wire/encode") // a literal is fine if it names a declared site
	return nil
}

var _ = serve
