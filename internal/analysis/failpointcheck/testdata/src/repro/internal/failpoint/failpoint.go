// Package failpoint is a stub of the real fault-injection registry:
// distinct named sites, so failpointcheck has a DeclaredSites fact to
// export and nothing to report here.
package failpoint

// The injection sites.
const (
	ServerAccept = "server/accept"
	ClientDial   = "client/dial"
	WireEncode   = "wire/encode"
)

// A Hook decides what an armed site does on each hit.
type Hook func() error

func Inject(name string) error   { return nil }
func Enable(name string, h Hook) {}
func Disable(name string)        {}
func Hits(name string) int64     { return 0 }
