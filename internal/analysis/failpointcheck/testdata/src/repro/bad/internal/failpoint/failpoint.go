// Package failpoint aliases one site under two names, which defeats
// "a failpoint is one named point".
package failpoint

const (
	AcceptAlias  = "server/accept"
	ServerAccept = "server/accept" // want "failpoint sites AcceptAlias and ServerAccept share the value \"server/accept\""
	ClientDial   = "client/dial"
)

func Inject(name string) error { return nil }
