// Package failpointcheck keeps the fault-injection registry honest:
// every failpoint name that production or test code arms, injects, or
// queries must resolve to a site constant declared in the failpoint
// package itself (internal/failpoint).
//
// The registry is string-keyed and process-global, so nothing at
// runtime stops a test from enabling "sever/accept" (note the typo)
// and then waiting forever for hits that never come: the production
// code injects "server/accept". The declaring package exports a
// DeclaredSites package fact (the sorted site names); user packages
// check each Inject/Enable/Disable/Hits name argument against it.
//
// Rules:
//
//   - in the declaring package, no two site constants may share a
//     string value (two names for one site defeats "named point");
//   - everywhere else, the name argument must be a compile-time
//     constant whose value is a declared site. A non-constant name is
//     tolerated in _test.go files (the chaos suites range over slices
//     of declared sites); in production code it is an error outright.
package failpointcheck

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// DeclaredSites is the package fact the failpoint package exports: the
// sorted string values of its site constants.
type DeclaredSites struct {
	Sites []string
}

// AFact marks DeclaredSites as a fact type.
func (*DeclaredSites) AFact() {}

// Analyzer is the failpointcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "failpointcheck",
	Doc: "require every failpoint name at arm/inject sites to resolve to a site constant " +
		"declared in the failpoint package",
	FactTypes: []analysis.Fact{(*DeclaredSites)(nil)},
	Run:       run,
}

// failpointPath reports whether path is the failpoint registry package.
func failpointPath(path string) bool {
	return path == "internal/failpoint" || strings.HasSuffix(path, "/internal/failpoint")
}

// siteFuncs are the failpoint functions whose first argument is a site
// name.
var siteFuncs = map[string]bool{
	"Inject":  true,
	"Enable":  true,
	"Disable": true,
	"Hits":    true,
}

func run(pass *analysis.Pass) error {
	if failpointPath(pass.PkgPath()) {
		checkDeclarations(pass)
		return nil
	}
	checkUses(pass)
	return nil
}

// checkDeclarations collects the declaring package's exported string
// constants as the site set, reports duplicate site values, and
// exports the DeclaredSites fact.
func checkDeclarations(pass *analysis.Pass) {
	scope := pass.Pkg.Scope()
	byValue := map[string]string{} // site value -> first constant name
	var sites []string
	for _, name := range scope.Names() { // sorted, so reports are deterministic
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || c.Val().Kind() != constant.String {
			continue
		}
		v := constant.StringVal(c.Val())
		if first, dup := byValue[v]; dup {
			pass.Reportf(c.Pos(),
				"failpoint sites %s and %s share the value %q; every site must be one distinct named point",
				first, name, v)
			continue
		}
		byValue[v] = name
		sites = append(sites, v)
	}
	if len(sites) == 0 {
		return
	}
	sort.Strings(sites)
	pass.ExportPackageFact(&DeclaredSites{Sites: sites})
}

// checkUses validates the name argument of every failpoint call in a
// user package against the declaring package's DeclaredSites fact.
func checkUses(pass *analysis.Pass) {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || !failpointPath(fn.Pkg().Path()) ||
			!siteFuncs[fn.Name()] || len(call.Args) < 1 {
			return true
		}
		arg := call.Args[0]
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			// Non-constant name: fine in tests (chaos suites range over
			// slices of declared sites), an error in production code.
			if !pass.IsTestFile(arg.Pos()) {
				pass.Reportf(arg.Pos(),
					"failpoint name passed to %s must be a site constant declared in %s; a computed name cannot be checked against the declared sites",
					fn.Name(), fn.Pkg().Path())
			}
			return true
		}
		var decl DeclaredSites
		if !pass.ImportPackageFact(fn.Pkg().Path(), &decl) {
			return true // driver without facts; nothing to check against
		}
		name := constant.StringVal(tv.Value)
		if !contains(decl.Sites, name) {
			pass.Reportf(arg.Pos(),
				"failpoint name %q does not resolve to a declared site; sites are the exported string constants of %s",
				name, fn.Pkg().Path())
		}
		return true
	})
}

// calleeFunc resolves a call's callee to a *types.Func, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return f
}

// contains reports whether sorted has v (the site lists are tiny, so a
// linear scan is fine and avoids assuming sortedness).
func contains(sorted []string, v string) bool {
	for _, s := range sorted {
		if s == v {
			return true
		}
	}
	return false
}
