package failpointcheck_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/failpointcheck"
)

func testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestFailpointcheck(t *testing.T) {
	analysistest.Run(t, testdata(t), failpointcheck.Analyzer,
		"repro/internal/failpoint",
		"repro/bad/internal/failpoint",
		"repro/use/good",
		"repro/use/bad",
	)
}
