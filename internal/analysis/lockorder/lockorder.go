// Package lockorder is the whole-module deadlock analyzer: it tracks
// which `// guards:`-annotated mutexes (lockcheck's grammar) each
// function may acquire, propagates those summaries across package
// boundaries as object facts, and reports the three ways the
// concurrent tier can wedge:
//
//   - self-deadlock: acquiring a mutex the function (or a transitive
//     callee) already holds — sync mutexes are not reentrant;
//   - lock ordering cycles: package P establishes mu1 → mu2 while
//     package Q establishes mu2 → mu1; each package exports its local
//     edges as a package fact and the package that closes the cycle
//     reports it with every edge's origin;
//   - blocking-while-locked: reaching an operation that may block
//     indefinitely — channel send/receive, select with no default,
//     time.Sleep, sync.WaitGroup.Wait, net dial/read/write/accept,
//     io.Reader/io.Writer calls (which is how client.Push* and the
//     wire codec are classified), or any call whose summary says so —
//     while a guards-annotated mutex is held. The relay tier's real
//     deadlock risk is exactly this shape: a flush that pushes
//     upstream TCP while holding a group lock stalls every absorb.
//
// The held-set tracking is lexical and per function declaration, like
// lockcheck: a `x.Lock()` statement adds the mutex, `x.Unlock()`
// removes it, `defer x.Unlock()` keeps it held to the end of the
// body. A `// locked: mu` doc annotation seeds the held set from the
// receiver's annotated mutexes. Function literals launched with `go`
// are checked as separate goroutines (their acquisitions do not count
// against the enclosing call path); deferred and inline literals are
// folded into the enclosing function. Unannotated mutexes and
// _test.go files are ignored.
//
// Three fact types cross package boundaries: LockSummary (object
// fact: what a function may acquire, and whether it may block),
// GuardedMutexes (package fact: which "Struct.field" mutexes are
// annotated, so locking an exported foreign mutex resolves), and
// LockGraph (package fact: the package's local ordering edges).
//
// A reviewed escape mirrors mergepure:seam:
//
//	// lockorder:allow <reason>
//
// on the offending line (or the line above) suppresses lockorder
// diagnostics there; the reason is mandatory — a bare annotation is
// itself reported.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// LockSummary is the object fact exported for a package-level function
// or method: the annotated mutexes it may (transitively) acquire, and
// whether it may block indefinitely.
type LockSummary struct {
	Acquires []LockAcquire
	Blocks   string // "" = not known to block; else a human-readable reason chain
}

// LockAcquire names one mutex a function may acquire and how.
type LockAcquire struct {
	Mutex string // "importpath.Struct.field"
	Via   string // human-readable chain, e.g. "locks server.group.mu in FlushRelay"
}

// AFact marks LockSummary as a fact type.
func (*LockSummary) AFact() {}

// GuardedMutexes is the package fact listing the package's
// `// guards:`-annotated mutex fields as "Struct.field" names, so a
// downstream package that locks an exported mutex field directly can
// recognize it.
type GuardedMutexes struct {
	Names []string
}

// AFact marks GuardedMutexes as a fact type.
func (*GuardedMutexes) AFact() {}

// LockGraph is the package fact carrying the package's local lock
// ordering edges: "while holding From, To was acquired at Site".
type LockGraph struct {
	Edges []LockEdge
}

// LockEdge is one ordering edge in the acquisition graph.
type LockEdge struct {
	From, To string
	Site     string // "FuncName (file.go:12)"
}

// AFact marks LockGraph as a fact type.
func (*LockGraph) AFact() {}

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "build whole-module lock acquisition summaries over `// guards:`-annotated mutexes; " +
		"report self-deadlocks, cross-package ordering cycles, and blocking calls made while locked",
	FactTypes: []analysis.Fact{(*LockSummary)(nil), (*GuardedMutexes)(nil), (*LockGraph)(nil)},
	Run:       run,
}

// allowPrefix introduces the reviewed blocking-while-locked escape.
const allowPrefix = "lockorder:allow"

// A heldLock is one mutex in the lexical held set.
type heldLock struct {
	id  string
	pos token.Pos
}

// A callEvent is one synchronous call made with a held-set snapshot.
type callEvent struct {
	pos  token.Pos
	fn   *types.Func
	held []heldLock
}

// A blockEvent is one directly blocking operation.
type blockEvent struct {
	pos  token.Pos
	desc string
	held []heldLock
}

// A structMutex is one annotated mutex field of a local struct.
type structMutex struct {
	field, id string
}

// funcRec accumulates one function's lock behavior.
type funcRec struct {
	name     string
	pos      token.Pos
	obj      types.Object
	direct   map[string]token.Pos // mutex ID → first acquisition site
	calls    []callEvent
	deferred []*types.Func // `defer f()` callees: summary-only
	blocks   []blockEvent

	// resolve() results:
	acq             map[string]string // transitive: mutex ID → via chain
	blockReason     string
	visited, solved bool
}

type allowKey struct {
	file string
	line int
}

// localEdge is one ordering edge observed in this package.
type localEdge struct {
	from, to string
	pos      token.Pos
	site     string
}

// state is the per-pass working set.
type state struct {
	pass      *analysis.Pass
	annotated map[*types.Var]string      // local annotated mutex field → mutex ID
	byStruct  map[string][]structMutex   // local struct name → its annotated mutexes
	names     []string                   // local "Struct.field" names (GuardedMutexes fact)
	foreignMu map[string]map[string]bool // pkg path → annotated "Struct.field" set
	recs      []*funcRec
	byObj     map[types.Object]*funcRec
	edges     map[[2]string]*localEdge // (from, to) → first site
	allow     map[allowKey]bool
}

func run(pass *analysis.Pass) error {
	st := &state{
		pass:      pass,
		annotated: map[*types.Var]string{},
		byStruct:  map[string][]structMutex{},
		foreignMu: map[string]map[string]bool{},
		byObj:     map[types.Object]*funcRec{},
		edges:     map[[2]string]*localEdge{},
	}
	st.buildAllow()
	st.collectMutexes()

	// Walk every non-test function declaration, tracking the lexical
	// held set and collecting acquire/call/block events.
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			rec := &funcRec{
				name:   funcName(fd),
				pos:    fd.Pos(),
				obj:    pass.TypesInfo.Defs[fd.Name],
				direct: map[string]token.Pos{},
			}
			if rec.obj != nil {
				st.byObj[rec.obj] = rec
			}
			w := &walker{st: st, rec: rec, held: st.seedHeld(fd)}
			w.scan(fd.Body)
			st.recs = append(st.recs, rec)
		}
	}

	// Diagnostics: self-deadlocks and blocking-while-locked, plus the
	// call-derived ordering edges.
	for _, rec := range st.recs {
		st.checkRec(rec)
	}
	st.reportCycles()
	st.exportFacts()
	return nil
}

// --- annotation collection -------------------------------------------------

// collectMutexes indexes the package's `// guards:`-annotated mutex
// fields (lockcheck owns validating the annotations themselves).
func (st *state) collectMutexes() {
	pkgPath := analysis.TrimPkgPath(st.pass.Pkg.Path())
	for _, file := range st.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			stt, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range stt.Fields.List {
				if !hasGuardsComment(f) || len(f.Names) != 1 {
					continue
				}
				v, ok := st.pass.TypesInfo.Defs[f.Names[0]].(*types.Var)
				if !ok || !isMutexType(v.Type()) {
					continue
				}
				id := pkgPath + "." + ts.Name.Name + "." + v.Name()
				st.annotated[v] = id
				st.byStruct[ts.Name.Name] = append(st.byStruct[ts.Name.Name],
					structMutex{field: v.Name(), id: id})
				st.names = append(st.names, ts.Name.Name+"."+v.Name())
			}
			return true
		})
	}
	sort.Strings(st.names)
}

// hasGuardsComment reports whether field f carries a guards: comment
// (doc or trailing), lockcheck's grammar.
func hasGuardsComment(f *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, "guards:") {
				return true
			}
		}
	}
	return false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == "sync" &&
		(o.Name() == "Mutex" || o.Name() == "RWMutex")
}

// mutexOf resolves a Lock/Unlock receiver expression to an annotated
// mutex ID: local fields through the annotation index, foreign fields
// through the owning package's GuardedMutexes fact.
func (st *state) mutexOf(x ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s, ok := st.pass.TypesInfo.Selections[sel]
	if !ok {
		return "", false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() || !isMutexType(v.Type()) {
		return "", false
	}
	if id, ok := st.annotated[v]; ok {
		return id, true
	}
	pkg := v.Pkg()
	if pkg == nil {
		return "", false
	}
	path := analysis.TrimPkgPath(pkg.Path())
	if path == analysis.TrimPkgPath(st.pass.Pkg.Path()) {
		return "", false // local but unannotated
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	key := named.Obj().Name() + "." + v.Name()
	set, cached := st.foreignMu[path]
	if !cached {
		set = map[string]bool{}
		var gm GuardedMutexes
		if st.pass.ImportPackageFact(path, &gm) {
			for _, n := range gm.Names {
				set[n] = true
			}
		}
		st.foreignMu[path] = set
	}
	if set[key] {
		return path + "." + key, true
	}
	return "", false
}

// seedHeld builds the initial held set from a `// locked: mu` doc
// annotation: the named (or, bare, all) annotated mutexes of the
// receiver's struct are held by contract when the function runs.
func (st *state) seedHeld(fd *ast.FuncDecl) []heldLock {
	all, names := parseLockedAnnotation(fd)
	if !all && len(names) == 0 {
		return nil
	}
	recv := receiverTypeName(fd)
	if recv == "" {
		return nil
	}
	var held []heldLock
	for _, m := range st.byStruct[recv] {
		if all || names[m.field] {
			held = append(held, heldLock{id: m.id, pos: fd.Pos()})
		}
	}
	return held
}

// parseLockedAnnotation reads lockcheck's `// locked:` doc-comment
// grammar: bare means every mutex, otherwise comma-separated names
// (with an optional trailing free-text reason per name).
func parseLockedAnnotation(fd *ast.FuncDecl) (all bool, names map[string]bool) {
	names = map[string]bool{}
	if fd.Doc == nil {
		return false, names
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		rest, ok := strings.CutPrefix(text, "locked:")
		if !ok {
			continue
		}
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return true, names
		}
		for _, n := range strings.Split(rest, ",") {
			n = strings.TrimSpace(n)
			if i := strings.IndexAny(n, " \t"); i >= 0 {
				n = n[:i]
			}
			if n != "" {
				names[n] = true
			}
		}
	}
	return false, names
}

func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func funcName(fd *ast.FuncDecl) string {
	if recv := receiverTypeName(fd); recv != "" {
		return recv + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// --- body walk -------------------------------------------------------------

// walker tracks the lexical held set through one function body.
type walker struct {
	st   *state
	rec  *funcRec
	held []heldLock
}

func (w *walker) snapshot() []heldLock {
	if len(w.held) == 0 {
		return nil
	}
	return append([]heldLock(nil), w.held...)
}

func (w *walker) release(id string) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].id == id {
			out := make([]heldLock, 0, len(w.held)-1)
			out = append(out, w.held[:i]...)
			w.held = append(out, w.held[i+1:]...)
			return
		}
	}
}

func (w *walker) holds(id string) *heldLock {
	for i := range w.held {
		if w.held[i].id == id {
			return &w.held[i]
		}
	}
	return nil
}

// scan visits n and its children in source order, maintaining the held
// set. It is a pre-order walk: branch-local lock state leaks into the
// following statements (lexical, like lockcheck — documented).
func (w *walker) scan(n ast.Node) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.GoStmt:
		w.scanGo(n)
		return
	case *ast.DeferStmt:
		w.scanDefer(n)
		return
	case *ast.SelectStmt:
		w.scanSelect(n)
		return
	case *ast.SendStmt:
		w.rec.blocks = append(w.rec.blocks,
			blockEvent{n.Arrow, "sends on a channel", w.snapshot()})
		w.scan(n.Chan)
		w.scan(n.Value)
		return
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			w.rec.blocks = append(w.rec.blocks,
				blockEvent{n.OpPos, "receives from a channel", w.snapshot()})
		}
		w.scan(n.X)
		return
	case *ast.RangeStmt:
		if tv, ok := w.st.pass.TypesInfo.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.rec.blocks = append(w.rec.blocks,
					blockEvent{n.For, "ranges over a channel", w.snapshot()})
			}
		}
	case *ast.CallExpr:
		w.scanCall(n)
		return
	case *ast.FuncLit:
		// A literal that is not immediately invoked (assigned, passed as
		// a callback): check its body under the current held set — the
		// common case is synchronous invocation by the callee — and fold
		// its behavior into this function's record.
		sub := &walker{st: w.st, rec: w.rec, held: w.snapshot()}
		sub.scan(n.Body)
		return
	}
	w.children(n)
}

// children recurses into n's direct children in source order.
func (w *walker) children(n ast.Node) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		w.scan(c)
		return false
	})
}

// scanGo handles `go f(...)`: the arguments are evaluated here, but
// the call runs on another goroutine, so its acquisitions never order
// against the caller's held set. A literal body is still checked as
// its own (unexported) record.
func (w *walker) scanGo(n *ast.GoStmt) {
	for _, a := range n.Call.Args {
		w.scan(a)
	}
	if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
		rec := &funcRec{
			name:   "goroutine in " + w.rec.name,
			pos:    lit.Pos(),
			direct: map[string]token.Pos{},
		}
		sub := &walker{st: w.st, rec: rec}
		sub.scan(lit.Body)
		w.st.recs = append(w.st.recs, rec)
	} else if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok {
		w.scan(sel.X)
	}
}

// scanDefer handles `defer f(...)`: a deferred Unlock keeps the mutex
// held to the end of the body; a deferred literal runs with an unknown
// held set, so it is checked fresh and its acquisitions fold into the
// summary; a deferred named call contributes to the summary only.
func (w *walker) scanDefer(n *ast.DeferStmt) {
	if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
			if _, ok := w.st.mutexOf(sel.X); ok {
				return
			}
		}
	}
	for _, a := range n.Call.Args {
		w.scan(a)
	}
	if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
		sub := &walker{st: w.st, rec: w.rec}
		sub.scan(lit.Body)
		return
	}
	if fn := calleeFunc(w.st.pass, n.Call); fn != nil {
		w.rec.deferred = append(w.rec.deferred, fn)
	}
}

// scanSelect records a block event for a select with no default case
// and walks the clause bodies (communication expressions are skipped:
// select never blocks on an individual case).
func (w *walker) scanSelect(n *ast.SelectStmt) {
	hasDefault := false
	for _, c := range n.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		w.rec.blocks = append(w.rec.blocks,
			blockEvent{n.Select, "blocks in a select with no default case", w.snapshot()})
	}
	for _, c := range n.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		for _, s := range cc.Body {
			w.scan(s)
		}
	}
}

// scanCall handles mutex operations, immediately-invoked literals, and
// ordinary calls.
func (w *walker) scanCall(call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if id, ok := w.st.mutexOf(sel.X); ok {
				if h := w.holds(id); h != nil {
					w.st.report(call.Pos(),
						"%s re-locks %s (held since %s) — guaranteed self-deadlock: sync mutexes are not reentrant",
						w.rec.name, shortMutex(id), w.st.posStr(h.pos))
				} else {
					for _, h := range w.held {
						w.st.addEdge(h.id, id, call.Pos(), w.rec.name)
					}
					w.held = append(w.held, heldLock{id: id, pos: call.Pos()})
				}
				if _, seen := w.rec.direct[id]; !seen {
					w.rec.direct[id] = call.Pos()
				}
				return
			}
		case "Unlock", "RUnlock":
			if id, ok := w.st.mutexOf(sel.X); ok {
				w.release(id)
				return
			}
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately invoked: the body runs right here, under the
		// current held set, and its lock state flows onward.
		for _, a := range call.Args {
			w.scan(a)
		}
		w.children(lit.Body)
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.scan(sel.X)
	}
	for _, a := range call.Args {
		w.scan(a)
	}
	fn := calleeFunc(w.st.pass, call)
	if fn == nil {
		return
	}
	if desc := directBlockDesc(fn); desc != "" {
		w.rec.blocks = append(w.rec.blocks, blockEvent{call.Pos(), desc, w.snapshot()})
		return
	}
	w.rec.calls = append(w.rec.calls, callEvent{call.Pos(), fn, w.snapshot()})
}

// calleeFunc resolves a call's callee to a *types.Func, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return f
}

// directBlockDesc classifies callees that may block indefinitely on
// their own: sleeps, WaitGroup/Cond waits, and the net/io calls that
// sit under every wire read, write, and dial in the repo. Close and
// deadline setters are deliberately absent — shutdown paths call them
// under coordinator locks, and they do not block.
func directBlockDesc(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	name := fn.Name()
	switch pkg.Path() {
	case "time":
		if name == "Sleep" {
			return "calls time.Sleep"
		}
	case "sync":
		if name == "Wait" {
			return "calls sync." + recvTypeOf(fn) + ".Wait"
		}
	case "net":
		if strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen") ||
			name == "Read" || name == "Write" || name == "Accept" {
			return "performs net I/O (net." + methodDisplay(fn) + ")"
		}
	case "io":
		switch name {
		case "Read", "Write", "ReadFull", "ReadAtLeast", "ReadAll",
			"Copy", "CopyN", "CopyBuffer", "WriteString":
			return "performs io." + methodDisplay(fn) + " I/O"
		}
	}
	return ""
}

// recvTypeOf names a method's receiver type ("WaitGroup"), or "".
func recvTypeOf(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func methodDisplay(fn *types.Func) string {
	if recv := recvTypeOf(fn); recv != "" {
		return recv + "." + fn.Name()
	}
	return fn.Name()
}

// --- summary resolution ----------------------------------------------------

// summaryOf returns fn's transitive (acquires, blocks) summary: local
// functions resolve through their records, everything else through an
// imported LockSummary fact (a miss means "acquires nothing, never
// blocks" — interface calls and closed-source callees are trusted).
func (st *state) summaryOf(fn *types.Func) (map[string]string, string) {
	if rec, ok := st.byObj[types.Object(fn)]; ok {
		st.resolve(rec)
		return rec.acq, rec.blockReason
	}
	var s LockSummary
	if st.pass.ImportObjectFact(fn, &s) {
		acq := make(map[string]string, len(s.Acquires))
		for _, a := range s.Acquires {
			acq[a.Mutex] = a.Via
		}
		return acq, s.Blocks
	}
	return nil, ""
}

// resolve computes rec's transitive acquire set and blocking reason
// (memoized, with a cycle guard for recursion).
func (st *state) resolve(rec *funcRec) {
	if rec.solved || rec.visited {
		return
	}
	rec.visited = true
	defer func() { rec.visited = false; rec.solved = true }()

	rec.acq = make(map[string]string, len(rec.direct))
	for id := range rec.direct {
		rec.acq[id] = "locks " + shortMutex(id) + " in " + rec.name
	}
	if len(rec.blocks) > 0 {
		rec.blockReason = rec.blocks[0].desc
	}
	merge := func(fn *types.Func) {
		acq, blocks := st.summaryOf(fn)
		for _, m := range sortedKeys(acq) {
			if _, ok := rec.acq[m]; !ok {
				rec.acq[m] = "calls " + st.fnDisplay(fn) + ", which " + acq[m]
			}
		}
		if rec.blockReason == "" && blocks != "" {
			rec.blockReason = "calls " + st.fnDisplay(fn) + ", which " + blocks
		}
	}
	for _, ev := range rec.calls {
		merge(ev.fn)
	}
	for _, fn := range rec.deferred {
		merge(fn)
	}
}

// checkRec reports rec's self-deadlocks and blocking-while-locked
// findings, and records the ordering edges its calls imply.
func (st *state) checkRec(rec *funcRec) {
	for _, ev := range rec.blocks {
		if len(ev.held) == 0 {
			continue
		}
		h := ev.held[len(ev.held)-1]
		st.report(ev.pos,
			"%s %s while holding %s (locked at %s) — may block indefinitely with the lock held; unlock first, or annotate a reviewed bounded wait with // lockorder:allow <reason>",
			rec.name, ev.desc, shortMutex(h.id), st.posStr(h.pos))
	}
	for _, ev := range rec.calls {
		if len(ev.held) == 0 {
			continue
		}
		acq, blocks := st.summaryOf(ev.fn)
		for _, h := range ev.held {
			for _, m := range sortedKeys(acq) {
				if m == h.id {
					st.report(ev.pos,
						"%s calls %s while holding %s, and %s %s — self-deadlock: sync mutexes are not reentrant",
						rec.name, st.fnDisplay(ev.fn), shortMutex(h.id), st.fnDisplay(ev.fn), acq[m])
					continue
				}
				st.addEdge(h.id, m, ev.pos, rec.name)
			}
		}
		if blocks != "" {
			h := ev.held[len(ev.held)-1]
			st.report(ev.pos,
				"%s calls %s, which %s, while holding %s (locked at %s) — may block indefinitely with the lock held; unlock first, or annotate a reviewed bounded wait with // lockorder:allow <reason>",
				rec.name, st.fnDisplay(ev.fn), blocks, shortMutex(h.id), st.posStr(h.pos))
		}
	}
}

// addEdge records a local ordering edge (first site wins).
func (st *state) addEdge(from, to string, pos token.Pos, fn string) {
	if from == to {
		return
	}
	key := [2]string{from, to}
	if _, ok := st.edges[key]; ok {
		return
	}
	st.edges[key] = &localEdge{
		from: from, to: to, pos: pos,
		site: fn + " (" + st.posStr(pos) + ")",
	}
}

// --- cycle detection -------------------------------------------------------

// graphEdge is one edge of the combined (local + imported) graph.
type graphEdge struct {
	to, site string
}

// reportCycles combines this package's edges with every imported
// LockGraph fact and reports each ordering cycle that a local edge
// closes. Go's import graph is acyclic, so for any cross-package
// cycle exactly one package sees all of its edges — the reporting is
// naturally deduplicated at the package that closes the cycle.
func (st *state) reportCycles() {
	if len(st.edges) == 0 {
		return
	}
	adj := map[string][]graphEdge{}
	own := analysis.TrimPkgPath(st.pass.Pkg.Path())
	for _, pf := range st.pass.AllPackageFacts() {
		g, ok := pf.Fact.(*LockGraph)
		if !ok || analysis.TrimPkgPath(pf.Path) == own {
			continue
		}
		for _, e := range g.Edges {
			adj[e.From] = append(adj[e.From], graphEdge{e.To, e.Site})
		}
	}
	locals := make([]*localEdge, 0, len(st.edges))
	for _, e := range st.edges {
		adj[e.from] = append(adj[e.from], graphEdge{e.to, e.site})
		locals = append(locals, e)
	}
	for from := range adj {
		es := adj[from]
		sort.Slice(es, func(i, j int) bool {
			return es[i].to < es[j].to || (es[i].to == es[j].to && es[i].site < es[j].site)
		})
	}
	sort.Slice(locals, func(i, j int) bool { return locals[i].pos < locals[j].pos })

	reported := map[string]bool{}
	for _, e := range locals {
		path := findPath(adj, e.to, e.from)
		if path == nil {
			continue
		}
		nodes := []string{e.from, e.to}
		var chain strings.Builder
		chain.WriteString(shortMutex(e.from) + " → " + shortMutex(e.to))
		cur := e.to
		for _, step := range path {
			chain.WriteString(" → " + shortMutex(step.to) + " (" + shortMutex(cur) +
				" → " + shortMutex(step.to) + " at " + step.site + ")")
			if step.to != e.from {
				nodes = append(nodes, step.to)
			}
			cur = step.to
		}
		sort.Strings(nodes)
		key := strings.Join(nodes, "|")
		if reported[key] {
			continue
		}
		reported[key] = true
		st.report(e.pos, "lock ordering cycle: %s — this call acquires %s while %s is held; consistent acquisition order required",
			chain.String(), shortMutex(e.to), shortMutex(e.from))
	}
}

// findPath returns a shortest edge path from `from` to `to` over adj,
// or nil. BFS over a deterministic adjacency order.
func findPath(adj map[string][]graphEdge, from, to string) []graphEdge {
	type queued struct {
		node string
		path []graphEdge
	}
	seen := map[string]bool{from: true}
	queue := []queued{{node: from}}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for _, e := range adj[q.node] {
			path := append(append([]graphEdge(nil), q.path...), e)
			if e.to == to {
				return path
			}
			if !seen[e.to] {
				seen[e.to] = true
				queue = append(queue, queued{e.to, path})
			}
		}
	}
	return nil
}

// --- fact export -----------------------------------------------------------

// exportFacts publishes the package's annotated mutexes, ordering
// edges, and per-function lock summaries.
func (st *state) exportFacts() {
	if len(st.names) > 0 {
		st.pass.ExportPackageFact(&GuardedMutexes{Names: st.names})
	}
	if len(st.edges) > 0 {
		keys := make([][2]string, 0, len(st.edges))
		for k := range st.edges {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
		})
		g := &LockGraph{}
		for _, k := range keys {
			e := st.edges[k]
			g.Edges = append(g.Edges, LockEdge{From: e.from, To: e.to, Site: e.site})
		}
		st.pass.ExportPackageFact(g)
	}
	for _, rec := range st.recs {
		if rec.obj == nil {
			continue
		}
		st.resolve(rec)
		if len(rec.acq) == 0 && rec.blockReason == "" {
			continue
		}
		if _, ok := analysis.ObjectPath(rec.obj); !ok {
			continue
		}
		s := &LockSummary{Blocks: rec.blockReason}
		for _, m := range sortedKeys(rec.acq) {
			s.Acquires = append(s.Acquires, LockAcquire{Mutex: m, Via: rec.acq[m]})
		}
		st.pass.ExportObjectFact(rec.obj, s)
	}
}

// --- lockorder:allow -------------------------------------------------------

// buildAllow indexes `// lockorder:allow <reason>` annotations. A bare
// annotation still suppresses (it was clearly intentional) but is
// reported: the reason is the review.
func (st *state) buildAllow() {
	st.allow = map[allowKey]bool{}
	for _, f := range st.pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				text = strings.TrimPrefix(text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := st.pass.Fset.Position(c.Pos())
				if strings.TrimSpace(text[len(allowPrefix):]) == "" {
					st.pass.Reportf(c.Pos(),
						"lockorder:allow needs a reason: say why this wait is bounded and cannot wedge the lock's other users")
				}
				st.allow[allowKey{pos.Filename, pos.Line}] = true
				st.allow[allowKey{pos.Filename, pos.Line + 1}] = true
			}
		}
	}
}

// report emits a diagnostic unless a lockorder:allow annotation covers
// its line (unionlint:allow lockorder applies too, via Reportf).
func (st *state) report(pos token.Pos, format string, args ...any) {
	p := st.pass.Fset.Position(pos)
	if st.allow[allowKey{p.Filename, p.Line}] {
		return
	}
	st.pass.Reportf(pos, format, args...)
}

// --- small helpers ---------------------------------------------------------

// shortMutex trims a mutex ID's import path to its last element:
// "repro/internal/server.group.mu" → "server.group.mu".
func shortMutex(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}

// posStr renders a position as "file.go:12".
func (st *state) posStr(pos token.Pos) string {
	p := st.pass.Fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + itoa(p.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// fnDisplay renders a callee for diagnostics: local functions by name,
// foreign ones package-qualified.
func (st *state) fnDisplay(fn *types.Func) string {
	name := fn.Name()
	if p, ok := analysis.ObjectPath(fn); ok {
		name = p
	}
	if fn.Pkg() != nil && fn.Pkg() != st.pass.Pkg {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
