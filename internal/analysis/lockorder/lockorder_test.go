package lockorder_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

func testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestLockorder pins the four scenarios the whole-module analysis
// exists for: a cross-package ordering cycle (closed in locks/c using
// the LockGraph fact exported by locks/b and the GuardedMutexes fact
// from locks/a), self-deadlocks (direct re-lock, via a local callee,
// and via an imported LockSummary fact), blocking-while-locked (direct
// ops, a cross-package call classified through its fact, and a
// `// locked:` seeded held set), and the lockorder:allow escape (with
// and without the mandatory reason).
func TestLockorder(t *testing.T) {
	analysistest.Run(t, testdata(t), lockorder.Analyzer,
		"repro/internal/locks/a",
		"repro/internal/locks/b",
		"repro/internal/locks/c",
		"repro/internal/locks/blocking",
		"repro/internal/locks/held",
	)
}
