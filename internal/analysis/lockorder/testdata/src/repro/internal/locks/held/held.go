// Package held pins blocking-while-locked: direct blocking ops under
// a guards-annotated mutex, a cross-package call classified through
// its LockSummary fact, the `// locked:` seeded held set, and the
// lockorder:allow escape (reason mandatory).
package held

import (
	"sync"
	"time"

	"repro/internal/locks/blocking"
)

// Box is locked state with a channel.
type Box struct {
	mu sync.Mutex // guards: v
	v  int
	ch chan int
}

// SleepLocked sleeps with the lock held.
func (b *Box) SleepLocked() {
	b.mu.Lock()
	defer b.mu.Unlock()
	time.Sleep(time.Millisecond) // want "may block indefinitely"
}

// PushLocked calls a blocking function from another package while
// locked; the Blocks reason arrives via blocking.Upstream's fact.
func (b *Box) PushLocked() {
	b.mu.Lock()
	blocking.Upstream() // want "may block indefinitely"
	b.mu.Unlock()
}

// RecvLocked receives from a channel while locked.
func (b *Box) RecvLocked() {
	b.mu.Lock()
	b.v = <-b.ch // want "may block indefinitely"
	b.mu.Unlock()
}

// PollLocked is fine: a select with a default case never blocks.
func (b *Box) PollLocked() {
	b.mu.Lock()
	select {
	case v := <-b.ch:
		b.v = v
	default:
	}
	b.mu.Unlock()
}

// UnlockedSleep is fine: the sleep happens after the unlock.
func (b *Box) UnlockedSleep() {
	b.mu.Lock()
	b.v++
	b.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// flushLocked blocks while its callers hold mu by contract.
//
// locked: mu
func (b *Box) flushLocked() {
	time.Sleep(time.Millisecond) // want "may block indefinitely"
}

// AllowedSleep is a reviewed, bounded wait: the annotation (with its
// mandatory reason) suppresses the diagnostic.
func (b *Box) AllowedSleep() {
	b.mu.Lock()
	// lockorder:allow bounded 1ms settle wait, reviewed: no other path takes mu meanwhile
	time.Sleep(time.Millisecond)
	b.mu.Unlock()
}

// BareAllow forgets the reason: the annotation still suppresses, but
// is itself reported.
func (b *Box) BareAllow() {
	b.mu.Lock()
	/* lockorder:allow */ // want "needs a reason"
	time.Sleep(time.Millisecond)
	b.mu.Unlock()
}
