// Package b establishes the Beta.mu → Alpha.Mu ordering edge that
// package c will close into a cycle, and hosts the two local
// self-deadlock shapes.
package b

import (
	"sync"

	"repro/internal/locks/a"
)

// Beta is this package's locked state.
type Beta struct {
	mu sync.Mutex // guards: n
	n  int
}

var shared Beta

// BThenA locks Beta.mu and then calls into a, which locks Alpha.Mu:
// the ordering edge this package exports in its LockGraph fact.
func BThenA() {
	shared.mu.Lock()
	defer shared.mu.Unlock()
	a.LockA()
}

// LockB takes only Beta.mu (package c calls it while holding Alpha.Mu
// to close the cycle).
func LockB() {
	shared.mu.Lock()
	shared.n++
	shared.mu.Unlock()
}

// DoubleLock re-locks the mutex it already holds.
func DoubleLock() {
	shared.mu.Lock()
	shared.mu.Lock() // want "self-deadlock"
	shared.mu.Unlock()
}

// Reacquire holds Beta.mu across a call to a helper that locks it
// again.
func Reacquire() {
	shared.mu.Lock()
	bump() // want "self-deadlock"
	shared.mu.Unlock()
}

func bump() {
	shared.mu.Lock()
	shared.n++
	shared.mu.Unlock()
}
