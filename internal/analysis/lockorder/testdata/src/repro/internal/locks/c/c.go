// Package c imports both lock owners and closes the cross-package
// ordering cycle: b established Beta.mu → Alpha.Mu, and AThenB here
// acquires Beta.mu while holding Alpha.Mu. Neither a nor b can see
// the cycle alone — only the facts make it reportable.
package c

import (
	"repro/internal/locks/a"
	"repro/internal/locks/b"
)

// AThenB locks Alpha.Mu directly (resolved through a's GuardedMutexes
// fact) and then enters b.
func AThenB() {
	a.Shared.Mu.Lock()
	defer a.Shared.Mu.Unlock()
	b.LockB() // want "lock ordering cycle"
}

// Twice holds Alpha.Mu across a call that re-acquires it — the
// cross-package self-deadlock, visible only through a.LockA's
// imported LockSummary fact.
func Twice() {
	a.Shared.Mu.Lock()
	defer a.Shared.Mu.Unlock()
	a.LockA() // want "self-deadlock"
}
