// Package a owns an exported guards-annotated mutex that downstream
// packages lock both through LockA and (unwisely) directly.
package a

import "sync"

// Alpha is shared state with an exported mutex.
type Alpha struct {
	Mu sync.Mutex // guards: N
	N  int
}

// Shared is the package's instance.
var Shared Alpha

// LockA bumps the counter under Mu.
func LockA() {
	Shared.Mu.Lock()
	Shared.N++
	Shared.Mu.Unlock()
}
