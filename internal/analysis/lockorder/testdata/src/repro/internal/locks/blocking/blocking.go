// Package blocking exports a function whose LockSummary fact carries
// a Blocks reason, like client.Push in the real tree.
package blocking

import "time"

// Upstream simulates a push that stalls on the network.
func Upstream() {
	time.Sleep(time.Millisecond)
}
