package hotpathalloc_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotpathalloc"
)

func TestHotpathalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "hot")
}

// TestBaselineGating checks that baselined counts suppress exactly
// their budget: hotbase's composite and append are accepted, and one
// of its two makes is — when a bucket exceeds its count, every site in
// the bucket is reported (line numbers are not part of the key).
func TestBaselineGating(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline")
	content := "# test baseline\n" +
		"hotbase\tSketch.Process\tcomposite\t1\n" +
		"hotbase\tSketch.Process\tappend\t1\n" +
		"hotbase\tSketch.Process\tmake\t1\n"
	if err := os.WriteFile(baseline, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	f := hotpathalloc.Analyzer.Lookup("baseline")
	old := f.Value
	f.Value = baseline
	defer func() { f.Value = old }()
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "hotbase")
}
