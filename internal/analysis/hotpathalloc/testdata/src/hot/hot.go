// Package hot is the hotpathalloc golden package. Its files live under
// testdata, so baseline auto-discovery is disabled and every site in a
// hotpath function is reported.
package hot

type entry struct{ w uint64 }

// Sketch is a miniature of the real samplers.
type Sketch struct {
	entries map[uint64]entry
	buf     []uint64
}

// Process observes one item.
//
// hotpath: called once per stream item.
func (s *Sketch) Process(label uint64) {
	s.entries[label] = entry{w: 1} // want "composite literal"
	s.buf = append(s.buf, label)   // want "append call"
	tmp := make([]uint64, 1)       // want "make call"
	tmp[0] = label
	p := new(entry) // want "new call"
	_ = p
}

// Each visits retained items.
//
// hotpath: called once per stream item.
func (s *Sketch) Each(f func(uint64)) {
	g := func(x uint64) { f(x) } // want "function literal"
	for l := range s.entries {
		g(l)
	}
}

// Reset is a cold path: allocations are fine without annotation.
func (s *Sketch) Reset() {
	s.entries = map[uint64]entry{}
	s.buf = make([]uint64, 0, 16)
}

// Lookup is hot but allocation-free: fine.
//
// hotpath: called once per stream item.
func (s *Sketch) Lookup(label uint64) bool {
	_, ok := s.entries[label]
	return ok
}
