// Package hotpathalloc flags allocation sites inside functions
// annotated `// hotpath:` — the per-item Process paths, where an
// accidental allocation multiplies by the stream length.
//
// A function whose doc comment contains a line starting with
//
//	// hotpath:
//
// is checked for the syntactic allocators: composite literals, make,
// new, append, and function literals (closure capture). Each is a
// warning, not proof of a heap allocation (escape analysis may keep
// it on the stack) — the point is that a *new* one appearing in a
// Process path should be a conscious, reviewed decision.
//
// Existing, accepted sites live in a baseline file (default:
// <module>/lint/hotpathalloc.baseline, discovered by walking up from
// the source files; override with -hotpathalloc.baseline). A finding
// is only reported when a (package, function, kind) key exceeds its
// baselined count, so the analyzer gates new debt without forcing a
// rewrite of the old. The baseline is generated, not hand-edited;
// regenerate with:
//
//	unionlint -hotpathalloc.update ./...
//
// _test.go files are skipped.
package hotpathalloc

import (
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

var baselineFlag = &analysis.Flag{
	Name:  "baseline",
	Usage: "path to the accepted-allocations baseline file (default: <module>/lint/hotpathalloc.baseline)",
}

var writeFlag = &analysis.Flag{
	Name:  "write",
	Usage: "set to 1/true to append observed allocation counts to the baseline file instead of reporting",
}

// Analyzer is the hotpathalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name:  "hotpathalloc",
	Doc:   "flag new allocation sites in `// hotpath:`-annotated functions (baseline-gated)",
	Flags: []*analysis.Flag{baselineFlag, writeFlag},
	Run:   run,
}

// site is one observed allocation.
type site struct {
	key allocKey
	d   analysis.Diagnostic
}

// allocKey identifies a baseline bucket. Line numbers are deliberately
// excluded so unrelated edits do not invalidate the baseline.
type allocKey struct {
	pkg, fn, kind string
}

func (k allocKey) String() string { return k.pkg + "\t" + k.fn + "\t" + k.kind }

func run(pass *analysis.Pass) error {
	var sites []site
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			fn := funcName(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				kind, detail := classifyAlloc(pass, n)
				if kind == "" {
					return true
				}
				sites = append(sites, site{
					key: allocKey{pass.PkgPath(), fn, kind},
					d: analysis.Diagnostic{
						Pos: n.Pos(),
						Message: fmt.Sprintf(
							"%s in hotpath function %s; per-item allocations multiply by stream length — hoist it, reuse a buffer, or accept it into lint/hotpathalloc.baseline", detail, fn),
					},
				})
				return true
			})
		}
	}
	if len(sites) == 0 {
		return nil
	}

	if isSet(writeFlag.Value) {
		return writeBaseline(pass, sites)
	}

	baseline, err := loadBaseline(pass)
	if err != nil {
		return err
	}
	counts := map[allocKey]int{}
	for _, s := range sites {
		counts[s.key]++
	}
	for _, s := range sites {
		if counts[s.key] <= baseline[s.key] {
			continue // within accepted debt
		}
		pass.ReportDiag(s.d)
	}
	return nil
}

// isHotpath reports whether fd's doc comment carries a hotpath: line.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, "hotpath:") {
			return true
		}
	}
	return false
}

// classifyAlloc returns a baseline kind and human detail if n is a
// syntactic allocation site.
func classifyAlloc(pass *analysis.Pass, n ast.Node) (kind, detail string) {
	switch n := n.(type) {
	case *ast.CompositeLit:
		t := pass.TypesInfo.TypeOf(n)
		name := "composite literal"
		if t != nil {
			name = fmt.Sprintf("composite literal %s{...}", typeShort(t))
		}
		return "composite", name
	case *ast.FuncLit:
		return "closure", "function literal (closure)"
	case *ast.CallExpr:
		id, ok := n.Fun.(*ast.Ident)
		if !ok {
			return "", ""
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				return b.Name(), b.Name() + " call"
			}
		}
	}
	return "", ""
}

func typeShort(t types.Type) string {
	s := t.String()
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

func isSet(v string) bool { return v == "1" || v == "true" }

// baselinePath resolves the baseline file: the flag if set, else
// <module root>/lint/hotpathalloc.baseline found by walking up from
// the package's first source file. Paths containing a testdata element
// never auto-discover (golden tests must not see the real baseline).
func baselinePath(pass *analysis.Pass, forWrite bool) string {
	if baselineFlag.Value != "" {
		return baselineFlag.Value
	}
	if len(pass.Files) == 0 {
		return ""
	}
	dir := filepath.Dir(pass.Fset.File(pass.Files[0].Pos()).Name())
	if strings.Contains(dir, string(filepath.Separator)+"testdata"+string(filepath.Separator)) {
		return ""
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			p := filepath.Join(dir, "lint", "hotpathalloc.baseline")
			if _, err := os.Stat(p); err == nil || forWrite {
				return p
			}
			return ""
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// loadBaseline parses "pkg\tfunc\tkind\tcount" lines.
func loadBaseline(pass *analysis.Pass) (map[allocKey]int, error) {
	out := map[allocKey]int{}
	path := baselinePath(pass, false)
	if path == "" {
		return out, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hotpathalloc baseline: %w", err)
	}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("hotpathalloc baseline %s:%d: want 4 tab-separated fields", path, ln+1)
		}
		n, err := strconv.Atoi(parts[3])
		if err != nil {
			return nil, fmt.Errorf("hotpathalloc baseline %s:%d: bad count: %v", path, ln+1, err)
		}
		out[allocKey{parts[0], parts[1], parts[2]}] = n
	}
	return out, nil
}

// writeBaseline appends this package's observed counts (the standalone
// driver truncates the file before the sweep).
func writeBaseline(pass *analysis.Pass, sites []site) error {
	path := baselinePath(pass, true)
	if path == "" {
		return fmt.Errorf("hotpathalloc: -hotpathalloc.write needs -hotpathalloc.baseline or a module lint/ directory")
	}
	counts := map[allocKey]int{}
	var order []allocKey
	for _, s := range sites {
		if counts[s.key] == 0 {
			order = append(order, s.key)
		}
		counts[s.key]++
	}
	sort.Slice(order, func(i, j int) bool { return order[i].String() < order[j].String() })
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, k := range order {
		if _, err := fmt.Fprintf(f, "%s\t%d\n", k.String(), counts[k]); err != nil {
			return err
		}
	}
	return nil
}
