package analysis

import (
	"go/types"
	"strings"
)

// A Fact is a typed datum an analyzer attaches to a package or to a
// package-level object, visible to later analysis of any package that
// imports the fact's package (directly or transitively). Facts are how
// unionlint enforces whole-program invariants — "kind tag 7 is never
// reused", "every AckCode is classified" — one package at a time:
// an analyzer running on internal/sketch/fm exports a fact recording
// the kind it registered, and the analyzer running on the blank-import
// aggregator internal/sketch/kinds sees every such fact and can reject
// a duplicate tag without ever loading two kind packages at once.
//
// Facts must be pointers to gob-serializable structs (drivers move
// them between compilation units as gob streams, mirroring the go
// vet facts protocol), must not contain token.Pos values (positions
// do not survive re-loading), and must be declared in the analyzer's
// FactTypes so drivers can register their concrete types for decoding.
type Fact interface {
	// AFact is a marker method; it has no behavior.
	AFact()
}

// A PackageFact pairs a fact with the import path of the package it
// describes.
type PackageFact struct {
	Path string
	Fact Fact
}

// An ObjectFact pairs a fact with the package-level object it
// describes, identified by import path and object path (see
// ObjectPath).
type ObjectFact struct {
	Path   string // import path of the object's package
	Object string // object path within the package
	Fact   Fact
}

// FactContext is the driver-provided view of the fact store for one
// pass: facts exported here become visible to passes over importing
// packages, and facts imported here come from the transitive imports
// of the package under analysis. A nil FactContext (analyzer run by a
// driver predating facts) makes every import report false and every
// export a no-op; the Pass methods below encode that tolerance.
type FactContext interface {
	// ImportPackageFact copies the fact of fact's concrete type
	// attached to the package with the given import path into fact,
	// reporting whether one existed.
	ImportPackageFact(path string, fact Fact) bool
	// ExportPackageFact attaches fact to the package under analysis,
	// replacing any existing fact of the same concrete type.
	ExportPackageFact(fact Fact)
	// ImportObjectFact copies the fact attached to obj into fact,
	// reporting whether one existed. obj may belong to any visible
	// package, including the one under analysis.
	ImportObjectFact(obj types.Object, fact Fact) bool
	// ExportObjectFact attaches fact to obj, which must belong to the
	// package under analysis and have a derivable ObjectPath.
	ExportObjectFact(obj types.Object, fact Fact)
	// AllPackageFacts returns every visible package fact, in
	// deterministic order.
	AllPackageFacts() []PackageFact
	// AllObjectFacts returns every visible object fact, in
	// deterministic order.
	AllObjectFacts() []ObjectFact
}

// ImportPackageFact reads a fact attached to the package with the
// given import path; see FactContext.
func (p *Pass) ImportPackageFact(path string, fact Fact) bool {
	if p.Facts == nil {
		return false
	}
	return p.Facts.ImportPackageFact(path, fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.Facts != nil {
		p.Facts.ExportPackageFact(fact)
	}
}

// ImportObjectFact reads a fact attached to obj; see FactContext.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.Facts == nil {
		return false
	}
	return p.Facts.ImportObjectFact(obj, fact)
}

// ExportObjectFact attaches fact to obj, which must belong to the
// package under analysis.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Facts != nil {
		p.Facts.ExportObjectFact(obj, fact)
	}
}

// AllPackageFacts returns every visible package fact.
func (p *Pass) AllPackageFacts() []PackageFact {
	if p.Facts == nil {
		return nil
	}
	return p.Facts.AllPackageFacts()
}

// AllObjectFacts returns every visible object fact.
func (p *Pass) AllObjectFacts() []ObjectFact {
	if p.Facts == nil {
		return nil
	}
	return p.Facts.AllObjectFacts()
}

// ObjectPath encodes a stable, serializable name for a package-level
// object, usable to find the same object in a re-imported copy of its
// package. It is a deliberately small subset of x/tools' objectpath:
//
//   - a package-level const, var, func, or type is its name ("Register");
//   - a method of a package-level named type is "Type.Method"
//     ("Sampler.Merge"), regardless of pointer receivers.
//
// Objects outside those shapes (locals, struct fields, interface
// methods, instantiated generics) are not supported and report false —
// the unionlint fact-driven analyzers only need the two shapes above.
func ObjectPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name(), true
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return "", false
		}
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "", false
		}
		return named.Obj().Name() + "." + fn.Name(), true
	}
	return "", false
}

// FindObject resolves an ObjectPath within pkg, returning nil when the
// path names nothing there.
func FindObject(pkg *types.Package, path string) types.Object {
	if pkg == nil || path == "" {
		return nil
	}
	typeName, method, isMethod := strings.Cut(path, ".")
	obj := pkg.Scope().Lookup(typeName)
	if !isMethod {
		return obj
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == method {
			return m
		}
	}
	return nil
}

// TrimPkgPath strips the test-variant suffix ("pkg [pkg.test]") from a
// package path so facts exported from a test compilation land under
// the same key as the plain package.
func TrimPkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path
}
