// Package kindcheck enforces the sketch-registry invariants that hold
// the self-describing envelope format together (see DESIGN "envelope
// format" and internal/sketch):
//
//   - a kind package calls sketch.Register exactly once, with a keyed
//     KindInfo literal whose Kind tag, Name, and Version are non-zero
//     constants — tags must be stable, so a computed tag is an error;
//   - kind tags and names are unique across the whole program. Each
//     registering package exports a RegisteredKind fact; any package
//     that directly imports two colliding kind packages (in practice
//     the blank-import aggregator internal/sketch/kinds) reports the
//     collision;
//   - retired tags are never reused: sketch kind tags listed in
//     -kindcheck.retired, and wire frame type 7 (the retired MsgOpaque)
//     in internal/wire;
//   - every kind package wraps the typed sentinels sketch.ErrMismatch
//     and sketch.ErrCorrupt (and, where used, sketch.ErrUnknownKind)
//     with %w, so errors.Is classification survives the wrap;
//   - the sketch/capability interface methods of a registered type use
//     one consistent receiver kind (all pointer or all value) — a mixed
//     method set silently changes which capability assertions succeed.
package kindcheck

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// RegisteredKind is the package fact a kind package exports: the tag,
// name, and version it passed to sketch.Register.
type RegisteredKind struct {
	Tag     uint64
	Name    string
	Version uint64
}

// AFact marks RegisteredKind as a fact type.
func (*RegisteredKind) AFact() {}

var retiredFlag = &analysis.Flag{
	Name:  "retired",
	Usage: "comma-separated retired sketch kind tags as tag=reason pairs (e.g. '9=legacy opaque'); registering one is an error",
	Value: "",
}

// Analyzer is the kindcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "kindcheck",
	Doc: "enforce sketch-registry invariants: one Register per kind package, constant unique " +
		"never-reused tags, %w-wrapped typed sentinels, consistent receivers",
	Flags:     []*analysis.Flag{retiredFlag},
	FactTypes: []analysis.Fact{(*RegisteredKind)(nil)},
	Run:       run,
}

// registryPath reports whether path is the sketch registry package.
func registryPath(path string) bool {
	return path == "internal/sketch" || strings.HasSuffix(path, "/internal/sketch")
}

// wirePath reports whether path is the wire protocol package.
func wirePath(path string) bool {
	return path == "internal/wire" || strings.HasSuffix(path, "/internal/wire")
}

// retiredFrameTypes are wire frame type values that were once assigned
// and must never come back; reusing one would make old captures and
// new binaries disagree about message framing.
var retiredFrameTypes = map[uint64]string{
	7: "MsgOpaque",
}

// sketchMethodNames are the Sketch + capability interface methods
// (internal/sketch); receiver-kind consistency is checked across them.
var sketchMethodNames = map[string]bool{
	"Process":            true,
	"ProcessWeighted":    true,
	"Estimate":           true,
	"EstimateSum":        true,
	"EstimateCountWhere": true,
	"EstimateSumWhere":   true,
	"Merge":              true,
	"MarshalBinary":      true,
	"Kind":               true,
	"Seed":               true,
	"Digest":             true,
	"Describe":           true,
}

// coreMethodCount is how many sketch interface methods a type needs
// before the receiver-consistency rule applies (avoids flagging
// incidental types that happen to have a Merge method).
const coreMethodCount = 4

func run(pass *analysis.Pass) error {
	retired, err := parseRetired(retiredFlag.Value)
	if err != nil {
		return err
	}

	// Collect sketch.Register call sites and the sentinel objects of
	// the registry package this package uses.
	var registerCalls []*ast.CallExpr
	var registryPkg *types.Package
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Name() != "Register" || fn.Pkg() == nil || !registryPath(fn.Pkg().Path()) {
			return true
		}
		registerCalls = append(registerCalls, call)
		registryPkg = fn.Pkg()
		return true
	})

	if len(registerCalls) > 0 {
		checkRegistrations(pass, registerCalls, retired)
		checkSentinelWrapping(pass, registryPkg, registerCalls[0])
		checkReceiverConsistency(pass)
	}
	checkKindCollisions(pass)
	if wirePath(pass.PkgPath()) {
		checkRetiredFrameTypes(pass)
	}
	return nil
}

// checkRegistrations validates the shape of each Register call and
// exports the package's RegisteredKind fact.
func checkRegistrations(pass *analysis.Pass, calls []*ast.CallExpr, retired map[uint64]string) {
	for i, call := range calls {
		if i > 0 {
			pass.Reportf(call.Pos(),
				"package registers %d sketch kinds; each kind package must register exactly one", len(calls))
			continue
		}
		fact := checkOneRegistration(pass, call, retired)
		if fact != nil {
			pass.ExportPackageFact(fact)
		}
	}
}

func checkOneRegistration(pass *analysis.Pass, call *ast.CallExpr, retired map[uint64]string) *RegisteredKind {
	if len(call.Args) != 1 {
		return nil // does not typecheck as sketch.Register; nothing to do
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
	if !ok {
		pass.Reportf(call.Args[0].Pos(),
			"Register argument must be a keyed sketch.KindInfo composite literal so the kind tag is statically visible")
		return nil
	}
	fields := map[string]ast.Expr{}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			pass.Reportf(el.Pos(),
				"Register argument must use keyed KindInfo fields so the kind tag is statically visible")
			return nil
		}
		if key, ok := kv.Key.(*ast.Ident); ok {
			fields[key.Name] = kv.Value
		}
	}
	fact := &RegisteredKind{}
	ok = true

	tag, isConst := constUint(pass, fields["Kind"])
	switch {
	case fields["Kind"] == nil || !isConst:
		pass.Reportf(lit.Pos(),
			"sketch kind tag must be a constant (tags are wire-stable; a computed tag can drift between builds)")
		ok = false
	case tag == 0:
		pass.Reportf(fields["Kind"].Pos(), "sketch kind tag 0 is reserved for 'unset' and cannot be registered")
		ok = false
	default:
		if reason, isRetired := retired[tag]; isRetired {
			pass.Reportf(fields["Kind"].Pos(),
				"sketch kind tag %d is retired (%s) and must never be reused", tag, reason)
			ok = false
		}
		fact.Tag = tag
	}

	if name, isConst := constString(pass, fields["Name"]); fields["Name"] == nil || !isConst || name == "" {
		pass.Reportf(lit.Pos(), "sketch kind name must be a non-empty constant string")
		ok = false
	} else {
		fact.Name = name
	}

	if ver, isConst := constUint(pass, fields["Version"]); fields["Version"] == nil || !isConst || ver == 0 {
		pass.Reportf(lit.Pos(), "sketch kind version must be a positive constant")
		ok = false
	} else {
		fact.Version = ver
	}

	if !ok {
		return nil
	}
	return fact
}

// checkSentinelWrapping requires the registering package to reference
// sketch.ErrMismatch and sketch.ErrCorrupt (merge refusals and decode
// failures must be classifiable), and flags any fmt.Errorf that
// formats a sentinel with a verb other than %w.
func checkSentinelWrapping(pass *analysis.Pass, registryPkg *types.Package, registerCall *ast.CallExpr) {
	sentinels := map[types.Object]string{}
	for _, name := range []string{"ErrMismatch", "ErrCorrupt", "ErrUnknownKind"} {
		if obj := registryPkg.Scope().Lookup(name); obj != nil {
			sentinels[obj] = name
		}
	}
	used := map[string]bool{}
	pass.Inspect(func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if name, isSentinel := sentinels[pass.TypesInfo.Uses[id]]; isSentinel {
				used[name] = true
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
			return true
		}
		format, isConst := constString(pass, call.Args[0])
		if !isConst {
			return true
		}
		verbs := scanVerbs(format)
		for i, arg := range call.Args[1:] {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				if sel, isSel := ast.Unparen(arg).(*ast.SelectorExpr); isSel {
					id = sel.Sel
				} else {
					continue
				}
			}
			name, isSentinel := sentinels[pass.TypesInfo.Uses[id]]
			if !isSentinel || i >= len(verbs) {
				continue
			}
			if verbs[i] != 'w' {
				pass.Reportf(arg.Pos(),
					"sketch.%s formatted with %%%c; wrap with %%w so errors.Is classification survives",
					name, verbs[i])
			}
		}
		return true
	})
	for _, name := range []string{"ErrMismatch", "ErrCorrupt"} {
		if !used[name] {
			pass.Reportf(registerCall.Pos(),
				"kind package never wraps sketch.%s; merge refusals and decode failures must carry the typed sentinel", name)
		}
	}
}

// checkReceiverConsistency flags sketch types whose interface methods
// mix pointer and value receivers.
func checkReceiverConsistency(pass *analysis.Pass) {
	type methodDecl struct {
		decl    *ast.FuncDecl
		pointer bool
	}
	byType := map[string][]methodDecl{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || !sketchMethodNames[fd.Name.Name] {
				continue
			}
			t := fd.Recv.List[0].Type
			ptr := false
			if star, isStar := t.(*ast.StarExpr); isStar {
				ptr = true
				t = star.X
			}
			base, ok := t.(*ast.Ident)
			if !ok {
				continue
			}
			byType[base.Name] = append(byType[base.Name], methodDecl{fd, ptr})
		}
	}
	for typeName, methods := range byType {
		if len(methods) < coreMethodCount {
			continue
		}
		pointers := 0
		for _, m := range methods {
			if m.pointer {
				pointers++
			}
		}
		if pointers == 0 || pointers == len(methods) {
			continue
		}
		// Pointer receivers are the convention (sketches mutate), so
		// the value-receiver methods are the odd ones out.
		for _, m := range methods {
			if !m.pointer {
				pass.Reportf(m.decl.Name.Pos(),
					"method %s.%s uses a value receiver while other sketch interface methods use pointer receivers; capability type assertions need one consistent method set",
					typeName, m.decl.Name.Name)
			}
		}
	}
}

// checkKindCollisions compares the RegisteredKind facts of this
// package's direct imports (plus its own) and reports tag or name
// collisions. In practice this fires in the blank-import aggregator
// internal/sketch/kinds, the one package that sees every kind.
func checkKindCollisions(pass *analysis.Pass) {
	direct := map[string]bool{analysis.TrimPkgPath(pass.Pkg.Path()): true}
	for _, imp := range pass.Pkg.Imports() {
		direct[analysis.TrimPkgPath(imp.Path())] = true
	}
	type regSite struct {
		path string
		kind RegisteredKind
	}
	var regs []regSite
	for _, pf := range pass.AllPackageFacts() {
		if rk, ok := pf.Fact.(*RegisteredKind); ok {
			regs = append(regs, regSite{pf.Path, *rk})
		}
	}
	pos := collisionPos(pass)
	for i, a := range regs {
		for _, b := range regs[i+1:] {
			// Only report where at least one offender is a direct
			// import, so the diagnostic lands once (in the aggregator)
			// instead of in every transitive importer.
			if !direct[a.path] && !direct[b.path] {
				continue
			}
			if a.kind.Tag == b.kind.Tag {
				pass.Reportf(pos(a.path, b.path),
					"sketch kind tag %d registered by both %s and %s; tags must be unique program-wide",
					a.kind.Tag, a.path, b.path)
			}
			if a.kind.Name == b.kind.Name {
				pass.Reportf(pos(a.path, b.path),
					"sketch kind name %q registered by both %s and %s; names must be unique program-wide",
					a.kind.Name, a.path, b.path)
			}
		}
	}
}

// collisionPos returns a position chooser: the import spec of one of
// the offending packages when present, else the package clause.
func collisionPos(pass *analysis.Pass) func(a, b string) token.Pos {
	imports := map[string]token.Pos{}
	var fallback token.Pos
	for _, f := range pass.Files {
		if !fallback.IsValid() {
			fallback = f.Name.Pos()
		}
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[path] = imp.Pos()
			}
		}
	}
	return func(a, b string) token.Pos {
		if p, ok := imports[b]; ok {
			return p
		}
		if p, ok := imports[a]; ok {
			return p
		}
		return fallback
	}
}

// checkRetiredFrameTypes flags MsgType constants that reuse a retired
// frame type value. Unexported bound sentinels (maxMsgType) are
// exempt: they exist precisely to sit one past the last real type.
func checkRetiredFrameTypes(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || !isNamed(obj.Type(), "MsgType") {
						continue
					}
					if strings.HasPrefix(name.Name, "max") || strings.HasPrefix(name.Name, "num") {
						continue
					}
					v, ok := constant.Uint64Val(obj.Val())
					if !ok {
						continue
					}
					if was, retired := retiredFrameTypes[v]; retired {
						pass.Reportf(name.Pos(),
							"frame type %d (%s) is retired and must never be reused; old captures and peers still interpret it", v, was)
					}
				}
			}
		}
	}
}

// --- small helpers ---

// calleeFunc resolves a call's callee to a *types.Func, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return f
}

// constUint evaluates e as a constant unsigned integer.
func constUint(pass *analysis.Pass, e ast.Expr) (uint64, bool) {
	if e == nil {
		return 0, false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Uint64Val(constant.ToInt(tv.Value))
}

// constString evaluates e as a constant string.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	if e == nil {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isNamed reports whether t (or its pointee) is a named type with the
// given name.
func isNamed(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// scanVerbs extracts the verb letters of a format string in argument
// order, skipping %% and flag/width/precision characters. Indexed
// arguments (%[1]v) abort the scan — callers then skip verb checks.
func scanVerbs(format string) []byte {
	var out []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.IndexByte("+-# .0123456789*", format[i]) >= 0 {
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		if format[i] == '[' {
			return nil
		}
		out = append(out, format[i])
	}
	return out
}

// parseRetired parses the -kindcheck.retired flag value.
func parseRetired(s string) (map[uint64]string, error) {
	out := map[uint64]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		tagStr, reason, _ := strings.Cut(part, "=")
		tag, err := strconv.ParseUint(strings.TrimSpace(tagStr), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("kindcheck: bad -kindcheck.retired entry %q: %v", part, err)
		}
		if reason == "" {
			reason = "retired"
		}
		out[tag] = strings.TrimSpace(reason)
	}
	return out, nil
}
