package kindcheck_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/kindcheck"
)

func testdata(t *testing.T) string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestKindcheck(t *testing.T) {
	analysistest.Run(t, testdata(t), kindcheck.Analyzer,
		"repro/internal/sketch/good",
		"repro/internal/sketch/twice",
		"repro/internal/sketch/tagzero",
		"repro/internal/sketch/wrapverb",
		"repro/internal/sketch/mixedrecv",
		"repro/internal/sketch/nonconst",
		"repro/internal/sketch/kinds",
	)
}

func TestKindcheckWire(t *testing.T) {
	analysistest.Run(t, testdata(t), kindcheck.Analyzer, "repro/internal/wire")
}

func TestKindcheckRetired(t *testing.T) {
	f := kindcheck.Analyzer.Lookup("retired")
	old := f.Value
	f.Value = "9=legacy envelope tag"
	defer func() { f.Value = old }()
	analysistest.Run(t, testdata(t), kindcheck.Analyzer, "repro/internal/sketch/retiredpkg")
}
