// Package wire is a stub of the real framing package: kindcheck must
// reject new MsgType constants that reuse the retired frame type 7
// while exempting the unexported bound sentinel.
package wire

type MsgType uint8

const (
	MsgPush    MsgType = 1
	MsgQuery   MsgType = 2
	MsgRevived MsgType = 7 // want "frame type 7 \\(MsgOpaque\\) is retired and must never be reused"
	maxMsgType MsgType = 8
)

var _ = maxMsgType
