// Package dup registers the same tag as package good. Locally it is
// clean — the collision only becomes visible (and is reported) in the
// aggregator package that imports both.
package dup

import (
	"fmt"

	"repro/internal/sketch"
)

func wrap(err error) error {
	if err != nil {
		return fmt.Errorf("dup: decode: %w", sketch.ErrCorrupt)
	}
	return fmt.Errorf("dup: merge: %w", sketch.ErrMismatch)
}

func init() {
	sketch.Register(sketch.KindInfo{
		Kind:    1, // same tag as repro/internal/sketch/good
		Name:    "dup",
		Version: 1,
	})
}
