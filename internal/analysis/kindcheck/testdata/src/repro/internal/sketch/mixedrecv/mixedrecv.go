// Package mixedrecv implements the sketch interface with one value
// receiver among pointer receivers: *M satisfies the interface but a
// capability assertion on M silently fails.
package mixedrecv

import (
	"fmt"

	"repro/internal/sketch"
)

type M struct{ n uint64 }

func (m *M) Process(x uint64)               { m.n++ }
func (m *M) Estimate() float64              { return float64(m.n) }
func (m *M) MarshalBinary() ([]byte, error) { return nil, nil }
func (m *M) Kind() sketch.Kind              { return 4 }
func (m M) Merge(o sketch.Sketch) error { // want "method M.Merge uses a value receiver while other sketch interface methods use pointer receivers"
	return fmt.Errorf("mixedrecv: %w", sketch.ErrMismatch)
}

func wrap() error {
	return fmt.Errorf("mixedrecv: %w", sketch.ErrCorrupt)
}

func init() {
	sketch.Register(sketch.KindInfo{Kind: 4, Name: "mixedrecv", Version: 1})
}
