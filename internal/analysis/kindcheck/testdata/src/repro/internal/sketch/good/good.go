// Package good is a well-behaved kind package: one keyed constant
// registration, both sentinels wrapped with %w, pointer receivers
// throughout. kindcheck must stay silent here.
package good

import (
	"fmt"

	"repro/internal/sketch"
)

const kindGood sketch.Kind = 1

type G struct{ n uint64 }

func (g *G) Process(x uint64)               { g.n++ }
func (g *G) Estimate() float64              { return float64(g.n) }
func (g *G) MarshalBinary() ([]byte, error) { return nil, nil }
func (g *G) Kind() sketch.Kind              { return kindGood }
func (g *G) Seed() uint64                   { return 0 }
func (g *G) Digest() uint64                 { return 0 }

func (g *G) Merge(o sketch.Sketch) error {
	og, ok := o.(*G)
	if !ok {
		return fmt.Errorf("good: cannot merge %T: %w", o, sketch.ErrMismatch)
	}
	g.n += og.n
	return nil
}

func decode(data []byte) (sketch.Sketch, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("good: empty payload: %w", sketch.ErrCorrupt)
	}
	return &G{}, nil
}

func init() {
	sketch.Register(sketch.KindInfo{
		Kind:    kindGood,
		Name:    "good",
		Version: 1,
		New:     func(eps float64, seed uint64) sketch.Sketch { return &G{} },
		Decode:  decode,
	})
}
