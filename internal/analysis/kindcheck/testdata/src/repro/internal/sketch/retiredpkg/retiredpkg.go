// Package retiredpkg reuses a retired sketch kind tag (the test sets
// -kindcheck.retired=9=legacy envelope tag).
package retiredpkg

import (
	"fmt"

	"repro/internal/sketch"
)

func wrap(err error) error {
	if err != nil {
		return fmt.Errorf("retiredpkg: decode: %w", sketch.ErrCorrupt)
	}
	return fmt.Errorf("retiredpkg: merge: %w", sketch.ErrMismatch)
}

func init() {
	sketch.Register(sketch.KindInfo{
		Kind:    9, // want "sketch kind tag 9 is retired \\(legacy envelope tag\\) and must never be reused"
		Name:    "retiredpkg",
		Version: 1,
	})
}
