// Package tagzero registers the reserved zero tag and omits the name
// and version.
package tagzero

import (
	"fmt"

	"repro/internal/sketch"
)

func wrap(err error) error {
	if err != nil {
		return fmt.Errorf("tagzero: decode: %w", sketch.ErrCorrupt)
	}
	return fmt.Errorf("tagzero: merge: %w", sketch.ErrMismatch)
}

func init() {
	sketch.Register(sketch.KindInfo{ // want "sketch kind name must be a non-empty constant string" "sketch kind version must be a positive constant"
		Kind: sketch.Kind(0), // want "sketch kind tag 0 is reserved"
	})
}
