// Package twice registers two kinds; a kind package must register
// exactly one.
package twice

import (
	"fmt"

	"repro/internal/sketch"
)

func wrap(err error) error {
	if err != nil {
		return fmt.Errorf("twice: decode: %w", sketch.ErrCorrupt)
	}
	return fmt.Errorf("twice: merge: %w", sketch.ErrMismatch)
}

func init() {
	sketch.Register(sketch.KindInfo{Kind: 2, Name: "twice-a", Version: 1})
	sketch.Register(sketch.KindInfo{Kind: 5, Name: "twice-b", Version: 1}) // want "package registers 2 sketch kinds; each kind package must register exactly one"
}
