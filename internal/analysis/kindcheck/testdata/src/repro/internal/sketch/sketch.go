// Package sketch is a stub of the real registry for kindcheck's
// golden tests: same names, no behavior.
package sketch

import "errors"

type Kind uint8

var (
	ErrMismatch    = errors.New("sketch: mismatch")
	ErrCorrupt     = errors.New("sketch: corrupt")
	ErrUnknownKind = errors.New("sketch: unknown kind")
)

type Sketch interface {
	Process(x uint64)
	Estimate() float64
	Merge(o Sketch) error
	MarshalBinary() ([]byte, error)
	Kind() Kind
	Seed() uint64
	Digest() uint64
}

type KindInfo struct {
	Kind    Kind
	Name    string
	Version uint8
	New     func(eps float64, seed uint64) Sketch
	Decode  func(data []byte) (Sketch, error)
}

func Register(info KindInfo) {}
