// Package wrapverb wraps sketch.ErrMismatch with %v, which strips the
// sentinel from the errors.Is chain.
package wrapverb

import (
	"fmt"

	"repro/internal/sketch"
)

func wrap(err error) error {
	if err != nil {
		return fmt.Errorf("wrapverb: decode: %w", sketch.ErrCorrupt)
	}
	return fmt.Errorf("wrapverb: merge: %v", sketch.ErrMismatch) // want "sketch.ErrMismatch formatted with %v; wrap with %w so errors.Is classification survives"
}

func init() {
	sketch.Register(sketch.KindInfo{Kind: 3, Name: "wrapverb", Version: 1})
}
