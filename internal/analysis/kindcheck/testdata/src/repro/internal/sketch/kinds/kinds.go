// Package kinds mirrors the real blank-import aggregator: the one
// package that imports every kind package, and therefore the place
// where cross-package tag collisions surface.
package kinds

import (
	_ "repro/internal/sketch/dup"
	_ "repro/internal/sketch/good" // want "sketch kind tag 1 registered by both repro/internal/sketch/dup and repro/internal/sketch/good"
)
