// Package nonconst computes its tag at run time; tags are wire-stable
// and must be compile-time constants.
package nonconst

import (
	"fmt"

	"repro/internal/sketch"
)

var nextTag sketch.Kind = 6

func wrap(err error) error {
	if err != nil {
		return fmt.Errorf("nonconst: decode: %w", sketch.ErrCorrupt)
	}
	return fmt.Errorf("nonconst: merge: %w", sketch.ErrMismatch)
}

func init() {
	sketch.Register(sketch.KindInfo{ // want "sketch kind tag must be a constant"
		Kind:    nextTag,
		Name:    "nonconst",
		Version: 1,
	})
}
