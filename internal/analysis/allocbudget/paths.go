package allocbudget

import "regexp"

// The seams every kind path shares. Hash dispatch lands on the
// tabulation/pairwise families, which allocflow proves allocation-free
// (their summaries are empty), so the dispatch licenses zero extras;
// likewise the small sketch-interface accessors (Kind, Digest, Seed,
// Estimate). Merge and ProcessWeighted dispatches are licensed at
// zero because every Path that crosses one also lists the concrete
// callee in Roots. The registry Decode closure builds a fresh sketch —
// maps, slices, the sketch struct itself — so it carries a fixed
// allowance sized for the small configurations the runtime gates use.
var (
	seamHash      = Seam{Match: regexp.MustCompile(`\(repro/internal/hashing\.Family\)\.Hash`), Extra: 0}
	seamAccessors = Seam{Match: regexp.MustCompile(`\(repro/internal/sketch\.Sketch\)\.(Kind|Digest|Seed|Estimate)$`), Extra: 0}
	seamMarshal   = Seam{Match: regexp.MustCompile(`\(repro/internal/sketch\.Sketch\)\.MarshalBinary`), Extra: 0}
	seamMerge     = Seam{Match: regexp.MustCompile(`\(repro/internal/sketch\.Sketch\)\.Merge`), Extra: 0}
	seamWeighted  = Seam{Match: regexp.MustCompile(`\(repro/internal/sketch\.Weighted\)\.ProcessWeighted`), Extra: 0}
	seamErrError = Seam{Match: regexp.MustCompile(`\(error\)\.Error`), Extra: 0}

	decodeCall = regexp.MustCompile(`dynamic call info\.Decode`)
)

// DecodeExtra is the malloc allowance for one registry Decode of a
// gate-sized sketch (capacity ≲ 64). Decoding legitimately builds the
// whole sketch, so the allowance is the dominant term of the decode
// and absorb ceilings.
const DecodeExtra = 160

// decodeExtra overrides DecodeExtra for kinds whose fresh sketch is
// structurally bigger: the window sketch decodes one bounded sample
// (map + entry slab + free list) per level, O(MaxLevel) of everything.
var decodeExtra = map[string]int{"window": 768}

// decodeSeam licenses kind's registry Decode closure invocation: a
// fresh small sketch (struct, hash family state, one map or slice per
// component, plus map buckets for gate-sized payloads).
func decodeSeam(kind string) Seam {
	extra := DecodeExtra
	if e, ok := decodeExtra[kind]; ok {
		extra = e
	}
	return Seam{Match: decodeCall, Extra: extra}
}

// kindType maps a registry kind name to its concrete pkg-qualified
// type, the receiver of the Process/Merge roots below.
var kindType = map[string]string{
	"gt":     "repro/internal/core.Estimator",
	"exact":  "repro/internal/exact.Distinct",
	"ams":    "repro/internal/sketch/ams.Sketch",
	"bjkst":  "repro/internal/sketch/bjkst.Sketch",
	"fm":     "repro/internal/sketch/fm.Sketch",
	"kmv":    "repro/internal/sketch/kmv.Sketch",
	"hll":    "repro/internal/sketch/ll.Sketch",
	"window": "repro/internal/window.Union",
}

// Kinds returns the kind names with path tables, sorted as registered.
func Kinds() []string {
	return []string{"gt", "exact", "ams", "bjkst", "fm", "kmv", "hll", "window"}
}

// ProcessPath is the per-item ingest path for kind: the concrete
// Process method (which subsumes ProcessWeighted where one exists),
// with hashing dispatch as its only seam.
func ProcessPath(kind string) (Path, bool) {
	typ, ok := kindType[kind]
	if !ok {
		return Path{}, false
	}
	return Path{
		Roots: []string{typ + ".Process", typ + ".ProcessWeighted"},
		Seams: []Seam{seamHash},
	}, true
}

// MergePath is the pairwise union path for kind: the concrete Merge
// method. Merge dispatches only on accessors and hashing.
func MergePath(kind string) (Path, bool) {
	typ, ok := kindType[kind]
	if !ok {
		return Path{}, false
	}
	return Path{
		Roots: []string{typ + ".Merge"},
		Seams: []Seam{seamHash, seamAccessors, seamErrError},
	}, true
}

// DecodePath is the envelope-decode path: sketch.Open routed through
// the registry's Decode closure, which the seam allowance bounds.
func DecodePath(kind string) (Path, bool) {
	if _, ok := kindType[kind]; !ok {
		return Path{}, false
	}
	return Path{
		Roots: []string{"repro/internal/sketch.Open"},
		Seams: []Seam{decodeSeam(kind), seamAccessors},
	}, true
}

// AbsorbPath is the coordinator's whole absorb path for kind: open
// the envelope, validate, fold into the group — plus the concrete
// Merge the group fold dispatches into. The WAL branch is part of
// absorbSketch's summary, so a WAL-armed absorb is covered too.
func AbsorbPath(kind string) (Path, bool) {
	typ, ok := kindType[kind]
	if !ok {
		return Path{}, false
	}
	return Path{
		Roots: []string{"repro/internal/server.Server.absorbSketch", typ + ".Merge"},
		Seams: []Seam{decodeSeam(kind), seamAccessors, seamMarshal, seamMerge, seamWeighted, seamHash, seamErrError},
	}, true
}

// WALAppendPath is the durable-log append path: frame encoding plus
// the segment write. Statically bounded with no seams at all.
func WALAppendPath() Path {
	return Path{Roots: []string{"repro/internal/wal.Log.AppendNamed"}}
}
