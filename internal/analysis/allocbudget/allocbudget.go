// Package allocbudget evaluates allocflow's AllocSummary facts for
// whole runtime paths. The analyzer's taint lattice is deliberately
// conservative: any call it cannot resolve statically (interface
// dispatch, registry closures, func values) is a calls-unknown entry
// that makes the summary unbounded. At a runtime seam, though, the
// caller usually knows exactly which concrete callee the dispatch
// lands on — the absorb path merges through (sketch.Sketch).Merge,
// but a gt-kind benchmark knows the callee is Estimator.Merge. This
// package closes that gap: a Path names the summaries to sum (the
// roots) plus the Seams that license its dynamic calls, each seam
// resolved either to zero extra mallocs (the dispatch itself) or to
// a fixed allowance (a registry Decode closure that builds a fresh
// sketch). Eval then yields a malloc ceiling the runtime cross-check
// (internal/allocgate, gtbench's allocs_budget_ok) can compare
// against testing.AllocsPerRun.
//
// The ceiling is an upper bound for steady-state, benchmark-sized
// configurations: SiteWeight already over-counts per site, and seam
// allowances are sized for the small sketches the gates construct.
package allocbudget

import (
	"fmt"
	"regexp"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/allocflow"
	"repro/internal/analysis/driver"
)

// Set holds harvested per-function allocation summaries keyed by
// pkg-qualified name, e.g. "repro/internal/core.Sampler.Process".
type Set struct {
	summaries map[string]*allocflow.AllocSummary
}

// Load runs the allocflow analyzer over the module containing dir
// (restricted to patterns) and harvests every exported AllocSummary.
// Findings are discarded: Load wants the facts, not the report.
func Load(dir string, patterns ...string) (*Set, error) {
	analyzers := []*analysis.Analyzer{allocflow.Analyzer}
	pkgs, err := driver.LoadModulePackages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("allocbudget: no packages match %v", patterns)
	}
	store := driver.NewFactStore(analyzers)
	for _, pkg := range pkgs {
		visible := make(map[string]bool, len(pkg.Deps))
		for _, d := range pkg.Deps {
			visible[d] = true
		}
		if _, err := driver.RunAnalyzers(pkg, analyzers, store.View(pkg.Pkg, visible)); err != nil {
			return nil, fmt.Errorf("allocbudget: analyzing %s: %w", pkg.Pkg.Path(), err)
		}
	}
	// Harvest with an unrestricted view (nil visible = everything).
	set := &Set{summaries: map[string]*allocflow.AllocSummary{}}
	for _, of := range store.View(pkgs[len(pkgs)-1].Pkg, nil).AllObjectFacts() {
		sum, ok := of.Fact.(*allocflow.AllocSummary)
		if !ok {
			continue
		}
		set.summaries[of.Path+"."+of.Object] = sum
	}
	return set, nil
}

// Summary returns the harvested summary for a pkg-qualified function
// name. A missing summary means allocflow proved the function
// allocation-free (the lattice bottom).
func (s *Set) Summary(name string) (*allocflow.AllocSummary, bool) {
	sum, ok := s.summaries[name]
	return sum, ok
}

// A Seam licenses one class of dynamic calls in a path: Match is
// applied to each calls-unknown description, and every matched call
// contributes Extra mallocs to the ceiling instead of making the path
// unbounded. Extra 0 says "the dispatch lands on a callee already
// accounted for by the path's roots".
type Seam struct {
	Match *regexp.Regexp
	Extra int
}

// A Path is one runtime-checked hot path: the summaries to sum and
// the seams that bound its dynamic calls.
type Path struct {
	Roots []string
	Seams []Seam
}

// Result is the evaluation of one Path against a Set.
type Result struct {
	// Ceiling is the licensed malloc upper bound per operation.
	Ceiling int
	// Bounded reports whether every site and dynamic call in the path
	// is statically bounded or seam-licensed.
	Bounded bool
	// Blockers lists what keeps the path unbounded, deduplicated.
	Blockers []string
}

// Eval sums the path's root summaries: bounded sites contribute
// Count·SiteWeight, seam-matched dynamic calls contribute Count·Extra,
// and everything else (looped non-amortized sites, unmatched dynamic
// calls) makes the result unbounded with a blocker naming it.
func (s *Set) Eval(p Path) Result {
	r := Result{Bounded: true}
	seen := map[string]bool{}
	blocked := func(desc string) {
		r.Bounded = false
		if !seen[desc] {
			seen[desc] = true
			r.Blockers = append(r.Blockers, desc)
		}
	}
	for _, root := range p.Roots {
		sum, ok := s.summaries[root]
		if !ok {
			continue // alloc-free
		}
		for _, site := range sum.Sites {
			if site.Looped && !site.Amortized {
				blocked(fmt.Sprintf("%s: looped %s site", site.Owner, site.Kind))
			}
			r.Ceiling += site.Count * allocflow.SiteWeight(site.Kind)
		}
		for _, dyn := range sum.Unknown {
			if seam := matchSeam(p.Seams, dyn.Desc); seam != nil {
				r.Ceiling += dyn.Count * seam.Extra
				continue
			}
			blocked(fmt.Sprintf("%s: %s", dyn.Owner, dyn.Desc))
		}
	}
	sort.Strings(r.Blockers)
	return r
}

func matchSeam(seams []Seam, desc string) *Seam {
	for i := range seams {
		if seams[i].Match.MatchString(desc) {
			return &seams[i]
		}
	}
	return nil
}
