// Package hot is the golden package migrated from hotpathalloc: the
// single-function allocation kinds, now reported as aggregated
// (owner, kind) buckets. Its files live under testdata, so baseline
// auto-discovery is disabled and every bucket in a hotpath function is
// over budget.
package hot

type entry struct{ w uint64 }

// Sketch is a miniature of the real samplers.
type Sketch struct {
	entries map[uint64]entry
	buf     []uint64
}

// Process observes one item.
//
// hotpath: called once per stream item.
func (s *Sketch) Process(label uint64) {
	s.entries[label] = entry{w: 1} // want "1 composite site"
	s.buf = append(s.buf, label)   // want "1 append site"
	tmp := make([]uint64, 1)       // want "1 make site"
	tmp[0] = label
	p := new(entry) // want "1 new site"
	_ = p
}

// Each visits retained items: the closure is a site, and the calls
// through func values (g here, f inside the literal) aggregate into
// one calls-unknown bucket at the first dynamic call.
//
// hotpath: called once per stream item.
func (s *Sketch) Each(f func(uint64)) {
	g := func(x uint64) { f(x) } // want "1 closure site" "2 unbounded dynamic call"
	for l := range s.entries {
		g(l)
	}
}

// Reset is a cold path: allocations are fine without annotation.
func (s *Sketch) Reset() {
	s.entries = map[uint64]entry{}
	s.buf = make([]uint64, 0, 16)
}

// Lookup is hot but allocation-free: fine.
//
// hotpath: called once per stream item.
func (s *Sketch) Lookup(label uint64) bool {
	_, ok := s.entries[label]
	return ok
}
