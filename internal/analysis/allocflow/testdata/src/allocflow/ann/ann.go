// Package ann exercises the allocflow annotation grammar: reasoned
// allocflow:amortized and allocflow:cold annotations suppress
// findings, bare ones are findings themselves.
package ann

// Buf is a growable buffer with hot push/lookup paths.
type Buf struct {
	data []uint64
	n    int
}

// Push grows by doubling: the append is reviewed-amortized, so it is
// not a finding (but stays in the summary for runtime ceilings).
//
// hotpath: called once per stream item.
func (b *Buf) Push(v uint64) {
	// allocflow:amortized doubling growth, O(1) amortized per push
	b.data = append(b.data, v)
	b.n++
}

// PushBare has the same append but a bare annotation: the annotation
// itself is a finding, and it covers nothing, so the append is
// reported too.
//
// hotpath: called once per stream item.
func (b *Buf) PushBare(v uint64) {
	/* allocflow:amortized */ b.data = append(b.data, v) // want "bare allocflow:amortized annotation" "1 append site"
}

// Repair is hot but its allocation sits on a reviewed-cold branch:
// the statement is pruned from the summary entirely.
//
// hotpath: called once per stream item.
func (b *Buf) Repair(v uint64) bool {
	if b.n > cap(b.data) {
		// allocflow:cold repair path reached only after corruption
		b.data = make([]uint64, b.n)
	}
	return b.n > 0
}

// RepairBare is the same shape with a bare cold annotation: finding
// plus the unpruned make.
//
// hotpath: called once per stream item.
func (b *Buf) RepairBare(v uint64) bool {
	if b.n > cap(b.data) {
		/* allocflow:cold */ b.data = make([]uint64, b.n) // want "bare allocflow:cold annotation" "1 make site"
	}
	return b.n > 0
}
