// Package iface exercises calls-unknown tainting: interface method
// calls and func-value calls cannot be bounded statically.
package iface

// Encoder is a stand-in for sketch.Sketch-style interfaces.
type Encoder interface {
	Encode() []byte
}

// Hot drives an Encoder per item.
type Hot struct {
	e    Encoder
	hook func()
}

// Emit calls through the interface: unbounded.
//
// hotpath: called once per stream item.
func (h *Hot) Emit() []byte {
	return h.e.Encode() // want "1 unbounded dynamic call"
}

// Fire calls through a func value: unbounded.
//
// hotpath: called once per stream item.
func (h *Hot) Fire() {
	h.hook() // want "1 unbounded dynamic call"
}
