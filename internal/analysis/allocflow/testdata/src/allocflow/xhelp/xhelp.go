// Package xhelp is the cross-package callee side of the allocflow
// goldens: it has no hotpath annotations, so it produces no findings
// of its own — only AllocSummary facts for xhot to inherit.
package xhelp

// Grow appends one element; its append site must taint callers.
func Grow(buf []uint64, v uint64) []uint64 {
	return append(buf, v)
}

// Pair is a small allocated record.
type Pair struct{ A, B uint64 }

// NewPair allocates; its composite site must taint callers.
func NewPair(a, b uint64) *Pair {
	return &Pair{A: a, B: b}
}

// Marshaler is an interface whose calls cannot be bounded.
type Marshaler interface {
	M() []byte
}

// Call invokes the interface method: a calls-unknown taint that must
// flow to hot callers through the fact.
func Call(m Marshaler) []byte {
	return m.M()
}
