// Package xhot is the hot side of the cross-package allocflow
// goldens: every allocation it is charged with lives one or two calls
// away, in package xhelp, and reaches it only through AllocSummary
// facts.
package xhot

import "allocflow/xhelp"

// Sketch is a miniature hot-path consumer.
type Sketch struct {
	buf []uint64
}

// Process inherits xhelp.Grow's append site.
//
// hotpath: called once per stream item.
func (s *Sketch) Process(label uint64) {
	s.buf = xhelp.Grow(s.buf, label) // want "1 append site.* in allocflow/xhelp.Grow"
}

// record is a local hop: not hot itself, but its inherited composite
// must flow onward to Observe.
func (s *Sketch) record(l uint64) *xhelp.Pair {
	return xhelp.NewPair(l, l)
}

// Observe inherits xhelp.NewPair's composite through two hops.
//
// hotpath: called once per stream item.
func (s *Sketch) Observe(label uint64) *xhelp.Pair {
	return s.record(label) // want "1 composite site.* in allocflow/xhelp.NewPair"
}

// Pack inherits xhelp.Call's interface-call taint: the dynamic call is
// unbounded and must surface here as calls-unknown.
//
// hotpath: called once per stream item.
func (s *Sketch) Pack(m xhelp.Marshaler) []byte {
	return xhelp.Call(m) // want "1 unbounded dynamic call.* in allocflow/xhelp.Call"
}
