// Package hotbase has exactly one allocation per kind in its hotpath,
// all accepted by the baseline TestBaselineGating supplies — so no
// diagnostics are expected — plus one kind exceeding its budget. The
// over-budget bucket is reported once, at its first site (buckets
// aggregate; line numbers are not part of the key).
package hotbase

type entry struct{ w uint64 }

// Sketch mirrors hot.Sketch.
type Sketch struct {
	entries map[uint64]entry
	buf     []uint64
}

// Process has one composite and one append (baselined) and two makes
// (baseline allows one).
//
// hotpath: called once per stream item.
func (s *Sketch) Process(label uint64) {
	s.entries[label] = entry{w: 1}
	s.buf = append(s.buf, label)
	a := make([]uint64, 1) // want "2 make site"
	b := make([]uint64, 1)
	a[0], b[0] = label, label
}
