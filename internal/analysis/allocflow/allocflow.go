// Package allocflow is the interprocedural allocation-flow analyzer:
// it proves, module-wide, how many times a `// hotpath:`-annotated
// function may allocate per call — including allocations hiding
// arbitrarily many calls deep — and gates that number against a
// checked-in budget.
//
// Every function gets an AllocSummary: its classified syntactic
// allocation sites (append, composite, make, new, closure, conversion,
// interface boxing) plus the calls whose cost the analyzer cannot
// bound (interface methods, func values, reflection, allocating
// stdlib entry points) as a `calls-unknown` escape hatch. Summaries
// are transitive — a function inherits its callees' summaries with
// multiplicity — and are exported as object facts, so taint crosses
// package boundaries through all three drivers exactly like
// mergepure's Impure and lockorder's LockSummary. A fact miss means
// "allocation-free": the lattice bottom.
//
// Findings are reported only for `// hotpath:` roots (the per-item
// Process/Merge/decode/absorb paths, where one allocation multiplies
// by the stream length): each (root, owner, kind) bucket of the
// root's transitive closure is compared against
// lint/allocflow.baseline and reported when over budget. The baseline
// is generated, never hand-edited:
//
//	go run ./cmd/unionlint -allocflow.update ./...
//
// Two annotations refine the model, and both demand a reason —
// a bare annotation is itself a finding, like lockorder's discipline:
//
//	// allocflow:amortized <reason>
//	// allocflow:cold <reason>
//
// `amortized` marks a reviewed growth site on its line (or the line
// below): the site stays in the summary — runtime ceilings still count
// it — but it is never reported and never baselined, because its
// steady-state cost is zero (slice doubling, one-time lazy init).
// `cold` prunes the statement it covers entirely: the branch is
// unreachable on the hot path (error returns, rotation, chaos hooks).
//
// The model is deliberately syntactic and over-approximate — escape
// analysis may keep any site on the stack — with these documented
// axioms: map writes are charged to the map's make site (growth is
// amortized by construction); open-coded defers and method-value
// closures are not charged; a curated stdlib table marks formatting
// and building entry points (fmt, errors.New, strconv.Format*,
// strings/bytes builders, sort.Slice, reflect) as unknown and
// strconv/binary Append* as caller-owned append sites; every other
// fact-less callee is allocation-free. AllocSummary.Ceiling converts
// a summary into a malloc upper bound with per-kind weights, which is
// what TestHotPathAllocSummaries and gtbench check observed
// testing.AllocsPerRun numbers against — the runtime cross-check that
// keeps these static verdicts honest.
//
// _test.go files are skipped.
package allocflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

var baselineFlag = &analysis.Flag{
	Name:  "baseline",
	Usage: "path to the allocation-budget baseline file (default: <module>/lint/allocflow.baseline)",
}

var writeFlag = &analysis.Flag{
	Name:  "write",
	Usage: "set to 1/true to append observed hotpath allocation buckets to the baseline file instead of reporting",
}

// Analyzer is the allocflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "allocflow",
	Doc:       "interprocedural allocation-flow facts; budget `// hotpath:` roots' transitive allocations (baseline-gated)",
	Flags:     []*analysis.Flag{baselineFlag, writeFlag},
	FactTypes: []analysis.Fact{(*AllocSummary)(nil)},
	Run:       run,
}

// KindCallsUnknown is the baseline bucket kind for dynamic calls the
// analyzer cannot bound.
const KindCallsUnknown = "calls-unknown"

// An AllocSummary is the object fact exported for every function that
// may allocate: its transitive allocation sites and unbounded calls.
// Absence of the fact means the function is allocation-free.
type AllocSummary struct {
	Sites   []AllocSite
	Unknown []DynCall
}

// AFact marks AllocSummary as a fact.
func (*AllocSummary) AFact() {}

// An AllocSite is one aggregated allocation bucket in a function's
// transitive closure.
type AllocSite struct {
	Owner     string // pkg-qualified function the sites are written in
	Kind      string // append | composite | make | new | closure | conversion | interface
	Count     int    // syntactic sites (multiplied by call multiplicity)
	Looped    bool   // inside a loop somewhere along the chain
	Amortized bool   // reviewed via // allocflow:amortized
	Via       string // call chain from the summarized function, "" if direct
}

// A DynCall is one aggregated call the analyzer cannot see through:
// an interface method, a func value, reflection, or an allocating
// stdlib entry point.
type DynCall struct {
	Owner string // pkg-qualified function containing the call
	Desc  string // stable description, e.g. "interface call (repro/internal/sketch.Sketch).Merge"
	Count int
	Via   string
}

// SiteWeight is the documented malloc upper bound per site of a kind,
// used by Ceiling. The weights are deliberately generous — a make(map)
// is an hmap plus a bucket array, a closure is its object plus boxed
// captures — because the runtime cross-check only needs "observed ≤
// ceiling" to hold, and tightness only matters near zero.
func SiteWeight(kind string) int {
	switch kind {
	case "append":
		return 2 // grown backing array + growth bookkeeping
	case "make":
		return 4 // map: hmap + bucket array; slice/chan: backing store
	case "composite":
		return 3 // the literal + escape-boxed interior values
	case "new":
		return 1
	case "closure":
		return 3 // closure object + boxed captures
	case "conversion":
		return 1 // fresh string or slice backing store
	case "interface":
		return 1 // boxed non-pointer value
	}
	return 4
}

// Ceiling converts the summary into a malloc upper bound per call.
// bounded is false when the summary contains an unknown call or a
// looped, non-amortized site — then no finite static bound exists and
// runtime gates must skip the numeric comparison (or resolve the
// unknown seams explicitly, as internal/analysis/allocbudget does).
// Amortized sites still count toward the ceiling: steady state may
// occasionally pay them.
func (s *AllocSummary) Ceiling() (mallocs int, bounded bool) {
	bounded = true
	for _, st := range s.Sites {
		mallocs += st.Count * SiteWeight(st.Kind)
		if st.Looped && !st.Amortized {
			bounded = false
		}
	}
	if len(s.Unknown) > 0 {
		bounded = false
	}
	return mallocs, bounded
}

// annPrefix* introduce the two allocflow annotations.
const (
	annAmortized = "allocflow:amortized"
	annCold      = "allocflow:cold"
)

// lineKey addresses one source line.
type lineKey struct {
	file string
	line int
}

// siteEvent is one syntactic allocation observed during collection.
type siteEvent struct {
	pos       token.Pos
	kind      string
	count     int
	looped    bool
	amortized bool
}

// callEvent is one statically-resolved call to a function that may
// have a summary.
type callEvent struct {
	pos    token.Pos
	fn     *types.Func
	looped bool
}

// dynEvent is one call the analyzer cannot see through.
type dynEvent struct {
	pos    token.Pos
	desc   string
	looped bool
}

// funcRec is the per-function working record.
type funcRec struct {
	short string // display name, e.g. "Sketch.Process"
	owner string // pkg-qualified, e.g. "repro/internal/sketch/kmv.Sketch.Process"
	obj   types.Object
	hot   bool

	sites []siteEvent
	calls []callEvent
	dyns  []dynEvent

	state int // 0 unresolved, 1 resolving, 2 done
	res   *resolved
}

const (
	stateUnresolved = iota
	stateResolving
	stateDone
)

// bucketKey aggregates sites by where they live and what they are.
// Amortized buckets are kept apart: they count in ceilings but are
// never gated.
type bucketKey struct {
	owner     string
	kind      string
	amortized bool
}

// dynKey aggregates unknown calls.
type dynKey struct {
	owner string
	desc  string
}

// bucket is one aggregated entry with a representative local position
// for reporting.
type bucket struct {
	count  int
	looped bool
	pos    token.Pos
	via    string
}

// resolved is a function's transitive closure.
type resolved struct {
	sites map[bucketKey]*bucket
	dyns  map[dynKey]*bucket
	sum   *AllocSummary // built lazily, deterministic order
}

// state is the per-pass working set.
type state struct {
	pass  *analysis.Pass
	recs  map[types.Object]*funcRec
	order []*funcRec

	amortized map[lineKey]bool // reasoned allocflow:amortized lines (own + next)
	cold      map[lineKey]bool // reasoned allocflow:cold lines (own + next)
}

func run(pass *analysis.Pass) error {
	st := &state{
		pass:      pass,
		recs:      map[types.Object]*funcRec{},
		amortized: map[lineKey]bool{},
		cold:      map[lineKey]bool{},
	}
	st.scanAnnotations()
	st.collect()
	for _, rec := range st.order {
		st.resolve(rec)
	}
	st.exportFacts()

	if isSet(writeFlag.Value) {
		return st.writeBaseline()
	}
	baseline, err := st.loadBaseline()
	if err != nil {
		return err
	}
	st.report(baseline)
	return nil
}

// scanAnnotations indexes allocflow:amortized / allocflow:cold
// comments. Each covers its own line and the next, like
// unionlint:allow. A bare annotation — no reason — is a finding and
// covers nothing.
func (st *state) scanAnnotations() {
	for _, f := range st.pass.Files {
		if st.pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				text = strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/"))
				var m map[lineKey]bool
				var ann string
				switch {
				case strings.HasPrefix(text, annAmortized):
					m, ann = st.amortized, annAmortized
				case strings.HasPrefix(text, annCold):
					m, ann = st.cold, annCold
				default:
					continue
				}
				reason := strings.TrimSpace(text[len(ann):])
				if reason == "" {
					st.pass.Reportf(c.Pos(),
						"bare %s annotation: state the reason (// %s <reason>)", ann, ann)
					continue
				}
				cp := st.pass.Fset.Position(c.Pos())
				m[lineKey{cp.Filename, cp.Line}] = true
				m[lineKey{cp.Filename, cp.Line + 1}] = true
			}
		}
	}
}

func (st *state) amortizedAt(pos token.Pos) bool {
	p := st.pass.Fset.Position(pos)
	return st.amortized[lineKey{p.Filename, p.Line}]
}

func (st *state) coldAt(pos token.Pos) bool {
	p := st.pass.Fset.Position(pos)
	return st.cold[lineKey{p.Filename, p.Line}]
}

// collect builds a funcRec for every non-test function declaration.
func (st *state) collect() {
	for _, file := range st.pass.Files {
		if st.pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := st.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			rec := &funcRec{
				short: funcName(fd),
				owner: st.pass.PkgPath() + "." + funcName(fd),
				obj:   obj,
				hot:   isHotpath(fd),
			}
			st.walkBody(rec, fd.Body)
			st.recs[obj] = rec
			st.order = append(st.order, rec)
		}
	}
}

// walkBody walks one function body tracking loop depth and pruning
// statements covered by a reasoned allocflow:cold annotation.
// Everything inside a for/range statement (including init/cond, an
// accepted over-approximation) is "looped"; function-literal bodies
// fold into the enclosing function, since the literal usually runs on
// the same path that built it.
func (st *state) walkBody(rec *funcRec, body *ast.BlockStmt) {
	var stack []ast.Node
	loopDepth := 0
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch top.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loopDepth--
			}
			return true
		}
		if _, isStmt := n.(ast.Stmt); isStmt && n != ast.Node(body) && st.coldAt(n.Pos()) {
			return false // pruned: reviewed-cold branch
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
		}
		stack = append(stack, n)
		st.visit(rec, n, loopDepth > 0)
		return true
	})
}

// visit classifies one node into site/call/dyn events.
func (st *state) visit(rec *funcRec, n ast.Node, looped bool) {
	switch n := n.(type) {
	case *ast.CompositeLit:
		if isZeroSizeStruct(st.pass.TypesInfo.TypeOf(n)) {
			return // struct{}{} and friends provably never heap-allocate
		}
		st.addSite(rec, n.Pos(), "composite", 1, looped)
	case *ast.FuncLit:
		st.addSite(rec, n.Pos(), "closure", 1, looped)
	case *ast.GoStmt:
		st.addDyn(rec, n.Pos(), "go statement (spawns a goroutine)", looped)
	case *ast.CallExpr:
		st.visitCall(rec, n, looped)
	}
}

func (st *state) addSite(rec *funcRec, pos token.Pos, kind string, count int, looped bool) {
	rec.sites = append(rec.sites, siteEvent{
		pos:       pos,
		kind:      kind,
		count:     count,
		looped:    looped,
		amortized: st.amortizedAt(pos),
	})
}

func (st *state) addDyn(rec *funcRec, pos token.Pos, desc string, looped bool) {
	rec.dyns = append(rec.dyns, dynEvent{pos: pos, desc: desc, looped: looped})
}

// visitCall classifies a call: builtin allocator, allocating
// conversion, interface-boxing arguments, resolved static call, or
// unknown dynamic call. Children (nested calls, literal arguments)
// are visited by the surrounding walk.
func (st *state) visitCall(rec *funcRec, call *ast.CallExpr, looped bool) {
	fun := unparen(call.Fun)

	// Type conversion T(x).
	if tv, ok := st.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		st.classifyConversion(rec, call, tv.Type, looped)
		return
	}

	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = st.pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		obj = st.pass.TypesInfo.Uses[f.Sel]
	}

	if b, ok := obj.(*types.Builtin); ok {
		switch b.Name() {
		case "make", "new", "append":
			st.addSite(rec, call.Pos(), b.Name(), 1, looped)
		}
		return
	}

	// Interface boxing of arguments + the variadic backing slice.
	if sig, ok := st.pass.TypesInfo.TypeOf(fun).(*types.Signature); ok && sig != nil {
		st.scanArgBoxing(rec, call, sig, looped)
	}

	fn, ok := obj.(*types.Func)
	if !ok {
		// A func value: a local variable, struct field (registry Decode
		// hooks), or parameter — statically opaque.
		st.addDyn(rec, call.Pos(), "dynamic call "+types.ExprString(fun), looped)
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if rt := sig.Recv().Type(); types.IsInterface(rt) {
			st.addDyn(rec, call.Pos(),
				fmt.Sprintf("interface call (%s).%s", typeDisplay(rt), fn.Name()), looped)
			return
		}
	}
	if fn.Pkg() == nil {
		return // universe-scope (error.Error is caught above)
	}
	pkgPath := analysis.TrimPkgPath(fn.Pkg().Path())
	switch stdlibVerdict(pkgPath, fn.Name()) {
	case "append":
		// strconv.AppendUint, binary.LittleEndian.AppendUint64, Buffer
		// growth: an append-shaped site owned by the caller.
		st.addSite(rec, call.Pos(), "append", 1, looped)
		return
	case "unknown":
		st.addDyn(rec, call.Pos(),
			fmt.Sprintf("calls %s.%s (allocating stdlib)", pkgPath, fn.Name()), looped)
		return
	}
	rec.calls = append(rec.calls, callEvent{pos: call.Pos(), fn: fn, looped: looped})
}

// classifyConversion records conversions that copy memory: string ↔
// byte/rune slice (either direction) and integer → string. Interface
// conversions box their operand. Everything else (numeric, named-type
// relabeling) is free.
func (st *state) classifyConversion(rec *funcRec, call *ast.CallExpr, to types.Type, looped bool) {
	if types.IsInterface(to) {
		if len(call.Args) == 1 && !isInterfaceOrNil(st.pass.TypesInfo, call.Args[0]) {
			st.addSite(rec, call.Pos(), "interface", 1, looped)
		}
		return
	}
	if len(call.Args) != 1 {
		return
	}
	from := st.pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	toU, fromU := to.Underlying(), from.Underlying()
	toStr := isBasicKind(toU, types.IsString)
	fromStr := isBasicKind(fromU, types.IsString)
	switch {
	case toStr && !fromStr: // string(b), string(runes), string(r)
		st.addSite(rec, call.Pos(), "conversion", 1, looped)
	case !toStr && fromStr && isByteOrRuneSlice(toU): // []byte(s), []rune(s)
		st.addSite(rec, call.Pos(), "conversion", 1, looped)
	}
}

// scanArgBoxing charges one "interface" site per non-interface value
// passed to an interface-typed parameter (boxing), and one "make" site
// for the backing slice of a non-empty variadic call.
func (st *state) scanArgBoxing(rec *funcRec, call *ast.CallExpr, sig *types.Signature, looped bool) {
	params := sig.Params()
	n := params.Len()
	var variadicElem types.Type
	if sig.Variadic() && n > 0 {
		if sl, ok := params.At(n - 1).Type().(*types.Slice); ok {
			variadicElem = sl.Elem()
		}
	}
	boxed, varargs := 0, 0
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(n - 1).Type() // slice passed whole
			} else {
				pt = variadicElem
				varargs++
			}
		case i < n:
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if isInterfaceOrNil(st.pass.TypesInfo, arg) {
			continue
		}
		boxed++
	}
	if boxed > 0 {
		st.addSite(rec, call.Pos(), "interface", boxed, looped)
	}
	if varargs > 0 && variadicElem != nil {
		st.addSite(rec, call.Pos(), "make", 1, looped)
	}
}

// stdlibVerdict is the curated standard-library model: "" means
// allocation-free (the default for every fact-less callee), "append"
// means an append-shaped caller-owned site, "unknown" means the call
// allocates in ways the analyzer does not model per-site.
func stdlibVerdict(pkgPath, name string) string {
	switch pkgPath {
	case "fmt":
		return "unknown" // every fmt entry point formats into fresh memory
	case "errors":
		switch name {
		case "New", "Join", "As":
			return "unknown"
		}
	case "strconv":
		switch {
		case strings.HasPrefix(name, "Append"):
			return "append"
		case strings.HasPrefix(name, "Format"), strings.HasPrefix(name, "Quote"),
			name == "Itoa", name == "Unquote":
			return "unknown"
		}
	case "encoding/binary":
		switch {
		case strings.HasPrefix(name, "Append"):
			return "append"
		case name == "Read", name == "Write", name == "Size":
			return "unknown" // reflection-based
		}
	case "strings":
		switch name {
		case "Join", "Repeat", "Split", "SplitN", "SplitAfter", "SplitAfterN",
			"Fields", "FieldsFunc", "Replace", "ReplaceAll", "Map", "Clone",
			"ToUpper", "ToLower", "ToTitle", "ToValidUTF8", "NewReader", "NewReplacer":
			return "unknown"
		case "WriteString", "WriteByte", "WriteRune", "Grow", "String": // strings.Builder
			return "append"
		}
	case "bytes":
		switch name {
		case "Join", "Repeat", "Split", "SplitN", "SplitAfter", "SplitAfterN",
			"Fields", "FieldsFunc", "Replace", "ReplaceAll", "Map", "Clone",
			"ToUpper", "ToLower", "NewBuffer", "NewBufferString", "NewReader":
			return "unknown"
		case "Write", "WriteString", "WriteByte", "WriteRune", "Grow", "String": // bytes.Buffer
			return "append"
		}
	case "sort":
		switch name {
		case "Slice", "SliceStable": // reflect-based
			return "unknown"
		}
	case "time":
		switch name {
		case "After", "Tick", "NewTimer", "NewTicker":
			return "unknown"
		}
	case "os":
		switch name {
		case "Open", "OpenFile", "Create", "ReadFile", "WriteFile", "MkdirAll", "ReadDir":
			return "unknown"
		}
	case "reflect":
		return "unknown"
	case "regexp":
		return "unknown"
	}
	return ""
}

// resolve computes rec's transitive closure, memoized, with a cycle
// guard: a recursive call has unbounded multiplicity, so it degrades
// to an unknown rather than under-counting.
func (st *state) resolve(rec *funcRec) *resolved {
	if rec.state == stateDone {
		return rec.res
	}
	rec.state = stateResolving
	res := &resolved{sites: map[bucketKey]*bucket{}, dyns: map[dynKey]*bucket{}}
	for _, s := range rec.sites {
		res.addSite(bucketKey{rec.owner, s.kind, s.amortized}, s.count, s.looped, s.pos, "")
	}
	for _, d := range rec.dyns {
		res.addDyn(dynKey{rec.owner, d.desc}, 1, d.looped, d.pos, "")
	}
	for _, ev := range rec.calls {
		sub, cyclic := st.summaryOf(ev.fn)
		if cyclic {
			res.addDyn(dynKey{rec.owner, "recursive call to " + fnDisplay(ev.fn)},
				1, ev.looped, ev.pos, "")
			continue
		}
		if sub == nil {
			continue // allocation-free callee
		}
		for _, s := range sub.Sites {
			res.addSite(bucketKey{s.Owner, s.Kind, s.Amortized},
				s.Count, s.Looped || ev.looped, ev.pos, extendVia(ev.fn, s.Via))
		}
		for _, d := range sub.Unknown {
			res.addDyn(dynKey{d.Owner, d.Desc}, d.Count, ev.looped, ev.pos, extendVia(ev.fn, d.Via))
		}
	}
	rec.state = stateDone
	rec.res = res
	return res
}

// summaryOf returns the callee's summary: a locally resolved record,
// an imported fact, or nil (allocation-free). cyclic reports a
// recursion cycle in progress.
func (st *state) summaryOf(fn *types.Func) (sum *AllocSummary, cyclic bool) {
	if r, ok := st.recs[types.Object(fn)]; ok {
		if r.state == stateResolving {
			return nil, true
		}
		return st.resolve(r).summary(), false
	}
	var fact AllocSummary
	if st.pass.ImportObjectFact(fn, &fact) {
		return &fact, false
	}
	return nil, false
}

func (r *resolved) addSite(k bucketKey, count int, looped bool, pos token.Pos, via string) {
	b := r.sites[k]
	if b == nil {
		b = &bucket{pos: pos, via: via}
		r.sites[k] = b
	}
	b.count += count
	b.looped = b.looped || looped
}

func (r *resolved) addDyn(k dynKey, count int, looped bool, pos token.Pos, via string) {
	b := r.dyns[k]
	if b == nil {
		b = &bucket{pos: pos, via: via}
		r.dyns[k] = b
	}
	b.count += count
	b.looped = b.looped || looped
}

// summary renders the closure in deterministic order.
func (r *resolved) summary() *AllocSummary {
	if r.sum != nil {
		return r.sum
	}
	s := &AllocSummary{}
	for k, b := range r.sites {
		s.Sites = append(s.Sites, AllocSite{
			Owner: k.owner, Kind: k.kind, Count: b.count,
			Looped: b.looped, Amortized: k.amortized, Via: b.via,
		})
	}
	sort.Slice(s.Sites, func(i, j int) bool {
		a, b := s.Sites[i], s.Sites[j]
		if a.Owner != b.Owner {
			return a.Owner < b.Owner
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return !a.Amortized && b.Amortized
	})
	for k, b := range r.dyns {
		s.Unknown = append(s.Unknown, DynCall{Owner: k.owner, Desc: k.desc, Count: b.count, Via: b.via})
	}
	sort.Slice(s.Unknown, func(i, j int) bool {
		a, b := s.Unknown[i], s.Unknown[j]
		if a.Owner != b.Owner {
			return a.Owner < b.Owner
		}
		return a.Desc < b.Desc
	})
	r.sum = s
	return s
}

// exportFacts publishes every non-empty summary whose function has a
// stable object path.
func (st *state) exportFacts() {
	for _, rec := range st.order {
		sum := st.resolve(rec).summary()
		if len(sum.Sites)+len(sum.Unknown) == 0 {
			continue
		}
		if _, ok := analysis.ObjectPath(rec.obj); !ok {
			continue
		}
		st.pass.ExportObjectFact(rec.obj, sum)
	}
}

// budgetKey is one baseline bucket.
type budgetKey struct {
	root, owner, kind string
}

func (k budgetKey) String() string { return k.root + "\t" + k.owner + "\t" + k.kind }

// report compares every hot root's non-amortized buckets against the
// baseline.
func (st *state) report(baseline map[budgetKey]int) {
	for _, rec := range st.order {
		if !rec.hot {
			continue
		}
		res := st.resolve(rec)
		for _, k := range sortedSiteKeys(res.sites) {
			if k.amortized {
				continue
			}
			b := res.sites[k]
			budget := baseline[budgetKey{rec.owner, k.owner, k.kind}]
			if b.count <= budget {
				continue
			}
			st.pass.Reportf(b.pos,
				"hot path %s transitively allocates: %d %s site(s) in %s (budget %d)%s; hoist it, annotate it (// allocflow:amortized <reason> or // allocflow:cold <reason>), or accept it: unionlint -allocflow.update",
				rec.short, b.count, k.kind, k.owner, budget, viaSuffix(b.via))
		}
		// Unknown calls gate as one calls-unknown bucket per owner.
		type dynAgg struct {
			count int
			pos   token.Pos
			descs []string
			via   string
		}
		aggs := map[string]*dynAgg{}
		for _, k := range sortedDynKeys(res.dyns) {
			b := res.dyns[k]
			a := aggs[k.owner]
			if a == nil {
				a = &dynAgg{pos: b.pos, via: b.via}
				aggs[k.owner] = a
			}
			a.count += b.count
			if len(a.descs) < 3 {
				a.descs = append(a.descs, k.desc)
			}
		}
		var owners []string
		for o := range aggs {
			owners = append(owners, o)
		}
		sort.Strings(owners)
		for _, o := range owners {
			a := aggs[o]
			budget := baseline[budgetKey{rec.owner, o, KindCallsUnknown}]
			if a.count <= budget {
				continue
			}
			st.pass.Reportf(a.pos,
				"hot path %s reaches %d unbounded dynamic call(s) in %s (budget %d): %s%s; make the callee concrete, prune it (// allocflow:cold <reason>), or accept it: unionlint -allocflow.update",
				rec.short, a.count, o, budget, strings.Join(a.descs, "; "), viaSuffix(a.via))
		}
	}
}

func viaSuffix(via string) string {
	if via == "" {
		return ""
	}
	return " " + via
}

func sortedSiteKeys(m map[bucketKey]*bucket) []bucketKey {
	keys := make([]bucketKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.owner != b.owner {
			return a.owner < b.owner
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return !a.amortized && b.amortized
	})
	return keys
}

func sortedDynKeys(m map[dynKey]*bucket) []dynKey {
	keys := make([]dynKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.owner != b.owner {
			return a.owner < b.owner
		}
		return a.desc < b.desc
	})
	return keys
}

// isHotpath reports whether fd's doc comment carries a hotpath: line.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, "hotpath:") {
			return true
		}
	}
	return false
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// fnDisplay renders a callee for via chains: last package element plus
// receiver-qualified name.
func fnDisplay(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		p := analysis.TrimPkgPath(fn.Pkg().Path())
		if i := strings.LastIndexByte(p, '/'); i >= 0 {
			p = p[i+1:]
		}
		name = p + "." + name
	}
	return name
}

// extendVia prepends one hop to a chain, capping its length.
func extendVia(fn *types.Func, sub string) string {
	hop := "via " + fnDisplay(fn)
	if sub == "" {
		return hop
	}
	if strings.Count(sub, "via ") >= 3 {
		return hop + " …"
	}
	return hop + " " + sub
}

func typeDisplay(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		return analysis.TrimPkgPath(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
	}
	return t.String()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isZeroSizeStruct(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Struct)
	return ok && s.NumFields() == 0
}

func isBasicKind(t types.Type, info types.BasicInfo) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&info != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isInterfaceOrNil reports whether arg is already interface-typed or
// the untyped nil (neither boxes).
func isInterfaceOrNil(info *types.Info, arg ast.Expr) bool {
	t := info.TypeOf(arg)
	if t == nil {
		return true // be lenient on weird exprs
	}
	if types.IsInterface(t) {
		return true
	}
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isSet(v string) bool { return v == "1" || v == "true" }

// baselinePath resolves the baseline file: the flag if set, else
// <module root>/lint/allocflow.baseline found by walking up from the
// package's first source file. Paths containing a testdata element
// never auto-discover (golden tests must not see the real baseline).
func (st *state) baselinePath(forWrite bool) string {
	if baselineFlag.Value != "" {
		return baselineFlag.Value
	}
	if len(st.pass.Files) == 0 {
		return ""
	}
	dir := filepath.Dir(st.pass.Fset.File(st.pass.Files[0].Pos()).Name())
	if strings.Contains(dir, string(filepath.Separator)+"testdata"+string(filepath.Separator)) {
		return ""
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			p := filepath.Join(dir, "lint", "allocflow.baseline")
			if _, err := os.Stat(p); err == nil || forWrite {
				return p
			}
			return ""
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// loadBaseline parses "root\towner\tkind\tcount" lines.
func (st *state) loadBaseline() (map[budgetKey]int, error) {
	out := map[budgetKey]int{}
	path := st.baselinePath(false)
	if path == "" {
		return out, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("allocflow baseline: %w", err)
	}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("allocflow baseline %s:%d: want 4 tab-separated fields (root, owner, kind, count)", path, ln+1)
		}
		n, err := strconv.Atoi(parts[3])
		if err != nil {
			return nil, fmt.Errorf("allocflow baseline %s:%d: bad count: %v", path, ln+1, err)
		}
		out[budgetKey{parts[0], parts[1], parts[2]}] = n
	}
	return out, nil
}

// writeBaseline appends this package's hot-root buckets (the
// standalone driver truncates the file before the sweep). Amortized
// buckets are never baselined: their acceptance lives in the
// annotation, not here.
func (st *state) writeBaseline() error {
	path := st.baselinePath(true)
	if path == "" {
		return fmt.Errorf("allocflow: -allocflow.write needs -allocflow.baseline or a module lint/ directory")
	}
	counts := map[budgetKey]int{}
	var order []budgetKey
	add := func(k budgetKey, n int) {
		if counts[k] == 0 {
			order = append(order, k)
		}
		counts[k] += n
	}
	for _, rec := range st.order {
		if !rec.hot {
			continue
		}
		res := st.resolve(rec)
		for _, k := range sortedSiteKeys(res.sites) {
			if k.amortized {
				continue
			}
			add(budgetKey{rec.owner, k.owner, k.kind}, res.sites[k].count)
		}
		for _, k := range sortedDynKeys(res.dyns) {
			add(budgetKey{rec.owner, k.owner, KindCallsUnknown}, res.dyns[k].count)
		}
	}
	if len(order) == 0 {
		return nil
	}
	sort.Slice(order, func(i, j int) bool { return order[i].String() < order[j].String() })
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, k := range order {
		if _, err := fmt.Fprintf(f, "%s\t%d\n", k.String(), counts[k]); err != nil {
			return err
		}
	}
	return nil
}
