package allocflow_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/allocflow"
	"repro/internal/analysis/analysistest"
)

// TestAllocflow pins the analyzer's four golden scenarios: transitive
// allocation through cross-package callees (xhelp → xhot, through
// AllocSummary facts only), the annotation grammar (reasoned
// amortized/cold suppress, bare ones are findings), calls-unknown
// tainting (interface methods and func values), and the migrated
// hotpathalloc single-function kinds (hot).
func TestAllocflow(t *testing.T) {
	analysistest.Run(t, testdata(t), allocflow.Analyzer,
		"allocflow/xhelp",
		"allocflow/xhot",
		"allocflow/ann",
		"allocflow/iface",
		"hot",
	)
}

// TestBaselineGating checks that baselined buckets suppress exactly
// their budget: hotbase's composite and append are accepted, and one
// of its two makes is — the bucket exceeding its count is reported
// once, at its first site.
func TestBaselineGating(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline")
	content := "# test baseline\n" +
		"hotbase.Sketch.Process\thotbase.Sketch.Process\tcomposite\t1\n" +
		"hotbase.Sketch.Process\thotbase.Sketch.Process\tappend\t1\n" +
		"hotbase.Sketch.Process\thotbase.Sketch.Process\tmake\t1\n"
	if err := os.WriteFile(baseline, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	f := allocflow.Analyzer.Lookup("baseline")
	old := f.Value
	f.Value = baseline
	defer func() { f.Value = old }()
	analysistest.Run(t, testdata(t), allocflow.Analyzer, "hotbase")
}

// TestCeiling pins the malloc-weight arithmetic the runtime gate
// relies on: amortized sites count, looped non-amortized sites and
// unknowns make the summary unbounded.
func TestCeiling(t *testing.T) {
	sum := &allocflow.AllocSummary{
		Sites: []allocflow.AllocSite{
			{Owner: "p.F", Kind: "append", Count: 2, Looped: true, Amortized: true},
			{Owner: "p.F", Kind: "new", Count: 1},
		},
	}
	mallocs, bounded := sum.Ceiling()
	if want := 2*allocflow.SiteWeight("append") + 1*allocflow.SiteWeight("new"); mallocs != want || !bounded {
		t.Fatalf("Ceiling() = %d, %v; want %d, true", mallocs, bounded, want)
	}
	sum.Sites[0].Amortized = false
	if _, bounded := sum.Ceiling(); bounded {
		t.Fatal("looped non-amortized site must be unbounded")
	}
	sum.Sites[0].Amortized = true
	sum.Unknown = []allocflow.DynCall{{Owner: "p.F", Desc: "interface call (p.I).M", Count: 1}}
	if _, bounded := sum.Ceiling(); bounded {
		t.Fatal("unknown call must be unbounded")
	}
}

func testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}
