// Package registry enumerates the unionlint analyzer suite. It exists
// as its own package so both cmd/unionlint and any future embedding
// (e.g. a CI helper) share one list, and so internal/analysis itself
// stays import-cycle-free of the analyzers built on it.
package registry

import (
	"repro/internal/analysis"
	"repro/internal/analysis/errcontract"
	"repro/internal/analysis/floatcmp"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/seedcheck"
)

// Analyzers returns the full unionlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		errcontract.Analyzer,
		floatcmp.Analyzer,
		hotpathalloc.Analyzer,
		lockcheck.Analyzer,
		seedcheck.Analyzer,
	}
}
