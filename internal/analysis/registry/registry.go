// Package registry enumerates the unionlint analyzer suite. It exists
// as its own package so both cmd/unionlint and any future embedding
// (e.g. a CI helper) share one list, and so internal/analysis itself
// stays import-cycle-free of the analyzers built on it.
package registry

import (
	"repro/internal/analysis"
	"repro/internal/analysis/ackcontract"
	"repro/internal/analysis/allocflow"
	"repro/internal/analysis/errcontract"
	"repro/internal/analysis/failpointcheck"
	"repro/internal/analysis/floatcmp"
	"repro/internal/analysis/kindcheck"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/mergepure"
	"repro/internal/analysis/seedcheck"
)

// Analyzers returns the full unionlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ackcontract.Analyzer,
		allocflow.Analyzer,
		errcontract.Analyzer,
		failpointcheck.Analyzer,
		floatcmp.Analyzer,
		kindcheck.Analyzer,
		lockcheck.Analyzer,
		lockorder.Analyzer,
		mergepure.Analyzer,
		seedcheck.Analyzer,
	}
}
