package floatcmp_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, "testdata", floatcmp.Analyzer,
		"repro/internal/estimate/cmpcases", // in scope: flags + carve-outs
		"repro/internal/report/plotting",   // out of scope: silent
	)
}
