// Package plotting is outside floatcmp's scope.
package plotting

// SameTick compares floats with ==, which is fine outside estimator
// code.
func SameTick(a, b float64) bool { return a == b }
