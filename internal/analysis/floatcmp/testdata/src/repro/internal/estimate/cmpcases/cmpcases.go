// Package cmpcases is a golden-test package on an in-scope import path
// (matches internal/estimate in floatcmp's default scope).
package cmpcases

// RelErr mirrors the real helper: the exact-zero guard is allowed, the
// equality short-circuit is not.
func RelErr(est, truth float64) float64 {
	if truth == 0 { // exact constant zero: allowed
		if est == 0 { // allowed too
			return 0
		}
		return 1
	}
	if est == truth { // want "float equality"
		return 0
	}
	d := est - truth
	if d < 0 {
		d = -d
	}
	return d / truth
}

// Converged uses != on floats: flagged.
func Converged(prev, cur float64) bool {
	return prev != cur // want "float equality"
}

// Ints may compare freely.
func Ints(a, b int) bool { return a == b }

// BitIdentical is a reviewed exception.
func BitIdentical(a, b float64) bool {
	// unionlint:allow floatcmp merge determinism is asserted bit-identically
	return a == b
}
