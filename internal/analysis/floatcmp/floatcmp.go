// Package floatcmp forbids float equality comparisons in estimator
// code.
//
// Estimates in this repository are medians of scaled float64 counts;
// comparing them with == or != encodes an accident of rounding as
// logic. The analyzer flags ==/!= where either operand is a float
// type, in the estimator packages (internal/core, internal/estimate),
// with two deliberate carve-outs:
//
//   - comparison against an exact constant zero: zero is exactly
//     representable and "no data yet" is a legitimate domain check
//     (RelErr's truth == 0 guard is the canonical example);
//   - _test.go files: the repository's tests assert bit-identical
//     determinism (serial vs parallel, local vs networked), where
//     exact float equality is the point, not a bug.
//
// Everything else should use an epsilon comparison (math.Abs(a-b) <
// eps) or carry an `unionlint:allow floatcmp <reason>` annotation.
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

// DefaultScope is the estimator code the rule applies to.
const DefaultScope = `(^|/)internal/(core|estimate)(/|$)`

var scopeFlag = &analysis.Flag{
	Name:  "scope",
	Usage: "regexp of package import paths the analyzer applies to",
	Value: DefaultScope,
}

// Analyzer is the floatcmp analyzer.
var Analyzer = &analysis.Analyzer{
	Name:  "floatcmp",
	Doc:   "forbid ==/!= on floats in estimator code (except against exact zero)",
	Flags: []*analysis.Flag{scopeFlag},
	Run:   run,
}

func run(pass *analysis.Pass) error {
	scope, err := regexp.Compile(scopeFlag.Value)
	if err != nil {
		return err
	}
	if !scope.MatchString(pass.PkgPath()) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if pass.IsTestFile(be.Pos()) {
			return true
		}
		if !isFloat(pass, be.X) && !isFloat(pass, be.Y) {
			return true
		}
		if isExactZero(pass, be.X) || isExactZero(pass, be.Y) {
			return true
		}
		pass.Reportf(be.OpPos,
			"float equality (%s) in estimator code; use an epsilon comparison like math.Abs(a-b) < eps, or annotate `unionlint:allow floatcmp <reason>` if exactness is intended", be.Op)
		return true
	})
	return nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isExactZero reports whether e is a compile-time constant equal to 0.
func isExactZero(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	if tv.Value.Kind() != constant.Int && tv.Value.Kind() != constant.Float {
		return false
	}
	return constant.Sign(tv.Value) == 0
}
