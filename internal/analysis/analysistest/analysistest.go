// Package analysistest runs an analyzer over golden packages under a
// testdata directory and checks its diagnostics against `// want`
// comments, after the pattern of golang.org/x/tools'
// go/analysis/analysistest.
//
// Layout: testdata/src/<import/path>/*.go, loaded as package
// <import/path> (so scope-sensitive analyzers see realistic paths).
// Expectations are comments of the form
//
//	expr // want "regexp"
//	expr // want "first" "second"
//
// Every diagnostic must match a want on its line, and every want must
// be matched by at least one diagnostic.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// Run loads each pkgPath from dir/src and applies a to it.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, path := range pkgPaths {
		runOne(t, dir, a, path)
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	pkgDir := filepath.Join(dir, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(pkgDir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		t.Fatalf("%s: no Go files in %s", pkgPath, pkgDir)
	}
	fset := token.NewFileSet()
	files, err := driver.ParseFiles(fset, filenames)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	pkg, err := driver.TypeCheck(fset, pkgPath, files, stdlibLookup(t, files), "")
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	findings, err := driver.RunAnalyzers(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	checkWants(t, fset, files, findings)
}

// want is one expectation.
type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

type lineKey struct {
	file string
	line int
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, findings []driver.Finding) {
	t.Helper()
	wants := map[lineKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				ws, err := parseWants(text[len("want "):])
				if err != nil {
					t.Errorf("%s: bad want comment: %v", pos, err)
					continue
				}
				key := lineKey{pos.Filename, pos.Line}
				wants[key] = append(wants[key], ws...)
			}
		}
	}
	for _, f := range findings {
		key := lineKey{f.Pos.Filename, f.Pos.Line}
		var hit *want
		for _, w := range wants[key] {
			if w.re.MatchString(f.Diag.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", f.Pos, f.Analyzer, f.Diag.Message)
			continue
		}
		hit.matched = true
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", key.file, key.line, w.raw)
			}
		}
	}
}

// parseWants parses a sequence of quoted regexps.
func parseWants(s string) ([]*want, error) {
	var out []*want
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		// Find the end of the quoted string, honoring escapes.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated quote in %q", s)
		}
		raw, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, &want{re: re, raw: raw})
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want")
	}
	return out, nil
}

// stdlibLookup resolves testdata imports (standard library only) to
// export data via one cached `go list` sweep per process.
var (
	exportMu    sync.Mutex
	exportCache = map[string]string{}
)

func stdlibLookup(t *testing.T, files []*ast.File) driver.ExportLookup {
	t.Helper()
	var need []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path != "" && path != "unsafe" {
				need = append(need, path)
			}
		}
	}
	exportMu.Lock()
	defer exportMu.Unlock()
	var miss []string
	for _, p := range need {
		if _, ok := exportCache[p]; !ok {
			miss = append(miss, p)
		}
	}
	if len(miss) > 0 {
		pkgs, err := driver.GoList(".", miss...)
		if err != nil {
			t.Fatalf("resolving testdata imports: %v", err)
		}
		for path, export := range driver.ExportMap(pkgs) {
			exportCache[path] = export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		exportMu.Lock()
		file, ok := exportCache[path]
		exportMu.Unlock()
		if !ok {
			return nil, fmt.Errorf("testdata import %q not resolved", path)
		}
		return os.Open(file)
	}
}
