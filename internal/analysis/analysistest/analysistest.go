// Package analysistest runs an analyzer over golden packages under a
// testdata directory and checks its diagnostics against `// want`
// comments, after the pattern of golang.org/x/tools'
// go/analysis/analysistest.
//
// Layout: testdata/src/<import/path>/*.go, loaded as package
// <import/path> (so scope-sensitive analyzers see realistic paths).
// Imports between testdata packages are resolved from source,
// recursively, within one shared fact store — so fact-driven analyzers
// (kindcheck, ackcontract, ...) see their dependencies' facts exactly
// as the real drivers deliver them. Standard-library imports resolve
// through the build cache. Expectations are comments of the form
//
//	expr // want "regexp"
//	expr // want "first" "second"
//
// Every diagnostic must match a want on its line, and every want must
// be matched by at least one diagnostic. Dependency packages loaded
// only as imports are analyzed too (their facts are needed) but their
// wants are checked only when the package is named in the Run call.
//
// RunFixes additionally applies the analyzer's suggested fixes in
// memory and compares the result against <file>.golden siblings,
// re-analyzes the fixed sources to prove the fixes compile, and checks
// that a second application changes nothing (idempotency).
package analysistest

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// Run loads each pkgPath from dir/src (with its testdata imports) and
// applies a to it, checking diagnostics against // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := newLoader(t, dir, a, nil)
	for _, path := range pkgPaths {
		lp := ld.load(path)
		checkWants(t, ld.fset, lp.files, lp.findings)
	}
}

// RunFixes loads pkgPath, applies the analyzer's suggested fixes in
// memory, and for every changed file requires a sibling
// <file>.golden with the expected output. It then re-parses and
// re-typechecks the fixed sources (fixes must never produce
// non-compiling code), re-runs the analyzer over them, and requires
// that applying fixes again yields zero edits (idempotency).
func RunFixes(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	ld := newLoader(t, dir, a, nil)
	lp := ld.load(pkgPath)
	fixed, n, err := driver.FixedSources(lp.findings)
	if err != nil {
		t.Fatalf("%s: applying fixes: %v", pkgPath, err)
	}
	if n == 0 {
		t.Fatalf("%s: analyzer produced no applicable fixes; nothing to test", pkgPath)
	}
	for name, got := range fixed {
		golden := name + ".golden"
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Errorf("%s: missing golden file for fixed output: %v\nfixed contents:\n%s", pkgPath, err, got)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: fixed output differs from %s:\n-- got --\n%s\n-- want --\n%s",
				name, golden, got, want)
		}
	}
	// Second pass over the fixed sources: must compile, and a second
	// fix application must be a no-op.
	ld2 := newLoader(t, dir, a, fixed)
	lp2 := ld2.load(pkgPath)
	_, n2, err := driver.FixedSourcesFrom(lp2.findings, fixed)
	if err != nil {
		t.Fatalf("%s: re-applying fixes: %v", pkgPath, err)
	}
	if n2 != 0 {
		t.Errorf("%s: fixes are not idempotent: second application produced %d edit(s)", pkgPath, n2)
	}
}

// loadedPkg is one testdata package after parse/typecheck/analysis.
type loadedPkg struct {
	files    []*ast.File
	pkg      *driver.Package
	findings []driver.Finding
}

// loader resolves testdata packages from source (recursively, through
// one shared FileSet and fact store) and stdlib packages from export
// data. overlay maps filename → contents taking precedence over disk,
// so RunFixes can re-analyze fixed sources in place.
type loader struct {
	t        *testing.T
	dir      string
	analyzer *analysis.Analyzer
	fset     *token.FileSet
	store    *driver.FactStore
	gcImp    types.Importer
	overlay  map[string][]byte
	pkgs     map[string]*loadedPkg
	loading  map[string]bool
}

func newLoader(t *testing.T, dir string, a *analysis.Analyzer, overlay map[string][]byte) *loader {
	ld := &loader{
		t:        t,
		dir:      dir,
		analyzer: a,
		fset:     token.NewFileSet(),
		store:    driver.NewFactStore([]*analysis.Analyzer{a}),
		overlay:  overlay,
		pkgs:     map[string]*loadedPkg{},
		loading:  map[string]bool{},
	}
	ld.gcImp = importer.ForCompiler(ld.fset, "gc", importer.Lookup(func(path string) (io.ReadCloser, error) {
		return stdlibExport(t, path)
	}))
	return ld
}

// srcDir returns the on-disk directory for a testdata import path, or
// "" if the path is not provided by this testdata tree.
func (ld *loader) srcDir(pkgPath string) string {
	dir := filepath.Join(ld.dir, "src", filepath.FromSlash(pkgPath))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir
	}
	return ""
}

// Import implements types.Importer over the testdata tree + stdlib.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if ld.srcDir(path) != "" {
		return ld.load(path).pkg.Pkg, nil
	}
	return ld.gcImp.Import(path)
}

// load parses, type-checks, and analyzes one testdata package,
// memoized. Dependencies load (and are analyzed) first via Import, so
// their facts are in the store before the importer's pass runs.
func (ld *loader) load(pkgPath string) *loadedPkg {
	ld.t.Helper()
	if lp, ok := ld.pkgs[pkgPath]; ok {
		return lp
	}
	if ld.loading[pkgPath] {
		ld.t.Fatalf("import cycle in testdata involving %s", pkgPath)
	}
	ld.loading[pkgPath] = true
	defer delete(ld.loading, pkgPath)

	pkgDir := ld.srcDir(pkgPath)
	if pkgDir == "" {
		ld.t.Fatalf("%s: no such testdata package under %s", pkgPath, filepath.Join(ld.dir, "src"))
	}
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		ld.t.Fatalf("%s: %v", pkgPath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(pkgDir, e.Name())
		var src any
		if ov, ok := ld.overlay[name]; ok {
			src = ov
		}
		f, err := parser.ParseFile(ld.fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			ld.t.Fatalf("%s: %v", pkgPath, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		ld.t.Fatalf("%s: no Go files in %s", pkgPath, pkgDir)
	}
	pkg, err := driver.TypeCheckImporter(ld.fset, pkgPath, files, ld, "")
	if err != nil {
		ld.t.Fatalf("%s: %v", pkgPath, err)
	}
	// Restrict fact visibility to the package's transitive imports,
	// exactly as the real drivers do — a testdata package must not see
	// facts of packages it does not (transitively) import, even when
	// one Run call has already loaded them into the shared store.
	findings, err := driver.RunAnalyzers(pkg, []*analysis.Analyzer{ld.analyzer},
		ld.store.View(pkg.Pkg, depClosure(pkg.Pkg)))
	if err != nil {
		ld.t.Fatalf("%s: %v", pkgPath, err)
	}
	lp := &loadedPkg{files: files, pkg: pkg, findings: findings}
	ld.pkgs[pkgPath] = lp
	return lp
}

// depClosure returns the import paths transitively reachable from pkg.
func depClosure(pkg *types.Package) map[string]bool {
	seen := map[string]bool{}
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if !seen[imp.Path()] {
				seen[imp.Path()] = true
				walk(imp)
			}
		}
	}
	walk(pkg)
	return seen
}

// want is one expectation.
type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

type lineKey struct {
	file string
	line int
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, findings []driver.Finding) {
	t.Helper()
	wants := map[lineKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				ws, err := parseWants(text[len("want "):])
				if err != nil {
					t.Errorf("%s: bad want comment: %v", pos, err)
					continue
				}
				key := lineKey{pos.Filename, pos.Line}
				wants[key] = append(wants[key], ws...)
			}
		}
	}
	for _, f := range findings {
		key := lineKey{f.Pos.Filename, f.Pos.Line}
		var hit *want
		for _, w := range wants[key] {
			if w.re.MatchString(f.Diag.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", f.Pos, f.Analyzer, f.Diag.Message)
			continue
		}
		hit.matched = true
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", key.file, key.line, w.raw)
			}
		}
	}
}

// parseWants parses a sequence of quoted regexps.
func parseWants(s string) ([]*want, error) {
	var out []*want
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		// Find the end of the quoted string, honoring escapes.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated quote in %q", s)
		}
		raw, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, &want{re: re, raw: raw})
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want")
	}
	return out, nil
}

// stdlibExport resolves a standard-library import to its export data
// via one cached `go list` sweep per process.
var (
	exportMu    sync.Mutex
	exportCache = map[string]string{}
)

func stdlibExport(t *testing.T, path string) (io.ReadCloser, error) {
	t.Helper()
	exportMu.Lock()
	file, ok := exportCache[path]
	exportMu.Unlock()
	if !ok {
		pkgs, err := driver.GoList(".", path)
		if err != nil {
			return nil, fmt.Errorf("resolving testdata import %q: %v", path, err)
		}
		exportMu.Lock()
		for p, export := range driver.ExportMap(pkgs) {
			exportCache[p] = export
		}
		file, ok = exportCache[path]
		exportMu.Unlock()
		if !ok {
			return nil, fmt.Errorf("testdata import %q not resolved", path)
		}
	}
	return os.Open(file)
}
