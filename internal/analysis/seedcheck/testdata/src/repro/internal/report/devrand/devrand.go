// Package devrand is outside seedcheck's scope: global randomness is
// fine in reporting/tooling code.
package devrand

import (
	"math/rand"
	"time"
)

// Sample may use whatever randomness it likes.
func Sample() int {
	rand.Seed(time.Now().UnixNano())
	return rand.Intn(10)
}
