// Package seedy is a golden-test package on an in-scope import path
// (matches internal/hashing in seedcheck's default scope).
package seedy

import (
	"math/rand"
	"time"
)

// Bad hits every forbidden form.
func Bad() int {
	rand.Seed(42)                      // want "rand.Seed reseeds the process-global generator"
	n := rand.Intn(10)                 // want "rand.Intn draws from the global math/rand source"
	_ = rand.Float64()                 // want "rand.Float64 draws from the global math/rand source"
	rand.Shuffle(n, func(i, j int) {}) // want "rand.Shuffle draws from the global math/rand source"
	return n
}

// BadClockSeed uses the canonical clock-seeding idiom.
func BadClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "clock-derived randomness"
}

// Good derives everything from an explicit seed.
func Good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10) // method on an explicit *rand.Rand: fine
}

// Jitter is a reviewed exception.
func Jitter() int64 {
	// unionlint:allow seedcheck retry jitter is deliberately per-process
	return time.Now().UnixNano()
}

// NotTheClock proves only time.Now().UnixNano() is matched, not any
// UnixNano on any time value.
func NotTheClock(t time.Time) int64 {
	return t.UnixNano()
}
