package seedcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/seedcheck"
)

func TestSeedcheck(t *testing.T) {
	analysistest.Run(t, "testdata", seedcheck.Analyzer,
		"repro/internal/hashing/seedy",  // in scope: flags + allow cases
		"repro/internal/report/devrand", // out of scope: silent
	)
}
