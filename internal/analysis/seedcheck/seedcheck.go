// Package seedcheck forbids unseeded and clock-seeded randomness in
// the packages whose determinism the Gibbons–Tirthapura scheme depends
// on.
//
// Coordinated sampling works only because every site evaluates the
// *same* seeded hash family: two sketches merge into a sample of the
// union precisely when their level hashes agree on every label. A
// stray rand.Seed, a global math/rand draw (process-seeded, shared,
// order-dependent), or a time.Now().UnixNano() seed silently breaks
// that coordination — the merged estimate stays plausible-looking and
// just stops being correct. This analyzer makes such code a CI
// failure inside the sketch/hashing/estimator packages:
//
//   - calls to (math/rand).Seed or (math/rand/v2) top-level generator
//     functions (Intn, Float64, Shuffle, ... — anything drawing from
//     the implicit global source),
//   - any time.Now().UnixNano() expression (the canonical
//     clock-seeding idiom).
//
// Constructing an explicitly seeded generator (rand.New,
// rand.NewSource, rand.NewPCG, ...) is allowed: randomness must flow
// from a seed the caller controls. Deliberate exceptions (e.g. retry
// jitter in internal/client, which never touches sketch state) carry
// an `unionlint:allow seedcheck <reason>` annotation.
package seedcheck

import (
	"go/ast"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

// DefaultScope matches the packages in which nondeterminism is a
// correctness bug: the sampler core, hash families, baseline sketches,
// the trial harness, the window extension, and the site client.
const DefaultScope = `(^|/)internal/(core|hashing|sketch|estimate|window|client)(/|$)`

var scopeFlag = &analysis.Flag{
	Name:  "scope",
	Usage: "regexp of package import paths the analyzer applies to",
	Value: DefaultScope,
}

// Analyzer is the seedcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:  "seedcheck",
	Doc:   "forbid unseeded or clock-seeded randomness in coordinated-sampling packages",
	Flags: []*analysis.Flag{scopeFlag},
	Run:   run,
}

// globalRandFuncs are the math/rand (v1 and v2) top-level functions
// that draw from the package-global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "N": true,
}

func run(pass *analysis.Pass) error {
	scope, err := regexp.Compile(scopeFlag.Value)
	if err != nil {
		return err
	}
	if !scope.MatchString(pass.PkgPath()) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if p := pkgPathOf(pass, sel.X); p == "math/rand" || p == "math/rand/v2" {
			name := sel.Sel.Name
			switch {
			case name == "Seed":
				pass.Reportf(sel.Pos(),
					"rand.Seed reseeds the process-global generator; coordinated sites must derive all randomness from an explicit shared seed (use rand.New(rand.NewSource(seed)) or hashing.SplitMix64)")
			case globalRandFuncs[name]:
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the global math/rand source, which is process-seeded and order-dependent; use an explicitly seeded *rand.Rand (or hashing.SplitMix64/Xoshiro256) so sites stay coordinated", name)
			}
		}
		if sel.Sel.Name == "UnixNano" {
			if call, ok := sel.X.(*ast.CallExpr); ok {
				if inner, ok := call.Fun.(*ast.SelectorExpr); ok &&
					inner.Sel.Name == "Now" && pkgPathOf(pass, inner.X) == "time" {
					pass.Reportf(sel.Pos(),
						"time.Now().UnixNano() is clock-derived randomness; a sketch or hash seeded from it cannot be coordinated across sites — thread an explicit seed instead")
				}
			}
		}
		return true
	})
	return nil
}

// pkgPathOf returns the import path if e is an identifier naming an
// imported package, else "".
func pkgPathOf(pass *analysis.Pass, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
