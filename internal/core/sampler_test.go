package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/hashing"
)

// refState computes the reference state the sampler must reach after
// observing the given labels: the smallest level L (≥ 0) such that
// |{distinct x : ℓ(x) ≥ L}| ≤ capacity, and that surviving set.
func refState(cfg Config, labels []uint64) (level int, sample map[uint64]bool) {
	h := cfg.Family.New(cfg.Seed)
	distinct := map[uint64]int{}
	for _, x := range labels {
		distinct[x] = hashing.GeometricLevel(h.Hash(x))
	}
	for level = 0; level <= hashing.MaxLevel; level++ {
		n := 0
		for _, lvl := range distinct {
			if lvl >= level {
				n++
			}
		}
		if n <= cfg.Capacity || level == hashing.MaxLevel {
			break
		}
	}
	sample = map[uint64]bool{}
	for x, lvl := range distinct {
		if lvl >= level {
			sample[x] = true
		}
	}
	return level, sample
}

func sampleSet(s *Sampler) map[uint64]bool {
	m := map[uint64]bool{}
	for _, x := range s.Sample() {
		m[x] = true
	}
	return m
}

func equalSets(a, b map[uint64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for x := range a {
		if !b[x] {
			return false
		}
	}
	return true
}

// TestSamplerInvariant checks the central invariant against the brute
// force reference on random streams, for both raise policies.
//
// Note the subtlety: the sequential sampler's level can only be raised
// by overflow, so its level is the smallest that EVER fit during the
// prefix — which, because the surviving set only grows with the
// stream, equals the reference's smallest fitting level for the whole
// distinct set.
func TestSamplerInvariant(t *testing.T) {
	r := hashing.NewXoshiro256(1)
	for _, raise := range []RaisePolicy{RaiseIncrement, RaiseJump} {
		for trial := 0; trial < 30; trial++ {
			cfg := Config{
				Capacity: 1 + r.Intn(64),
				Seed:     r.Uint64(),
				Raise:    raise,
			}
			n := 1 + r.Intn(3000)
			universe := uint64(1 + r.Intn(700))
			labels := make([]uint64, n)
			for i := range labels {
				labels[i] = r.Uint64n(universe)
			}
			s := NewSampler(cfg)
			for _, x := range labels {
				s.Process(x)
			}
			wantLevel, wantSample := refState(cfg, labels)
			if s.Level() != wantLevel {
				t.Fatalf("raise=%s trial=%d: level=%d want %d", raise, trial, s.Level(), wantLevel)
			}
			if !equalSets(sampleSet(s), wantSample) {
				t.Fatalf("raise=%s trial=%d: sample set mismatch (%d vs %d entries)",
					raise, trial, s.Len(), len(wantSample))
			}
		}
	}
}

func TestSamplerDuplicateInsensitive(t *testing.T) {
	cfg := Config{Capacity: 32, Seed: 7}
	a := NewSampler(cfg)
	b := NewSampler(cfg)
	for x := uint64(0); x < 500; x++ {
		a.Process(x)
	}
	for rep := 0; rep < 5; rep++ {
		for x := uint64(0); x < 500; x++ {
			b.Process(x)
		}
	}
	ba, _ := a.MarshalBinary()
	bb, _ := b.MarshalBinary()
	if string(ba) != string(bb) {
		t.Error("duplicated stream produced a different sketch")
	}
}

func TestSamplerOrderInsensitive(t *testing.T) {
	cfg := Config{Capacity: 32, Seed: 9}
	labels := make([]uint64, 2000)
	r := hashing.NewXoshiro256(3)
	for i := range labels {
		labels[i] = r.Uint64n(400)
	}
	a := NewSampler(cfg)
	for _, x := range labels {
		a.Process(x)
	}
	// Shuffle.
	for i := len(labels) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		labels[i], labels[j] = labels[j], labels[i]
	}
	b := NewSampler(cfg)
	for _, x := range labels {
		b.Process(x)
	}
	ba, _ := a.MarshalBinary()
	bb, _ := b.MarshalBinary()
	if string(ba) != string(bb) {
		t.Error("shuffled stream produced a different sketch")
	}
}

func TestRaisePoliciesAgree(t *testing.T) {
	r := hashing.NewXoshiro256(5)
	for trial := 0; trial < 20; trial++ {
		seed := r.Uint64()
		capacity := 1 + r.Intn(50)
		inc := NewSampler(Config{Capacity: capacity, Seed: seed, Raise: RaiseIncrement})
		jmp := NewSampler(Config{Capacity: capacity, Seed: seed, Raise: RaiseJump})
		for i := 0; i < 2000; i++ {
			x := r.Uint64n(1000)
			inc.Process(x)
			jmp.Process(x)
		}
		if inc.Level() != jmp.Level() {
			t.Fatalf("trial %d: levels diverge: %d vs %d", trial, inc.Level(), jmp.Level())
		}
		if !equalSets(sampleSet(inc), sampleSet(jmp)) {
			t.Fatalf("trial %d: samples diverge", trial)
		}
	}
}

func TestSamplerEstimateAccuracy(t *testing.T) {
	// With capacity 4096 (ε ≈ 0.054 per our constant) a single fixed
	// seed should land well within 10% of the truth. Deterministic.
	const truth = 50000
	s := NewSampler(Config{Capacity: 4096, Seed: 42})
	for x := uint64(0); x < truth; x++ {
		s.Process(x)
		s.Process(x) // duplicates must not matter
	}
	got := s.EstimateDistinct()
	if rel := math.Abs(got-truth) / truth; rel > 0.10 {
		t.Errorf("estimate %.0f vs truth %d: rel err %.3f > 0.10", got, truth, rel)
	}
}

func TestSamplerEstimateAcrossSeeds(t *testing.T) {
	// The median over many independent seeds must be very close to
	// the truth even with a modest capacity.
	const truth = 20000
	var ests []float64
	for seed := uint64(0); seed < 31; seed++ {
		s := NewSampler(Config{Capacity: 256, Seed: hashing.Mix64(seed)})
		for x := uint64(0); x < truth; x++ {
			s.Process(x)
		}
		ests = append(ests, s.EstimateDistinct())
	}
	med := Median(ests)
	if rel := math.Abs(med-truth) / truth; rel > 0.15 {
		t.Errorf("median estimate %.0f vs truth %d: rel err %.3f", med, truth, rel)
	}
}

func TestSamplerSmallStreamExact(t *testing.T) {
	// While the sample has not overflowed, the estimate is exact.
	s := NewSampler(Config{Capacity: 128, Seed: 3})
	for x := uint64(0); x < 100; x++ {
		s.Process(x)
	}
	if s.Level() != 0 {
		t.Fatalf("level = %d, want 0 before overflow", s.Level())
	}
	if got := s.EstimateDistinct(); got != 100 {
		t.Errorf("estimate = %v, want exactly 100", got)
	}
}

func TestSamplerEmpty(t *testing.T) {
	s := NewSampler(Config{Capacity: 8, Seed: 1})
	if got := s.EstimateDistinct(); got != 0 {
		t.Errorf("empty estimate = %v, want 0", got)
	}
	if got := s.EstimateSum(); got != 0 {
		t.Errorf("empty sum = %v, want 0", got)
	}
	if s.Len() != 0 || s.Level() != 0 {
		t.Errorf("empty sampler has Len=%d Level=%d", s.Len(), s.Level())
	}
}

func TestSamplerCapacityOne(t *testing.T) {
	s := NewSampler(Config{Capacity: 1, Seed: 11})
	for x := uint64(0); x < 10000; x++ {
		s.Process(x)
	}
	if s.Len() > 1 {
		t.Errorf("capacity-1 sampler holds %d entries", s.Len())
	}
	// The estimate is extremely noisy at capacity 1, but must still
	// be a finite non-negative number.
	if est := s.EstimateDistinct(); est < 0 || math.IsInf(est, 0) || math.IsNaN(est) {
		t.Errorf("degenerate estimate: %v", est)
	}
}

func TestNewSamplerPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero capacity": {Capacity: 0},
		"bad family":    {Capacity: 4, Family: FamilyKind(200)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewSampler did not panic", name)
				}
			}()
			NewSampler(cfg)
		}()
	}
}

func TestMergeEqualsUnionProcessing(t *testing.T) {
	// Because the sampler state is a pure function of the distinct
	// label set, merging two sketches must equal sketching the
	// concatenated stream exactly.
	r := hashing.NewXoshiro256(8)
	for trial := 0; trial < 25; trial++ {
		cfg := Config{Capacity: 1 + r.Intn(40), Seed: r.Uint64()}
		n1, n2 := r.Intn(1500), r.Intn(1500)
		s1, s2, both := NewSampler(cfg), NewSampler(cfg), NewSampler(cfg)
		for i := 0; i < n1; i++ {
			x := r.Uint64n(500)
			s1.Process(x)
			both.Process(x)
		}
		for i := 0; i < n2; i++ {
			x := r.Uint64n(500)
			s2.Process(x)
			both.Process(x)
		}
		if err := s1.Merge(s2); err != nil {
			t.Fatal(err)
		}
		a, _ := s1.MarshalBinary()
		b, _ := both.MarshalBinary()
		if string(a) != string(b) {
			t.Fatalf("trial %d: merge != union processing (levels %d vs %d, sizes %d vs %d)",
				trial, s1.Level(), both.Level(), s1.Len(), both.Len())
		}
	}
}

// buildTriple builds three samplers over random streams with one config.
func buildTriple(seed uint64) (cfg Config, a, b, c *Sampler) {
	r := hashing.NewXoshiro256(seed)
	cfg = Config{Capacity: 1 + r.Intn(30), Seed: r.Uint64()}
	a, b, c = NewSampler(cfg), NewSampler(cfg), NewSampler(cfg)
	for i, s := 0, []*Sampler{a, b, c}; i < len(s); i++ {
		n := r.Intn(800)
		for j := 0; j < n; j++ {
			s[i].Process(r.Uint64n(300))
		}
	}
	return cfg, a, b, c
}

func TestMergeCommutative(t *testing.T) {
	f := func(seed uint64) bool {
		_, a, b, _ := buildTriple(seed)
		ab, ba := a.Clone(), b.Clone()
		if err := ab.Merge(b); err != nil {
			return false
		}
		if err := ba.Merge(a); err != nil {
			return false
		}
		x, _ := ab.MarshalBinary()
		y, _ := ba.MarshalBinary()
		return string(x) == string(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMergeAssociative(t *testing.T) {
	f := func(seed uint64) bool {
		_, a, b, c := buildTriple(seed)
		left := a.Clone()
		if err := left.Merge(b); err != nil {
			return false
		}
		if err := left.Merge(c); err != nil {
			return false
		}
		bc := b.Clone()
		if err := bc.Merge(c); err != nil {
			return false
		}
		right := a.Clone()
		if err := right.Merge(bc); err != nil {
			return false
		}
		x, _ := left.MarshalBinary()
		y, _ := right.MarshalBinary()
		return string(x) == string(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMergeIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		_, a, _, _ := buildTriple(seed)
		before, _ := a.MarshalBinary()
		dup := a.Clone()
		if err := a.Merge(dup); err != nil {
			return false
		}
		after, _ := a.MarshalBinary()
		return string(before) == string(after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMergeMismatch(t *testing.T) {
	base := Config{Capacity: 16, Seed: 5}
	a := NewSampler(base)
	cases := map[string]Config{
		"seed":     {Capacity: 16, Seed: 6},
		"capacity": {Capacity: 17, Seed: 5},
		"family":   {Capacity: 16, Seed: 5, Family: FamilyTabulation},
	}
	for name, cfg := range cases {
		if err := a.Merge(NewSampler(cfg)); err == nil {
			t.Errorf("%s mismatch: Merge succeeded, want error", name)
		}
	}
	if err := a.Merge(nil); err == nil {
		t.Error("Merge(nil) succeeded, want error")
	}
	// Raise policy differences are explicitly allowed.
	if err := a.Merge(NewSampler(Config{Capacity: 16, Seed: 5, Raise: RaiseJump})); err != nil {
		t.Errorf("raise-policy-only difference rejected: %v", err)
	}
}

func TestMergeFailureLeavesStateUsable(t *testing.T) {
	a := NewSampler(Config{Capacity: 16, Seed: 5})
	for x := uint64(0); x < 100; x++ {
		a.Process(x)
	}
	before, _ := a.MarshalBinary()
	if err := a.Merge(NewSampler(Config{Capacity: 16, Seed: 99})); err == nil {
		t.Fatal("expected mismatch error")
	}
	after, _ := a.MarshalBinary()
	if string(before) != string(after) {
		t.Error("failed merge modified the sampler")
	}
}

func TestEstimateCountWhere(t *testing.T) {
	s := NewSampler(Config{Capacity: 2048, Seed: 21})
	const truth = 30000
	for x := uint64(0); x < truth; x++ {
		s.Process(x)
	}
	even := s.EstimateCountWhere(func(x uint64) bool { return x%2 == 0 })
	if rel := math.Abs(even-truth/2) / (truth / 2); rel > 0.15 {
		t.Errorf("even-label estimate %.0f vs %d: rel err %.3f", even, truth/2, rel)
	}
	none := s.EstimateCountWhere(func(x uint64) bool { return false })
	if none != 0 {
		t.Errorf("false predicate estimate = %v, want 0", none)
	}
	all := s.EstimateCountWhere(func(x uint64) bool { return true })
	if all != s.EstimateDistinct() {
		t.Errorf("true predicate %v != EstimateDistinct %v", all, s.EstimateDistinct())
	}
}

func TestWeightedSum(t *testing.T) {
	s := NewSampler(Config{Capacity: 4096, Seed: 33})
	const n = 20000
	var truth float64
	for x := uint64(0); x < n; x++ {
		v := x%10 + 1
		s.ProcessWeighted(x, v)
		s.ProcessWeighted(x, v) // duplicate occurrence, same value
		truth += float64(v)
	}
	got := s.EstimateSum()
	if rel := math.Abs(got-truth) / truth; rel > 0.10 {
		t.Errorf("sum estimate %.0f vs truth %.0f: rel err %.3f", got, truth, rel)
	}
	where := s.EstimateSumWhere(func(x uint64) bool { return true })
	if where != got {
		t.Errorf("EstimateSumWhere(true) = %v, want %v", where, got)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewSampler(Config{Capacity: 8, Seed: 2})
	for x := uint64(0); x < 100; x++ {
		a.Process(x)
	}
	b := a.Clone()
	for x := uint64(100); x < 5000; x++ {
		b.Process(x)
	}
	// a unchanged by b's processing.
	wantLevel, wantSample := refState(a.Config(), seq(100))
	if a.Level() != wantLevel || !equalSets(sampleSet(a), wantSample) {
		t.Error("Clone shares state with original")
	}
}

func TestReset(t *testing.T) {
	s := NewSampler(Config{Capacity: 8, Seed: 2})
	for x := uint64(0); x < 1000; x++ {
		s.Process(x)
	}
	s.Reset()
	if s.Len() != 0 || s.Level() != 0 || s.EstimateSum() != 0 {
		t.Errorf("Reset left Len=%d Level=%d Sum=%v", s.Len(), s.Level(), s.EstimateSum())
	}
	// Still usable and still coordinated (same seed).
	s.Process(7)
	other := NewSampler(s.Config())
	other.Process(7)
	a, _ := s.MarshalBinary()
	b, _ := other.MarshalBinary()
	if string(a) != string(b) {
		t.Error("Reset changed the sampler's hash function")
	}
}

func TestSampleSorted(t *testing.T) {
	s := NewSampler(Config{Capacity: 64, Seed: 19})
	for x := uint64(0); x < 1000; x++ {
		s.Process(x * 31)
	}
	labels := s.Sample()
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	for i := 1; i < len(labels); i++ {
		if labels[i] == labels[i-1] {
			t.Fatal("Sample returned duplicate labels")
		}
	}
}

func seq(n uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}

func TestCapacityEpsilonHelpers(t *testing.T) {
	for _, eps := range []float64{0.5, 0.1, 0.05, 0.02} {
		c := CapacityForEpsilon(eps)
		if c < 4 {
			t.Errorf("CapacityForEpsilon(%v) = %d too small", eps, c)
		}
		back := EpsilonForCapacity(c)
		if back > eps*1.1 {
			t.Errorf("EpsilonForCapacity(%d) = %v, want <= ~%v", c, back, eps)
		}
	}
	if got := EpsilonForCapacity(1); got != 1 {
		t.Errorf("EpsilonForCapacity(1) = %v, want clamped to 1", got)
	}
	for _, bad := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CapacityForEpsilon(%v) did not panic", bad)
				}
			}()
			CapacityForEpsilon(bad)
		}()
	}
}

func TestCopiesForDelta(t *testing.T) {
	if got := CopiesForDelta(0.4); got%2 == 0 {
		t.Errorf("CopiesForDelta returned even count %d", got)
	}
	small := CopiesForDelta(0.25)
	large := CopiesForDelta(0.001)
	if large <= small {
		t.Errorf("copies not increasing as delta shrinks: %d vs %d", small, large)
	}
	for _, bad := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CopiesForDelta(%v) did not panic", bad)
				}
			}()
			CopiesForDelta(bad)
		}()
	}
}

// TestEstimateUnbiasedAcrossSeeds checks the estimator's first moment:
// averaged over independent hash functions, |sample|·2^level must be
// very close to the true distinct count (the estimator is unbiased up
// to the overflow boundary effect).
func TestEstimateUnbiasedAcrossSeeds(t *testing.T) {
	const truth = 30000
	const seeds = 60
	var sum float64
	for s := uint64(0); s < seeds; s++ {
		smp := NewSampler(Config{Capacity: 256, Seed: hashing.Mix64(0x5eed + s)})
		for x := uint64(0); x < truth; x++ {
			smp.Process(x)
		}
		sum += smp.EstimateDistinct()
	}
	mean := sum / seeds
	if rel := math.Abs(mean-truth) / truth; rel > 0.03 {
		t.Errorf("mean estimate %.0f over %d seeds vs truth %d: bias %.3f", mean, seeds, truth, rel)
	}
}
