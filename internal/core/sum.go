package core

import "fmt"

// SumSampler is the paper-faithful estimator for SumDistinct — the sum
// of values over the distinct labels of the union — for values in
// [0..R]. It reduces the sum to distinct counting exactly as the paper
// does: a label ℓ with value v is expanded into the v sub-items
// (ℓ, 1), …, (ℓ, v), so that the number of distinct sub-items in the
// union equals Σ_{distinct ℓ} v(ℓ), and the (ε, δ) guarantee of the
// distinct sampler transfers verbatim.
//
// Processing a label costs O(v) hash evaluations, so the type enforces
// a bound R = MaxValue at construction; the follow-up line of work on
// range-efficient F0 (Pavan & Tirthapura, ICDE 2005) removes this cost
// and is out of scope here. For large R with well-behaved value
// distributions, the weighted Sampler (ProcessWeighted + EstimateSum)
// is the practical alternative; experiment E8 compares the two.
type SumSampler struct {
	inner    *Sampler
	maxValue uint64
}

// subItemBits is the number of low bits reserved for the sub-item
// index in the expanded key. Labels must fit in the remaining bits.
const subItemBits = 16

// MaxSumValue is the largest per-label value a SumSampler accepts.
const MaxSumValue = (1 << subItemBits) - 1

// MaxSumLabel is the largest label a SumSampler accepts; together with
// MaxSumValue it makes the (label, index) → key pairing injective.
const MaxSumLabel = (1 << (64 - subItemBits)) - 1

// NewSumSampler returns an empty SumSampler. maxValue caps per-label
// values (≤ MaxSumValue); cfg is the underlying sampler configuration.
func NewSumSampler(cfg Config, maxValue uint64) *SumSampler {
	if maxValue == 0 || maxValue > MaxSumValue {
		panic(fmt.Sprintf("core: SumSampler maxValue must be in [1, %d], got %d", MaxSumValue, maxValue))
	}
	return &SumSampler{inner: NewSampler(cfg), maxValue: maxValue}
}

// Process observes one occurrence of label carrying value. All
// occurrences of a label must carry the same value (the
// duplicate-insensitive model); violations are not detected — the
// first-expanded sub-items win, as in the weighted sampler.
// It returns an error if label or value is out of range.
//
// hotpath: called once per stream item.
func (s *SumSampler) Process(label, value uint64) error {
	if value > s.maxValue {
		// allocflow:cold out-of-range input is rejected, not streamed
		return fmt.Errorf("core: value %d exceeds SumSampler bound %d", value, s.maxValue)
	}
	if label > MaxSumLabel {
		// allocflow:cold out-of-range input is rejected, not streamed
		return fmt.Errorf("core: label %d exceeds SumSampler label space", label)
	}
	for j := uint64(1); j <= value; j++ {
		s.inner.Process(label<<subItemBits | j)
	}
	return nil
}

// Merge folds other into s; both must share configuration and value
// bound.
func (s *SumSampler) Merge(other *SumSampler) error {
	if other == nil {
		return fmt.Errorf("%w: nil sum sampler", ErrMismatch)
	}
	if s.maxValue != other.maxValue {
		return fmt.Errorf("%w: value bounds %d vs %d", ErrMismatch, s.maxValue, other.maxValue)
	}
	return s.inner.Merge(other.inner)
}

// EstimateSum returns the SumDistinct estimate.
func (s *SumSampler) EstimateSum() float64 {
	return s.inner.EstimateDistinct()
}

// EstimateSumWhere estimates the sum restricted to distinct labels
// satisfying pred, which is applied to the original label recovered
// from each sampled sub-item.
func (s *SumSampler) EstimateSumWhere(pred func(label uint64) bool) float64 {
	return s.inner.EstimateCountWhere(func(key uint64) bool {
		return pred(key >> subItemBits)
	})
}

// Level exposes the inner sampling level.
func (s *SumSampler) Level() int { return s.inner.Level() }

// Len exposes the number of retained sub-items.
func (s *SumSampler) Len() int { return s.inner.Len() }

// SizeBytes returns the wire size of the underlying sketch.
func (s *SumSampler) SizeBytes() int { return s.inner.SizeBytes() }

// MaxValue returns the per-label value bound.
func (s *SumSampler) MaxValue() uint64 { return s.maxValue }
