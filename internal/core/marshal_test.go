package core

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/hashing"
)

func buildSampler(seed uint64, n int) *Sampler {
	r := hashing.NewXoshiro256(seed)
	s := NewSampler(Config{Capacity: 1 + r.Intn(64), Seed: r.Uint64()})
	for i := 0; i < n; i++ {
		s.ProcessWeighted(r.Uint64n(10000), 1+r.Uint64n(100))
	}
	return s
}

func TestMarshalRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		s := buildSampler(seed, int(seed%5000))
		enc, err := s.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := DecodeSampler(enc)
		if err != nil {
			return false
		}
		enc2, err := got.MarshalBinary()
		if err != nil {
			return false
		}
		return string(enc) == string(enc2) &&
			got.Level() == s.Level() &&
			got.Len() == s.Len() &&
			got.EstimateSum() == s.EstimateSum() &&
			got.Config() == s.Config()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMarshalEmptySampler(t *testing.T) {
	s := NewSampler(Config{Capacity: 8, Seed: 3})
	enc, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSampler(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Level() != 0 {
		t.Errorf("decoded empty sampler has Len=%d Level=%d", got.Len(), got.Level())
	}
}

func TestMarshalAllFamilies(t *testing.T) {
	for _, fam := range []FamilyKind{FamilyPairwise, FamilyFourWise, FamilyTabulation} {
		s := NewSampler(Config{Capacity: 16, Seed: 4, Family: fam})
		for x := uint64(0); x < 500; x++ {
			s.Process(x)
		}
		enc, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		got, err := DecodeSampler(enc)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if got.Config().Family != fam {
			t.Errorf("family %s round-tripped as %s", fam, got.Config().Family)
		}
		if got.EstimateDistinct() != s.EstimateDistinct() {
			t.Errorf("%s: estimate changed across round trip", fam)
		}
	}
}

// TestMergeDecodedSketch exercises the paper's communication pattern:
// party B serializes, the coordinator decodes and merges into A's
// sketch; the result must equal an in-memory merge.
func TestMergeDecodedSketch(t *testing.T) {
	cfg := Config{Capacity: 32, Seed: 77}
	a1, a2 := NewSampler(cfg), NewSampler(cfg)
	b := NewSampler(cfg)
	for x := uint64(0); x < 2000; x++ {
		a1.Process(x)
		a2.Process(x)
	}
	for x := uint64(1500); x < 4000; x++ {
		b.Process(x)
	}
	enc, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSampler(enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.Merge(decoded); err != nil {
		t.Fatal(err)
	}
	if err := a2.Merge(b); err != nil {
		t.Fatal(err)
	}
	x, _ := a1.MarshalBinary()
	y, _ := a2.MarshalBinary()
	if string(x) != string(y) {
		t.Error("merge of decoded sketch differs from in-memory merge")
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	s := buildSampler(1, 1000)
	good, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, data []byte) {
		t.Helper()
		var d Sampler
		err := d.UnmarshalBinary(data)
		if err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
			return
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v is not ErrCorrupt", name, err)
		}
	}

	check("empty", nil)
	check("short", good[:5])
	check("truncated entries", good[:len(good)-1])

	mutate := func(idx int, val byte) []byte {
		c := append([]byte(nil), good...)
		c[idx] = val
		return c
	}
	check("bad magic", mutate(0, 'X'))
	check("bad version", mutate(2, 99))
	check("bad family", mutate(3, 200))
	check("bad raise", mutate(4, 200))
	check("seed flip", mutate(7, good[7]^0xff)) // entries no longer match level

	check("trailing bytes", append(append([]byte(nil), good...), 0, 0))
}

func TestUnmarshalRejectsLevelViolation(t *testing.T) {
	// Hand-build an encoding that claims a high level but contains a
	// label whose recomputed level is below it.
	s := NewSampler(Config{Capacity: 4, Seed: 123})
	for x := uint64(0); x < 200; x++ {
		s.Process(x)
	}
	if s.Level() == 0 {
		t.Fatal("test needs a raised level")
	}
	// Find a label with level 0 under this hash.
	h := s.cfg.Family.New(s.cfg.Seed)
	var bad uint64
	found := false
	for x := uint64(0); x < 1000; x++ {
		if hashing.GeometricLevel(h.Hash(x)) == 0 {
			bad, found = x, true
			break
		}
	}
	if !found {
		t.Skip("no level-0 label found (astronomically unlikely)")
	}
	forged := s.Clone()
	forged.entries[bad] = entry{weight: 1, level: 0}
	enc, err := forged.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Sampler
	if err := d.UnmarshalBinary(enc); !errors.Is(err, ErrCorrupt) {
		t.Errorf("level-violating encoding accepted (err=%v)", err)
	}
}

func TestSizeBytesGrowsWithCapacity(t *testing.T) {
	small := NewSampler(Config{Capacity: 16, Seed: 1})
	large := NewSampler(Config{Capacity: 1024, Seed: 1})
	for x := uint64(0); x < 100000; x++ {
		small.Process(x)
		large.Process(x)
	}
	if small.SizeBytes() >= large.SizeBytes() {
		t.Errorf("sizes: capacity 16 -> %dB, capacity 1024 -> %dB", small.SizeBytes(), large.SizeBytes())
	}
	// The paper's point: the sketch is tiny compared to the 100k
	// distinct labels (even 8-byte labels would be 800 KB).
	if large.SizeBytes() > 32*1024 {
		t.Errorf("sketch unexpectedly large: %dB", large.SizeBytes())
	}
}
