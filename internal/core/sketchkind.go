package core

import (
	"math"

	"repro/internal/sketch"
)

// This file is the Estimator's registration as sketch.KindGT — the
// glue that lets the networked coordinator, the simulator, and the
// public API treat the paper's estimator as just another registered
// kind.

// registerDelta is the failure probability KindInfo.New targets when
// only eps is given; matches the repository's usual δ default.
const registerDelta = 0.05

func init() {
	sketch.Register(sketch.KindInfo{
		Kind:    sketch.KindGT,
		Name:    "gt",
		Version: 1,
		New: func(eps float64, seed uint64) sketch.Sketch {
			return NewEstimator(ConfigForAccuracy(eps, registerDelta, seed))
		},
		Decode: func(payload []byte) (sketch.Sketch, error) {
			var e Estimator
			if err := e.UnmarshalBinary(payload); err != nil {
				return nil, err
			}
			return &e, nil
		},
	})
}

// Estimate implements sketch.Sketch: the distinct-count estimate.
func (e *Estimator) Estimate() float64 { return e.EstimateDistinct() }

// Kind implements sketch.Sketch.
func (e *Estimator) Kind() sketch.Kind { return sketch.KindGT }

// Seed implements sketch.Sketch: the master coordination seed.
func (e *Estimator) Seed() uint64 { return e.cfg.Seed }

// Digest implements sketch.Sketch: every EstimatorConfig field
// participates, so equal digests mean mergeable estimators.
func (e *Estimator) Digest() uint64 {
	return sketch.ConfigDigest(sketch.KindGT,
		uint64(e.cfg.Capacity), uint64(e.cfg.Copies), e.cfg.Seed,
		uint64(e.cfg.Family), uint64(e.cfg.Raise))
}

// Describe implements sketch.Describer for introspection surfaces.
func (e *Estimator) Describe() map[string]any {
	return map[string]any{
		"capacity": e.cfg.Capacity,
		"copies":   e.cfg.Copies,
		"family":   e.cfg.Family.String(),
		"epsilon":  EpsilonForCapacity(e.cfg.Capacity),
		"delta":    DeltaForCopies(e.cfg.Copies),
	}
}

// DeltaForCopies inverts CopiesForDelta: the failure probability a
// median over r copies targets (r = 1 + 2·log2(1/δ) rounded up).
func DeltaForCopies(r int) float64 {
	if r <= 1 {
		return 0.5
	}
	return math.Pow(0.5, float64((r-1)/2))
}
