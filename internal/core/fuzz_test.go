package core

import "testing"

// Native fuzz targets for the wire decoders. The seed corpus runs on
// every `go test`; `go test -fuzz=FuzzSamplerUnmarshal` explores
// further. The invariant under test: arbitrary bytes either fail to
// decode or produce a sketch that is fully usable (process, estimate,
// re-encode, merge with itself).
func FuzzSamplerUnmarshal(f *testing.F) {
	seed := buildSampler(3, 500)
	enc, err := seed.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add([]byte{})
	f.Add([]byte("GT"))
	f.Add(enc[:len(enc)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Sampler
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		s.Process(42)
		_ = s.EstimateDistinct()
		re, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var s2 Sampler
		if err := s2.UnmarshalBinary(re); err != nil {
			t.Fatalf("decoded sketch does not round-trip: %v", err)
		}
		clone := s.Clone()
		if err := s.Merge(clone); err != nil {
			t.Fatalf("self-merge failed: %v", err)
		}
	})
}

func FuzzEstimatorUnmarshal(f *testing.F) {
	e := NewEstimator(EstimatorConfig{Capacity: 16, Copies: 3, Seed: 1})
	for x := uint64(0); x < 300; x++ {
		e.Process(x)
	}
	enc, err := e.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add([]byte{})
	f.Add(enc[:len(enc)-2])
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Estimator
		if err := d.UnmarshalBinary(data); err != nil {
			return
		}
		d.Process(7)
		_ = d.EstimateDistinct()
		if _, err := d.MarshalBinary(); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}
