package core

import (
	"testing"

	"repro/internal/hashing"
)

// TestUnmarshalRandomBytesNeverPanics hammers the decoders with random
// garbage and mutated valid encodings: they must return errors, never
// panic, and never leave a half-valid sampler that later crashes.
func TestUnmarshalRandomBytesNeverPanics(t *testing.T) {
	r := hashing.NewXoshiro256(99)
	valid := buildSampler(5, 2000)
	enc, err := valid.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3000; trial++ {
		var data []byte
		if trial%2 == 0 {
			// Pure garbage of random length.
			data = make([]byte, r.Intn(200))
			for i := range data {
				data[i] = byte(r.Uint64())
			}
		} else {
			// Valid encoding with a few random byte flips.
			data = append([]byte(nil), enc...)
			for k := 0; k < 1+r.Intn(4); k++ {
				data[r.Intn(len(data))] = byte(r.Uint64())
			}
		}
		var s Sampler
		if err := s.UnmarshalBinary(data); err == nil {
			// A mutation may legitimately decode; the result must be
			// usable without panicking.
			s.Process(123)
			_ = s.EstimateDistinct()
			if _, err := s.MarshalBinary(); err != nil {
				t.Fatalf("trial %d: re-encode of decoded sketch failed: %v", trial, err)
			}
		}
	}
}

func TestEstimatorUnmarshalRandomBytesNeverPanics(t *testing.T) {
	r := hashing.NewXoshiro256(7)
	e := NewEstimator(EstimatorConfig{Capacity: 32, Copies: 3, Seed: 1})
	for x := uint64(0); x < 2000; x++ {
		e.Process(x)
	}
	enc, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2000; trial++ {
		data := append([]byte(nil), enc...)
		for k := 0; k < 1+r.Intn(6); k++ {
			data[r.Intn(len(data))] = byte(r.Uint64())
		}
		var d Estimator
		if err := d.UnmarshalBinary(data); err == nil {
			d.Process(5)
			_ = d.EstimateDistinct()
		}
	}
}
