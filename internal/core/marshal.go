package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/hashing"
)

// Wire format (little endian, varint for counts):
//
//	magic   "GT"            2 bytes
//	version 1               1 byte
//	family  FamilyKind      1 byte
//	raise   RaisePolicy     1 byte
//	seed                    8 bytes
//	capacity                uvarint
//	level                   uvarint
//	count                   uvarint
//	entries, sorted by label:
//	    label delta         uvarint (first label absolute)
//	    weight              uvarint
//
// Entry levels are NOT serialized: the decoder recomputes them from
// the shared hash function, which both keeps the message at the
// O(c·log m) bits the paper charges for communication and lets the
// decoder verify that every entry is consistent with the declared
// level (a corrupted or uncoordinated message is rejected).

const (
	wireMagic0  = 'G'
	wireMagic1  = 'T'
	wireVersion = 1
)

// MarshalBinary encodes the sampler. The encoding is deterministic
// (entries are sorted), so equal samplers encode identically.
func (s *Sampler) MarshalBinary() ([]byte, error) {
	return s.AppendBinary(nil)
}

// AppendBinary appends the sampler's encoding to b and returns the
// extended slice.
func (s *Sampler) AppendBinary(b []byte) ([]byte, error) {
	labels := s.Sample()
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })

	b = append(b, wireMagic0, wireMagic1, wireVersion, byte(s.cfg.Family), byte(s.cfg.Raise))
	b = binary.LittleEndian.AppendUint64(b, s.cfg.Seed)
	b = binary.AppendUvarint(b, uint64(s.cfg.Capacity))
	b = binary.AppendUvarint(b, uint64(s.level))
	b = binary.AppendUvarint(b, uint64(len(labels)))
	prev := uint64(0)
	for i, label := range labels {
		if i == 0 {
			b = binary.AppendUvarint(b, label)
		} else {
			b = binary.AppendUvarint(b, label-prev)
		}
		prev = label
		b = binary.AppendUvarint(b, s.entries[label].weight)
	}
	return b, nil
}

// UnmarshalBinary decodes a sampler previously encoded with
// MarshalBinary, replacing s's state entirely. It returns ErrCorrupt
// (wrapped with detail) if the message is malformed or internally
// inconsistent.
func (s *Sampler) UnmarshalBinary(data []byte) error {
	d := decoder{buf: data}
	if len(data) < 13 {
		return fmt.Errorf("%w: message too short (%d bytes)", ErrCorrupt, len(data))
	}
	if data[0] != wireMagic0 || data[1] != wireMagic1 {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:2])
	}
	if data[2] != wireVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrCorrupt, data[2])
	}
	family := FamilyKind(data[3])
	if !family.valid() {
		return fmt.Errorf("%w: unknown hash family %d", ErrCorrupt, data[3])
	}
	raise := RaisePolicy(data[4])
	if raise != RaiseIncrement && raise != RaiseJump {
		return fmt.Errorf("%w: unknown raise policy %d", ErrCorrupt, data[4])
	}
	seed := binary.LittleEndian.Uint64(data[5:13])
	d.buf = data[13:]

	capacity, err := d.uvarint("capacity")
	if err != nil {
		return err
	}
	if capacity == 0 || capacity > 1<<32 {
		return fmt.Errorf("%w: implausible capacity %d", ErrCorrupt, capacity)
	}
	level, err := d.uvarint("level")
	if err != nil {
		return err
	}
	if level > hashing.MaxLevel {
		return fmt.Errorf("%w: level %d out of range", ErrCorrupt, level)
	}
	count, err := d.uvarint("count")
	if err != nil {
		return err
	}
	// A valid sampler can exceed capacity only in the degenerate
	// parked-at-MaxLevel state; allow a small slack, reject nonsense.
	if count > capacity*2+16 {
		return fmt.Errorf("%w: count %d exceeds capacity %d", ErrCorrupt, count, capacity)
	}
	// Every entry takes at least two bytes (label + weight varints),
	// so a count beyond half the remaining payload is forged; checking
	// here keeps the allocation below proportional to the input size.
	if count > uint64(len(d.buf))/2+1 {
		return fmt.Errorf("%w: count %d exceeds payload", ErrCorrupt, count)
	}

	// Build the sampler by hand rather than via NewSampler: the map
	// must be sized by the actual entry count, never by the declared
	// capacity — otherwise a forged header with a huge capacity makes
	// the decoder allocate gigabytes before any validation fails.
	cfg := Config{Capacity: int(capacity), Seed: seed, Family: family, Raise: raise}
	tmp := &Sampler{
		cfg:     cfg,
		hash:    family.New(seed),
		entries: make(map[uint64]entry, count),
	}
	tmp.level = int(level)
	var label uint64
	for i := uint64(0); i < count; i++ {
		delta, err := d.uvarint("label")
		if err != nil {
			return err
		}
		if i == 0 {
			label = delta
		} else {
			if delta == 0 {
				return fmt.Errorf("%w: duplicate label in encoding", ErrCorrupt)
			}
			next := label + delta
			if next < label {
				return fmt.Errorf("%w: label overflow", ErrCorrupt)
			}
			label = next
		}
		weight, err := d.uvarint("weight")
		if err != nil {
			return err
		}
		lvl := hashing.GeometricLevel(tmp.hash.Hash(label))
		if lvl < tmp.level {
			return fmt.Errorf("%w: label %d has level %d below sketch level %d", ErrCorrupt, label, lvl, tmp.level)
		}
		tmp.entries[label] = entry{weight: weight, level: int32(lvl)}
		tmp.weightSum += weight
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf))
	}
	*s = *tmp
	return nil
}

// DecodeSampler decodes a sampler from data into a fresh value.
func DecodeSampler(data []byte) (*Sampler, error) {
	s := &Sampler{}
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return s, nil
}

// SizeBytes returns the length of the sampler's wire encoding — the
// quantity charged as per-party communication in experiments E4/E6.
func (s *Sampler) SizeBytes() int {
	b, _ := s.AppendBinary(nil)
	return len(b)
}

type decoder struct {
	buf []byte
}

func (d *decoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated %s", ErrCorrupt, what)
	}
	d.buf = d.buf[n:]
	return v, nil
}
