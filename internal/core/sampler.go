package core

import (
	"fmt"

	"repro/internal/hashing"
)

// RaisePolicy selects how a Sampler raises its level on overflow. Both
// policies reach the same state — the smallest level at or above the
// current one whose surviving set fits in Capacity (a property the
// tests verify) — and differ only in how many passes over the sample
// they make, so this is a performance knob, not a semantic one.
type RaisePolicy uint8

const (
	// RaiseIncrement raises the level one step at a time, filtering
	// after each step. This is the policy as described in the paper.
	RaiseIncrement RaisePolicy = iota
	// RaiseJump computes a level histogram of the current sample and
	// jumps directly to the smallest level that fits, filtering once.
	RaiseJump
)

// String implements fmt.Stringer.
func (p RaisePolicy) String() string {
	switch p {
	case RaiseIncrement:
		return "increment"
	case RaiseJump:
		return "jump"
	default:
		return fmt.Sprintf("RaisePolicy(%d)", uint8(p))
	}
}

// Config parameterizes a Sampler. Two samplers can be merged iff their
// Seed, Capacity and Family match exactly; distributed parties must
// therefore agree on a Config before observing their streams — the
// only coordination the scheme requires.
type Config struct {
	// Capacity is the maximum number of distinct labels retained,
	// c = Θ(1/ε²). Use CapacityForEpsilon to derive it from a target
	// relative error. Must be ≥ 1.
	Capacity int
	// Seed determines the shared level hash function.
	Seed uint64
	// Family selects the hash family (default FamilyPairwise).
	Family FamilyKind
	// Raise selects the overflow policy (default RaiseIncrement).
	Raise RaisePolicy
}

// entry is one retained distinct label.
type entry struct {
	weight uint64 // the label's value (1 for plain distinct counting)
	level  int32  // cached ℓ(label), so raises need no re-hashing
}

// Sampler maintains a coordinated adaptive sample of the distinct
// labels in a stream, per Gibbons–Tirthapura. The zero value is not
// usable; construct with NewSampler.
//
// Samplers are not safe for concurrent use; in the distributed-streams
// model each party owns its sampler exclusively.
type Sampler struct {
	cfg     Config
	hash    hashing.Family
	level   int
	entries map[uint64]entry
	// weightSum caches Σ weights of retained entries so estimates are
	// O(1); it is maintained on every insert/discard.
	weightSum uint64
}

// NewSampler returns an empty sampler for the given configuration.
// It panics if cfg.Capacity < 1 or the family is unknown, since a
// mis-parameterized sketch is a programming error, not a runtime
// condition.
func NewSampler(cfg Config) *Sampler {
	if cfg.Capacity < 1 {
		panic(fmt.Sprintf("core: sampler capacity must be >= 1, got %d", cfg.Capacity))
	}
	if !cfg.Family.valid() {
		panic(fmt.Sprintf("core: unknown hash family %d", cfg.Family))
	}
	return &Sampler{
		cfg:     cfg,
		hash:    cfg.Family.New(cfg.Seed),
		entries: make(map[uint64]entry, cfg.Capacity+1),
	}
}

// Config returns the sampler's configuration.
func (s *Sampler) Config() Config { return s.cfg }

// Level returns the sampler's current sampling level; the sample
// contains exactly the distinct labels with ℓ(label) ≥ Level, each of
// which the scheme retains with probability 2^-Level.
func (s *Sampler) Level() int { return s.level }

// Len returns the number of distinct labels currently retained.
func (s *Sampler) Len() int { return len(s.entries) }

// Process observes one occurrence of label. Duplicate occurrences are
// free: the sampler's state is a function of the distinct label set
// only.
//
// hotpath: called once per stream item.
func (s *Sampler) Process(label uint64) {
	s.ProcessWeighted(label, 1)
}

// ProcessWeighted observes label carrying a value. The
// duplicate-insensitive model requires every occurrence of a label to
// carry the same value; ProcessWeighted keeps the first value it
// retains and ignores repeats, matching the paper's "each label has a
// fixed associated value" semantics.
//
// hotpath: called once per stream item.
func (s *Sampler) ProcessWeighted(label, value uint64) {
	lvl := hashing.GeometricLevel(s.hash.Hash(label))
	if lvl < s.level {
		return // below the sample's threshold: discarded unseen
	}
	if _, ok := s.entries[label]; ok {
		return // duplicate of a retained label
	}
	// allocflow:amortized map growth is amortized; Len stays ≤ Capacity between raises
	s.entries[label] = entry{weight: value, level: int32(lvl)}
	s.weightSum += value
	if len(s.entries) > s.cfg.Capacity {
		s.raise()
	}
}

// raise increases the level until the sample fits in Capacity,
// discarding entries below the new level. If the sample still
// overflows at the maximum level (possible only under adversarial hash
// collisions far beyond the experiments' regimes), the sampler keeps
// the overflow rather than drop coordinated entries.
func (s *Sampler) raise() {
	switch s.cfg.Raise {
	case RaiseJump:
		s.raiseJump()
	default:
		s.raiseIncrement()
	}
}

func (s *Sampler) raiseIncrement() {
	for len(s.entries) > s.cfg.Capacity && s.level < hashing.MaxLevel {
		s.level++
		for label, e := range s.entries {
			if int(e.level) < s.level {
				delete(s.entries, label)
				s.weightSum -= e.weight
			}
		}
	}
}

func (s *Sampler) raiseJump() {
	if len(s.entries) <= s.cfg.Capacity {
		return
	}
	// survivors[i] = #entries with level >= i, for i in (level, MaxLevel].
	var hist [hashing.MaxLevel + 2]int
	for _, e := range s.entries {
		hist[e.level]++
	}
	// Find the smallest level above the current one whose surviving
	// set fits. If none fits even at MaxLevel, park there (see raise).
	suffix := 0
	target := hashing.MaxLevel
	for i := hashing.MaxLevel; i > s.level; i-- {
		suffix += hist[i]
		if suffix <= s.cfg.Capacity {
			target = i
		}
	}
	s.level = target
	for label, e := range s.entries {
		if int(e.level) < s.level {
			delete(s.entries, label)
			s.weightSum -= e.weight
		}
	}
}

// Merge folds other into s, after which s is a coordinated sample of
// the union of the two streams. It returns ErrMismatch if the two
// samplers do not share an identical (Seed, Capacity, Family)
// configuration — the coordination precondition of the paper.
// The raise policy may differ (it does not affect semantics).
func (s *Sampler) Merge(other *Sampler) error {
	if other == nil {
		// allocflow:cold a mismatched merge is refused, not streamed
		return fmt.Errorf("%w: nil sampler", ErrMismatch)
	}
	if s.cfg.Seed != other.cfg.Seed || s.cfg.Capacity != other.cfg.Capacity || s.cfg.Family != other.cfg.Family {
		// allocflow:cold a mismatched merge is refused, not streamed
		return fmt.Errorf("%w: %+v vs %+v", ErrMismatch, s.describe(), other.describe())
	}
	if other.level > s.level {
		s.level = other.level
		for label, e := range s.entries {
			if int(e.level) < s.level {
				delete(s.entries, label)
				s.weightSum -= e.weight
			}
		}
	}
	for label, e := range other.entries {
		if int(e.level) < s.level {
			continue
		}
		if _, ok := s.entries[label]; ok {
			continue
		}
		s.entries[label] = e
		s.weightSum += e.weight
	}
	if len(s.entries) > s.cfg.Capacity {
		s.raise()
	}
	return nil
}

func (s *Sampler) describe() string {
	return fmt.Sprintf("{seed:%d cap:%d family:%s}", s.cfg.Seed, s.cfg.Capacity, s.cfg.Family)
}

// EstimateDistinct returns the estimate of the number of distinct
// labels observed: |sample| · 2^level.
func (s *Sampler) EstimateDistinct() float64 {
	return float64(len(s.entries)) * pow2(s.level)
}

// EstimateSum returns the estimate of the sum of values over distinct
// labels: (Σ sampled values) · 2^level. With values all 1 this equals
// EstimateDistinct.
func (s *Sampler) EstimateSum() float64 {
	return float64(s.weightSum) * pow2(s.level)
}

// EstimateCountWhere returns the estimate of the number of distinct
// labels satisfying pred, computed from the coordinated sample:
// |{x ∈ sample : pred(x)}| · 2^level. The relative error guarantee
// degrades with the predicate's selectivity (experiment E9), exactly
// as for any sample-based estimator.
func (s *Sampler) EstimateCountWhere(pred func(label uint64) bool) float64 {
	n := 0
	for label := range s.entries {
		if pred(label) {
			n++
		}
	}
	return float64(n) * pow2(s.level)
}

// EstimateSumWhere is EstimateCountWhere weighted by the labels'
// values.
func (s *Sampler) EstimateSumWhere(pred func(label uint64) bool) float64 {
	var sum uint64
	for label, e := range s.entries {
		if pred(label) {
			sum += e.weight
		}
	}
	return float64(sum) * pow2(s.level)
}

// Sample returns the retained labels (unordered). The slice is a copy.
func (s *Sampler) Sample() []uint64 {
	out := make([]uint64, 0, len(s.entries))
	for label := range s.entries {
		out = append(out, label)
	}
	return out
}

// Clone returns a deep copy of the sampler.
func (s *Sampler) Clone() *Sampler {
	c := NewSampler(s.cfg)
	c.level = s.level
	c.weightSum = s.weightSum
	for label, e := range s.entries {
		c.entries[label] = e
	}
	return c
}

// Reset returns the sampler to its empty state, keeping its
// configuration (and hence its coordination seed).
func (s *Sampler) Reset() {
	s.level = 0
	s.weightSum = 0
	clear(s.entries)
}

// pow2 returns 2^i as a float64 for 0 <= i <= MaxLevel.
func pow2(i int) float64 {
	return float64(uint64(1) << uint(i))
}
