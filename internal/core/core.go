// Package core implements the primary contribution of Gibbons &
// Tirthapura, "Estimating simple functions on the union of data
// streams" (SPAA 2001): coordinated adaptive sampling of the distinct
// labels in one or more data streams, and the (ε, δ)-estimators built
// on that sample — distinct counting (F0), predicate counting, and
// duplicate-insensitive sums, all over the *set union* of streams.
//
// # The algorithm
//
// A Sampler holds at most Capacity distinct labels. Every label is
// assigned a random level ℓ(x) with Pr[ℓ(x) ≥ i] ≈ 2^-i by hashing x
// with a pairwise-independent function and counting leading zero bits.
// The sampler keeps the set of distinct labels seen so far whose level
// is at least the sampler's current level; when that set would exceed
// Capacity, the level rises and low-level labels are discarded. The
// central invariant (checked by the tests) is
//
//	entries == { x ∈ distinct(stream so far) : ℓ(x) ≥ level }
//
// which makes the sampler completely insensitive to duplicates and to
// arrival order, and makes samplers that share a hash seed
// *coordinated*: the same label survives the same levels everywhere.
// Two coordinated samplers therefore merge by set union (plus a
// possible level raise), giving a sample of the union of the streams —
// the property that allows each distributed party to communicate only
// a single small sketch after its stream ends.
//
// The estimate of the number of distinct labels is |entries| · 2^level;
// any function of the sampled labels (predicate counts, value sums)
// scales the same way.
//
// An Estimator bundles r independent Sampler copies and returns the
// median of their estimates, boosting the success probability from
// constant to 1-δ with r = Θ(log 1/δ) — the standard amplification the
// paper uses.
package core

import (
	"fmt"
	"math"

	"repro/internal/hashing"
	"repro/internal/sketch"
)

// Errors returned by Merge and UnmarshalBinary. Both wrap the
// repository-wide sketch sentinels, so errors.Is(err,
// sketch.ErrMismatch) classifies a core failure without importing
// this package.
var (
	// ErrMismatch is returned by Merge when the two sketches were not
	// built with identical configurations (seed, capacity, family):
	// merging uncoordinated sketches would silently produce garbage,
	// which is precisely the failure mode the paper's coordinated
	// seeds exist to prevent.
	ErrMismatch = fmt.Errorf("core: cannot merge sketches with different configurations: %w", sketch.ErrMismatch)

	// ErrCorrupt is returned when decoding a malformed sketch.
	ErrCorrupt = fmt.Errorf("core: corrupt sketch encoding: %w", sketch.ErrCorrupt)
)

// FamilyKind selects the hash family a sampler draws its level
// function from. The paper's analysis needs only pairwise
// independence; the other families exist for the E10 ablation.
type FamilyKind uint8

const (
	// FamilyPairwise is the 2-universal (a·x+b) mod p family — the
	// paper's choice and the package default.
	FamilyPairwise FamilyKind = iota
	// FamilyFourWise is a degree-3 polynomial (4-universal) family.
	FamilyFourWise
	// FamilyTabulation is simple tabulation hashing (3-independent,
	// behaves nearly fully random; 16 KiB of tables per function).
	FamilyTabulation

	numFamilyKinds
)

// String implements fmt.Stringer.
func (k FamilyKind) String() string {
	switch k {
	case FamilyPairwise:
		return "pairwise"
	case FamilyFourWise:
		return "4wise"
	case FamilyTabulation:
		return "tabulation"
	default:
		return fmt.Sprintf("FamilyKind(%d)", uint8(k))
	}
}

// New instantiates a hash function of this kind from a seed. Equal
// (kind, seed) pairs always yield identical functions.
func (k FamilyKind) New(seed uint64) hashing.Family {
	switch k {
	case FamilyPairwise:
		return hashing.NewPairwise(seed)
	case FamilyFourWise:
		return hashing.NewKWise(4, seed)
	case FamilyTabulation:
		return hashing.NewTabulation(seed)
	default:
		panic(fmt.Sprintf("core: unknown hash family %d", k))
	}
}

// valid reports whether k names a known family.
func (k FamilyKind) valid() bool { return k < numFamilyKinds }

// CapacityForEpsilon returns a sample capacity that targets relative
// error ε with constant success probability per copy (to be amplified
// by medians). The paper's analysis gives c = Θ(1/ε²); the constant 12
// makes a single copy a ~5/6-probability ε-estimator in our
// measurements (E2), matching the shape of the paper's bound.
func CapacityForEpsilon(eps float64) int {
	if eps <= 0 || eps > 1 {
		panic(fmt.Sprintf("core: epsilon must be in (0, 1], got %v", eps))
	}
	c := int(12.0/(eps*eps) + 0.5)
	if c < 4 {
		c = 4
	}
	return c
}

// EpsilonForCapacity inverts CapacityForEpsilon: the relative error a
// single copy of the given capacity targets.
func EpsilonForCapacity(c int) float64 {
	if c < 1 {
		panic(fmt.Sprintf("core: capacity must be positive, got %d", c))
	}
	return min(1, math.Sqrt(12.0/float64(c)))
}

// CopiesForDelta returns the number of independent copies whose median
// achieves failure probability δ, the standard Chernoff amplification
// count Θ(log 1/δ). The result is always odd so the median is unique.
func CopiesForDelta(delta float64) int {
	if delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("core: delta must be in (0, 1), got %v", delta))
	}
	r := 1
	for p := 1.0; p > delta; p /= 2 {
		r += 2
	}
	return r
}
