package core

import (
	"math"
	"testing"

	"repro/internal/hashing"
)

func TestSumSamplerExactSmall(t *testing.T) {
	s := NewSumSampler(Config{Capacity: 1024, Seed: 1}, 16)
	var truth uint64
	for x := uint64(0); x < 50; x++ {
		v := x%5 + 1
		if err := s.Process(x, v); err != nil {
			t.Fatal(err)
		}
		truth += v
	}
	if s.Level() != 0 {
		t.Fatalf("level raised unexpectedly: %d", s.Level())
	}
	if got := s.EstimateSum(); got != float64(truth) {
		t.Errorf("pre-overflow sum = %v, want exactly %d", got, truth)
	}
}

func TestSumSamplerAccuracy(t *testing.T) {
	s := NewSumSampler(Config{Capacity: 4096, Seed: 7}, 64)
	r := hashing.NewXoshiro256(3)
	var truth float64
	const n = 20000
	for x := uint64(0); x < n; x++ {
		v := 1 + r.Uint64n(20)
		if err := s.Process(x, v); err != nil {
			t.Fatal(err)
		}
		if err := s.Process(x, v); err != nil { // duplicate occurrence
			t.Fatal(err)
		}
		truth += float64(v)
	}
	got := s.EstimateSum()
	if rel := math.Abs(got-truth) / truth; rel > 0.10 {
		t.Errorf("sum %.0f vs truth %.0f: rel err %.3f", got, truth, rel)
	}
}

func TestSumSamplerZeroValue(t *testing.T) {
	s := NewSumSampler(Config{Capacity: 64, Seed: 2}, 8)
	if err := s.Process(5, 0); err != nil {
		t.Fatal(err)
	}
	if got := s.EstimateSum(); got != 0 {
		t.Errorf("zero-value label contributed %v", got)
	}
}

func TestSumSamplerBounds(t *testing.T) {
	s := NewSumSampler(Config{Capacity: 64, Seed: 2}, 8)
	if err := s.Process(1, 9); err == nil {
		t.Error("value above bound accepted")
	}
	if err := s.Process(MaxSumLabel+1, 1); err == nil {
		t.Error("label above bound accepted")
	}
	for _, bad := range []uint64{0, MaxSumValue + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSumSampler(maxValue=%d) did not panic", bad)
				}
			}()
			NewSumSampler(Config{Capacity: 4, Seed: 1}, bad)
		}()
	}
}

func TestSumSamplerMerge(t *testing.T) {
	cfg := Config{Capacity: 512, Seed: 11}
	a := NewSumSampler(cfg, 16)
	b := NewSumSampler(cfg, 16)
	both := NewSumSampler(cfg, 16)
	value := func(x uint64) uint64 { return x%7 + 1 }
	var truth float64
	for x := uint64(0); x < 4000; x++ {
		truth += float64(value(x))
	}
	// Overlapping halves: duplicates across parties must count once.
	for x := uint64(0); x < 2500; x++ {
		must(t, a.Process(x, value(x)))
		must(t, both.Process(x, value(x)))
	}
	for x := uint64(1500); x < 4000; x++ {
		must(t, b.Process(x, value(x)))
		must(t, both.Process(x, value(x)))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.EstimateSum() != both.EstimateSum() {
		t.Errorf("merged sum %v != union sum %v", a.EstimateSum(), both.EstimateSum())
	}
	if rel := math.Abs(a.EstimateSum()-truth) / truth; rel > 0.15 {
		t.Errorf("merged sum %.0f vs truth %.0f: rel %.3f", a.EstimateSum(), truth, rel)
	}
}

func TestSumSamplerMergeMismatch(t *testing.T) {
	a := NewSumSampler(Config{Capacity: 64, Seed: 1}, 16)
	b := NewSumSampler(Config{Capacity: 64, Seed: 1}, 8)
	if err := a.Merge(b); err == nil {
		t.Error("value-bound mismatch accepted")
	}
	c := NewSumSampler(Config{Capacity: 64, Seed: 2}, 16)
	if err := a.Merge(c); err == nil {
		t.Error("seed mismatch accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
}

func TestSumSamplerWhere(t *testing.T) {
	s := NewSumSampler(Config{Capacity: 4096, Seed: 5}, 4)
	const n = 20000
	var evens float64
	for x := uint64(0); x < n; x++ {
		must(t, s.Process(x, 3))
		if x%2 == 0 {
			evens += 3
		}
	}
	got := s.EstimateSumWhere(func(x uint64) bool { return x%2 == 0 })
	if rel := math.Abs(got-evens) / evens; rel > 0.15 {
		t.Errorf("even sum %.0f vs %.0f: rel %.3f", got, evens, rel)
	}
}

func TestSumSamplerAccessors(t *testing.T) {
	s := NewSumSampler(Config{Capacity: 8, Seed: 1}, 16)
	if s.MaxValue() != 16 {
		t.Errorf("MaxValue = %d", s.MaxValue())
	}
	must(t, s.Process(1, 5))
	if s.Len() == 0 {
		t.Error("Len = 0 after insert")
	}
	if s.SizeBytes() == 0 {
		t.Error("SizeBytes = 0")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
