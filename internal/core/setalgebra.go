package core

import (
	"fmt"

	"repro/internal/sketch"
)

// The Estimator's registration as a set-algebra-capable kind: the
// sketch.SetAlgebra scalars delegate to the pairwise estimators in
// setops.go, and sketch.SetCombiner builds sketch-valued
// intersections/differences copy by copy — the closure property the
// recursive query evaluator needs for interior expression nodes.
// Every entry point funnels mismatches (wrong kind, diverged config)
// through sketch.ErrMismatch via the core sentinels.

// setSibling asserts other is a merge-compatible *Estimator.
func (e *Estimator) setSibling(other sketch.Sketch) (*Estimator, error) {
	o, ok := other.(*Estimator)
	if !ok {
		return nil, fmt.Errorf("%w: set algebra between *core.Estimator and %T", ErrMismatch, other)
	}
	if o == nil {
		return nil, fmt.Errorf("%w: nil estimator", ErrMismatch)
	}
	if e.cfg != o.cfg {
		return nil, fmt.Errorf("%w: estimator configs %+v vs %+v", ErrMismatch, e.cfg, o.cfg)
	}
	return o, nil
}

// SetIntersect implements sketch.SetAlgebra.
func (e *Estimator) SetIntersect(other sketch.Sketch) (float64, error) {
	o, err := e.setSibling(other)
	if err != nil {
		return 0, err
	}
	return e.EstimateIntersection(o)
}

// SetDiff implements sketch.SetAlgebra.
func (e *Estimator) SetDiff(other sketch.Sketch) (float64, error) {
	o, err := e.setSibling(other)
	if err != nil {
		return 0, err
	}
	return e.EstimateDifference(o)
}

// SetJaccard implements sketch.SetAlgebra.
func (e *Estimator) SetJaccard(other sketch.Sketch) (float64, error) {
	o, err := e.setSibling(other)
	if err != nil {
		return 0, err
	}
	return e.EstimateJaccard(o)
}

// combineWith builds a new estimator whose copies are f of the paired
// coordinated copies.
func (e *Estimator) combineWith(other sketch.Sketch, f func(x, y *Sampler) (*Sampler, error)) (sketch.Sketch, error) {
	o, err := e.setSibling(other)
	if err != nil {
		return nil, err
	}
	out := &Estimator{cfg: e.cfg, copies: make([]*Sampler, len(e.copies))}
	for i := range e.copies {
		s, err := f(e.copies[i], o.copies[i])
		if err != nil {
			return nil, err
		}
		out.copies[i] = s
	}
	return out, nil
}

// CombineIntersect implements sketch.SetCombiner: the result is a
// coordinated sample of A ∩ B whose Estimate equals SetIntersect
// exactly (both are the median of the per-copy level-L counts scaled
// by 2^L).
func (e *Estimator) CombineIntersect(other sketch.Sketch) (sketch.Sketch, error) {
	return e.combineWith(other, IntersectSamplers)
}

// CombineDiff implements sketch.SetCombiner; see CombineIntersect.
func (e *Estimator) CombineDiff(other sketch.Sketch) (sketch.Sketch, error) {
	return e.combineWith(other, DiffSamplers)
}

// RelativeStdErr implements sketch.Accuracy: the ε the per-copy
// capacity targets.
func (e *Estimator) RelativeStdErr() float64 {
	return EpsilonForCapacity(e.cfg.Capacity)
}
