package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/hashing"
)

// buildPair sketches two streams with controlled overlap: A = [0, na),
// B = [na-shared, na-shared+nb).
func buildPair(cfg Config, na, nb, shared uint64) (a, b *Sampler) {
	a, b = NewSampler(cfg), NewSampler(cfg)
	for x := uint64(0); x < na; x++ {
		a.Process(x)
	}
	for x := na - shared; x < na-shared+nb; x++ {
		b.Process(x)
	}
	return a, b
}

func TestIntersectionAccuracy(t *testing.T) {
	cfg := Config{Capacity: 4096, Seed: 11}
	a, b := buildPair(cfg, 50000, 50000, 20000)
	got, err := EstimateIntersection(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-20000) / 20000; rel > 0.15 {
		t.Errorf("intersection %.0f vs 20000: rel %.3f", got, rel)
	}
	// Symmetry.
	got2, err := EstimateIntersection(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if got != got2 {
		t.Errorf("intersection not symmetric: %v vs %v", got, got2)
	}
}

func TestIntersectionDisjoint(t *testing.T) {
	cfg := Config{Capacity: 1024, Seed: 3}
	a, b := buildPair(cfg, 20000, 20000, 0)
	got, err := EstimateIntersection(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("disjoint intersection = %v, want 0", got)
	}
}

func TestIntersectionIdentical(t *testing.T) {
	cfg := Config{Capacity: 1024, Seed: 5}
	a := NewSampler(cfg)
	for x := uint64(0); x < 30000; x++ {
		a.Process(x)
	}
	got, err := EstimateIntersection(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if got != a.EstimateDistinct() {
		t.Errorf("self-intersection %v != distinct estimate %v", got, a.EstimateDistinct())
	}
}

func TestDifferenceAccuracy(t *testing.T) {
	cfg := Config{Capacity: 4096, Seed: 7}
	a, b := buildPair(cfg, 50000, 50000, 20000)
	got, err := EstimateDifference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-30000) / 30000; rel > 0.15 {
		t.Errorf("difference %.0f vs 30000: rel %.3f", got, rel)
	}
	// A \ A = 0 exactly.
	self, err := EstimateDifference(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if self != 0 {
		t.Errorf("A \\ A = %v", self)
	}
}

func TestInclusionExclusionConsistency(t *testing.T) {
	// |A∩B| + |A\B| must equal A's estimate at the common level when
	// levels agree (both computed over the same sample).
	cfg := Config{Capacity: 2048, Seed: 9}
	a, b := buildPair(cfg, 40000, 40000, 15000)
	inter, err := EstimateIntersection(a, b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := EstimateDifference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if a.Level() == b.Level() {
		if inter+diff != a.EstimateDistinct() {
			t.Errorf("|A∩B|+|A\\B| = %v, |A| = %v", inter+diff, a.EstimateDistinct())
		}
	}
}

func TestJaccard(t *testing.T) {
	cfg := Config{Capacity: 4096, Seed: 13}
	// |A∪B| = 80000, |A∩B| = 20000 → J = 0.25.
	a, b := buildPair(cfg, 50000, 50000, 20000)
	got, err := EstimateJaccard(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 0.05 {
		t.Errorf("Jaccard = %.3f, want ~0.25", got)
	}
	// Identical sets.
	self, err := EstimateJaccard(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if self != 1 {
		t.Errorf("self Jaccard = %v, want 1", self)
	}
	// Disjoint sets.
	c, d := buildPair(cfg, 10000, 10000, 0)
	j, err := EstimateJaccard(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if j != 0 {
		t.Errorf("disjoint Jaccard = %v, want 0", j)
	}
}

func TestJaccardEmpty(t *testing.T) {
	cfg := Config{Capacity: 16, Seed: 1}
	j, err := EstimateJaccard(NewSampler(cfg), NewSampler(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if j != 0 {
		t.Errorf("empty Jaccard = %v", j)
	}
}

func TestSetOpsMismatch(t *testing.T) {
	a := NewSampler(Config{Capacity: 16, Seed: 1})
	b := NewSampler(Config{Capacity: 16, Seed: 2})
	if _, err := EstimateIntersection(a, b); !errors.Is(err, ErrMismatch) {
		t.Error("intersection accepted uncoordinated samplers")
	}
	if _, err := EstimateDifference(a, b); !errors.Is(err, ErrMismatch) {
		t.Error("difference accepted uncoordinated samplers")
	}
	if _, err := EstimateJaccard(a, b); !errors.Is(err, ErrMismatch) {
		t.Error("jaccard accepted uncoordinated samplers")
	}
	if _, err := EstimateIntersection(a, nil); !errors.Is(err, ErrMismatch) {
		t.Error("nil accepted")
	}
}

func TestEstimatorSetOps(t *testing.T) {
	cfg := EstimatorConfig{Capacity: 1024, Copies: 5, Seed: 21}
	a, b := NewEstimator(cfg), NewEstimator(cfg)
	for x := uint64(0); x < 50000; x++ {
		a.Process(x)
	}
	for x := uint64(30000); x < 80000; x++ {
		b.Process(x)
	}
	inter, err := a.EstimateIntersection(b)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(inter-20000) / 20000; rel > 0.15 {
		t.Errorf("estimator intersection rel %.3f", rel)
	}
	diff, err := a.EstimateDifference(b)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(diff-30000) / 30000; rel > 0.15 {
		t.Errorf("estimator difference rel %.3f", rel)
	}
	j, err := a.EstimateJaccard(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-0.25) > 0.05 {
		t.Errorf("estimator Jaccard = %.3f", j)
	}
	// Mismatch paths.
	other := NewEstimator(EstimatorConfig{Capacity: 1024, Copies: 5, Seed: 22})
	if _, err := a.EstimateIntersection(other); !errors.Is(err, ErrMismatch) {
		t.Error("estimator set op accepted mismatched seeds")
	}
	if _, err := a.EstimateJaccard(nil); !errors.Is(err, ErrMismatch) {
		t.Error("nil estimator accepted")
	}
}

func TestIntersectionSmallSelectivity(t *testing.T) {
	// Tiny intersections behave like low-selectivity predicates: the
	// estimate is noisy but unbiased-ish across seeds. Check the
	// median over an ensemble.
	var ests []float64
	for seed := uint64(0); seed < 21; seed++ {
		cfg := Config{Capacity: 1024, Seed: hashing.Mix64(seed)}
		a, b := buildPair(cfg, 100000, 100000, 1000)
		v, err := EstimateIntersection(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, v)
	}
	med := Median(ests)
	if med < 100 || med > 4000 {
		t.Errorf("median tiny-intersection estimate %v wildly off 1000", med)
	}
}
