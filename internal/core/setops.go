package core

import "fmt"

// Set-operation estimators over coordinated samples.
//
// These extend the paper's union estimator in the direction its
// successors (KMV/theta sketches) made standard. The key observation
// is the coordinated-sample invariant: at level L ≥ max of the two
// samplers' levels, sampler A's retained set is *exactly*
// {x ∈ distinct(A) : ℓ(x) ≥ L} — so intersecting or differencing the
// two retained sets gives a level-L coordinated sample of A∩B or A\B,
// and scaling by 2^L estimates its size. No such query is possible
// across sketches with independent seeds, which is why coordination is
// the enabling idea.

// checkCoordinated validates that two samplers share a configuration.
func checkCoordinated(a, b *Sampler) error {
	if a == nil || b == nil {
		return fmt.Errorf("%w: nil sampler", ErrMismatch)
	}
	if a.cfg.Seed != b.cfg.Seed || a.cfg.Capacity != b.cfg.Capacity || a.cfg.Family != b.cfg.Family {
		return fmt.Errorf("%w: %s vs %s", ErrMismatch, a.describe(), b.describe())
	}
	return nil
}

// EstimateIntersection estimates |A ∩ B| for the distinct label sets
// sketched by two coordinated samplers. The effective sample for the
// intersection has expected size |A∩B|/2^L, so the error guarantee
// degrades when the intersection is much smaller than either set —
// the same selectivity effect as predicate counts (E9).
func EstimateIntersection(a, b *Sampler) (float64, error) {
	if err := checkCoordinated(a, b); err != nil {
		return 0, err
	}
	level := max(a.level, b.level)
	count := 0
	for label, e := range a.entries {
		if int(e.level) < level {
			continue
		}
		if be, ok := b.entries[label]; ok && int(be.level) >= level {
			count++
		}
	}
	return float64(count) * pow2(level), nil
}

// EstimateDifference estimates |A \ B| (labels in A's stream but not
// B's). Soundness rests on the invariant: if a label at level ≥ L is
// absent from B's sample, it is truly absent from B's stream.
func EstimateDifference(a, b *Sampler) (float64, error) {
	if err := checkCoordinated(a, b); err != nil {
		return 0, err
	}
	level := max(a.level, b.level)
	count := 0
	for label, e := range a.entries {
		if int(e.level) < level {
			continue
		}
		if be, ok := b.entries[label]; ok && int(be.level) >= level {
			continue
		}
		count++
	}
	return float64(count) * pow2(level), nil
}

// EstimateJaccard estimates the Jaccard similarity
// |A∩B| / |A∪B| ∈ [0, 1] of the two sketched label sets. The 2^L
// scale factors cancel, so this is a pure ratio of coordinated sample
// counts.
func EstimateJaccard(a, b *Sampler) (float64, error) {
	if err := checkCoordinated(a, b); err != nil {
		return 0, err
	}
	level := max(a.level, b.level)
	inter, union := 0, 0
	for label, e := range a.entries {
		if int(e.level) < level {
			continue
		}
		union++
		if be, ok := b.entries[label]; ok && int(be.level) >= level {
			inter++
		}
	}
	for label, e := range b.entries {
		if int(e.level) < level {
			continue
		}
		if ae, ok := a.entries[label]; ok && int(ae.level) >= level {
			continue // already counted via a
		}
		union++
	}
	if union == 0 {
		return 0, nil
	}
	return float64(inter) / float64(union), nil
}

// Sketch-valued set operations. The same invariant that makes the
// scalar estimators sound makes the operations *close over the
// sampler domain*: the level-L filtered intersection (or difference)
// of two coordinated retained sets is exactly a level-L coordinated
// sample of A∩B (or A\B) under the shared hash — a valid Sampler in
// its own right, whose EstimateDistinct equals the scalar estimate.
// That closure is what lets set operators nest in query expressions.

// IntersectSamplers returns a coordinated level-max(La,Lb) sample of
// A ∩ B. Retained entries keep a's weights (the fixed-value-per-label
// model makes a's and b's weights for a shared label equal anyway).
func IntersectSamplers(a, b *Sampler) (*Sampler, error) {
	if err := checkCoordinated(a, b); err != nil {
		return nil, err
	}
	out := NewSampler(a.cfg)
	out.level = max(a.level, b.level)
	for label, e := range a.entries {
		if int(e.level) < out.level {
			continue
		}
		if be, ok := b.entries[label]; ok && int(be.level) >= out.level {
			out.entries[label] = e
			out.weightSum += e.weight
		}
	}
	return out, nil
}

// DiffSamplers returns a coordinated level-max(La,Lb) sample of A \ B.
func DiffSamplers(a, b *Sampler) (*Sampler, error) {
	if err := checkCoordinated(a, b); err != nil {
		return nil, err
	}
	out := NewSampler(a.cfg)
	out.level = max(a.level, b.level)
	for label, e := range a.entries {
		if int(e.level) < out.level {
			continue
		}
		if be, ok := b.entries[label]; ok && int(be.level) >= out.level {
			continue
		}
		out.entries[label] = e
		out.weightSum += e.weight
	}
	return out, nil
}

// Estimator-level variants: medians across the paired copies.

// estimatorPairwise applies f to each coordinated copy pair and
// returns the median.
func estimatorPairwise(a, b *Estimator, f func(x, y *Sampler) (float64, error)) (float64, error) {
	if a == nil || b == nil {
		return 0, fmt.Errorf("%w: nil estimator", ErrMismatch)
	}
	if a.cfg != b.cfg {
		return 0, fmt.Errorf("%w: estimator configs %+v vs %+v", ErrMismatch, a.cfg, b.cfg)
	}
	vals := make([]float64, len(a.copies))
	for i := range a.copies {
		v, err := f(a.copies[i], b.copies[i])
		if err != nil {
			return 0, err
		}
		vals[i] = v
	}
	return Median(vals), nil
}

// EstimateIntersection estimates |A ∩ B| as the median over copy
// pairs; see the Sampler-level function for guarantees.
func (e *Estimator) EstimateIntersection(other *Estimator) (float64, error) {
	return estimatorPairwise(e, other, EstimateIntersection)
}

// EstimateDifference estimates |A \ B| as the median over copy pairs.
func (e *Estimator) EstimateDifference(other *Estimator) (float64, error) {
	return estimatorPairwise(e, other, EstimateDifference)
}

// EstimateJaccard estimates Jaccard similarity as the median over
// copy pairs.
func (e *Estimator) EstimateJaccard(other *Estimator) (float64, error) {
	return estimatorPairwise(e, other, EstimateJaccard)
}
