package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/hashing"
	"repro/internal/sketch"
)

// EstimatorConfig parameterizes an Estimator: Copies independent
// Samplers whose per-copy configs are derived deterministically from
// one master seed. As with Sampler, distributed parties coordinate by
// agreeing on this one struct.
type EstimatorConfig struct {
	// Capacity per copy; see Config.Capacity.
	Capacity int
	// Copies is the number of independent samplers, r = Θ(log 1/δ);
	// the estimate is the median across copies. Use CopiesForDelta.
	// Must be ≥ 1; odd values make the median unique.
	Copies int
	// Seed is the master seed; copy i uses the i-th value of a
	// SplitMix64 stream seeded with it.
	Seed uint64
	// Family selects the hash family for every copy.
	Family FamilyKind
	// Raise selects the overflow policy for every copy.
	Raise RaisePolicy
}

// ConfigForAccuracy builds an EstimatorConfig achieving relative error
// eps with failure probability delta, per the paper's
// O(log(1/δ)/ε² · log m) space bound.
func ConfigForAccuracy(eps, delta float64, seed uint64) EstimatorConfig {
	return EstimatorConfig{
		Capacity: CapacityForEpsilon(eps),
		Copies:   CopiesForDelta(delta),
		Seed:     seed,
	}
}

// Estimator is the full (ε, δ) coordinated-sampling estimator: r
// independent Sampler copies processed in parallel over the same
// stream, with median aggregation of the copies' estimates. It is the
// type parties exchange in the distributed-streams model.
type Estimator struct {
	cfg    EstimatorConfig
	copies []*Sampler
}

// NewEstimator constructs an estimator. It panics on a non-positive
// Copies or Capacity (programming errors).
func NewEstimator(cfg EstimatorConfig) *Estimator {
	if cfg.Copies < 1 {
		panic(fmt.Sprintf("core: estimator needs >= 1 copy, got %d", cfg.Copies))
	}
	sm := hashing.NewSplitMix64(cfg.Seed)
	copies := make([]*Sampler, cfg.Copies)
	for i := range copies {
		copies[i] = NewSampler(Config{
			Capacity: cfg.Capacity,
			Seed:     sm.Next(),
			Family:   cfg.Family,
			Raise:    cfg.Raise,
		})
	}
	return &Estimator{cfg: cfg, copies: copies}
}

// Config returns the estimator's configuration.
func (e *Estimator) Config() EstimatorConfig { return e.cfg }

// Copies returns the number of independent sampler copies.
func (e *Estimator) Copies() int { return len(e.copies) }

// Copy returns the i-th underlying sampler (for inspection in tests
// and experiments).
func (e *Estimator) Copy(i int) *Sampler { return e.copies[i] }

// Process observes one occurrence of label in every copy.
//
// hotpath: called once per stream item.
func (e *Estimator) Process(label uint64) {
	for _, s := range e.copies {
		s.Process(label)
	}
}

// ProcessWeighted observes label with a value in every copy; see
// Sampler.ProcessWeighted for the fixed-value-per-label contract.
//
// hotpath: called once per stream item.
func (e *Estimator) ProcessWeighted(label, value uint64) {
	for _, s := range e.copies {
		s.ProcessWeighted(label, value)
	}
}

// Merge folds other into e copy-by-copy. other must be another
// *Estimator with an identical EstimatorConfig (ErrMismatch
// otherwise). Afterwards e estimates over the union of the two
// streams.
func (e *Estimator) Merge(o sketch.Sketch) error {
	other, ok := o.(*Estimator)
	if !ok {
		// allocflow:cold a mismatched merge is refused, not streamed
		return fmt.Errorf("%w: cannot merge %T into *core.Estimator", ErrMismatch, o)
	}
	if other == nil {
		// allocflow:cold a mismatched merge is refused, not streamed
		return fmt.Errorf("%w: nil estimator", ErrMismatch)
	}
	if e.cfg != other.cfg {
		// allocflow:cold a mismatched merge is refused, not streamed
		return fmt.Errorf("%w: estimator configs %+v vs %+v", ErrMismatch, e.cfg, other.cfg)
	}
	// Validate every pair first so a failed merge cannot leave e
	// half-updated.
	for i := range e.copies {
		a, b := e.copies[i], other.copies[i]
		if a.cfg.Seed != b.cfg.Seed {
			// allocflow:cold a mismatched merge is refused, not streamed
			return fmt.Errorf("%w: copy %d seed divergence", ErrMismatch, i)
		}
	}
	for i := range e.copies {
		if err := e.copies[i].Merge(other.copies[i]); err != nil {
			return err
		}
	}
	return nil
}

// EstimateDistinct returns the median across copies of the
// distinct-label estimates.
func (e *Estimator) EstimateDistinct() float64 {
	return e.median(func(s *Sampler) float64 { return s.EstimateDistinct() })
}

// EstimateSum returns the median across copies of the
// sum-over-distinct-labels estimates.
func (e *Estimator) EstimateSum() float64 {
	return e.median(func(s *Sampler) float64 { return s.EstimateSum() })
}

// EstimateCountWhere returns the median across copies of the
// predicate-count estimates.
func (e *Estimator) EstimateCountWhere(pred func(label uint64) bool) float64 {
	return e.median(func(s *Sampler) float64 { return s.EstimateCountWhere(pred) })
}

// EstimateSumWhere returns the median across copies of the
// predicate-sum estimates.
func (e *Estimator) EstimateSumWhere(pred func(label uint64) bool) float64 {
	return e.median(func(s *Sampler) float64 { return s.EstimateSumWhere(pred) })
}

func (e *Estimator) median(f func(*Sampler) float64) float64 {
	vals := make([]float64, len(e.copies))
	for i, s := range e.copies {
		vals[i] = f(s)
	}
	return Median(vals)
}

// Reset clears all copies, keeping the configuration.
func (e *Estimator) Reset() {
	for _, s := range e.copies {
		s.Reset()
	}
}

// Clone returns a deep copy.
func (e *Estimator) Clone() *Estimator {
	c := &Estimator{cfg: e.cfg, copies: make([]*Sampler, len(e.copies))}
	for i, s := range e.copies {
		c.copies[i] = s.Clone()
	}
	return c
}

// MarshalBinary encodes the estimator: a small header followed by each
// copy's encoding, length-prefixed.
func (e *Estimator) MarshalBinary() ([]byte, error) {
	b := []byte{wireMagic0, wireMagic1, wireVersion}
	b = binary.LittleEndian.AppendUint64(b, e.cfg.Seed)
	b = binary.AppendUvarint(b, uint64(len(e.copies)))
	for _, s := range e.copies {
		enc, err := s.MarshalBinary()
		if err != nil {
			return nil, err
		}
		b = binary.AppendUvarint(b, uint64(len(enc)))
		b = append(b, enc...)
	}
	return b, nil
}

// UnmarshalBinary decodes an estimator encoded by MarshalBinary.
func (e *Estimator) UnmarshalBinary(data []byte) error {
	if len(data) < 12 || data[0] != wireMagic0 || data[1] != wireMagic1 {
		return fmt.Errorf("%w: bad estimator header", ErrCorrupt)
	}
	if data[2] != wireVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrCorrupt, data[2])
	}
	seed := binary.LittleEndian.Uint64(data[3:11])
	d := decoder{buf: data[11:]}
	n, err := d.uvarint("copy count")
	if err != nil {
		return err
	}
	if n == 0 || n > 1<<16 {
		return fmt.Errorf("%w: implausible copy count %d", ErrCorrupt, n)
	}
	copies := make([]*Sampler, n)
	for i := range copies {
		sz, err := d.uvarint("copy length")
		if err != nil {
			return err
		}
		if uint64(len(d.buf)) < sz {
			return fmt.Errorf("%w: truncated copy %d", ErrCorrupt, i)
		}
		s, err := DecodeSampler(d.buf[:sz])
		if err != nil {
			return fmt.Errorf("copy %d: %w", i, err)
		}
		copies[i] = s
		d.buf = d.buf[sz:]
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf))
	}
	first := copies[0].Config()
	for i, s := range copies {
		c := s.Config()
		if c.Capacity != first.Capacity || c.Family != first.Family {
			return fmt.Errorf("%w: copy %d config diverges", ErrCorrupt, i)
		}
	}
	*e = Estimator{
		cfg: EstimatorConfig{
			Capacity: first.Capacity,
			Copies:   int(n),
			Seed:     seed,
			Family:   first.Family,
			Raise:    first.Raise,
		},
		copies: copies,
	}
	return nil
}

// SizeBytes returns the estimator's wire-encoding length: the total
// communication a party sends in the one-shot model.
func (e *Estimator) SizeBytes() int {
	b, err := e.MarshalBinary()
	if err != nil {
		return 0
	}
	return len(b)
}

// Median returns the median of vals (the mean of the two central
// values for even lengths). It returns 0 for an empty slice and does
// not modify its argument.
func Median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}
