package core

import (
	"runtime"
	"sync"
)

// Parallel batch processing.
//
// Because a sampler's state is a pure function of the distinct label
// set and merging equals union processing *exactly* (see Merge), one
// logical stream can be sharded across CPU cores: each worker folds
// its shard into a private coordinated sampler, and the merged result
// is bit-for-bit identical to sequential processing. This is the
// multicore dividend of the paper's distributed design — parallelism
// inside one machine is just the t-party protocol with zero-cost
// messages.

// ProcessSlice folds a batch of labels into the sampler using up to
// workers goroutines (workers <= 0 selects GOMAXPROCS). The final
// state is identical to calling Process on each label sequentially.
// mergepure:seam each worker folds its shard into a private sampler
// and Merge equals union processing exactly, so the merged state is
// independent of worker completion order (and of the shard count).
func (s *Sampler) ProcessSlice(labels []uint64, workers int) {
	shards := shardBounds(len(labels), normalizeWorkers(workers, len(labels)))
	if len(shards) <= 1 {
		for _, l := range labels {
			s.Process(l)
		}
		return
	}
	parts := make([]*Sampler, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, lo, hi int) {
			defer wg.Done()
			p := NewSampler(s.cfg)
			for _, l := range labels[lo:hi] {
				p.Process(l)
			}
			parts[i] = p
		}(i, sh[0], sh[1])
	}
	wg.Wait()
	for _, p := range parts {
		// Merge cannot fail: the parts share s's configuration.
		if err := s.Merge(p); err != nil {
			panic("core: ProcessSlice merge: " + err.Error())
		}
	}
}

// ProcessSlice folds a batch of labels into every copy of the
// estimator using up to workers goroutines (workers <= 0 selects
// GOMAXPROCS). Each (copy, shard) pair runs independently, so the
// available parallelism is copies × shards. The final state is
// identical to sequential Process calls.
// mergepure:seam copies never share state, and each copy's fold is
// Sampler.ProcessSlice, whose result is completion-order independent;
// the estimator's final state equals the sequential one.
func (e *Estimator) ProcessSlice(labels []uint64, workers int) {
	w := normalizeWorkers(workers, len(labels))
	if w <= 1 {
		for _, l := range labels {
			e.Process(l)
		}
		return
	}
	// Parallelize across copies first (no merge needed), then across
	// shards within a copy when workers exceed copies.
	perCopy := w / len(e.copies)
	if perCopy < 1 {
		perCopy = 1
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, w)
	for _, c := range e.copies {
		wg.Add(1)
		go func(c *Sampler) {
			defer wg.Done()
			sem <- struct{}{}
			c.ProcessSlice(labels, perCopy)
			<-sem
		}(c)
	}
	wg.Wait()
}

func normalizeWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// shardBounds splits [0, n) into w near-equal [lo, hi) ranges.
func shardBounds(n, w int) [][2]int {
	if n == 0 {
		return nil
	}
	if w > n {
		w = n
	}
	out := make([][2]int, 0, w)
	for i := 0; i < w; i++ {
		lo := i * n / w
		hi := (i + 1) * n / w
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}
