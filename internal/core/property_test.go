package core

// Property-based tests for the merge algebra. The chaos harness in
// internal/server and internal/client leans on three algebraic facts —
// merge is commutative, associative, and idempotent — to promise that
// duplicated and reordered deliveries never change the referee's
// state. This suite checks those facts directly, bit-for-bit on the
// canonical encoding, across randomly generated configurations
// (capacity, copies, family, raise policy, seed) and randomly sharded
// streams. Every trial's generator seed is logged on failure so a
// counterexample replays exactly.

import (
	"bytes"
	"testing"

	"repro/internal/hashing"
)

// genConfig draws a random estimator configuration from rng.
func genConfig(rng *hashing.Xoshiro256) EstimatorConfig {
	return EstimatorConfig{
		Capacity: 1 + rng.Intn(64),
		Copies:   1 + rng.Intn(5),
		Seed:     rng.Uint64(),
		Family:   FamilyKind(rng.Intn(3)),
		Raise:    RaisePolicy(rng.Intn(2)),
	}
}

// genShards builds k estimators over random overlapping label sets
// drawn from a shared universe, returning each shard's estimator and
// one estimator that processed every shard's items directly — the
// ground-truth union. Values follow the duplicate-insensitive-sum
// contract: a label's weight is a function of the label alone.
func genShards(rng *hashing.Xoshiro256, cfg EstimatorConfig, k int) (shards []*Estimator, union *Estimator) {
	union = NewEstimator(cfg)
	universe := 1 + rng.Uint64n(5000)
	for s := 0; s < k; s++ {
		est := NewEstimator(cfg)
		n := 1 + rng.Intn(2000)
		for j := 0; j < n; j++ {
			label := rng.Uint64n(universe)
			value := label%7 + 1
			est.ProcessWeighted(label, value)
			union.ProcessWeighted(label, value)
		}
		shards = append(shards, est)
	}
	return shards, union
}

// canonical marshals e, failing the test on error.
func canonical(t *testing.T, e *Estimator) []byte {
	t.Helper()
	b, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// clone deep-copies an estimator through its canonical encoding, so
// merge expressions can reuse operands without aliasing state.
func clone(t *testing.T, e *Estimator) *Estimator {
	t.Helper()
	var out Estimator
	if err := out.UnmarshalBinary(canonical(t, e)); err != nil {
		t.Fatal(err)
	}
	return &out
}

// mergedInto returns clone(dst) after merging every src into it, in
// order.
func mergedInto(t *testing.T, dst *Estimator, srcs ...*Estimator) *Estimator {
	t.Helper()
	out := clone(t, dst)
	for _, s := range srcs {
		if err := out.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestPropertyMergeCommutative: A∪B and B∪A marshal to identical
// bytes for random configurations and shards.
func TestPropertyMergeCommutative(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		seed := uint64(0xC0FFEE) + uint64(trial)
		rng := hashing.NewXoshiro256(seed)
		cfg := genConfig(rng)
		sh, _ := genShards(rng, cfg, 2)
		ab := canonical(t, mergedInto(t, sh[0], sh[1]))
		ba := canonical(t, mergedInto(t, sh[1], sh[0]))
		if !bytes.Equal(ab, ba) {
			t.Fatalf("seed %#x cfg %+v: A∪B != B∪A", seed, cfg)
		}
	}
}

// TestPropertyMergeAssociative: (A∪B)∪C and A∪(B∪C) marshal to
// identical bytes.
func TestPropertyMergeAssociative(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		seed := uint64(0xA550C) + uint64(trial)
		rng := hashing.NewXoshiro256(seed)
		cfg := genConfig(rng)
		sh, _ := genShards(rng, cfg, 3)
		left := canonical(t, mergedInto(t, mergedInto(t, sh[0], sh[1]), sh[2]))
		right := canonical(t, mergedInto(t, sh[0], mergedInto(t, sh[1], sh[2])))
		if !bytes.Equal(left, right) {
			t.Fatalf("seed %#x cfg %+v: (A∪B)∪C != A∪(B∪C)", seed, cfg)
		}
	}
}

// TestPropertyMergeIdempotent: A∪A == A and (A∪B)∪B == A∪B — the
// property that makes at-least-once delivery safe for the networked
// referee.
func TestPropertyMergeIdempotent(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		seed := uint64(0x1DE4) + uint64(trial)
		rng := hashing.NewXoshiro256(seed)
		cfg := genConfig(rng)
		sh, _ := genShards(rng, cfg, 2)
		a := canonical(t, sh[0])
		aa := canonical(t, mergedInto(t, sh[0], sh[0]))
		if !bytes.Equal(a, aa) {
			t.Fatalf("seed %#x cfg %+v: A∪A != A", seed, cfg)
		}
		ab := mergedInto(t, sh[0], sh[1])
		abb := canonical(t, mergedInto(t, ab, sh[1]))
		if !bytes.Equal(canonical(t, ab), abb) {
			t.Fatalf("seed %#x cfg %+v: (A∪B)∪B != A∪B", seed, cfg)
		}
	}
}

// TestPropertyMergeEqualsDirectUnion: merging per-shard sketches is
// bit-identical to one sketch processing the concatenated streams —
// the paper's union semantics, which is what lets sites stream
// independently and exchange only their sketches.
func TestPropertyMergeEqualsDirectUnion(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		seed := uint64(0xD17EC7) + uint64(trial)
		rng := hashing.NewXoshiro256(seed)
		cfg := genConfig(rng)
		sh, union := genShards(rng, cfg, 2+rng.Intn(3))
		merged := canonical(t, mergedInto(t, sh[0], sh[1:]...))
		direct := canonical(t, union)
		if !bytes.Equal(merged, direct) {
			t.Fatalf("seed %#x cfg %+v (%d shards): merged sketches != direct union sketch", seed, cfg, len(sh))
		}
	}
}
