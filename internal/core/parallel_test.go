package core

import (
	"sync"
	"testing"

	"repro/internal/hashing"
)

func randomLabels(n int, seed uint64) []uint64 {
	r := hashing.NewXoshiro256(seed)
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64n(uint64(n))
	}
	return out
}

func TestProcessSliceMatchesSequential(t *testing.T) {
	labels := randomLabels(100_000, 5)
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		cfg := Config{Capacity: 512, Seed: 9}
		serial := NewSampler(cfg)
		for _, l := range labels {
			serial.Process(l)
		}
		parallel := NewSampler(cfg)
		parallel.ProcessSlice(labels, workers)
		a, _ := serial.MarshalBinary()
		b, _ := parallel.MarshalBinary()
		if string(a) != string(b) {
			t.Fatalf("workers=%d: parallel state differs from sequential", workers)
		}
	}
}

func TestProcessSliceEmptyAndTiny(t *testing.T) {
	s := NewSampler(Config{Capacity: 8, Seed: 1})
	s.ProcessSlice(nil, 4)
	if s.Len() != 0 {
		t.Error("empty slice changed state")
	}
	s.ProcessSlice([]uint64{7}, 16)
	if s.Len() != 1 {
		t.Errorf("Len = %d after single insert", s.Len())
	}
}

func TestProcessSliceIncremental(t *testing.T) {
	// ProcessSlice must compose with prior sequential state.
	cfg := Config{Capacity: 128, Seed: 3}
	labels := randomLabels(50_000, 7)
	serial := NewSampler(cfg)
	for _, l := range labels {
		serial.Process(l)
	}
	mixed := NewSampler(cfg)
	for _, l := range labels[:10_000] {
		mixed.Process(l)
	}
	mixed.ProcessSlice(labels[10_000:], 8)
	a, _ := serial.MarshalBinary()
	b, _ := mixed.MarshalBinary()
	if string(a) != string(b) {
		t.Error("incremental parallel processing diverged")
	}
}

func TestEstimatorProcessSliceMatchesSequential(t *testing.T) {
	labels := randomLabels(60_000, 11)
	cfg := EstimatorConfig{Capacity: 256, Copies: 5, Seed: 13}
	serial := NewEstimator(cfg)
	for _, l := range labels {
		serial.Process(l)
	}
	for _, workers := range []int{0, 1, 4, 32} {
		parallel := NewEstimator(cfg)
		parallel.ProcessSlice(labels, workers)
		a, _ := serial.MarshalBinary()
		b, _ := parallel.MarshalBinary()
		if string(a) != string(b) {
			t.Fatalf("workers=%d: estimator parallel state differs", workers)
		}
	}
}

// TestConcurrentMergeMatchesSerial is the absorb-determinism property
// the networked coordinator (internal/server) relies on: N goroutines
// merging the same part-sketches into one accumulator in arbitrary
// interleaved order — each merge under a lock, as the server's merge
// groups do — must leave state bit-identical to merging them serially
// in site order.
func TestConcurrentMergeMatchesSerial(t *testing.T) {
	cfg := Config{Capacity: 256, Seed: 21}
	labels := randomLabels(80_000, 17)
	const parts = 24
	sketches := make([]*Sampler, parts)
	for i := range sketches {
		sketches[i] = NewSampler(cfg)
		lo, hi := i*len(labels)/parts, (i+1)*len(labels)/parts
		for _, l := range labels[lo:hi] {
			sketches[i].Process(l)
		}
	}

	serial := NewSampler(cfg)
	for _, p := range sketches {
		if err := serial.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := serial.MarshalBinary()

	rng := hashing.NewXoshiro256(23)
	for trial := 0; trial < 5; trial++ {
		order := make([]int, parts)
		for i := range order {
			order[i] = i
		}
		for i := parts - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		acc := NewSampler(cfg)
		var mu sync.Mutex
		var wg sync.WaitGroup
		work := make(chan *Sampler)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for p := range work {
					mu.Lock()
					err := acc.Merge(p)
					mu.Unlock()
					if err != nil {
						t.Error(err)
					}
				}
			}()
		}
		for _, idx := range order {
			work <- sketches[idx]
		}
		close(work)
		wg.Wait()
		got, _ := acc.MarshalBinary()
		if string(got) != string(want) {
			t.Fatalf("trial %d: concurrent merge state differs from serial", trial)
		}
	}
}

// TestConcurrentEstimatorMergeMatchesSerial is the same property for
// the full median-of-copies estimator — the exact object the server
// merges per absorbed site message.
func TestConcurrentEstimatorMergeMatchesSerial(t *testing.T) {
	cfg := EstimatorConfig{Capacity: 128, Copies: 5, Seed: 31}
	labels := randomLabels(60_000, 19)
	const parts = 12
	ests := make([]*Estimator, parts)
	for i := range ests {
		ests[i] = NewEstimator(cfg)
		lo, hi := i*len(labels)/parts, (i+1)*len(labels)/parts
		for _, l := range labels[lo:hi] {
			ests[i].Process(l)
		}
	}

	serial := NewEstimator(cfg)
	for _, p := range ests {
		if err := serial.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := serial.MarshalBinary()

	acc := NewEstimator(cfg)
	var mu sync.Mutex
	var wg sync.WaitGroup
	work := make(chan *Estimator)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range work {
				mu.Lock()
				err := acc.Merge(p)
				mu.Unlock()
				if err != nil {
					t.Error(err)
				}
			}
		}()
	}
	// Reverse order, so serial order and absorb order certainly differ.
	for i := parts - 1; i >= 0; i-- {
		work <- ests[i]
	}
	close(work)
	wg.Wait()
	got, _ := acc.MarshalBinary()
	if string(got) != string(want) {
		t.Fatal("concurrent estimator merge state differs from serial")
	}
}

func TestShardBounds(t *testing.T) {
	cases := []struct {
		n, w int
	}{
		{0, 4}, {1, 4}, {10, 3}, {10, 10}, {10, 20}, {1000, 7},
	}
	for _, c := range cases {
		shards := shardBounds(c.n, c.w)
		covered := 0
		prevHi := 0
		for _, sh := range shards {
			if sh[0] != prevHi {
				t.Fatalf("n=%d w=%d: gap at %d", c.n, c.w, sh[0])
			}
			if sh[1] <= sh[0] {
				t.Fatalf("n=%d w=%d: empty shard", c.n, c.w)
			}
			covered += sh[1] - sh[0]
			prevHi = sh[1]
		}
		if covered != c.n {
			t.Fatalf("n=%d w=%d: covered %d", c.n, c.w, covered)
		}
	}
}
