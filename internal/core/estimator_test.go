package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/hashing"
)

func TestEstimatorDeterministicConstruction(t *testing.T) {
	cfg := EstimatorConfig{Capacity: 32, Copies: 5, Seed: 9}
	a, b := NewEstimator(cfg), NewEstimator(cfg)
	for i := 0; i < a.Copies(); i++ {
		if a.Copy(i).Config().Seed != b.Copy(i).Config().Seed {
			t.Fatalf("copy %d seeds differ across identical constructions", i)
		}
	}
	// Copies must have distinct seeds from each other.
	seen := map[uint64]bool{}
	for i := 0; i < a.Copies(); i++ {
		s := a.Copy(i).Config().Seed
		if seen[s] {
			t.Fatalf("copy %d reuses a seed", i)
		}
		seen[s] = true
	}
}

func TestEstimatorAccuracy(t *testing.T) {
	const truth = 100000
	e := NewEstimator(EstimatorConfig{Capacity: 1024, Copies: 9, Seed: 5})
	for x := uint64(0); x < truth; x++ {
		e.Process(x)
	}
	got := e.EstimateDistinct()
	if rel := math.Abs(got-truth) / truth; rel > 0.12 {
		t.Errorf("estimate %.0f vs %d: rel err %.3f", got, truth, rel)
	}
}

func TestEstimatorMedianBeatsWorstCopy(t *testing.T) {
	const truth = 50000
	e := NewEstimator(EstimatorConfig{Capacity: 256, Copies: 15, Seed: 77})
	for x := uint64(0); x < truth; x++ {
		e.Process(x)
	}
	medErr := math.Abs(e.EstimateDistinct()-truth) / truth
	worst := 0.0
	for i := 0; i < e.Copies(); i++ {
		err := math.Abs(e.Copy(i).EstimateDistinct()-truth) / truth
		if err > worst {
			worst = err
		}
	}
	if medErr > worst {
		t.Errorf("median error %.4f exceeds worst copy error %.4f", medErr, worst)
	}
}

func TestEstimatorMergeMatchesUnion(t *testing.T) {
	cfg := EstimatorConfig{Capacity: 64, Copies: 5, Seed: 13}
	a, b, both := NewEstimator(cfg), NewEstimator(cfg), NewEstimator(cfg)
	r := hashing.NewXoshiro256(2)
	for i := 0; i < 3000; i++ {
		x := r.Uint64n(2000)
		a.Process(x)
		both.Process(x)
	}
	for i := 0; i < 3000; i++ {
		x := r.Uint64n(2000) + 1000
		b.Process(x)
		both.Process(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	x, _ := a.MarshalBinary()
	y, _ := both.MarshalBinary()
	if string(x) != string(y) {
		t.Error("estimator merge differs from processing the union")
	}
}

func TestEstimatorMergeMismatch(t *testing.T) {
	a := NewEstimator(EstimatorConfig{Capacity: 64, Copies: 5, Seed: 13})
	cases := []EstimatorConfig{
		{Capacity: 64, Copies: 5, Seed: 14},
		{Capacity: 32, Copies: 5, Seed: 13},
		{Capacity: 64, Copies: 7, Seed: 13},
		{Capacity: 64, Copies: 5, Seed: 13, Family: FamilyTabulation},
	}
	for i, cfg := range cases {
		if err := a.Merge(NewEstimator(cfg)); !errors.Is(err, ErrMismatch) {
			t.Errorf("case %d: err = %v, want ErrMismatch", i, err)
		}
	}
	if err := a.Merge(nil); !errors.Is(err, ErrMismatch) {
		t.Error("Merge(nil) did not return ErrMismatch")
	}
}

func TestEstimatorRoundTrip(t *testing.T) {
	e := NewEstimator(EstimatorConfig{Capacity: 64, Copies: 5, Seed: 21})
	for x := uint64(0); x < 5000; x++ {
		e.ProcessWeighted(x, x%7+1)
	}
	enc, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Estimator
	if err := got.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if got.Config() != e.Config() {
		t.Errorf("config round trip: %+v vs %+v", got.Config(), e.Config())
	}
	if got.EstimateDistinct() != e.EstimateDistinct() {
		t.Error("distinct estimate changed across round trip")
	}
	if got.EstimateSum() != e.EstimateSum() {
		t.Error("sum estimate changed across round trip")
	}
	// A decoded estimator must merge with a live one.
	live := NewEstimator(e.Config())
	for x := uint64(4000); x < 9000; x++ {
		live.ProcessWeighted(x, x%7+1)
	}
	if err := got.Merge(live); err != nil {
		t.Fatalf("merging decoded estimator: %v", err)
	}
}

func TestEstimatorUnmarshalCorrupt(t *testing.T) {
	e := NewEstimator(EstimatorConfig{Capacity: 16, Copies: 3, Seed: 2})
	for x := uint64(0); x < 100; x++ {
		e.Process(x)
	}
	enc, _ := e.MarshalBinary()
	var d Estimator
	for name, data := range map[string][]byte{
		"empty":     nil,
		"short":     enc[:4],
		"bad magic": append([]byte{'X', 'X'}, enc[2:]...),
		"truncated": enc[:len(enc)-3],
		"trailing":  append(append([]byte(nil), enc...), 1),
	} {
		if err := d.UnmarshalBinary(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestEstimatorPredicates(t *testing.T) {
	e := NewEstimator(EstimatorConfig{Capacity: 1024, Copies: 5, Seed: 3})
	const n = 40000
	for x := uint64(0); x < n; x++ {
		e.ProcessWeighted(x, 2)
	}
	cnt := e.EstimateCountWhere(func(x uint64) bool { return x%4 == 0 })
	want := float64(n) / 4
	if rel := math.Abs(cnt-want) / want; rel > 0.15 {
		t.Errorf("quarter predicate: %.0f vs %.0f (rel %.3f)", cnt, want, rel)
	}
	sum := e.EstimateSumWhere(func(x uint64) bool { return x%4 == 0 })
	if rel := math.Abs(sum-2*want) / (2 * want); rel > 0.15 {
		t.Errorf("quarter sum: %.0f vs %.0f (rel %.3f)", sum, 2*want, rel)
	}
}

func TestEstimatorResetClone(t *testing.T) {
	e := NewEstimator(EstimatorConfig{Capacity: 16, Copies: 3, Seed: 4})
	for x := uint64(0); x < 1000; x++ {
		e.Process(x)
	}
	c := e.Clone()
	e.Reset()
	if e.EstimateDistinct() != 0 {
		t.Error("Reset did not clear estimate")
	}
	if c.EstimateDistinct() == 0 {
		t.Error("Reset cleared the clone too")
	}
}

func TestNewEstimatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEstimator with 0 copies did not panic")
		}
	}()
	NewEstimator(EstimatorConfig{Capacity: 4, Copies: 0})
}

func TestConfigForAccuracy(t *testing.T) {
	cfg := ConfigForAccuracy(0.1, 0.05, 42)
	if cfg.Capacity != CapacityForEpsilon(0.1) {
		t.Errorf("capacity = %d", cfg.Capacity)
	}
	if cfg.Copies != CopiesForDelta(0.05) {
		t.Errorf("copies = %d", cfg.Copies)
	}
	if cfg.Seed != 42 {
		t.Errorf("seed = %d", cfg.Seed)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{1, 1, 1, 1, 100}, 1},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Median mutated its input")
	}
}
