package faultnet

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/distsim"
	"repro/internal/wire"
)

// ackServer accepts connections, reads frames, and answers each with
// an AckOK frame, counting every frame successfully read.
func ackServer(t *testing.T) (addr string, frames *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	frames = &atomic.Int64{}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					if _, _, err := wire.ReadFrame(conn, 0); err != nil {
						return
					}
					frames.Add(1)
					if err := wire.WriteFrame(conn, wire.MsgAck, wire.Ack{Code: wire.AckOK}.Encode()); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), frames
}

// exchange dials addr, sends one push frame, and returns the ack read
// error (nil on success).
func exchange(t *testing.T, addr string, payload []byte, timeout time.Duration) error {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := wire.WriteFrame(conn, wire.MsgPush, payload); err != nil {
		return err
	}
	_, _, err = wire.ReadFrame(conn, 0)
	return err
}

func TestPassThroughAndTrace(t *testing.T) {
	addr, frames := ackServer(t)
	acct := distsim.NewByteAccountant()
	p, err := New(addr, Script{{}}, WithAccountant(acct))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	payload := []byte("sketch bytes")
	if err := exchange(t, p.Addr(), payload, 2*time.Second); err != nil {
		t.Fatalf("clean exchange through proxy: %v", err)
	}
	p.Close() // flush handlers so the trace is complete

	if got := frames.Load(); got != 1 {
		t.Fatalf("server read %d frames, want 1", got)
	}
	tr := p.Trace()
	if len(tr) != 1 {
		t.Fatalf("%d trace events, want 1", len(tr))
	}
	wantUp := int64(wire.HeaderSize + len(payload))
	if tr[0].UpBytes != wantUp {
		t.Errorf("up bytes %d, want %d", tr[0].UpBytes, wantUp)
	}
	if tr[0].DownBytes == 0 {
		t.Error("ack bytes not forwarded")
	}
	if acct.TotalBytes() != wantUp {
		t.Errorf("accountant recorded %d bytes, want %d", acct.TotalBytes(), wantUp)
	}
}

func TestRejectAndTruncateAndBitFlip(t *testing.T) {
	addr, frames := ackServer(t)
	p, err := New(addr, Script{
		{Reject: true},
		{Up: PathPlan{Kind: Truncate, AfterBytes: 5}},
		{Up: PathPlan{Kind: BitFlip, AfterBytes: wire.HeaderSize}}, // first payload byte
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Conn 0: rejected — the exchange fails without a reply frame.
	if err := exchange(t, p.Addr(), []byte("payload"), time.Second); err == nil {
		t.Error("exchange through rejected connection succeeded")
	}
	// Conn 1: truncated mid-header — no complete frame reaches the
	// server, and the client sees the cut instead of an ack.
	if err := exchange(t, p.Addr(), []byte("payload"), time.Second); err == nil {
		t.Error("exchange through truncated connection succeeded")
	}
	if got := frames.Load(); got != 0 {
		t.Fatalf("server read %d frames through reject/truncate, want 0", got)
	}
	// Conn 2: bit-flipped payload — the frame arrives complete but the
	// server's CRC check must refuse it (read error, no count).
	_ = exchange(t, p.Addr(), []byte("payload"), time.Second)
	if got := frames.Load(); got != 0 {
		t.Fatalf("server accepted a bit-flipped frame (%d)", got)
	}
	p.Close()
	tr := p.Trace()
	if len(tr) != 3 {
		t.Fatalf("%d trace events, want 3", len(tr))
	}
	if tr[1].UpBytes != 5 {
		t.Errorf("truncated conn forwarded %d bytes, want 5", tr[1].UpBytes)
	}
}

func TestBlackHoleDownSwallowsAck(t *testing.T) {
	addr, frames := ackServer(t)
	p, err := New(addr, Script{{Down: PathPlan{Kind: BlackHole}}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	err = exchange(t, p.Addr(), []byte("payload"), 300*time.Millisecond)
	if err == nil {
		t.Fatal("ack arrived through a black-holed down path")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("err = %v, want a timeout", err)
	}
	// The message itself was delivered: only the ack vanished.
	if got := frames.Load(); got != 1 {
		t.Errorf("server read %d frames, want 1 (message delivered, ack swallowed)", got)
	}
}

func TestReplayDuplicatesDelivery(t *testing.T) {
	addr, frames := ackServer(t)
	p, err := New(addr, Script{{Replay: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if err := exchange(t, p.Addr(), []byte("payload"), 2*time.Second); err != nil {
		t.Fatalf("exchange: %v", err)
	}
	p.Close() // wait for the replay to finish
	if got := frames.Load(); got != 2 {
		t.Errorf("server read %d frames, want 2 (original + replay)", got)
	}
	tr := p.Trace()
	if len(tr) != 1 || tr[0].ReplayBytes != tr[0].UpBytes {
		t.Errorf("trace %+v: replay bytes must equal original up bytes", tr)
	}
}

func TestSeededScheduleDeterministicAndSeedSensitive(t *testing.T) {
	a, b := Seeded(7), Seeded(7)
	differ := false
	other := Seeded(8)
	kinds := map[string]bool{}
	for i := 0; i < 200; i++ {
		pa, pb := a.PlanFor(i), b.PlanFor(i)
		if pa != pb {
			t.Fatalf("conn %d: same seed produced %v and %v", i, pa, pb)
		}
		if pa != other.PlanFor(i) {
			differ = true
		}
		kinds[pa.String()] = true
	}
	if !differ {
		t.Error("seeds 7 and 8 produced identical 200-connection schedules")
	}
	// The default mix must actually exercise the fault space.
	if len(kinds) < 5 {
		t.Errorf("default mix produced only %d distinct plans over 200 connections", len(kinds))
	}
	// Order independence: querying plans out of order changes nothing.
	if Seeded(7).PlanFor(50) != a.PlanFor(50) {
		t.Error("PlanFor depends on call order")
	}
}
