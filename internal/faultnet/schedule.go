package faultnet

import (
	"fmt"
	"time"

	"repro/internal/hashing"
)

// Kind is one per-direction fault a proxy can apply to a connection's
// byte stream.
type Kind uint8

const (
	// Pass forwards bytes untouched.
	Pass Kind = iota
	// Delay sleeps Wait once before forwarding the first byte, then
	// passes.
	Delay
	// Truncate forwards exactly AfterBytes bytes, then hard-closes
	// both halves of the connection — a site (or referee) dying
	// mid-frame.
	Truncate
	// BitFlip forwards everything but XORs 0x01 into the byte at
	// stream offset AfterBytes — in-flight corruption the CRC must
	// catch.
	BitFlip
	// BlackHole swallows every byte of the direction it is applied to
	// (still draining the source so writers do not block): the peer
	// sees a connection that accepts traffic and never answers.
	BlackHole
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Pass:
		return "pass"
	case Delay:
		return "delay"
	case Truncate:
		return "truncate"
	case BitFlip:
		return "bitflip"
	case BlackHole:
		return "blackhole"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// PathPlan is the fault applied to one direction of a connection.
type PathPlan struct {
	Kind Kind
	// AfterBytes parameterizes Truncate (bytes forwarded before the
	// cut) and BitFlip (offset of the damaged byte; an offset beyond
	// the stream leaves it untouched).
	AfterBytes int
	// Wait parameterizes Delay.
	Wait time.Duration
}

// Plan is the complete fault schedule for one proxied connection.
// The zero value forwards everything untouched.
type Plan struct {
	// Reject closes the accepted connection before a byte moves —
	// the classic crashed-coordinator dial experience.
	Reject bool
	// Replay re-sends every byte the client sent (as sent, pre-fault)
	// on a fresh upstream connection after this one finishes: a
	// duplicated sketch delivery. Only meaningful when Up lets the
	// original message through (Pass or Delay).
	Replay bool
	// Up is applied to the client→server direction, Down to
	// server→client.
	Up, Down PathPlan
}

// String renders the plan compactly for traces.
func (p Plan) String() string {
	if p.Reject {
		return "reject"
	}
	s := fmt.Sprintf("up=%s", pathString(p.Up))
	s += fmt.Sprintf(" down=%s", pathString(p.Down))
	if p.Replay {
		s += " replay"
	}
	return s
}

func pathString(pp PathPlan) string {
	switch pp.Kind {
	case Truncate, BitFlip:
		return fmt.Sprintf("%s@%d", pp.Kind, pp.AfterBytes)
	case Delay:
		return fmt.Sprintf("%s(%s)", pp.Kind, pp.Wait)
	default:
		return pp.Kind.String()
	}
}

// A Schedule decides the fault plan for each proxied connection, by
// accept order. Implementations must be deterministic functions of the
// connection index so a chaos run can be replayed exactly.
type Schedule interface {
	PlanFor(conn int) Plan
}

// Script is the explicit Schedule: plan i applies to connection i, and
// connections beyond the script pass untouched.
type Script []Plan

// PlanFor implements Schedule.
func (s Script) PlanFor(conn int) Plan {
	if conn < len(s) {
		return s[conn]
	}
	return Plan{}
}

// Mix weights the fault kinds a Seeded schedule draws from, in percent
// of connections. The remainder passes untouched. All faults in the
// default mix are survivable by a retrying client against an
// idempotent coordinator, so a fleet pushing through a Seeded proxy
// converges to the fault-free result.
type Mix struct {
	Reject        int // refuse the connection outright
	TruncateUp    int // cut the client's frame mid-flight
	BitFlipUp     int // corrupt one client byte (CRC or payload region)
	BlackHoleDown int // absorb the message, swallow the ack (forces duplicates)
	DelayUp       int // slow the message down
	Replay        int // deliver, then deliver again (explicit duplicate)
}

// DefaultMix exercises every survivable fault with sizable
// probability while keeping more than a third of connections clean so
// retry loops terminate quickly.
var DefaultMix = Mix{
	Reject:        10,
	TruncateUp:    12,
	BitFlipUp:     12,
	BlackHoleDown: 12,
	DelayUp:       8,
	Replay:        8,
}

// Seeded returns a Schedule that derives each connection's plan
// deterministically from (seed, conn) using the default mix: the same
// seed always yields the same fault schedule, independent of timing.
func Seeded(seed uint64) Schedule { return SeededMix(seed, DefaultMix) }

// SeededMix is Seeded with explicit weights.
func SeededMix(seed uint64, mix Mix) Schedule {
	total := mix.Reject + mix.TruncateUp + mix.BitFlipUp + mix.BlackHoleDown + mix.DelayUp + mix.Replay
	if total > 100 {
		panic(fmt.Sprintf("faultnet: mix weights sum to %d%% > 100%%", total))
	}
	return seededSchedule{seed: seed, mix: mix}
}

type seededSchedule struct {
	seed uint64
	mix  Mix
}

// PlanFor implements Schedule. Every draw comes from a SplitMix64
// stream keyed by (seed, conn), so plans do not depend on the order
// PlanFor is called in.
func (s seededSchedule) PlanFor(conn int) Plan {
	rng := hashing.NewSplitMix64(s.seed ^ (uint64(conn)+1)*0x9E3779B97F4A7C15)
	roll := int(rng.Next() % 100)
	m := s.mix
	switch {
	case roll < m.Reject:
		return Plan{Reject: true}
	case roll < m.Reject+m.TruncateUp:
		// Cut somewhere inside the header or early payload; sketch
		// frames are always longer than this, so the server sees a
		// genuinely incomplete frame.
		return Plan{Up: PathPlan{Kind: Truncate, AfterBytes: 1 + int(rng.Next()%24)}}
	case roll < m.Reject+m.TruncateUp+m.BitFlipUp:
		// Flip a byte at offset >= 8: the CRC field or the payload,
		// never the length field (a damaged length can stall the read
		// until a timeout, which is survivable but slow and makes the
		// ack timing racy; the CRC path is deterministic).
		return Plan{Up: PathPlan{Kind: BitFlip, AfterBytes: 8 + int(rng.Next()%48)}}
	case roll < m.Reject+m.TruncateUp+m.BitFlipUp+m.BlackHoleDown:
		return Plan{Down: PathPlan{Kind: BlackHole}}
	case roll < m.Reject+m.TruncateUp+m.BitFlipUp+m.BlackHoleDown+m.DelayUp:
		return Plan{Up: PathPlan{Kind: Delay, Wait: time.Duration(1+rng.Next()%8) * time.Millisecond}}
	case roll < m.Reject+m.TruncateUp+m.BitFlipUp+m.BlackHoleDown+m.DelayUp+m.Replay:
		return Plan{Replay: true}
	default:
		return Plan{}
	}
}
