// Package faultnet is a deterministic, in-process TCP fault proxy for
// chaos-testing the networked referee: it sits between site clients
// and a unionstreamd coordinator on loopback and damages traffic
// according to a scripted, seed-reproducible Schedule — rejecting
// connections, delaying, truncating or bit-flipping frames,
// black-holing acks, and replaying (duplicating) delivered messages.
//
// The point is the pairing of faults with the repository's core
// algebra: coordinated sketch merges are idempotent and commutative,
// so duplicated and reordered deliveries must not change the referee's
// estimates, and a retrying client pushed through any survivable fault
// schedule must converge to the bit-identical fault-free result. The
// chaos suites in internal/server, internal/client and internal/distnet
// assert exactly that, replaying the same seed twice and comparing
// both the final merged state and the proxy's fault trace.
//
// Every byte forwarded toward the coordinator is recorded through the
// distsim byte-accounting hook (distsim.Accountant), keeping chaos
// runs comparable with the in-process simulator's communication
// accounting.
package faultnet

import (
	"bytes"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/distsim"
	"repro/internal/wire"
)

// TraceEvent records what the proxy did to one connection. Traces are
// deterministic for serial workloads: byte counts depend only on the
// frames sent and the plan applied, never on chunking or timing.
type TraceEvent struct {
	// Conn is the connection's accept-order index.
	Conn int
	// Plan is the fault plan that was applied.
	Plan Plan
	// UpBytes and DownBytes count bytes forwarded client→server and
	// server→client (after faults: a black-holed direction forwards 0).
	UpBytes, DownBytes int64
	// ReplayBytes counts bytes re-sent by a Replay plan.
	ReplayBytes int64
	// Err notes a proxy-side failure (upstream dial error), if any.
	Err string
}

// String renders the event for trace comparison.
func (e TraceEvent) String() string {
	s := fmt.Sprintf("conn %d [%s] up=%d down=%d", e.Conn, e.Plan, e.UpBytes, e.DownBytes)
	if e.Plan.Replay {
		s += fmt.Sprintf(" replayed=%d", e.ReplayBytes)
	}
	if e.Err != "" {
		s += " err=" + e.Err
	}
	return s
}

// Proxy is one listening fault injector. Create with New, point
// clients at Addr, stop with Close.
type Proxy struct {
	target string
	sched  Schedule
	acct   distsim.Accountant // optional; records forwarded up-bytes per conn

	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex // guards: trace, conns, closed
	trace  []TraceEvent
	conns  map[net.Conn]struct{}
	closed bool
}

// Option configures a Proxy.
type Option func(*Proxy)

// WithAccountant records every forwarded client→server byte through
// acct (connection index as the site), reusing the distributed
// simulator's byte-accounting hook.
func WithAccountant(acct distsim.Accountant) Option {
	return func(p *Proxy) { p.acct = acct }
}

// New starts a proxy on an ephemeral loopback port forwarding to
// target, applying sched's plan to each accepted connection in accept
// order.
func New(target string, sched Schedule, opts ...Option) (*Proxy, error) {
	if sched == nil {
		sched = Script(nil)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen: %w", err)
	}
	p := &Proxy{target: target, sched: sched, ln: ln, conns: make(map[net.Conn]struct{})}
	for _, opt := range opts {
		opt(p)
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address clients should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting, severs in-flight connections, and waits for
// every handler to finish. It is idempotent.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.ln.Close()
	p.wg.Wait()
	return nil
}

// Trace returns a copy of the per-connection fault record, ordered by
// connection index.
func (p *Proxy) Trace() []TraceEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TraceEvent, len(p.trace))
	copy(out, p.trace)
	sort.Slice(out, func(i, j int) bool { return out[i].Conn < out[j].Conn })
	return out
}

// TraceString renders the full trace, one event per line — the value
// chaos tests compare across replays of the same seed.
func (p *Proxy) TraceString() string {
	var b strings.Builder
	for _, e := range p.Trace() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for id := 0; ; id++ {
		conn, err := p.ln.Accept()
		if err != nil {
			return // Close closed the listener
		}
		plan := p.sched.PlanFor(id)
		if plan.Reject {
			conn.Close()
			p.record(TraceEvent{Conn: id, Plan: plan})
			continue
		}
		p.track(conn, true)
		p.wg.Add(1)
		go p.handle(id, conn, plan)
	}
}

func (p *Proxy) track(c net.Conn, add bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if add {
		if p.closed {
			// Lost the race with Close: refuse late connections.
			c.Close()
			return
		}
		p.conns[c] = struct{}{}
	} else {
		delete(p.conns, c)
	}
}

func (p *Proxy) record(e TraceEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.trace = append(p.trace, e)
}

// handle proxies one client connection through its fault plan.
func (p *Proxy) handle(id int, client net.Conn, plan Plan) {
	defer p.wg.Done()
	defer p.track(client, false)
	ev := TraceEvent{Conn: id, Plan: plan}

	upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		client.Close()
		ev.Err = "upstream dial failed"
		p.record(ev)
		return
	}
	p.track(upstream, true)
	defer p.track(upstream, false)

	// Record the client's original bytes (pre-fault) when the plan
	// replays them as a duplicate delivery.
	var tee *bytes.Buffer
	if plan.Replay {
		tee = &bytes.Buffer{}
	}

	upDone := make(chan int64, 1)
	go func() {
		n := pump(upstream, client, plan.Up, tee)
		closeWrite(upstream) // propagate the client's EOF to the server
		upDone <- n
	}()
	ev.DownBytes = pump(client, upstream, plan.Down, nil)
	closeWrite(client)
	ev.UpBytes = <-upDone
	client.Close()
	upstream.Close()

	if plan.Replay && tee != nil && tee.Len() > 0 {
		ev.ReplayBytes = p.replay(tee.Bytes())
	}
	if p.acct != nil {
		p.acct.Record(id, int(ev.UpBytes))
	}
	p.record(ev)
}

// replay re-delivers recorded client bytes on a fresh upstream
// connection — a duplicated message the coordinator must absorb
// idempotently — and reads (and discards) one reply frame.
func (p *Proxy) replay(b []byte) int64 {
	conn, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		return 0
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write(b); err != nil {
		return 0
	}
	// Wait for the coordinator's ack so the duplicate is fully
	// absorbed before the proxy reports the connection done; the
	// reply's content is irrelevant.
	_, _, _ = wire.ReadFrame(conn, 0)
	return int64(len(b))
}

// pump forwards src→dst applying pp, returning the bytes actually
// forwarded. It returns when src is exhausted, dst refuses a write, or
// a Truncate cut fires (which hard-closes both ends).
func pump(dst, src net.Conn, pp PathPlan, tee *bytes.Buffer) int64 {
	if pp.Kind == Delay && pp.Wait > 0 {
		time.Sleep(pp.Wait)
	}
	var fwd int64
	buf := make([]byte, 32*1024)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if tee != nil {
				tee.Write(chunk)
			}
			switch pp.Kind {
			case BlackHole:
				// Swallow: drain src so its writer never blocks, but
				// forward nothing.
			case Truncate:
				keep := int64(pp.AfterBytes) - fwd
				if keep > int64(n) {
					keep = int64(n)
				}
				if keep > 0 {
					if _, werr := dst.Write(chunk[:keep]); werr != nil {
						return fwd
					}
					fwd += keep
				}
				if fwd >= int64(pp.AfterBytes) {
					// The cut: both directions die mid-frame.
					src.Close()
					dst.Close()
					return fwd
				}
			default:
				if pp.Kind == BitFlip {
					if idx := int64(pp.AfterBytes) - fwd; idx >= 0 && idx < int64(n) {
						chunk[idx] ^= 0x01
					}
				}
				if _, werr := dst.Write(chunk); werr != nil {
					return fwd
				}
				fwd += int64(n)
			}
		}
		if rerr != nil {
			return fwd
		}
	}
}

// closeWrite half-closes c's write side when possible (propagating EOF
// while the other direction keeps flowing), falling back to a full
// close.
func closeWrite(c net.Conn) {
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := c.(closeWriter); ok {
		cw.CloseWrite()
		return
	}
	c.Close()
}
