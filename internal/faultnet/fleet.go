package faultnet

import (
	"errors"
	"fmt"
	"strings"
)

// Fleet is one Proxy per coordinator in a multi-coordinator topology:
// the cluster chaos suites put an independently scheduled proxy in
// front of every shard and one more on the shard→parent relay link,
// so faults hit each hop of the aggregation tree separately. Each
// proxy gets its own deterministic schedule, so a fleet trace replays
// exactly like a single proxy's.
type Fleet struct {
	proxies []*Proxy
}

// NewFleet proxies each target with the schedule schedFor returns for
// its index. On any listen failure the proxies already started are
// closed before the error returns.
func NewFleet(targets []string, schedFor func(i int) Schedule, opts ...Option) (*Fleet, error) {
	f := &Fleet{proxies: make([]*Proxy, len(targets))}
	for i, target := range targets {
		p, err := New(target, schedFor(i), opts...)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("faultnet: fleet proxy %d for %s: %w", i, target, err)
		}
		f.proxies[i] = p
	}
	return f, nil
}

// Addrs returns the proxies' listen addresses, index-aligned with the
// targets — hand these to the dialing side in place of the real ones.
func (f *Fleet) Addrs() []string {
	addrs := make([]string, len(f.proxies))
	for i, p := range f.proxies {
		if p != nil {
			addrs[i] = p.Addr()
		}
	}
	return addrs
}

// Proxy returns the i-th proxy.
func (f *Fleet) Proxy(i int) *Proxy { return f.proxies[i] }

// Close shuts every proxy down.
func (f *Fleet) Close() error {
	var errs []error
	for _, p := range f.proxies {
		if p != nil {
			errs = append(errs, p.Close())
		}
	}
	return errors.Join(errs...)
}

// TraceString renders every proxy's fault trace, labeled by index, in
// a stable order — the fleet-wide replay artifact.
func (f *Fleet) TraceString() string {
	var b strings.Builder
	for i, p := range f.proxies {
		if p == nil {
			continue
		}
		fmt.Fprintf(&b, "proxy %d:\n%s", i, p.TraceString())
	}
	return b.String()
}
