package window

import (
	"encoding/binary"
	"fmt"

	"repro/internal/hashing"
	"repro/internal/sketch"
)

// ErrCorrupt is returned when decoding a malformed window sketch.
var ErrCorrupt = fmt.Errorf("window: corrupt sketch encoding: %w", sketch.ErrCorrupt)

// Wire format (little endian, varints for counts):
//
//	magic "GW1"            3 bytes
//	seed                   8 bytes
//	capacity               uvarint
//	maxLevel               uvarint
//	seen                   1 byte (0/1)
//	lastTS                 uvarint
//	levels                 uvarint (= maxLevel+1)
//	per level:
//	    evicted            1 byte (0/1)
//	    evictedTo          uvarint
//	    count              uvarint
//	    entries oldest→newest:
//	        ts delta       uvarint (first absolute)
//	        label          uvarint
//
// The decoder re-derives every label's hash level and rejects entries
// that do not belong in their level, so an uncoordinated or corrupted
// message cannot silently poison a merge.

// MarshalBinary encodes the sketch. Entries are written in recency
// order, so equal states encode identically.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	b := []byte{'G', 'W', '1'}
	b = binary.LittleEndian.AppendUint64(b, s.cfg.Seed)
	b = binary.AppendUvarint(b, uint64(s.cfg.Capacity))
	b = binary.AppendUvarint(b, uint64(s.cfg.MaxLevel))
	if s.seen {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, s.lastTS)
	b = binary.AppendUvarint(b, uint64(len(s.levels)))
	for _, ls := range s.levels {
		if ls.evicted {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.AppendUvarint(b, ls.evictedTo)
		b = binary.AppendUvarint(b, uint64(len(ls.idx)))
		// Walk oldest → newest so the decoder can rebuild by touch().
		prev := uint64(0)
		first := true
		for i := ls.tail; i >= 0; i = ls.entries[i].prev {
			e := ls.entries[i]
			if first {
				b = binary.AppendUvarint(b, e.ts)
				first = false
			} else {
				b = binary.AppendUvarint(b, e.ts-prev)
			}
			prev = e.ts
			b = binary.AppendUvarint(b, e.label)
		}
	}
	return b, nil
}

// UnmarshalBinary decodes a sketch encoded by MarshalBinary, replacing
// s's state entirely.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 14 || data[0] != 'G' || data[1] != 'W' || data[2] != '1' {
		return fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	seed := binary.LittleEndian.Uint64(data[3:11])
	d := wdecoder{buf: data[11:]}
	capacity, err := d.uvarint("capacity")
	if err != nil {
		return err
	}
	if capacity == 0 || capacity > 1<<32 {
		return fmt.Errorf("%w: implausible capacity %d", ErrCorrupt, capacity)
	}
	maxLevel, err := d.uvarint("maxLevel")
	if err != nil {
		return err
	}
	if maxLevel > hashing.MaxLevel {
		return fmt.Errorf("%w: maxLevel %d out of range", ErrCorrupt, maxLevel)
	}
	seenByte, err := d.byte("seen flag")
	if err != nil {
		return err
	}
	if seenByte > 1 {
		return fmt.Errorf("%w: bad seen flag %d", ErrCorrupt, seenByte)
	}
	lastTS, err := d.uvarint("lastTS")
	if err != nil {
		return err
	}
	numLevels, err := d.uvarint("level count")
	if err != nil {
		return err
	}
	if numLevels != maxLevel+1 {
		return fmt.Errorf("%w: %d levels for maxLevel %d", ErrCorrupt, numLevels, maxLevel)
	}

	tmp := New(Config{Capacity: int(capacity), Seed: seed, MaxLevel: int(maxLevel)})
	tmp.seen = seenByte == 1
	tmp.lastTS = lastTS
	for lvl := 0; lvl < int(numLevels); lvl++ {
		evictedByte, err := d.byte("evicted flag")
		if err != nil {
			return err
		}
		if evictedByte > 1 {
			return fmt.Errorf("%w: bad evicted flag", ErrCorrupt)
		}
		evictedTo, err := d.uvarint("eviction horizon")
		if err != nil {
			return err
		}
		count, err := d.uvarint("entry count")
		if err != nil {
			return err
		}
		if count > capacity {
			return fmt.Errorf("%w: level %d holds %d > capacity %d", ErrCorrupt, lvl, count, capacity)
		}
		if count > uint64(len(d.buf))+1 {
			return fmt.Errorf("%w: level %d count exceeds payload", ErrCorrupt, lvl)
		}
		ls := tmp.levels[lvl]
		ls.evicted = evictedByte == 1
		ls.evictedTo = evictedTo
		var ts uint64
		for i := uint64(0); i < count; i++ {
			delta, err := d.uvarint("timestamp")
			if err != nil {
				return err
			}
			if i == 0 {
				ts = delta
			} else {
				next := ts + delta
				if next < ts {
					return fmt.Errorf("%w: timestamp overflow", ErrCorrupt)
				}
				ts = next
			}
			label, err := d.uvarint("label")
			if err != nil {
				return err
			}
			elvl := hashing.GeometricLevel(tmp.hash.Hash(label))
			if elvl > int(maxLevel) {
				elvl = int(maxLevel)
			}
			if elvl < lvl {
				return fmt.Errorf("%w: label %d (level %d) in level-%d sample", ErrCorrupt, label, elvl, lvl)
			}
			if _, dup := ls.idx[label]; dup {
				return fmt.Errorf("%w: duplicate label %d in level %d", ErrCorrupt, label, lvl)
			}
			if ts > lastTS {
				return fmt.Errorf("%w: entry timestamp %d beyond lastTS %d", ErrCorrupt, ts, lastTS)
			}
			ls.touch(label, ts, int(capacity))
		}
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf))
	}
	*s = *tmp
	return nil
}

// Decode decodes a window sketch into a fresh value.
func Decode(data []byte) (*Sketch, error) {
	s := &Sketch{}
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return s, nil
}

// SizeBytes returns the wire-encoding length — the per-party message
// cost in the distributed sliding-window model.
func (s *Sketch) SizeBytes() int {
	b, _ := s.MarshalBinary()
	return len(b)
}

type wdecoder struct {
	buf []byte
}

func (d *wdecoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated %s", ErrCorrupt, what)
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *wdecoder) byte(what string) (byte, error) {
	if len(d.buf) == 0 {
		return 0, fmt.Errorf("%w: truncated %s", ErrCorrupt, what)
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v, nil
}
