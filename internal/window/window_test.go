package window

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/hashing"
)

func TestSmallStreamExact(t *testing.T) {
	s := New(Config{Capacity: 1024, Seed: 1})
	for ts := uint64(1); ts <= 100; ts++ {
		if err := s.Process(ts, ts); err != nil { // label == ts, all distinct
			t.Fatal(err)
		}
	}
	// No eviction anywhere: every window is exact at level 0.
	got, err := s.EstimateDistinctSince(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Errorf("full window = %v, want 100", got)
	}
	got, err = s.EstimateDistinctSince(51)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("half window = %v, want 50", got)
	}
	got, err = s.EstimateDistinctWindow(10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("width-10 window = %v, want 10", got)
	}
}

func TestDuplicatesCountOnce(t *testing.T) {
	s := New(Config{Capacity: 64, Seed: 2})
	for ts := uint64(1); ts <= 1000; ts++ {
		if err := s.Process(ts%10, ts); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.EstimateDistinctSince(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("distinct = %v, want 10", got)
	}
	// A window of the last 5 timestamps holds 5 distinct labels.
	got, err = s.EstimateDistinctWindow(5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("last-5 window = %v, want 5", got)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	s := New(Config{Capacity: 8, Seed: 1})
	if err := s.Process(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Process(2, 9); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("out-of-order accepted: %v", err)
	}
	if err := s.Process(3, 10); err != nil {
		t.Errorf("equal timestamp rejected: %v", err)
	}
}

func TestWindowedAccuracy(t *testing.T) {
	// A long stream of fresh labels; query several window widths and
	// compare against exact recomputation.
	const n = 200_000
	s := New(Config{Capacity: 4096, Seed: 42})
	labels := make([]uint64, n)
	r := hashing.NewXoshiro256(3)
	for ts := 0; ts < n; ts++ {
		labels[ts] = r.Uint64n(n / 2)
		if err := s.Process(labels[ts], uint64(ts)); err != nil {
			t.Fatal(err)
		}
	}
	for _, width := range []uint64{1000, 10_000, 100_000} {
		start := uint64(n) - width
		truth := exact.NewDistinct()
		for ts := start; ts < n; ts++ {
			truth.Process(labels[ts])
		}
		got, err := s.EstimateDistinctSince(start)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		rel := math.Abs(got-float64(truth.Count())) / float64(truth.Count())
		if rel > 0.12 {
			t.Errorf("width %d: est %.0f vs %d (rel %.3f)", width, got, truth.Count(), rel)
		}
	}
}

func TestSlidingForgetsThePast(t *testing.T) {
	// Phase 1 floods labels [0, 50k); phase 2 uses only 100 labels.
	// A window covering just phase 2 must report ~100, not 50k.
	s := New(Config{Capacity: 1024, Seed: 7})
	ts := uint64(0)
	for x := uint64(0); x < 50_000; x++ {
		ts++
		if err := s.Process(x, ts); err != nil {
			t.Fatal(err)
		}
	}
	phase2 := ts + 1
	for i := 0; i < 10_000; i++ {
		ts++
		if err := s.Process(1_000_000+uint64(i%100), ts); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.EstimateDistinctSince(phase2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		// Level 0 retains the last 1024 distinct labels, which covers
		// the 100-label phase exactly.
		t.Errorf("phase-2 window = %v, want exactly 100", got)
	}
}

func TestUncovered(t *testing.T) {
	s := New(Config{Capacity: 4, Seed: 9, MaxLevel: 2})
	for ts := uint64(1); ts <= 10_000; ts++ {
		if err := s.Process(ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	// With capacity 4 and only 3 levels, a full-history window cannot
	// be covered.
	if _, err := s.EstimateDistinctSince(1); !errors.Is(err, ErrUncovered) {
		t.Errorf("expected ErrUncovered, got %v", err)
	}
	// A recent window still works.
	if _, err := s.EstimateDistinctSince(9_999); err != nil {
		t.Errorf("recent window failed: %v", err)
	}
}

func TestEmptySketch(t *testing.T) {
	s := New(Config{Capacity: 8, Seed: 1})
	got, err := s.EstimateDistinctWindow(100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("empty sketch window = %v", got)
	}
	if s.LastTimestamp() != 0 {
		t.Errorf("LastTimestamp = %d", s.LastTimestamp())
	}
}

func TestMergeMatchesUnionStream(t *testing.T) {
	// Two interleaved streams; the merged sketch must answer like a
	// sketch of the interleaving (which, for windows with no eviction
	// at level 0, is exact on both paths).
	cfg := Config{Capacity: 2048, Seed: 11}
	a, b, both := New(cfg), New(cfg), New(cfg)
	r := hashing.NewXoshiro256(5)
	for ts := uint64(1); ts <= 3000; ts++ {
		label := r.Uint64n(800)
		var err error
		if ts%2 == 0 {
			err = a.Process(label, ts)
		} else {
			err = b.Process(label, ts)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := both.Process(label, ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for _, start := range []uint64{1, 1500, 2900} {
		ma, err := a.EstimateDistinctSince(start)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := both.EstimateDistinctSince(start)
		if err != nil {
			t.Fatal(err)
		}
		if ma != mb {
			t.Errorf("start %d: merged %v != union-stream %v", start, ma, mb)
		}
	}
	if a.LastTimestamp() != both.LastTimestamp() {
		t.Error("merged LastTimestamp wrong")
	}
}

func TestMergeWithEviction(t *testing.T) {
	// Big per-site streams force evictions; merged window estimates
	// must stay accurate for covered windows.
	cfg := Config{Capacity: 2048, Seed: 13}
	a, b := New(cfg), New(cfg)
	truth := exact.NewDistinct()
	const n = 100_000
	const windowStart = n - 20_000
	r := hashing.NewXoshiro256(9)
	for ts := uint64(0); ts < n; ts++ {
		la := r.Uint64n(n / 4)
		lb := r.Uint64n(n/4) + n/8 // overlapping label ranges
		if err := a.Process(la, ts); err != nil {
			t.Fatal(err)
		}
		if err := b.Process(lb, ts); err != nil {
			t.Fatal(err)
		}
		if ts >= windowStart {
			truth.Process(la)
			truth.Process(lb)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got, err := a.EstimateDistinctSince(windowStart)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(got-float64(truth.Count())) / float64(truth.Count())
	if rel > 0.15 {
		t.Errorf("merged window est %.0f vs %d (rel %.3f)", got, truth.Count(), rel)
	}
}

func TestMergeMismatch(t *testing.T) {
	a := New(Config{Capacity: 8, Seed: 1})
	if err := a.Merge(New(Config{Capacity: 8, Seed: 2})); !errors.Is(err, ErrMismatch) {
		t.Error("seed mismatch accepted")
	}
	if err := a.Merge(New(Config{Capacity: 16, Seed: 1})); !errors.Is(err, ErrMismatch) {
		t.Error("capacity mismatch accepted")
	}
	if err := a.Merge(nil); !errors.Is(err, ErrMismatch) {
		t.Error("nil accepted")
	}
}

func TestMemoryBounded(t *testing.T) {
	s := New(Config{Capacity: 256, Seed: 3, MaxLevel: 20})
	for ts := uint64(0); ts < 500_000; ts++ {
		if err := s.Process(ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	if got, max := s.MemoryEntries(), 21*256; got > max {
		t.Errorf("MemoryEntries = %d exceeds levels*capacity = %d", got, max)
	}
}

func TestNewPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"capacity": {Capacity: 0},
		"level":    {Capacity: 4, MaxLevel: 99},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestRefreshKeepsLabelAlive(t *testing.T) {
	// A label refreshed every step must survive any eviction pressure
	// and appear in the tightest window.
	s := New(Config{Capacity: 64, Seed: 17})
	for ts := uint64(1); ts <= 50_000; ts++ {
		if err := s.Process(999_999_999, ts); err != nil { // the evergreen label
			t.Fatal(err)
		}
		if err := s.Process(ts, ts); err != nil { // churn
			t.Fatal(err)
		}
	}
	got, err := s.EstimateDistinctWindow(2)
	if err != nil {
		t.Fatal(err)
	}
	// Window of the last 2 timestamps: evergreen + 2 churn labels.
	if got < 2 || got > 16 {
		t.Errorf("tight window = %v, want small and positive", got)
	}
}

func buildWindowTriple(seed uint64) (a, b, c *Sketch) {
	cfg := Config{Capacity: 32, Seed: 1234, MaxLevel: 12}
	r := hashing.NewXoshiro256(seed)
	mk := func() *Sketch {
		s := New(cfg)
		n := 200 + r.Intn(2000)
		for ts := uint64(1); ts <= uint64(n); ts++ {
			if err := s.Process(r.Uint64n(500), ts); err != nil {
				panic(err)
			}
		}
		return s
	}
	return mk(), mk(), mk()
}

func TestWindowMergeCommutative(t *testing.T) {
	f := func(seed uint64) bool {
		a, b, _ := buildWindowTriple(seed)
		ab, ba := clone(t, a), clone(t, b)
		if err := ab.Merge(b); err != nil {
			return false
		}
		if err := ba.Merge(a); err != nil {
			return false
		}
		x, _ := ab.MarshalBinary()
		y, _ := ba.MarshalBinary()
		return string(x) == string(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWindowMergeAssociativeEstimates(t *testing.T) {
	// Window merge trims to the most recent Capacity entries, so
	// unlike the infinite-window sampler, intermediate trims can
	// differ bit-for-bit across association orders; the *answers* for
	// covered windows must still agree.
	f := func(seed uint64) bool {
		a, b, c := buildWindowTriple(seed)
		left := clone(t, a)
		if err := left.Merge(b); err != nil {
			return false
		}
		if err := left.Merge(c); err != nil {
			return false
		}
		bc := clone(t, b)
		if err := bc.Merge(c); err != nil {
			return false
		}
		right := clone(t, a)
		if err := right.Merge(bc); err != nil {
			return false
		}
		for _, back := range []uint64{1, 10, 100} {
			start := uint64(0)
			if left.LastTimestamp() > back {
				start = left.LastTimestamp() - back
			}
			x, errX := left.EstimateDistinctSince(start)
			y, errY := right.EstimateDistinctSince(start)
			if (errX == nil) != (errY == nil) {
				return false
			}
			if errX == nil && x != y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func clone(t *testing.T, s *Sketch) *Sketch {
	t.Helper()
	enc, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
