// Package window extends the coordinated sampling scheme to sliding
// windows: estimating the number of distinct labels among the W most
// recent timestamps of one or more distributed streams. This is the
// extension the SPAA 2001 paper's model points to and its authors
// developed next ("Distributed streams algorithms for sliding
// windows", SPAA 2002); it is included as the repository's
// future-work reproduction.
//
// # Design
//
// The infinite-window sampler cannot support windows directly: once
// its level rises it can never fall, but in a sliding window old
// labels expire and the distinct count can shrink. The fix (following
// the 2002 paper's structure) is to maintain one bounded sample PER
// LEVEL ℓ ∈ {0..maxLevel}: the capacity most recently seen distinct
// labels whose hash level is at least ℓ, each with its latest
// timestamp. Level ℓ's sample is exactly the set of the most recent
// distinct level-≥ℓ labels, so it can answer any window query it
// "covers":
//
//   - if level ℓ has never evicted, it covers every window;
//   - otherwise it covers windows that start at or after the eviction
//     horizon (the latest timestamp it has dropped).
//
// A query for window W finds the smallest covering level ℓ and returns
// |{x in level-ℓ sample : ts(x) ≥ start}| · 2^ℓ — the same estimator as
// the infinite-window sampler, applied to the window-restricted
// coordinated sample. Space is O(levels · capacity), i.e. an extra
// log m factor over the infinite-window sketch, matching the 2002
// paper's bounds regime.
//
// Samples at the same seed are coordinated across streams, so
// per-stream sketches merge into a sketch of the union (taking the
// per-label latest timestamp and the stricter eviction horizon).
//
// Timestamps must be non-decreasing per stream (the standard
// synchronous-arrivals model); Process returns an error otherwise.
package window

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/hashing"
	"repro/internal/sketch"
)

// Errors returned by this package.
var (
	// ErrMismatch is returned when merging incompatible sketches.
	ErrMismatch = fmt.Errorf("window: cannot merge sketches with different configurations: %w", sketch.ErrMismatch)
	// ErrOutOfOrder is returned for a timestamp below a previous one.
	ErrOutOfOrder = errors.New("window: timestamps must be non-decreasing")
	// ErrUncovered is returned when a queried window reaches further
	// back than every level's sample can certify; callers can retry
	// with a smaller window or a larger capacity.
	ErrUncovered = errors.New("window: window too large for retained state")
)

// Config parameterizes a window Sketch.
type Config struct {
	// Capacity is the per-level sample size, c = Θ(1/ε²).
	Capacity int
	// Seed is the shared coordination seed.
	Seed uint64
	// MaxLevel bounds the retained levels (0 keeps the natural
	// hashing.MaxLevel, which is always safe; smaller values save
	// space when the distinct rate is known to be bounded).
	MaxLevel int
}

// entry is one retained (label, latest timestamp) pair within a level.
type entry struct {
	label uint64
	ts    uint64
	prev  int // doubly linked list by recency, -1 = none
	next  int
}

// levelSample is the bounded most-recent-distinct sample for one
// level: a map for dedup plus an intrusive LRU list ordered by latest
// timestamp. evictedTo is the eviction horizon — the largest timestamp
// ever evicted (0 when nothing has been evicted).
type levelSample struct {
	idx       map[uint64]int
	entries   []entry
	free      []int
	head      int // most recent
	tail      int // least recent
	evicted   bool
	evictedTo uint64
}

func newLevelSample(capacity int) *levelSample {
	return &levelSample{
		idx:  make(map[uint64]int, capacity+1),
		head: -1, tail: -1,
	}
}

// touch inserts or refreshes label at ts (ts ≥ all prior ts).
func (ls *levelSample) touch(label uint64, ts uint64, capacity int) {
	if i, ok := ls.idx[label]; ok {
		ls.unlink(i)
		ls.entries[i].ts = ts
		ls.linkFront(i)
		return
	}
	var i int
	if n := len(ls.free); n > 0 {
		i = ls.free[n-1]
		ls.free = ls.free[:n-1]
		// allocflow:amortized writes into the recycled entry slab, no per-call heap allocation
		ls.entries[i] = entry{label: label, ts: ts, prev: -1, next: -1}
	} else {
		i = len(ls.entries)
		// allocflow:amortized entry slab grows to capacity once, then recycles via the free list
		ls.entries = append(ls.entries, entry{label: label, ts: ts, prev: -1, next: -1})
	}
	ls.idx[label] = i
	ls.linkFront(i)
	if len(ls.idx) > capacity {
		ls.evictOldest()
	}
}

func (ls *levelSample) linkFront(i int) {
	ls.entries[i].prev = -1
	ls.entries[i].next = ls.head
	if ls.head >= 0 {
		ls.entries[ls.head].prev = i
	}
	ls.head = i
	if ls.tail < 0 {
		ls.tail = i
	}
}

func (ls *levelSample) unlink(i int) {
	e := ls.entries[i]
	if e.prev >= 0 {
		ls.entries[e.prev].next = e.next
	} else {
		ls.head = e.next
	}
	if e.next >= 0 {
		ls.entries[e.next].prev = e.prev
	} else {
		ls.tail = e.prev
	}
}

func (ls *levelSample) evictOldest() {
	i := ls.tail
	if i < 0 {
		return
	}
	e := ls.entries[i]
	ls.unlink(i)
	delete(ls.idx, e.label)
	// allocflow:amortized free-list capacity is bounded by the entry slab it indexes
	ls.free = append(ls.free, i)
	ls.evicted = true
	if e.ts > ls.evictedTo {
		ls.evictedTo = e.ts
	}
}

// covers reports whether this sample certifiably contains every
// distinct level-qualified label with timestamp ≥ start.
func (ls *levelSample) covers(start uint64) bool {
	return !ls.evicted || ls.evictedTo < start
}

// countSince returns the number of retained labels with ts ≥ start.
func (ls *levelSample) countSince(start uint64) int {
	n := 0
	for i := ls.head; i >= 0; i = ls.entries[i].next {
		if ls.entries[i].ts < start {
			break // list is ordered by recency
		}
		n++
	}
	return n
}

// Sketch estimates distinct counts over sliding windows of one or
// more coordinated streams. Construct with New; not safe for
// concurrent use.
type Sketch struct {
	cfg    Config
	hash   hashing.Pairwise
	levels []*levelSample
	lastTS uint64
	seen   bool
}

// New returns an empty window sketch. It panics if cfg.Capacity < 1
// or MaxLevel is negative or exceeds hashing.MaxLevel.
func New(cfg Config) *Sketch {
	if cfg.Capacity < 1 {
		panic(fmt.Sprintf("window: capacity must be >= 1, got %d", cfg.Capacity))
	}
	if cfg.MaxLevel == 0 {
		cfg.MaxLevel = hashing.MaxLevel
	}
	if cfg.MaxLevel < 0 || cfg.MaxLevel > hashing.MaxLevel {
		panic(fmt.Sprintf("window: MaxLevel %d out of range", cfg.MaxLevel))
	}
	s := &Sketch{
		cfg:    cfg,
		hash:   hashing.NewPairwise(cfg.Seed),
		levels: make([]*levelSample, cfg.MaxLevel+1),
	}
	for i := range s.levels {
		s.levels[i] = newLevelSample(cfg.Capacity)
	}
	return s
}

// Config returns the sketch's configuration.
func (s *Sketch) Config() Config { return s.cfg }

// Process observes label at timestamp ts. Timestamps must be
// non-decreasing within the stream.
func (s *Sketch) Process(label uint64, ts uint64) error {
	if s.seen && ts < s.lastTS {
		// allocflow:cold out-of-order timestamps are a caller contract violation
		return fmt.Errorf("%w: %d after %d", ErrOutOfOrder, ts, s.lastTS)
	}
	s.lastTS = ts
	s.seen = true
	lvl := hashing.GeometricLevel(s.hash.Hash(label))
	if lvl > s.cfg.MaxLevel {
		lvl = s.cfg.MaxLevel
	}
	for i := 0; i <= lvl; i++ {
		s.levels[i].touch(label, ts, s.cfg.Capacity)
	}
	return nil
}

// LastTimestamp returns the latest timestamp observed (0 before any).
func (s *Sketch) LastTimestamp() uint64 { return s.lastTS }

// EstimateDistinctSince estimates the number of distinct labels with
// timestamp ≥ start, across everything merged into s. It returns
// ErrUncovered if no retained level can certify coverage of that far
// back a window.
func (s *Sketch) EstimateDistinctSince(start uint64) (float64, error) {
	for lvl, ls := range s.levels {
		if !ls.covers(start) {
			continue
		}
		return float64(ls.countSince(start)) * float64(uint64(1)<<uint(lvl)), nil
	}
	return 0, fmt.Errorf("%w: start=%d", ErrUncovered, start)
}

// EstimateDistinctWindow estimates the distinct count among the last
// width timestamp units, i.e. timestamps > LastTimestamp() - width.
func (s *Sketch) EstimateDistinctWindow(width uint64) (float64, error) {
	if !s.seen {
		return 0, nil
	}
	var start uint64
	if width <= s.lastTS {
		start = s.lastTS - width + 1
	}
	return s.EstimateDistinctSince(start)
}

// Merge folds other into s, producing a sketch of the union of the
// two streams: per-level union of samples (latest timestamp wins per
// label), trimmed to the most recent Capacity labels, with eviction
// horizons combined conservatively. Configurations must match.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return fmt.Errorf("%w: nil sketch", ErrMismatch)
	}
	if s.cfg != other.cfg {
		return fmt.Errorf("%w: %+v vs %+v", ErrMismatch, s.cfg, other.cfg)
	}
	for lvl := range s.levels {
		s.levels[lvl] = mergeLevel(s.levels[lvl], other.levels[lvl], s.cfg.Capacity)
	}
	if other.lastTS > s.lastTS {
		s.lastTS = other.lastTS
	}
	s.seen = s.seen || other.seen
	return nil
}

// mergeLevel merges two level samples into a fresh one.
func mergeLevel(a, b *levelSample, capacity int) *levelSample {
	// Collect the union with per-label max timestamp.
	union := make(map[uint64]uint64, len(a.idx)+len(b.idx))
	for label, i := range a.idx {
		union[label] = a.entries[i].ts
	}
	for label, i := range b.idx {
		if ts := b.entries[i].ts; ts > union[label] {
			union[label] = ts
		}
	}
	out := newLevelSample(capacity)
	out.evicted = a.evicted || b.evicted
	if a.evictedTo > out.evictedTo {
		out.evictedTo = a.evictedTo
	}
	if b.evictedTo > out.evictedTo {
		out.evictedTo = b.evictedTo
	}
	// Insert in increasing (timestamp, label) order so the recency
	// list is correct, trimming evicts the oldest first, and merge
	// results are deterministic.
	type pair struct {
		label, ts uint64
	}
	pairs := make([]pair, 0, len(union))
	for label, ts := range union {
		pairs = append(pairs, pair{label, ts})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].ts != pairs[j].ts {
			return pairs[i].ts < pairs[j].ts
		}
		return pairs[i].label < pairs[j].label
	})
	for _, p := range pairs {
		out.touch(p.label, p.ts, capacity)
	}
	return out
}

// MemoryEntries returns the total retained (label, timestamp) entries
// across levels — the sketch's space in units of entries.
func (s *Sketch) MemoryEntries() int {
	n := 0
	for _, ls := range s.levels {
		n += len(ls.idx)
	}
	return n
}
