package window

import (
	"errors"
	"testing"

	"repro/internal/hashing"
)

func builtWindowSketch(t *testing.T, seed uint64, n int) *Sketch {
	t.Helper()
	s := New(Config{Capacity: 64, Seed: seed, MaxLevel: 16})
	r := hashing.NewXoshiro256(seed ^ 0xff)
	for ts := uint64(1); ts <= uint64(n); ts++ {
		if err := s.Process(r.Uint64n(uint64(n)/2+1), ts); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestWindowMarshalRoundTrip(t *testing.T) {
	s := builtWindowSketch(t, 3, 20000)
	enc, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical re-encoding.
	enc2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Error("encoding not canonical across round trip")
	}
	if got.LastTimestamp() != s.LastTimestamp() {
		t.Error("lastTS changed")
	}
	// Same answers for several windows.
	for _, start := range []uint64{19990, 19000, 15000} {
		a, errA := s.EstimateDistinctSince(start)
		b, errB := got.EstimateDistinctSince(start)
		if (errA == nil) != (errB == nil) || a != b {
			t.Errorf("start %d: (%v,%v) vs (%v,%v)", start, a, errA, b, errB)
		}
	}
	// Decoded sketch keeps processing correctly.
	if err := got.Process(12345, got.LastTimestamp()+1); err != nil {
		t.Fatal(err)
	}
}

func TestWindowMarshalEmpty(t *testing.T) {
	s := New(Config{Capacity: 8, Seed: 1, MaxLevel: 4})
	enc, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	est, err := got.EstimateDistinctWindow(100)
	if err != nil || est != 0 {
		t.Errorf("empty decode: est %v err %v", est, err)
	}
}

func TestWindowMergeDecodedMatchesLive(t *testing.T) {
	cfg := Config{Capacity: 128, Seed: 9, MaxLevel: 16}
	mk := func(offset uint64) *Sketch {
		s := New(cfg)
		for ts := uint64(1); ts <= 5000; ts++ {
			if err := s.Process(ts+offset, ts); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	a1, a2 := mk(0), mk(0)
	b := mk(2500)
	enc, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.Merge(decoded); err != nil {
		t.Fatal(err)
	}
	if err := a2.Merge(b); err != nil {
		t.Fatal(err)
	}
	x, _ := a1.MarshalBinary()
	y, _ := a2.MarshalBinary()
	if string(x) != string(y) {
		t.Error("merge of decoded sketch differs from live merge")
	}
}

func TestWindowUnmarshalCorrupt(t *testing.T) {
	s := builtWindowSketch(t, 5, 3000)
	enc, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, data []byte) {
		t.Helper()
		var d Sketch
		if err := d.UnmarshalBinary(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	check("empty", nil)
	check("short", enc[:8])
	check("magic", append([]byte("XXX"), enc[3:]...))
	check("truncated", enc[:len(enc)-1])
	check("trailing", append(append([]byte{}, enc...), 9))
	// Seed flip makes the level membership checks fire.
	seedFlip := append([]byte{}, enc...)
	seedFlip[4] ^= 0xff
	check("seed flip", seedFlip)
}

func TestWindowUnmarshalRandomNeverPanics(t *testing.T) {
	s := builtWindowSketch(t, 7, 2000)
	enc, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := hashing.NewXoshiro256(1)
	for trial := 0; trial < 2000; trial++ {
		var data []byte
		if trial%2 == 0 {
			data = make([]byte, r.Intn(150))
			for i := range data {
				data[i] = byte(r.Uint64())
			}
		} else {
			data = append([]byte{}, enc...)
			for k := 0; k < 1+r.Intn(5); k++ {
				data[r.Intn(len(data))] = byte(r.Uint64())
			}
		}
		var d Sketch
		if err := d.UnmarshalBinary(data); err == nil {
			// Usable if accepted.
			_ = d.MemoryEntries()
			if _, err := d.MarshalBinary(); err != nil {
				t.Fatalf("trial %d: re-encode failed: %v", trial, err)
			}
		}
	}
}

func TestWindowSizeBytesBounded(t *testing.T) {
	s := builtWindowSketch(t, 11, 100000)
	// Entries are bounded by levels × capacity; bytes should be well
	// under 32 B/entry.
	if max := 32 * s.MemoryEntries(); s.SizeBytes() > max {
		t.Errorf("SizeBytes %d > %d", s.SizeBytes(), max)
	}
}
