package window

import (
	"fmt"
	"math"

	"repro/internal/sketch"
)

// Union adapts the timestamped window Sketch to the untimestamped
// sketch.Sketch contract, which is what registers the window
// extension as sketch.KindWindow. Process stamps each label with an
// internal logical clock (one tick per call), so a Union observed
// over a whole stream estimates that stream's distinct count like any
// other kind — while the wrapped Sketch, reachable via Inner, keeps
// its full windowed query surface.
type Union struct {
	sk *Sketch
	// now is the logical clock; it never runs behind sk.LastTimestamp,
	// so Process's non-decreasing-timestamp contract always holds.
	now uint64
}

// NewUnion returns a Union over a fresh window sketch.
func NewUnion(cfg Config) *Union {
	return &Union{sk: New(cfg)}
}

// Inner returns the wrapped window sketch (for windowed queries).
func (u *Union) Inner() *Sketch { return u.sk }

func init() {
	sketch.Register(sketch.KindInfo{
		Kind:    sketch.KindWindow,
		Name:    "window",
		Version: 1,
		// Same Θ(1/ε²) capacity shape as the core sampler.
		New: func(eps float64, seed uint64) sketch.Sketch {
			if eps <= 0 || eps > 1 {
				panic("window: epsilon must be in (0, 1]")
			}
			c := int(12.0/(eps*eps) + 0.5)
			if c < 4 {
				c = 4
			}
			return NewUnion(Config{Capacity: c, Seed: seed})
		},
		Decode: func(payload []byte) (sketch.Sketch, error) {
			s, err := Decode(payload)
			if err != nil {
				return nil, err
			}
			return &Union{sk: s, now: s.LastTimestamp()}, nil
		},
	})
}

// Process implements sketch.Sketch, stamping label with the next
// logical-clock tick.
//
// hotpath: called once per stream item.
func (u *Union) Process(label uint64) {
	u.now++
	// Cannot fail: now is strictly increasing and never behind the
	// sketch's last timestamp.
	_ = u.sk.Process(label, u.now)
}

// Estimate implements sketch.Sketch: the distinct count since the
// beginning of the stream, or NaN when eviction has pushed the
// retained horizon past the stream start (a windowed sketch promises
// recency, not totality).
func (u *Union) Estimate() float64 {
	v, err := u.sk.EstimateDistinctSince(0)
	if err != nil {
		return math.NaN()
	}
	return v
}

// Merge implements sketch.Sketch.
func (u *Union) Merge(o sketch.Sketch) error {
	other, ok := o.(*Union)
	if !ok {
		return fmt.Errorf("%w: cannot merge %T into *window.Union", ErrMismatch, o)
	}
	if err := u.sk.Merge(other.sk); err != nil {
		return err
	}
	if u.now < u.sk.LastTimestamp() {
		u.now = u.sk.LastTimestamp()
	}
	if u.now < other.now {
		u.now = other.now
	}
	return nil
}

// MarshalBinary implements sketch.Sketch: the inner window encoding
// (the logical clock is recovered from the last timestamp on decode).
func (u *Union) MarshalBinary() ([]byte, error) { return u.sk.MarshalBinary() }

// Kind implements sketch.Sketch.
func (u *Union) Kind() sketch.Kind { return sketch.KindWindow }

// Seed implements sketch.Sketch.
func (u *Union) Seed() uint64 { return u.sk.cfg.Seed }

// Digest implements sketch.Sketch.
func (u *Union) Digest() uint64 {
	return sketch.ConfigDigest(sketch.KindWindow,
		uint64(u.sk.cfg.Capacity), u.sk.cfg.Seed, uint64(u.sk.cfg.MaxLevel))
}
