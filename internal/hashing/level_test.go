package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeometricLevelEdges(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, MaxLevel},
		{1, 60},
		{2, 59},
		{3, 59},
		{1 << 60, 0},
		{MersennePrime - 1, 0},
		{(1 << 60) - 1, 1},
	}
	for _, c := range cases {
		if got := GeometricLevel(c.v); got != c.want {
			t.Errorf("GeometricLevel(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestLevelThresholdConsistency: v has level >= lvl iff v < LevelThreshold(lvl).
func TestLevelThresholdConsistency(t *testing.T) {
	f := func(raw uint64, lvlRaw uint8) bool {
		v := raw % MersennePrime
		lvl := int(lvlRaw) % (MaxLevel + 1)
		return (GeometricLevel(v) >= lvl) == (v < LevelThreshold(lvl))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestLevelThresholdEdges(t *testing.T) {
	if got := LevelThreshold(0); got != 1<<61 {
		t.Errorf("LevelThreshold(0) = %d, want 2^61", got)
	}
	if got := LevelThreshold(-3); got != 1<<61 {
		t.Errorf("LevelThreshold(-3) = %d, want 2^61", got)
	}
	if got := LevelThreshold(MaxLevel); got != 1 {
		t.Errorf("LevelThreshold(MaxLevel) = %d, want 1", got)
	}
	if got := LevelThreshold(MaxLevel + 5); got != 1 {
		t.Errorf("LevelThreshold(MaxLevel+5) = %d, want 1", got)
	}
}

// TestGeometricLevelDistribution checks Pr[level >= i] ≈ 2^-i for
// hashes of sequential keys under a pairwise function.
func TestGeometricLevelDistribution(t *testing.T) {
	h := NewPairwise(77)
	const n = 1 << 18
	counts := make([]int, 12)
	for x := uint64(0); x < n; x++ {
		lvl := GeometricLevel(h.Hash(x))
		for i := 0; i < len(counts) && i <= lvl; i++ {
			counts[i]++
		}
	}
	for i, c := range counts {
		want := float64(n) * math.Pow(2, -float64(i))
		sigma := math.Sqrt(want)
		if math.Abs(float64(c)-want) > 8*sigma+2 {
			t.Errorf("Pr[level>=%d]: count %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFraction(t *testing.T) {
	if got := Fraction(0); got != 0 {
		t.Errorf("Fraction(0) = %v, want 0", got)
	}
	if got := Fraction(MersennePrime - 1); got >= 1 {
		t.Errorf("Fraction(p-1) = %v, want < 1", got)
	}
	if got := Fraction(1 << 60); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Fraction(2^60) = %v, want ~0.5", got)
	}
}

// TestFractionLevelConsistency: level >= i iff fraction < 2^-i (up to
// the 1/p discretization at the boundary).
func TestFractionLevelConsistency(t *testing.T) {
	h := NewPairwise(13)
	for x := uint64(0); x < 10000; x++ {
		v := h.Hash(x)
		lvl := GeometricLevel(v)
		fr := Fraction(v)
		if fr >= math.Pow(2, -float64(lvl))*1.000001 {
			t.Fatalf("x=%d: level=%d but fraction=%v", x, lvl, fr)
		}
	}
}
