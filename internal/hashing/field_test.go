package hashing

import (
	"math/big"
	"testing"
	"testing/quick"
)

func bigMulModP(a, b uint64) uint64 {
	p := new(big.Int).SetUint64(MersennePrime)
	x := new(big.Int).SetUint64(a)
	y := new(big.Int).SetUint64(b)
	x.Mul(x, y)
	x.Mod(x, p)
	return x.Uint64()
}

func TestMulModPMatchesBigInt(t *testing.T) {
	cases := [][2]uint64{
		{0, 0},
		{1, 1},
		{MersennePrime - 1, MersennePrime - 1},
		{MersennePrime - 1, 2},
		{1 << 60, 1 << 60},
		{123456789, 987654321},
		{MersennePrime / 2, MersennePrime / 3},
	}
	for _, c := range cases {
		got := MulModP(c[0], c[1])
		want := bigMulModP(c[0], c[1])
		if got != want {
			t.Errorf("MulModP(%d, %d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

func TestMulModPQuick(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= MersennePrime
		b %= MersennePrime
		return MulModP(a, b) == bigMulModP(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAddModP(t *testing.T) {
	if got := AddModP(MersennePrime-1, 1); got != 0 {
		t.Errorf("AddModP(p-1, 1) = %d, want 0", got)
	}
	if got := AddModP(MersennePrime-1, MersennePrime-1); got != MersennePrime-2 {
		t.Errorf("AddModP(p-1, p-1) = %d, want p-2", got)
	}
	if got := AddModP(0, 0); got != 0 {
		t.Errorf("AddModP(0, 0) = %d, want 0", got)
	}
}

func TestAddModPQuick(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= MersennePrime
		b %= MersennePrime
		want := (a + b) % MersennePrime
		return AddModP(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestModP(t *testing.T) {
	cases := []struct {
		in, want uint64
	}{
		{0, 0},
		{MersennePrime, 0},
		{MersennePrime + 1, 1},
		{MersennePrime - 1, MersennePrime - 1},
		{^uint64(0), (^uint64(0)) % MersennePrime},
	}
	for _, c := range cases {
		if got := modP(c.in); got != c.want {
			t.Errorf("modP(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestModPQuick(t *testing.T) {
	f := func(x uint64) bool {
		return modP(x) == x%MersennePrime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestReduceMersenneRange(t *testing.T) {
	f := func(hi, lo uint64) bool {
		return reduceMersenne(hi, lo) < MersennePrime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
