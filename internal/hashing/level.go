package hashing

import "math/bits"

// MaxLevel is the largest level GeometricLevel can assign. Hash values
// live in [0, 2^61), so a value can have at most 61 leading zero bits
// in its 61-bit representation (the all-zero value is assigned MaxLevel).
const MaxLevel = 61

// GeometricLevel maps a hash value v, uniform in [0, p) with
// p = 2^61 - 1, to a level ℓ ≥ 0 such that Pr[ℓ ≥ i] = 2^(61-i)/p ≈ 2^-i
// for 0 ≤ i ≤ 61: the number of leading zero bits of v viewed as a
// 61-bit word.
//
// This is the sampling function of the Gibbons–Tirthapura scheme: an
// item "survives at level i" iff its level is at least i, so raising
// the level of a sample halves (in expectation) the surviving items,
// and — crucially — parties sharing the hash seed agree exactly on
// which items survive.
func GeometricLevel(v uint64) int {
	if v == 0 {
		return MaxLevel
	}
	return MaxLevel - bits.Len64(v)
}

// LevelThreshold returns the largest hash value (exclusive) that is
// assigned a level >= lvl, i.e. v has level >= lvl iff v < LevelThreshold(lvl).
// LevelThreshold(0) is 2^61, meaning every value qualifies at level 0.
func LevelThreshold(lvl int) uint64 {
	if lvl <= 0 {
		return 1 << 61
	}
	if lvl >= MaxLevel {
		return 1
	}
	return 1 << (61 - uint(lvl))
}

// Fraction maps a hash value in [0, p) to the unit interval [0, 1)
// using the value's top 53 bits, so the conversion is exact (no
// float64 rounding can push the result to 1.0). KMV-style sketches use
// the fractional view; level-based sketches use GeometricLevel. The
// two views of one hash value are consistent: level ≥ i ⇔
// fraction < 2^-i for i up to the 53-bit resolution.
func Fraction(v uint64) float64 {
	return float64(v>>8) / (1 << 53)
}
