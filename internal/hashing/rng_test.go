package hashing

import (
	"math"
	"testing"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("step %d: %d != %d", i, av, bv)
		}
	}
}

func TestSplitMix64KnownVector(t *testing.T) {
	// Reference values for seed 0 from the canonical C implementation.
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("value %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestMix64MatchesSplitMix(t *testing.T) {
	// Mix64(seed) must equal the first output of SplitMix64(seed).
	for _, seed := range []uint64{0, 1, 42, ^uint64(0)} {
		if got, want := Mix64(seed), NewSplitMix64(seed).Next(); got != want {
			t.Errorf("Mix64(%d) = %#x, want %#x", seed, got, want)
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a := NewXoshiro256(7)
	b := NewXoshiro256(7)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: %d != %d", i, av, bv)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a := NewXoshiro256(1)
	b := NewXoshiro256(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 collided on %d/64 outputs", same)
	}
}

func TestXoshiroUint64nRange(t *testing.T) {
	r := NewXoshiro256(3)
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestXoshiroUint64nUniform(t *testing.T) {
	r := NewXoshiro256(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expected %.0f", i, c, want)
		}
	}
}

func TestXoshiroFloat64Range(t *testing.T) {
	r := NewXoshiro256(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestXoshiroPanicsOnZeroN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	NewXoshiro256(1).Uint64n(0)
}

func TestXoshiroIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(-1) did not panic")
		}
	}()
	NewXoshiro256(1).Intn(-1)
}

func TestXoshiroJumpDecorrelates(t *testing.T) {
	a := NewXoshiro256(9)
	b := NewXoshiro256(9)
	b.Jump()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("jumped stream collided on %d/64 outputs", same)
	}
}
