package hashing

import "fmt"

// Pairwise is a hash function drawn from the 2-universal family
// h(x) = (a·x + b) mod p over GF(p), p = 2^61 - 1, with a ∈ [1, p) and
// b ∈ [0, p). For any two distinct keys x ≠ y the pair (h(x), h(y)) is
// uniform over [0,p)², which is exactly the independence the
// Gibbons–Tirthapura analysis requires.
//
// Keys larger than p are folded into the field with modP before
// evaluation; this costs nothing for the 61-bit universes used in the
// experiments and keeps the family well-defined on all of uint64.
type Pairwise struct {
	a, b uint64
}

// NewPairwise draws a function from the family using the given seed.
// Equal seeds yield identical functions.
func NewPairwise(seed uint64) Pairwise {
	sm := NewSplitMix64(seed)
	a := modP(sm.Next())
	for a == 0 {
		a = modP(sm.Next())
	}
	return Pairwise{a: a, b: modP(sm.Next())}
}

// Hash returns h(x) ∈ [0, p).
//
// hotpath: called at least once per stream item.
func (h Pairwise) Hash(x uint64) uint64 {
	return AddModP(MulModP(h.a, modP(x)), h.b)
}

// KWise is a hash function drawn from a k-universal family:
// h(x) = (c_{k-1}·x^{k-1} + … + c_1·x + c_0) mod p, evaluated by
// Horner's rule. Used by the E10 ablation to check that raising the
// independence beyond pairwise does not change the sampler's accuracy,
// as the paper's analysis predicts.
type KWise struct {
	coef []uint64 // degree k-1 polynomial, coef[0] is the constant term
}

// NewKWise draws a function from the k-universal family. It panics if
// k < 2.
func NewKWise(k int, seed uint64) KWise {
	if k < 2 {
		panic(fmt.Sprintf("hashing: NewKWise needs k >= 2, got %d", k))
	}
	sm := NewSplitMix64(seed)
	coef := make([]uint64, k)
	for i := range coef {
		coef[i] = modP(sm.Next())
	}
	// The leading coefficient must be nonzero for full degree.
	for coef[k-1] == 0 {
		coef[k-1] = modP(sm.Next())
	}
	return KWise{coef: coef}
}

// K returns the independence parameter of the family.
func (h KWise) K() int { return len(h.coef) }

// Hash returns h(x) ∈ [0, p).
//
// hotpath: called at least once per stream item.
func (h KWise) Hash(x uint64) uint64 {
	xm := modP(x)
	acc := h.coef[len(h.coef)-1]
	for i := len(h.coef) - 2; i >= 0; i-- {
		acc = AddModP(MulModP(acc, xm), h.coef[i])
	}
	return acc
}
