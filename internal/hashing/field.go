package hashing

import "math/bits"

// MersennePrime is p = 2^61 - 1, the field modulus for the polynomial
// hash families. Working modulo a Mersenne prime lets us reduce a
// 128-bit product with shifts and adds instead of division.
const MersennePrime uint64 = (1 << 61) - 1

// reduceMersenne reduces a 128-bit value (hi, lo) modulo 2^61 - 1.
// The result is in [0, p).
func reduceMersenne(hi, lo uint64) uint64 {
	// Split the 128-bit value into 61-bit limbs:
	//   v = lo61 + 2^61·mid + 2^122·top
	// and use 2^61 ≡ 1 (mod p).
	lo61 := lo & MersennePrime
	mid := (lo >> 61) | (hi << 3)
	mid61 := mid & MersennePrime
	top := hi >> 58
	s := lo61 + mid61 + top
	// s < 3p, so at most two conditional subtractions are needed.
	if s >= MersennePrime {
		s -= MersennePrime
	}
	if s >= MersennePrime {
		s -= MersennePrime
	}
	return s
}

// MulModP returns (a * b) mod p for a, b in [0, p).
func MulModP(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return reduceMersenne(hi, lo)
}

// AddModP returns (a + b) mod p for a, b in [0, p).
func AddModP(a, b uint64) uint64 {
	s := a + b // cannot overflow: a, b < 2^61
	if s >= MersennePrime {
		s -= MersennePrime
	}
	return s
}

// modP reduces an arbitrary 64-bit value into [0, p).
func modP(x uint64) uint64 {
	x = (x & MersennePrime) + (x >> 61)
	if x >= MersennePrime {
		x -= MersennePrime
	}
	return x
}
