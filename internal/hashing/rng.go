package hashing

import "math/bits"

// SplitMix64 is a tiny, fast, full-period 64-bit generator. It is used
// to expand a single user-provided seed into the many independent seeds
// needed by hash families and sketch copies. The constants are from
// Steele, Lea & Flood, "Fast splittable pseudorandom number generators"
// (OOPSLA 2014).
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the splitmix64 finalizer to x. It is a strong 64-bit
// bit mixer, useful to decorrelate structured seeds (e.g. seed+siteID).
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 implements xoshiro256** 1.0 (Blackman & Vigna), the
// general-purpose generator used by workload generators. State is
// initialized from SplitMix64 so that any 64-bit seed is acceptable,
// including zero.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator seeded from seed via SplitMix64.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// xoshiro must not be seeded with all zeros; splitmix cannot
	// produce four consecutive zeros, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

// Uint64 returns the next 64 uniformly random bits.
func (x *Xoshiro256) Uint64() uint64 {
	result := bits.RotateLeft64(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = bits.RotateLeft64(x.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Lemire's nearly-divisionless method.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("hashing: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(x.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(x.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("hashing: Intn with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Jump advances the generator 2^128 steps, equivalent to that many
// calls to Uint64. It provides non-overlapping subsequences for
// parallel workload generation.
func (x *Xoshiro256) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Uint64()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}
