package hashing

// Tabulation implements simple tabulation hashing: the key is split
// into 8 bytes, each byte indexes its own table of random words, and
// the results are XORed. Simple tabulation is 3-independent and behaves
// like a fully random function for many algorithms (Pătraşcu–Thorup),
// making it a useful third arm in the hash-family ablation (E10).
//
// The raw XOR is a 64-bit value; Hash folds it into [0, p) so that all
// families in the package share one output range.
type Tabulation struct {
	tables [8][256]uint64
}

// NewTabulation fills the tables from the given seed.
func NewTabulation(seed uint64) *Tabulation {
	sm := NewSplitMix64(seed)
	t := &Tabulation{}
	for i := range t.tables {
		for j := range t.tables[i] {
			t.tables[i][j] = sm.Next()
		}
	}
	return t
}

// Hash returns the tabulation hash of x folded into [0, p).
//
// hotpath: called at least once per stream item.
func (t *Tabulation) Hash(x uint64) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v ^= t.tables[i][byte(x>>(8*uint(i)))]
	}
	return modP(v)
}
