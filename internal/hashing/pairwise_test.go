package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPairwiseDeterministic(t *testing.T) {
	h1 := NewPairwise(99)
	h2 := NewPairwise(99)
	for x := uint64(0); x < 1000; x++ {
		if h1.Hash(x) != h2.Hash(x) {
			t.Fatalf("same seed, different hash at x=%d", x)
		}
	}
}

func TestPairwiseSeedsDiffer(t *testing.T) {
	h1 := NewPairwise(1)
	h2 := NewPairwise(2)
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if h1.Hash(x) == h2.Hash(x) {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different seeds agreed on %d/1000 keys", same)
	}
}

func TestPairwiseRange(t *testing.T) {
	f := func(seed, x uint64) bool {
		return NewPairwise(seed).Hash(x) < MersennePrime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPairwiseUniformBuckets checks that hashes of sequential keys land
// uniformly across 16 buckets (a chi-squared style sanity check: the
// family's marginal distribution is uniform).
func TestPairwiseUniformBuckets(t *testing.T) {
	const buckets = 16
	const n = 1 << 16
	for _, seed := range []uint64{1, 7, 12345} {
		h := NewPairwise(seed)
		counts := make([]int, buckets)
		bucketWidth := MersennePrime / buckets
		for x := uint64(0); x < n; x++ {
			b := h.Hash(x) / bucketWidth
			if b >= buckets {
				b = buckets - 1
			}
			counts[b]++
		}
		want := float64(n) / buckets
		for i, c := range counts {
			if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
				t.Errorf("seed %d bucket %d: count %d too far from %.0f", seed, i, c, want)
			}
		}
	}
}

// TestPairwiseCollisionRate checks the 2-universal collision bound:
// for random distinct pairs Pr[h(x)=h(y)] <= 1/p, so over 10^5 pairs we
// should see essentially zero collisions.
func TestPairwiseCollisionRate(t *testing.T) {
	h := NewPairwise(5)
	r := NewXoshiro256(6)
	collisions := 0
	for i := 0; i < 100000; i++ {
		x, y := r.Uint64(), r.Uint64()
		if x != y && h.Hash(x) == h.Hash(y) {
			collisions++
		}
	}
	if collisions > 0 {
		t.Errorf("observed %d collisions in 1e5 pairs over a 2^61 range", collisions)
	}
}

// TestPairwiseIndependenceOfBits estimates Pr[bit_i(h(x))=1 AND
// bit_i(h(y))=1] ≈ 1/4 for a fixed pair of keys over random draws of
// the function — the defining property of pairwise independence.
func TestPairwiseIndependenceOfBits(t *testing.T) {
	const trials = 20000
	const bit = 60 // top bit of the 61-bit output
	both := 0
	for s := uint64(0); s < trials; s++ {
		h := NewPairwise(Mix64(s))
		a := (h.Hash(17) >> bit) & 1
		b := (h.Hash(42) >> bit) & 1
		if a == 1 && b == 1 {
			both++
		}
	}
	got := float64(both) / trials
	// The top bit of a uniform value in [0, 2^61-1) is 1 with
	// probability just under 1/2, so the joint should be ~1/4.
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("joint top-bit probability = %.4f, want ~0.25", got)
	}
}

func TestKWiseDeterministic(t *testing.T) {
	h1 := NewKWise(4, 99)
	h2 := NewKWise(4, 99)
	for x := uint64(0); x < 1000; x++ {
		if h1.Hash(x) != h2.Hash(x) {
			t.Fatalf("same seed, different hash at x=%d", x)
		}
	}
}

func TestKWiseRange(t *testing.T) {
	f := func(seed, x uint64) bool {
		return NewKWise(4, seed).Hash(x) < MersennePrime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKWiseK(t *testing.T) {
	if got := NewKWise(4, 1).K(); got != 4 {
		t.Errorf("K() = %d, want 4", got)
	}
}

func TestKWisePanicsOnSmallK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewKWise(1, ...) did not panic")
		}
	}()
	NewKWise(1, 0)
}

func TestKWiseDegree2MatchesPairwiseStructure(t *testing.T) {
	// A 2-wise polynomial hash is an (a·x+b) function; verify linearity
	// structure: h(x+1) - h(x) is constant mod p.
	h := NewKWise(2, 31)
	d0 := (h.Hash(1) + MersennePrime - h.Hash(0)) % MersennePrime
	for x := uint64(1); x < 100; x++ {
		d := (h.Hash(x+1) + MersennePrime - h.Hash(x)) % MersennePrime
		if d != d0 {
			t.Fatalf("degree-2 polynomial not affine at x=%d", x)
		}
	}
}

func TestTabulationDeterministic(t *testing.T) {
	h1 := NewTabulation(99)
	h2 := NewTabulation(99)
	for x := uint64(0); x < 1000; x++ {
		if h1.Hash(x) != h2.Hash(x) {
			t.Fatalf("same seed, different hash at x=%d", x)
		}
	}
}

func TestTabulationRange(t *testing.T) {
	h := NewTabulation(3)
	r := NewXoshiro256(4)
	for i := 0; i < 10000; i++ {
		if v := h.Hash(r.Uint64()); v >= MersennePrime {
			t.Fatalf("hash out of range: %d", v)
		}
	}
}

func TestTabulationUniformBuckets(t *testing.T) {
	const buckets = 16
	const n = 1 << 16
	h := NewTabulation(8)
	counts := make([]int, buckets)
	bucketWidth := MersennePrime / buckets
	for x := uint64(0); x < n; x++ {
		b := h.Hash(x) / bucketWidth
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from %.0f", i, c, want)
		}
	}
}

// All families satisfy the Family interface.
var (
	_ Family = Pairwise{}
	_ Family = KWise{}
	_ Family = (*Tabulation)(nil)
)
