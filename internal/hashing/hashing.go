// Package hashing provides the random-hashing substrate used by every
// sketch in this repository: deterministic seedable random number
// generators, pairwise- and k-wise-independent hash families over the
// Mersenne prime field GF(2^61-1), tabulation hashing, and the geometric
// "level" assignment at the heart of the Gibbons–Tirthapura coordinated
// sampling scheme.
//
// The paper's analysis requires only pairwise independence, which is why
// the package centers on the classic (a·x + b) mod p construction: it is
// cheap (one 64×64→128 multiply and a Mersenne reduction per item),
// needs two field elements of state, and is exactly reproducible from a
// seed — the property that lets physically distributed parties
// coordinate their samples by sharing nothing but the seed.
package hashing

// Family is a hash function drawn from some family, mapping 64-bit keys
// to values uniform in [0, RangeP). Implementations must be
// deterministic: equal seeds produce identical functions, which is what
// coordinated sampling across distributed sites relies on.
type Family interface {
	// Hash maps a key to a value in [0, RangeP).
	Hash(x uint64) uint64
}

// RangeP is the size of the hash output range for all families in this
// package: the Mersenne prime 2^61 - 1. Hash values are uniform in
// [0, RangeP).
const RangeP = MersennePrime
