package client

import (
	"fmt"
	"net"
	"time"

	"repro/internal/failpoint"
	"repro/internal/wire"
)

// Record is one named batch entry: a sketch envelope bound for the
// named stream ("" targets the default stream).
type Record struct {
	Stream   string
	Envelope []byte
}

// PushBatch pushes many sketch envelopes to the default stream over
// one long-lived connection; see PushBatchNamed.
func (c *Client) PushBatch(envelopes [][]byte) (pushed int, err error) {
	records := make([]Record, len(envelopes))
	for i, env := range envelopes {
		records[i] = Record{Envelope: env}
	}
	return c.PushBatchNamed(records)
}

// PushBatchNamed pushes many records over one long-lived connection —
// the shape the relay tier and bulk loaders need, where dialing per
// message (Push's one-shot contract) would dominate the cost of
// 10^5-group flushes.
//
// Records are pushed in order, each individually acked. A transient
// failure (dropped connection, damaged frame, coordinator error)
// closes the connection, backs off, redials, and resumes from the
// failing envelope — so an envelope can be delivered more than once
// across a retry, which the coordinator's idempotent merge absorbs.
// Attempts are budgeted per envelope (cfg.Attempts each), not per
// batch, so one flaky message cannot starve the rest of their
// retries. A permanent refusal (mismatch, corrupt, unsupported)
// aborts the batch and reports the offending index; everything before
// it was delivered and acked.
//
// It returns the number of records durably acked.
func (c *Client) PushBatchNamed(records []Record) (pushed int, err error) {
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()

	attempt := 1 // dial/push attempts for the record at `pushed`
	for pushed < len(records) {
		if conn == nil {
			if attempt > 1 {
				time.Sleep(c.backoff(attempt - 1))
			}
			conn, err = c.dialBatch()
			if err != nil {
				if attempt++; attempt > c.cfg.Attempts {
					return pushed, fmt.Errorf("client: batch push stalled at envelope %d/%d after %d attempts: %w",
						pushed, len(records), c.cfg.Attempts, err)
				}
				continue
			}
		}
		err = c.pushOne(conn, records[pushed])
		switch {
		case err == nil:
			pushed++
			attempt = 1
		case permanent(err):
			return pushed, fmt.Errorf("client: batch envelope %d/%d refused: %w", pushed, len(records), err)
		default:
			// Transient: the connection is in an unknown state (a
			// half-written frame, a lost ack) — drop it and resume on a
			// fresh one. The envelope may have been absorbed before the
			// ack was lost; the redelivery merges idempotently.
			conn.Close()
			conn = nil
			if attempt++; attempt > c.cfg.Attempts {
				return pushed, fmt.Errorf("client: batch push stalled at envelope %d/%d after %d attempts: %w",
					pushed, len(records), c.cfg.Attempts, err)
			}
		}
	}
	return pushed, nil
}

// dialBatch opens the batch connection, honoring the same failpoint
// the one-shot dial path injects through.
func (c *Client) dialBatch() (net.Conn, error) {
	if err := failpoint.Inject(failpoint.ClientDial); err != nil {
		return nil, err
	}
	return net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
}

// pushOne writes one push frame on the standing connection and reads
// its ack, bounding the round trip with the per-operation deadline.
// Default-stream records travel as plain MsgPush frames (the exact
// bytes an old client would send); named records as MsgPushNamed.
func (c *Client) pushOne(conn net.Conn, rec Record) error {
	if err := conn.SetDeadline(time.Now().Add(c.cfg.IOTimeout)); err != nil {
		return err
	}
	t, payload := wire.MsgPush, rec.Envelope
	if rec.Stream != "" {
		var err error
		if payload, err = wire.EncodePushNamed(rec.Stream, rec.Envelope); err != nil {
			return fmt.Errorf("%w: %w", ErrRejected, err)
		}
		t = wire.MsgPushNamed
	}
	if err := c.writeFrame(conn, t, payload); err != nil {
		return err
	}
	return c.readAck(conn)
}
