// Package client implements the site side of the networked protocol:
// it dials the unionstreamd coordinator, pushes the site's one-shot
// sketch message, and asks union queries. It is what cmd/unionpush and
// the internal/distnet transport are built on.
//
// Transient failures (refused or dropped connections, timeouts) are
// retried with capped exponential backoff plus jitter; protocol
// refusals from the coordinator are permanent and surface as typed
// errors — ErrVersionMismatch, ErrSeedMismatch, and
// ErrKindMismatch — so a mis-deployed site fails loudly instead of
// hanging or spinning.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/wire"
)

// Typed failures. The first four are permanent — retrying cannot fix
// a protocol disagreement or a condemned payload; ErrFrameDamaged and
// ErrCoordinator are transient and drive the retry loop.
var (
	// ErrVersionMismatch: the coordinator speaks a different wire
	// protocol version.
	ErrVersionMismatch = errors.New("client: coordinator speaks a different wire version")
	// ErrSeedMismatch: the coordinator refused the sketch's
	// coordination seed (or configuration) — the site is not part of
	// this deployment's coordinated fleet.
	ErrSeedMismatch = errors.New("client: coordination seed rejected by coordinator")
	// ErrKindMismatch: the coordinator is pinned to a different sketch
	// kind (server.Config.RequireKind) than the one pushed.
	ErrKindMismatch = errors.New("client: sketch kind rejected by coordinator")
	// ErrRejected: the coordinator refused the message for another
	// reason (corrupt payload, unsupported request); the wrapped
	// detail explains.
	ErrRejected = errors.New("client: message rejected by coordinator")
	// ErrFrameDamaged: the coordinator reported wire-level damage
	// (AckBadFrame) — the bytes were corrupted in transit, not the
	// message, so the push is retried with the same payload. Transient.
	ErrFrameDamaged = errors.New("client: frame damaged in transit")
	// ErrCoordinator: the coordinator reported a server-side failure
	// (AckError: shutting down, internal fault). The message itself
	// was never condemned, so the operation is retried. Transient.
	ErrCoordinator = errors.New("client: coordinator reported an internal error")
)

// Config parameterizes a Client. The zero value targets nothing; set
// Addr. All other fields have serviceable defaults.
type Config struct {
	// Addr is the coordinator's TCP address, e.g. "10.0.0.5:7600".
	Addr string
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// IOTimeout bounds each request/response round trip (default 15s).
	IOTimeout time.Duration
	// Attempts is the total number of tries per operation, first
	// included (default 4; minimum 1).
	Attempts int
	// BackoffBase is the pre-jitter wait before the first retry; it
	// doubles per retry (default 50ms).
	BackoffBase time.Duration
	// BackoffMax caps the pre-jitter backoff (default 3s).
	BackoffMax time.Duration
	// MaxPayload bounds response frames (0 = wire.DefaultMaxPayload).
	MaxPayload uint32
	// JitterSeed seeds the backoff jitter; 0 derives one from the
	// clock. Fixed seeds make retry schedules reproducible in tests.
	JitterSeed int64
}

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 15 * time.Second
	}
	if c.Attempts < 1 {
		c.Attempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 3 * time.Second
	}
	return c
}

// Client pushes sketches and queries one coordinator. It is safe for
// concurrent use; every operation is a self-contained dial/request/
// response exchange, matching the paper's one-message-per-site shape.
type Client struct {
	cfg Config

	mu  sync.Mutex // guards: rng
	rng *rand.Rand
}

// New returns a client for the given configuration.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	seed := cfg.JitterSeed
	if seed == 0 {
		// Backoff jitter SHOULD differ per process — it never touches
		// sketch state or cross-site coordination.
		// unionlint:allow seedcheck jitter is deliberately per-process
		seed = time.Now().UnixNano()
	}
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Push sends one sketch message (a sketch.Envelope of any registered
// kind) and waits for the coordinator's ack, retrying transient
// failures. It returns the number of attempts made alongside any
// final error.
func (c *Client) Push(envelope []byte) (attempts int, err error) {
	return c.pushFrame(wire.MsgPush, envelope)
}

// PushNamed sends one sketch message bound for the named stream. The
// empty stream name is the default stream, and the push travels as a
// plain MsgPush — byte-identical to what an un-upgraded site sends.
func (c *Client) PushNamed(stream string, envelope []byte) (attempts int, err error) {
	if stream == "" {
		return c.pushFrame(wire.MsgPush, envelope)
	}
	payload, perr := wire.EncodePushNamed(stream, envelope)
	if perr != nil {
		return 0, fmt.Errorf("%w: %w", ErrRejected, perr)
	}
	return c.pushFrame(wire.MsgPushNamed, payload)
}

func (c *Client) pushFrame(t wire.MsgType, payload []byte) (int, error) {
	var lastErr error
	for attempt := 1; attempt <= c.cfg.Attempts; attempt++ {
		if attempt > 1 {
			time.Sleep(c.backoff(attempt - 1))
		}
		err := c.roundTrip(func(conn net.Conn) error {
			if err := c.writeFrame(conn, t, payload); err != nil {
				return err
			}
			return c.readAck(conn)
		})
		if err == nil {
			return attempt, nil
		}
		if permanent(err) {
			return attempt, err
		}
		lastErr = err
	}
	return c.cfg.Attempts, fmt.Errorf("client: push failed after %d attempts: %w", c.cfg.Attempts, lastErr)
}

// Query asks the coordinator for one estimate, retrying transient
// failures (queries are read-only, so retries are safe).
func (c *Client) Query(q wire.Query) (float64, error) {
	var est float64
	err := c.retried(func(conn net.Conn) error {
		if err := c.writeFrame(conn, wire.MsgQuery, q.Encode()); err != nil {
			return err
		}
		typ, payload, err := c.readFrame(conn)
		if err != nil {
			return err
		}
		switch typ {
		case wire.MsgQueryResult:
			est, err = wire.DecodeQueryResult(payload)
			return err
		case wire.MsgAck:
			return ackError(payload)
		default:
			return fmt.Errorf("%w: unexpected %s reply to query", ErrRejected, typ)
		}
	})
	return est, err
}

// QueryExpr asks the coordinator to evaluate one set expression over
// named streams and returns the per-node result tree (value and error
// bound at every operator). Retried like Query — expression queries
// are read-only.
func (c *Client) QueryExpr(eq wire.ExprQuery) (*wire.ExprResult, error) {
	payload, err := eq.Encode()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrRejected, err)
	}
	var res *wire.ExprResult
	err = c.retried(func(conn net.Conn) error {
		if err := c.writeFrame(conn, wire.MsgQueryExpr, payload); err != nil {
			return err
		}
		typ, reply, err := c.readFrame(conn)
		if err != nil {
			return err
		}
		switch typ {
		case wire.MsgQueryExprResult:
			res, err = wire.DecodeExprResult(reply)
			return err
		case wire.MsgAck:
			return ackError(reply)
		default:
			return fmt.Errorf("%w: unexpected %s reply to expression query", ErrRejected, typ)
		}
	})
	return res, err
}

// DistinctCount queries the union F0 estimate for the given
// coordination seed.
func (c *Client) DistinctCount(seed uint64) (float64, error) {
	return c.Query(wire.Query{Kind: wire.QueryDistinct, HasSeed: true, Seed: seed})
}

// SumDistinct queries the duplicate-insensitive sum estimate for the
// given coordination seed.
func (c *Client) SumDistinct(seed uint64) (float64, error) {
	return c.Query(wire.Query{Kind: wire.QuerySum, HasSeed: true, Seed: seed})
}

// Stats fetches the coordinator's introspection snapshot. The result
// is decoded into out (pass a *server.Stats or any compatible
// struct/map); pass nil to only check reachability.
func (c *Client) Stats(out any) error {
	return c.retried(func(conn net.Conn) error {
		if err := c.writeFrame(conn, wire.MsgStats, nil); err != nil {
			return err
		}
		typ, payload, err := c.readFrame(conn)
		if err != nil {
			return err
		}
		switch typ {
		case wire.MsgStatsResult:
			if out == nil {
				return nil
			}
			return json.Unmarshal(payload, out)
		case wire.MsgAck:
			return ackError(payload)
		default:
			return fmt.Errorf("%w: unexpected %s reply to stats", ErrRejected, typ)
		}
	})
}

// retried runs op through the dial/backoff loop.
func (c *Client) retried(op func(net.Conn) error) error {
	var lastErr error
	for attempt := 1; attempt <= c.cfg.Attempts; attempt++ {
		if attempt > 1 {
			time.Sleep(c.backoff(attempt - 1))
		}
		err := c.roundTrip(op)
		if err == nil {
			return nil
		}
		if permanent(err) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("client: failed after %d attempts: %w", c.cfg.Attempts, lastErr)
}

// roundTrip dials, applies the per-operation deadline, and runs op.
func (c *Client) roundTrip(op func(net.Conn) error) error {
	if err := failpoint.Inject(failpoint.ClientDial); err != nil {
		return err
	}
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(c.cfg.IOTimeout)); err != nil {
		return err
	}
	return op(conn)
}

// writeFrame sends one frame toward the coordinator.
func (c *Client) writeFrame(conn net.Conn, t wire.MsgType, payload []byte) error {
	if err := failpoint.Inject(failpoint.ClientWrite); err != nil {
		return err
	}
	return wire.WriteFrame(conn, t, payload)
}

// readFrame reads one coordinator reply frame, typing version
// disagreements. It takes an io.Reader so the fuzz harness can drive
// it with raw byte streams.
func (c *Client) readFrame(r io.Reader) (wire.MsgType, []byte, error) {
	if err := failpoint.Inject(failpoint.ClientRead); err != nil {
		return 0, nil, err
	}
	typ, payload, err := wire.ReadFrame(r, c.cfg.MaxPayload)
	if errors.Is(err, wire.ErrVersion) {
		// The reply is framed in a version we don't speak: the
		// coordinator is from a different protocol generation.
		return 0, nil, fmt.Errorf("%w: %w", ErrVersionMismatch, err)
	}
	return typ, payload, err
}

func (c *Client) readAck(conn net.Conn) error {
	typ, payload, err := c.readFrame(conn)
	if err != nil {
		return err
	}
	if typ != wire.MsgAck {
		return fmt.Errorf("%w: unexpected %s reply to push", ErrRejected, typ)
	}
	return ackError(payload)
}

// ackError maps an ack payload to nil or a typed error.
func ackError(payload []byte) error {
	ack, err := wire.DecodeAck(payload)
	if err != nil {
		return err
	}
	switch ack.Code {
	case wire.AckOK:
		return nil
	case wire.AckVersionMismatch:
		return fmt.Errorf("%w: %s", ErrVersionMismatch, ack.Detail)
	case wire.AckSeedMismatch:
		return fmt.Errorf("%w: %s", ErrSeedMismatch, ack.Detail)
	case wire.AckKindMismatch:
		return fmt.Errorf("%w: %s", ErrKindMismatch, ack.Detail)
	case wire.AckBadFrame:
		// Deliberately NOT ErrRejected: the frame was damaged in
		// transit, so the retry loop resends the same payload.
		return fmt.Errorf("%w: %s", ErrFrameDamaged, ack.Detail)
	case wire.AckError:
		// Also transient: the coordinator failed, not the message —
		// a restarted or recovered coordinator may accept the retry.
		return fmt.Errorf("%w: %s", ErrCoordinator, ack.Detail)
	default:
		// AckCorrupt, AckUnsupported, unknown codes: the payload
		// itself was condemned — permanent.
		return fmt.Errorf("%w: %s: %s", ErrRejected, ack.Code, ack.Detail)
	}
}

// permanent reports whether err is a protocol-level refusal that
// retrying cannot fix.
func permanent(err error) bool {
	return errors.Is(err, ErrVersionMismatch) ||
		errors.Is(err, ErrSeedMismatch) ||
		errors.Is(err, ErrKindMismatch) ||
		errors.Is(err, ErrRejected)
}

// backoff returns the wait before the retry-th retry (retry ≥ 1):
// BackoffBase·2^(retry-1) capped at BackoffMax, with the upper half
// jittered so a fleet of sites recovering from the same coordinator
// restart does not reconnect in lockstep.
func (c *Client) backoff(retry int) time.Duration {
	d := c.cfg.BackoffBase << (retry - 1)
	if d <= 0 || d > c.cfg.BackoffMax { // <= 0 guards shift overflow
		d = c.cfg.BackoffMax
	}
	half := d / 2
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(half) + 1))
	c.mu.Unlock()
	return half + j
}
