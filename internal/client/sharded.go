package client

import (
	"errors"
	"fmt"

	"repro/internal/sketch"
	"repro/internal/wire"
)

// Router assigns merge groups — identified by the stream name each
// push may carry plus the (kind, config digest) pair every envelope
// carries in its header — to shard indices. cluster.(*Ring) satisfies
// it; the indirection keeps this package free of a dependency on the
// cluster package.
type Router interface {
	// OwnerOf returns the owning shard index in [0, Shards()) for the
	// default-stream group with the given kind tag and config digest.
	OwnerOf(kind uint8, digest uint64) int
	// OwnerOfGroup is OwnerOf for a named stream; OwnerOfGroup("", k,
	// d) must equal OwnerOf(k, d).
	OwnerOfGroup(stream string, kind uint8, digest uint64) int
	// Shards returns the shard-index space the router assigns into.
	Shards() int
}

// ShardError wraps a failure talking to one shard with the shard's
// identity, so a caller pushing across a cluster can report exactly
// which coordinator refused or vanished. errors.Is/As see through it.
type ShardError struct {
	// Shard is the ring index; Addr its coordinator address.
	Shard int
	Addr  string
	Err   error
}

// Error implements error.
func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d (%s): %v", e.Shard, e.Addr, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Err }

// Sharded is a multi-coordinator client: it routes each pushed
// envelope to the shard that owns the envelope's merge group and
// retries through that shard's own retrying Client. It is safe for
// concurrent use.
type Sharded struct {
	router  Router
	addrs   []string
	clients []*Client
	// parent, when set (SetParent), is the aggregation tier's root
	// coordinator — the one place a cross-shard expression query can be
	// answered, since it holds every stream's relayed union.
	parent *Client
}

// NewSharded builds a sharded client over the given coordinator
// addresses, one per shard index, sharing base for every per-shard
// Client (Addr is overwritten per shard; a non-zero JitterSeed is
// offset per shard so a fleet of shards does not back off in
// lockstep).
func NewSharded(router Router, addrs []string, base Config) (*Sharded, error) {
	if router.Shards() != len(addrs) {
		return nil, fmt.Errorf("client: router assigns %d shards, %d addresses given", router.Shards(), len(addrs))
	}
	s := &Sharded{router: router, addrs: addrs, clients: make([]*Client, len(addrs))}
	for i, addr := range addrs {
		cfg := base
		cfg.Addr = addr
		if cfg.JitterSeed != 0 {
			cfg.JitterSeed += int64(i)
		}
		s.clients[i] = New(cfg)
	}
	return s, nil
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.clients) }

// Shard returns the per-shard Client — for queries, stats, or batch
// pushes aimed at one coordinator.
func (s *Sharded) Shard(i int) *Client { return s.clients[i] }

// Addr returns shard i's coordinator address.
func (s *Sharded) Addr(i int) string { return s.addrs[i] }

// SetParent registers the aggregation tier's root coordinator, the
// target for expression queries whose leaves span shards. Call before
// sharing the Sharded across goroutines.
func (s *Sharded) SetParent(c *Client) { s.parent = c }

// Route returns the shard index owning the envelope's default-stream
// merge group; see RouteNamed.
func (s *Sharded) Route(envelope []byte) (int, error) {
	return s.RouteNamed("", envelope)
}

// RouteNamed returns the shard index owning the envelope's merge
// group in the named stream, or an error when the bytes are not a
// sketch envelope.
func (s *Sharded) RouteNamed(stream string, envelope []byte) (int, error) {
	kind, digest, ok := sketch.PeekHeader(envelope)
	if !ok {
		return 0, fmt.Errorf("client: %w: not a sketch envelope, cannot route", ErrRejected)
	}
	shard := s.router.OwnerOfGroup(stream, uint8(kind), digest)
	if shard < 0 || shard >= len(s.clients) {
		return 0, fmt.Errorf("client: router assigned shard %d outside [0,%d)", shard, len(s.clients))
	}
	return shard, nil
}

// Push routes one envelope to its owning shard and pushes it through
// that shard's retry loop. Failures come back wrapped in *ShardError.
func (s *Sharded) Push(envelope []byte) (shard, attempts int, err error) {
	return s.PushNamed("", envelope)
}

// PushNamed routes one named-stream envelope to its owning shard and
// pushes it through that shard's retry loop.
func (s *Sharded) PushNamed(stream string, envelope []byte) (shard, attempts int, err error) {
	shard, err = s.RouteNamed(stream, envelope)
	if err != nil {
		return 0, 0, err
	}
	attempts, err = s.clients[shard].PushNamed(stream, envelope)
	if err != nil {
		err = &ShardError{Shard: shard, Addr: s.addrs[shard], Err: err}
	}
	return shard, attempts, err
}

// PushBatch routes a batch of envelopes to their owning shards and
// pushes each shard's slice over one batched connection (see
// Client.PushBatch). Shards are attempted independently: one shard's
// failure does not stop deliveries to the others, and every failure
// comes back as a *ShardError inside the joined error. It returns the
// total number of envelopes durably acked.
func (s *Sharded) PushBatch(envelopes [][]byte) (pushed int, err error) {
	records := make([]Record, len(envelopes))
	for i, env := range envelopes {
		records[i] = Record{Envelope: env}
	}
	return s.PushBatchNamed(records)
}

// PushBatchNamed is PushBatch for stream-tagged records: each record
// routes by its own (stream, kind, digest) key.
func (s *Sharded) PushBatchNamed(records []Record) (pushed int, err error) {
	perShard := make([][]Record, len(s.clients))
	for _, rec := range records {
		shard, rerr := s.RouteNamed(rec.Stream, rec.Envelope)
		if rerr != nil {
			return 0, rerr
		}
		perShard[shard] = append(perShard[shard], rec)
	}
	var errs []error
	for shard, batch := range perShard {
		if len(batch) == 0 {
			continue
		}
		n, berr := s.clients[shard].PushBatchNamed(batch)
		pushed += n
		if berr != nil {
			errs = append(errs, &ShardError{Shard: shard, Addr: s.addrs[shard], Err: berr})
		}
	}
	return pushed, errors.Join(errs...)
}

// QueryExpr evaluates a set expression against the cluster. The kind
// tag and config digest identify the sketch configuration the
// expression's stream groups share (the same pair every envelope
// header carries). When every leaf's group lands on one shard, the
// query goes to that shard — its groups are authoritative for the
// streams it owns. Leaves spanning shards can only be answered where
// all their merged state coexists: the parent coordinator (SetParent),
// whose relayed groups converge to every shard's union.
func (s *Sharded) QueryExpr(eq wire.ExprQuery, kind uint8, digest uint64) (*wire.ExprResult, error) {
	if eq.Expr == nil {
		return nil, fmt.Errorf("client: %w: empty expression", ErrRejected)
	}
	if err := eq.Expr.Validate(); err != nil {
		return nil, fmt.Errorf("client: %w: %w", ErrRejected, err)
	}
	owner := -1
	colocated := true
	for _, stream := range eq.Expr.Leaves(nil) {
		shard := s.router.OwnerOfGroup(stream, kind, digest)
		if shard < 0 || shard >= len(s.clients) {
			return nil, fmt.Errorf("client: router assigned shard %d outside [0,%d)", shard, len(s.clients))
		}
		if owner == -1 {
			owner = shard
		} else if shard != owner {
			colocated = false
		}
	}
	if colocated && owner >= 0 {
		res, err := s.clients[owner].QueryExpr(eq)
		if err != nil {
			return nil, &ShardError{Shard: owner, Addr: s.addrs[owner], Err: err}
		}
		return res, nil
	}
	if s.parent == nil {
		return nil, fmt.Errorf("client: %w: expression leaves span shards and no parent coordinator is set", ErrRejected)
	}
	return s.parent.QueryExpr(eq)
}
