package client

// FuzzClientReadFrame drives the client's reply-frame reader with
// arbitrary byte streams: it must agree with wire.ReadFrame on
// accept/reject, type version disagreements as ErrVersionMismatch, and
// never panic — including the ack-payload decode a push performs on
// whatever frame comes back. The seed corpus is shared with
// internal/wire's FuzzWireDecode (testdata/fuzz/FuzzWireDecode), so
// every frame shape that fuzzer has found interesting is replayed here
// on each `go test`. Explore further with
//
//	go test -fuzz=FuzzClientReadFrame ./internal/client

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/wire"
)

// wireCorpus loads internal/wire's seed corpus files (go test fuzz v1
// format, one []byte("...") line per file).
func wireCorpus(f *testing.F) [][]byte {
	f.Helper()
	dir := filepath.Join("..", "wire", "testdata", "fuzz", "FuzzWireDecode")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("shared corpus missing: %v", err)
	}
	var out [][]byte
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "[]byte(") || !strings.HasSuffix(line, ")") {
				continue
			}
			s, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")"))
			if err != nil {
				f.Fatalf("%s: unquoting corpus line: %v", e.Name(), err)
			}
			out = append(out, []byte(s))
		}
	}
	if len(out) == 0 {
		f.Fatal("shared corpus parsed to zero seeds")
	}
	return out
}

func FuzzClientReadFrame(f *testing.F) {
	for _, seed := range wireCorpus(f) {
		f.Add(seed)
	}
	f.Add(wire.EncodeFrame(wire.MsgAck, wire.Ack{Code: wire.AckBadFrame, Detail: "damaged"}.Encode()))
	f.Fuzz(func(t *testing.T, data []byte) {
		const limit = 1 << 16
		cl := New(Config{Addr: "unused", MaxPayload: limit, JitterSeed: 1})
		typ, payload, err := cl.readFrame(bytes.NewReader(data))
		wtyp, wpayload, werr := wire.ReadFrame(bytes.NewReader(data), limit)

		// The client reader is wire.ReadFrame plus error typing: it
		// must accept exactly what the wire reader accepts.
		if (err == nil) != (werr == nil) {
			t.Fatalf("client readFrame err=%v, wire ReadFrame err=%v", err, werr)
		}
		if err == nil {
			if typ != wtyp || !bytes.Equal(payload, wpayload) {
				t.Fatalf("client (%v, %d bytes) != wire (%v, %d bytes)", typ, len(payload), wtyp, len(wpayload))
			}
			// A push inspects whatever ack comes back; arbitrary ack
			// payloads must map to nil or an error, never a panic.
			if typ == wire.MsgAck {
				_ = ackError(payload)
			}
			return
		}
		// Version disagreements must carry the client's typed sentinel
		// (and keep the wire cause inspectable); everything else must
		// pass the wire error through untyped.
		if errors.Is(werr, wire.ErrVersion) {
			if !errors.Is(err, ErrVersionMismatch) || !errors.Is(err, wire.ErrVersion) {
				t.Fatalf("version error not typed: %v", err)
			}
		} else if errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("spurious ErrVersionMismatch for %v", werr)
		}
		// A damaged frame must never classify as a clean close.
		if errors.Is(err, wire.ErrFrame) && errors.Is(err, io.EOF) {
			t.Fatalf("ErrFrame error satisfies io.EOF: %v", err)
		}
	})
}
