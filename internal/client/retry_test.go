package client

// Retry-behavior tests: the properties the errcontract analyzer exists
// to protect. A typed protocol refusal must stop the retry loop on the
// first attempt (errors.Is permanence), a transient transport failure
// must be retried until the coordinator recovers, and the loop's total
// sleep must stay inside the documented backoff envelope.

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// rawReplyServer answers every connection's first frame with raw bytes.
func rawReplyServer(t *testing.T, reply []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if _, _, err := wire.ReadFrame(conn, 0); err != nil {
					return
				}
				conn.Write(reply)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestVersionMismatchFrameNotRetried covers the frame-level (not
// ack-level) version check: a reply whose header carries an unknown
// protocol version must surface as ErrVersionMismatch after exactly
// one attempt — a coordinator from another protocol generation cannot
// be retried into agreement.
func TestVersionMismatchFrameNotRetried(t *testing.T) {
	ack := wire.Ack{Code: wire.AckOK}
	frame := wire.EncodeFrame(wire.MsgAck, ack.Encode())
	frame[2] = wire.Version + 9 // corrupt the version byte only

	addr := rawReplyServer(t, frame)
	cl := New(Config{Addr: addr, Attempts: 5, BackoffBase: time.Millisecond, JitterSeed: 1})
	attempts, err := cl.Push([]byte("msg"))
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
	if !errors.Is(err, wire.ErrVersion) {
		t.Fatalf("err = %v; the wire cause must stay inspectable through the wrap", err)
	}
	if attempts != 1 {
		t.Errorf("made %d attempts; version mismatches must not be retried", attempts)
	}
}

// TestTransientFailuresThenSuccess covers the recovery path: the
// coordinator drops the first two connections without replying, then
// behaves. The push must succeed on the third attempt.
func TestTransientFailuresThenSuccess(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var conns atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if conns.Add(1) <= 2 {
					return // drop without answering: transient
				}
				if _, _, err := wire.ReadFrame(conn, 0); err != nil {
					return
				}
				ack := wire.Ack{Code: wire.AckOK}
				wire.WriteFrame(conn, wire.MsgAck, ack.Encode())
			}(conn)
		}
	}()

	cl := New(Config{
		Addr:        ln.Addr().String(),
		Attempts:    4,
		IOTimeout:   2 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		JitterSeed:  1,
	})
	attempts, err := cl.Push([]byte("msg"))
	if err != nil {
		t.Fatalf("push after transient failures: %v", err)
	}
	if attempts != 3 {
		t.Errorf("made %d attempts, want 3 (two drops + one success)", attempts)
	}
}

// TestRetrySleepWithinEnvelope measures the loop's actual waiting: for
// Attempts=3 against a closed port, total elapsed time must be at
// least the sum of the backoff lower bounds (half the pre-jitter wait
// per retry) and, give or take scheduling, at most the sum of the
// upper bounds plus dial overhead.
func TestRetrySleepWithinEnvelope(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // dials now fail immediately with ECONNREFUSED

	base := 40 * time.Millisecond
	cl := New(Config{
		Addr:        addr,
		Attempts:    3,
		DialTimeout: 200 * time.Millisecond,
		BackoffBase: base,
		BackoffMax:  8 * base,
		JitterSeed:  1,
	})
	start := time.Now()
	_, err = cl.Push([]byte("msg"))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("push to dead address succeeded")
	}
	// Retry 1 waits in [base/2, base], retry 2 in [base, 2·base].
	min := base/2 + base
	max := 3*base + 3*cl.cfg.DialTimeout + time.Second // generous slack for CI
	if elapsed < min {
		t.Errorf("retry loop too fast: %v < %v — backoff sleeps were skipped", elapsed, min)
	}
	if elapsed > max {
		t.Errorf("retry loop too slow: %v > %v", elapsed, max)
	}
}
