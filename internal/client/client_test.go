package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestBackoffBoundsAndGrowth(t *testing.T) {
	c := New(Config{
		Addr:        "unused",
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  80 * time.Millisecond,
		JitterSeed:  7,
	})
	prevCap := time.Duration(0)
	for retry := 1; retry <= 10; retry++ {
		pre := c.cfg.BackoffBase << (retry - 1)
		if pre <= 0 || pre > c.cfg.BackoffMax {
			pre = c.cfg.BackoffMax
		}
		for i := 0; i < 50; i++ {
			d := c.backoff(retry)
			if d < pre/2 || d > pre {
				t.Fatalf("retry %d: backoff %v outside [%v, %v]", retry, d, pre/2, pre)
			}
		}
		if pre < prevCap {
			t.Fatalf("retry %d: cap shrank", retry)
		}
		prevCap = pre
	}
	// Deep retries must not overflow the shift into a negative wait.
	for retry := 30; retry <= 70; retry += 10 {
		if d := c.backoff(retry); d < 0 || d > c.cfg.BackoffMax {
			t.Fatalf("retry %d: backoff %v", retry, d)
		}
	}
}

func TestJitterVaries(t *testing.T) {
	c := New(Config{Addr: "unused", BackoffBase: time.Second, BackoffMax: time.Second, JitterSeed: 3})
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		seen[c.backoff(1)] = true
	}
	if len(seen) < 2 {
		t.Error("jitter produced a constant backoff")
	}
}

func TestPushExhaustsRetriesAgainstDeadAddr(t *testing.T) {
	// Reserve a port, then close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := New(Config{
		Addr:        addr,
		Attempts:    3,
		DialTimeout: 200 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		JitterSeed:  1,
	})
	attempts, err := c.Push([]byte("msg"))
	if err == nil {
		t.Fatal("push to dead address succeeded")
	}
	if attempts != 3 {
		t.Errorf("made %d attempts, want 3", attempts)
	}
	if permanent(err) {
		t.Errorf("transport error classified permanent: %v", err)
	}
}

// fakeServer answers every incoming frame with a fixed ack.
func fakeServer(t *testing.T, ack wire.Ack) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if _, _, err := wire.ReadFrame(conn, 0); err != nil {
					return
				}
				wire.WriteFrame(conn, wire.MsgAck, ack.Encode())
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestTypedAckErrorsArePermanent(t *testing.T) {
	cases := []struct {
		code wire.AckCode
		want error
	}{
		{wire.AckVersionMismatch, ErrVersionMismatch},
		{wire.AckSeedMismatch, ErrSeedMismatch},
		{wire.AckCorrupt, ErrRejected},
		{wire.AckUnsupported, ErrRejected},
	}
	for _, c := range cases {
		addr := fakeServer(t, wire.Ack{Code: c.code, Detail: "detail"})
		cl := New(Config{Addr: addr, Attempts: 5, BackoffBase: time.Millisecond, JitterSeed: 1})
		attempts, err := cl.Push([]byte("msg"))
		if !errors.Is(err, c.want) {
			t.Errorf("%v: err = %v, want %v", c.code, err, c.want)
		}
		if attempts != 1 {
			t.Errorf("%v: %d attempts; typed refusals must not be retried", c.code, attempts)
		}
	}
}

// TestTransientAcksAreRetried: wire-level damage (AckBadFrame) and
// server-side failures (AckError) do not condemn the message — the
// retry loop must resend the same payload until attempts run out.
func TestTransientAcksAreRetried(t *testing.T) {
	cases := []struct {
		code wire.AckCode
		want error
	}{
		{wire.AckBadFrame, ErrFrameDamaged},
		{wire.AckError, ErrCoordinator},
	}
	for _, c := range cases {
		addr := fakeServer(t, wire.Ack{Code: c.code, Detail: "detail"})
		cl := New(Config{Addr: addr, Attempts: 3, BackoffBase: time.Millisecond, JitterSeed: 1})
		attempts, err := cl.Push([]byte("msg"))
		if !errors.Is(err, c.want) {
			t.Errorf("%v: err = %v, want %v", c.code, err, c.want)
		}
		if permanent(err) {
			t.Errorf("%v: classified permanent; must be transient", c.code)
		}
		if attempts != 3 {
			t.Errorf("%v: %d attempts, want 3 (retried to exhaustion)", c.code, attempts)
		}
	}
}

func TestOKAck(t *testing.T) {
	addr := fakeServer(t, wire.Ack{Code: wire.AckOK})
	cl := New(Config{Addr: addr, Attempts: 2, BackoffBase: time.Millisecond, JitterSeed: 1})
	attempts, err := cl.Push([]byte("msg"))
	if err != nil || attempts != 1 {
		t.Errorf("push: attempts=%d err=%v", attempts, err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := New(Config{Addr: "x"})
	if c.cfg.Attempts < 1 || c.cfg.DialTimeout <= 0 || c.cfg.IOTimeout <= 0 ||
		c.cfg.BackoffBase <= 0 || c.cfg.BackoffMax < c.cfg.BackoffBase {
		t.Errorf("defaults not applied: %+v", c.cfg)
	}
}
