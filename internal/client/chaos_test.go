package client_test

// Chaos suite for the site client: failpoint faults on the dial,
// write, and read paths must be ridden out by the retry loop, and a
// client pushed through a seeded faultnet proxy must converge to the
// bit-identical fault-free merge — the operational consequence of the
// paper's idempotent, commutative sketch union.
//
// Run with -chaos.seed=N to pin the fault schedule; ci.sh sweeps
// seeds 1..3. External test package: the suite stands up
// internal/server, which itself builds on this client.

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/faultnet"
	"repro/internal/server"
	"repro/internal/sketch"
)

var chaosSeed = flag.Uint64("chaos.seed", 0, "fault schedule seed for the chaos suite (0 = default seed 1)")

func chaosSeeds() []uint64 {
	if *chaosSeed != 0 {
		return []uint64{*chaosSeed}
	}
	return []uint64{1}
}

// chaosCoordinator runs a real coordinator on loopback for the
// convergence tests.
func chaosCoordinator(t *testing.T) (*server.Server, string) {
	t.Helper()
	srv := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// chaosMessages builds per-site sketch messages over overlapping label
// ranges, plus the serial fault-free reference merge.
func chaosMessages(t *testing.T, cfg core.EstimatorConfig, sites int) (msgs [][]byte, ref []byte) {
	t.Helper()
	union := core.NewEstimator(cfg)
	for i := 0; i < sites; i++ {
		est := core.NewEstimator(cfg)
		// Site i observes labels [i·600, i·600+1000): adjacent sites
		// share 400 labels, so the union is a genuine overlap case.
		for x := uint64(i) * 600; x < uint64(i)*600+1000; x++ {
			est.Process(x)
			union.Process(x)
		}
		msg, err := sketch.Envelope(est)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, msg)
	}
	ref, err := union.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return msgs, ref
}

// TestChaosFailpointSitesRetried: an injected fault at each client
// failpoint (dial, write, read) must be treated as transient — the
// loop retries exactly past the injected failures and succeeds.
func TestChaosFailpointSitesRetried(t *testing.T) {
	for _, site := range []string{failpoint.ClientDial, failpoint.ClientWrite, failpoint.ClientRead} {
		t.Run(site, func(t *testing.T) {
			t.Cleanup(failpoint.Reset)
			_, addr := chaosCoordinator(t)
			msgs, _ := chaosMessages(t, core.EstimatorConfig{Capacity: 32, Copies: 3, Seed: 11}, 1)

			failpoint.Enable(site, failpoint.Times(2, errors.New("injected "+site+" fault")))
			cl := client.New(client.Config{Addr: addr, Attempts: 5, BackoffBase: time.Millisecond, JitterSeed: 1})
			attempts, err := cl.Push(msgs[0])
			if err != nil {
				t.Fatalf("push never converged past %s faults: %v", site, err)
			}
			if attempts != 3 {
				t.Errorf("converged in %d attempts, want 3 (two injected failures)", attempts)
			}
			if hits := failpoint.Hits(site); hits != 3 {
				t.Errorf("failpoint hit %d times, want 3", hits)
			}
		})
	}
}

// TestChaosFailpointFaultsExhaustAttempts: a failpoint that never
// recovers must burn every attempt and surface the injected cause.
func TestChaosFailpointFaultsExhaustAttempts(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	_, addr := chaosCoordinator(t)
	injected := errors.New("injected permanent outage")
	failpoint.Enable(failpoint.ClientDial, failpoint.Error(injected))
	cl := client.New(client.Config{Addr: addr, Attempts: 3, BackoffBase: time.Millisecond, JitterSeed: 1})
	attempts, err := cl.Push([]byte("msg"))
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want the injected cause", err)
	}
	if attempts != 3 {
		t.Errorf("%d attempts, want 3 (exhausted)", attempts)
	}
}

// TestChaosConvergesThroughSeededProxy: a client pushing a fleet's
// messages serially through a seeded fault proxy — rejected dials,
// mid-frame cuts, corrupted bytes, swallowed acks, duplicated
// deliveries — must leave the coordinator bit-identical to the
// fault-free serial union, and the same seed must reproduce the same
// fault trace and state exactly.
func TestChaosConvergesThroughSeededProxy(t *testing.T) {
	for _, seed := range chaosSeeds() {
		cfg := core.EstimatorConfig{Capacity: 128, Copies: 3, Seed: 808}
		msgs, ref := chaosMessages(t, cfg, 8)

		run := func() (snapshot []byte, trace string) {
			srv, addr := chaosCoordinator(t)
			p, err := faultnet.New(addr, faultnet.Seeded(seed))
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			cl := client.New(client.Config{
				Addr:        p.Addr(),
				Attempts:    25,
				DialTimeout: time.Second,
				IOTimeout:   250 * time.Millisecond,
				BackoffBase: time.Millisecond,
				BackoffMax:  8 * time.Millisecond,
				JitterSeed:  1,
			})
			for i, msg := range msgs {
				if _, err := cl.Push(msg); err != nil {
					t.Fatalf("seed %d: site %d never converged: %v", seed, i, err)
				}
			}
			p.Close()
			snapshot, err = srv.SnapshotGroup(cfg.Seed)
			if err != nil {
				t.Fatal(err)
			}
			return snapshot, p.TraceString()
		}

		snap1, trace1 := run()
		if !bytes.Equal(snap1, ref) {
			t.Fatalf("seed %d: chaos state differs from fault-free serial union", seed)
		}
		snap2, trace2 := run()
		if !bytes.Equal(snap1, snap2) || trace1 != trace2 {
			t.Fatalf("seed %d: replay diverged\n--- trace 1\n%s--- trace 2\n%s", seed, trace1, trace2)
		}
	}
}
