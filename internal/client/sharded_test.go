package client_test

// Tests for the batched push session and the ring-aware sharded
// dialer, run against real in-process coordinators. They live in an
// external test package because they stand up internal/server, which
// itself builds on this client.

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/failpoint"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/sketch/kmv"

	_ "repro/internal/sketch/kinds"
)

// startServer runs srv on an ephemeral loopback listener; shutdown is
// wired into test cleanup.
func startServer(t *testing.T, srv *server.Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// groupEnvelopes builds n envelopes in n distinct merge groups (one
// kmv sketch per coordination seed; the seed feeds the config digest).
func groupEnvelopes(t *testing.T, n int) [][]byte {
	t.Helper()
	envs := make([][]byte, n)
	for i := range envs {
		sk := kmv.New(4, uint64(1000+i))
		for x := uint64(0); x < 16; x++ {
			sk.Process(x * uint64(i+1))
		}
		env, err := sketch.Envelope(sk)
		if err != nil {
			t.Fatal(err)
		}
		envs[i] = env
	}
	return envs
}

func batchConfig(addr string) client.Config {
	return client.Config{
		Addr:        addr,
		Attempts:    4,
		BackoffBase: time.Millisecond,
		IOTimeout:   2 * time.Second,
		JitterSeed:  1,
	}
}

// TestPushBatchDeliversAll: one connection, many groups, every
// envelope acked and absorbed.
func TestPushBatchDeliversAll(t *testing.T) {
	srv := server.New(server.Config{})
	addr := startServer(t, srv)
	envs := groupEnvelopes(t, 64)

	cl := client.New(batchConfig(addr))
	pushed, err := cl.PushBatch(envs)
	if err != nil || pushed != len(envs) {
		t.Fatalf("PushBatch: pushed=%d err=%v", pushed, err)
	}
	st := srv.Stats()
	if st.SketchesAbsorbed != int64(len(envs)) || len(st.Groups) != len(envs) {
		t.Fatalf("server absorbed %d into %d groups, want %d/%d",
			st.SketchesAbsorbed, len(st.Groups), len(envs), len(envs))
	}
	if st.ConnsAccepted != 1 {
		t.Errorf("batch used %d connections, want 1", st.ConnsAccepted)
	}
}

// TestPushBatchResumesAfterTransientWrite: a failed frame write drops
// the connection; the batch must redial and resume at the failing
// envelope with nothing lost.
func TestPushBatchResumesAfterTransientWrite(t *testing.T) {
	srv := server.New(server.Config{})
	addr := startServer(t, srv)
	envs := groupEnvelopes(t, 20)

	injected := errors.New("injected write fault")
	failpoint.Enable(failpoint.ClientWrite, failpoint.Times(1, injected))
	defer failpoint.Disable(failpoint.ClientWrite)

	cl := client.New(batchConfig(addr))
	pushed, err := cl.PushBatch(envs)
	if err != nil || pushed != len(envs) {
		t.Fatalf("PushBatch: pushed=%d err=%v", pushed, err)
	}
	st := srv.Stats()
	if st.SketchesAbsorbed != int64(len(envs)) {
		t.Fatalf("absorbed %d, want %d", st.SketchesAbsorbed, len(envs))
	}
	if st.ConnsAccepted < 2 {
		t.Errorf("expected a reconnect after the injected fault, saw %d conns", st.ConnsAccepted)
	}
}

// TestPushBatchLostAckRedelivers: an ack lost after the server
// absorbed the push forces a redelivery — at-least-once — and the
// duplicate must not change the group state (idempotent merge).
func TestPushBatchLostAckRedelivers(t *testing.T) {
	srv := server.New(server.Config{})
	addr := startServer(t, srv)
	envs := groupEnvelopes(t, 8)

	// Control: the same envelopes absorbed once each.
	ctl := server.New(server.Config{})
	ctlAddr := startServer(t, ctl)
	if pushed, err := client.New(batchConfig(ctlAddr)).PushBatch(envs); err != nil || pushed != len(envs) {
		t.Fatalf("control push: %d, %v", pushed, err)
	}

	injected := errors.New("injected read fault")
	failpoint.Enable(failpoint.ClientRead, failpoint.Times(1, injected))
	defer failpoint.Disable(failpoint.ClientRead)

	cl := client.New(batchConfig(addr))
	pushed, err := cl.PushBatch(envs)
	if err != nil || pushed != len(envs) {
		t.Fatalf("PushBatch: pushed=%d err=%v", pushed, err)
	}
	st := srv.Stats()
	if st.SketchesAbsorbed != int64(len(envs))+1 {
		t.Fatalf("absorbed %d, want %d (one duplicate redelivery)", st.SketchesAbsorbed, len(envs)+1)
	}
	// The duplicated delivery must leave every group byte-identical to
	// the duplicate-free control.
	for i := range envs {
		seed := uint64(1000 + i)
		got, err := srv.SnapshotGroup(seed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ctl.SnapshotGroup(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("group seed %d diverged after duplicate delivery", seed)
		}
	}
}

// TestPushBatchPermanentAborts: a typed refusal condemns the batch at
// the offending envelope; earlier envelopes stay delivered.
func TestPushBatchPermanentAborts(t *testing.T) {
	srv := server.New(server.Config{RequireKind: "gt"})
	addr := startServer(t, srv)
	envs := groupEnvelopes(t, 5) // kmv: every push is refused

	cl := client.New(batchConfig(addr))
	pushed, err := cl.PushBatch(envs)
	if !errors.Is(err, client.ErrKindMismatch) {
		t.Fatalf("err = %v, want ErrKindMismatch", err)
	}
	if pushed != 0 {
		t.Fatalf("pushed = %d, want 0", pushed)
	}
}

// TestShardedRoutesByRing: every envelope lands on exactly the shard
// the ring assigns its group to, via Push and PushBatch alike.
func TestShardedRoutesByRing(t *testing.T) {
	const shards = 3
	ring := cluster.NewRing(shards, 0, 77)
	srvs := make([]*server.Server, shards)
	addrs := make([]string, shards)
	for i := range srvs {
		srvs[i] = server.New(server.Config{})
		addrs[i] = startServer(t, srvs[i])
	}
	sc, err := client.NewSharded(ring, addrs, batchConfig(""))
	if err != nil {
		t.Fatal(err)
	}

	envs := groupEnvelopes(t, 120)
	half := len(envs) / 2
	for _, env := range envs[:half] {
		if _, _, err := sc.Push(env); err != nil {
			t.Fatal(err)
		}
	}
	if pushed, err := sc.PushBatch(envs[half:]); err != nil || pushed != len(envs)-half {
		t.Fatalf("PushBatch: pushed=%d err=%v", pushed, err)
	}

	var total int64
	for i, srv := range srvs {
		st := srv.Stats()
		total += st.SketchesAbsorbed
		for _, g := range st.Groups {
			key := cluster.GroupKey{Kind: sketch.KindKMV, Digest: mustParseDigest(t, g.Digest)}
			if owner := ring.Owner(key); owner != i {
				t.Errorf("group %s landed on shard %d, ring owner is %d", g.Digest, i, owner)
			}
		}
	}
	if total != int64(len(envs)) {
		t.Fatalf("cluster absorbed %d envelopes, want %d", total, len(envs))
	}
}

func mustParseDigest(t *testing.T, hex string) uint64 {
	t.Helper()
	var d uint64
	for _, c := range []byte(hex) {
		d <<= 4
		switch {
		case c >= '0' && c <= '9':
			d |= uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d |= uint64(c-'a') + 10
		default:
			t.Fatalf("bad digest hex %q", hex)
		}
	}
	return d
}

// TestShardedReportsFailingShard: a permanent refusal from one shard
// surfaces as a *ShardError naming it, while the other shards still
// receive their envelopes.
func TestShardedReportsFailingShard(t *testing.T) {
	const shards = 3
	ring := cluster.NewRing(shards, 0, 77)
	srvs := make([]*server.Server, shards)
	addrs := make([]string, shards)
	const pinned = 1
	for i := range srvs {
		cfg := server.Config{}
		if i == pinned {
			cfg.RequireKind = "gt" // refuses every kmv push permanently
		}
		srvs[i] = server.New(cfg)
		addrs[i] = startServer(t, srvs[i])
	}
	sc, err := client.NewSharded(ring, addrs, batchConfig(""))
	if err != nil {
		t.Fatal(err)
	}

	envs := groupEnvelopes(t, 90)
	pushed, err := sc.PushBatch(envs)
	if !errors.Is(err, client.ErrKindMismatch) {
		t.Fatalf("err = %v, want wrapped ErrKindMismatch", err)
	}
	var se *client.ShardError
	if !errors.As(err, &se) || se.Shard != pinned || se.Addr != addrs[pinned] {
		t.Fatalf("err = %v, want *ShardError for shard %d", err, pinned)
	}
	if srvs[pinned].Stats().SketchesAbsorbed != 0 {
		t.Error("pinned shard absorbed refused envelopes")
	}
	var healthy int64
	for i, srv := range srvs {
		if i != pinned {
			healthy += srv.Stats().SketchesAbsorbed
		}
	}
	if healthy == 0 || int(healthy) != pushed {
		t.Fatalf("healthy shards absorbed %d, reported pushed %d", healthy, pushed)
	}

	// The one-shot Push path wraps the same way.
	var envOnPinned []byte
	for _, env := range envs {
		if shard, _ := sc.Route(env); shard == pinned {
			envOnPinned = env
			break
		}
	}
	if envOnPinned == nil {
		t.Fatal("no envelope routed to the pinned shard")
	}
	if _, _, err := sc.Push(envOnPinned); !errors.As(err, &se) || se.Shard != pinned {
		t.Fatalf("Push err = %v, want *ShardError for shard %d", err, pinned)
	}
}

// TestShardedConstructionAndRouting: address/shard count mismatches
// and unroutable bytes fail loudly.
func TestShardedConstructionAndRouting(t *testing.T) {
	ring := cluster.NewRing(3, 8, 1)
	if _, err := client.NewSharded(ring, []string{"a", "b"}, client.Config{}); err == nil {
		t.Error("NewSharded accepted 2 addresses for a 3-shard router")
	}
	sc, err := client.NewSharded(ring, []string{"a", "b", "c"}, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Route([]byte("junk")); err == nil {
		t.Error("Route accepted non-envelope bytes")
	}
	if _, _, err := sc.Push([]byte("junk")); err == nil {
		t.Error("Push accepted non-envelope bytes")
	}
}
