package server_test

// Replay idempotence property, checked for every registered sketch
// kind: because group joins are commutative, associative, and
// idempotent, a WAL that delivers records at-least-once — duplicated
// absorbs, a full-log replay, a replay of the replayed state's
// snapshot, or a snapshot plus a live tail — must always land the
// coordinator on the byte-identical group state an uninterrupted run
// produces. This is the algebraic fact the whole durability design
// leans on; if a new kind breaks it, this test names the kind.

import (
	"testing"

	"repro/internal/server"
	"repro/internal/sketch"
)

// kindEnvelopes builds three same-group envelopes of one kind with
// overlapping label ranges, so merges genuinely deduplicate.
func kindEnvelopes(t *testing.T, info sketch.KindInfo) [][]byte {
	t.Helper()
	envs := make([][]byte, 3)
	for i := range envs {
		sk := info.New(0.2, 4242)
		base := uint64(i) * 40
		for x := base; x < base+60; x++ {
			sk.Process(x*2654435761 + 1)
		}
		env, err := sketch.Envelope(sk)
		if err != nil {
			t.Fatalf("%s: envelope: %v", info.Name, err)
		}
		envs[i] = env
	}
	return envs
}

// rebootRecovered boots a fresh coordinator on dir and forces its
// recovery (SnapshotWAL runs replay first), returning it live.
func rebootRecovered(t *testing.T, dir string) *server.Server {
	t.Helper()
	srv := server.New(server.Config{WAL: testWALConfig(dir)})
	if _, err := srv.SnapshotWAL(); err != nil {
		t.Fatalf("recovery on reboot: %v", err)
	}
	return srv
}

func TestWALReplayIdempotencePerKind(t *testing.T) {
	kinds := sketch.Kinds()
	if len(kinds) == 0 {
		t.Fatal("no sketch kinds registered")
	}
	for _, info := range kinds {
		t.Run(info.Name, func(t *testing.T) {
			envs := kindEnvelopes(t, info)
			ref := controlSnapshots(t, envs)

			// At-least-once delivery at the merge layer: duplicated
			// absorbs in any interleaving change nothing.
			dup := controlSnapshots(t, [][]byte{
				envs[0], envs[1], envs[0], envs[2], envs[1], envs[2], envs[0],
			})
			assertSnapshotsEqual(t, info.Name+"/duplicate-delivery", dup, ref)

			// Full-log replay, then a second boot that replays the
			// snapshot the first reboot cut from its replayed state.
			dir := t.TempDir()
			srv := server.New(server.Config{WAL: testWALConfig(dir)})
			for _, e := range envs {
				if err := srv.Absorb(e); err != nil {
					t.Fatal(err)
				}
			}
			srv.Abort()
			boot1 := rebootRecovered(t, dir)
			snaps, err := boot1.Snapshots()
			if err != nil {
				t.Fatal(err)
			}
			assertSnapshotsEqual(t, info.Name+"/full-log-replay", snaps, ref)
			if st := boot1.Stats().WAL; st.ReplayedRecords < 3 {
				t.Fatalf("full-log boot replayed %d records, want >= 3", st.ReplayedRecords)
			}
			boot1.Abort()
			boot2 := rebootRecovered(t, dir)
			if snaps, err = boot2.Snapshots(); err != nil {
				t.Fatal(err)
			}
			assertSnapshotsEqual(t, info.Name+"/snapshot-of-replay", snaps, ref)
			if st := boot2.Stats().WAL; st.ReplayedSnapshotGroups < 1 {
				t.Fatal("second boot never replayed the snapshot")
			}
			boot2.Abort()

			// Snapshot + live tail: records appended after the cut are
			// joined onto the restored snapshot state.
			dir2 := t.TempDir()
			srv2 := server.New(server.Config{WAL: testWALConfig(dir2)})
			for _, e := range envs[:2] {
				if err := srv2.Absorb(e); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := srv2.SnapshotWAL(); err != nil {
				t.Fatal(err)
			}
			if err := srv2.Absorb(envs[2]); err != nil {
				t.Fatal(err)
			}
			srv2.Abort()
			boot3 := rebootRecovered(t, dir2)
			if snaps, err = boot3.Snapshots(); err != nil {
				t.Fatal(err)
			}
			assertSnapshotsEqual(t, info.Name+"/snapshot-plus-tail", snaps, ref)
			if st := boot3.Stats().WAL; st.ReplayedSnapshotGroups < 1 || st.ReplayedRecords < 1 {
				t.Fatalf("snapshot+tail boot replayed %d groups, %d records — both must be nonzero",
					st.ReplayedSnapshotGroups, st.ReplayedRecords)
			}
			boot3.Abort()
		})
	}
}
