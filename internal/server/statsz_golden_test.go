package server_test

// Golden test for the /statsz introspection surface: the JSON shape —
// key names, nesting, group layout — is an operator-facing contract
// (dashboards and scrapers bind to it), so a renamed or vanished field
// must fail loudly here. Timing-dependent values are normalized before
// comparison; everything else in the fixture is deterministic.
//
// Regenerate with: go test ./internal/server -run StatszGolden -update-golden

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/wire"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// volatileStatszKeys are timing- or scheduling-dependent: their values
// are normalized to a sentinel, but the keys must still be present.
var volatileStatszKeys = map[string]bool{
	"merge_nanos_total": true,
	"merge_nanos_max":   true,
	"merge_nanos_mean":  true,
	"active_conns":      true,
}

func normalizeStatsz(m map[string]any) {
	for k, v := range m {
		if volatileStatszKeys[k] {
			m[k] = "<volatile>"
			continue
		}
		if groups, ok := v.([]any); ok && k == "groups" {
			for _, g := range groups {
				if gm, ok := g.(map[string]any); ok {
					normalizeStatsz(gm)
				}
			}
		}
	}
}

func TestStatszGoldenShape(t *testing.T) {
	srv := server.New(server.Config{})
	addr := startServer(t, srv)

	// A fully deterministic fixture: one fixed sketch absorbed into the
	// default stream and one into a named stream, one query served.
	// Every non-volatile byte of the snapshot follows.
	est := core.NewEstimator(core.EstimatorConfig{Capacity: 32, Copies: 3, Seed: 9})
	named := core.NewEstimator(core.EstimatorConfig{Capacity: 32, Copies: 3, Seed: 9})
	for x := uint64(0); x < 100; x++ {
		est.Process(x)
		named.Process(x + 1000)
	}
	msg, err := sketch.Envelope(est)
	if err != nil {
		t.Fatal(err)
	}
	namedMsg, err := sketch.Envelope(named)
	if err != nil {
		t.Fatal(err)
	}
	cl := testClient(addr)
	if _, err := cl.Push(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.PushNamed("clicks", namedMsg); err != nil {
		t.Fatal(err)
	}
	// The flat query is now ambiguous — seed 9 matches both stream
	// groups — while the expression query names its streams.
	if _, err := cl.DistinctCount(9); err == nil {
		t.Fatal("expected ambiguity error: seed 9 matches two stream groups")
	}
	if _, err := cl.QueryExpr(wire.ExprQuery{Expr: wire.Union(wire.Leaf(""), wire.Leaf("clicks"))}); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	srv.StatszHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	if rec.Code != 200 {
		t.Fatalf("statsz status %d", rec.Code)
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("statsz is not JSON: %v", err)
	}
	normalizeStatsz(m)
	got, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	goldenPath := filepath.Join("testdata", "statsz.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("/statsz shape drifted from golden (regenerate with -update-golden if intentional)\n--- got\n%s--- want\n%s", got, want)
	}

	// Belt and braces: every JSON tag declared on Stats and GroupStats
	// must appear in the rendered output — a field silently dropped
	// from the wire (e.g. by a misplaced omitempty on a field that is
	// zero here) fails even if the golden was blindly regenerated.
	rendered := string(got)
	for _, typ := range []reflect.Type{reflect.TypeOf(server.Stats{}), reflect.TypeOf(server.GroupStats{}), reflect.TypeOf(server.StreamStats{})} {
		for i := 0; i < typ.NumField(); i++ {
			tag := strings.Split(typ.Field(i).Tag.Get("json"), ",")[0]
			if tag == "" || tag == "-" {
				continue
			}
			if strings.Contains(typ.Field(i).Tag.Get("json"), "omitempty") {
				continue // legitimately absent in this fixture
			}
			if !strings.Contains(rendered, `"`+tag+`"`) {
				t.Errorf("field %s.%s (json %q) missing from /statsz output", typ.Name(), typ.Field(i).Name, tag)
			}
		}
	}
}
