package server_test

// Server-side contract tests for the expression evaluator: ambiguity
// errors that name their candidates, capability gating over the wire
// (AckUnsupported), and mismatch refusals (AckSeedMismatch).

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/wire"
)

// pushNamed builds a gt estimator over [lo, hi) and pushes it into the
// named stream.
func pushNamed(t *testing.T, cl *client.Client, stream string, seed, lo, hi uint64) {
	t.Helper()
	est := core.NewEstimator(core.EstimatorConfig{Capacity: 32, Copies: 3, Seed: seed})
	for x := lo; x < hi; x++ {
		est.Process(x * 2654435761)
	}
	env, err := sketch.Envelope(est)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.PushNamed(stream, env); err != nil {
		t.Fatalf("push %q: %v", stream, err)
	}
}

// TestSelectGroupAmbiguityNamesCandidates is the satellite regression:
// when a flat query matches groups in several streams, the refusal
// must name each candidate's stream and kind so the operator can see
// what to narrow by — not just a count.
func TestSelectGroupAmbiguityNamesCandidates(t *testing.T) {
	srv := server.New(server.Config{})
	addr := startServer(t, srv)
	cl := testClient(addr)

	pushNamed(t, cl, "", 9, 0, 100)
	pushNamed(t, cl, "clicks", 9, 50, 150)
	pushNamed(t, cl, "installs", 9, 100, 200)

	_, err := cl.DistinctCount(9)
	if err == nil {
		t.Fatal("flat query across three stream groups succeeded")
	}
	msg := err.Error()
	for _, want := range []string{"(default)", `"clicks"`, `"installs"`, "kind gt", "seed 9"} {
		if !strings.Contains(msg, want) {
			t.Errorf("ambiguity error does not mention %s:\n%s", want, msg)
		}
	}

	// The same candidates appear when an expression leaf is ambiguous
	// (two configurations of one stream).
	pushNamed(t, cl, "clicks", 11, 0, 100)
	_, err = cl.QueryExpr(wire.ExprQuery{Expr: wire.Union(wire.Leaf("clicks"), wire.Leaf(""))})
	if err == nil {
		t.Fatal("expression over a doubly-configured stream succeeded")
	}
	if msg := err.Error(); !strings.Contains(msg, `"clicks"`) || !strings.Contains(msg, "seed/kind") {
		t.Errorf("leaf ambiguity error unhelpful:\n%s", msg)
	}

	// Narrowing by seed resolves it.
	if _, err := cl.QueryExpr(wire.ExprQuery{HasSeed: true, Seed: 9,
		Expr: wire.Union(wire.Leaf("clicks"), wire.Leaf(""))}); err != nil {
		t.Fatalf("narrowed expression still refused: %v", err)
	}
}

// TestExprUnsupportedKindAcks pins the capability gating over the
// wire: kinds without the needed set capability refuse with
// AckUnsupported (surfaced as client.ErrRejected), and unions keep
// working for every kind.
func TestExprUnsupportedKindAcks(t *testing.T) {
	srv := server.New(server.Config{})
	addr := startServer(t, srv)
	cl := testClient(addr)

	info, ok := sketch.LookupName("fm")
	if !ok {
		t.Fatal("fm kind not registered")
	}
	for _, st := range []string{"a", "b"} {
		sk := info.New(0.25, 7)
		for x := uint64(0); x < 50; x++ {
			sk.Process(x)
		}
		env, err := sketch.Envelope(sk)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.PushNamed(st, env); err != nil {
			t.Fatal(err)
		}
	}

	// Union: the paper's query, every kind supports it.
	if _, err := cl.QueryExpr(wire.ExprQuery{Expr: wire.Union(wire.Leaf("a"), wire.Leaf("b"))}); err != nil {
		t.Fatalf("fm union refused: %v", err)
	}
	// Intersection needs set algebra fm does not have.
	_, err := cl.QueryExpr(wire.ExprQuery{Expr: wire.Intersect(wire.Leaf("a"), wire.Leaf("b"))})
	if !errors.Is(err, client.ErrRejected) {
		t.Fatalf("fm intersect: err = %v, want client.ErrRejected (AckUnsupported)", err)
	}
	if !strings.Contains(err.Error(), "no set operations") {
		t.Errorf("refusal does not explain the missing capability: %v", err)
	}
}

// TestExprInteriorScalarOnlyKind: kmv answers root-level intersections
// (scalar SetAlgebra) but cannot nest them under another operator —
// its bottom-k sample of A∩B is not derivable. The root works, the
// nested form refuses with AckUnsupported.
func TestExprInteriorScalarOnlyKind(t *testing.T) {
	srv := server.New(server.Config{})
	addr := startServer(t, srv)
	cl := testClient(addr)

	info, ok := sketch.LookupName("kmv")
	if !ok {
		t.Fatal("kmv kind not registered")
	}
	for _, st := range []string{"a", "b", "c"} {
		sk := info.New(0.25, 7)
		for x := uint64(0); x < 200; x++ {
			sk.Process(x * 2654435761)
		}
		env, err := sketch.Envelope(sk)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.PushNamed(st, env); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := cl.QueryExpr(wire.ExprQuery{Expr: wire.Intersect(wire.Leaf("a"), wire.Leaf("b"))}); err != nil {
		t.Fatalf("kmv root intersect refused: %v", err)
	}
	if _, err := cl.QueryExpr(wire.ExprQuery{Expr: wire.Jaccard(wire.Leaf("a"), wire.Leaf("b"))}); err != nil {
		t.Fatalf("kmv jaccard refused: %v", err)
	}
	_, err := cl.QueryExpr(wire.ExprQuery{Expr: wire.Union(wire.Intersect(wire.Leaf("a"), wire.Leaf("b")), wire.Leaf("c"))})
	if !errors.Is(err, client.ErrRejected) {
		t.Fatalf("kmv nested intersect: err = %v, want client.ErrRejected (AckUnsupported)", err)
	}
	if !strings.Contains(err.Error(), "cannot nest") {
		t.Errorf("refusal does not explain the nesting limit: %v", err)
	}
}

// TestExprSeedMismatchAck: an expression whose leaves resolve to
// groups with diverged configurations must refuse with the typed
// mismatch ack, same as a mismatched push.
func TestExprSeedMismatchAck(t *testing.T) {
	srv := server.New(server.Config{})
	addr := startServer(t, srv)
	cl := testClient(addr)

	pushNamed(t, cl, "a", 9, 0, 100)
	pushNamed(t, cl, "b", 10, 0, 100)

	_, err := cl.QueryExpr(wire.ExprQuery{Expr: wire.Intersect(wire.Leaf("a"), wire.Leaf("b"))})
	if !errors.Is(err, client.ErrSeedMismatch) {
		t.Fatalf("cross-seed intersect: err = %v, want client.ErrSeedMismatch", err)
	}
}
