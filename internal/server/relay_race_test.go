package server_test

// Regression suite for the relay tier's worst interleaving: flush
// rounds (timer-driven and explicit) racing Shutdown's drain. The
// flushing flag in relayState serializes rounds, Shutdown must never
// hold a lock across the upstream push, and the drain flush must
// still deliver every dirty group — so the whole dance has to finish
// without deadlock and leave the parent bit-identical to a
// coordinator that absorbed every site push directly. Run under
// -race (ci.sh always does).

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/server"
)

// TestRelayFlushRacesShutdownDrain drives concurrent site pushes and
// a FlushRelay hammer against a child whose flush timer actually
// fires, then shuts the child down while the ServerDrain failpoint
// injects one more flush in the middle of the drain — the exact
// "flush fires mid-drain" schedule the flushing flag exists for.
func TestRelayFlushRacesShutdownDrain(t *testing.T) {
	envs := relayEnvelopes(t, 24)
	parent, child, childAddr := relayPair(t, server.RelayConfig{
		FlushInterval: 2 * time.Millisecond, // the timer races for real
	})
	control := server.New(server.Config{})
	controlAddr := startServer(t, control)

	// Fire a flush deterministically in the middle of the drain: the
	// failpoint sits after Shutdown stops accepting and before it
	// waits out the connection drain and runs the final drain flush.
	var drainFlushes atomic.Int32
	failpoint.Enable(failpoint.ServerDrain, func() error {
		drainFlushes.Add(1)
		child.FlushRelay() // a concurrent round; skipping is legal, wedging is not
		return nil
	})
	defer failpoint.Disable(failpoint.ServerDrain)

	// A flush hammer: explicit rounds racing the timer's.
	hammerDone := make(chan struct{})
	var hammerWG sync.WaitGroup
	hammerWG.Add(1)
	go func() {
		defer hammerWG.Done()
		for {
			select {
			case <-hammerDone:
				return
			default:
				child.FlushRelay()
			}
		}
	}()

	// Concurrent site pushes while flushes fire underneath them.
	var pushWG sync.WaitGroup
	for w := 0; w < 3; w++ {
		pushWG.Add(1)
		go func(w int) {
			defer pushWG.Done()
			cl := testClient(childAddr)
			for i := w; i < len(envs); i += 3 {
				if _, err := cl.Push(envs[i]); err != nil {
					t.Errorf("push %d: %v", i, err)
				}
			}
		}(w)
	}
	pushWG.Wait()
	pushAll(t, controlAddr, envs)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := child.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with flush racing the drain: %v", err)
	}
	close(hammerDone)
	hammerWG.Wait()
	if drainFlushes.Load() == 0 {
		t.Fatal("ServerDrain failpoint never fired: the mid-drain flush this test exists for did not happen")
	}

	// The drain flush must have delivered every group's final state:
	// parent bit-identical to the direct-absorb control.
	parentSnaps, err := parent.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	controlSnaps, err := control.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(parentSnaps) != len(envs) || len(controlSnaps) != len(envs) {
		t.Fatalf("snapshot counts: parent %d, control %d, want %d",
			len(parentSnaps), len(controlSnaps), len(envs))
	}
	for i := range parentSnaps {
		p, c := parentSnaps[i], controlSnaps[i]
		if p.Digest != c.Digest || !bytes.Equal(p.Envelope, c.Envelope) {
			t.Fatalf("group %016x diverged between relayed parent and direct control", p.Digest)
		}
	}
}
