package server_test

// Golden test for the /statsz surface in durable mode: the wal
// section's geometry, counters, and recovery fields are operator
// contract like the rest of the snapshot — a dashboard watching
// appended_records or truncated_tail_bytes must not find the key
// renamed. The WAL directory is a temp path and is normalized;
// everything else in the fixture is deterministic (fixed envelopes,
// SyncAlways fsync accounting, one explicit snapshot cut).
//
// Regenerate with: go test ./internal/server -run StatszWALGolden -update-golden

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/sketch/kmv"
)

func TestStatszWALGoldenShape(t *testing.T) {
	srv := server.New(server.Config{WAL: &server.WALConfig{
		Dir:           t.TempDir(),
		SnapshotEvery: time.Hour, // parked: the explicit cut below is the only one
	}})
	addr := startServer(t, srv)

	// Deterministic fixture: two kmv groups logged, one snapshot cut,
	// one more append landing in the post-cut tail.
	cl := testClient(addr)
	for i := 0; i < 3; i++ {
		sk := kmv.New(4, uint64(7000+i%2))
		for x := uint64(0); x < 32; x++ {
			sk.Process(x*uint64(3+i) + 1)
		}
		env, err := sketch.Envelope(sk)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Push(env); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			if _, err := srv.SnapshotWAL(); err != nil {
				t.Fatal(err)
			}
		}
	}

	rec := httptest.NewRecorder()
	srv.StatszHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	if rec.Code != 200 {
		t.Fatalf("statsz status %d", rec.Code)
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("statsz is not JSON: %v", err)
	}
	normalizeStatsz(m)
	if w, ok := m["wal"].(map[string]any); ok {
		w["dir"] = "<dir>" // temp path
	} else {
		t.Fatal("wal section missing from durable-mode /statsz")
	}
	got, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	goldenPath := filepath.Join("testdata", "statsz_wal.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("durable /statsz shape drifted from golden (regenerate with -update-golden if intentional)\n--- got\n%s--- want\n%s", got, want)
	}

	// Every non-omitempty tag on the wal section must render.
	rendered := string(got)
	typ := reflect.TypeOf(server.WALStats{})
	for i := 0; i < typ.NumField(); i++ {
		tag := strings.Split(typ.Field(i).Tag.Get("json"), ",")[0]
		if tag == "" || tag == "-" {
			continue
		}
		if strings.Contains(typ.Field(i).Tag.Get("json"), "omitempty") {
			continue
		}
		if !strings.Contains(rendered, `"`+tag+`"`) {
			t.Errorf("field WALStats.%s (json %q) missing from durable /statsz output", typ.Field(i).Name, tag)
		}
	}
}
