package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sketch"
	"repro/internal/wal"
	"repro/internal/wire"
)

// WALConfig makes the coordinator durable: every accepted envelope is
// appended to a write-ahead log before it is merged or acked, and a
// crashed coordinator replays the log (snapshot first, then the
// surviving segments) to rebuild its merge groups before the listener
// accepts.
//
// The correctness argument is the relay tier's, pointed at disk: the
// log is at-least-once — a crash between append and merge, or between
// a snapshot and the records it overlaps, makes replay re-deliver —
// and the group merge is a commutative, associative, idempotent
// lattice join, so every replay schedule converges to the state an
// uninterrupted coordinator would hold. The recovery matrix
// (recovery_test.go, distnet) kills the server at every wal/*
// failpoint and asserts exactly that, byte for byte.
type WALConfig struct {
	// Dir is the log directory (created if missing).
	Dir string
	// SegmentBytes rotates log segments at this size; <= 0 selects
	// wal.DefaultSegmentBytes.
	SegmentBytes int64
	// Sync is the append fsync policy (wal.SyncAlways by default: an
	// acked push survives a power cut, at one fsync per push).
	Sync wal.SyncPolicy
	// SnapshotEvery is the period between merged-state snapshots,
	// which bound replay time and prune the log; <= 0 selects
	// DefaultSnapshotInterval. Shutdown always writes a final one.
	SnapshotEvery time.Duration
}

// DefaultSnapshotInterval is the snapshot period when WALConfig
// leaves it zero.
const DefaultSnapshotInterval = time.Minute

// walState is the running durability layer: the log, the snapshot
// loop's plumbing, and the /statsz counters.
type walState struct {
	cfg WALConfig
	wg  sync.WaitGroup

	// seal is the snapshot barrier, not a field guard: every
	// append→merge window holds it for read, and a snapshot round
	// holds it for write while it pins the segment cut and collects
	// group state. That drain guarantees every record in a segment
	// below the cut is already merged — so pruning those segments
	// loses nothing — while records appended after the cut was pinned
	// land in the kept segments and replay on top of the snapshot,
	// where idempotent joins absorb the overlap.
	seal sync.RWMutex // guards:

	mu sync.Mutex // guards: snapshotting
	// snapshotting serializes snapshot rounds, like the relay's
	// flushing flag: the timer, explicit SnapshotWAL calls, and the
	// shutdown snapshot must not interleave.
	snapshotting bool

	// recoverOnce runs Open+Replay exactly once, before the first
	// append; log, recErr, and replay are written inside it and read
	// only after it returns (or after recovered is observed true).
	recoverOnce sync.Once
	log         *wal.Log
	recErr      error
	replay      wal.ReplayStats
	recovered   atomic.Bool

	appendErrors atomic.Int64
	snapErrors   atomic.Int64
	snapSkips    atomic.Int64
	lastErr      atomic.Value // string
}

// ensureRecovered opens the log and replays it into the group table,
// exactly once. Serve calls it before accepting; Absorb and
// SnapshotWAL call it so an embedder needs no listener. An error
// means recovery failed and the coordinator refuses to serve (every
// later call returns the same error).
func (s *Server) ensureRecovered() error {
	w := s.wal
	if w == nil {
		return nil
	}
	w.recoverOnce.Do(func() { w.recErr = s.recoverWAL() })
	return w.recErr
}

// recoverWAL is the boot sequence: open the log (torn tails are
// truncated there), replay the snapshot and segments into the group
// table, and — if replay stopped at mid-log damage — immediately
// snapshot the restored state so the unreadable suffix is superseded
// rather than re-read on every boot.
func (s *Server) recoverWAL() error {
	w := s.wal
	log, err := wal.Open(w.cfg.Dir, wal.Options{
		SegmentBytes:   w.cfg.SegmentBytes,
		MaxRecordBytes: s.cfg.MaxPayload,
		Sync:           w.cfg.Sync,
	})
	if err != nil {
		return fmt.Errorf("server: wal: %w", err)
	}
	st, err := log.Replay(func(stream string, envelope []byte) error {
		sk, oerr := sketch.Open(envelope)
		if oerr != nil {
			return fmt.Errorf("replaying logged envelope: %w", oerr)
		}
		info, _ := sketch.Lookup(sk.Kind())
		// Pre-stream records replay with stream "" — the default
		// stream, exactly the group a plain MsgPush would have reached.
		if ack := s.foldIntoGroup(stream, sk, info.Name, len(envelope)); ack.Code != wire.AckOK {
			return fmt.Errorf("replaying logged envelope: %s: %s", ack.Code, ack.Detail)
		}
		return nil
	})
	if err != nil {
		log.Close()
		return fmt.Errorf("server: wal recovery: %w", err)
	}
	w.log = log
	w.replay = st
	if st.Damaged {
		s.logf("unionstreamd: wal replay stopped at damaged %s; snapshotting restored state", st.DamagedFile)
		if serr := s.snapshotNow(); serr != nil {
			log.Close()
			return fmt.Errorf("server: wal recovery: superseding damaged %s: %w", st.DamagedFile, serr)
		}
	}
	w.recovered.Store(true)
	if st.SnapshotGroups > 0 || st.Records > 0 {
		s.logf("unionstreamd: wal replayed %d snapshot groups + %d records (%d bytes) from %s",
			st.SnapshotGroups, st.Records, st.Bytes, w.cfg.Dir)
	}
	return nil
}

// walLoop is the snapshot timer goroutine.
func (s *Server) walLoop() {
	defer s.wal.wg.Done()
	every := s.wal.cfg.SnapshotEvery
	if every <= 0 {
		every = DefaultSnapshotInterval
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
		}
		if _, err := s.SnapshotWAL(); err != nil {
			s.logf("unionstreamd: wal snapshot: %v", err)
		}
	}
}

// SnapshotWAL writes a merged-state snapshot (one envelope per group)
// and prunes the segments it supersedes, returning how many groups it
// captured. It is what the snapshot timer runs, what Shutdown runs
// last, and what tests call to make snapshot timing deterministic.
// Rounds are serialized; a round that finds one in progress returns
// immediately.
func (s *Server) SnapshotWAL() (groups int, err error) {
	w := s.wal
	if w == nil {
		return 0, errors.New("server: no WAL configured")
	}
	if err := s.ensureRecovered(); err != nil {
		return 0, err
	}
	w.mu.Lock()
	if w.snapshotting {
		w.mu.Unlock()
		w.snapSkips.Add(1)
		return 0, nil
	}
	w.snapshotting = true
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.snapshotting = false
		w.mu.Unlock()
	}()
	return s.snapshotGroupsToWAL()
}

// snapshotNow is the recovery-time snapshot: recoverOnce is still
// running, so it must not re-enter ensureRecovered (and needs no
// round serialization — nothing else is started yet).
func (s *Server) snapshotNow() error {
	_, err := s.snapshotGroupsToWAL()
	return err
}

// snapshotGroupsToWAL collects every group's merged envelope under
// the seal barrier and hands them to the log with the pinned cut.
func (s *Server) snapshotGroupsToWAL() (int, error) {
	w := s.wal
	// Drain every in-flight append→merge window, then pin the cut:
	// from here, all records in segments below it are merged into the
	// state we collect.
	w.seal.Lock()
	cut := w.log.CurrentSegment()
	snaps, err := s.Snapshots()
	w.seal.Unlock()
	if err != nil {
		w.snapErrors.Add(1)
		w.lastErr.Store(err.Error())
		return 0, fmt.Errorf("server: wal snapshot: %w", err)
	}
	records := make([]wal.Record, 0, len(snaps))
	for _, sn := range snaps {
		if sn.Envelope != nil {
			records = append(records, wal.Record{Stream: sn.Stream, Envelope: sn.Envelope})
		}
	}
	if err := w.log.Snapshot(cut, records); err != nil {
		w.snapErrors.Add(1)
		w.lastErr.Store(err.Error())
		return 0, fmt.Errorf("server: wal snapshot: %w", err)
	}
	return len(records), nil
}

// Abort is the recovery suites' crash switch: it severs the listener
// and every connection, stops the loops, and abandons the WAL exactly
// where it stands — no drain flush, no final snapshot, no fsync
// beyond what the append path already did — so a test can reboot from
// the directory a real crash would have left. It is idempotent with
// Shutdown (whichever runs first wins).
func (s *Server) Abort() {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return
	}
	s.shutdown = true
	close(s.quit)
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	started := s.started
	s.mu.Unlock()
	s.connWG.Wait()
	if s.relay != nil {
		s.relay.wg.Wait()
	}
	if started {
		close(s.jobs)
		s.workerWG.Wait()
	}
	if w := s.wal; w != nil && w.recovered.Load() {
		// Release the directory so the rebooted server can reopen it;
		// Close's sync does not make the crash gentler — the bytes a
		// mid-append failpoint left half-written stay half-written.
		w.log.Close()
	}
	s.logf("unionstreamd: aborted (crash switch)")
}

// WALStats is the /statsz section a durable coordinator adds: the
// log's geometry and counters, the recovery outcome, and the append/
// snapshot error tallies.
type WALStats struct {
	Dir        string `json:"dir"`
	SyncPolicy string `json:"sync_policy"`
	// Recovered reports that boot-time replay completed; ReplayDamaged
	// that it stopped early at a damaged record (the restored prefix
	// was immediately re-snapshotted).
	Recovered     bool `json:"recovered"`
	ReplayDamaged bool `json:"replay_damaged"`
	// CurrentSegment, LiveSegments, and SnapshotSegment describe the
	// log's on-disk geometry; the Appended/Fsyncs/Rotations counters
	// its append path; Snapshots/LastSnapshotGroups/PrunedSegments its
	// snapshot path; the Replayed counters what boot restored.
	CurrentSegment         uint64 `json:"current_segment"`
	LiveSegments           int64  `json:"live_segments"`
	SnapshotSegment        uint64 `json:"snapshot_segment"`
	AppendedRecords        int64  `json:"appended_records"`
	AppendedBytes          int64  `json:"appended_bytes"`
	Fsyncs                 int64  `json:"fsyncs"`
	Rotations              int64  `json:"rotations"`
	Snapshots              int64  `json:"snapshots"`
	LastSnapshotGroups     int64  `json:"last_snapshot_groups"`
	PrunedSegments         int64  `json:"pruned_segments"`
	ReplayedSnapshotGroups int64  `json:"replayed_snapshot_groups"`
	ReplayedRecords        int64  `json:"replayed_records"`
	ReplayedBytes          int64  `json:"replayed_bytes"`
	TruncatedTailBytes     int64  `json:"truncated_tail_bytes"`
	AppendErrors           int64  `json:"append_errors"`
	SnapshotErrors         int64  `json:"snapshot_errors"`
	SnapshotSkips          int64  `json:"snapshot_skips"`
	LastError              string `json:"last_error,omitempty"`
}

// walStats assembles the /statsz wal block. Before recovery has run
// (or after it failed) only the configuration is reported.
func (s *Server) walStats() *WALStats {
	w := s.wal
	if w == nil {
		return nil
	}
	ws := &WALStats{
		Dir:            w.cfg.Dir,
		SyncPolicy:     w.cfg.Sync.String(),
		AppendErrors:   w.appendErrors.Load(),
		SnapshotErrors: w.snapErrors.Load(),
		SnapshotSkips:  w.snapSkips.Load(),
	}
	if v, ok := w.lastErr.Load().(string); ok {
		ws.LastError = v
	}
	if !w.recovered.Load() {
		return ws
	}
	ws.Recovered = true
	ws.ReplayDamaged = w.replay.Damaged
	ls := w.log.Stats()
	ws.CurrentSegment = ls.CurrentSegment
	ws.LiveSegments = ls.LiveSegments
	ws.SnapshotSegment = ls.SnapshotSegment
	ws.AppendedRecords = ls.AppendedRecords
	ws.AppendedBytes = ls.AppendedBytes
	ws.Fsyncs = ls.Fsyncs
	ws.Rotations = ls.Rotations
	ws.Snapshots = ls.Snapshots
	ws.LastSnapshotGroups = ls.LastSnapshotGroups
	ws.PrunedSegments = ls.PrunedSegments
	ws.ReplayedSnapshotGroups = ls.ReplayedSnapshotGroups
	ws.ReplayedRecords = ls.ReplayedRecords
	ws.ReplayedBytes = ls.ReplayedBytes
	ws.TruncatedTailBytes = ls.TruncatedTailBytes
	return ws
}
