package server_test

// The WAL crash-recovery matrix: kill the coordinator at every named
// wal/* failpoint — plus a mid-append torn tail — and assert the
// rebooted daemon, after the fleet's at-least-once retries, converges
// bit-identically to an uninterrupted control. One suite per
// topology: plain coordinator here (TestWALRecoverySingleTopology),
// relay shard → durable parent here (TestWALRecoveryRelayTopology),
// and the 3-shard cluster in internal/distnet.
//
// The crash is the failpoint harness pulling a real trigger: the
// site's Nth hit (seed-derived) starts the server's crash switch
// (Abort — no drain, no final snapshot) and fails every absorb from
// that instant, exactly the window a SIGKILL would tear open. Run
// with -chaos.seed=N to move the crash point; ci.sh sweeps 1..3.

import (
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/server"
	"repro/internal/wal"
)

var errInjectedCrash = errors.New("injected crash")

// walCrashLegs names the matrix rows: each wal/* failpoint, plus the
// torn-tail leg (site "") where the crash damage is applied directly
// to the segment file after an abrupt Abort.
var walCrashLegs = []struct {
	name string
	site string
}{
	{"append", failpoint.WALAppend},
	{"fsync", failpoint.WALFsync},
	{"rotate", failpoint.WALRotate},
	{"snapshot", failpoint.WALSnapshot},
	{"torn-tail", ""},
}

// testWALConfig is the matrix's log shape: segments small enough that
// every push rotates (so wal/rotate fires), snapshots driven
// explicitly by the test, never by the timer.
func testWALConfig(dir string) *server.WALConfig {
	return &server.WALConfig{Dir: dir, SegmentBytes: 256, SnapshotEvery: time.Hour}
}

// controlSnapshots absorbs every message once into a fresh
// coordinator and returns its sorted group snapshots — the
// uninterrupted ground truth each crashed-and-recovered run must
// reproduce byte for byte.
func controlSnapshots(t *testing.T, msgs [][]byte) []server.GroupSnapshot {
	t.Helper()
	ctrl := server.New(server.Config{})
	for _, m := range msgs {
		if err := ctrl.Absorb(m); err != nil {
			t.Fatal(err)
		}
	}
	snaps, err := ctrl.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	return snaps
}

// assertSnapshotsEqual compares two sorted snapshot slices
// bit-identically.
func assertSnapshotsEqual(t *testing.T, label string, got, want []server.GroupSnapshot) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: recovered coordinator holds %d groups, control holds %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Digest != want[i].Digest {
			t.Fatalf("%s: group %d is %s/%016x, control has %s/%016x",
				label, i, got[i].KindName, got[i].Digest, want[i].KindName, want[i].Digest)
		}
		if !bytes.Equal(got[i].Envelope, want[i].Envelope) {
			t.Fatalf("%s: group %s/%016x diverged from the uninterrupted control",
				label, got[i].KindName, got[i].Digest)
		}
	}
}

// startCrashable serves srv on an ephemeral listener with no cleanup
// hooks — the test owns the crash and the reboot.
func startCrashable(t *testing.T, srv *server.Server) (addr string, done chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done = make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return ln.Addr().String(), done
}

// armCrash arms site so its nth hit kills srv: that hit (and every
// later one) fails, and the crash switch runs in the background. The
// returned channels report the trigger and the completed abort.
func armCrash(srv *server.Server, site string, n int64) (crashed, aborted chan struct{}) {
	crashed = make(chan struct{})
	aborted = make(chan struct{})
	var hits atomic.Int64
	var once sync.Once
	failpoint.Enable(site, func() error {
		if hits.Add(1) >= n {
			once.Do(func() {
				close(crashed)
				go func() {
					srv.Abort()
					close(aborted)
				}()
			})
			return errInjectedCrash
		}
		return nil
	})
	return crashed, aborted
}

// waitRecovered blocks until srv's boot-time replay completes —
// recovery runs inside Serve's goroutine, so a test reading state
// without pushing first must wait for it.
func waitRecovered(t *testing.T, srv *server.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := srv.Stats(); st.WAL != nil && st.WAL.Recovered {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("recovery never completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// tearTail truncates the newest segment in dir by n bytes, faking the
// half-written record a power cut mid-append leaves behind.
func tearTail(t *testing.T, dir string, n int64) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments to tear in %s (err=%v)", dir, err)
	}
	seg := segs[len(segs)-1]
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		// The active segment rotated clean; tear the sealed one.
		if len(segs) < 2 {
			t.Fatalf("segment %s empty and nothing sealed behind it", seg)
		}
		seg = segs[len(segs)-2]
		if st, err = os.Stat(seg); err != nil {
			t.Fatal(err)
		}
	}
	if n >= st.Size() {
		n = st.Size() - 1
	}
	if n < 1 {
		n = 1
	}
	if err := os.Truncate(seg, st.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// TestWALRecoverySingleTopology is the plain-coordinator matrix: for
// each crash leg, a durable coordinator is killed mid-fleet, rebooted
// from its WAL directory, re-pushed by the (at-least-once) fleet, and
// compared byte for byte against the uninterrupted control.
func TestWALRecoverySingleTopology(t *testing.T) {
	for _, seed := range chaosSeeds() {
		cfg := core.EstimatorConfig{Capacity: 128, Copies: 3, Seed: 808}
		msgs := siteMessages(t, cfg, overlapSources(6, seed+4))
		ref := controlSnapshots(t, msgs)
		crashHit := 1 + int64(seed%3)

		for _, leg := range walCrashLegs {
			t.Run(leg.name, func(t *testing.T) {
				t.Cleanup(failpoint.Reset)
				dir := t.TempDir()

				srv := server.New(server.Config{WAL: testWALConfig(dir)})
				addr, done := startCrashable(t, srv)
				var crashed, aborted chan struct{}
				if leg.site != "" {
					crashed, aborted = armCrash(srv, leg.site, crashHit)
				}

				// The fleet pushes through the crash; errors past the
				// trigger are the nacks and dead dials a real outage
				// hands a retrying site. Snapshot rounds are interleaved
				// so wal/snapshot has hits to crash on (and the other
				// legs exercise append/snapshot interleaving for free).
				cl := chaosClient(addr)
				for _, msg := range msgs {
					_, perr := cl.Push(msg)
					if leg.site == "" {
						// The torn-tail leg needs its history intact:
						// snapshots would prune the segments this leg
						// exists to damage.
						if perr != nil {
							t.Fatalf("uninterrupted leg push failed: %v", perr)
						}
						continue
					}
					srv.SnapshotWAL()
				}

				if leg.site != "" {
					select {
					case <-crashed:
					default:
						t.Fatalf("seed %d: %s never fired — the leg tested nothing", seed, leg.site)
					}
					<-aborted
					failpoint.Reset()
				} else {
					srv.Abort()
					tearTail(t, dir, 3+int64(seed%17))
				}
				if err := <-done; err != nil {
					t.Fatalf("crashed serve loop returned %v", err)
				}

				// Reboot from the crash directory; replay must finish
				// before the listener accepts. The fleet then closes the
				// at-least-once loop by re-pushing everything — acked
				// duplicates are harmless, unacked pushes are required.
				srv2 := server.New(server.Config{WAL: testWALConfig(dir)})
				addr2, done2 := startCrashable(t, srv2)
				cl2 := testClient(addr2)
				for i, msg := range msgs {
					if _, err := cl2.Push(msg); err != nil {
						t.Fatalf("re-push %d after reboot: %v", i, err)
					}
				}
				got, err := srv2.Snapshots()
				if err != nil {
					t.Fatal(err)
				}
				assertSnapshotsEqual(t, leg.name, got, ref)

				st := srv2.Stats()
				if st.WAL == nil || !st.WAL.Recovered {
					t.Fatalf("rebooted coordinator reports no recovery: %+v", st.WAL)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				if err := srv2.Shutdown(ctx); err != nil {
					t.Fatalf("recovered coordinator shutdown: %v", err)
				}
				if err := <-done2; err != nil {
					t.Fatalf("recovered serve loop: %v", err)
				}
			})
		}

		// The wal/replay leg crashes the *boot*, not the running
		// daemon: recovery must refuse to serve, and the next boot
		// (fault cleared) must converge as usual.
		t.Run("replay", func(t *testing.T) {
			t.Cleanup(failpoint.Reset)
			dir := t.TempDir()

			srv := server.New(server.Config{WAL: testWALConfig(dir)})
			addr, done := startCrashable(t, srv)
			cl := testClient(addr)
			for i, msg := range msgs[:4] {
				if _, err := cl.Push(msg); err != nil {
					t.Fatalf("push %d: %v", i, err)
				}
			}
			srv.Abort()
			if err := <-done; err != nil {
				t.Fatalf("aborted serve loop returned %v", err)
			}

			failpoint.Enable(failpoint.WALReplay, failpoint.Error(errInjectedCrash))
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			if serr := server.New(server.Config{WAL: testWALConfig(dir)}).Serve(ln); serr == nil {
				t.Fatal("boot with a failing replay served anyway — partial state went live")
			}
			failpoint.Reset()

			srv2 := server.New(server.Config{WAL: testWALConfig(dir)})
			addr2, done2 := startCrashable(t, srv2)
			cl2 := testClient(addr2)
			for i, msg := range msgs {
				if _, err := cl2.Push(msg); err != nil {
					t.Fatalf("re-push %d after recovered boot: %v", i, err)
				}
			}
			got, err := srv2.Snapshots()
			if err != nil {
				t.Fatal(err)
			}
			assertSnapshotsEqual(t, "replay", got, ref)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv2.Shutdown(ctx); err != nil {
				t.Fatal(err)
			}
			if err := <-done2; err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWALRecoveryRelayTopology crashes a durable *parent* under a
// relay shard at every matrix leg. The shard's at-least-once flush
// contract (dirty until acked) plus the parent's replay must land the
// rebooted parent on the uninterrupted control, byte for byte.
func TestWALRecoveryRelayTopology(t *testing.T) {
	for _, seed := range chaosSeeds() {
		cfg := core.EstimatorConfig{Capacity: 128, Copies: 3, Seed: 909}
		msgs := siteMessages(t, cfg, overlapSources(5, seed+5))
		ref := controlSnapshots(t, msgs)
		crashHit := 1 + int64(seed%2)

		for _, leg := range walCrashLegs {
			t.Run(leg.name, func(t *testing.T) {
				t.Cleanup(failpoint.Reset)
				dir := t.TempDir()

				// Durable parent on a pinned address so the shard's
				// upstream survives the reboot.
				pln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				pAddr := pln.Addr().String()
				parent := server.New(server.Config{WAL: testWALConfig(dir)})
				pdone := make(chan error, 1)
				go func() { pdone <- parent.Serve(pln) }()

				child := server.New(server.Config{Relay: &server.RelayConfig{
					Upstream:      pAddr,
					FlushInterval: time.Hour,
					Attempts:      2,
					BackoffBase:   time.Millisecond,
					IOTimeout:     500 * time.Millisecond,
					JitterSeed:    1,
				}})
				startServer(t, child)

				var crashed, aborted chan struct{}
				if leg.site != "" {
					crashed, aborted = armCrash(parent, leg.site, crashHit)
				}

				// The shard absorbs the fleet and flushes upstream
				// through the crash; a parent snapshot round between
				// flushes gives wal/snapshot its hits.
				for i, msg := range msgs {
					if err := child.Absorb(msg); err != nil {
						t.Fatalf("shard absorb %d: %v", i, err)
					}
					child.FlushRelay()
					if leg.site != "" {
						parent.SnapshotWAL()
					}
				}

				if leg.site != "" {
					select {
					case <-crashed:
					default:
						t.Fatalf("seed %d: %s never fired on the parent", seed, leg.site)
					}
					<-aborted
					failpoint.Reset()
				} else {
					parent.Abort()
					tearTail(t, dir, 2+int64(seed%23))
				}
				if err := <-pdone; err != nil {
					t.Fatalf("crashed parent serve loop returned %v", err)
				}

				// Reboot the parent on the same address. The shard's
				// groups stay dirty for whatever was never acked; one
				// more absorb guarantees dirt even on the torn-tail leg
				// (where the torn record *was* acked — the shard's next
				// merged envelope covers it again, which is the same
				// at-least-once closure sites give a plain coordinator).
				ln2, err := net.Listen("tcp", pAddr)
				if err != nil {
					t.Fatalf("rebinding parent address: %v", err)
				}
				parent2 := server.New(server.Config{WAL: testWALConfig(dir)})
				pdone2 := make(chan error, 1)
				go func() { pdone2 <- parent2.Serve(ln2) }()

				if err := child.Absorb(msgs[len(msgs)-1]); err != nil {
					t.Fatal(err)
				}
				deadline := time.Now().Add(10 * time.Second)
				for {
					child.FlushRelay()
					pending := int64(0)
					for _, g := range child.Stats().Groups {
						pending += g.PendingRelay
					}
					if pending == 0 {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("shard never drained into the rebooted parent (%d pending)", pending)
					}
					time.Sleep(5 * time.Millisecond)
				}

				got, err := parent2.Snapshots()
				if err != nil {
					t.Fatal(err)
				}
				assertSnapshotsEqual(t, leg.name, got, ref)

				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				if err := parent2.Shutdown(ctx); err != nil {
					t.Fatalf("recovered parent shutdown: %v", err)
				}
				if err := <-pdone2; err != nil {
					t.Fatalf("recovered parent serve loop: %v", err)
				}
			})
		}
	}
}

// TestWALShutdownSnapshotBoundsReplay pins the snapshot contract on
// the clean path: a cleanly-stopped durable coordinator leaves a
// snapshot that makes the next boot replay group envelopes, not raw
// history, and the recovered state is byte-identical either way.
func TestWALShutdownSnapshotBoundsReplay(t *testing.T) {
	cfg := core.EstimatorConfig{Capacity: 128, Copies: 3, Seed: 1010}
	msgs := siteMessages(t, cfg, overlapSources(4, 9))
	ref := controlSnapshots(t, msgs)
	dir := t.TempDir()

	srv := server.New(server.Config{WAL: testWALConfig(dir)})
	addr, done := startCrashable(t, srv)
	cl := testClient(addr)
	for _, msg := range msgs {
		if _, err := cl.Push(msg); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	srv2 := server.New(server.Config{WAL: testWALConfig(dir)})
	addr2, done2 := startCrashable(t, srv2)
	waitRecovered(t, srv2)
	got, err := srv2.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	assertSnapshotsEqual(t, "clean restart", got, ref)
	st := srv2.Stats()
	if st.WAL == nil || st.WAL.ReplayedSnapshotGroups == 0 {
		t.Fatalf("clean restart replayed no snapshot groups: %+v", st.WAL)
	}
	if st.WAL.ReplayedRecords != 0 {
		t.Fatalf("clean restart replayed %d raw records past the shutdown snapshot", st.WAL.ReplayedRecords)
	}
	_ = addr2
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv2.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
	// A durable no-op: wal.Stats on the reopened dir agree with the
	// server's view (same package-level contract the golden test pins
	// in JSON form).
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Stats().SnapshotSegment == 0 {
		t.Fatal("no live snapshot after two clean shutdowns")
	}
}
