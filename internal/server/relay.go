package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/failpoint"
	"repro/internal/sketch"
)

// RelayConfig turns a coordinator into a relay: a mid-tier shard that
// periodically pushes each merge group's merged state upstream as a
// self-describing envelope — indistinguishable, to the parent, from a
// site that happened to observe the whole union of this shard's
// sites. No new wire frames are involved: relaying IS pushing.
//
// Delivery is at-least-once by design. A group stays dirty until a
// flush round gets its envelope acked; lost acks, retries, and
// overlapping flushes can all hand the parent duplicate or stale
// envelopes, and the parent's commutative, associative, idempotent
// merge collapses every such schedule into the same fixpoint — the
// state a single coordinator absorbing every site directly would
// hold. The distnet cluster suite pins that equivalence byte for
// byte.
type RelayConfig struct {
	// Upstream is the parent coordinator's TCP address.
	Upstream string
	// FlushInterval is the relay timer period; <= 0 selects
	// DefaultRelayInterval. Every tick pushes all dirty groups.
	FlushInterval time.Duration
	// FlushAfter, when > 0, additionally triggers a flush as soon as
	// any group accumulates that many absorbs since its last relayed
	// envelope — the latency valve for hot groups between ticks.
	FlushAfter int64
	// Attempts, BackoffBase, and IOTimeout tune the upstream client;
	// zero values take the client defaults.
	Attempts    int
	BackoffBase time.Duration
	IOTimeout   time.Duration
	// JitterSeed seeds the upstream client's backoff jitter (0 derives
	// one from the clock, like any client).
	JitterSeed int64
}

// DefaultRelayInterval is the relay flush period when RelayConfig
// leaves it zero.
const DefaultRelayInterval = time.Second

// relayState is the running relay: the upstream client, the flush
// loop's plumbing, and the /statsz counters.
type relayState struct {
	cfg      RelayConfig
	upstream *client.Client
	flushNow chan struct{}
	wg       sync.WaitGroup

	mu sync.Mutex // guards: flushing
	// flushing serializes flush rounds: the timer, threshold triggers,
	// and the drain flush must not interleave snapshots of the same
	// group.
	flushing bool

	flushes     atomic.Int64
	groupsSent  atomic.Int64
	bytesSent   atomic.Int64
	pushErrors  atomic.Int64
	flushSkips  atomic.Int64
	lastErr     atomic.Value // string
	drainFlush  atomic.Bool
	drainGroups atomic.Int64
}

// newRelayState builds the relay for cfg.
func newRelayState(cfg RelayConfig) *relayState {
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = DefaultRelayInterval
	}
	return &relayState{
		cfg: cfg,
		upstream: client.New(client.Config{
			Addr:        cfg.Upstream,
			Attempts:    cfg.Attempts,
			BackoffBase: cfg.BackoffBase,
			IOTimeout:   cfg.IOTimeout,
			JitterSeed:  cfg.JitterSeed,
		}),
		flushNow: make(chan struct{}, 1),
	}
}

// relayLoop is the flush timer goroutine: it runs one flush round per
// tick, plus one whenever a hot group crosses the FlushAfter
// threshold. The final drain flush is Shutdown's job, not this
// loop's.
func (s *Server) relayLoop() {
	defer s.relay.wg.Done()
	t := time.NewTicker(s.relay.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
		case <-s.relay.flushNow:
		}
		if _, err := s.FlushRelay(); err != nil {
			s.logf("unionstreamd: relay flush: %v", err)
		}
	}
}

// relayDirty is called at the end of a successful absorb: it nudges
// the flush loop when the group just crossed the threshold.
//
// locked: mu
func (g *group) relayDirty(r *relayState) bool {
	return r.cfg.FlushAfter > 0 && g.pendingRelay >= r.cfg.FlushAfter
}

// FlushRelay pushes every dirty group's envelope upstream over one
// batched connection and returns how many groups were durably acked.
// It is what the relay timer runs each tick, what Shutdown runs as
// the drain flush, and what tests call to make relay timing
// deterministic. Rounds are serialized; a round that finds one in
// progress returns immediately (the running round will deliver the
// dirt it snapshotted, and the next tick catches the rest).
func (s *Server) FlushRelay() (groups int, err error) {
	r := s.relay
	if r == nil {
		return 0, fmt.Errorf("server: not a relay (no RelayConfig)")
	}
	r.mu.Lock()
	if r.flushing {
		r.mu.Unlock()
		r.flushSkips.Add(1)
		return 0, nil
	}
	r.flushing = true
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.flushing = false
		r.mu.Unlock()
	}()

	if ferr := failpoint.Inject(failpoint.ServerRelayFlush); ferr != nil {
		// Chaos hook: the whole cycle fails before any snapshot — every
		// group stays dirty and the next cycle retries.
		r.pushErrors.Add(1)
		r.lastErr.Store(ferr.Error())
		return 0, fmt.Errorf("server: relay flush: %w", ferr)
	}
	r.flushes.Add(1)

	type dirtyGroup struct {
		g        *group
		stream   string
		envelope []byte
		pending  int64
	}
	s.mu.Lock()
	all := make([]*group, 0, len(s.groups))
	for _, g := range s.groups {
		all = append(all, g)
	}
	s.mu.Unlock()

	var dirty []dirtyGroup
	for _, g := range all {
		g.mu.Lock()
		if g.pendingRelay == 0 || g.sk == nil {
			g.mu.Unlock()
			continue
		}
		if ferr := failpoint.Inject(failpoint.ServerRelayPush); ferr != nil {
			// Chaos hook: this group's push fails before its snapshot
			// leaves the lock — it stays dirty for the next round.
			g.mu.Unlock()
			r.pushErrors.Add(1)
			r.lastErr.Store(ferr.Error())
			continue
		}
		env, merr := sketch.Envelope(g.sk)
		pending := g.pendingRelay
		g.mu.Unlock()
		if merr != nil {
			r.pushErrors.Add(1)
			r.lastErr.Store(merr.Error())
			continue
		}
		dirty = append(dirty, dirtyGroup{g: g, stream: g.stream, envelope: env, pending: pending})
	}
	if len(dirty) == 0 {
		return 0, nil
	}

	// Stream names ride upstream with the envelopes: a named group on
	// this shard must land in the parent's same-named group, or the
	// tier would silently collapse streams into the default.
	records := make([]client.Record, len(dirty))
	for i, d := range dirty {
		records[i] = client.Record{Stream: d.stream, Envelope: d.envelope}
	}
	pushed, perr := r.upstream.PushBatchNamed(records)
	// Envelopes [0, pushed) were acked upstream: clear exactly the
	// dirt each snapshot covered, so absorbs that raced the flush stay
	// pending for the next round.
	var bytes int64
	for _, d := range dirty[:pushed] {
		d.g.mu.Lock()
		d.g.pendingRelay -= d.pending
		d.g.relayPushes++
		d.g.mu.Unlock()
		bytes += int64(len(d.envelope))
	}
	r.groupsSent.Add(int64(pushed))
	r.bytesSent.Add(bytes)
	if perr != nil {
		r.pushErrors.Add(1)
		r.lastErr.Store(perr.Error())
		return pushed, fmt.Errorf("server: relay flush delivered %d of %d groups: %w", pushed, len(dirty), perr)
	}
	return pushed, nil
}

// drainRelay is Shutdown's final flush: whatever is dirty when the
// last connection drains is pushed upstream before the daemon exits,
// so a cleanly-stopped shard leaves nothing behind. Its counters are
// surfaced separately in /statsz so operators can tell a drain flush
// happened.
func (s *Server) drainRelay() {
	s.relay.drainFlush.Store(true)
	n, err := s.FlushRelay()
	s.relay.drainGroups.Store(int64(n))
	if err != nil {
		s.logf("unionstreamd: relay drain flush: %v", err)
		return
	}
	s.logf("unionstreamd: relay drain flushed %d groups upstream", n)
}
