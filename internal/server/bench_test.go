package server

import (
	"testing"

	"repro/internal/hashing"
	"repro/internal/sketch"
	"repro/internal/wire"

	_ "repro/internal/sketch/kinds"
)

// benchEnvelopes builds nsites populated site envelopes of one kind,
// all sharing a seed so they land in one merge group.
func benchEnvelopes(b *testing.B, info sketch.KindInfo, nsites int) [][]byte {
	b.Helper()
	msgs := make([][]byte, nsites)
	for i := range msgs {
		sk := info.New(0.1, 1)
		r := hashing.NewXoshiro256(uint64(100 + i))
		for j := 0; j < 4096; j++ {
			sk.Process(r.Uint64n(1 << 20))
		}
		env, err := sketch.Envelope(sk)
		if err != nil {
			b.Fatal(err)
		}
		msgs[i] = env
	}
	return msgs
}

// BenchmarkAbsorbSketch measures the coordinator's absorb path —
// envelope open, group routing, merge — per registered kind, cycling
// through distinct site sketches so merges do real work.
func BenchmarkAbsorbSketch(b *testing.B) {
	for _, info := range sketch.Kinds() {
		b.Run(info.Name, func(b *testing.B) {
			msgs := benchEnvelopes(b, info, 8)
			srv := New(Config{})
			b.SetBytes(int64(len(msgs[0])))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ack := srv.absorbSketch("", msgs[i%len(msgs)]); ack.Code != wire.AckOK {
					b.Fatalf("absorb: %v: %s", ack.Code, ack.Detail)
				}
			}
		})
	}
}

// BenchmarkAbsorbSketchCrossKind measures the same path on a server
// holding one group per registered kind, with pushes arriving
// round-robin across kinds — the group-routing cost when a coordinator
// serves a heterogeneous fleet.
func BenchmarkAbsorbSketchCrossKind(b *testing.B) {
	var msgs [][]byte
	for _, info := range sketch.Kinds() {
		msgs = append(msgs, benchEnvelopes(b, info, 2)...)
	}
	srv := New(Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ack := srv.absorbSketch("", msgs[i%len(msgs)]); ack.Code != wire.AckOK {
			b.Fatalf("absorb: %v: %s", ack.Code, ack.Detail)
		}
	}
}
