package server_test

// Chaos suite for the coordinator: deterministic fault injection via
// internal/failpoint (process faults) and internal/faultnet (network
// faults), asserting the union algebra's operational guarantees —
// duplicate delivery and arrival order never change the merged state,
// a site dying mid-frame leaves group state untouched, and a retrying
// fleet pushed through any seeded fault schedule converges to the
// bit-identical fault-free result.
//
// Run with -chaos.seed=N to pin the fault schedule; ci.sh sweeps
// seeds 1..3. Without the flag the suite runs seed 1 so plain
// `go test ./...` stays fast.

import (
	"bytes"
	"errors"
	"flag"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/faultnet"
	"repro/internal/hashing"
	"repro/internal/server"
	"repro/internal/wire"
)

var chaosSeed = flag.Uint64("chaos.seed", 0, "fault schedule seed for the chaos suite (0 = default seed 1)")

func chaosSeeds() []uint64 {
	if *chaosSeed != 0 {
		return []uint64{*chaosSeed}
	}
	return []uint64{1}
}

// serialReference merges the envelopes in order and returns the
// canonical accumulated encoding — the fault-free ground truth every
// chaos run must reproduce bit for bit.
func serialReference(t *testing.T, msgs [][]byte) []byte {
	t.Helper()
	out, err := serialMerge(msgs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// chaosClient is tuned for fault schedules: many attempts, tight
// timeouts so black-holed acks fail fast, fixed jitter so the retry
// cadence is reproducible.
func chaosClient(addr string) *client.Client {
	return client.New(client.Config{
		Addr:        addr,
		Attempts:    25,
		DialTimeout: time.Second,
		IOTimeout:   250 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  8 * time.Millisecond,
		JitterSeed:  1,
	})
}

// TestChaosDuplicateDeliveryIdempotent: delivering every sketch
// several times (at-least-once semantics) must leave the group
// bit-identical to exactly-once delivery — the merge is a set union.
func TestChaosDuplicateDeliveryIdempotent(t *testing.T) {
	for _, seed := range chaosSeeds() {
		cfg := core.EstimatorConfig{Capacity: 128, Copies: 3, Seed: 101}
		msgs := siteMessages(t, cfg, overlapSources(6, seed))
		ref := serialReference(t, msgs)

		srv := server.New(server.Config{})
		addr := startServer(t, srv)
		cl := testClient(addr)
		rng := hashing.NewSplitMix64(seed)
		total := 0
		for i, msg := range msgs {
			copies := 1 + int(rng.Next()%3)
			total += copies
			for c := 0; c < copies; c++ {
				if _, err := cl.Push(msg); err != nil {
					t.Fatalf("seed %d: site %d copy %d: %v", seed, i, c, err)
				}
			}
		}
		got, err := srv.SnapshotGroup(cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("seed %d: duplicated delivery changed the merged state", seed)
		}
		if st := srv.Stats(); st.SketchesAbsorbed != int64(total) {
			t.Errorf("seed %d: absorbed %d, want %d (every duplicate acked)", seed, st.SketchesAbsorbed, total)
		}
	}
}

// TestChaosArrivalOrderCommutative: pushing the same sketches in
// seeded random orders must always land on the identical merged state.
func TestChaosArrivalOrderCommutative(t *testing.T) {
	for _, seed := range chaosSeeds() {
		cfg := core.EstimatorConfig{Capacity: 128, Copies: 3, Seed: 202}
		msgs := siteMessages(t, cfg, overlapSources(8, seed+1))
		ref := serialReference(t, msgs)

		rng := hashing.NewXoshiro256(seed)
		for trial := 0; trial < 3; trial++ {
			order := make([]int, len(msgs))
			for i := range order {
				order[i] = i
			}
			for i := len(order) - 1; i > 0; i-- {
				j := rng.Intn(i + 1)
				order[i], order[j] = order[j], order[i]
			}
			srv := server.New(server.Config{})
			addr := startServer(t, srv)
			cl := testClient(addr)
			for _, idx := range order {
				if _, err := cl.Push(msgs[idx]); err != nil {
					t.Fatal(err)
				}
			}
			got, err := srv.SnapshotGroup(cfg.Seed)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, ref) {
				t.Fatalf("seed %d trial %d: order %v produced a different merged state", seed, trial, order)
			}
		}
	}
}

// TestChaosMidFrameDeathLeavesStateUntouched: a site that dies halfway
// through its frame must not perturb the group — and the same site
// retrying afterward must complete the union as if nothing happened.
func TestChaosMidFrameDeathLeavesStateUntouched(t *testing.T) {
	cfg := core.EstimatorConfig{Capacity: 128, Copies: 3, Seed: 303}
	msgs := siteMessages(t, cfg, overlapSources(2, 7))

	srv := server.New(server.Config{})
	addr := startServer(t, srv)
	cl := testClient(addr)
	if _, err := cl.Push(msgs[0]); err != nil {
		t.Fatal(err)
	}
	before, err := srv.SnapshotGroup(cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}

	// Site 1 dies mid-frame: a truncating proxy cuts the connection
	// after the header and part of the payload have left.
	p, err := faultnet.New(addr, faultnet.Script{
		{Up: faultnet.PathPlan{Kind: faultnet.Truncate, AfterBytes: wire.HeaderSize + 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	one := client.New(client.Config{Addr: p.Addr(), Attempts: 1, IOTimeout: time.Second, JitterSeed: 1})
	if _, err := one.Push(msgs[1]); err == nil {
		t.Fatal("push through a mid-frame cut succeeded")
	}
	p.Close()

	// The server must have seen (and rejected) the partial frame
	// without touching the group.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().Rejected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never registered the truncated frame")
		}
		time.Sleep(5 * time.Millisecond)
	}
	after, err := srv.SnapshotGroup(cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("mid-frame death perturbed the merged group state")
	}
	if got := srv.Stats().SketchesAbsorbed; got != 1 {
		t.Fatalf("absorbed %d after partial frame, want 1", got)
	}

	// The site retries intact and the union completes exactly.
	if _, err := cl.Push(msgs[1]); err != nil {
		t.Fatal(err)
	}
	got, err := srv.SnapshotGroup(cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, serialReference(t, msgs)) {
		t.Fatal("state after retry differs from the fault-free union")
	}
}

// TestChaosFailpointAbsorbLeavesGroupUntouched: an absorb that fails
// inside the server (post-validation, pre-merge) must ack a retryable
// error, leave the group untouched, and let the retry land.
func TestChaosFailpointAbsorbLeavesGroupUntouched(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	cfg := core.EstimatorConfig{Capacity: 64, Copies: 3, Seed: 404}
	msgs := siteMessages(t, cfg, overlapSources(1, 11))

	srv := server.New(server.Config{})
	addr := startServer(t, srv)

	failpoint.Enable(failpoint.ServerAbsorb, failpoint.Times(2, errors.New("injected absorb fault")))
	attempts, err := chaosClient(addr).Push(msgs[0])
	if err != nil {
		t.Fatalf("push never converged past absorb faults: %v", err)
	}
	if attempts != 3 {
		t.Errorf("converged in %d attempts, want 3 (two injected failures)", attempts)
	}
	if hits := failpoint.Hits(failpoint.ServerAbsorb); hits < 3 {
		t.Errorf("absorb failpoint hit %d times, want >= 3", hits)
	}
	if st := srv.Stats(); st.SketchesAbsorbed != 1 {
		t.Errorf("absorbed %d, want 1 (failed absorbs must not count)", st.SketchesAbsorbed)
	}
	got, err := srv.SnapshotGroup(cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, serialReference(t, msgs)) {
		t.Fatal("state after absorb faults differs from clean push")
	}
}

// TestChaosAcceptFaultThenRecovery: transient accept-path failures
// (fd exhaustion, conntrack pressure) drop connections without reply;
// the client's retry loop must ride them out.
func TestChaosAcceptFaultThenRecovery(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	cfg := core.EstimatorConfig{Capacity: 64, Copies: 3, Seed: 505}
	msgs := siteMessages(t, cfg, overlapSources(1, 13))

	srv := server.New(server.Config{})
	addr := startServer(t, srv)

	failpoint.Enable(failpoint.ServerAccept, failpoint.Times(2, errors.New("injected accept fault")))
	attempts, err := chaosClient(addr).Push(msgs[0])
	if err != nil {
		t.Fatalf("push never converged past accept faults: %v", err)
	}
	if attempts < 3 {
		t.Errorf("converged in %d attempts, want >= 3 (two dropped connections)", attempts)
	}
	got, err := srv.SnapshotGroup(cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, serialReference(t, msgs)) {
		t.Fatal("state after accept faults differs from clean push")
	}
}

// TestChaosDrainUnderFailpoint: a fault at drain start must not stop
// Shutdown from completing or lose an absorbed sketch.
func TestChaosDrainUnderFailpoint(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	cfg := core.EstimatorConfig{Capacity: 64, Copies: 3, Seed: 606}
	msgs := siteMessages(t, cfg, overlapSources(1, 17))

	srv := server.New(server.Config{})
	addr := startServer(t, srv) // Cleanup runs Shutdown and asserts it succeeds
	if _, err := testClient(addr).Push(msgs[0]); err != nil {
		t.Fatal(err)
	}
	failpoint.Enable(failpoint.ServerDrain, failpoint.Error(errors.New("injected drain fault")))
	if st := srv.Stats(); st.SketchesAbsorbed != 1 {
		t.Errorf("absorbed %d before drain, want 1", st.SketchesAbsorbed)
	}
}

// TestChaosSeededScheduleConvergesBitIdentical is the headline chaos
// property: a retrying fleet pushed through a seeded fault proxy —
// rejects, mid-frame cuts, bit flips, swallowed acks, duplicates —
// must converge to the bit-identical fault-free union, and replaying
// the same seed must reproduce the exact fault trace.
func TestChaosSeededScheduleConvergesBitIdentical(t *testing.T) {
	for _, seed := range chaosSeeds() {
		cfg := core.EstimatorConfig{Capacity: 128, Copies: 3, Seed: 707}
		msgs := siteMessages(t, cfg, overlapSources(8, seed+2))
		ref := serialReference(t, msgs)

		run := func() (snapshot []byte, trace string) {
			srv := server.New(server.Config{})
			addr := startServer(t, srv)
			p, err := faultnet.New(addr, faultnet.Seeded(seed))
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			cl := chaosClient(p.Addr())
			for i, msg := range msgs {
				if _, err := cl.Push(msg); err != nil {
					t.Fatalf("seed %d: site %d never converged: %v", seed, i, err)
				}
			}
			p.Close() // flush handlers so the trace is complete
			snapshot, err = srv.SnapshotGroup(cfg.Seed)
			if err != nil {
				t.Fatal(err)
			}
			return snapshot, p.TraceString()
		}

		snap1, trace1 := run()
		if !bytes.Equal(snap1, ref) {
			t.Fatalf("seed %d: chaos run state differs from fault-free serial union", seed)
		}
		snap2, trace2 := run()
		if !bytes.Equal(snap1, snap2) {
			t.Fatalf("seed %d: two runs of the same fault schedule diverged", seed)
		}
		if trace1 != trace2 {
			t.Fatalf("seed %d: fault trace not reproducible:\n--- run 1\n%s--- run 2\n%s", seed, trace1, trace2)
		}
		if trace1 == "" {
			t.Fatalf("seed %d: empty fault trace — the schedule never fired", seed)
		}
	}
}
