package server_test

// Relay-mode suite: a child coordinator with a RelayConfig must push
// each merge group's merged envelope upstream — on flush, on the hot
// threshold, and on shutdown drain — and duplicate deliveries must
// leave the parent bit-identical to a single coordinator that
// absorbed every site directly (the paper's idempotent union at work
// one tier up).

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/sketch/kmv"
)

// relayEnvelopes builds n envelopes in n distinct kmv merge groups
// (distinct coordination seeds → distinct config digests).
func relayEnvelopes(t *testing.T, n int) [][]byte {
	t.Helper()
	envs := make([][]byte, n)
	for i := range envs {
		sk := kmv.New(4, uint64(5000+i))
		for x := uint64(0); x < 32; x++ {
			sk.Process(x*7 + uint64(i))
		}
		env, err := sketch.Envelope(sk)
		if err != nil {
			t.Fatal(err)
		}
		envs[i] = env
	}
	return envs
}

// relayPair stands up a parent coordinator and a child relaying into
// it. The child's flush timer is parked (1h) unless cfg overrides it,
// so tests drive flushes explicitly and deterministically.
func relayPair(t *testing.T, cfg server.RelayConfig) (parent, child *server.Server, childAddr string) {
	t.Helper()
	parent = server.New(server.Config{})
	parentAddr := startServer(t, parent)
	cfg.Upstream = parentAddr
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = time.Hour
	}
	if cfg.Attempts == 0 {
		cfg.Attempts = 4
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = time.Millisecond
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 1
	}
	child = server.New(server.Config{Relay: &cfg})
	childAddr = startServer(t, child)
	return parent, child, childAddr
}

func pushAll(t *testing.T, addr string, envs [][]byte) {
	t.Helper()
	cl := testClient(addr)
	for _, env := range envs {
		if _, err := cl.Push(env); err != nil {
			t.Fatal(err)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRelayFlushPushesDirtyGroups: an explicit flush delivers every
// dirty group upstream once, clears the dirt, and a second flush with
// nothing new pushes nothing.
func TestRelayFlushPushesDirtyGroups(t *testing.T) {
	parent, child, childAddr := relayPair(t, server.RelayConfig{})
	envs := relayEnvelopes(t, 12)
	pushAll(t, childAddr, envs)

	n, err := child.FlushRelay()
	if err != nil || n != len(envs) {
		t.Fatalf("FlushRelay = %d, %v; want %d, nil", n, err, len(envs))
	}
	pst := parent.Stats()
	if pst.SketchesAbsorbed != int64(len(envs)) || len(pst.Groups) != len(envs) {
		t.Fatalf("parent absorbed %d into %d groups, want %d/%d",
			pst.SketchesAbsorbed, len(pst.Groups), len(envs), len(envs))
	}
	for _, g := range child.Stats().Groups {
		if g.PendingRelay != 0 {
			t.Errorf("group %s still has %d pending after flush", g.Digest, g.PendingRelay)
		}
		if g.RelayPushes != 1 {
			t.Errorf("group %s relay_pushes = %d, want 1", g.Digest, g.RelayPushes)
		}
	}
	if n, err := child.FlushRelay(); err != nil || n != 0 {
		t.Fatalf("idle FlushRelay = %d, %v; want 0, nil", n, err)
	}
	if pst := parent.Stats(); pst.SketchesAbsorbed != int64(len(envs)) {
		t.Errorf("idle flush still pushed: parent absorbed %d", pst.SketchesAbsorbed)
	}
}

// TestRelayNotARelay: FlushRelay on a plain coordinator refuses.
func TestRelayNotARelay(t *testing.T) {
	srv := server.New(server.Config{})
	if _, err := srv.FlushRelay(); err == nil {
		t.Fatal("FlushRelay on a non-relay server succeeded")
	}
}

// TestRelayIntervalFlushes: the flush timer alone — no explicit
// FlushRelay — carries absorbed state upstream.
func TestRelayIntervalFlushes(t *testing.T) {
	parent, _, childAddr := relayPair(t, server.RelayConfig{FlushInterval: 5 * time.Millisecond})
	envs := relayEnvelopes(t, 4)
	pushAll(t, childAddr, envs)
	waitFor(t, 5*time.Second, func() bool {
		return parent.Stats().SketchesAbsorbed >= int64(len(envs))
	}, "timer flush to reach the parent")
}

// TestRelayFlushAfterThreshold: crossing FlushAfter nudges a flush
// immediately, without waiting for the (parked) timer.
func TestRelayFlushAfterThreshold(t *testing.T) {
	parent, _, childAddr := relayPair(t, server.RelayConfig{FlushAfter: 1})
	envs := relayEnvelopes(t, 3)
	pushAll(t, childAddr, envs)
	waitFor(t, 5*time.Second, func() bool {
		return parent.Stats().SketchesAbsorbed >= int64(len(envs))
	}, "threshold-triggered flush to reach the parent")
}

// TestRelayDrainFlushOnShutdown: state absorbed but never flushed
// must still reach the parent — Shutdown's drain flush is the
// no-data-left-behind guarantee for a cleanly stopped shard.
func TestRelayDrainFlushOnShutdown(t *testing.T) {
	parent := server.New(server.Config{})
	parentAddr := startServer(t, parent)
	child := server.New(server.Config{Relay: &server.RelayConfig{
		Upstream:      parentAddr,
		FlushInterval: time.Hour,
		Attempts:      4,
		BackoffBase:   time.Millisecond,
		JitterSeed:    1,
	}})
	childAddr := startServer(t, child)

	envs := relayEnvelopes(t, 6)
	pushAll(t, childAddr, envs)
	if parent.Stats().SketchesAbsorbed != 0 {
		t.Fatal("parent saw state before any flush — timer should be parked")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := child.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := parent.Stats().SketchesAbsorbed; got != int64(len(envs)) {
		t.Fatalf("drain flush delivered %d groups, want %d", got, len(envs))
	}
	rs := child.Stats().Relay
	if rs == nil || !rs.DrainFlushed || rs.DrainGroups != int64(len(envs)) {
		t.Fatalf("relay stats after drain = %+v, want drain_flushed with %d groups", rs, len(envs))
	}
}

// TestRelayFlushFailpointRetries: an injected fault failing the whole
// flush cycle leaves every group dirty; the next cycle delivers them
// all — at-least-once at the round granularity.
func TestRelayFlushFailpointRetries(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	parent, child, childAddr := relayPair(t, server.RelayConfig{})
	envs := relayEnvelopes(t, 5)
	pushAll(t, childAddr, envs)

	injected := errors.New("injected flush outage")
	failpoint.Enable(failpoint.ServerRelayFlush, failpoint.Times(1, injected))
	if _, err := child.FlushRelay(); !errors.Is(err, injected) {
		t.Fatalf("err = %v, want the injected cause", err)
	}
	if got := parent.Stats().SketchesAbsorbed; got != 0 {
		t.Fatalf("failed cycle still delivered %d groups", got)
	}
	n, err := child.FlushRelay()
	if err != nil || n != len(envs) {
		t.Fatalf("retry FlushRelay = %d, %v; want %d, nil", n, err, len(envs))
	}
	rs := child.Stats().Relay
	if rs.PushErrors != 1 || rs.LastError == "" {
		t.Errorf("relay stats = %+v, want one recorded push error", rs)
	}
}

// TestRelayPushFailpointSkipsGroup: a per-group injected fault skips
// only that group — it stays dirty and the next round carries it.
func TestRelayPushFailpointSkipsGroup(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	parent, child, childAddr := relayPair(t, server.RelayConfig{})
	envs := relayEnvelopes(t, 4)
	pushAll(t, childAddr, envs)

	failpoint.Enable(failpoint.ServerRelayPush, failpoint.Times(1, errors.New("injected group fault")))
	n, err := child.FlushRelay()
	if err != nil || n != len(envs)-1 {
		t.Fatalf("FlushRelay = %d, %v; want %d, nil", n, err, len(envs)-1)
	}
	n, err = child.FlushRelay()
	if err != nil || n != 1 {
		t.Fatalf("second FlushRelay = %d, %v; want 1, nil (the skipped group)", n, err)
	}
	if got := parent.Stats().SketchesAbsorbed; got != int64(len(envs)) {
		t.Fatalf("parent absorbed %d, want %d", got, len(envs))
	}
}

// TestRelayDuplicatesConverge: repeated flushes of evolving groups
// hand the parent overlapping, duplicate envelopes; the parent must
// end bit-identical to a coordinator that absorbed every site push
// directly. This is the tree-of-referees equivalence the cluster tier
// is built on.
func TestRelayDuplicatesConverge(t *testing.T) {
	parent, child, childAddr := relayPair(t, server.RelayConfig{})
	control := server.New(server.Config{})
	controlAddr := startServer(t, control)

	// Three waves of site pushes into the same 8 groups, flushing after
	// each wave — so waves 2 and 3 re-push state the parent already
	// merged once.
	const groups = 8
	for wave := 0; wave < 3; wave++ {
		envs := make([][]byte, groups)
		for i := range envs {
			sk := kmv.New(8, uint64(5000+i))
			for x := uint64(0); x < 64; x++ {
				sk.Process(x + uint64(wave)*40) // waves overlap by 24 labels
			}
			env, err := sketch.Envelope(sk)
			if err != nil {
				t.Fatal(err)
			}
			envs[i] = env
		}
		pushAll(t, childAddr, envs)
		pushAll(t, controlAddr, envs)
		if n, err := child.FlushRelay(); err != nil || n != groups {
			t.Fatalf("wave %d flush = %d, %v; want %d, nil", wave, n, err, groups)
		}
	}
	// One gratuitous re-flush: mark everything dirty again by pushing
	// wave-0 state once more (a pure duplicate for parent and control).
	parentSnaps, err := parent.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	controlSnaps, err := control.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(parentSnaps) != groups || len(controlSnaps) != groups {
		t.Fatalf("snapshot counts: parent %d, control %d, want %d", len(parentSnaps), len(controlSnaps), groups)
	}
	for i := range parentSnaps {
		p, c := parentSnaps[i], controlSnaps[i]
		if p.Digest != c.Digest || !bytes.Equal(p.Envelope, c.Envelope) {
			t.Fatalf("group %016x diverged between relayed parent and direct control", p.Digest)
		}
	}
}
