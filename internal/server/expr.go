package server

import (
	"errors"
	"fmt"
	"math"
	"net"

	"repro/internal/sketch"
	"repro/internal/wire"
)

// Set-expression query evaluation: the recursive walk that turns a
// wire.QueryExpr over named streams into per-node estimates.
//
// Leaves resolve to merge groups (the query's seed/kind filters plus
// the leaf's stream name must narrow to exactly one group per leaf),
// and every interior node folds its children through the group kind's
// set capabilities:
//
//   - unions merge clones of the child sketches — every registered
//     kind can do this, it is the paper's original query;
//   - interior intersections and differences need sketch.SetCombiner
//     (the result must itself be a sketch for the parent node to
//     consume), which only kinds with the coordinated-sample closure
//     property implement;
//   - a root intersection/difference, and Jaccard (root-only by
//     grammar), need only the pairwise sketch.SetAlgebra scalars.
//
// Kinds without the needed capability refuse with AckUnsupported,
// exactly like Summer gating on the flat query path. Evaluation works
// on clones (envelope round trips), never on live group state, so a
// query can run concurrently with absorbs.

// errExprUnsupported marks a capability refusal: the group's kind
// cannot answer the requested operator at the requested position.
var errExprUnsupported = errors.New("server: set expression unsupported by sketch kind")

// exprValue is one evaluated node: its scalar estimate, its reported
// relative error bound, and — when the node's result set is itself
// sketch-representable — the sketch a parent node consumes.
type exprValue struct {
	val   float64
	bound float64
	sk    sketch.Sketch // nil for root-only scalar results
}

func (s *Server) serveQueryExpr(conn net.Conn, payload []byte) {
	eq, err := wire.DecodeExprQuery(payload)
	if err != nil {
		s.stats.rejected.Add(1)
		s.writeAck(conn, wire.Ack{Code: wire.AckCorrupt, Detail: err.Error()})
		return
	}
	res, qerr := s.AnswerExpr(eq)
	if qerr != nil {
		s.stats.rejected.Add(1)
		code := wire.AckError
		switch {
		case errors.Is(qerr, errExprUnsupported):
			code = wire.AckUnsupported
		case errors.Is(qerr, sketch.ErrMismatch):
			code = wire.AckSeedMismatch
		}
		s.writeAck(conn, wire.Ack{Code: code, Detail: qerr.Error()})
		return
	}
	enc, err := wire.EncodeExprResult(res)
	if err != nil {
		s.stats.rejected.Add(1)
		s.writeAck(conn, wire.Ack{Code: wire.AckError, Detail: err.Error()})
		return
	}
	s.stats.queries.Add(1)
	s.stats.exprQueries.Add(1)
	if err := wire.WriteFrame(conn, wire.MsgQueryExprResult, enc); err != nil {
		s.logf("unionstreamd: %s: writing expr result: %v", conn.RemoteAddr(), err)
	}
}

// AnswerExpr evaluates one set-expression query against the group
// table and returns the per-node result tree. It is the in-process
// entry the TCP path, embedders, and the cluster tests share.
func (s *Server) AnswerExpr(eq wire.ExprQuery) (*wire.ExprResult, error) {
	if eq.Expr == nil {
		return nil, fmt.Errorf("server: empty expression query")
	}
	if err := eq.Expr.Validate(); err != nil {
		return nil, err
	}
	res, _, err := s.evalExpr(eq, eq.Expr, false)
	return res, err
}

// evalExpr walks one node. needSketch is true when a parent will
// consume this node's result as a sketch — which forbids the
// scalar-only fallbacks.
func (s *Server) evalExpr(eq wire.ExprQuery, e *wire.QueryExpr, needSketch bool) (*wire.ExprResult, sketch.Sketch, error) {
	if e.Op == wire.OpLeaf {
		g, err := s.selectStreamGroup(e.Stream, eq)
		if err != nil {
			return nil, nil, err
		}
		sk, err := g.cloneSketch()
		if err != nil {
			return nil, nil, err
		}
		res := &wire.ExprResult{Op: wire.OpLeaf, Stream: e.Stream, Value: sk.Estimate(), ErrBound: relativeStdErr(sk)}
		return res, sk, nil
	}

	lres, lsk, err := s.evalExpr(eq, e.Left, true)
	if err != nil {
		return nil, nil, err
	}
	rres, rsk, err := s.evalExpr(eq, e.Right, true)
	if err != nil {
		return nil, nil, err
	}
	res := &wire.ExprResult{Op: e.Op, Left: lres, Right: rres}
	rse := relativeStdErr(lsk)

	switch e.Op {
	case wire.OpUnion:
		// The paper's query: merge a clone of the left child with the
		// right. Every kind merges, so unions nest freely.
		if err := lsk.Merge(rsk); err != nil {
			return nil, nil, err
		}
		res.Value, res.ErrBound = lsk.Estimate(), rse
		return res, lsk, nil

	case wire.OpIntersect, wire.OpDiff:
		if comb, ok := lsk.(sketch.SetCombiner); ok {
			// Closure path: the result is itself a coordinated sketch, so
			// this node can sit anywhere in the expression.
			var out sketch.Sketch
			if e.Op == wire.OpIntersect {
				out, err = comb.CombineIntersect(rsk)
			} else {
				out, err = comb.CombineDiff(rsk)
			}
			if err != nil {
				return nil, nil, err
			}
			res.Value = out.Estimate()
			res.ErrBound = derivedBound(rse, lres.Value+rres.Value, res.Value)
			return res, out, nil
		}
		if alg, ok := lsk.(sketch.SetAlgebra); ok && !needSketch {
			// Scalar-only path: legal only at the root, where nothing
			// downstream needs the result as a set.
			if e.Op == wire.OpIntersect {
				res.Value, err = alg.SetIntersect(rsk)
			} else {
				res.Value, err = alg.SetDiff(rsk)
			}
			if err != nil {
				return nil, nil, err
			}
			res.ErrBound = derivedBound(rse, lres.Value+rres.Value, res.Value)
			return res, nil, nil
		}
		if needSketch {
			return nil, nil, fmt.Errorf("%w: %q cannot nest %s under another operator (no sketch-valued set operations)",
				errExprUnsupported, sketchKindName(lsk), e.Op)
		}
		return nil, nil, fmt.Errorf("%w: %q has no set operations", errExprUnsupported, sketchKindName(lsk))

	case wire.OpJaccard:
		alg, ok := lsk.(sketch.SetAlgebra)
		if !ok {
			return nil, nil, fmt.Errorf("%w: %q has no set operations", errExprUnsupported, sketchKindName(lsk))
		}
		res.Value, err = alg.SetJaccard(rsk)
		if err != nil {
			return nil, nil, err
		}
		// A ratio's relative error explodes as the ratio shrinks: the
		// intersection count backing the numerator is j·(sample size).
		res.ErrBound = derivedBound(rse, 1, res.Value)
		return res, nil, nil

	default:
		return nil, nil, fmt.Errorf("server: unknown expression operator %d", e.Op)
	}
}

// selectStreamGroup resolves one expression leaf: the group holding
// the named stream, subject to the query's seed/kind filters, which
// must narrow to exactly one. Like selectGroup, ambiguity errors name
// the candidates.
func (s *Server) selectStreamGroup(stream string, eq wire.ExprQuery) (*group, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var matched []*group
	for _, g := range s.groups {
		if g.stream != stream {
			continue
		}
		if eq.HasSeed && g.seed != eq.Seed {
			continue
		}
		if eq.HasKind && g.kind != sketch.Kind(eq.SketchKind) {
			continue
		}
		matched = append(matched, g)
	}
	switch {
	case len(matched) == 1:
		return matched[0], nil
	case len(matched) == 0:
		name := stream
		if name == "" {
			name = "(default)"
		}
		return nil, fmt.Errorf("server: no group for stream %q (seed filter: %v, kind filter: %v); groups held: %s",
			name, eq.HasSeed, eq.HasKind, describeGroups(s.groupsLocked()))
	default:
		return nil, fmt.Errorf("server: stream %q matches %d groups: %s; narrow the query's seed/kind filters",
			stream, len(matched), describeGroups(matched))
	}
}

// cloneSketch snapshots the group's merged sketch as an independent
// copy via an envelope round trip, so expression evaluation never
// mutates (or holds the lock of) live group state.
func (g *group) cloneSketch() (sketch.Sketch, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.sk == nil {
		return nil, fmt.Errorf("server: group %s/%016x holds no sketch", g.name, g.digest)
	}
	env, err := sketch.Envelope(g.sk)
	if err != nil {
		return nil, err
	}
	return sketch.Open(env)
}

// relativeStdErr reports the kind's configured relative standard
// error, or NaN for kinds without the Accuracy capability.
func relativeStdErr(sk sketch.Sketch) float64 {
	if acc, ok := sk.(sketch.Accuracy); ok {
		return acc.RelativeStdErr()
	}
	return math.NaN()
}

// derivedBound degrades a configured relative error by the observed
// selectivity: a result that is a fraction σ = val/base of the
// operands' combined mass is estimated from an effective coordinated
// sample σ times smaller, so the relative error grows as 1/√σ. base
// is a conservative stand-in for the operand union (the sum of the
// operand estimates). A zero-valued result has no effective sample at
// all and reports +Inf.
func derivedBound(rse, base, val float64) float64 {
	if math.IsNaN(rse) {
		return math.NaN()
	}
	if val <= 0 {
		return math.Inf(1)
	}
	if base < val {
		base = val
	}
	return rse * math.Sqrt(base/val)
}

// sketchKindName names a sketch's registered kind for error text.
func sketchKindName(sk sketch.Sketch) string {
	info, _ := sketch.Lookup(sk.Kind())
	return info.Name
}
