package server_test

// Golden test for the /statsz surface in relay+cluster mode: the
// relay and cluster sections, the per-group relay counters, and the
// ring-ownership annotations are operator-facing contract just like
// the base snapshot. The upstream address is an ephemeral port and is
// normalized; everything else in the fixture is deterministic.
//
// Regenerate with: go test ./internal/server -run StatszRelayGolden -update-golden

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/sketch/kmv"
)

func TestStatszRelayGoldenShape(t *testing.T) {
	parent := server.New(server.Config{})
	parentAddr := startServer(t, parent)

	ring := cluster.NewRing(3, 0, 42)
	child := server.New(server.Config{
		Relay: &server.RelayConfig{
			Upstream:      parentAddr,
			FlushInterval: time.Hour, // parked: the explicit flush below is the only one
			Attempts:      4,
			BackoffBase:   time.Millisecond,
			JitterSeed:    1,
		},
		Cluster: &server.ClusterInfo{
			Shard:    0,
			Shards:   3,
			RingSeed: 42,
			Owner:    ring.OwnerOfGroup,
		},
	})
	childAddr := startServer(t, child)

	// Deterministic fixture: three kmv groups absorbed, one flush. Two
	// of the seeds are chosen so the fixture shows both an owned and a
	// foreign group under ring seed 42.
	cl := testClient(childAddr)
	for i := 0; i < 3; i++ {
		sk := kmv.New(4, uint64(7000+i))
		for x := uint64(0); x < 32; x++ {
			sk.Process(x * uint64(3+i))
		}
		env, err := sketch.Envelope(sk)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Push(env); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := child.FlushRelay(); err != nil || n != 3 {
		t.Fatalf("FlushRelay = %d, %v; want 3, nil", n, err)
	}

	rec := httptest.NewRecorder()
	child.StatszHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	if rec.Code != 200 {
		t.Fatalf("statsz status %d", rec.Code)
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("statsz is not JSON: %v", err)
	}
	normalizeStatsz(m)
	if relay, ok := m["relay"].(map[string]any); ok {
		relay["upstream"] = "<addr>" // ephemeral loopback port
	} else {
		t.Fatal("relay section missing from relay-mode /statsz")
	}
	if _, ok := m["cluster"].(map[string]any); !ok {
		t.Fatal("cluster section missing from cluster-aware /statsz")
	}
	got, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	goldenPath := filepath.Join("testdata", "statsz_relay.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("relay /statsz shape drifted from golden (regenerate with -update-golden if intentional)\n--- got\n%s--- want\n%s", got, want)
	}

	// Every non-omitempty tag on the relay/cluster sections must render,
	// and the relay-mode group annotations must appear somewhere in the
	// fixture (they are omitempty, so the base golden never shows them).
	rendered := string(got)
	for _, typ := range []reflect.Type{reflect.TypeOf(server.RelayStats{}), reflect.TypeOf(server.ClusterStats{})} {
		for i := 0; i < typ.NumField(); i++ {
			tag := strings.Split(typ.Field(i).Tag.Get("json"), ",")[0]
			if tag == "" || tag == "-" {
				continue
			}
			if strings.Contains(typ.Field(i).Tag.Get("json"), "omitempty") {
				continue
			}
			if !strings.Contains(rendered, `"`+tag+`"`) {
				t.Errorf("field %s.%s (json %q) missing from relay /statsz output", typ.Name(), typ.Field(i).Name, tag)
			}
		}
	}
	for _, tag := range []string{"relay_pushes", "owner_shard", "owned"} {
		if !strings.Contains(rendered, `"`+tag+`"`) {
			t.Errorf("relay-mode group annotation %q missing from /statsz output", tag)
		}
	}
}
