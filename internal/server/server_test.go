package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/hashing"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/sketch/kmv"
	"repro/internal/stream"
	"repro/internal/wire"

	// Register every sketch kind for the cross-kind tests.
	_ "repro/internal/sketch/kinds"
)

// startServer runs srv on an ephemeral loopback listener and returns
// its address plus a shutdown func the test must call.
func startServer(t *testing.T, srv *server.Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return ln.Addr().String()
}

func testClient(addr string) *client.Client {
	return client.New(client.Config{
		Addr:        addr,
		Attempts:    3,
		BackoffBase: 5 * time.Millisecond,
		JitterSeed:  1,
	})
}

func overlapSources(t int, seed uint64) []stream.Source {
	return stream.OverlapConfig{
		Sites: t, PerSite: 5000, CoreSize: 2000, PrivateSize: 2000,
		Overlap: 0.5, Seed: seed,
	}.Build()
}

// siteMessages builds the per-site sketch messages the paper's parties
// would send: one coordinated estimator per source, enveloped.
func siteMessages(t *testing.T, cfg core.EstimatorConfig, srcs []stream.Source) [][]byte {
	t.Helper()
	msgs := make([][]byte, len(srcs))
	for i, src := range srcs {
		est := core.NewEstimator(cfg)
		stream.Feed(src, func(it stream.Item) { est.ProcessWeighted(it.Label, it.Value) })
		msg, err := sketch.Envelope(est)
		if err != nil {
			t.Fatal(err)
		}
		msgs[i] = msg
	}
	return msgs
}

// TestLoopbackMatchesDistsim is the end-to-end acceptance test: t=8
// sites pushing their sketches over real TCP sockets from concurrent
// goroutines must produce exactly the estimates the in-process
// simulator computes on the same seeded streams, and the daemon's
// introspection counters must account every sketch and byte.
func TestLoopbackMatchesDistsim(t *testing.T) {
	srcs := overlapSources(8, 1)
	cfg := core.EstimatorConfig{Capacity: 512, Copies: 5, Seed: 77}

	want, err := distsim.Run(distsim.GT{Config: cfg}, srcs, true)
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New(server.Config{})
	addr := startServer(t, srv)
	msgs := siteMessages(t, cfg, srcs)

	var wg sync.WaitGroup
	errs := make([]error, len(msgs))
	for i, msg := range msgs {
		wg.Add(1)
		go func(i int, msg []byte) {
			defer wg.Done()
			_, errs[i] = testClient(addr).Push(msg)
		}(i, msg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("site %d push: %v", i, err)
		}
	}

	cl := testClient(addr)
	distinct, err := cl.DistinctCount(cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := cl.SumDistinct(cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if distinct != want.DistinctEstimate {
		t.Errorf("network distinct %.4f != in-process %.4f", distinct, want.DistinctEstimate)
	}
	if sum != want.SumEstimate {
		t.Errorf("network sum %.4f != in-process %.4f", sum, want.SumEstimate)
	}

	// Introspection over the wire: absorbed-sketch and byte counters
	// must match the simulator's byte accounting exactly.
	var st server.Stats
	if err := cl.Stats(&st); err != nil {
		t.Fatal(err)
	}
	if st.SketchesAbsorbed != int64(len(srcs)) {
		t.Errorf("absorbed %d sketches, want %d", st.SketchesAbsorbed, len(srcs))
	}
	if st.SketchBytes != want.Stats.BytesSent {
		t.Errorf("sketch bytes %d != simulator bytes %d", st.SketchBytes, want.Stats.BytesSent)
	}
	if len(st.Groups) != 1 {
		t.Fatalf("%d groups, want 1", len(st.Groups))
	}
	g := st.Groups[0]
	if g.Kind != "gt" || g.Seed != cfg.Seed || g.Digest == "" {
		t.Errorf("group identity %+v", g)
	}
	if g.SketchesAbsorbed != int64(len(srcs)) || g.SketchBytes != want.Stats.BytesSent {
		t.Errorf("group accounting %+v", g)
	}
	// Params carries the kind's self-description (JSON numbers decode
	// as float64).
	if g.Params["capacity"] != float64(cfg.Capacity) || g.Params["copies"] != float64(cfg.Copies) {
		t.Errorf("group params %+v", g.Params)
	}
	eps, _ := g.Params["epsilon"].(float64)
	delta, _ := g.Params["delta"].(float64)
	if eps <= 0 || eps > 1 || delta <= 0 || delta >= 1 {
		t.Errorf("group (ε,δ) = (%v, %v)", eps, delta)
	}
	if g.DistinctEstimate != distinct {
		t.Errorf("group estimate %.4f != query %.4f", g.DistinctEstimate, distinct)
	}
	if st.FramesRead == 0 || st.BytesRead <= st.SketchBytes {
		t.Errorf("frame accounting: frames=%d bytes=%d", st.FramesRead, st.BytesRead)
	}
}

// TestConcurrentAbsorbBitIdentical asserts the merge-group guard: N
// goroutines absorbing the same messages in random order must leave a
// group bit-identical to a serial in-order merge.
func TestConcurrentAbsorbBitIdentical(t *testing.T) {
	cfg := core.EstimatorConfig{Capacity: 128, Copies: 3, Seed: 5}
	srcs := overlapSources(16, 9)
	msgs := siteMessages(t, cfg, srcs)

	// Serial reference: open and merge in site order.
	refBytes, err := serialMerge(msgs)
	if err != nil {
		t.Fatal(err)
	}

	rng := hashing.NewXoshiro256(11)
	for trial := 0; trial < 3; trial++ {
		srv := server.New(server.Config{Workers: 4})
		addr := startServer(t, srv)
		order := make([]int, len(msgs))
		for i := range order {
			order[i] = i
		}
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		var wg sync.WaitGroup
		for _, idx := range order {
			wg.Add(1)
			go func(msg []byte) {
				defer wg.Done()
				if _, err := testClient(addr).Push(msg); err != nil {
					t.Error(err)
				}
			}(msgs[idx])
		}
		wg.Wait()
		got, err := srv.SnapshotGroup(cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(refBytes) {
			t.Fatalf("trial %d: concurrent absorb state differs from serial merge", trial)
		}
	}
}

func TestPredicateQueryMatchesLocal(t *testing.T) {
	cfg := core.EstimatorConfig{Capacity: 256, Copies: 5, Seed: 21}
	srcs := overlapSources(4, 13)
	msgs := siteMessages(t, cfg, srcs)

	local := core.NewEstimator(cfg)
	for _, src := range srcs {
		stream.Feed(src, func(it stream.Item) { local.ProcessWeighted(it.Label, it.Value) })
	}

	srv := server.New(server.Config{})
	addr := startServer(t, srv)
	cl := testClient(addr)
	for _, msg := range msgs {
		if _, err := cl.Push(msg); err != nil {
			t.Fatal(err)
		}
	}

	got, err := cl.Query(wire.Query{Kind: wire.QueryCountWhere, HasSeed: true, Seed: cfg.Seed, Pred: wire.PredMod, A: 3, B: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := local.EstimateCountWhere(func(l uint64) bool { return l%3 == 1 })
	if got != want {
		t.Errorf("predicate count %.4f != local %.4f", got, want)
	}

	got, err = cl.Query(wire.Query{Kind: wire.QuerySumWhere, HasSeed: true, Seed: cfg.Seed, Pred: wire.PredRange, A: 0, B: 1000})
	if err != nil {
		t.Fatal(err)
	}
	want = local.EstimateSumWhere(func(l uint64) bool { return l <= 1000 })
	if got != want {
		t.Errorf("predicate sum %.4f != local %.4f", got, want)
	}
}

// TestClientRetriesDroppedConnection: a coordinator that drops the
// first connection (crash, restart, flaky LB) must not lose the
// site's message — the client backs off and the retry succeeds.
func TestClientRetriesDroppedConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{})
	done := make(chan error, 1)
	go func() {
		// Drop the first connection without a byte of reply, then
		// hand the listener to the real server.
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		conn.Close()
		done <- srv.Serve(ln)
	}()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	}()

	cfg := core.EstimatorConfig{Capacity: 64, Copies: 3, Seed: 3}
	est := core.NewEstimator(cfg)
	for x := uint64(0); x < 1000; x++ {
		est.Process(x)
	}
	msg, err := sketch.Envelope(est)
	if err != nil {
		t.Fatal(err)
	}
	attempts, err := testClient(ln.Addr().String()).Push(msg)
	if err != nil {
		t.Fatalf("push after dropped connection: %v", err)
	}
	if attempts < 2 {
		t.Errorf("succeeded in %d attempt(s); first connection should have failed", attempts)
	}
	st := srv.Stats()
	if st.SketchesAbsorbed != 1 {
		t.Errorf("absorbed %d, want 1", st.SketchesAbsorbed)
	}
}

func TestSeedMismatchTypedError(t *testing.T) {
	required := uint64(42)
	srv := server.New(server.Config{RequireSeed: &required})
	addr := startServer(t, srv)

	mk := func(seed uint64) []byte {
		est := core.NewEstimator(core.EstimatorConfig{Capacity: 32, Copies: 3, Seed: seed})
		est.Process(1)
		msg, err := sketch.Envelope(est)
		if err != nil {
			t.Fatal(err)
		}
		return msg
	}

	start := time.Now()
	attempts, err := testClient(addr).Push(mk(7))
	if !errors.Is(err, client.ErrSeedMismatch) {
		t.Fatalf("err = %v, want ErrSeedMismatch", err)
	}
	if attempts != 1 {
		t.Errorf("mismatch retried %d times; must be permanent", attempts)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("mismatch took %v; must fail fast, not hang", elapsed)
	}
	if _, err := testClient(addr).Push(mk(42)); err != nil {
		t.Errorf("matching seed rejected: %v", err)
	}
}

// TestVersionMismatch covers both halves: the server answers a frame
// from a future protocol version with the typed refusal ack, and the
// client maps that ack to ErrVersionMismatch without retrying.
func TestVersionMismatch(t *testing.T) {
	srv := server.New(server.Config{})
	addr := startServer(t, srv)

	// Server half: hand-craft a frame with a bumped version byte.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	raw := wire.EncodeFrame(wire.MsgPush, []byte("payload"))
	raw[2] = wire.Version + 1
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatalf("reading version-mismatch reply: %v", err)
	}
	if typ != wire.MsgAck {
		t.Fatalf("reply type %v, want ack", typ)
	}
	ack, err := wire.DecodeAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Code != wire.AckVersionMismatch {
		t.Errorf("ack code %v, want version-mismatch", ack.Code)
	}

	// Client half: a fake coordinator that always answers the
	// version-mismatch ack must surface the typed error, once.
	fake, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fake.Close()
	go func() {
		for {
			c, err := fake.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				if _, _, err := wire.ReadFrame(c, 0); err != nil {
					return
				}
				wire.WriteFrame(c, wire.MsgAck,
					wire.Ack{Code: wire.AckVersionMismatch, Detail: "speaks version 2"}.Encode())
			}(c)
		}
	}()
	attempts, err := testClient(fake.Addr().String()).Push([]byte("msg"))
	if !errors.Is(err, client.ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
	if attempts != 1 {
		t.Errorf("version mismatch retried %d times; must be permanent", attempts)
	}
}

func TestCorruptPushRejected(t *testing.T) {
	srv := server.New(server.Config{})
	addr := startServer(t, srv)
	_, err := testClient(addr).Push([]byte("not a sketch"))
	if !errors.Is(err, client.ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if st := srv.Stats(); st.SketchesAbsorbed != 0 || st.Rejected == 0 {
		t.Errorf("stats after corrupt push: %+v", st)
	}
}

func TestQueryErrors(t *testing.T) {
	srv := server.New(server.Config{})
	addr := startServer(t, srv)
	cl := testClient(addr)

	if _, err := cl.DistinctCount(99); err == nil {
		t.Error("query against empty server succeeded")
	}

	// Two configs in play: an unseeded query is ambiguous, seeded ones
	// resolve.
	for _, seed := range []uint64{1, 2} {
		est := core.NewEstimator(core.EstimatorConfig{Capacity: 32, Copies: 3, Seed: seed})
		est.Process(seed)
		msg, _ := sketch.Envelope(est)
		if _, err := cl.Push(msg); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Query(wire.Query{Kind: wire.QueryDistinct}); err == nil {
		t.Error("ambiguous unseeded query succeeded")
	}
	if _, err := cl.DistinctCount(1); err != nil {
		t.Errorf("seeded query: %v", err)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	srv := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	// An idle connection is open when shutdown begins; it must not
	// block the drain.
	idle, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	est := core.NewEstimator(core.EstimatorConfig{Capacity: 64, Copies: 3, Seed: 8})
	for x := uint64(0); x < 500; x++ {
		est.Process(x)
	}
	msg, _ := sketch.Envelope(est)
	if _, err := testClient(ln.Addr().String()).Push(msg); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve returned: %v", err)
	}
	if st := srv.Stats(); st.SketchesAbsorbed != 1 {
		t.Errorf("absorbed %d after drain, want 1", st.SketchesAbsorbed)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 500*time.Millisecond); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

func TestStatszHTTP(t *testing.T) {
	srv := server.New(server.Config{})
	addr := startServer(t, srv)
	est := core.NewEstimator(core.EstimatorConfig{Capacity: 32, Copies: 3, Seed: 6})
	est.Process(123)
	msg, _ := sketch.Envelope(est)
	if _, err := testClient(addr).Push(msg); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	srv.StatszHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	if rec.Code != 200 {
		t.Fatalf("statsz status %d", rec.Code)
	}
	var st server.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("statsz is not JSON: %v", err)
	}
	if st.SketchesAbsorbed != 1 || st.SketchBytes != int64(len(msg)) {
		t.Errorf("statsz accounting: %+v", st)
	}
	if st.Merges != 1 || st.MergeNanosTotal <= 0 || st.MergeNanosMax <= 0 {
		t.Errorf("merge latency not recorded: %+v", st)
	}
	if math.IsNaN(st.MergeNanosMean) || st.MergeNanosMean <= 0 {
		t.Errorf("merge mean %v", st.MergeNanosMean)
	}
}

// serialMerge opens the envelopes in order, merges them into the
// first, and returns the canonical accumulated bytes — the reference
// any concurrent absorb order must reproduce exactly.
func serialMerge(msgs [][]byte) ([]byte, error) {
	ref, err := sketch.Open(msgs[0])
	if err != nil {
		return nil, err
	}
	for _, msg := range msgs[1:] {
		sk, err := sketch.Open(msg)
		if err != nil {
			return nil, err
		}
		if err := ref.Merge(sk); err != nil {
			return nil, err
		}
	}
	return ref.MarshalBinary()
}

// TestConcurrentAbsorbAllKinds extends the bit-identical guarantee to
// every registered kind: concurrent absorbs of the same envelopes
// must leave the group byte-for-byte equal to a serial in-order
// merge, whatever the sketch's internals.
func TestConcurrentAbsorbAllKinds(t *testing.T) {
	for _, info := range sketch.Kinds() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			const sites = 6
			msgs := make([][]byte, sites)
			for i := 0; i < sites; i++ {
				sk := info.New(0.2, 31)
				for x := uint64(0); x < 1500; x++ {
					sk.Process((x*uint64(i+1) + x) % 4000)
				}
				env, err := sketch.Envelope(sk)
				if err != nil {
					t.Fatal(err)
				}
				msgs[i] = env
			}
			refBytes, err := serialMerge(msgs)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := sketch.Open(msgs[0])
			if err != nil {
				t.Fatal(err)
			}

			srv := server.New(server.Config{Workers: 4})
			addr := startServer(t, srv)
			var wg sync.WaitGroup
			for _, msg := range msgs {
				wg.Add(1)
				go func(msg []byte) {
					defer wg.Done()
					if _, err := testClient(addr).Push(msg); err != nil {
						t.Error(err)
					}
				}(msg)
			}
			wg.Wait()
			got, err := srv.SnapshotGroup(ref.Seed())
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(refBytes) {
				t.Fatalf("concurrent absorb state differs from serial merge")
			}
		})
	}
}

// TestCrossKindGroups: two kinds sharing a coordination seed must land
// in separate merge groups; a seed-only query is then ambiguous, and
// naming the kind resolves it.
func TestCrossKindGroups(t *testing.T) {
	const seed = 42
	srv := server.New(server.Config{})
	addr := startServer(t, srv)
	cl := testClient(addr)

	gt := core.NewEstimator(core.EstimatorConfig{Capacity: 64, Copies: 3, Seed: seed})
	km := kmv.New(64, seed)
	for x := uint64(0); x < 2000; x++ {
		gt.Process(x)
		km.Process(x)
	}
	for _, sk := range []sketch.Sketch{gt, km} {
		env, err := sketch.Envelope(sk)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Push(env); err != nil {
			t.Fatal(err)
		}
	}

	st := srv.Stats()
	if len(st.Groups) != 2 {
		t.Fatalf("%d groups, want 2", len(st.Groups))
	}
	if _, err := cl.DistinctCount(seed); err == nil {
		t.Error("seed-only query across two kinds succeeded; want ambiguity error")
	}
	for _, k := range []sketch.Kind{sketch.KindGT, sketch.KindKMV} {
		est, err := cl.Query(wire.Query{
			Kind:    wire.QueryDistinct,
			HasSeed: true, Seed: seed,
			HasKind: true, SketchKind: uint8(k),
		})
		if err != nil {
			t.Fatalf("kind %v query: %v", k, err)
		}
		if est <= 0 {
			t.Errorf("kind %v estimate %v", k, est)
		}
	}
}

// TestKindMismatchTypedError: a coordinator pinned to one kind must
// answer other kinds with the typed refusal, which the client treats
// as permanent — exactly one attempt, no backoff spin.
func TestKindMismatchTypedError(t *testing.T) {
	srv := server.New(server.Config{RequireKind: "gt"})
	addr := startServer(t, srv)

	km := kmv.New(32, 7)
	km.Process(1)
	env, err := sketch.Envelope(km)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	attempts, err := testClient(addr).Push(env)
	if !errors.Is(err, client.ErrKindMismatch) {
		t.Fatalf("err = %v, want ErrKindMismatch", err)
	}
	if attempts != 1 {
		t.Errorf("kind mismatch retried %d times; must be permanent", attempts)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("kind mismatch took %v; must fail fast, not hang", elapsed)
	}

	gt := core.NewEstimator(core.EstimatorConfig{Capacity: 32, Copies: 3, Seed: 7})
	gt.Process(1)
	env, err = sketch.Envelope(gt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := testClient(addr).Push(env); err != nil {
		t.Errorf("matching kind rejected: %v", err)
	}
}
