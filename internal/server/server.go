// Package server implements unionstreamd's coordinator: the paper's
// referee as a long-running network daemon. Sites connect over TCP,
// push their one-shot sketch messages (internal/sketch envelopes,
// framed by internal/wire), and the daemon routes each through the
// kind registry and merges it into its (stream, kind, config digest)
// group — pushes may name the logical stream they belong to
// (wire.MsgPushNamed), and unnamed pushes land in the default stream
// (""). Groups answer union queries — distinct counts,
// duplicate-insensitive sums, and predicate counts, each subject to
// the kind's capabilities — exactly as the in-process simulator does,
// but across machines and across every registered sketch backend.
// Across streams the coordinator answers set-expression queries
// (wire.MsgQueryExpr): unions, intersections, differences, and
// Jaccard similarity over named streams, evaluated recursively
// against the coordinated groups (see expr.go).
//
// # Concurrency model
//
// Each accepted connection gets a reader goroutine. Absorb work
// (decode + merge) flows through a bounded worker pool so a burst of
// sites cannot stampede the merge path; each merge group is guarded by
// its own mutex. Because coordinated sketches merge commutatively and
// associatively, the group state after N concurrent absorbs is
// bit-identical to absorbing the same messages serially in any order —
// the server tests assert this byte-for-byte under the race detector.
//
// # Shutdown
//
// Shutdown stops the accept loop, wakes blocked readers, lets every
// in-flight message finish absorbing (and its ack get written), then
// retires the worker pool. cmd/unionstreamd wires this to SIGTERM.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/sketch"
	"repro/internal/wire"
)

// Config parameterizes a Server. The zero value listens with default
// limits and accepts sketches of any registered kind and any
// coordination seed.
type Config struct {
	// Addr is the TCP listen address for ListenAndServe (e.g.
	// ":7600"). Ignored by Serve, which takes a listener.
	Addr string
	// Workers bounds the absorb pool; <= 0 selects GOMAXPROCS.
	Workers int
	// MaxPayload bounds accepted frame payloads in bytes; 0 selects
	// wire.DefaultMaxPayload.
	MaxPayload uint32
	// RequireSeed, when non-nil, rejects pushes whose sketch seed
	// differs — a deployment where the fleet's coordination seed is
	// pinned and an uncoordinated site must hear a typed refusal, not
	// silently form its own group.
	RequireSeed *uint64
	// RequireKind, when non-empty, rejects pushes of any other sketch
	// backend (a registered kind name, e.g. "gt") with
	// AckKindMismatch — the backend analogue of RequireSeed.
	RequireKind string
	// Relay, when non-nil, runs this coordinator as a mid-tier shard
	// that periodically pushes each group's merged envelope to an
	// upstream parent coordinator (see RelayConfig). Shutdown flushes
	// every dirty group upstream before returning.
	Relay *RelayConfig
	// WAL, when non-nil, makes the coordinator durable: accepted
	// envelopes are logged before they are merged or acked, and a
	// rebooted coordinator replays the log to rebuild its groups
	// before the listener accepts (see WALConfig).
	WAL *WALConfig
	// Cluster, when non-nil, describes this coordinator's place in a
	// consistent-hash cluster for introspection: /statsz reports the
	// shard identity and, per group, the ring owner — the fastest way
	// to spot a mis-seeded ring pushing groups to the wrong shard.
	Cluster *ClusterInfo
	// Logf, when set, receives one line per lifecycle event and
	// per-connection error (e.g. log.Printf). Nil disables logging.
	Logf func(format string, args ...any)
}

// ClusterInfo is the coordinator's view of the consistent-hash ring
// it serves in. It is introspection-only data: the data path accepts
// whatever compatible envelopes arrive (idempotent merges make
// misrouted groups safe, just unbalanced), and /statsz surfaces
// ownership so the imbalance is visible.
type ClusterInfo struct {
	// Shard is this coordinator's ring index; Shards the ring size.
	Shard, Shards int
	// RingSeed is the deployment's shared ring seed.
	RingSeed uint64
	// Owner maps a group's (stream, kind tag, config digest) to its
	// owning shard index — typically cluster.(*Ring).OwnerOfGroup. Nil
	// disables per-group ownership reporting.
	Owner func(stream string, kind uint8, digest uint64) int
}

// groupKey identifies one merge group: the logical stream it belongs
// to ("" for the default stream), a sketch kind, and its canonical
// config digest. Two envelopes land in the same group exactly when
// they name the same stream and their sketches are merge-compatible —
// which is why the digest, not a kind-specific config struct, closes
// the key.
type groupKey struct {
	stream string
	kind   sketch.Kind
	digest uint64
}

// group is one mergeable family of sketches: everything pushed to one
// stream with the same kind and configuration digest.
type group struct {
	// stream, kind, name, seed, and digest are fixed at creation (from
	// the first absorbed envelope) and readable without the lock.
	stream string
	kind   sketch.Kind
	name   string
	seed   uint64
	digest uint64

	mu       sync.Mutex // guards: sk, absorbed, bytes, pendingRelay, relayPushes
	sk       sketch.Sketch
	absorbed int64
	bytes    int64
	// pendingRelay counts absorbs not yet covered by an acked upstream
	// envelope; relayPushes counts acked upstream pushes of this
	// group. Both are bookkeeping only — maintained even on a
	// non-relay coordinator, where pendingRelay simply grows.
	pendingRelay int64
	relayPushes  int64
}

// absorbJob is one queued push. The reader goroutine that enqueued it
// blocks on done, then writes the ack on its own connection — so acks
// stay ordered per connection while absorbs from different sites run
// in parallel up to the pool bound.
type absorbJob struct {
	stream  string
	payload []byte
	ack     wire.Ack
	done    chan struct{}
}

// Server is the coordinator daemon. Create with New, start with
// ListenAndServe or Serve, stop with Shutdown.
type Server struct {
	cfg   Config
	jobs  chan *absorbJob
	quit  chan struct{}
	relay *relayState // nil unless cfg.Relay is set
	wal   *walState   // nil unless cfg.WAL is set

	workerWG sync.WaitGroup
	connWG   sync.WaitGroup

	mu       sync.Mutex // guards: groups, ln, conns, started, shutdown
	groups   map[groupKey]*group
	ln       net.Listener
	conns    map[net.Conn]struct{}
	started  bool
	shutdown bool

	stats counters
}

// New returns an unstarted server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxPayload == 0 {
		cfg.MaxPayload = wire.DefaultMaxPayload
	}
	s := &Server{
		cfg:    cfg,
		jobs:   make(chan *absorbJob),
		quit:   make(chan struct{}),
		groups: make(map[groupKey]*group),
		conns:  make(map[net.Conn]struct{}),
	}
	if cfg.Relay != nil {
		s.relay = newRelayState(*cfg.Relay)
	}
	if cfg.WAL != nil {
		s.wal = &walState{cfg: *cfg.WAL}
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ListenAndServe listens on cfg.Addr and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown (or a fatal accept
// error). It owns ln and closes it on return. A durable coordinator
// (Config.WAL) replays its log here, before the first accept: sites
// only ever talk to a coordinator whose groups are fully rebuilt.
func (s *Server) Serve(ln net.Listener) error {
	if err := s.ensureRecovered(); err != nil {
		// Refuse to serve rather than serve partial state.
		ln.Close()
		return err
	}
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	if s.started {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: Serve called twice")
	}
	s.started = true
	s.ln = ln
	s.mu.Unlock()

	s.workerWG.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
	if s.relay != nil {
		s.relay.wg.Add(1)
		go s.relayLoop()
		s.logf("unionstreamd: relaying merged groups to %s every %s",
			s.relay.cfg.Upstream, s.relay.cfg.FlushInterval)
	}
	if s.wal != nil {
		s.wal.wg.Add(1)
		go s.walLoop()
		s.logf("unionstreamd: logging accepted envelopes to %s (fsync %s)",
			s.wal.cfg.Dir, s.wal.cfg.Sync)
	}
	s.logf("unionstreamd: serving on %s (%d absorb workers, %d byte frame limit)",
		ln.Addr(), s.cfg.Workers, s.cfg.MaxPayload)

	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil // Shutdown closed the listener.
			default:
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		if ferr := failpoint.Inject(failpoint.ServerAccept); ferr != nil {
			// Chaos hook: the accept path fails after the kernel handed
			// us a socket — drop it and keep serving, as a transient
			// resource error would.
			s.logf("unionstreamd: accept failpoint: %v", ferr)
			conn.Close()
			continue
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.stats.connsAccepted.Add(1)
		s.stats.activeConns.Add(1)
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

// Addr returns the bound listen address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server: it stops accepting, wakes connection
// readers, waits (bounded by ctx) for every in-flight message to be
// absorbed and acked, then stops the worker pool. It is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return nil
	}
	s.shutdown = true
	close(s.quit)
	if s.ln != nil {
		s.ln.Close()
	}
	// Wake every reader blocked between frames; handlers treat a
	// deadline error after quit as a clean goodbye.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	started := s.started
	s.mu.Unlock()
	// Chaos hook: a fault at drain start must not prevent the drain
	// from completing — Shutdown has no failure path before ctx.
	if ferr := failpoint.Inject(failpoint.ServerDrain); ferr != nil {
		s.logf("unionstreamd: drain failpoint: %v", ferr)
	}
	s.logf("unionstreamd: shutting down, draining connections")

	drained := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-drained
	}
	if s.relay != nil {
		// The relay timer stopped when quit closed; with every
		// connection drained (all absorbs acked), one final flush
		// pushes whatever is still dirty upstream — a cleanly-stopped
		// shard leaves nothing behind.
		s.relay.wg.Wait()
		if started {
			s.drainRelay()
		}
	}
	if started {
		close(s.jobs)
		s.workerWG.Wait()
	}
	if w := s.wal; w != nil && w.recovered.Load() {
		// With every absorb drained and acked, one final snapshot
		// captures the groups and prunes the log, so the next boot
		// replays a snapshot instead of the whole history.
		w.wg.Wait()
		if _, serr := s.SnapshotWAL(); serr != nil {
			s.logf("unionstreamd: shutdown wal snapshot: %v", serr)
		}
		w.log.Close()
	}
	s.logf("unionstreamd: shutdown complete (%d sketches absorbed)", s.stats.absorbed.Load())
	return err
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for job := range s.jobs {
		job.ack = s.absorbSketch(job.stream, job.payload)
		close(job.done)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.stats.activeConns.Add(-1)
		s.connWG.Done()
	}()
	for {
		typ, payload, err := wire.ReadFrame(conn, s.cfg.MaxPayload)
		if err != nil {
			switch {
			case err == io.EOF:
				return // site hung up cleanly between frames
			case s.quitting() || isTimeout(err):
				return // shutdown woke us
			case errors.Is(err, wire.ErrVersion):
				// A well-formed frame from a different protocol
				// version: answer with the typed refusal (framed in
				// OUR version — the header layout is shared) so the
				// site surfaces ErrVersionMismatch instead of junk.
				s.stats.rejected.Add(1)
				s.writeAck(conn, wire.Ack{Code: wire.AckVersionMismatch,
					Detail: fmt.Sprintf("server speaks wire version %d", wire.Version)})
				return
			default:
				// Wire-level damage (bad magic, truncation, checksum):
				// the bytes, not the message, were bad — AckBadFrame
				// tells the site this is transient and the same payload
				// may be retried, unlike AckCorrupt, which condemns the
				// payload itself.
				s.stats.rejected.Add(1)
				s.logf("unionstreamd: %s: dropping connection: %v", conn.RemoteAddr(), err)
				s.writeAck(conn, wire.Ack{Code: wire.AckBadFrame, Detail: err.Error()})
				return
			}
		}
		s.stats.framesRead.Add(1)
		s.stats.bytesRead.Add(int64(wire.HeaderSize + len(payload)))

		switch typ {
		case wire.MsgPush, wire.MsgPushNamed:
			var stream string
			envelope := payload
			if typ == wire.MsgPushNamed {
				var perr error
				stream, envelope, perr = wire.DecodePushNamed(payload)
				if perr != nil {
					s.stats.rejected.Add(1)
					if !s.writeAck(conn, wire.Ack{Code: wire.AckCorrupt, Detail: perr.Error()}) {
						return
					}
					continue
				}
			}
			job := &absorbJob{stream: stream, payload: envelope, done: make(chan struct{})}
			select {
			case s.jobs <- job:
				<-job.done
			case <-s.quit:
				s.writeAck(conn, wire.Ack{Code: wire.AckError, Detail: "server shutting down"})
				return
			}
			if job.ack.Code != wire.AckOK {
				s.stats.rejected.Add(1)
			}
			if !s.writeAck(conn, job.ack) {
				return
			}
		case wire.MsgQuery:
			s.serveQuery(conn, payload)
		case wire.MsgQueryExpr:
			s.serveQueryExpr(conn, payload)
		case wire.MsgStats:
			s.serveStats(conn)
		default:
			// MsgAck / MsgQueryResult / MsgQueryExprResult /
			// MsgStatsResult travel server→client only.
			s.stats.rejected.Add(1)
			if !s.writeAck(conn, wire.Ack{Code: wire.AckError,
				Detail: fmt.Sprintf("unexpected client message type %s", typ)}) {
				return
			}
		}
	}
}

func (s *Server) quitting() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *Server) writeAck(conn net.Conn, a wire.Ack) bool {
	if err := wire.WriteFrame(conn, wire.MsgAck, a.Encode()); err != nil {
		s.logf("unionstreamd: %s: writing ack: %v", conn.RemoteAddr(), err)
		return false
	}
	return true
}

// Absorb merges one self-describing sketch envelope into the default
// stream's group table without a network round trip — the in-process
// equivalent of a site push. Embedders and the absorb benchmarks
// (gtbench -bench) use it; the TCP path routes through the same code.
func (s *Server) Absorb(envelope []byte) error {
	return s.AbsorbNamed("", envelope)
}

// AbsorbNamed merges one envelope into the named stream's group, the
// in-process equivalent of a MsgPushNamed.
func (s *Server) AbsorbNamed(stream string, envelope []byte) error {
	if ack := s.absorbSketch(stream, envelope); ack.Code != wire.AckOK {
		return fmt.Errorf("server: absorb refused: %s: %s", ack.Code, ack.Detail)
	}
	return nil
}

// absorbSketch opens a pushed sketch envelope and merges it into its
// (stream, kind, config digest) group, creating the group on first
// contact.
//
// hotpath: called once per pushed envelope (TCP and in-process).
func (s *Server) absorbSketch(stream string, payload []byte) wire.Ack {
	if err := wire.ValidStreamName(stream); err != nil {
		// allocflow:cold a bad stream name refuses the push, it is not streamed
		return wire.Ack{Code: wire.AckCorrupt, Detail: err.Error()}
	}
	sk, err := sketch.Open(payload)
	if err != nil { // allocflow:cold a refused envelope aborts the absorb, it is not streamed
		if errors.Is(err, sketch.ErrUnknownKind) {
			return wire.Ack{Code: wire.AckUnsupported, Detail: err.Error()}
		}
		return wire.Ack{Code: wire.AckCorrupt, Detail: err.Error()}
	}
	info, _ := sketch.Lookup(sk.Kind())
	if s.cfg.RequireKind != "" && info.Name != s.cfg.RequireKind {
		// allocflow:cold a kind-pinned coordinator refuses the push outright
		return wire.Ack{Code: wire.AckKindMismatch,
			Detail: fmt.Sprintf("sketch kind %q, coordinator requires %q", info.Name, s.cfg.RequireKind)}
	}
	if s.cfg.RequireSeed != nil && sk.Seed() != *s.cfg.RequireSeed {
		// allocflow:cold a seed-pinned coordinator refuses the push outright
		return wire.Ack{Code: wire.AckSeedMismatch,
			Detail: fmt.Sprintf("sketch seed %d, coordinator requires %d", sk.Seed(), *s.cfg.RequireSeed)}
	}
	if ferr := failpoint.Inject(failpoint.ServerAbsorb); ferr != nil {
		// Chaos hook: the absorb fails after validation but before the
		// group is touched — the site must see a retryable error and the
		// group state must be exactly as if the push never arrived.
		// allocflow:cold the failing arm exists only in chaos runs
		return wire.Ack{Code: wire.AckError, Detail: ferr.Error()}
	}

	if w := s.wal; w != nil {
		// Log before merge, merge before ack. The envelope is appended
		// and folded inside one seal read-window so a snapshot cannot
		// prune the segment holding a logged-but-unmerged record (see
		// walState.seal); an append failure refuses the push with a
		// transient ack — an acked push the log cannot replay would be
		// a durability lie.
		if err := s.ensureRecovered(); err != nil { // allocflow:cold recovery runs once per process, before the first logged push
			return wire.Ack{Code: wire.AckError, Detail: err.Error()}
		}
		w.seal.RLock()
		defer w.seal.RUnlock()
		if err := w.log.AppendNamed(stream, payload); err != nil {
			w.appendErrors.Add(1)
			w.lastErr.Store(err.Error()) // allocflow:cold a failed append refuses the push; not the streaming path
			return wire.Ack{Code: wire.AckError, Detail: err.Error()}
		}
	}
	return s.foldIntoGroup(stream, sk, info.Name, len(payload))
}

// foldIntoGroup merges one opened sketch into its (stream, kind,
// digest) group, creating the group on first contact. It is the
// shared tail of the absorb path and of WAL replay — a replayed
// record must take exactly the path the original push took, or
// recovery would not be bit-identical.
func (s *Server) foldIntoGroup(stream string, sk sketch.Sketch, kindName string, payloadLen int) wire.Ack {
	key := groupKey{stream: stream, kind: sk.Kind(), digest: sk.Digest()}
	s.mu.Lock()
	g, ok := s.groups[key]
	if !ok {
		// allocflow:amortized a group is allocated once per (stream, kind, digest), then reused
		g = &group{stream: stream, kind: key.kind, name: kindName, seed: sk.Seed(), digest: key.digest}
		s.groups[key] = g
	}
	s.mu.Unlock()

	start := time.Now()
	g.mu.Lock()
	var merr error
	if g.sk == nil {
		g.sk = sk
	} else {
		merr = g.sk.Merge(sk)
	}
	var nudgeRelay bool
	if merr == nil {
		g.absorbed++
		g.bytes += int64(payloadLen)
		if s.relay != nil {
			g.pendingRelay++
			nudgeRelay = g.relayDirty(s.relay)
		}
	}
	g.mu.Unlock()
	if nudgeRelay {
		// A hot group crossed the relay threshold: wake the flush loop
		// without blocking the absorb path (a full channel means a
		// flush is already pending).
		select {
		case s.relay.flushNow <- struct{}{}:
		default:
		}
	}
	if merr != nil { // allocflow:cold a refused merge is the error path, not the streaming path
		// Unreachable while groups are keyed by config digest (equal
		// digest means mergeable), but a future key relaxation must not
		// turn this into a silent drop.
		if errors.Is(merr, sketch.ErrMismatch) {
			return wire.Ack{Code: wire.AckSeedMismatch, Detail: merr.Error()}
		}
		return wire.Ack{Code: wire.AckError, Detail: merr.Error()}
	}
	s.recordMerge(time.Since(start), int64(payloadLen))
	return wire.Ack{Code: wire.AckOK}
}

func (s *Server) serveQuery(conn net.Conn, payload []byte) {
	q, err := wire.DecodeQuery(payload)
	if err != nil {
		s.stats.rejected.Add(1)
		s.writeAck(conn, wire.Ack{Code: wire.AckCorrupt, Detail: err.Error()})
		return
	}
	v, qerr := s.answer(q)
	if qerr != nil {
		s.stats.rejected.Add(1)
		s.writeAck(conn, wire.Ack{Code: wire.AckError, Detail: qerr.Error()})
		return
	}
	s.stats.queries.Add(1)
	if err := wire.WriteFrame(conn, wire.MsgQueryResult, wire.EncodeQueryResult(v)); err != nil {
		s.logf("unionstreamd: %s: writing query result: %v", conn.RemoteAddr(), err)
	}
}

// answer evaluates q against the matching merge group, subject to the
// group kind's capabilities: every kind answers QueryDistinct;
// QuerySum answers NaN for kinds without sum support (matching the
// in-process simulator's convention); predicate queries are refused
// for kinds that cannot evaluate them.
func (s *Server) answer(q wire.Query) (float64, error) {
	pred, err := q.Predicate()
	if err != nil {
		return 0, err
	}
	g, err := s.selectGroup(q)
	if err != nil {
		return 0, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	switch q.Kind {
	case wire.QueryDistinct:
		return g.sk.Estimate(), nil
	case wire.QuerySum:
		if sum, ok := g.sk.(sketch.Summer); ok {
			return sum.EstimateSum(), nil
		}
		return math.NaN(), nil
	case wire.QueryCountWhere:
		if pe, ok := g.sk.(sketch.PredicateEstimator); ok {
			return pe.EstimateCountWhere(pred), nil
		}
		return 0, fmt.Errorf("server: %s queries unsupported by sketch kind %q", q.Kind, g.name)
	case wire.QuerySumWhere:
		if pe, ok := g.sk.(sketch.PredicateEstimator); ok {
			return pe.EstimateSumWhere(pred), nil
		}
		return 0, fmt.Errorf("server: %s queries unsupported by sketch kind %q", q.Kind, g.name)
	default:
		return 0, fmt.Errorf("server: unknown query kind %d", q.Kind)
	}
}

// selectGroup resolves the query's target group: the groups matching
// the query's seed (when HasSeed) and sketch kind (when HasKind),
// which must narrow to exactly one. Ambiguity errors enumerate the
// candidates — their streams, kinds, and digests — so the operator
// can see exactly which filter to add instead of guessing.
func (s *Server) selectGroup(q wire.Query) (*group, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var matched []*group
	for _, g := range s.groups {
		if q.HasSeed && g.seed != q.Seed {
			continue
		}
		if q.HasKind && g.kind != sketch.Kind(q.SketchKind) {
			continue
		}
		matched = append(matched, g)
	}
	switch {
	case len(matched) == 1:
		return matched[0], nil
	case len(s.groups) == 0:
		return nil, errors.New("server: no sketches absorbed yet")
	case len(matched) == 0:
		return nil, fmt.Errorf("server: no group matches the query (seed filter: %v, kind filter: %v); groups held: %s",
			q.HasSeed, q.HasKind, describeGroups(s.groupsLocked()))
	case q.HasSeed && !q.HasKind:
		return nil, fmt.Errorf("server: seed %d matches several groups: %s; name a sketch kind (or query by expression for a specific stream)",
			q.Seed, describeGroups(matched))
	case !q.HasSeed && !q.HasKind:
		return nil, fmt.Errorf("server: %d sketch groups in play: %s; query must name a seed or kind",
			len(s.groups), describeGroups(matched))
	default:
		return nil, fmt.Errorf("server: query matches %d groups: %s; narrow the seed/kind filters",
			len(matched), describeGroups(matched))
	}
}

// groupsLocked returns every group as a slice.
//
// locked: mu
func (s *Server) groupsLocked() []*group {
	out := make([]*group, 0, len(s.groups))
	for _, g := range s.groups {
		out = append(out, g)
	}
	return out
}

// describeGroups renders candidate groups for ambiguity errors, in
// deterministic (stream, kind, digest) order, eliding after a few so
// a 10^5-group coordinator cannot flood an error string.
func describeGroups(gs []*group) string {
	sort.Slice(gs, func(i, j int) bool {
		if gs[i].stream != gs[j].stream {
			return gs[i].stream < gs[j].stream
		}
		if gs[i].kind != gs[j].kind {
			return gs[i].kind < gs[j].kind
		}
		return gs[i].digest < gs[j].digest
	})
	const maxListed = 6
	parts := make([]string, 0, maxListed+1)
	for i, g := range gs {
		if i == maxListed {
			parts = append(parts, fmt.Sprintf("... %d more", len(gs)-maxListed))
			break
		}
		stream := g.stream
		if stream == "" {
			stream = "(default)"
		}
		parts = append(parts, fmt.Sprintf("[stream %q kind %s seed %d digest %016x]", stream, g.name, g.seed, g.digest))
	}
	return strings.Join(parts, ", ")
}

// SnapshotGroup returns the marshaled merged sketch payload for the
// group with the given coordination seed — the exact bytes a site
// would have sent (sans envelope) had it observed the union itself.
// Tests use it to assert that concurrent absorption is bit-identical
// to serial merging; operators can use it to checkpoint a group.
func (s *Server) SnapshotGroup(seed uint64) ([]byte, error) {
	g, err := s.selectGroup(wire.Query{HasSeed: true, Seed: seed})
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sk.MarshalBinary()
}

// GroupSnapshot is one merge group's portable state: its identity
// plus the self-describing envelope of its merged sketch — the exact
// bytes the group relays upstream, migrates to a new owner, or a site
// holding the whole group union would have pushed.
type GroupSnapshot struct {
	Stream   string
	Kind     sketch.Kind
	KindName string
	Digest   uint64
	Seed     uint64
	Envelope []byte
}

// Snapshots returns every group's snapshot, sorted by (stream, kind,
// digest) so two coordinators holding the same groups produce
// comparable slices. Unlike per-group SnapshotGroup lookups it is
// linear in the group count, which is what lets the cluster tests
// compare 10^5 groups between a sharded tier and a single
// coordinator.
func (s *Server) Snapshots() ([]GroupSnapshot, error) {
	s.mu.Lock()
	groups := s.groupsLocked()
	s.mu.Unlock()

	out := make([]GroupSnapshot, 0, len(groups))
	for _, g := range groups {
		g.mu.Lock()
		snap := GroupSnapshot{Stream: g.stream, Kind: g.kind, KindName: g.name, Digest: g.digest, Seed: g.seed}
		var err error
		if g.sk != nil {
			snap.Envelope, err = sketch.Envelope(g.sk)
		}
		g.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("server: snapshotting group %s/%016x: %w", snap.KindName, snap.Digest, err)
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stream != out[j].Stream {
			return out[i].Stream < out[j].Stream
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Digest < out[j].Digest
	})
	return out, nil
}
