// Package server implements unionstreamd's coordinator: the paper's
// referee as a long-running network daemon. Sites connect over TCP,
// push their one-shot sketch messages (framed by internal/wire), and
// the daemon merges them into per-configuration groups it can answer
// union queries from — distinct counts, duplicate-insensitive sums,
// and predicate counts — exactly as the in-process simulator does, but
// across machines.
//
// # Concurrency model
//
// Each accepted connection gets a reader goroutine. Absorb work
// (decode + merge) flows through a bounded worker pool so a burst of
// sites cannot stampede the merge path; each merge group is guarded by
// its own mutex. Because coordinated sketches merge commutatively and
// associatively, the group state after N concurrent absorbs is
// bit-identical to absorbing the same messages serially in any order —
// the server tests assert this byte-for-byte under the race detector.
//
// # Shutdown
//
// Shutdown stops the accept loop, wakes blocked readers, lets every
// in-flight message finish absorbing (and its ack get written), then
// retires the worker pool. cmd/unionstreamd wires this to SIGTERM.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/wire"
)

// OpaqueCoordinator absorbs protocol-defined site messages and answers
// union estimates. distsim.Coordinator satisfies it structurally,
// which is what lets internal/distnet run any simulator protocol over
// this server without the server knowing the message format.
type OpaqueCoordinator interface {
	Absorb(msg []byte) error
	EstimateDistinct() float64
	EstimateSum() float64
}

// Config parameterizes a Server. The zero value listens with default
// limits and accepts sketches of any coordination seed.
type Config struct {
	// Addr is the TCP listen address for ListenAndServe (e.g.
	// ":7600"). Ignored by Serve, which takes a listener.
	Addr string
	// Workers bounds the absorb pool; <= 0 selects GOMAXPROCS.
	Workers int
	// MaxPayload bounds accepted frame payloads in bytes; 0 selects
	// wire.DefaultMaxPayload.
	MaxPayload uint32
	// RequireSeed, when non-nil, rejects pushes whose sketch seed
	// differs — a deployment where the fleet's coordination seed is
	// pinned and an uncoordinated site must hear a typed refusal, not
	// silently form its own group.
	RequireSeed *uint64
	// Opaque, when set, serves MsgOpaque pushes by delegating to this
	// coordinator (absorbs serialized under an internal lock). Queries
	// answer from it when the server holds no sketch groups.
	Opaque OpaqueCoordinator
	// Logf, when set, receives one line per lifecycle event and
	// per-connection error (e.g. log.Printf). Nil disables logging.
	Logf func(format string, args ...any)
}

// group is one mergeable family of sketches: everything pushed with an
// identical EstimatorConfig (seed, capacity, copies, family, raise).
type group struct {
	mu       sync.Mutex // guards: est, absorbed, bytes
	est      *core.Estimator
	absorbed int64
	bytes    int64
}

// absorbJob is one queued push. The reader goroutine that enqueued it
// blocks on done, then writes the ack on its own connection — so acks
// stay ordered per connection while absorbs from different sites run
// in parallel up to the pool bound.
type absorbJob struct {
	payload []byte
	opaque  bool
	ack     wire.Ack
	done    chan struct{}
}

// Server is the coordinator daemon. Create with New, start with
// ListenAndServe or Serve, stop with Shutdown.
type Server struct {
	cfg  Config
	jobs chan *absorbJob
	quit chan struct{}

	workerWG sync.WaitGroup
	connWG   sync.WaitGroup

	mu       sync.Mutex // guards: groups, ln, conns, started, shutdown
	groups   map[core.EstimatorConfig]*group
	ln       net.Listener
	conns    map[net.Conn]struct{}
	started  bool
	shutdown bool

	opaqueMu       sync.Mutex // guards: opaqueAbsorbed, opaqueBytes
	opaqueAbsorbed int64
	opaqueBytes    int64

	stats counters
}

// New returns an unstarted server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxPayload == 0 {
		cfg.MaxPayload = wire.DefaultMaxPayload
	}
	return &Server{
		cfg:    cfg,
		jobs:   make(chan *absorbJob),
		quit:   make(chan struct{}),
		groups: make(map[core.EstimatorConfig]*group),
		conns:  make(map[net.Conn]struct{}),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ListenAndServe listens on cfg.Addr and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown (or a fatal accept
// error). It owns ln and closes it on return.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	if s.started {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: Serve called twice")
	}
	s.started = true
	s.ln = ln
	s.mu.Unlock()

	s.workerWG.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
	s.logf("unionstreamd: serving on %s (%d absorb workers, %d byte frame limit)",
		ln.Addr(), s.cfg.Workers, s.cfg.MaxPayload)

	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil // Shutdown closed the listener.
			default:
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		if ferr := failpoint.Inject(failpoint.ServerAccept); ferr != nil {
			// Chaos hook: the accept path fails after the kernel handed
			// us a socket — drop it and keep serving, as a transient
			// resource error would.
			s.logf("unionstreamd: accept failpoint: %v", ferr)
			conn.Close()
			continue
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.stats.connsAccepted.Add(1)
		s.stats.activeConns.Add(1)
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

// Addr returns the bound listen address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server: it stops accepting, wakes connection
// readers, waits (bounded by ctx) for every in-flight message to be
// absorbed and acked, then stops the worker pool. It is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return nil
	}
	s.shutdown = true
	close(s.quit)
	if s.ln != nil {
		s.ln.Close()
	}
	// Wake every reader blocked between frames; handlers treat a
	// deadline error after quit as a clean goodbye.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	started := s.started
	s.mu.Unlock()
	// Chaos hook: a fault at drain start must not prevent the drain
	// from completing — Shutdown has no failure path before ctx.
	if ferr := failpoint.Inject(failpoint.ServerDrain); ferr != nil {
		s.logf("unionstreamd: drain failpoint: %v", ferr)
	}
	s.logf("unionstreamd: shutting down, draining connections")

	drained := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-drained
	}
	if started {
		close(s.jobs)
		s.workerWG.Wait()
	}
	s.logf("unionstreamd: shutdown complete (%d sketches absorbed)", s.stats.absorbed.Load())
	return err
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for job := range s.jobs {
		if job.opaque {
			job.ack = s.absorbOpaque(job.payload)
		} else {
			job.ack = s.absorbSketch(job.payload)
		}
		close(job.done)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.stats.activeConns.Add(-1)
		s.connWG.Done()
	}()
	for {
		typ, payload, err := wire.ReadFrame(conn, s.cfg.MaxPayload)
		if err != nil {
			switch {
			case err == io.EOF:
				return // site hung up cleanly between frames
			case s.quitting() || isTimeout(err):
				return // shutdown woke us
			case errors.Is(err, wire.ErrVersion):
				// A well-formed frame from a different protocol
				// version: answer with the typed refusal (framed in
				// OUR version — the header layout is shared) so the
				// site surfaces ErrVersionMismatch instead of junk.
				s.stats.rejected.Add(1)
				s.writeAck(conn, wire.Ack{Code: wire.AckVersionMismatch,
					Detail: fmt.Sprintf("server speaks wire version %d", wire.Version)})
				return
			default:
				// Wire-level damage (bad magic, truncation, checksum):
				// the bytes, not the message, were bad — AckBadFrame
				// tells the site this is transient and the same payload
				// may be retried, unlike AckCorrupt, which condemns the
				// payload itself.
				s.stats.rejected.Add(1)
				s.logf("unionstreamd: %s: dropping connection: %v", conn.RemoteAddr(), err)
				s.writeAck(conn, wire.Ack{Code: wire.AckBadFrame, Detail: err.Error()})
				return
			}
		}
		s.stats.framesRead.Add(1)
		s.stats.bytesRead.Add(int64(wire.HeaderSize + len(payload)))

		switch typ {
		case wire.MsgPush, wire.MsgOpaque:
			job := &absorbJob{payload: payload, opaque: typ == wire.MsgOpaque, done: make(chan struct{})}
			select {
			case s.jobs <- job:
				<-job.done
			case <-s.quit:
				s.writeAck(conn, wire.Ack{Code: wire.AckError, Detail: "server shutting down"})
				return
			}
			if job.ack.Code != wire.AckOK {
				s.stats.rejected.Add(1)
			}
			if !s.writeAck(conn, job.ack) {
				return
			}
		case wire.MsgQuery:
			s.serveQuery(conn, payload)
		case wire.MsgStats:
			s.serveStats(conn)
		default:
			// MsgAck / MsgQueryResult / MsgStatsResult travel
			// server→client only.
			s.stats.rejected.Add(1)
			if !s.writeAck(conn, wire.Ack{Code: wire.AckError,
				Detail: fmt.Sprintf("unexpected client message type %s", typ)}) {
				return
			}
		}
	}
}

func (s *Server) quitting() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *Server) writeAck(conn net.Conn, a wire.Ack) bool {
	if err := wire.WriteFrame(conn, wire.MsgAck, a.Encode()); err != nil {
		s.logf("unionstreamd: %s: writing ack: %v", conn.RemoteAddr(), err)
		return false
	}
	return true
}

// absorbSketch decodes a pushed estimator sketch and merges it into
// its configuration's group, creating the group on first contact.
func (s *Server) absorbSketch(payload []byte) wire.Ack {
	var est core.Estimator
	if err := est.UnmarshalBinary(payload); err != nil {
		return wire.Ack{Code: wire.AckCorrupt, Detail: err.Error()}
	}
	cfg := est.Config()
	if s.cfg.RequireSeed != nil && cfg.Seed != *s.cfg.RequireSeed {
		return wire.Ack{Code: wire.AckSeedMismatch,
			Detail: fmt.Sprintf("sketch seed %d, coordinator requires %d", cfg.Seed, *s.cfg.RequireSeed)}
	}
	if ferr := failpoint.Inject(failpoint.ServerAbsorb); ferr != nil {
		// Chaos hook: the absorb fails after validation but before the
		// group is touched — the site must see a retryable error and the
		// group state must be exactly as if the push never arrived.
		return wire.Ack{Code: wire.AckError, Detail: ferr.Error()}
	}

	s.mu.Lock()
	g, ok := s.groups[cfg]
	if !ok {
		g = &group{}
		s.groups[cfg] = g
	}
	s.mu.Unlock()

	start := time.Now()
	g.mu.Lock()
	var err error
	if g.est == nil {
		g.est = &est
	} else {
		err = g.est.Merge(&est)
	}
	if err == nil {
		g.absorbed++
		g.bytes += int64(len(payload))
	}
	g.mu.Unlock()
	if err != nil {
		// Unreachable while groups are keyed by full config, but a
		// future key relaxation must not turn this into a silent drop.
		if errors.Is(err, core.ErrMismatch) {
			return wire.Ack{Code: wire.AckSeedMismatch, Detail: err.Error()}
		}
		return wire.Ack{Code: wire.AckError, Detail: err.Error()}
	}
	s.recordMerge(time.Since(start), int64(len(payload)))
	return wire.Ack{Code: wire.AckOK}
}

func (s *Server) absorbOpaque(payload []byte) wire.Ack {
	if s.cfg.Opaque == nil {
		return wire.Ack{Code: wire.AckUnsupported, Detail: "no opaque coordinator configured"}
	}
	start := time.Now()
	s.opaqueMu.Lock()
	err := s.cfg.Opaque.Absorb(payload)
	if err == nil {
		s.opaqueAbsorbed++
		s.opaqueBytes += int64(len(payload))
	}
	s.opaqueMu.Unlock()
	if err != nil {
		switch {
		case errors.Is(err, core.ErrMismatch):
			return wire.Ack{Code: wire.AckSeedMismatch, Detail: err.Error()}
		case errors.Is(err, core.ErrCorrupt):
			return wire.Ack{Code: wire.AckCorrupt, Detail: err.Error()}
		default:
			return wire.Ack{Code: wire.AckCorrupt, Detail: err.Error()}
		}
	}
	s.recordMerge(time.Since(start), int64(len(payload)))
	return wire.Ack{Code: wire.AckOK}
}

func (s *Server) serveQuery(conn net.Conn, payload []byte) {
	q, err := wire.DecodeQuery(payload)
	if err != nil {
		s.stats.rejected.Add(1)
		s.writeAck(conn, wire.Ack{Code: wire.AckCorrupt, Detail: err.Error()})
		return
	}
	v, qerr := s.answer(q)
	if qerr != nil {
		s.stats.rejected.Add(1)
		s.writeAck(conn, wire.Ack{Code: wire.AckError, Detail: qerr.Error()})
		return
	}
	s.stats.queries.Add(1)
	if err := wire.WriteFrame(conn, wire.MsgQueryResult, wire.EncodeQueryResult(v)); err != nil {
		s.logf("unionstreamd: %s: writing query result: %v", conn.RemoteAddr(), err)
	}
}

// answer evaluates q against the matching merge group, or against the
// opaque coordinator when no sketch groups exist.
func (s *Server) answer(q wire.Query) (float64, error) {
	pred, err := q.Predicate()
	if err != nil {
		return 0, err
	}
	g, err := s.selectGroup(q)
	if err != nil {
		return 0, err
	}
	if g == nil {
		// Opaque mode: the protocol coordinator answers the two
		// estimates every distsim.Coordinator supports.
		s.opaqueMu.Lock()
		defer s.opaqueMu.Unlock()
		switch q.Kind {
		case wire.QueryDistinct:
			return s.cfg.Opaque.EstimateDistinct(), nil
		case wire.QuerySum:
			return s.cfg.Opaque.EstimateSum(), nil
		default:
			return 0, fmt.Errorf("server: %s queries unsupported by the opaque coordinator", q.Kind)
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	switch q.Kind {
	case wire.QueryDistinct:
		return g.est.EstimateDistinct(), nil
	case wire.QuerySum:
		return g.est.EstimateSum(), nil
	case wire.QueryCountWhere:
		return g.est.EstimateCountWhere(pred), nil
	case wire.QuerySumWhere:
		return g.est.EstimateSumWhere(pred), nil
	default:
		return 0, fmt.Errorf("server: unknown query kind %d", q.Kind)
	}
}

// selectGroup resolves the query's target group. A nil group with nil
// error means "answer from the opaque coordinator".
func (s *Server) selectGroup(q wire.Query) (*group, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q.HasSeed {
		var found *group
		for cfg, g := range s.groups {
			if cfg.Seed == q.Seed {
				if found != nil {
					return nil, fmt.Errorf("server: seed %d matches several groups (differing capacity/copies); pin a full config", q.Seed)
				}
				found = g
			}
		}
		if found == nil {
			return nil, fmt.Errorf("server: no sketches absorbed for seed %d", q.Seed)
		}
		return found, nil
	}
	switch len(s.groups) {
	case 0:
		if s.cfg.Opaque != nil {
			return nil, nil
		}
		return nil, errors.New("server: no sketches absorbed yet")
	case 1:
		for _, g := range s.groups {
			return g, nil
		}
	}
	return nil, fmt.Errorf("server: %d distinct sketch configurations in play; query must name a seed", len(s.groups))
}

// SnapshotGroup returns the marshaled merged sketch for the group with
// the given coordination seed — the exact bytes a site would have sent
// had it observed the union itself. Tests use it to assert that
// concurrent absorption is bit-identical to serial merging; operators
// can use it to checkpoint a group.
func (s *Server) SnapshotGroup(seed uint64) ([]byte, error) {
	g, err := s.selectGroup(wire.Query{HasSeed: true, Seed: seed})
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.est.MarshalBinary()
}
