package server_test

// Regression suite for the durability layer's worst interleaving:
// snapshot rounds (timer-driven, explicit, and one injected mid-drain)
// racing concurrent site pushes and Shutdown. The snapshotting flag in
// walState serializes rounds, absorb holds only the seal read-lock
// across append+merge, and Shutdown's final snapshot must capture
// every acked envelope — so the whole dance has to finish without
// deadlock and leave the rebooted coordinator bit-identical to a
// direct-absorb control. Run under -race (ci.sh always does).

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/server"
)

// TestWALRacesShutdownDrain drives concurrent site pushes and a
// SnapshotWAL hammer against a durable coordinator whose snapshot
// timer actually fires, then shuts it down while the ServerDrain
// failpoint injects one more snapshot in the middle of the drain —
// the exact "snapshot fires mid-shutdown" schedule the snapshotting
// flag exists for.
func TestWALRacesShutdownDrain(t *testing.T) {
	envs := relayEnvelopes(t, 24)
	dir := t.TempDir()
	srv := server.New(server.Config{WAL: &server.WALConfig{
		Dir:           dir,
		SegmentBytes:  256,
		SnapshotEvery: 2 * time.Millisecond, // the timer races for real
	}})
	addr, done := startCrashable(t, srv)
	ref := controlSnapshots(t, envs)

	// Fire a snapshot deterministically in the middle of the drain.
	var drainSnaps atomic.Int32
	failpoint.Enable(failpoint.ServerDrain, func() error {
		drainSnaps.Add(1)
		srv.SnapshotWAL() // a concurrent round; skipping is legal, wedging is not
		return nil
	})
	defer failpoint.Disable(failpoint.ServerDrain)

	// A snapshot hammer: explicit rounds racing the timer's.
	hammerDone := make(chan struct{})
	var hammerWG sync.WaitGroup
	hammerWG.Add(1)
	go func() {
		defer hammerWG.Done()
		for {
			select {
			case <-hammerDone:
				return
			default:
				srv.SnapshotWAL()
			}
		}
	}()

	// Concurrent site pushes while snapshots cut underneath them.
	var pushWG sync.WaitGroup
	for w := 0; w < 3; w++ {
		pushWG.Add(1)
		go func(w int) {
			defer pushWG.Done()
			cl := testClient(addr)
			for i := w; i < len(envs); i += 3 {
				if _, err := cl.Push(envs[i]); err != nil {
					t.Errorf("push %d: %v", i, err)
				}
			}
		}(w)
	}
	pushWG.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with snapshots racing the drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve loop: %v", err)
	}
	close(hammerDone)
	hammerWG.Wait()
	if drainSnaps.Load() == 0 {
		t.Fatal("ServerDrain failpoint never fired: the mid-drain snapshot this test exists for did not happen")
	}

	// Every acked push survived the snapshot storm: the reboot lands
	// bit-identical to a coordinator that absorbed each push directly.
	boot := rebootRecovered(t, dir)
	snaps, err := boot.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	assertSnapshotsEqual(t, "rebooted after snapshot storm", snaps, ref)
	boot.Abort()
}
