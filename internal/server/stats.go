package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/sketch"
	"repro/internal/wire"
)

// counters are the server's hot-path metrics, all atomics so the data
// path never takes a stats lock. Merge latency keeps a total and a
// CAS-maintained max rather than a histogram — enough for the /statsz
// use case without per-merge allocation.
type counters struct {
	connsAccepted atomic.Int64
	activeConns   atomic.Int64
	framesRead    atomic.Int64
	bytesRead     atomic.Int64
	absorbed      atomic.Int64
	sketchBytes   atomic.Int64
	queries       atomic.Int64
	exprQueries   atomic.Int64
	rejected      atomic.Int64
	merges        atomic.Int64
	mergeNanos    atomic.Int64
	mergeNanosMax atomic.Int64
}

func (s *Server) recordMerge(d time.Duration, payloadBytes int64) {
	s.stats.absorbed.Add(1)
	s.stats.sketchBytes.Add(payloadBytes)
	s.stats.merges.Add(1)
	ns := d.Nanoseconds()
	s.stats.mergeNanos.Add(ns)
	for {
		old := s.stats.mergeNanosMax.Load()
		if ns <= old || s.stats.mergeNanosMax.CompareAndSwap(old, ns) {
			return
		}
	}
}

// GroupStats describes one merge group in a Stats snapshot.
type GroupStats struct {
	// Stream is the logical stream the group belongs to ("" for the
	// default stream).
	Stream string `json:"stream"`
	// Kind is the registered sketch-kind name ("gt", "kmv", ...).
	Kind string `json:"kind"`
	// Seed is the group's coordination seed (0 for seedless kinds).
	Seed uint64 `json:"seed"`
	// Digest is the group's config digest in hex; sketches merge into
	// the same group exactly when kind and digest both match.
	Digest string `json:"digest"`
	// SketchesAbsorbed counts site messages merged into this group.
	SketchesAbsorbed int64 `json:"sketches_absorbed"`
	// SketchBytes totals their payload bytes — the paper's
	// communication cost, as received.
	SketchBytes int64 `json:"sketch_bytes"`
	// DistinctEstimate is the group's current union F0 estimate. It is
	// zero when the kind cannot answer (e.g. a windowed sketch whose
	// retained horizon no longer covers the stream start).
	DistinctEstimate float64 `json:"distinct_estimate"`
	// Params holds kind-specific dimensions and accuracy targets, for
	// kinds that describe themselves (sketch.Describer).
	Params map[string]any `json:"params,omitempty"`
	// RelayPushes counts acked upstream pushes of this group's merged
	// envelope (relay mode only); PendingRelay counts absorbs not yet
	// covered by an acked push.
	RelayPushes  int64 `json:"relay_pushes,omitempty"`
	PendingRelay int64 `json:"pending_relay,omitempty"`
	// OwnerShard and Owned report the group's consistent-hash-ring
	// assignment when the coordinator knows its cluster position
	// (Config.Cluster): the owning shard index, and whether that is
	// this coordinator. A false Owned flags a misrouted group —
	// harmless to correctness (merges are idempotent) but a sign the
	// pushing fleet disagrees about the ring.
	OwnerShard *int  `json:"owner_shard,omitempty"`
	Owned      *bool `json:"owned,omitempty"`
}

// RelayStats is the /statsz section a relay coordinator adds: the
// upstream identity and the flush loop's counters.
type RelayStats struct {
	Upstream string `json:"upstream"`
	// Flushes counts flush rounds started; FlushSkips rounds skipped
	// because one was already running.
	Flushes    int64 `json:"flushes"`
	FlushSkips int64 `json:"flush_skips"`
	// GroupsPushed counts acked per-group upstream pushes across all
	// rounds; BytesPushed their envelope bytes.
	GroupsPushed int64 `json:"groups_pushed"`
	BytesPushed  int64 `json:"bytes_pushed"`
	// PushErrors counts failed rounds and failed per-group pushes;
	// LastError is the most recent failure's message.
	PushErrors int64  `json:"push_errors"`
	LastError  string `json:"last_error,omitempty"`
	// DrainFlushed reports whether the shutdown drain flush ran, and
	// DrainGroups how many groups it delivered.
	DrainFlushed bool  `json:"drain_flushed"`
	DrainGroups  int64 `json:"drain_groups"`
}

// StreamStats aggregates one logical stream's groups for the /statsz
// streams block — the per-stream rollup an operator scans before
// drilling into groups.
type StreamStats struct {
	// Stream is the logical stream name ("" for the default stream).
	Stream string `json:"stream"`
	// Groups counts the stream's merge groups (one per kind/digest).
	Groups int64 `json:"groups"`
	// SketchesAbsorbed and SketchBytes total the stream's absorbed site
	// messages and their payload bytes.
	SketchesAbsorbed int64 `json:"sketches_absorbed"`
	SketchBytes      int64 `json:"sketch_bytes"`
}

// ClusterStats is the /statsz section a ring-aware coordinator adds.
type ClusterStats struct {
	Shard    int    `json:"shard"`
	Shards   int    `json:"shards"`
	RingSeed uint64 `json:"ring_seed"`
	// GroupsOwned and GroupsForeign partition the coordinator's groups
	// by ring ownership (only when Config.Cluster.Owner is set).
	GroupsOwned   int64 `json:"groups_owned"`
	GroupsForeign int64 `json:"groups_foreign"`
}

// Stats is the introspection snapshot served at /statsz and over
// MsgStats frames.
type Stats struct {
	ConnsAccepted    int64         `json:"conns_accepted"`
	ActiveConns      int64         `json:"active_conns"`
	FramesRead       int64         `json:"frames_read"`
	BytesRead        int64         `json:"bytes_read"`
	SketchesAbsorbed int64         `json:"sketches_absorbed"`
	SketchBytes      int64         `json:"sketch_bytes"`
	QueriesServed    int64         `json:"queries_served"`
	ExprQueries      int64         `json:"expr_queries"`
	Rejected         int64         `json:"rejected"`
	Merges           int64         `json:"merges"`
	MergeNanosTotal  int64         `json:"merge_nanos_total"`
	MergeNanosMax    int64         `json:"merge_nanos_max"`
	MergeNanosMean   float64       `json:"merge_nanos_mean"`
	Relay            *RelayStats   `json:"relay,omitempty"`
	Cluster          *ClusterStats `json:"cluster,omitempty"`
	WAL              *WALStats     `json:"wal,omitempty"`
	Streams          []StreamStats `json:"streams"`
	Groups           []GroupStats  `json:"groups"`
}

// Stats returns a consistent snapshot of the server's counters and
// per-group state. Groups are ordered by stream, kind, seed, then
// digest for stable output; the streams block aggregates them per
// stream in the same order.
func (s *Server) Stats() Stats {
	st := Stats{
		ConnsAccepted:    s.stats.connsAccepted.Load(),
		ActiveConns:      s.stats.activeConns.Load(),
		FramesRead:       s.stats.framesRead.Load(),
		BytesRead:        s.stats.bytesRead.Load(),
		SketchesAbsorbed: s.stats.absorbed.Load(),
		SketchBytes:      s.stats.sketchBytes.Load(),
		QueriesServed:    s.stats.queries.Load(),
		ExprQueries:      s.stats.exprQueries.Load(),
		Rejected:         s.stats.rejected.Load(),
		Merges:           s.stats.merges.Load(),
		MergeNanosTotal:  s.stats.mergeNanos.Load(),
		MergeNanosMax:    s.stats.mergeNanosMax.Load(),
	}
	if st.Merges > 0 {
		st.MergeNanosMean = float64(st.MergeNanosTotal) / float64(st.Merges)
	}
	if r := s.relay; r != nil {
		rs := &RelayStats{
			Upstream:     r.cfg.Upstream,
			Flushes:      r.flushes.Load(),
			FlushSkips:   r.flushSkips.Load(),
			GroupsPushed: r.groupsSent.Load(),
			BytesPushed:  r.bytesSent.Load(),
			PushErrors:   r.pushErrors.Load(),
			DrainFlushed: r.drainFlush.Load(),
			DrainGroups:  r.drainGroups.Load(),
		}
		if v, ok := r.lastErr.Load().(string); ok {
			rs.LastError = v
		}
		st.Relay = rs
	}
	if c := s.cfg.Cluster; c != nil {
		st.Cluster = &ClusterStats{Shard: c.Shard, Shards: c.Shards, RingSeed: c.RingSeed}
	}
	st.WAL = s.walStats()

	s.mu.Lock()
	groups := s.groupsLocked()
	s.mu.Unlock()
	for _, g := range groups {
		gs := GroupStats{
			Stream: g.stream,
			Kind:   g.name,
			Seed:   g.seed,
			Digest: fmt.Sprintf("%016x", g.digest),
		}
		g.mu.Lock()
		gs.SketchesAbsorbed = g.absorbed
		gs.SketchBytes = g.bytes
		gs.RelayPushes = g.relayPushes
		gs.PendingRelay = g.pendingRelay
		if g.sk != nil {
			if v := g.sk.Estimate(); !math.IsNaN(v) && !math.IsInf(v, 0) {
				gs.DistinctEstimate = v
			}
			if d, ok := g.sk.(sketch.Describer); ok {
				gs.Params = d.Describe()
			}
		}
		g.mu.Unlock()
		if c := s.cfg.Cluster; c != nil && c.Owner != nil {
			owner := c.Owner(g.stream, uint8(g.kind), g.digest)
			owned := owner == c.Shard
			gs.OwnerShard, gs.Owned = &owner, &owned
			if owned {
				st.Cluster.GroupsOwned++
			} else {
				st.Cluster.GroupsForeign++
			}
		}
		st.Groups = append(st.Groups, gs)
	}
	sort.Slice(st.Groups, func(i, j int) bool {
		a, b := st.Groups[i], st.Groups[j]
		if a.Stream != b.Stream {
			return a.Stream < b.Stream
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.Digest < b.Digest
	})
	// The streams rollup follows the sorted groups, so it inherits
	// their order with one entry per distinct stream.
	for _, gs := range st.Groups {
		if n := len(st.Streams); n == 0 || st.Streams[n-1].Stream != gs.Stream {
			st.Streams = append(st.Streams, StreamStats{Stream: gs.Stream})
		}
		ss := &st.Streams[len(st.Streams)-1]
		ss.Groups++
		ss.SketchesAbsorbed += gs.SketchesAbsorbed
		ss.SketchBytes += gs.SketchBytes
	}
	return st
}

// serveStats answers a MsgStats frame with the JSON snapshot.
func (s *Server) serveStats(conn net.Conn) {
	body, err := json.Marshal(s.Stats())
	if err != nil {
		s.writeAck(conn, wire.Ack{Code: wire.AckError, Detail: err.Error()})
		return
	}
	s.stats.queries.Add(1)
	if werr := wire.WriteFrame(conn, wire.MsgStatsResult, body); werr != nil {
		s.logf("unionstreamd: %s: writing stats: %v", conn.RemoteAddr(), werr)
	}
}

// StatszHandler returns an http.Handler serving the same snapshot as
// JSON — mount it at /statsz next to the TCP listener.
func (s *Server) StatszHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
