package server

import (
	"encoding/json"
	"math"
	"net"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// counters are the server's hot-path metrics, all atomics so the data
// path never takes a stats lock. Merge latency keeps a total and a
// CAS-maintained max rather than a histogram — enough for the /statsz
// use case without per-merge allocation.
type counters struct {
	connsAccepted atomic.Int64
	activeConns   atomic.Int64
	framesRead    atomic.Int64
	bytesRead     atomic.Int64
	absorbed      atomic.Int64
	sketchBytes   atomic.Int64
	queries       atomic.Int64
	rejected      atomic.Int64
	merges        atomic.Int64
	mergeNanos    atomic.Int64
	mergeNanosMax atomic.Int64
}

func (s *Server) recordMerge(d time.Duration, payloadBytes int64) {
	s.stats.absorbed.Add(1)
	s.stats.sketchBytes.Add(payloadBytes)
	s.stats.merges.Add(1)
	ns := d.Nanoseconds()
	s.stats.mergeNanos.Add(ns)
	for {
		old := s.stats.mergeNanosMax.Load()
		if ns <= old || s.stats.mergeNanosMax.CompareAndSwap(old, ns) {
			return
		}
	}
}

// GroupStats describes one merge group in a Stats snapshot.
type GroupStats struct {
	// Seed is the group's coordination seed.
	Seed uint64 `json:"seed"`
	// Capacity and Copies are the sketch dimensions.
	Capacity int `json:"capacity"`
	Copies   int `json:"copies"`
	// Family names the hash family.
	Family string `json:"family"`
	// Epsilon and Delta are the accuracy targets the dimensions imply
	// (per CapacityForEpsilon / CopiesForDelta).
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	// SketchesAbsorbed counts site messages merged into this group.
	SketchesAbsorbed int64 `json:"sketches_absorbed"`
	// SketchBytes totals their payload bytes — the paper's
	// communication cost, as received.
	SketchBytes int64 `json:"sketch_bytes"`
	// DistinctEstimate is the group's current union F0 estimate.
	DistinctEstimate float64 `json:"distinct_estimate"`
}

// Stats is the introspection snapshot served at /statsz and over
// MsgStats frames.
type Stats struct {
	ConnsAccepted    int64        `json:"conns_accepted"`
	ActiveConns      int64        `json:"active_conns"`
	FramesRead       int64        `json:"frames_read"`
	BytesRead        int64        `json:"bytes_read"`
	SketchesAbsorbed int64        `json:"sketches_absorbed"`
	SketchBytes      int64        `json:"sketch_bytes"`
	QueriesServed    int64        `json:"queries_served"`
	Rejected         int64        `json:"rejected"`
	Merges           int64        `json:"merges"`
	MergeNanosTotal  int64        `json:"merge_nanos_total"`
	MergeNanosMax    int64        `json:"merge_nanos_max"`
	MergeNanosMean   float64      `json:"merge_nanos_mean"`
	OpaqueAbsorbed   int64        `json:"opaque_absorbed,omitempty"`
	OpaqueBytes      int64        `json:"opaque_bytes,omitempty"`
	Groups           []GroupStats `json:"groups"`
}

// deltaForCopies inverts core.CopiesForDelta: the failure probability
// a median over r copies targets (r = 1 + 2·log2(1/δ) rounded up).
func deltaForCopies(r int) float64 {
	if r <= 1 {
		return 0.5
	}
	return math.Pow(0.5, float64((r-1)/2))
}

// Stats returns a consistent snapshot of the server's counters and
// per-group state. Groups are ordered by seed for stable output.
func (s *Server) Stats() Stats {
	st := Stats{
		ConnsAccepted:    s.stats.connsAccepted.Load(),
		ActiveConns:      s.stats.activeConns.Load(),
		FramesRead:       s.stats.framesRead.Load(),
		BytesRead:        s.stats.bytesRead.Load(),
		SketchesAbsorbed: s.stats.absorbed.Load(),
		SketchBytes:      s.stats.sketchBytes.Load(),
		QueriesServed:    s.stats.queries.Load(),
		Rejected:         s.stats.rejected.Load(),
		Merges:           s.stats.merges.Load(),
		MergeNanosTotal:  s.stats.mergeNanos.Load(),
		MergeNanosMax:    s.stats.mergeNanosMax.Load(),
	}
	if st.Merges > 0 {
		st.MergeNanosMean = float64(st.MergeNanosTotal) / float64(st.Merges)
	}

	s.opaqueMu.Lock()
	st.OpaqueAbsorbed = s.opaqueAbsorbed
	st.OpaqueBytes = s.opaqueBytes
	s.opaqueMu.Unlock()

	s.mu.Lock()
	groups := make(map[core.EstimatorConfig]*group, len(s.groups))
	for cfg, g := range s.groups {
		groups[cfg] = g
	}
	s.mu.Unlock()
	for cfg, g := range groups {
		g.mu.Lock()
		gs := GroupStats{
			Seed:             cfg.Seed,
			Capacity:         cfg.Capacity,
			Copies:           cfg.Copies,
			Family:           cfg.Family.String(),
			Epsilon:          core.EpsilonForCapacity(cfg.Capacity),
			Delta:            deltaForCopies(cfg.Copies),
			SketchesAbsorbed: g.absorbed,
			SketchBytes:      g.bytes,
		}
		if g.est != nil {
			gs.DistinctEstimate = g.est.EstimateDistinct()
		}
		g.mu.Unlock()
		st.Groups = append(st.Groups, gs)
	}
	sort.Slice(st.Groups, func(i, j int) bool {
		a, b := st.Groups[i], st.Groups[j]
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.Capacity < b.Capacity
	})
	return st
}

// serveStats answers a MsgStats frame with the JSON snapshot.
func (s *Server) serveStats(conn net.Conn) {
	body, err := json.Marshal(s.Stats())
	if err != nil {
		s.writeAck(conn, wire.Ack{Code: wire.AckError, Detail: err.Error()})
		return
	}
	s.stats.queries.Add(1)
	if werr := wire.WriteFrame(conn, wire.MsgStatsResult, body); werr != nil {
		s.logf("unionstreamd: %s: writing stats: %v", conn.RemoteAddr(), werr)
	}
}

// StatszHandler returns an http.Handler serving the same snapshot as
// JSON — mount it at /statsz next to the TCP listener.
func (s *Server) StatszHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
