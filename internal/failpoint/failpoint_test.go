package failpoint

import (
	"errors"
	"sync"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func TestDisabledIsNoOpAndAllocFree(t *testing.T) {
	Reset()
	if err := Inject(ClientDial); err != nil {
		t.Fatalf("unarmed site injected %v", err)
	}
	if Armed() {
		t.Fatal("Armed() true with no sites enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := Inject(ServerAbsorb); err != nil {
			t.Errorf("unexpected injection: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("disabled Inject allocates %.1f objects/op; must be 0", allocs)
	}
}

func TestEnableDisableAndHits(t *testing.T) {
	Reset()
	Enable(ClientDial, Error(errBoom))
	defer Reset()
	if !Armed() {
		t.Fatal("Armed() false after Enable")
	}
	for i := 0; i < 3; i++ {
		if err := Inject(ClientDial); !errors.Is(err, errBoom) {
			t.Fatalf("hit %d: err = %v, want errBoom", i, err)
		}
	}
	if got := Hits(ClientDial); got != 3 {
		t.Errorf("Hits = %d, want 3", got)
	}
	// Other sites stay unarmed.
	if err := Inject(ServerAccept); err != nil {
		t.Errorf("unrelated site injected %v", err)
	}
	if got := Hits(ServerAccept); got != 0 {
		t.Errorf("unarmed site Hits = %d", got)
	}
	Disable(ClientDial)
	if err := Inject(ClientDial); err != nil {
		t.Errorf("disabled site injected %v", err)
	}
	if Armed() {
		t.Error("Armed() true after Disable of only site")
	}
	Disable(ClientDial) // idempotent
	if Armed() {
		t.Error("double Disable corrupted the armed count")
	}
}

func TestTimesHookRecovers(t *testing.T) {
	Reset()
	Enable(WireEncode, Times(2, errBoom))
	defer Reset()
	for i := 0; i < 2; i++ {
		if err := Inject(WireEncode); !errors.Is(err, errBoom) {
			t.Fatalf("hit %d: err = %v, want errBoom", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := Inject(WireEncode); err != nil {
			t.Fatalf("post-recovery hit %d: err = %v", i, err)
		}
	}
	if got := Hits(WireEncode); got != 5 {
		t.Errorf("Hits = %d, want 5", got)
	}
}

func TestSleepHookDelays(t *testing.T) {
	Reset()
	Enable(ServerDrain, Sleep(20*time.Millisecond))
	defer Reset()
	start := time.Now()
	if err := Inject(ServerDrain); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("Sleep hook returned after %v, want >= 20ms", elapsed)
	}
}

// TestConcurrentInjectIsRaceFree exists for the -race run: many
// goroutines hitting a site while another enables/disables it must not
// race or lose the armed count.
func TestConcurrentInjectIsRaceFree(t *testing.T) {
	Reset()
	defer Reset()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = Inject(ClientRead)
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		Enable(ClientRead, Error(errBoom))
		Disable(ClientRead)
	}
	close(stop)
	wg.Wait()
	if Armed() {
		t.Error("armed count nonzero after balanced enable/disable")
	}
}
