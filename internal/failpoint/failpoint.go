// Package failpoint is a tiny, dependency-free fault-injection
// registry: named sites threaded through the networked referee's
// production code (internal/wire, internal/server, internal/client)
// that do nothing — one atomic load, zero allocations — unless a test
// arms them with a hook.
//
// The paper's model assumes each site delivers exactly one sketch
// message to the referee, reliably. The chaos suites exercise what a
// real deployment must instead survive — failed dials, interrupted
// writes, corrupted frames, absorb-time errors, slow drains — and they
// need those failures to strike deterministically at a named point,
// not whenever the scheduler happens to misbehave. A failpoint is that
// named point:
//
//	// production code
//	if err := failpoint.Inject(failpoint.ClientDial); err != nil {
//		return err
//	}
//
//	// test
//	failpoint.Enable(failpoint.ClientDial, failpoint.Times(2, errFlaky))
//	defer failpoint.Disable(failpoint.ClientDial)
//
// Sites are identified by the constants below so tests cannot drift
// from the code they target. The registry is process-global (the
// production code it is threaded through is, too); tests that arm
// sites must disarm them, and must not run in t.Parallel with other
// failpoint users of the same site.
package failpoint

import (
	"sync"
	"sync/atomic"
	"time"
)

// The injection sites threaded through the networked referee. The
// convention is "<package>/<operation>".
const (
	// ServerAccept fires in the coordinator's accept loop, after a
	// connection is accepted and before it is handed to a reader
	// goroutine; an error closes the connection unserved.
	ServerAccept = "server/accept"
	// ServerAbsorb fires in the per-group absorb path, after the
	// sketch decodes and before any group state is touched; an error
	// fails the absorb (the group must be left untouched).
	ServerAbsorb = "server/absorb"
	// ServerDrain fires at the start of Shutdown's connection drain;
	// hooks typically Sleep to widen the drain window. Its error is
	// ignored — a drain cannot be refused.
	ServerDrain = "server/drain"
	// ServerRelayFlush fires at the start of each relay flush cycle,
	// before any group is snapshotted; an error skips the whole cycle
	// (the groups stay dirty and the next cycle retries them).
	ServerRelayFlush = "server/relay-flush"
	// ServerRelayPush fires before each per-group upstream push in a
	// relay flush; an error fails that group's push (the group stays
	// dirty — at-least-once delivery, made safe by idempotent merges).
	ServerRelayPush = "server/relay-push"
	// ClusterMigrate fires before each group re-push during ring
	// migration; an error fails that group's move (the caller retries
	// — duplicate re-pushes are idempotent).
	ClusterMigrate = "cluster/migrate"
	// WALAppend fires in wal.(*Log).Append before the record frame is
	// written; an error fails the append (the absorb is refused with a
	// transient ack and no group or log state changes).
	WALAppend = "wal/append"
	// WALFsync fires before each WAL fsync; an error fails the append
	// after the bytes were written — the record may or may not survive
	// a crash, which idempotent replay makes safe either way.
	WALFsync = "wal/fsync"
	// WALRotate fires before a full segment is rotated; an error skips
	// the rotation (appends continue into the oversized segment and the
	// next append retries).
	WALRotate = "wal/rotate"
	// WALSnapshot fires at the start of wal.(*Log).Snapshot, before the
	// temp file is created; an error skips the snapshot round (segments
	// are kept and the next round retries).
	WALSnapshot = "wal/snapshot"
	// WALReplay fires once before the snapshot and once before each
	// segment is replayed at boot; an error aborts recovery (the
	// coordinator refuses to serve rather than serve partial state).
	WALReplay = "wal/replay"
	// ClientDial fires before each dial attempt; an error counts as a
	// transient dial failure (retried with backoff).
	ClientDial = "client/dial"
	// ClientWrite fires before each request frame write.
	ClientWrite = "client/write"
	// ClientRead fires before each response frame read.
	ClientRead = "client/read"
	// WireEncode fires at the top of wire.WriteFrame.
	WireEncode = "wire/encode"
	// WireDecode fires at the top of wire.ReadFrame.
	WireDecode = "wire/decode"
)

// A Hook decides what an armed site does on each hit: return an error
// to inject a failure, nil to let the call proceed (possibly after a
// side effect such as sleeping).
type Hook func() error

// site is one armed injection point.
type site struct {
	hook Hook
	hits atomic.Int64
}

// registry is the process-global site table. armed counts enabled
// sites so the disabled fast path is a single atomic load.
type registry struct {
	armed atomic.Int32
	mu    sync.Mutex // guards: sites
	sites map[string]*site
}

var reg = registry{sites: make(map[string]*site)}

// Inject is the call production code places at a site. With no hook
// armed anywhere it is a no-op: one atomic load, no allocation.
func Inject(name string) error {
	if reg.armed.Load() == 0 {
		return nil
	}
	// allocflow:cold the slow path is armed only in chaos runs
	return inject(name)
}

// inject is the slow path: look up and run the site's hook.
func inject(name string) error {
	reg.mu.Lock()
	s := reg.sites[name]
	reg.mu.Unlock()
	if s == nil {
		return nil
	}
	s.hits.Add(1)
	return s.hook()
}

// Enable arms a site with a hook, replacing any previous hook (and
// resetting the site's hit count).
func Enable(name string, h Hook) {
	if h == nil {
		panic("failpoint: Enable with nil hook")
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, ok := reg.sites[name]; !ok {
		reg.armed.Add(1)
	}
	reg.sites[name] = &site{hook: h}
}

// Disable disarms a site. Disabling an unarmed site is a no-op.
func Disable(name string) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, ok := reg.sites[name]; ok {
		delete(reg.sites, name)
		reg.armed.Add(-1)
	}
}

// Reset disarms every site.
func Reset() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	reg.sites = make(map[string]*site)
	reg.armed.Store(0)
}

// Hits returns how many times the named site fired since it was
// enabled (0 if unarmed).
func Hits(name string) int64 {
	reg.mu.Lock()
	s := reg.sites[name]
	reg.mu.Unlock()
	if s == nil {
		return 0
	}
	return s.hits.Load()
}

// Armed reports whether any site is currently enabled.
func Armed() bool { return reg.armed.Load() > 0 }

// Error returns a hook that always injects err.
func Error(err error) Hook {
	return func() error { return err }
}

// Times returns a hook that injects err on the first n hits and then
// lets every later hit proceed — the canonical "transient failure,
// then recovery" schedule.
func Times(n int, err error) Hook {
	var hits atomic.Int64
	return func() error {
		if hits.Add(1) <= int64(n) {
			return err
		}
		return nil
	}
}

// Sleep returns a hook that delays the call by d and proceeds.
func Sleep(d time.Duration) Hook {
	return func() error {
		time.Sleep(d)
		return nil
	}
}
