// Package exact provides exact (linear-space) computation of the
// aggregates the sketches estimate: distinct counts, predicate counts,
// and duplicate-insensitive sums over the union of streams. It is the
// ground truth for every experiment and also serves as the "ship the
// whole distinct set" communication baseline (E6): its SizeBytes is
// what a party would have to send for the coordinator to compute the
// union exactly.
package exact

import (
	"fmt"

	"repro/internal/sketch"
)

// Distinct counts distinct labels exactly, optionally carrying each
// label's fixed value for SumDistinct. The zero value is not usable;
// construct with NewDistinct.
type Distinct struct {
	values map[uint64]uint64
	sum    uint64
}

// NewDistinct returns an empty exact counter.
func NewDistinct() *Distinct {
	return &Distinct{values: make(map[uint64]uint64)}
}

// Process observes one occurrence of label (value 1).
func (d *Distinct) Process(label uint64) {
	d.ProcessWeighted(label, 1)
}

// ProcessWeighted observes label with its fixed value; repeats are
// ignored (first value wins, matching the sketches' contract).
func (d *Distinct) ProcessWeighted(label, value uint64) {
	if _, ok := d.values[label]; ok {
		return
	}
	d.values[label] = value
	d.sum += value
}

// Count returns the exact number of distinct labels.
func (d *Distinct) Count() int { return len(d.values) }

// Sum returns the exact sum of values over distinct labels.
func (d *Distinct) Sum() uint64 { return d.sum }

// CountWhere returns the exact number of distinct labels satisfying
// pred.
func (d *Distinct) CountWhere(pred func(label uint64) bool) int {
	n := 0
	for label := range d.values {
		if pred(label) {
			n++
		}
	}
	return n
}

// SumWhere returns the exact sum of values over distinct labels
// satisfying pred.
func (d *Distinct) SumWhere(pred func(label uint64) bool) uint64 {
	var s uint64
	for label, v := range d.values {
		if pred(label) {
			s += v
		}
	}
	return s
}

// Merge folds other into d (set union; first value wins on overlap,
// and the fixed-value contract makes overlapping values equal anyway).
// other must be another *Distinct; the error return exists for the
// sketch.Sketch contract — same-kind merges cannot fail, since exact
// sets have no configuration to disagree on.
func (d *Distinct) Merge(o sketch.Sketch) error {
	other, ok := o.(*Distinct)
	if !ok {
		// allocflow:cold a mismatched merge is refused, not streamed
		return fmt.Errorf("%w: cannot merge %T into *exact.Distinct", sketch.ErrMismatch, o)
	}
	if other == nil {
		return nil
	}
	for label, v := range other.values {
		d.ProcessWeighted(label, v)
	}
	return nil
}

// Contains reports whether label has been observed.
func (d *Distinct) Contains(label uint64) bool {
	_, ok := d.values[label]
	return ok
}

// Value returns the stored value for label and whether it exists.
func (d *Distinct) Value(label uint64) (uint64, bool) {
	v, ok := d.values[label]
	return v, ok
}

// SizeBytes is the minimal message size for exact union computation:
// 8 bytes per distinct label (values excluded, matching the
// distinct-count communication baseline in E6).
func (d *Distinct) SizeBytes() int { return 8 * len(d.values) }

// Reset clears the counter.
func (d *Distinct) Reset() {
	clear(d.values)
	d.sum = 0
}

// String implements fmt.Stringer.
func (d *Distinct) String() string {
	return fmt.Sprintf("exact.Distinct{count: %d, sum: %d}", len(d.values), d.sum)
}
