package exact

import (
	"testing"
	"testing/quick"
)

func TestDistinctBasic(t *testing.T) {
	d := NewDistinct()
	if d.Count() != 0 || d.Sum() != 0 {
		t.Fatal("fresh counter not empty")
	}
	d.Process(1)
	d.Process(2)
	d.Process(1)
	if d.Count() != 2 {
		t.Errorf("Count = %d, want 2", d.Count())
	}
	if d.Sum() != 2 {
		t.Errorf("Sum = %d, want 2", d.Sum())
	}
	if !d.Contains(1) || d.Contains(3) {
		t.Error("Contains wrong")
	}
}

func TestDistinctWeighted(t *testing.T) {
	d := NewDistinct()
	d.ProcessWeighted(1, 10)
	d.ProcessWeighted(1, 99) // repeat ignored, first value wins
	d.ProcessWeighted(2, 5)
	if d.Sum() != 15 {
		t.Errorf("Sum = %d, want 15", d.Sum())
	}
	if v, ok := d.Value(1); !ok || v != 10 {
		t.Errorf("Value(1) = %d,%v", v, ok)
	}
	if _, ok := d.Value(3); ok {
		t.Error("Value(3) exists")
	}
}

func TestDistinctWhere(t *testing.T) {
	d := NewDistinct()
	for x := uint64(0); x < 100; x++ {
		d.ProcessWeighted(x, 2)
	}
	if got := d.CountWhere(func(x uint64) bool { return x < 30 }); got != 30 {
		t.Errorf("CountWhere = %d, want 30", got)
	}
	if got := d.SumWhere(func(x uint64) bool { return x < 30 }); got != 60 {
		t.Errorf("SumWhere = %d, want 60", got)
	}
}

func TestDistinctMerge(t *testing.T) {
	a, b := NewDistinct(), NewDistinct()
	for x := uint64(0); x < 60; x++ {
		a.Process(x)
	}
	for x := uint64(40); x < 100; x++ {
		b.Process(x)
	}
	a.Merge(b)
	a.Merge(nil)
	if a.Count() != 100 {
		t.Errorf("merged Count = %d, want 100", a.Count())
	}
}

func TestDistinctMergeQuick(t *testing.T) {
	f := func(xs, ys []uint64) bool {
		a, b, both := NewDistinct(), NewDistinct(), NewDistinct()
		for _, x := range xs {
			a.Process(x)
			both.Process(x)
		}
		for _, y := range ys {
			b.Process(y)
			both.Process(y)
		}
		a.Merge(b)
		return a.Count() == both.Count() && a.Sum() == both.Sum()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistinctSizeReset(t *testing.T) {
	d := NewDistinct()
	for x := uint64(0); x < 10; x++ {
		d.Process(x)
	}
	if d.SizeBytes() != 80 {
		t.Errorf("SizeBytes = %d, want 80", d.SizeBytes())
	}
	d.Reset()
	if d.Count() != 0 || d.Sum() != 0 || d.SizeBytes() != 0 {
		t.Error("Reset incomplete")
	}
	d.Process(1)
	if d.Count() != 1 {
		t.Error("counter unusable after Reset")
	}
}

func TestDistinctString(t *testing.T) {
	d := NewDistinct()
	d.ProcessWeighted(1, 3)
	if got := d.String(); got != "exact.Distinct{count: 1, sum: 3}" {
		t.Errorf("String = %q", got)
	}
}
