package exact

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/sketch"
)

// This file registers the exact distinct set as sketch.KindExact, so
// the "ship the whole set" communication baseline can travel the same
// envelopes and merge groups as the real sketches (E6's comparison
// over the network needs exactly that).

// ErrCorrupt is returned when decoding a malformed encoding.
var ErrCorrupt = fmt.Errorf("exact: corrupt encoding: %w", sketch.ErrCorrupt)

func init() {
	sketch.Register(sketch.KindInfo{
		Kind:    sketch.KindExact,
		Name:    "exact",
		Version: 1,
		// eps and seed are ignored: the exact set is parameter-free.
		New:    func(float64, uint64) sketch.Sketch { return NewDistinct() },
		Decode: Decode,
	})
}

// Estimate implements sketch.Sketch: the exact distinct count.
func (d *Distinct) Estimate() float64 { return float64(len(d.values)) }

// EstimateSum implements sketch.Summer: the exact sum.
func (d *Distinct) EstimateSum() float64 { return float64(d.sum) }

// EstimateCountWhere implements sketch.PredicateEstimator.
func (d *Distinct) EstimateCountWhere(pred func(label uint64) bool) float64 {
	return float64(d.CountWhere(pred))
}

// EstimateSumWhere implements sketch.PredicateEstimator.
func (d *Distinct) EstimateSumWhere(pred func(label uint64) bool) float64 {
	return float64(d.SumWhere(pred))
}

// Kind implements sketch.Sketch.
func (d *Distinct) Kind() sketch.Kind { return sketch.KindExact }

// Seed implements sketch.Sketch: exact sets are seedless.
func (d *Distinct) Seed() uint64 { return 0 }

// Digest implements sketch.Sketch: every exact set is
// merge-compatible with every other, so the digest is constant.
func (d *Distinct) Digest() uint64 { return sketch.ConfigDigest(sketch.KindExact) }

// exactMagic opens every encoding; the trailing byte is the version.
var exactMagic = [3]byte{'E', 'X', '1'}

// MarshalBinary implements sketch.Sketch. The encoding is canonical:
// magic, uvarint count, then (label, value) uint64 pairs in strictly
// ascending label order — equal sets always encode to equal bytes.
func (d *Distinct) MarshalBinary() ([]byte, error) {
	labels := make([]uint64, 0, len(d.values))
	for label := range d.values {
		labels = append(labels, label)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	b := make([]byte, 0, len(exactMagic)+binary.MaxVarintLen64+16*len(labels))
	b = append(b, exactMagic[:]...)
	b = binary.AppendUvarint(b, uint64(len(labels)))
	for _, label := range labels {
		b = binary.LittleEndian.AppendUint64(b, label)
		b = binary.LittleEndian.AppendUint64(b, d.values[label])
	}
	return b, nil
}

// UnmarshalBinary decodes MarshalBinary's output into d, replacing
// its state. It rejects unsorted or duplicated labels — the encoding
// is canonical, so anything else is damage.
func (d *Distinct) UnmarshalBinary(data []byte) error {
	if len(data) < len(exactMagic) || [3]byte(data[:3]) != exactMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	data = data[len(exactMagic):]
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return fmt.Errorf("%w: bad count", ErrCorrupt)
	}
	data = data[k:]
	if uint64(len(data)) != 16*n {
		return fmt.Errorf("%w: %d payload bytes for %d entries", ErrCorrupt, len(data), n)
	}
	values := make(map[uint64]uint64, n)
	var sum uint64
	prev, first := uint64(0), true
	for i := uint64(0); i < n; i++ {
		label := binary.LittleEndian.Uint64(data[16*i:])
		value := binary.LittleEndian.Uint64(data[16*i+8:])
		if !first && label <= prev {
			return fmt.Errorf("%w: labels not strictly ascending", ErrCorrupt)
		}
		prev, first = label, false
		values[label] = value
		sum += value
	}
	d.values = values
	d.sum = sum
	return nil
}

// Decode parses a MarshalBinary encoding into a fresh set.
func Decode(payload []byte) (sketch.Sketch, error) {
	d := NewDistinct()
	if err := d.UnmarshalBinary(payload); err != nil {
		return nil, err
	}
	return d, nil
}
