package distsim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/stream"
)

// unionTruth computes the exact distinct count and sum of the union.
func unionTruth(sources []stream.Source) (distinct int, sum uint64) {
	d := exact.NewDistinct()
	for _, s := range sources {
		stream.Feed(s, func(it stream.Item) { d.ProcessWeighted(it.Label, it.Value) })
	}
	return d.Count(), d.Sum()
}

func overlapSources(t int, seed uint64) []stream.Source {
	return stream.OverlapConfig{
		Sites: t, PerSite: 5000, CoreSize: 2000, PrivateSize: 2000,
		Overlap: 0.5, Seed: seed,
	}.Build()
}

func TestGTProtocolAccuracy(t *testing.T) {
	srcs := overlapSources(8, 1)
	truth, _ := unionTruth(srcs)
	res, err := Run(GT{Config: core.EstimatorConfig{Capacity: 1024, Copies: 9, Seed: 7}}, srcs, false)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(res.DistinctEstimate-float64(truth)) / float64(truth)
	if rel > 0.12 {
		t.Errorf("estimate %.0f vs truth %d: rel %.3f", res.DistinctEstimate, truth, rel)
	}
	if res.Stats.Sites != 8 || res.Stats.Messages != 8 {
		t.Errorf("stats: %+v", res.Stats)
	}
	if res.Stats.ItemsProcessed != 8*5000 {
		t.Errorf("items processed = %d", res.Stats.ItemsProcessed)
	}
	if res.Stats.BytesSent == 0 || res.Stats.MaxSiteBytes == 0 {
		t.Error("no bytes accounted")
	}
}

func TestConcurrentMatchesSerial(t *testing.T) {
	// Merge commutativity ⇒ the coordinator's answer must not depend
	// on message arrival order. Run both modes repeatedly.
	srcs := overlapSources(16, 3)
	p := GT{Config: core.EstimatorConfig{Capacity: 256, Copies: 5, Seed: 9}}
	serial, err := Run(p, srcs, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		conc, err := Run(p, srcs, true)
		if err != nil {
			t.Fatal(err)
		}
		if conc.DistinctEstimate != serial.DistinctEstimate {
			t.Fatalf("run %d: concurrent %.0f != serial %.0f", i, conc.DistinctEstimate, serial.DistinctEstimate)
		}
		if conc.SumEstimate != serial.SumEstimate {
			t.Fatalf("run %d: sum estimates differ", i)
		}
	}
}

func TestUncoordinatedOvercounts(t *testing.T) {
	// With 50% overlap across 8 sites, summing per-site estimates
	// must exceed the union truth substantially, while GT stays close.
	srcs := overlapSources(8, 5)
	truth, _ := unionTruth(srcs)
	cfg := core.EstimatorConfig{Capacity: 1024, Copies: 5, Seed: 11}

	gt, err := Run(GT{Config: cfg}, srcs, false)
	if err != nil {
		t.Fatal(err)
	}
	un, err := Run(Uncoordinated{Config: cfg}, srcs, false)
	if err != nil {
		t.Fatal(err)
	}
	gtRel := math.Abs(gt.DistinctEstimate-float64(truth)) / float64(truth)
	unRel := math.Abs(un.DistinctEstimate-float64(truth)) / float64(truth)
	if gtRel > 0.12 {
		t.Errorf("GT rel err %.3f too high", gtRel)
	}
	if unRel < 0.3 {
		t.Errorf("uncoordinated rel err %.3f suspiciously low; expected heavy overcount", unRel)
	}
	if un.DistinctEstimate <= gt.DistinctEstimate {
		t.Error("uncoordinated did not overcount relative to GT")
	}
}

func TestExactProtocol(t *testing.T) {
	srcs := overlapSources(4, 7)
	truth, sumTruth := unionTruth(srcs)
	res, err := Run(Exact{}, srcs, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.DistinctEstimate != float64(truth) {
		t.Errorf("exact distinct %.0f != %d", res.DistinctEstimate, truth)
	}
	if res.SumEstimate != float64(sumTruth) {
		t.Errorf("exact sum %.0f != %d", res.SumEstimate, sumTruth)
	}
}

func TestGTCommunicationFarBelowExact(t *testing.T) {
	srcs := overlapSources(8, 9)
	gt, err := Run(GT{Config: core.EstimatorConfig{Capacity: 256, Copies: 5, Seed: 3}}, srcs, false)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Run(Exact{}, srcs, false)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Stats.BytesSent*4 > ex.Stats.BytesSent {
		t.Errorf("GT bytes %d not well below exact bytes %d", gt.Stats.BytesSent, ex.Stats.BytesSent)
	}
}

func TestBaselineProtocols(t *testing.T) {
	srcs := overlapSources(6, 11)
	truth, _ := unionTruth(srcs)
	cases := []struct {
		p   Protocol
		tol float64
	}{
		{NewFM(512, 21), 0.25},
		{NewKMV(1024, 21), 0.15},
		{NewBJKST(1024, 21), 0.15},
		{NewLogLog(1024, 21), 0.15},
		{NewAMS(15, 21), 7.0}, // constant-factor only
	}
	for _, c := range cases {
		res, err := Run(c.p, srcs, false)
		if err != nil {
			t.Fatalf("%s: %v", c.p.Name(), err)
		}
		rel := math.Abs(res.DistinctEstimate-float64(truth)) / float64(truth)
		if rel > c.tol {
			t.Errorf("%s: rel err %.3f > %.2f (est %.0f, truth %d)",
				c.p.Name(), rel, c.tol, res.DistinctEstimate, truth)
		}
		if !math.IsNaN(res.SumEstimate) {
			t.Errorf("%s: expected NaN sum estimate", c.p.Name())
		}
		if res.Stats.BytesSent == 0 {
			t.Errorf("%s: no communication accounted", c.p.Name())
		}
	}
}

func TestBaselineConcurrentMatchesSerial(t *testing.T) {
	srcs := overlapSources(8, 13)
	for _, p := range []Protocol{NewFM(128, 5), NewKMV(256, 5), NewBJKST(256, 5), NewLogLog(256, 5), NewAMS(7, 5)} {
		serial, err := Run(p, srcs, false)
		if err != nil {
			t.Fatal(err)
		}
		conc, err := Run(p, srcs, true)
		if err != nil {
			t.Fatal(err)
		}
		if serial.DistinctEstimate != conc.DistinctEstimate {
			t.Errorf("%s: concurrent %.0f != serial %.0f", p.Name(), conc.DistinctEstimate, serial.DistinctEstimate)
		}
	}
}

func TestRunNoSources(t *testing.T) {
	if _, err := Run(Exact{}, nil, false); err == nil {
		t.Error("Run with no sources succeeded")
	}
}

func TestSingleSiteMatchesLocal(t *testing.T) {
	// One site, t=1: the distributed answer must equal running the
	// estimator locally.
	src := stream.NewUniform(5000, 20000, 3)
	cfg := core.EstimatorConfig{Capacity: 512, Copies: 5, Seed: 9}
	res, err := Run(GT{Config: cfg}, []stream.Source{src}, false)
	if err != nil {
		t.Fatal(err)
	}
	local := core.NewEstimator(cfg)
	stream.Feed(src, func(it stream.Item) { local.ProcessWeighted(it.Label, it.Value) })
	if res.DistinctEstimate != local.EstimateDistinct() {
		t.Errorf("distributed %.0f != local %.0f", res.DistinctEstimate, local.EstimateDistinct())
	}
}

func TestGTSumAcrossSites(t *testing.T) {
	// Valued items duplicated across sites: the union sum must count
	// each label's value once.
	base := stream.NewWithValues(stream.NewUniform(3000, 10000, 5), func(l uint64) uint64 { return l%9 + 1 })
	items := stream.Collect(base)
	// Every site sees the same stream — worst-case duplication.
	srcs := []stream.Source{
		stream.FromSlice(items), stream.FromSlice(items), stream.FromSlice(items),
	}
	truth, sumTruth := unionTruth(srcs)
	res, err := Run(GT{Config: core.EstimatorConfig{Capacity: 1024, Copies: 9, Seed: 13}}, srcs, false)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.DistinctEstimate-float64(truth)) / float64(truth); rel > 0.12 {
		t.Errorf("distinct rel %.3f", rel)
	}
	if rel := math.Abs(res.SumEstimate-float64(sumTruth)) / float64(sumTruth); rel > 0.12 {
		t.Errorf("sum rel %.3f", rel)
	}
}

func TestProtocolNames(t *testing.T) {
	names := map[string]Protocol{
		"gt-coordinated":    GT{},
		"uncoordinated-sum": Uncoordinated{},
		"exact-dedup":       Exact{},
		"fm-pcsa":           NewFM(16, 1),
		"ams":               NewAMS(3, 1),
		"kmv":               NewKMV(16, 1),
		"bjkst":             NewBJKST(16, 1),
		"hll":               NewLogLog(16, 1),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}

func TestCoordinatorRejectsGarbage(t *testing.T) {
	for _, p := range []Protocol{
		GT{Config: core.EstimatorConfig{Capacity: 8, Copies: 3, Seed: 1}},
		NewFM(16, 1), NewKMV(16, 1), NewBJKST(16, 1), NewLogLog(16, 1), NewAMS(3, 1),
	} {
		c := p.NewCoordinator()
		if err := c.Absorb([]byte("garbage message")); err == nil {
			t.Errorf("%s: coordinator accepted garbage", p.Name())
		}
	}
}
