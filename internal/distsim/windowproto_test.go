package distsim

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/hashing"
	"repro/internal/stream"
	"repro/internal/window"
)

// windowSources builds t timestamped site streams (timestamp in
// Item.Value) over a shared timeline, and returns the exact distinct
// count of the union since start.
func windowSources(t int, perSite int, seed uint64, start uint64) ([]stream.Source, int) {
	srcs := make([]stream.Source, t)
	truth := exact.NewDistinct()
	for site := 0; site < t; site++ {
		r := hashing.NewXoshiro256(hashing.Mix64(seed + uint64(site)))
		items := make([]stream.Item, perSite)
		for ts := 0; ts < perSite; ts++ {
			label := r.Uint64n(uint64(perSite) / 2)
			items[ts] = stream.Item{Label: label, Value: uint64(ts)}
			if uint64(ts) >= start {
				truth.Process(label)
			}
		}
		srcs[site] = stream.FromSlice(items)
	}
	return srcs, truth.Count()
}

func TestWindowProtocolAccuracy(t *testing.T) {
	const perSite = 20000
	const start = 15000
	srcs, truth := windowSources(4, perSite, 3, start)
	p := WindowGT{
		Config:     window.Config{Capacity: 2048, Seed: 7, MaxLevel: 20},
		QueryStart: start,
	}
	res, err := Run(p, srcs, false)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(res.DistinctEstimate-float64(truth)) / float64(truth)
	if rel > 0.12 {
		t.Errorf("windowed union est %.0f vs %d (rel %.3f)", res.DistinctEstimate, truth, rel)
	}
	if !math.IsNaN(res.SumEstimate) {
		t.Error("window protocol should not report sums")
	}
	if res.Stats.BytesSent == 0 {
		t.Error("no communication accounted")
	}
}

func TestWindowProtocolConcurrentMatchesSerial(t *testing.T) {
	srcs, _ := windowSources(8, 5000, 9, 4000)
	p := WindowGT{
		Config:     window.Config{Capacity: 512, Seed: 5, MaxLevel: 16},
		QueryStart: 4000,
	}
	serial, err := Run(p, srcs, false)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := Run(p, srcs, true)
	if err != nil {
		t.Fatal(err)
	}
	if serial.DistinctEstimate != conc.DistinctEstimate {
		t.Errorf("concurrent %.0f != serial %.0f", conc.DistinctEstimate, serial.DistinctEstimate)
	}
}

func TestWindowProtocolRicherQueries(t *testing.T) {
	srcs, _ := windowSources(3, 10000, 11, 0)
	p := WindowGT{Config: window.Config{Capacity: 1024, Seed: 13, MaxLevel: 18}}
	coord := p.NewCoordinator().(*WindowCoordinator)
	for i, src := range srcs {
		site := p.NewSite(i)
		stream.Feed(src, site.Process)
		msg, err := site.Message()
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.Absorb(msg); err != nil {
			t.Fatal(err)
		}
	}
	if coord.LastTimestamp() != 9999 {
		t.Errorf("LastTimestamp = %d", coord.LastTimestamp())
	}
	// Distinct-since must be monotone decreasing in start.
	prev := math.Inf(1)
	for _, start := range []uint64{0, 5000, 9000, 9990} {
		v, err := coord.DistinctSince(start)
		if err != nil {
			t.Fatalf("start %d: %v", start, err)
		}
		if v > prev {
			t.Errorf("DistinctSince not monotone: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestWindowProtocolSiteErrorPropagates(t *testing.T) {
	// Out-of-order timestamps at a site must fail the run, not
	// silently corrupt the estimate.
	bad := stream.FromSlice([]stream.Item{
		{Label: 1, Value: 10},
		{Label: 2, Value: 5}, // goes back in time
	})
	p := WindowGT{Config: window.Config{Capacity: 64, Seed: 1, MaxLevel: 8}}
	if _, err := Run(p, []stream.Source{bad}, false); err == nil {
		t.Error("out-of-order site stream did not fail the run")
	}
}

func TestWindowProtocolEmptyCoordinator(t *testing.T) {
	c := WindowGT{}.NewCoordinator().(*WindowCoordinator)
	if v, err := c.DistinctSince(0); err != nil || v != 0 {
		t.Errorf("empty coordinator: %v, %v", v, err)
	}
	if c.LastTimestamp() != 0 {
		t.Error("empty coordinator has a timestamp")
	}
	if err := c.Absorb([]byte("garbage")); err == nil {
		t.Error("garbage absorbed")
	}
}

func TestWindowProtocolUncoveredReportsMinusOne(t *testing.T) {
	// Tiny capacity, huge history: the generic-interface estimate for
	// an uncoverable window is the documented -1 sentinel.
	srcs, _ := windowSources(1, 50000, 17, 0)
	p := WindowGT{
		Config:     window.Config{Capacity: 4, Seed: 3, MaxLevel: 2},
		QueryStart: 0,
	}
	res, err := Run(p, srcs, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.DistinctEstimate != -1 {
		t.Errorf("uncovered window estimate = %v, want -1", res.DistinctEstimate)
	}
}
