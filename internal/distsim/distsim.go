// Package distsim simulates the paper's distributed-streams model:
// t parties ("sites") each observe their own stream using small
// workspace and communicate exactly once — after their entire stream —
// by sending one message to a coordinator (the "referee"), which must
// then estimate aggregate functions over the set union of all streams.
// This mirrors the network-monitoring set-up the paper cites: one
// monitor per link, sketches collected afterwards.
//
// The simulator runs sites as goroutines, transports messages over a
// channel, and accounts every byte sent, so experiments can report
// both estimation error and communication cost. Because all the
// sketches in this repository merge commutatively and associatively,
// the coordinator's result is independent of message arrival order —
// a property the tests verify by comparing concurrent and serial runs.
package distsim

import (
	"fmt"
	"sync"

	"repro/internal/stream"
)

// SiteSketch is the per-site state of a protocol: it observes the
// site's stream one item at a time and, at end of stream, produces the
// single message the site sends to the coordinator.
type SiteSketch interface {
	Process(it stream.Item)
	// Message encodes the site's end-of-stream communication.
	Message() ([]byte, error)
}

// Coordinator is the referee-side state: it absorbs site messages (in
// any order) and answers aggregate queries over the union.
type Coordinator interface {
	Absorb(msg []byte) error
	// EstimateDistinct returns the estimated number of distinct labels
	// in the union of all absorbed streams.
	EstimateDistinct() float64
	// EstimateSum returns the estimated sum of values over distinct
	// labels of the union, or NaN if the protocol does not support
	// value sums.
	EstimateSum() float64
}

// Protocol is one complete distributed estimation scheme.
type Protocol interface {
	// Name identifies the protocol in experiment tables.
	Name() string
	// NewSite returns the sketch site i runs. Implementations derive
	// any per-site state from the protocol's shared configuration so
	// that sites are coordinated (or deliberately not, for the
	// uncoordinated baseline).
	NewSite(site int) SiteSketch
	// NewCoordinator returns an empty referee state.
	NewCoordinator() Coordinator
}

// Stats records the measurable costs of one protocol run.
type Stats struct {
	Sites          int
	ItemsProcessed int64
	Messages       int
	BytesSent      int64 // total communication, all sites
	MaxSiteBytes   int   // largest single site message
}

// Result is the outcome of one distributed run.
type Result struct {
	DistinctEstimate float64
	SumEstimate      float64
	Stats            Stats
}

// Run executes the one-shot protocol over the given per-site sources.
// When concurrent is true, sites process their streams in parallel
// goroutines; the coordinator absorbs messages in arrival order.
func Run(p Protocol, sources []stream.Source, concurrent bool) (*Result, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("distsim: no sources")
	}
	type siteMsg struct {
		site  int
		data  []byte
		items int64
		err   error
	}

	runSite := func(i int, src stream.Source) siteMsg {
		sk := p.NewSite(i)
		var items int64
		stream.Feed(src, func(it stream.Item) {
			sk.Process(it)
			items++
		})
		data, err := sk.Message()
		return siteMsg{site: i, data: data, items: items, err: err}
	}

	msgs := make(chan siteMsg, len(sources))
	if concurrent {
		var wg sync.WaitGroup
		for i, src := range sources {
			wg.Add(1)
			go func(i int, src stream.Source) {
				defer wg.Done()
				msgs <- runSite(i, src)
			}(i, src)
		}
		wg.Wait()
	} else {
		for i, src := range sources {
			msgs <- runSite(i, src)
		}
	}
	close(msgs)

	coord := p.NewCoordinator()
	res := &Result{Stats: Stats{Sites: len(sources)}}
	acct := NewByteAccountant()
	for m := range msgs {
		if m.err != nil {
			return nil, fmt.Errorf("distsim: site %d: %w", m.site, m.err)
		}
		if err := coord.Absorb(m.data); err != nil {
			return nil, fmt.Errorf("distsim: coordinator absorbing site %d: %w", m.site, err)
		}
		res.Stats.ItemsProcessed += m.items
		acct.Record(m.site, len(m.data))
	}
	acct.FillStats(&res.Stats)
	res.DistinctEstimate = coord.EstimateDistinct()
	res.SumEstimate = coord.EstimateSum()
	return res, nil
}
