package distsim

import (
	"fmt"
	"math"

	"repro/internal/stream"
	"repro/internal/window"
)

// WindowGT is the sliding-window variant of the distributed protocol
// (the SPAA 2002 model): each site maintains a window.Sketch over its
// timestamped stream, sends it once at end of stream, and the
// coordinator answers distinct-count queries over any covered window
// of the union.
//
// Site streams encode timestamps in the Item.Value field (the
// one-shot simulator is agnostic to what values mean; the window
// protocol interprets them as non-decreasing timestamps).
type WindowGT struct {
	Config window.Config
	// QueryStart is the window start the coordinator reports through
	// the generic Result (EstimateDistinct = distinct since
	// QueryStart). Richer queries are available by driving the
	// coordinator type directly.
	QueryStart uint64
}

// Name implements Protocol.
func (w WindowGT) Name() string { return "gt-window" }

// NewSite implements Protocol.
func (w WindowGT) NewSite(int) SiteSketch {
	return &windowSite{sk: window.New(w.Config)}
}

// NewCoordinator implements Protocol.
func (w WindowGT) NewCoordinator() Coordinator {
	return &WindowCoordinator{queryStart: w.QueryStart}
}

type windowSite struct {
	sk  *window.Sketch
	err error
}

func (s *windowSite) Process(it stream.Item) {
	if s.err != nil {
		return
	}
	// Item.Value carries the timestamp in the window model.
	s.err = s.sk.Process(it.Label, it.Value)
}

func (s *windowSite) Message() ([]byte, error) {
	if s.err != nil {
		return nil, fmt.Errorf("gt-window site: %w", s.err)
	}
	return s.sk.MarshalBinary()
}

// WindowCoordinator is the referee state for WindowGT. Beyond the
// generic Coordinator interface it exposes DistinctSince for arbitrary
// window starts.
type WindowCoordinator struct {
	queryStart uint64
	acc        *window.Sketch
}

// Absorb implements Coordinator.
func (c *WindowCoordinator) Absorb(msg []byte) error {
	sk, err := window.Decode(msg)
	if err != nil {
		return err
	}
	if c.acc == nil {
		c.acc = sk
		return nil
	}
	return c.acc.Merge(sk)
}

// EstimateDistinct implements Coordinator: the distinct count of the
// union since the configured QueryStart. An uncovered window returns
// -1 (the generic interface has no error channel; use DistinctSince
// for errors).
func (c *WindowCoordinator) EstimateDistinct() float64 {
	v, err := c.DistinctSince(c.queryStart)
	if err != nil {
		return -1
	}
	return v
}

// EstimateSum implements Coordinator; the window protocol estimates
// distinct counts only.
func (c *WindowCoordinator) EstimateSum() float64 { return math.NaN() }

// DistinctSince estimates the distinct labels of the union with
// timestamp ≥ start.
func (c *WindowCoordinator) DistinctSince(start uint64) (float64, error) {
	if c.acc == nil {
		return 0, nil
	}
	return c.acc.EstimateDistinctSince(start)
}

// LastTimestamp returns the latest timestamp across absorbed sites.
func (c *WindowCoordinator) LastTimestamp() uint64 {
	if c.acc == nil {
		return 0
	}
	return c.acc.LastTimestamp()
}
