package distsim

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/hashing"
	"repro/internal/sketch"
	"repro/internal/sketch/ams"
	"repro/internal/sketch/bjkst"
	"repro/internal/sketch/fm"
	"repro/internal/sketch/kmv"
	"repro/internal/sketch/ll"
	"repro/internal/stream"
)

// kindSite runs any registered sketch kind as a site: it observes the
// site's stream and serializes the sketch into a self-describing
// envelope as the end-of-stream message — the same bytes the
// networked path (internal/client → internal/server) carries.
type kindSite struct {
	sk sketch.Sketch
	// w is non-nil when sk supports weighted processing; the interface
	// assertion is done once at construction, not per item.
	w sketch.Weighted
}

func newKindSite(sk sketch.Sketch) *kindSite {
	w, _ := sk.(sketch.Weighted)
	return &kindSite{sk: sk, w: w}
}

// Process implements SiteSketch.
//
// hotpath: called once per stream item.
func (s *kindSite) Process(it stream.Item) {
	if s.w != nil {
		s.w.ProcessWeighted(it.Label, it.Value)
		return
	}
	s.sk.Process(it.Label)
}

// Message implements SiteSketch: the sketch's registry envelope.
func (s *kindSite) Message() ([]byte, error) { return sketch.Envelope(s.sk) }

// kindCoord is the referee for envelope messages of any kind: it
// opens each message through the registry and merges. A corrupt
// envelope, an unregistered kind, or a configuration mismatch all
// surface as absorb errors.
type kindCoord struct {
	acc sketch.Sketch
}

func (c *kindCoord) Absorb(msg []byte) error {
	sk, err := sketch.Open(msg)
	if err != nil {
		return err
	}
	if c.acc == nil {
		c.acc = sk
		return nil
	}
	return c.acc.Merge(sk)
}

func (c *kindCoord) EstimateDistinct() float64 {
	if c.acc == nil {
		return 0
	}
	return c.acc.Estimate()
}

// EstimateSum implements Coordinator: NaN for kinds that cannot
// answer duplicate-insensitive sums.
func (c *kindCoord) EstimateSum() float64 {
	if c.acc == nil {
		return 0
	}
	if sum, ok := c.acc.(sketch.Summer); ok {
		return sum.EstimateSum()
	}
	return math.NaN()
}

// kindProtocol adapts a sketch-kind constructor into a Protocol using
// kindSite and kindCoord.
type kindProtocol struct {
	name string
	mk   func(site int) sketch.Sketch
}

// Name implements Protocol.
func (p *kindProtocol) Name() string { return p.name }

// NewSite implements Protocol.
func (p *kindProtocol) NewSite(site int) SiteSketch { return newKindSite(p.mk(site)) }

// NewCoordinator implements Protocol.
func (p *kindProtocol) NewCoordinator() Coordinator { return &kindCoord{} }

// GT is the paper's protocol: every site runs a coordinated
// core.Estimator (shared master seed), sends its serialized sketch,
// and the coordinator merges copy-by-copy.
type GT struct {
	Config core.EstimatorConfig
}

// Name implements Protocol.
func (g GT) Name() string { return "gt-coordinated" }

// NewSite implements Protocol. Every site uses the identical
// configuration — the coordination requirement.
func (g GT) NewSite(int) SiteSketch { return newKindSite(core.NewEstimator(g.Config)) }

// NewCoordinator implements Protocol.
func (g GT) NewCoordinator() Coordinator { return &kindCoord{} }

// Uncoordinated is the strawman E3 contrasts with GT: each site runs
// the same sampler but with an *independent* seed, so sketches cannot
// be merged; each site sends only its local estimate and the
// coordinator adds them up. On overlapping streams the sum overcounts
// by exactly the duplication factor — the failure mode coordinated
// sampling exists to fix.
type Uncoordinated struct {
	Config core.EstimatorConfig
}

// Name implements Protocol.
func (u Uncoordinated) Name() string { return "uncoordinated-sum" }

// NewSite implements Protocol: site i derives its own private seed.
func (u Uncoordinated) NewSite(site int) SiteSketch {
	cfg := u.Config
	cfg.Seed = hashing.Mix64(cfg.Seed + 0x1000*uint64(site) + 1)
	return &uncoordSite{est: core.NewEstimator(cfg)}
}

// NewCoordinator implements Protocol.
func (u Uncoordinated) NewCoordinator() Coordinator { return &sumCoord{} }

type uncoordSite struct {
	est *core.Estimator
}

func (s *uncoordSite) Process(it stream.Item) { s.est.ProcessWeighted(it.Label, it.Value) }
func (s *uncoordSite) Message() ([]byte, error) {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], math.Float64bits(s.est.EstimateDistinct()))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(s.est.EstimateSum()))
	return b[:], nil
}

type sumCoord struct {
	distinct, sum float64
}

func (c *sumCoord) Absorb(msg []byte) error {
	if len(msg) != 16 {
		return fmt.Errorf("uncoordinated: message length %d, want 16", len(msg))
	}
	c.distinct += math.Float64frombits(binary.LittleEndian.Uint64(msg[:8]))
	c.sum += math.Float64frombits(binary.LittleEndian.Uint64(msg[8:]))
	return nil
}

func (c *sumCoord) EstimateDistinct() float64 { return c.distinct }
func (c *sumCoord) EstimateSum() float64      { return c.sum }

// Exact is the communication baseline: each site ships its entire
// distinct label/value set and the coordinator unions exactly.
// Accuracy is perfect; E6 measures what that costs in bytes.
type Exact struct{}

// Name implements Protocol.
func (Exact) Name() string { return "exact-dedup" }

// NewSite implements Protocol.
func (Exact) NewSite(int) SiteSketch { return newKindSite(exact.NewDistinct()) }

// NewCoordinator implements Protocol.
func (Exact) NewCoordinator() Coordinator { return &kindCoord{} }

// NewFM returns the FM/PCSA baseline protocol (strong hashing).
func NewFM(numMaps int, seed uint64) Protocol {
	return &kindProtocol{
		name: "fm-pcsa",
		mk:   func(int) sketch.Sketch { return fm.New(numMaps, seed) },
	}
}

// NewAMS returns the AMS baseline protocol.
func NewAMS(copies int, seed uint64) Protocol {
	return &kindProtocol{
		name: "ams",
		mk:   func(int) sketch.Sketch { return ams.New(copies, seed) },
	}
}

// NewKMV returns the KMV/bottom-k baseline protocol.
func NewKMV(k int, seed uint64) Protocol {
	return &kindProtocol{
		name: "kmv",
		mk:   func(int) sketch.Sketch { return kmv.New(k, seed) },
	}
}

// NewBJKST returns the BJKST baseline protocol.
func NewBJKST(capacity int, seed uint64) Protocol {
	return &kindProtocol{
		name: "bjkst",
		mk:   func(int) sketch.Sketch { return bjkst.New(capacity, seed) },
	}
}

// NewLogLog returns the HLL-style baseline protocol (strong hashing).
func NewLogLog(numRegs int, seed uint64) Protocol {
	return &kindProtocol{
		name: "hll",
		mk:   func(int) sketch.Sketch { return ll.New(numRegs, seed) },
	}
}
