package distsim

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/hashing"
	"repro/internal/sketch/ams"
	"repro/internal/sketch/bjkst"
	"repro/internal/sketch/fm"
	"repro/internal/sketch/kmv"
	"repro/internal/sketch/ll"
	"repro/internal/stream"
)

// GT is the paper's protocol: every site runs a coordinated
// core.Estimator (shared master seed), sends its serialized sketch,
// and the coordinator merges copy-by-copy.
type GT struct {
	Config core.EstimatorConfig
}

// Name implements Protocol.
func (g GT) Name() string { return "gt-coordinated" }

// NewSite implements Protocol. Every site uses the identical
// configuration — the coordination requirement.
func (g GT) NewSite(int) SiteSketch { return &gtSite{est: core.NewEstimator(g.Config)} }

// NewCoordinator implements Protocol.
func (g GT) NewCoordinator() Coordinator { return &gtCoord{} }

type gtSite struct {
	est *core.Estimator
}

func (s *gtSite) Process(it stream.Item) { s.est.ProcessWeighted(it.Label, it.Value) }
func (s *gtSite) Message() ([]byte, error) {
	return s.est.MarshalBinary()
}

type gtCoord struct {
	acc *core.Estimator
}

func (c *gtCoord) Absorb(msg []byte) error {
	var e core.Estimator
	if err := e.UnmarshalBinary(msg); err != nil {
		return err
	}
	if c.acc == nil {
		c.acc = &e
		return nil
	}
	return c.acc.Merge(&e)
}

func (c *gtCoord) EstimateDistinct() float64 {
	if c.acc == nil {
		return 0
	}
	return c.acc.EstimateDistinct()
}

func (c *gtCoord) EstimateSum() float64 {
	if c.acc == nil {
		return 0
	}
	return c.acc.EstimateSum()
}

// Uncoordinated is the strawman E3 contrasts with GT: each site runs
// the same sampler but with an *independent* seed, so sketches cannot
// be merged; each site sends only its local estimate and the
// coordinator adds them up. On overlapping streams the sum overcounts
// by exactly the duplication factor — the failure mode coordinated
// sampling exists to fix.
type Uncoordinated struct {
	Config core.EstimatorConfig
}

// Name implements Protocol.
func (u Uncoordinated) Name() string { return "uncoordinated-sum" }

// NewSite implements Protocol: site i derives its own private seed.
func (u Uncoordinated) NewSite(site int) SiteSketch {
	cfg := u.Config
	cfg.Seed = hashing.Mix64(cfg.Seed + 0x1000*uint64(site) + 1)
	return &uncoordSite{est: core.NewEstimator(cfg)}
}

// NewCoordinator implements Protocol.
func (u Uncoordinated) NewCoordinator() Coordinator { return &sumCoord{} }

type uncoordSite struct {
	est *core.Estimator
}

func (s *uncoordSite) Process(it stream.Item) { s.est.ProcessWeighted(it.Label, it.Value) }
func (s *uncoordSite) Message() ([]byte, error) {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], math.Float64bits(s.est.EstimateDistinct()))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(s.est.EstimateSum()))
	return b[:], nil
}

type sumCoord struct {
	distinct, sum float64
}

func (c *sumCoord) Absorb(msg []byte) error {
	if len(msg) != 16 {
		return fmt.Errorf("uncoordinated: message length %d, want 16", len(msg))
	}
	c.distinct += math.Float64frombits(binary.LittleEndian.Uint64(msg[:8]))
	c.sum += math.Float64frombits(binary.LittleEndian.Uint64(msg[8:]))
	return nil
}

func (c *sumCoord) EstimateDistinct() float64 { return c.distinct }
func (c *sumCoord) EstimateSum() float64      { return c.sum }

// Exact is the communication baseline: each site ships its entire
// distinct label set (8 bytes per label) and the coordinator unions
// exactly. Accuracy is perfect; E6 measures what that costs in bytes.
type Exact struct{}

// Name implements Protocol.
func (Exact) Name() string { return "exact-dedup" }

// NewSite implements Protocol.
func (Exact) NewSite(int) SiteSketch { return &exactSite{d: exact.NewDistinct()} }

// NewCoordinator implements Protocol.
func (Exact) NewCoordinator() Coordinator { return &exactCoord{d: exact.NewDistinct()} }

type exactSite struct {
	d      *exact.Distinct
	labels []uint64
	values []uint64
}

func (s *exactSite) Process(it stream.Item) {
	if !s.d.Contains(it.Label) {
		s.labels = append(s.labels, it.Label)
		s.values = append(s.values, it.Value)
	}
	s.d.ProcessWeighted(it.Label, it.Value)
}

func (s *exactSite) Message() ([]byte, error) {
	b := make([]byte, 0, 16*len(s.labels))
	for i, l := range s.labels {
		b = binary.LittleEndian.AppendUint64(b, l)
		b = binary.LittleEndian.AppendUint64(b, s.values[i])
	}
	return b, nil
}

type exactCoord struct {
	d *exact.Distinct
}

func (c *exactCoord) Absorb(msg []byte) error {
	if len(msg)%16 != 0 {
		return fmt.Errorf("exact: message length %d not a multiple of 16", len(msg))
	}
	for i := 0; i < len(msg); i += 16 {
		label := binary.LittleEndian.Uint64(msg[i:])
		value := binary.LittleEndian.Uint64(msg[i+8:])
		c.d.ProcessWeighted(label, value)
	}
	return nil
}

func (c *exactCoord) EstimateDistinct() float64 { return float64(c.d.Count()) }
func (c *exactCoord) EstimateSum() float64      { return float64(c.d.Sum()) }

// baselineSketch is the common shape of the comparison sketches (FM,
// AMS, KMV, BJKST, LogLog): distinct-count only, mergeable, with a
// binary wire format.
type baselineSketch interface {
	Process(label uint64)
	Estimate() float64
	MarshalBinary() ([]byte, error)
}

// baseline adapts any baselineSketch into a Protocol: sites serialize
// their sketch as the end-of-stream message and the coordinator
// decodes and merges. decode must return a fresh sketch parsed from
// the message; merge folds src into dst.
type baseline struct {
	name   string
	make   func(site int) baselineSketch
	decode func(msg []byte) (baselineSketch, error)
	merge  func(dst, src baselineSketch) error
}

// Name implements Protocol.
func (b *baseline) Name() string { return b.name }

// NewSite implements Protocol.
func (b *baseline) NewSite(site int) SiteSketch {
	return &baselineSite{sk: b.make(site)}
}

// NewCoordinator implements Protocol.
func (b *baseline) NewCoordinator() Coordinator { return &baselineCoord{p: b} }

type baselineSite struct {
	sk baselineSketch
}

func (s *baselineSite) Process(it stream.Item)   { s.sk.Process(it.Label) }
func (s *baselineSite) Message() ([]byte, error) { return s.sk.MarshalBinary() }

type baselineCoord struct {
	p   *baseline
	acc baselineSketch
}

func (c *baselineCoord) Absorb(msg []byte) error {
	sk, err := c.p.decode(msg)
	if err != nil {
		return err
	}
	if c.acc == nil {
		c.acc = sk
		return nil
	}
	return c.p.merge(c.acc, sk)
}

func (c *baselineCoord) EstimateDistinct() float64 {
	if c.acc == nil {
		return 0
	}
	return c.acc.Estimate()
}

// EstimateSum implements Coordinator; the baseline distinct sketches
// do not support value sums.
func (c *baselineCoord) EstimateSum() float64 { return math.NaN() }

// NewFM returns the FM/PCSA baseline protocol (strong hashing).
func NewFM(numMaps int, seed uint64) Protocol {
	return &baseline{
		name: "fm-pcsa",
		make: func(int) baselineSketch { return fm.New(numMaps, seed) },
		decode: func(msg []byte) (baselineSketch, error) {
			var s fm.Sketch
			err := s.UnmarshalBinary(msg)
			return &s, err
		},
		merge: func(dst, src baselineSketch) error {
			return dst.(*fm.Sketch).Merge(src.(*fm.Sketch))
		},
	}
}

// NewAMS returns the AMS baseline protocol.
func NewAMS(copies int, seed uint64) Protocol {
	return &baseline{
		name: "ams",
		make: func(int) baselineSketch { return ams.New(copies, seed) },
		decode: func(msg []byte) (baselineSketch, error) {
			var s ams.Sketch
			err := s.UnmarshalBinary(msg)
			return &s, err
		},
		merge: func(dst, src baselineSketch) error {
			return dst.(*ams.Sketch).Merge(src.(*ams.Sketch))
		},
	}
}

// NewKMV returns the KMV/bottom-k baseline protocol.
func NewKMV(k int, seed uint64) Protocol {
	return &baseline{
		name: "kmv",
		make: func(int) baselineSketch { return kmv.New(k, seed) },
		decode: func(msg []byte) (baselineSketch, error) {
			var s kmv.Sketch
			err := s.UnmarshalBinary(msg)
			return &s, err
		},
		merge: func(dst, src baselineSketch) error {
			return dst.(*kmv.Sketch).Merge(src.(*kmv.Sketch))
		},
	}
}

// NewBJKST returns the BJKST baseline protocol.
func NewBJKST(capacity int, seed uint64) Protocol {
	return &baseline{
		name: "bjkst",
		make: func(int) baselineSketch { return bjkst.New(capacity, seed) },
		decode: func(msg []byte) (baselineSketch, error) {
			var s bjkst.Sketch
			err := s.UnmarshalBinary(msg)
			return &s, err
		},
		merge: func(dst, src baselineSketch) error {
			return dst.(*bjkst.Sketch).Merge(src.(*bjkst.Sketch))
		},
	}
}

// NewLogLog returns the HLL-style baseline protocol (strong hashing).
func NewLogLog(numRegs int, seed uint64) Protocol {
	return &baseline{
		name: "hll",
		make: func(int) baselineSketch { return ll.New(numRegs, seed) },
		decode: func(msg []byte) (baselineSketch, error) {
			var s ll.Sketch
			err := s.UnmarshalBinary(msg)
			return &s, err
		},
		merge: func(dst, src baselineSketch) error {
			return dst.(*ll.Sketch).Merge(src.(*ll.Sketch))
		},
	}
}
