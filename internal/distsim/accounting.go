package distsim

import "sync"

// Accountant is the byte-accounting interface of the distributed
// model: every transport — the in-process channel simulator here, the
// loopback/real TCP transport in internal/distnet — records each
// site's one-shot message through it, so experiments report identical
// communication costs no matter how the messages physically traveled.
type Accountant interface {
	// Record notes that site sent one message of messageBytes bytes.
	Record(site, messageBytes int)
}

// ByteAccountant is the standard Accountant: it tracks total and
// per-site message bytes. It is safe for concurrent use — sites
// finish (and therefore report) in arbitrary order.
type ByteAccountant struct {
	mu       sync.Mutex // guards: perSite, messages, total, maxMsg
	perSite  map[int]int64
	messages int
	total    int64
	maxMsg   int
}

// NewByteAccountant returns an empty accountant.
func NewByteAccountant() *ByteAccountant {
	return &ByteAccountant{perSite: make(map[int]int64)}
}

// Record implements Accountant.
func (a *ByteAccountant) Record(site, messageBytes int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.messages++
	a.total += int64(messageBytes)
	a.perSite[site] += int64(messageBytes)
	if messageBytes > a.maxMsg {
		a.maxMsg = messageBytes
	}
}

// Messages returns the number of messages recorded.
func (a *ByteAccountant) Messages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.messages
}

// TotalBytes returns the total communication across all sites.
func (a *ByteAccountant) TotalBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// MaxMessageBytes returns the largest single message recorded.
func (a *ByteAccountant) MaxMessageBytes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.maxMsg
}

// SiteBytes returns the bytes recorded for one site.
func (a *ByteAccountant) SiteBytes(site int) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.perSite[site]
}

// FillStats copies the accounting totals into st's communication
// fields (Messages, BytesSent, MaxSiteBytes), leaving the rest of st
// untouched.
func (a *ByteAccountant) FillStats(st *Stats) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st.Messages = a.messages
	st.BytesSent = a.total
	st.MaxSiteBytes = a.maxMsg
}
