package harness

import (
	"errors"
	"sync/atomic"

	"repro/internal/estimate"
	"repro/internal/exact"
	"repro/internal/hashing"
	"repro/internal/window"
)

func init() {
	Register(Experiment{
		ID:    "E11",
		Title: "Extension: sliding-window distinct counts (SPAA 2002 direction)",
		Claim: "Per-level recency samples answer distinct-count queries over any covered sliding window with the same (ε,δ) shape as the infinite-window sketch, at an extra log-factor in space; merged sketches answer windows over the union.",
		Run:   runE11,
	})
}

func runE11(cfg Config) ([]*Table, error) {
	trials := cfg.trials(30)
	n := cfg.scale(200_000)
	const capacity = 4096

	tbl := NewTable("e11_window_accuracy",
		"Windowed distinct-count error vs window width (capacity 4096/level)",
		"Each width is queried on the same stream; uncovered widths report coverage instead of a wrong answer. Error should be flat across covered widths — the per-level samples give every window the same effective sample size.",
		"window_width", "median_err", "p95_err", "covered")

	widths := []int{n / 100, n / 10, n / 2, n}
	for _, w := range widths {
		var uncovered atomic.Bool // trials run concurrently
		errs := estimate.RunTrials(trials, cfg.Seed+uint64(w), func(seed uint64) float64 {
			s := window.New(window.Config{Capacity: capacity, Seed: seed, MaxLevel: 24})
			r := hashing.NewXoshiro256(seed ^ 0x1234)
			labels := make([]uint64, n)
			for ts := 0; ts < n; ts++ {
				labels[ts] = r.Uint64n(uint64(n) / 2)
				if err := s.Process(labels[ts], uint64(ts)); err != nil {
					panic(err)
				}
			}
			start := uint64(n - w)
			truth := exact.NewDistinct()
			for ts := start; ts < uint64(n); ts++ {
				truth.Process(labels[ts])
			}
			got, err := s.EstimateDistinctSince(start)
			if err != nil {
				if errors.Is(err, window.ErrUncovered) {
					uncovered.Store(true)
					return 0
				}
				panic(err)
			}
			return estimate.RelErr(got, float64(truth.Count()))
		})
		sum := estimate.Summarize(errs, 0)
		cov := "yes"
		if uncovered.Load() {
			cov = "no"
		}
		tbl.AddRow(I(w), F(sum.Median, 4), F(sum.P95, 4), cov)
	}

	// Distributed windows: merge two sketches, query the union window.
	tbl2 := NewTable("e11_window_union",
		"Windowed distinct over the union of 2 merged site sketches",
		"Same estimator after Merge: cross-site duplicates in the window count once.",
		"window_width", "median_err", "p95_err")
	for _, w := range widths[:len(widths)-1] {
		errs := estimate.RunTrials(trials, cfg.Seed^uint64(w)+0xe11, func(seed uint64) float64 {
			wcfg := window.Config{Capacity: capacity, Seed: seed, MaxLevel: 24}
			a, b := window.New(wcfg), window.New(wcfg)
			r := hashing.NewXoshiro256(seed ^ 0x777)
			type obs struct {
				label uint64
				ts    uint64
			}
			all := make([]obs, 0, 2*n)
			for ts := 0; ts < n; ts++ {
				la := r.Uint64n(uint64(n) / 4)
				lb := r.Uint64n(uint64(n)/4) + uint64(n)/8
				if err := a.Process(la, uint64(ts)); err != nil {
					panic(err)
				}
				if err := b.Process(lb, uint64(ts)); err != nil {
					panic(err)
				}
				all = append(all, obs{la, uint64(ts)}, obs{lb, uint64(ts)})
			}
			if err := a.Merge(b); err != nil {
				panic(err)
			}
			start := uint64(n - w)
			truth := exact.NewDistinct()
			for _, o := range all {
				if o.ts >= start {
					truth.Process(o.label)
				}
			}
			got, err := a.EstimateDistinctSince(start)
			if err != nil {
				panic(err)
			}
			return estimate.RelErr(got, float64(truth.Count()))
		})
		sum := estimate.Summarize(errs, 0)
		tbl2.AddRow(I(w), F(sum.Median, 4), F(sum.P95, 4))
	}
	return []*Table{tbl, tbl2}, nil
}
