package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func quickCfg(buf *bytes.Buffer) Config {
	return Config{Seed: 7, Quick: true, Trials: 3, Out: buf}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("registered %d experiments, want 11", len(all))
	}
	for i, e := range all {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Errorf("experiment %d has ID %s, want %s (sort order)", i, e.ID, want)
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
	if _, ok := Get("E3"); !ok {
		t.Error("Get(E3) failed")
	}
	if _, ok := Get("E99"); ok {
		t.Error("Get(E99) succeeded")
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow even in quick mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			tables, err := e.Run(quickCfg(&buf))
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tbl := range tables {
				if tbl.ID == "" || tbl.Title == "" || len(tbl.Headers) == 0 {
					t.Errorf("table %q incomplete", tbl.ID)
				}
				if len(tbl.Rows) == 0 {
					t.Errorf("table %q has no rows", tbl.ID)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Headers) {
						t.Errorf("table %q ragged row", tbl.ID)
					}
				}
			}
		})
	}
}

func TestRunAndPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow even in quick mode")
	}
	var buf bytes.Buffer
	csvDir := t.TempDir()
	cfg := quickCfg(&buf)
	if err := RunAndPrint(cfg, []string{"E2"}, csvDir); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E2") || !strings.Contains(out, "claim:") {
		t.Errorf("output missing experiment header:\n%s", out)
	}
	files, err := os.ReadDir(csvDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Error("no CSV files written")
	}
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(csvDir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), ",") {
			t.Errorf("%s: not CSV", f.Name())
		}
	}
}

func TestRunAndPrintUnknown(t *testing.T) {
	if err := RunAndPrint(Config{}, []string{"nope"}, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTableHelpers(t *testing.T) {
	tbl := NewTable("t", "title", "note", "a", "b")
	tbl.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tbl.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "title") {
		t.Error("Fprint missing title")
	}
	buf.Reset()
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ragged AddRow did not panic")
			}
		}()
		tbl.AddRow("only-one")
	}()
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Error("F")
	}
	if Pct(0.123) != "12.3%" {
		t.Error("Pct")
	}
	if I(42) != "42" {
		t.Error("I")
	}
	if Bytes(512) != "512 B" {
		t.Errorf("Bytes(512) = %s", Bytes(512))
	}
	if Bytes(2048) != "2.0 KiB" {
		t.Errorf("Bytes(2048) = %s", Bytes(2048))
	}
	if !strings.Contains(Bytes(3<<20), "MiB") {
		t.Errorf("Bytes(3MiB) = %s", Bytes(3<<20))
	}
}

func TestConfigHelpers(t *testing.T) {
	c := Config{Quick: true}
	if got := c.trials(20); got != 5 {
		t.Errorf("quick trials = %d, want 5", got)
	}
	if got := (Config{Trials: 7}).trials(20); got != 7 {
		t.Errorf("explicit trials = %d", got)
	}
	if got := c.scale(10_000); got != 1000 {
		t.Errorf("quick scale = %d", got)
	}
	if got := c.scale(500); got != 100 {
		t.Errorf("quick scale floor = %d", got)
	}
	if got := (Config{}).scale(500); got != 500 {
		t.Errorf("full scale = %d", got)
	}
}
