package harness

import (
	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/exact"
	"repro/internal/hashing"
	"repro/internal/stream"
)

func init() {
	Register(Experiment{
		ID:    "E8",
		Title: "SumDistinct: duplicate-insensitive sums over the union",
		Claim: "Expanding a label of value v into v sub-items reduces SumDistinct to distinct counting, so the (ε,δ) guarantee carries over for values in [0..R]; the weighted Horvitz–Thompson shortcut trades that guarantee for O(1) inserts.",
		Run:   runE8,
	})
}

func runE8(cfg Config) ([]*Table, error) {
	// Value ranges R; labels per trial shrink as R grows to keep the
	// expanded sub-item work bounded.
	type arm struct {
		r      uint64
		labels int
	}
	arms := []arm{{1, 40_000}, {16, 40_000}, {256, 10_000}, {4096, 2_000}}
	if cfg.Quick {
		arms = []arm{{1, 4_000}, {16, 4_000}, {256, 1_000}}
	}
	trials := cfg.trials(20)

	tbl := NewTable("e8_sumdistinct",
		"Relative error of SumDistinct estimators, values uniform in [1..R], 3 sites with full duplication",
		"Both estimators must be duplicate-insensitive (every site sees every item; a naive sum of values would triple-count). expanded is the paper's reduction; weighted-ht is the constant-time shortcut — comparable accuracy on benign value distributions, no worst-case guarantee.",
		"R", "labels", "estimator", "median_err", "p95_err")

	for _, a := range arms {
		valueOf := func(seed uint64) func(uint64) uint64 {
			h := hashing.NewPairwise(seed ^ 0xbeef)
			return func(label uint64) uint64 { return h.Hash(label)%a.r + 1 }
		}
		for _, est := range []string{"expanded", "weighted-ht"} {
			errs := estimate.RunTrials(trials, cfg.Seed+a.r*31, func(seed uint64) float64 {
				vf := valueOf(seed)
				// Build one site stream; all 3 sites replay it (full
				// duplication across the union).
				base := stream.NewWithValues(stream.NewSequentialStride(a.labels, 1, seed%1024), vf)
				items := stream.Collect(base)
				truth := exact.NewDistinct()
				for _, it := range items {
					truth.ProcessWeighted(it.Label, it.Value)
				}

				switch est {
				case "expanded":
					capacity := 4096
					sA := core.NewSumSampler(core.Config{Capacity: capacity, Seed: seed}, a.r)
					sB := core.NewSumSampler(core.Config{Capacity: capacity, Seed: seed}, a.r)
					sC := core.NewSumSampler(core.Config{Capacity: capacity, Seed: seed}, a.r)
					for _, it := range items {
						if err := sA.Process(it.Label, it.Value); err != nil {
							panic(err)
						}
						if err := sB.Process(it.Label, it.Value); err != nil {
							panic(err)
						}
						if err := sC.Process(it.Label, it.Value); err != nil {
							panic(err)
						}
					}
					if err := sA.Merge(sB); err != nil {
						panic(err)
					}
					if err := sA.Merge(sC); err != nil {
						panic(err)
					}
					return estimate.RelErr(sA.EstimateSum(), float64(truth.Sum()))
				default: // weighted-ht
					mk := func() *core.Sampler {
						return core.NewSampler(core.Config{Capacity: 4096, Seed: seed})
					}
					sA, sB, sC := mk(), mk(), mk()
					for _, it := range items {
						sA.ProcessWeighted(it.Label, it.Value)
						sB.ProcessWeighted(it.Label, it.Value)
						sC.ProcessWeighted(it.Label, it.Value)
					}
					if err := sA.Merge(sB); err != nil {
						panic(err)
					}
					if err := sA.Merge(sC); err != nil {
						panic(err)
					}
					return estimate.RelErr(sA.EstimateSum(), float64(truth.Sum()))
				}
			})
			s := estimate.Summarize(errs, 0)
			tbl.AddRow(I(a.r), I(a.labels), est, F(s.Median, 4), F(s.P95, 4))
		}
	}
	return []*Table{tbl}, nil
}
