package harness

import (
	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/estimate"
	"repro/internal/exact"
	"repro/internal/stream"
)

func init() {
	Register(Experiment{
		ID:    "E3",
		Title: "Union estimation across t sites with controlled overlap",
		Claim: "Coordinated sketches merge into an (ε,δ)-estimate of the set union regardless of cross-site duplication; summing uncoordinated per-site estimates overcounts by the duplication factor.",
		Run:   runE3,
	})
}

func runE3(cfg Config) ([]*Table, error) {
	sitesSweep := []int{1, 2, 4, 8, 16, 32, 64}
	overlaps := []float64{0, 0.5, 0.9, 1.0}
	if cfg.Quick {
		sitesSweep = []int{1, 4, 16}
		overlaps = []float64{0, 0.5, 1.0}
	}
	trials := cfg.trials(12)
	perSite := cfg.scale(20_000)

	tbl := NewTable("e3_union_overlap",
		"Signed relative error of union estimates: coordinated merge vs per-site sum",
		"coord_err should stay within ±ε everywhere. uncoord_err is signed: ≈0 when sites are disjoint (overlap 0) and strongly positive as overlap grows — at overlap 1 with t sites it approaches t−1 (every site recounts the same core).",
		"sites", "overlap", "union_truth", "coord_err(signed,median)", "uncoord_err(signed,median)")

	estCfg := core.EstimatorConfig{Capacity: 1024, Copies: 5}
	for _, t := range sitesSweep {
		for _, ov := range overlaps {
			coordErrs := make([]float64, 0, trials)
			uncoordErrs := make([]float64, 0, trials)
			var lastTruth int
			for trial := 0; trial < trials; trial++ {
				seed := estimate.TrialSeed(cfg.Seed+uint64(t*1000)+uint64(ov*100), trial)
				wl := stream.OverlapConfig{
					Sites: t, PerSite: perSite,
					CoreSize: uint64(perSite / 2), PrivateSize: uint64(perSite / 2),
					Overlap: ov, Seed: seed,
				}
				srcs := wl.Build()
				truth := exact.NewDistinct()
				for _, s := range srcs {
					stream.Feed(s, func(it stream.Item) { truth.Process(it.Label) })
				}
				lastTruth = truth.Count()

				c := estCfg
				c.Seed = seed ^ 0xc0de
				coord, err := distsim.Run(distsim.GT{Config: c}, srcs, false)
				if err != nil {
					return nil, err
				}
				uncoord, err := distsim.Run(distsim.Uncoordinated{Config: c}, srcs, false)
				if err != nil {
					return nil, err
				}
				coordErrs = append(coordErrs, estimate.SignedRelErr(coord.DistinctEstimate, float64(truth.Count())))
				uncoordErrs = append(uncoordErrs, estimate.SignedRelErr(uncoord.DistinctEstimate, float64(truth.Count())))
			}
			tbl.AddRow(I(t), F(ov, 1), I(lastTruth),
				F(core.Median(coordErrs), 4), F(core.Median(uncoordErrs), 4))
		}
	}
	return []*Table{tbl}, nil
}
