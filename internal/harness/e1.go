package harness

import (
	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/exact"
	"repro/internal/sketch/ams"
	"repro/internal/sketch/bjkst"
	"repro/internal/sketch/fm"
	"repro/internal/sketch/kmv"
	"repro/internal/sketch/ll"
	"repro/internal/stream"
)

// distinctSketch abstracts "anything that counts distinct labels" for
// the comparison experiments.
type distinctSketch struct {
	name string
	// make builds a sketch sized to the given byte budget, returning
	// its process and estimate functions.
	make func(budget int, seed uint64) (process func(uint64), est func() float64)
}

// competitorsForBudget is the roster E1 compares. Byte budgets are
// converted to each sketch's natural size knob using its per-slot
// cost: GT sample entries serialize to ~9 bytes (varint delta + value
// byte), FM bitmaps and KMV values are 8 bytes, BJKST buckets 5 bytes,
// HLL registers and AMS copies 1 byte.
var competitors = []distinctSketch{
	{
		name: "gt",
		make: func(budget int, seed uint64) (func(uint64), func() float64) {
			capacity := budget / 9
			if capacity < 4 {
				capacity = 4
			}
			s := core.NewSampler(core.Config{Capacity: capacity, Seed: seed})
			return s.Process, s.EstimateDistinct
		},
	},
	{
		name: "fm-strong",
		make: func(budget int, seed uint64) (func(uint64), func() float64) {
			m := budget / 8
			if m < 2 {
				m = 2
			}
			s := fm.New(m, seed)
			return s.Process, s.Estimate
		},
	},
	{
		name: "fm-weak",
		make: func(budget int, seed uint64) (func(uint64), func() float64) {
			m := budget / 8
			if m < 2 {
				m = 2
			}
			s := fm.NewWeak(m, seed)
			return s.Process, s.Estimate
		},
	},
	{
		name: "kmv",
		make: func(budget int, seed uint64) (func(uint64), func() float64) {
			k := budget / 8
			if k < 2 {
				k = 2
			}
			s := kmv.New(k, seed)
			return s.Process, s.Estimate
		},
	},
	{
		name: "bjkst",
		make: func(budget int, seed uint64) (func(uint64), func() float64) {
			c := budget / 5
			if c < 1 {
				c = 1
			}
			s := bjkst.New(c, seed)
			return s.Process, s.Estimate
		},
	},
	{
		name: "hll-strong",
		make: func(budget int, seed uint64) (func(uint64), func() float64) {
			m := budget
			if m < 16 {
				m = 16
			}
			s := ll.New(m, seed)
			return s.Process, s.Estimate
		},
	},
	{
		name: "ams",
		make: func(budget int, seed uint64) (func(uint64), func() float64) {
			copies := budget
			if copies < 1 {
				copies = 1
			}
			// Cap the copies: AMS is a constant-factor estimator, so
			// past a few dozen copies extra space buys nothing but
			// per-item cost (its plateau is the point of this arm).
			if copies > 63 {
				copies = 63
			}
			s := ams.New(copies, seed)
			return s.Process, s.Estimate
		},
	},
}

func init() {
	Register(Experiment{
		ID:    "E1",
		Title: "Accuracy at equal space: GT vs FM/AMS/KMV/BJKST/HLL",
		Claim: "GT is a true (ε,δ)-estimator from pairwise hashing alone; AMS only reaches a constant factor, and FM needs stronger-than-pairwise hashing (its weak-hash arm is biased on structured keys).",
		Run:   runE1,
	})
}

func runE1(cfg Config) ([]*Table, error) {
	budgets := []int{1 << 10, 4 << 10, 16 << 10, 64 << 10}
	if cfg.Quick {
		budgets = []int{1 << 10, 4 << 10}
	}
	trials := cfg.trials(24)
	universe := uint64(cfg.scale(200_000))
	n := cfg.scale(400_000)

	// The structured workload: sequential labels, the regime where
	// weak hashing hurts the baselines but not GT.
	tbl := NewTable("e1_accuracy_equal_space",
		"Median (p95) relative error at equal space, sequential-label stream",
		"Lower is better. Shapes to check: gt error shrinks with budget; ams plateaus near a constant factor regardless of budget; fm-weak stays biased while fm-strong tracks its ideal analysis.",
		"budget", "sketch", "median_err", "p95_err")

	for _, budget := range budgets {
		for _, c := range competitors {
			errs := estimate.RunTrials(trials, cfg.Seed+uint64(budget), func(seed uint64) float64 {
				process, est := c.make(budget, seed)
				src := stream.NewSequential(n)
				truth := exact.NewDistinct()
				stream.Feed(src, func(it stream.Item) {
					process(it.Label)
					truth.Process(it.Label)
				})
				return estimate.RelErr(est(), float64(truth.Count()))
			})
			s := estimate.Summarize(errs, 0)
			tbl.AddRow(Bytes(int64(budget)), c.name, F(s.Median, 4), F(s.P95, 4))
		}
	}

	// Second workload: uniform random labels, where every sketch's
	// ideal analysis applies — the control arm.
	tbl2 := NewTable("e1_accuracy_uniform",
		"Median relative error at equal space, uniform random labels (control)",
		"On unstructured keys the weak-hash arms recover; the gt column should be essentially unchanged between the two workloads (its guarantee never depended on the key structure).",
		"budget", "sketch", "median_err", "p95_err")
	for _, budget := range budgets {
		for _, c := range competitors {
			errs := estimate.RunTrials(trials, cfg.Seed^0xe1e1+uint64(budget), func(seed uint64) float64 {
				process, est := c.make(budget, seed)
				src := stream.NewUniform(universe, n, seed^0x5555)
				truth := exact.NewDistinct()
				stream.Feed(src, func(it stream.Item) {
					process(it.Label)
					truth.Process(it.Label)
				})
				return estimate.RelErr(est(), float64(truth.Count()))
			})
			s := estimate.Summarize(errs, 0)
			tbl2.AddRow(Bytes(int64(budget)), c.name, F(s.Median, 4), F(s.P95, 4))
		}
	}
	return []*Table{tbl, tbl2}, nil
}
