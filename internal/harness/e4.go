package harness

import (
	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/sketch/bjkst"
	"repro/internal/sketch/fm"
	"repro/internal/sketch/kmv"
	"repro/internal/sketch/ll"
	"repro/internal/stream"
)

func init() {
	Register(Experiment{
		ID:    "E4",
		Title: "Space vs target accuracy ε",
		Claim: "GT uses O(log(1/δ)/ε² · log m) bits per stream — measured here as serialized sketch bytes at each ε target, next to what the alternatives need for the same target.",
		Run:   runE4,
	})
}

// e4Sketch sizes a sketch for a target ε, runs it, and reports its
// serialized size and achieved error.
type e4Sketch struct {
	name string
	make func(eps float64, seed uint64) (process func(uint64), est func() float64, size func() int)
}

var e4Roster = []e4Sketch{
	{
		name: "gt (δ=0.05)",
		make: func(eps float64, seed uint64) (func(uint64), func() float64, func() int) {
			cfg := core.ConfigForAccuracy(eps, 0.05, seed)
			e := core.NewEstimator(cfg)
			return e.Process, e.EstimateDistinct, e.SizeBytes
		},
	},
	{
		name: "gt (1 copy)",
		make: func(eps float64, seed uint64) (func(uint64), func() float64, func() int) {
			s := core.NewSampler(core.Config{Capacity: core.CapacityForEpsilon(eps), Seed: seed})
			return s.Process, s.EstimateDistinct, s.SizeBytes
		},
	},
	{
		name: "fm-strong",
		make: func(eps float64, seed uint64) (func(uint64), func() float64, func() int) {
			s := fm.New(fm.NumMapsForEpsilon(eps), seed)
			return s.Process, s.Estimate, s.SizeBytes
		},
	},
	{
		name: "kmv",
		make: func(eps float64, seed uint64) (func(uint64), func() float64, func() int) {
			s := kmv.New(kmv.KForEpsilon(eps), seed)
			return s.Process, s.Estimate, s.SizeBytes
		},
	},
	{
		name: "bjkst",
		make: func(eps float64, seed uint64) (func(uint64), func() float64, func() int) {
			s := bjkst.New(core.CapacityForEpsilon(eps), seed)
			return s.Process, s.Estimate, s.SizeBytes
		},
	},
	{
		name: "hll-strong",
		make: func(eps float64, seed uint64) (func(uint64), func() float64, func() int) {
			s := ll.New(ll.NumRegsForEpsilon(eps), seed)
			return s.Process, s.Estimate, s.SizeBytes
		},
	},
}

func runE4(cfg Config) ([]*Table, error) {
	epsTargets := []float64{0.2, 0.1, 0.05, 0.02}
	if cfg.Quick {
		epsTargets = []float64{0.2, 0.1}
	}
	trials := cfg.trials(16)
	truth := cfg.scale(500_000)

	tbl := NewTable("e4_space_vs_epsilon",
		"Serialized sketch bytes and achieved error per ε target",
		"The paper's bound predicts GT space growing as 1/ε² (with a log m-bit constant per slot). HLL's registers are O(log log m) bits, so it is smaller at equal ε — it buys that with a stronger hashing assumption; BJKST sits between (fingerprints instead of labels).",
		"eps_target", "sketch", "bytes(median)", "median_err", "p95_err")

	for _, eps := range epsTargets {
		for _, sk := range e4Roster {
			var sizes []float64
			errs := make([]float64, 0, trials)
			for trial := 0; trial < trials; trial++ {
				seed := estimate.TrialSeed(cfg.Seed^uint64(eps*1e4), trial)
				process, est, size := sk.make(eps, seed)
				stream.Feed(stream.NewSequential(truth), func(it stream.Item) { process(it.Label) })
				errs = append(errs, estimate.RelErr(est(), float64(truth)))
				sizes = append(sizes, float64(size()))
			}
			es := estimate.Summarize(errs, 0)
			tbl.AddRow(F(eps, 2), sk.name, Bytes(int64(core.Median(sizes))), F(es.Median, 4), F(es.P95, 4))
		}
	}
	return []*Table{tbl}, nil
}
