package harness

import (
	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/estimate"
	"repro/internal/exact"
	"repro/internal/stream"
)

func init() {
	Register(Experiment{
		ID:    "E6",
		Title: "Communication cost: one sketch per site vs exact dedup",
		Claim: "Each party sends a single logarithmic-size message after its stream; exact union computation would ship every distinct label. The gap grows linearly with stream size while the sketch stays fixed.",
		Run:   runE6,
	})
}

func runE6(cfg Config) ([]*Table, error) {
	siteCounts := []int{4, 16, 64}
	if cfg.Quick {
		siteCounts = []int{4, 16}
	}
	perSite := cfg.scale(50_000)
	estCfg := core.EstimatorConfig{Capacity: 1024, Copies: 5, Seed: cfg.Seed}

	tbl := NewTable("e6_communication",
		"Total and per-site bytes sent, with achieved error",
		"gt bytes are flat per site regardless of stream size; exact bytes grow with per-site distinct counts. uncoordinated sends the least (16 B/site) but its error explodes with overlap — the three-way trade the paper resolves.",
		"sites", "protocol", "total_bytes", "max_site_bytes", "rel_err(signed)")

	for _, t := range siteCounts {
		wl := stream.OverlapConfig{
			Sites: t, PerSite: perSite,
			CoreSize: uint64(perSite / 2), PrivateSize: uint64(perSite / 2),
			Overlap: 0.5, Seed: cfg.Seed + uint64(t),
		}
		srcs := wl.Build()
		truth := exact.NewDistinct()
		for _, s := range srcs {
			stream.Feed(s, func(it stream.Item) { truth.Process(it.Label) })
		}
		for _, p := range []distsim.Protocol{
			distsim.GT{Config: estCfg},
			distsim.Exact{},
			distsim.Uncoordinated{Config: estCfg},
		} {
			res, err := distsim.Run(p, srcs, false)
			if err != nil {
				return nil, err
			}
			tbl.AddRow(I(t), p.Name(),
				Bytes(res.Stats.BytesSent),
				Bytes(int64(res.Stats.MaxSiteBytes)),
				F(estimate.SignedRelErr(res.DistinctEstimate, float64(truth.Count())), 4))
		}
	}

	// Second table: sketch size is independent of stream length.
	tbl2 := NewTable("e6_message_vs_streamlen",
		"Per-site message size as the stream grows (8 sites, overlap 0.5)",
		"gt message bytes must plateau once the sample saturates; exact grows linearly in the distinct count.",
		"items_per_site", "gt_site_bytes", "exact_site_bytes")
	for _, ps := range []int{perSite / 10, perSite / 2, perSite, perSite * 2} {
		wl := stream.OverlapConfig{
			Sites: 8, PerSite: ps,
			CoreSize: uint64(ps/2) + 1, PrivateSize: uint64(ps/2) + 1,
			Overlap: 0.5, Seed: cfg.Seed ^ 0x66,
		}
		gtRes, err := distsim.Run(distsim.GT{Config: estCfg}, wl.Build(), false)
		if err != nil {
			return nil, err
		}
		exRes, err := distsim.Run(distsim.Exact{}, wl.Build(), false)
		if err != nil {
			return nil, err
		}
		tbl2.AddRow(I(ps), Bytes(int64(gtRes.Stats.MaxSiteBytes)), Bytes(int64(exRes.Stats.MaxSiteBytes)))
	}
	return []*Table{tbl, tbl2}, nil
}
