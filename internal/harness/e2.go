package harness

import (
	"math"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/stream"
)

func init() {
	Register(Experiment{
		ID:    "E2",
		Title: "Relative error vs sample capacity c",
		Claim: "The sampler is an (ε,δ)-estimator with c = Θ(1/ε²): observed error should shrink like 1/√c.",
		Run:   runE2,
	})
}

func runE2(cfg Config) ([]*Table, error) {
	capacities := []int{16, 64, 256, 1024, 4096, 16384}
	if cfg.Quick {
		capacities = []int{16, 64, 256, 1024}
	}
	trials := cfg.trials(200)
	truth := cfg.scale(200_000)

	tbl := NewTable("e2_error_vs_capacity",
		"Observed error quantiles vs capacity (single sampler copy)",
		"eps_theory = sqrt(12/c), the ε our CapacityForEpsilon constant targets. The median column should track ~0.3·eps_theory-ish and, crucially, halve every 4× capacity (the 1/√c law).",
		"capacity", "eps_theory", "median_err", "p90_err", "p95_err", "fail_rate@eps")

	medians := make([]float64, len(capacities))
	for i, c := range capacities {
		eps := core.EpsilonForCapacity(c)
		errs := estimate.RunTrials(trials, cfg.Seed+uint64(c), func(seed uint64) float64 {
			s := core.NewSampler(core.Config{Capacity: c, Seed: seed})
			stream.Feed(stream.NewSequential(truth), func(it stream.Item) { s.Process(it.Label) })
			return estimate.RelErr(s.EstimateDistinct(), float64(truth))
		})
		sum := estimate.Summarize(errs, eps)
		medians[i] = sum.Median
		tbl.AddRow(I(c), F(eps, 4), F(sum.Median, 4), F(sum.P90, 4), F(sum.P95, 4), Pct(sum.FailureRate))
	}

	// Scaling check table: ratio of median errors between successive
	// capacities; the 1/√c law predicts ~0.5 per 4× step.
	tbl2 := NewTable("e2_scaling_law",
		"Error scaling between successive 4x capacity steps",
		"ratio = median_err(c)/median_err(c/4); the 1/√c law predicts 0.5.",
		"capacity_step", "observed_ratio", "predicted")
	for i := 1; i < len(capacities); i++ {
		ratio := math.NaN()
		if medians[i-1] > 0 {
			ratio = medians[i] / medians[i-1]
		}
		tbl2.AddRow(I(capacities[i-1])+"→"+I(capacities[i]), F(ratio, 3), "0.500")
	}
	return []*Table{tbl, tbl2}, nil
}
