// Package harness hosts the reproduction experiments: each experiment
// E1–E10 checks one claim of the paper (see DESIGN.md's per-experiment
// index), generating its own workloads, running the relevant sketches
// and protocols, and emitting result tables. cmd/gtbench is the CLI
// front end; the root bench_test.go exposes each experiment as a
// testing.B benchmark.
package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Config controls experiment scale so the same code serves full runs
// (gtbench), benchmarks, and fast CI tests.
type Config struct {
	// Seed drives every generator and sketch; equal seeds reproduce
	// results exactly.
	Seed uint64
	// Trials is the ensemble size for error measurements (0 = each
	// experiment's default).
	Trials int
	// Quick shrinks workloads by roughly an order of magnitude for
	// tests.
	Quick bool
	// Out receives progress and tables; nil means os.Stdout.
	Out io.Writer
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return os.Stdout
	}
	return c.Out
}

// trials returns the configured ensemble size, defaulting to def (and
// a quarter of def in Quick mode).
func (c Config) trials(def int) int {
	n := c.Trials
	if n == 0 {
		n = def
		if c.Quick {
			n = (def + 3) / 4
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// scale shrinks a workload size in Quick mode.
func (c Config) scale(n int) int {
	if c.Quick {
		n /= 10
		if n < 100 {
			n = 100
		}
	}
	return n
}

// Experiment is one registered reproduction experiment.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md ("E1" … "E10").
	ID string
	// Title names the table/figure being reproduced.
	Title string
	// Claim states the paper claim the experiment checks.
	Claim string
	// Run executes the experiment and returns its result tables.
	Run func(cfg Config) ([]*Table, error)
}

var experiments = map[string]Experiment{}

// Register adds an experiment to the registry; it panics on duplicate
// IDs (an init-time programming error).
func Register(e Experiment) {
	if _, dup := experiments[e.ID]; dup {
		panic(fmt.Sprintf("harness: duplicate experiment %s", e.ID))
	}
	experiments[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := experiments[id]
	return e, ok
}

// All returns all experiments sorted by ID (E1, E2, …, E10).
func All() []Experiment {
	out := make([]Experiment, 0, len(experiments))
	for _, e := range experiments {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b) // E2 < E10
		}
		return a < b
	})
	return out
}

// RunAndPrint executes the experiments with the given IDs (nil = all),
// printing tables to cfg.Out and, when csvDir is nonempty, writing one
// CSV per table into it.
func RunAndPrint(cfg Config, ids []string, csvDir string) error {
	var todo []Experiment
	if len(ids) == 0 {
		todo = All()
	} else {
		for _, id := range ids {
			e, ok := Get(id)
			if !ok {
				return fmt.Errorf("harness: unknown experiment %q", id)
			}
			todo = append(todo, e)
		}
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	w := cfg.out()
	for _, e := range todo {
		fmt.Fprintf(w, "\n=== %s: %s ===\n", e.ID, e.Title)
		fmt.Fprintf(w, "claim: %s\n", e.Claim)
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("harness: %s: %w", e.ID, err)
		}
		for _, t := range tables {
			if err := t.Fprint(w); err != nil {
				return err
			}
			if csvDir != "" {
				f, err := os.Create(filepath.Join(csvDir, t.ID+".csv"))
				if err != nil {
					return err
				}
				if err := t.WriteCSV(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
