package harness

import (
	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/stream"
)

func init() {
	Register(Experiment{
		ID:    "E7",
		Title: "δ-amplification by median-of-copies",
		Claim: "The median of r independent copies drives the failure probability down exponentially in r (the paper's O(log 1/δ) copies factor): the tail error quantiles and the empirical failure rate at a fixed ε should collapse as r grows.",
		Run:   runE7,
	})
}

func runE7(cfg Config) ([]*Table, error) {
	copiesSweep := []int{1, 3, 5, 9, 15}
	trials := cfg.trials(200)
	truth := cfg.scale(50_000)
	const capacity = 128
	eps := core.EpsilonForCapacity(capacity)

	tbl := NewTable("e7_median_boosting",
		"Error quantiles and failure rate vs copy count r (capacity 128 per copy)",
		"fail_rate is the empirical Pr[rel err > eps]; it should fall roughly geometrically with r while the median stays put — exactly the amplification the analysis promises.",
		"copies", "median_err", "p95_err", "p99_err", "max_err", "fail_rate@eps")

	for _, r := range copiesSweep {
		errs := estimate.RunTrials(trials, cfg.Seed+uint64(r)*101, func(seed uint64) float64 {
			e := core.NewEstimator(core.EstimatorConfig{Capacity: capacity, Copies: r, Seed: seed})
			stream.Feed(stream.NewSequential(truth), func(it stream.Item) { e.Process(it.Label) })
			return estimate.RelErr(e.EstimateDistinct(), float64(truth))
		})
		s := estimate.Summarize(errs, eps)
		tbl.AddRow(I(r), F(s.Median, 4), F(s.P95, 4), F(s.P99, 4), F(s.Max, 4), Pct(s.FailureRate))
	}

	tbl2 := NewTable("e7_copies_for_delta",
		"CopiesForDelta: the r the library picks per δ target",
		"r grows as Θ(log 1/δ).",
		"delta", "copies")
	for _, d := range []float64{0.25, 0.1, 0.05, 0.01, 0.001} {
		tbl2.AddRow(F(d, 3), I(core.CopiesForDelta(d)))
	}
	return []*Table{tbl, tbl2}, nil
}
