package harness

import (
	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/exact"
	"repro/internal/sketch/fm"
	"repro/internal/sketch/ll"
	"repro/internal/stream"
)

func init() {
	Register(Experiment{
		ID:    "E10",
		Title: "Hash-family ablation: pairwise suffices for GT",
		Claim: "The analysis needs only pairwise independence, so swapping in 4-wise or tabulation hashing must not change GT's accuracy — on any key structure. The same swap matters enormously for FM/HLL.",
		Run:   runE10,
	})
}

func runE10(cfg Config) ([]*Table, error) {
	trials := cfg.trials(30)
	n := cfg.scale(200_000)

	workloads := []struct {
		name string
		make func(seed uint64) stream.Source
	}{
		{"sequential", func(uint64) stream.Source { return stream.NewSequential(n) }},
		{"uniform", func(seed uint64) stream.Source { return stream.NewUniform(uint64(n), n, seed^0x9) }},
		{"zipf(s=2)", func(seed uint64) stream.Source { return stream.NewZipf(uint64(n), n, 2.0, seed^0x5) }},
	}
	families := []core.FamilyKind{core.FamilyPairwise, core.FamilyFourWise, core.FamilyTabulation}

	tbl := NewTable("e10_gt_hash_families",
		"GT median error by hash family and key structure (capacity 1024)",
		"All cells should be statistically indistinguishable: pairwise is enough, regardless of key structure. This is the paper's headline hashing claim.",
		"workload", "family", "median_err", "p95_err")

	for _, wl := range workloads {
		for _, fam := range families {
			errs := estimate.RunTrials(trials, cfg.Seed+uint64(fam)*7, func(seed uint64) float64 {
				s := core.NewSampler(core.Config{Capacity: 1024, Seed: seed, Family: fam})
				truth := exact.NewDistinct()
				stream.Feed(wl.make(seed), func(it stream.Item) {
					s.Process(it.Label)
					truth.Process(it.Label)
				})
				return estimate.RelErr(s.EstimateDistinct(), float64(truth.Count()))
			})
			sum := estimate.Summarize(errs, 0)
			tbl.AddRow(wl.name, fam.String(), F(sum.Median, 4), F(sum.P95, 4))
		}
	}

	// Contrast arm: FM and HLL under weak (pairwise) vs strong
	// (tabulation) hashing on the structured workload.
	tbl2 := NewTable("e10_baseline_hash_sensitivity",
		"FM and HLL under pairwise vs tabulation hashing, sequential keys",
		"The baselines' weak-hash arms are biased on structured keys; GT's row above is immune. This gap is why the paper's pairwise-only guarantee was new.",
		"sketch", "hashing", "median_err(signed)", "p95_abs_err")
	type baselineArm struct {
		sketch  string
		hashing string
		make    func(seed uint64) (func(uint64), func() float64)
	}
	armsList := []baselineArm{
		{"fm", "pairwise", func(seed uint64) (func(uint64), func() float64) {
			s := fm.NewWeak(512, seed)
			return s.Process, s.Estimate
		}},
		{"fm", "tabulation", func(seed uint64) (func(uint64), func() float64) {
			s := fm.New(512, seed)
			return s.Process, s.Estimate
		}},
		{"hll", "pairwise", func(seed uint64) (func(uint64), func() float64) {
			s := ll.NewWeak(1024, seed)
			return s.Process, s.Estimate
		}},
		{"hll", "tabulation", func(seed uint64) (func(uint64), func() float64) {
			s := ll.New(1024, seed)
			return s.Process, s.Estimate
		}},
	}
	for _, a := range armsList {
		signed := estimate.RunTrials(trials, cfg.Seed^0xaa, func(seed uint64) float64 {
			process, est := a.make(seed)
			stream.Feed(stream.NewSequential(n), func(it stream.Item) { process(it.Label) })
			return estimate.SignedRelErr(est(), float64(n))
		})
		abs := make([]float64, len(signed))
		for i, v := range signed {
			if v < 0 {
				abs[i] = -v
			} else {
				abs[i] = v
			}
		}
		tbl2.AddRow(a.sketch, a.hashing, F(core.Median(signed), 4), F(estimate.Summarize(abs, 0).P95, 4))
	}
	return []*Table{tbl, tbl2}, nil
}
