package harness

import (
	"math"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/stream"
)

func init() {
	Register(Experiment{
		ID:    "E9",
		Title: "Predicate counts over the coordinated sample",
		Claim: "The sample of the union answers arbitrary predicate counts at query time; like any sample-based estimator, the error scales as 1/sqrt(selectivity · c).",
		Run:   runE9,
	})
}

func runE9(cfg Config) ([]*Table, error) {
	selectivities := []float64{0.5, 0.1, 0.01, 0.001}
	if cfg.Quick {
		selectivities = []float64{0.5, 0.1, 0.01}
	}
	trials := cfg.trials(60)
	truth := cfg.scale(1_000_000)
	const capacity = 4096

	tbl := NewTable("e9_predicate_selectivity",
		"Relative error of predicate counts vs selectivity (capacity 4096)",
		"predicted = sqrt(1/(sel·c))·k for the 1/sqrt law (unnormalized shape guide): observed medians should grow ~3x per 10x selectivity drop. At sel=0.001 only ~4 sampled labels match — the error is honest about it.",
		"selectivity", "matching_truth", "median_err", "p95_err", "shape_1/sqrt(sel*c)")

	for _, sel := range selectivities {
		// Predicate: label's residue class selects ~sel of the labels.
		mod := uint64(math.Round(1 / sel))
		pred := func(l uint64) bool { return l%mod == 0 }
		matching := 0
		for l := uint64(0); l < uint64(truth); l++ {
			if pred(l) {
				matching++
			}
		}
		errs := estimate.RunTrials(trials, cfg.Seed+mod, func(seed uint64) float64 {
			s := core.NewSampler(core.Config{Capacity: capacity, Seed: seed})
			stream.Feed(stream.NewSequential(truth), func(it stream.Item) { s.Process(it.Label) })
			return estimate.RelErr(s.EstimateCountWhere(pred), float64(matching))
		})
		sum := estimate.Summarize(errs, 0)
		tbl.AddRow(F(sel, 3), I(matching), F(sum.Median, 4), F(sum.P95, 4),
			F(math.Sqrt(1/(sel*capacity)), 4))
	}
	return []*Table{tbl}, nil
}
