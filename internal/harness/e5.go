package harness

import (
	"time"

	"repro/internal/core"
	"repro/internal/sketch/ams"
	"repro/internal/sketch/bjkst"
	"repro/internal/sketch/fm"
	"repro/internal/sketch/kmv"
	"repro/internal/sketch/ll"
	"repro/internal/stream"
)

func init() {
	Register(Experiment{
		ID:    "E5",
		Title: "Per-item processing time",
		Claim: "GT processing is O(1) expected amortized per item (one pairwise hash + a map probe); per-item cost should be flat in the stream length. (The root bench_test.go measures the same quantities under testing.B.)",
		Run:   runE5,
	})
}

func runE5(cfg Config) ([]*Table, error) {
	n := cfg.scale(2_000_000)
	universe := uint64(n)

	type timedSketch struct {
		name    string
		process func(uint64)
	}
	gt := core.NewSampler(core.Config{Capacity: 1024, Seed: cfg.Seed})
	gtEst := core.NewEstimator(core.EstimatorConfig{Capacity: 1024, Copies: 5, Seed: cfg.Seed})
	fmS := fm.New(256, cfg.Seed)
	amsS := ams.New(15, cfg.Seed)
	kmvS := kmv.New(1024, cfg.Seed)
	bjS := bjkst.New(1024, cfg.Seed)
	llS := ll.New(1024, cfg.Seed)
	roster := []timedSketch{
		{"gt (1 copy, c=1024)", gt.Process},
		{"gt (5 copies)", gtEst.Process},
		{"fm-strong (m=256)", fmS.Process},
		{"ams (15 copies)", amsS.Process},
		{"kmv (k=1024)", kmvS.Process},
		{"bjkst (c=1024)", bjS.Process},
		{"hll-strong (m=1024)", llS.Process},
	}

	tbl := NewTable("e5_per_item_time",
		"Wall-clock processing cost per item (uniform random labels)",
		"ns/item includes hashing, sampling and any level raises, amortized over the stream. Multi-copy sketches scale linearly in copies, as the paper's time bound says.",
		"sketch", "items", "ns_per_item", "million_items_per_sec")

	// Pre-materialize the labels so generator cost is excluded.
	labels := make([]uint64, n)
	i := 0
	stream.Feed(stream.NewUniform(universe, n, cfg.Seed^0xabc), func(it stream.Item) {
		labels[i] = it.Label
		i++
	})

	for _, sk := range roster {
		start := time.Now()
		for _, l := range labels {
			sk.process(l)
		}
		elapsed := time.Since(start)
		nsPerItem := float64(elapsed.Nanoseconds()) / float64(n)
		tbl.AddRow(sk.name, I(n), F(nsPerItem, 1), F(1e3/nsPerItem, 1))
	}

	// Amortization sweep: GT cost per item across stream lengths. The
	// claim is flatness: level raises are amortized, so per-item cost
	// must not grow with n.
	tbl2 := NewTable("e5_gt_amortization",
		"GT per-item cost vs stream length (capacity 1024)",
		"O(1) expected amortized: the ns/item column should be roughly flat as n grows 100x.",
		"n", "ns_per_item")
	for _, size := range []int{n / 100, n / 10, n} {
		s := core.NewSampler(core.Config{Capacity: 1024, Seed: cfg.Seed ^ 0x77})
		start := time.Now()
		for _, l := range labels[:size] {
			s.Process(l)
		}
		elapsed := time.Since(start)
		tbl2.AddRow(I(size), F(float64(elapsed.Nanoseconds())/float64(size), 1))
	}
	return []*Table{tbl, tbl2}, nil
}
