package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
)

// Table is one experiment output: a titled grid with headers, rendered
// as aligned text for the terminal and as CSV for downstream plotting.
type Table struct {
	// ID slug used for CSV filenames, e.g. "e3_union_overlap".
	ID string
	// Title is the human heading, e.g. the figure/table it reproduces.
	Title string
	// Note explains how to read the table (what the paper claims and
	// what shape to look for).
	Note    string
	Headers []string
	Rows    [][]string
}

// NewTable constructs a table with the given identity and headers.
func NewTable(id, title, note string, headers ...string) *Table {
	return &Table{ID: id, Title: title, Note: note, Headers: headers}
}

// AddRow appends a row; it panics if the cell count does not match the
// headers (an experiment bug, caught loudly).
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("harness: table %s row has %d cells, want %d", t.ID, len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\n## %s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "   %s\n", t.Note); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range t.Headers {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, row := range t.Rows {
		for i, c := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, c)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteCSV renders the table as CSV (headers first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Cell formatting helpers, so experiment code reads declaratively.

// F formats a float with the given decimal places.
func F(x float64, places int) string {
	return strconv.FormatFloat(x, 'f', places, 64)
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(x float64) string {
	return strconv.FormatFloat(100*x, 'f', 1, 64) + "%"
}

// I formats an integer.
func I[T ~int | ~int64 | ~uint64](x T) string {
	return strconv.FormatInt(int64(x), 10)
}

// Bytes formats a byte count human-readably (B / KiB / MiB).
func Bytes(n int64) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%d B", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	}
}
