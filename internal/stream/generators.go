package stream

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hashing"
)

// Uniform generates n items whose labels are uniform over
// [0, universe); duplication arises naturally when n approaches or
// exceeds the universe size. Values are 1.
type Uniform struct {
	universe uint64
	n        int
	seed     uint64
	rng      *hashing.Xoshiro256
	emitted  int
}

// NewUniform returns a uniform generator. universe and n must be ≥ 1.
func NewUniform(universe uint64, n int, seed uint64) *Uniform {
	if universe < 1 || n < 1 {
		panic(fmt.Sprintf("stream: NewUniform(universe=%d, n=%d) out of range", universe, n))
	}
	u := &Uniform{universe: universe, n: n, seed: seed}
	u.Reset()
	return u
}

// Next implements Source.
func (u *Uniform) Next() (Item, bool) {
	if u.emitted >= u.n {
		return Item{}, false
	}
	u.emitted++
	return Item{Label: u.rng.Uint64n(u.universe), Value: 1}, true
}

// Reset implements Source.
func (u *Uniform) Reset() {
	u.rng = hashing.NewXoshiro256(u.seed)
	u.emitted = 0
}

// Sequential generates labels 0, 1, …, n-1, each exactly once. It is
// the structured worst case for sketches that assume strong hashing:
// an affine pairwise hash turns it into an arithmetic progression.
type Sequential struct {
	n    int
	next int
	// Stride spaces the labels (label = i*Stride + Offset), default 1.
	stride, offset uint64
}

// NewSequential returns a sequential generator over n labels.
func NewSequential(n int) *Sequential {
	return NewSequentialStride(n, 1, 0)
}

// NewSequentialStride generates labels offset, offset+stride, … .
func NewSequentialStride(n int, stride, offset uint64) *Sequential {
	if n < 1 || stride == 0 {
		panic(fmt.Sprintf("stream: NewSequentialStride(n=%d, stride=%d) out of range", n, stride))
	}
	return &Sequential{n: n, stride: stride, offset: offset}
}

// Next implements Source.
func (s *Sequential) Next() (Item, bool) {
	if s.next >= s.n {
		return Item{}, false
	}
	label := uint64(s.next)*s.stride + s.offset
	s.next++
	return Item{Label: label, Value: 1}, true
}

// Reset implements Source.
func (s *Sequential) Reset() { s.next = 0 }

// Zipf generates n items with labels in [0, universe) drawn from a
// Zipf distribution: Pr[label = r] ∝ 1/(r+1)^s. Skew s = 0 reduces to
// uniform; s ≈ 1 models heavy-hitter-dominated network traffic; large
// s concentrates almost all traffic on a few labels. Sampling is by
// inverse CDF with binary search over a precomputed table, so setup is
// O(universe) and each item costs O(log universe).
type Zipf struct {
	universe uint64
	n        int
	s        float64
	seed     uint64
	cum      []float64
	rng      *hashing.Xoshiro256
	emitted  int
}

// NewZipf returns a Zipf generator. universe must be in [1, 2^26] (the
// CDF table is materialized), n ≥ 1, and s ≥ 0.
func NewZipf(universe uint64, n int, s float64, seed uint64) *Zipf {
	if universe < 1 || universe > 1<<26 || n < 1 || s < 0 {
		panic(fmt.Sprintf("stream: NewZipf(universe=%d, n=%d, s=%v) out of range", universe, n, s))
	}
	z := &Zipf{universe: universe, n: n, s: s, seed: seed}
	z.cum = make([]float64, universe)
	total := 0.0
	for r := uint64(0); r < universe; r++ {
		total += 1.0 / math.Pow(float64(r+1), s)
		z.cum[r] = total
	}
	// Normalize to [0, 1] so lookups can use a uniform float directly.
	for r := range z.cum {
		z.cum[r] /= total
	}
	z.Reset()
	return z
}

// Next implements Source.
func (z *Zipf) Next() (Item, bool) {
	if z.emitted >= z.n {
		return Item{}, false
	}
	z.emitted++
	u := z.rng.Float64()
	r := sort.SearchFloat64s(z.cum, u)
	if r >= len(z.cum) {
		r = len(z.cum) - 1
	}
	return Item{Label: uint64(r), Value: 1}, true
}

// Reset implements Source.
func (z *Zipf) Reset() {
	z.rng = hashing.NewXoshiro256(z.seed)
	z.emitted = 0
}

// WithValues wraps a Source, replacing every item's value with
// fn(label). Because the value is a pure function of the label, the
// duplicate-insensitive fixed-value-per-label contract holds by
// construction.
type WithValues struct {
	src Source
	fn  func(label uint64) uint64
}

// NewWithValues builds the wrapper.
func NewWithValues(src Source, fn func(label uint64) uint64) *WithValues {
	return &WithValues{src: src, fn: fn}
}

// Next implements Source.
func (w *WithValues) Next() (Item, bool) {
	it, ok := w.src.Next()
	if !ok {
		return Item{}, false
	}
	it.Value = w.fn(it.Label)
	return it, true
}

// Reset implements Source.
func (w *WithValues) Reset() { w.src.Reset() }

// Shuffled materializes src and replays it in a seed-determined random
// order — used by order-insensitivity tests.
type Shuffled struct {
	*SliceSource
}

// NewShuffled builds the shuffled replay.
func NewShuffled(src Source, seed uint64) *Shuffled {
	items := Collect(src)
	r := hashing.NewXoshiro256(seed)
	for i := len(items) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		items[i], items[j] = items[j], items[i]
	}
	return &Shuffled{SliceSource: FromSlice(items)}
}
