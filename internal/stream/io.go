package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// On-disk stream format ("GTS1"): a 4-byte magic, a uvarint item
// count, then per item a uvarint label and a uvarint value. The format
// is what cmd/streamgen writes and cmd/unioncount reads.

var streamMagic = [4]byte{'G', 'T', 'S', '1'}

// ErrBadStreamFile is returned when decoding a malformed stream file.
var ErrBadStreamFile = errors.New("stream: malformed stream file")

// Write encodes all items of src to w.
func Write(w io.Writer, src Source) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(streamMagic[:]); err != nil {
		return err
	}
	items := Collect(src)
	buf := binary.AppendUvarint(nil, uint64(len(items)))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for _, it := range items {
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, it.Label)
		buf = binary.AppendUvarint(buf, it.Value)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes src to the named file.
func WriteFile(path string, src Source) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, src); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read decodes a full stream from r into memory and returns it as a
// Source.
func Read(r io.Reader) (*SliceSource, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadStreamFile, err)
	}
	if magic != streamMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadStreamFile, magic[:])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated count", ErrBadStreamFile)
	}
	const maxItems = 1 << 32
	if count > maxItems {
		return nil, fmt.Errorf("%w: implausible item count %d", ErrBadStreamFile, count)
	}
	// Cap the initial allocation: the declared count is untrusted
	// (each real item contributes at least two bytes, but r is a
	// stream whose length is unknown here), so start small and let
	// append grow toward the declared count.
	initial := count
	if initial > 1<<16 {
		initial = 1 << 16
	}
	items := make([]Item, 0, initial)
	for i := uint64(0); i < count; i++ {
		label, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated item %d", ErrBadStreamFile, i)
		}
		value, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated item %d", ErrBadStreamFile, i)
		}
		items = append(items, Item{Label: label, Value: value})
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data", ErrBadStreamFile)
	}
	return FromSlice(items), nil
}

// ReadFile reads a stream from the named file.
func ReadFile(path string) (*SliceSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
