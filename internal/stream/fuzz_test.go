package stream

import (
	"bytes"
	"testing"
)

// FuzzRead checks the stream-file decoder on arbitrary bytes: it must
// error or produce a replayable source, never panic.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, FromLabels([]uint64{1, 2, 3, 1 << 60})); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("GTS1"))
	f.Add(buf.Bytes()[:buf.Len()-1])
	f.Fuzz(func(t *testing.T, data []byte) {
		src, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A decoded source must replay identically.
		a := Collect(src)
		b := Collect(src)
		if len(a) != len(b) {
			t.Fatal("replay changed length")
		}
		var out bytes.Buffer
		if err := Write(&out, src); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}
