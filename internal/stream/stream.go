// Package stream provides the workload substrate for the experiments:
// the data-stream model (labeled items with optional values), synthetic
// generators standing in for the network-monitoring traces the paper
// targets (uniform, sequential, Zipf-skewed, and multi-site unions with
// controlled overlap), partitioners that split one logical stream
// across sites, and a binary on-disk stream format.
//
// All generators are deterministic functions of their seed, so every
// experiment in the repository is exactly reproducible.
package stream

// Item is one stream element: a label (the identity that distinct
// counting is over) and a value (used by SumDistinct aggregates; 1 when
// unused). In the network-monitoring reading, the label is a flow or
// host identifier observed on a link.
type Item struct {
	Label uint64
	Value uint64
}

// Source is a resettable stream of items. Next returns the next item
// and true, or a zero Item and false after the last one. Reset rewinds
// the source to its beginning; a reset source replays the identical
// item sequence.
type Source interface {
	Next() (Item, bool)
	Reset()
}

// Collect drains src into a slice (resetting it first) and returns the
// items in stream order. Intended for tests and small experiments; the
// generators themselves never materialize their streams.
func Collect(src Source) []Item {
	src.Reset()
	var items []Item
	for {
		it, ok := src.Next()
		if !ok {
			return items
		}
		items = append(items, it)
	}
}

// Feed resets src and applies fn to every item in order.
func Feed(src Source, fn func(Item)) {
	src.Reset()
	for {
		it, ok := src.Next()
		if !ok {
			return
		}
		fn(it)
	}
}

// Count resets src and returns its length.
func Count(src Source) int {
	n := 0
	Feed(src, func(Item) { n++ })
	return n
}

// SliceSource adapts a concrete item slice into a Source.
type SliceSource struct {
	items []Item
	pos   int
}

// FromSlice returns a Source replaying items. The slice is not copied.
func FromSlice(items []Item) *SliceSource {
	return &SliceSource{items: items}
}

// FromLabels returns a Source over bare labels (value 1 each).
func FromLabels(labels []uint64) *SliceSource {
	items := make([]Item, len(labels))
	for i, l := range labels {
		items[i] = Item{Label: l, Value: 1}
	}
	return &SliceSource{items: items}
}

// Next implements Source.
func (s *SliceSource) Next() (Item, bool) {
	if s.pos >= len(s.items) {
		return Item{}, false
	}
	it := s.items[s.pos]
	s.pos++
	return it, true
}

// Reset implements Source.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of items in the source.
func (s *SliceSource) Len() int { return len(s.items) }

// Concat returns a Source that replays each of srcs in order — the
// logical concatenation used to compute union ground truths.
type Concat struct {
	srcs []Source
	idx  int
}

// NewConcat builds a concatenation of srcs.
func NewConcat(srcs ...Source) *Concat {
	c := &Concat{srcs: srcs}
	c.Reset()
	return c
}

// Next implements Source.
func (c *Concat) Next() (Item, bool) {
	for c.idx < len(c.srcs) {
		if it, ok := c.srcs[c.idx].Next(); ok {
			return it, true
		}
		c.idx++
	}
	return Item{}, false
}

// Reset implements Source.
func (c *Concat) Reset() {
	c.idx = 0
	for _, s := range c.srcs {
		s.Reset()
	}
}
