package stream

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	src := NewWithValues(NewUniform(500, 3000, 9), func(l uint64) uint64 { return l%9 + 1 })
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Collect(src)
	items := Collect(got)
	if len(items) != len(want) {
		t.Fatalf("lengths %d vs %d", len(items), len(want))
	}
	for i := range items {
		if items[i] != want[i] {
			t.Fatalf("item %d: %v vs %v", i, items[i], want[i])
		}
	}
}

func TestWriteReadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, FromSlice(nil)); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("len = %d", got.Len())
	}
}

func TestReadErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, FromLabels([]uint64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), good[4:]...),
		"truncated": good[:len(good)-1],
		"trailing":  append(append([]byte{}, good...), 0),
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrBadStreamFile) {
			t.Errorf("%s: err = %v, want ErrBadStreamFile", name, err)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.gts")
	src := NewUniform(100, 1000, 4)
	if err := WriteFile(path, src); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1000 {
		t.Errorf("len = %d", got.Len())
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.gts")); err == nil {
		t.Error("missing file read succeeded")
	}
}
