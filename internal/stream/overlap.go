package stream

import (
	"fmt"

	"repro/internal/hashing"
)

// OverlapConfig describes a t-site union workload with controlled
// cross-site duplication — the workload family for experiment E3. Each
// site emits PerSite items; with probability Overlap an item's label is
// drawn from a core universe shared by all sites, otherwise from the
// site's private universe. Overlap = 0 makes the sites disjoint;
// Overlap = 1 makes every site draw from the same universe, so the
// union is no larger than one site's distinct set.
//
// This is the synthetic stand-in for the paper's motivating scenario:
// t network monitors that each see partially overlapping traffic (the
// same flows traverse multiple links), where summing per-link distinct
// counts overcounts and only a union-aware estimator is correct.
type OverlapConfig struct {
	Sites       int     // number of sites (t ≥ 1)
	PerSite     int     // items per site stream
	CoreSize    uint64  // size of the shared label universe
	PrivateSize uint64  // size of each site's private universe
	Overlap     float64 // probability an item is drawn from the core
	Seed        uint64
}

// validate panics on nonsense parameters (programming errors).
func (c OverlapConfig) validate() {
	if c.Sites < 1 || c.PerSite < 1 || c.CoreSize < 1 || c.PrivateSize < 1 ||
		c.Overlap < 0 || c.Overlap > 1 {
		panic(fmt.Sprintf("stream: invalid OverlapConfig %+v", c))
	}
}

// privateBase returns the first label of site i's private region.
// Private regions start above the core and do not overlap each other.
func (c OverlapConfig) privateBase(site int) uint64 {
	return c.CoreSize + uint64(site)*c.PrivateSize
}

// Build returns one Source per site.
func (c OverlapConfig) Build() []Source {
	c.validate()
	srcs := make([]Source, c.Sites)
	for i := range srcs {
		srcs[i] = &overlapSource{cfg: c, site: i}
		srcs[i].Reset()
	}
	return srcs
}

// overlapSource is the per-site generator.
type overlapSource struct {
	cfg     OverlapConfig
	site    int
	rng     *hashing.Xoshiro256
	emitted int
}

// Next implements Source.
func (o *overlapSource) Next() (Item, bool) {
	if o.emitted >= o.cfg.PerSite {
		return Item{}, false
	}
	o.emitted++
	var label uint64
	if o.rng.Float64() < o.cfg.Overlap {
		label = o.rng.Uint64n(o.cfg.CoreSize)
	} else {
		label = o.cfg.privateBase(o.site) + o.rng.Uint64n(o.cfg.PrivateSize)
	}
	return Item{Label: label, Value: 1}, true
}

// Reset implements Source.
func (o *overlapSource) Reset() {
	// Decorrelate sites while keeping everything a function of Seed.
	o.rng = hashing.NewXoshiro256(hashing.Mix64(o.cfg.Seed + uint64(o.site)*0x9e3779b97f4a7c15))
	o.emitted = 0
}

// Partition splits one logical stream across sites — the other
// distributed workload shape (a load balancer spraying one stream over
// t monitors). Policy selects how items are routed.
type Partition struct {
	srcs []Source
}

// PartitionPolicy routes item index/label to a site in [0, t).
type PartitionPolicy func(index int, label uint64, t int) int

// RoundRobin routes item i to site i mod t.
func RoundRobin(index int, _ uint64, t int) int { return index % t }

// ByLabelHash routes a label to a fixed site (so sites see disjoint
// label sets). The split is by a mixed label hash, not raw modulo, to
// avoid correlating the routing with the label structure.
func ByLabelHash(_ int, label uint64, t int) int {
	return int(hashing.Mix64(label) % uint64(t))
}

// SplitSource materializes src and splits it over t sites by policy,
// returning one Source per site.
func SplitSource(src Source, t int, policy PartitionPolicy) []Source {
	if t < 1 {
		panic(fmt.Sprintf("stream: SplitSource with t=%d", t))
	}
	parts := make([][]Item, t)
	i := 0
	Feed(src, func(it Item) {
		site := policy(i, it.Label, t)
		parts[site] = append(parts[site], it)
		i++
	})
	srcs := make([]Source, t)
	for j := range srcs {
		srcs[j] = FromSlice(parts[j])
	}
	return srcs
}
