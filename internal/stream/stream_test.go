package stream

import (
	"testing"

	"repro/internal/exact"
)

func TestFromSlice(t *testing.T) {
	items := []Item{{1, 1}, {2, 5}, {1, 1}}
	s := FromSlice(items)
	got := Collect(s)
	if len(got) != 3 || got[1].Value != 5 {
		t.Errorf("Collect = %v", got)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	// Collect resets, so a second Collect sees everything again.
	if len(Collect(s)) != 3 {
		t.Error("replay after Collect failed")
	}
}

func TestFromLabels(t *testing.T) {
	s := FromLabels([]uint64{7, 8})
	items := Collect(s)
	if len(items) != 2 || items[0] != (Item{7, 1}) || items[1] != (Item{8, 1}) {
		t.Errorf("items = %v", items)
	}
}

func TestCountAndFeed(t *testing.T) {
	s := FromLabels([]uint64{1, 2, 3})
	if Count(s) != 3 {
		t.Error("Count wrong")
	}
	sum := uint64(0)
	Feed(s, func(it Item) { sum += it.Label })
	if sum != 6 {
		t.Errorf("Feed sum = %d", sum)
	}
}

func TestConcat(t *testing.T) {
	a := FromLabels([]uint64{1, 2})
	b := FromLabels([]uint64{3})
	c := NewConcat(a, b)
	items := Collect(c)
	if len(items) != 3 || items[2].Label != 3 {
		t.Errorf("concat = %v", items)
	}
	// Replays after reset.
	if len(Collect(c)) != 3 {
		t.Error("concat replay failed")
	}
	if len(Collect(NewConcat())) != 0 {
		t.Error("empty concat not empty")
	}
}

func TestUniformDeterministicAndInRange(t *testing.T) {
	a := NewUniform(100, 1000, 7)
	b := NewUniform(100, 1000, 7)
	ia, ib := Collect(a), Collect(b)
	if len(ia) != 1000 {
		t.Fatalf("len = %d", len(ia))
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatal("same seed produced different streams")
		}
		if ia[i].Label >= 100 {
			t.Fatalf("label %d out of universe", ia[i].Label)
		}
	}
}

func TestUniformCoversUniverse(t *testing.T) {
	d := exact.NewDistinct()
	Feed(NewUniform(50, 5000, 3), func(it Item) { d.Process(it.Label) })
	if d.Count() != 50 {
		t.Errorf("distinct = %d, want 50 (coupon collector)", d.Count())
	}
}

func TestSequential(t *testing.T) {
	s := NewSequential(5)
	items := Collect(s)
	for i, it := range items {
		if it.Label != uint64(i) {
			t.Fatalf("item %d label %d", i, it.Label)
		}
	}
	st := NewSequentialStride(3, 10, 100)
	items = Collect(st)
	want := []uint64{100, 110, 120}
	for i, it := range items {
		if it.Label != want[i] {
			t.Fatalf("stride item %d = %d, want %d", i, it.Label, want[i])
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// Higher skew concentrates mass on low ranks.
	countTop := func(s float64) int {
		top := 0
		Feed(NewZipf(10000, 20000, s, 5), func(it Item) {
			if it.Label < 10 {
				top++
			}
		})
		return top
	}
	flat := countTop(0)
	skewed := countTop(1.2)
	verySkewed := countTop(2.5)
	if !(flat < skewed && skewed < verySkewed) {
		t.Errorf("top-10 mass not increasing with skew: %d, %d, %d", flat, skewed, verySkewed)
	}
	// s=0 is uniform: top-10 of 10000 labels over 20000 items ≈ 20.
	if flat > 100 {
		t.Errorf("uniform top-10 count %d too high", flat)
	}
	// s=2.5: the vast majority of items hit the top 10.
	if verySkewed < 15000 {
		t.Errorf("skewed top-10 count %d too low", verySkewed)
	}
}

func TestZipfDeterministicAndRange(t *testing.T) {
	a, b := NewZipf(1000, 5000, 1.0, 9), NewZipf(1000, 5000, 1.0, 9)
	ia, ib := Collect(a), Collect(b)
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatal("same seed differs")
		}
		if ia[i].Label >= 1000 {
			t.Fatalf("label %d out of range", ia[i].Label)
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	cases := map[string]func(){
		"uniform universe": func() { NewUniform(0, 1, 1) },
		"uniform n":        func() { NewUniform(1, 0, 1) },
		"sequential n":     func() { NewSequential(0) },
		"stride zero":      func() { NewSequentialStride(1, 0, 0) },
		"zipf universe":    func() { NewZipf(0, 1, 1, 1) },
		"zipf huge":        func() { NewZipf(1<<30, 1, 1, 1) },
		"zipf skew":        func() { NewZipf(10, 10, -1, 1) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWithValues(t *testing.T) {
	src := NewWithValues(NewSequential(10), func(l uint64) uint64 { return l * 2 })
	items := Collect(src)
	for _, it := range items {
		if it.Value != it.Label*2 {
			t.Fatalf("value %d for label %d", it.Value, it.Label)
		}
	}
}

func TestShuffledSameMultiset(t *testing.T) {
	orig := Collect(NewSequential(100))
	sh := Collect(NewShuffled(NewSequential(100), 3))
	if len(sh) != len(orig) {
		t.Fatal("length changed")
	}
	seen := map[uint64]int{}
	for _, it := range sh {
		seen[it.Label]++
	}
	for _, it := range orig {
		if seen[it.Label] != 1 {
			t.Fatalf("label %d count %d", it.Label, seen[it.Label])
		}
	}
	// Deterministic and actually shuffled.
	sh2 := Collect(NewShuffled(NewSequential(100), 3))
	moved := false
	for i := range sh {
		if sh[i] != sh2[i] {
			t.Fatal("shuffle not deterministic")
		}
		if sh[i] != orig[i] {
			moved = true
		}
	}
	if !moved {
		t.Error("shuffle was the identity")
	}
}
