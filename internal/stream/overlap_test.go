package stream

import (
	"testing"

	"repro/internal/exact"
)

func TestOverlapDisjoint(t *testing.T) {
	cfg := OverlapConfig{
		Sites: 4, PerSite: 2000, CoreSize: 100, PrivateSize: 500,
		Overlap: 0, Seed: 1,
	}
	srcs := cfg.Build()
	perSite := make([]*exact.Distinct, len(srcs))
	union := exact.NewDistinct()
	for i, s := range srcs {
		perSite[i] = exact.NewDistinct()
		Feed(s, func(it Item) {
			perSite[i].Process(it.Label)
			union.Process(it.Label)
		})
	}
	sum := 0
	for _, d := range perSite {
		sum += d.Count()
	}
	if sum != union.Count() {
		t.Errorf("overlap=0: sum of per-site %d != union %d", sum, union.Count())
	}
}

func TestOverlapFull(t *testing.T) {
	cfg := OverlapConfig{
		Sites: 4, PerSite: 5000, CoreSize: 200, PrivateSize: 500,
		Overlap: 1, Seed: 2,
	}
	union := exact.NewDistinct()
	for _, s := range cfg.Build() {
		Feed(s, func(it Item) { union.Process(it.Label) })
	}
	// Everything drawn from the 200-label core (coupon-collected).
	if union.Count() != 200 {
		t.Errorf("overlap=1: union = %d, want 200", union.Count())
	}
}

func TestOverlapPartialDuplication(t *testing.T) {
	cfg := OverlapConfig{
		Sites: 8, PerSite: 4000, CoreSize: 1000, PrivateSize: 1000,
		Overlap: 0.5, Seed: 3,
	}
	perSiteSum := 0
	union := exact.NewDistinct()
	for _, s := range cfg.Build() {
		d := exact.NewDistinct()
		Feed(s, func(it Item) {
			d.Process(it.Label)
			union.Process(it.Label)
		})
		perSiteSum += d.Count()
	}
	if perSiteSum <= union.Count() {
		t.Errorf("expected per-site sum %d to overcount union %d", perSiteSum, union.Count())
	}
}

func TestOverlapDeterministicPerSite(t *testing.T) {
	cfg := OverlapConfig{Sites: 3, PerSite: 100, CoreSize: 10, PrivateSize: 10, Overlap: 0.5, Seed: 7}
	a, b := cfg.Build(), cfg.Build()
	for i := range a {
		ia, ib := Collect(a[i]), Collect(b[i])
		for j := range ia {
			if ia[j] != ib[j] {
				t.Fatalf("site %d differs at %d", i, j)
			}
		}
	}
	// Different sites differ.
	s0, s1 := Collect(a[0]), Collect(a[1])
	same := 0
	for j := range s0 {
		if s0[j] == s1[j] {
			same++
		}
	}
	if same == len(s0) {
		t.Error("two sites produced identical streams")
	}
}

func TestOverlapValidate(t *testing.T) {
	bad := []OverlapConfig{
		{Sites: 0, PerSite: 1, CoreSize: 1, PrivateSize: 1},
		{Sites: 1, PerSite: 0, CoreSize: 1, PrivateSize: 1},
		{Sites: 1, PerSite: 1, CoreSize: 0, PrivateSize: 1},
		{Sites: 1, PerSite: 1, CoreSize: 1, PrivateSize: 0},
		{Sites: 1, PerSite: 1, CoreSize: 1, PrivateSize: 1, Overlap: -0.1},
		{Sites: 1, PerSite: 1, CoreSize: 1, PrivateSize: 1, Overlap: 1.1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			cfg.Build()
		}()
	}
}

func TestSplitSourceRoundRobin(t *testing.T) {
	srcs := SplitSource(NewSequential(10), 3, RoundRobin)
	if len(srcs) != 3 {
		t.Fatalf("got %d sources", len(srcs))
	}
	got := Collect(srcs[0])
	want := []uint64{0, 3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("site 0 items = %v", got)
	}
	for i := range want {
		if got[i].Label != want[i] {
			t.Errorf("site 0 item %d = %d, want %d", i, got[i].Label, want[i])
		}
	}
}

func TestSplitSourceByLabelHashDisjoint(t *testing.T) {
	// Each label goes to exactly one site, so per-site distinct sets
	// are disjoint and their sizes sum to the total.
	srcs := SplitSource(NewUniform(1000, 20000, 5), 4, ByLabelHash)
	union := exact.NewDistinct()
	sum := 0
	for _, s := range srcs {
		d := exact.NewDistinct()
		Feed(s, func(it Item) {
			d.Process(it.Label)
			union.Process(it.Label)
		})
		sum += d.Count()
	}
	if sum != union.Count() {
		t.Errorf("hash split not disjoint: %d vs %d", sum, union.Count())
	}
	if union.Count() != 1000 {
		t.Errorf("union = %d, want 1000", union.Count())
	}
}

func TestSplitSourcePreservesAllItems(t *testing.T) {
	total := 0
	for _, s := range SplitSource(NewSequential(1001), 7, RoundRobin) {
		total += Count(s)
	}
	if total != 1001 {
		t.Errorf("split lost items: %d", total)
	}
}

func TestSplitSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for t=0")
		}
	}()
	SplitSource(NewSequential(5), 0, RoundRobin)
}
