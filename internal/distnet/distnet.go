// Package distnet runs a distsim.Protocol over a real network: the
// referee becomes a unionstreamd coordinator on a loopback TCP socket,
// sites become goroutines that dial it and push their one-shot
// envelope messages through internal/client, and the answers come
// back as wire queries. The coordinator merges by registered sketch
// kind, so any protocol whose sites emit sketch envelopes (GT, the
// baselines, exact) runs unchanged; protocols with private message
// formats (Uncoordinated's local-estimate pairs) are in-process only.
// Because every sketch in this repository merges order-independently,
// the network run's estimates are identical to the in-process
// simulator's on the same sources — the equivalence the end-to-end
// tests assert byte-for-byte — while the exported
// distsim.ByteAccountant keeps the communication accounting
// comparable between the two transports.
package distnet

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/distsim"
	"repro/internal/server"

	// Register every sketch kind so the in-process coordinator can
	// open whatever envelopes the protocol's sites emit.
	_ "repro/internal/sketch/kinds"
	"repro/internal/stream"
	"repro/internal/wire"
)

// Options tunes a network run. The zero value is fine for tests.
type Options struct {
	// Attempts and backoff shape per-site push retries; zero values
	// take the client defaults.
	Attempts    int
	BackoffBase time.Duration
	// IOTimeout bounds each client round trip; zero takes the client
	// default. Chaos runs shrink it so swallowed acks fail fast.
	IOTimeout time.Duration
	// ShutdownTimeout bounds the coordinator drain (default 10s).
	ShutdownTimeout time.Duration
	// Intercept, when set, rewrites the address every client dials: it
	// receives the coordinator's real listen address and returns the
	// address to use instead. The chaos suite uses it to route all
	// site and query traffic through a faultnet proxy.
	Intercept func(serverAddr string) (dialAddr string, err error)
}

// Run executes the protocol over loopback TCP: it starts a
// coordinator daemon on an ephemeral port, runs every site against its
// source (in parallel goroutines when concurrent is true), pushes each
// site's message over a real socket, queries the estimates, and shuts
// the daemon down. The returned Result has the same shape and — for
// this repository's order-independent protocols — the same values as
// distsim.Run on the same sources.
func Run(p distsim.Protocol, sources []stream.Source, concurrent bool) (*distsim.Result, error) {
	return RunOptions(p, sources, concurrent, Options{})
}

// RunOptions is Run with explicit tuning.
func RunOptions(p distsim.Protocol, sources []stream.Source, concurrent bool, opts Options) (*distsim.Result, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("distnet: no sources")
	}
	if opts.ShutdownTimeout <= 0 {
		opts.ShutdownTimeout = 10 * time.Second
	}

	srv := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("distnet: listen: %w", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), opts.ShutdownTimeout)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
	}()
	addr := ln.Addr().String()
	if opts.Intercept != nil {
		if addr, err = opts.Intercept(addr); err != nil {
			return nil, fmt.Errorf("distnet: intercept: %w", err)
		}
	}

	acct := distsim.NewByteAccountant()
	var items atomic.Int64

	runSite := func(i int, src stream.Source) error {
		sk := p.NewSite(i)
		var n int64
		stream.Feed(src, func(it stream.Item) {
			sk.Process(it)
			n++
		})
		msg, err := sk.Message()
		if err != nil {
			return fmt.Errorf("distnet: site %d: %w", i, err)
		}
		cl := client.New(client.Config{
			Addr:        addr,
			Attempts:    opts.Attempts,
			BackoffBase: opts.BackoffBase,
			IOTimeout:   opts.IOTimeout,
			JitterSeed:  int64(i) + 1,
		})
		if _, err := cl.Push(msg); err != nil {
			return fmt.Errorf("distnet: site %d push: %w", i, err)
		}
		acct.Record(i, len(msg))
		items.Add(n)
		return nil
	}

	if concurrent {
		errs := make([]error, len(sources))
		var wg sync.WaitGroup
		for i, src := range sources {
			wg.Add(1)
			go func(i int, src stream.Source) {
				defer wg.Done()
				errs[i] = runSite(i, src)
			}(i, src)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		for i, src := range sources {
			if err := runSite(i, src); err != nil {
				return nil, err
			}
		}
	}

	// Every push was acked, so every message is absorbed: query.
	cl := client.New(client.Config{
		Addr:        addr,
		Attempts:    opts.Attempts,
		BackoffBase: opts.BackoffBase,
		IOTimeout:   opts.IOTimeout,
		JitterSeed:  int64(len(sources)) + 1,
	})
	distinct, err := cl.Query(wire.Query{Kind: wire.QueryDistinct})
	if err != nil {
		return nil, fmt.Errorf("distnet: distinct query: %w", err)
	}
	sum, err := cl.Query(wire.Query{Kind: wire.QuerySum})
	if err != nil {
		return nil, fmt.Errorf("distnet: sum query: %w", err)
	}

	res := &distsim.Result{
		DistinctEstimate: distinct,
		SumEstimate:      sum,
		Stats: distsim.Stats{
			Sites:          len(sources),
			ItemsProcessed: items.Load(),
		},
	}
	acct.FillStats(&res.Stats)
	return res, nil
}
