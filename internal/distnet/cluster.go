package distnet

// Sharded-tier topology support: a parent coordinator with N child
// shards relaying into it, wired over real loopback sockets. The
// cluster suite uses it to pin the tree-of-referees equivalence — a
// sharded tier must converge to bit-identical state with a single
// coordinator that absorbed every site push directly — in fault-free
// runs, under seeded chaos on every hop, and across shard death and
// ring migration.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/server"
)

// ClusterOptions tunes a StartCluster topology. Shards is required;
// everything else has working defaults.
type ClusterOptions struct {
	// Shards is the child-coordinator count (>= 1).
	Shards int
	// RingSeed seeds the consistent-hash ring shared by pushers and
	// shards; VirtualNodes <= 0 takes the ring default.
	RingSeed     uint64
	VirtualNodes int
	// FlushInterval and FlushAfter shape each shard's relay; a zero
	// interval parks the timer (1h) so tests drive flushes explicitly.
	FlushInterval time.Duration
	FlushAfter    int64
	// Attempts, BackoffBase, and IOTimeout tune both the relay
	// upstream clients and the Sharded site client this topology hands
	// out; zero values take the client defaults.
	Attempts    int
	BackoffBase time.Duration
	IOTimeout   time.Duration
	// ShutdownTimeout bounds each coordinator drain (default 10s).
	ShutdownTimeout time.Duration
	// ParentWAL, when non-nil, makes the parent durable: its accepted
	// envelopes are logged and replayed across CrashParent /
	// RestartParent — the sharded leg of the WAL recovery matrix.
	ParentWAL *server.WALConfig
	// InterceptShard rewrites the address sites dial to reach shard i;
	// InterceptUpstream rewrites the parent address each shard's relay
	// dials. The chaos suite routes both hops through faultnet proxies.
	InterceptShard    func(shard int, addr string) (string, error)
	InterceptUpstream func(addr string) (string, error)
}

// Cluster is a running sharded tier: N relay shards, their parent,
// and the ring that routes merge groups across them.
type Cluster struct {
	Ring   *cluster.Ring
	Parent *server.Server
	// ParentAddr is the parent's real listen address (pre-intercept).
	ParentAddr string
	// ShardAddrs are the addresses sites should dial, index-aligned
	// with Servers — intercepted when InterceptShard is set.
	ShardAddrs []string
	Servers    []*server.Server

	opts      ClusterOptions
	serveErrs []chan error // parent at index 0, shard i at index i+1
	stopped   []bool
}

// StartCluster boots the parent and all shards on ephemeral loopback
// listeners. Callers must Close the cluster; on error everything
// already started is torn down.
func StartCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("distnet: cluster needs at least 1 shard, got %d", opts.Shards)
	}
	if opts.ShutdownTimeout <= 0 {
		opts.ShutdownTimeout = 10 * time.Second
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = time.Hour
	}
	c := &Cluster{
		Ring:      cluster.NewRing(opts.Shards, opts.VirtualNodes, opts.RingSeed),
		opts:      opts,
		serveErrs: make([]chan error, opts.Shards+1),
		stopped:   make([]bool, opts.Shards),
	}

	start := func(srv *server.Server, slot int) (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", fmt.Errorf("distnet: cluster listen: %w", err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		c.serveErrs[slot] = done
		return ln.Addr().String(), nil
	}

	c.Parent = server.New(server.Config{WAL: opts.ParentWAL})
	parentAddr, err := start(c.Parent, 0)
	if err != nil {
		return nil, err
	}
	c.ParentAddr = parentAddr
	upstream := parentAddr
	if opts.InterceptUpstream != nil {
		if upstream, err = opts.InterceptUpstream(parentAddr); err != nil {
			c.Close()
			return nil, fmt.Errorf("distnet: intercept upstream: %w", err)
		}
	}

	c.Servers = make([]*server.Server, opts.Shards)
	c.ShardAddrs = make([]string, opts.Shards)
	for i := range c.Servers {
		c.Servers[i] = server.New(server.Config{
			Relay: &server.RelayConfig{
				Upstream:      upstream,
				FlushInterval: opts.FlushInterval,
				FlushAfter:    opts.FlushAfter,
				Attempts:      opts.Attempts,
				BackoffBase:   opts.BackoffBase,
				IOTimeout:     opts.IOTimeout,
				JitterSeed:    int64(i) + 1,
			},
			Cluster: &server.ClusterInfo{
				Shard:    i,
				Shards:   opts.Shards,
				RingSeed: opts.RingSeed,
				Owner:    c.Ring.OwnerOfGroup,
			},
		})
		addr, err := start(c.Servers[i], i+1)
		if err != nil {
			c.Close()
			return nil, err
		}
		if opts.InterceptShard != nil {
			if addr, err = opts.InterceptShard(i, addr); err != nil {
				c.Close()
				return nil, fmt.Errorf("distnet: intercept shard %d: %w", i, err)
			}
		}
		c.ShardAddrs[i] = addr
	}
	return c, nil
}

// Client returns a ring-aware sharded client over the live topology.
// The parent coordinator is wired in as the cross-shard query target:
// expression queries whose leaves span shards route to it, where every
// stream's relayed union coexists.
func (c *Cluster) Client() (*client.Sharded, error) {
	base := client.Config{
		Attempts:    c.opts.Attempts,
		BackoffBase: c.opts.BackoffBase,
		IOTimeout:   c.opts.IOTimeout,
		JitterSeed:  int64(c.opts.Shards) + 1,
	}
	sc, err := client.NewSharded(c.Ring, c.ShardAddrs, base)
	if err != nil {
		return nil, err
	}
	parentCfg := base
	parentCfg.Addr = c.ParentAddr
	sc.SetParent(client.New(parentCfg))
	return sc, nil
}

// FlushAll runs one relay flush on every live shard concurrently and
// returns the total groups delivered upstream. Chaos runs call it in
// a retry loop: a flush that rode into a fault leaves its groups
// dirty, so repeating until PendingRelay drains is the at-least-once
// contract in action.
func (c *Cluster) FlushAll() (int, error) {
	type res struct {
		n   int
		err error
	}
	results := make([]chan res, len(c.Servers))
	for i, srv := range c.Servers {
		if c.stopped[i] {
			continue
		}
		ch := make(chan res, 1)
		results[i] = ch
		go func(srv *server.Server) {
			n, err := srv.FlushRelay()
			ch <- res{n, err}
		}(srv)
	}
	var total int
	var errs []error
	for i, ch := range results {
		if ch == nil {
			continue
		}
		r := <-ch
		total += r.n
		if r.err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, r.err))
		}
	}
	return total, errors.Join(errs...)
}

// PendingRelay sums the not-yet-relayed absorb count across live
// shards — zero means every absorbed sketch has been acked upstream.
func (c *Cluster) PendingRelay() int64 {
	var pending int64
	for i, srv := range c.Servers {
		if c.stopped[i] {
			continue
		}
		for _, g := range srv.Stats().Groups {
			pending += g.PendingRelay
		}
	}
	return pending
}

// StopShard shuts shard i down — its drain flush pushes everything
// still dirty upstream — and marks it dead for FlushAll/Close. The
// caller re-rings with Ring.Without(i) and migrates the dead shard's
// groups (still snapshottable: Shutdown drains, it does not erase).
func (c *Cluster) StopShard(i int) error {
	if c.stopped[i] {
		return nil
	}
	c.stopped[i] = true
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ShutdownTimeout)
	defer cancel()
	err := c.Servers[i].Shutdown(ctx)
	if serr := <-c.serveErrs[i+1]; err == nil {
		err = serr
	}
	return err
}

// CrashParent kills the parent coordinator in place — crash switch,
// no drain flush, no final WAL snapshot — and waits for its serve
// loop to exit. The shards stay up; their flushes fail and their
// groups stay dirty until RestartParent brings a recovered parent
// back on the same address.
func (c *Cluster) CrashParent() error {
	c.Parent.Abort()
	err := <-c.serveErrs[0]
	// Refill the slot with a satisfied channel so Close stays
	// well-formed even if the caller never restarts the parent.
	ch := make(chan error, 1)
	ch <- nil
	c.serveErrs[0] = ch
	return err
}

// RestartParent boots a fresh parent on the crashed one's address
// with the same configuration — WAL directory included, so the new
// daemon replays the old one's log before it accepts. The listen is
// retried briefly in case the kernel is still releasing the port. It
// returns once the parent has finished recovery, or returns the
// recovery error if the new daemon refused to serve (the wal/replay
// crash leg exercises exactly that refusal).
func (c *Cluster) RestartParent() error {
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		if ln, err = net.Listen("tcp", c.ParentAddr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("distnet: rebinding parent %s: %w", c.ParentAddr, err)
	}
	srv := server.New(server.Config{WAL: c.opts.ParentWAL})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case serr := <-done:
			// Serve returned before recovery finished: boot refused.
			// Leave a satisfied error slot so Close stays well-formed.
			ch := make(chan error, 1)
			ch <- nil
			c.serveErrs[0] = ch
			if serr == nil {
				serr = errors.New("distnet: parent exited during restart")
			}
			return serr
		default:
		}
		if st := srv.Stats(); st.WAL == nil || st.WAL.Recovered {
			c.Parent = srv
			c.serveErrs[0] = done
			return nil
		}
		if time.Now().After(deadline) {
			return errors.New("distnet: parent recovery never completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close stops every live shard, then the parent. Shard drains run
// before the parent stops accepting, preserving the nothing-left-
// behind guarantee on a clean tier shutdown.
func (c *Cluster) Close() error {
	var errs []error
	for i := range c.Servers {
		if c.Servers[i] != nil {
			errs = append(errs, c.StopShard(i))
		}
	}
	if c.Parent != nil {
		ctx, cancel := context.WithTimeout(context.Background(), c.opts.ShutdownTimeout)
		defer cancel()
		errs = append(errs, c.Parent.Shutdown(ctx))
		if c.serveErrs[0] != nil {
			errs = append(errs, <-c.serveErrs[0])
		}
	}
	return errors.Join(errs...)
}
