package distnet

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/stream"
)

func overlapSources(t int, seed uint64) []stream.Source {
	return stream.OverlapConfig{
		Sites: t, PerSite: 4000, CoreSize: 1500, PrivateSize: 1500,
		Overlap: 0.5, Seed: seed,
	}.Build()
}

var fastOpts = Options{Attempts: 3, BackoffBase: 5 * time.Millisecond}

// TestNetworkMatchesInProcess: running the paper's protocol over real
// loopback sockets must reproduce the channel simulator exactly —
// estimates and byte accounting both.
func TestNetworkMatchesInProcess(t *testing.T) {
	srcs := overlapSources(8, 1)
	p := distsim.GT{Config: core.EstimatorConfig{Capacity: 512, Copies: 5, Seed: 7}}

	want, err := distsim.Run(p, srcs, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, concurrent := range []bool{false, true} {
		got, err := RunOptions(p, srcs, concurrent, fastOpts)
		if err != nil {
			t.Fatalf("concurrent=%v: %v", concurrent, err)
		}
		if got.DistinctEstimate != want.DistinctEstimate {
			t.Errorf("concurrent=%v: distinct %.4f != %.4f", concurrent, got.DistinctEstimate, want.DistinctEstimate)
		}
		if got.SumEstimate != want.SumEstimate {
			t.Errorf("concurrent=%v: sum %.4f != %.4f", concurrent, got.SumEstimate, want.SumEstimate)
		}
		if got.Stats.BytesSent != want.Stats.BytesSent {
			t.Errorf("concurrent=%v: bytes %d != %d", concurrent, got.Stats.BytesSent, want.Stats.BytesSent)
		}
		if got.Stats.Messages != want.Stats.Messages || got.Stats.MaxSiteBytes != want.Stats.MaxSiteBytes {
			t.Errorf("concurrent=%v: stats %+v != %+v", concurrent, got.Stats, want.Stats)
		}
		if got.Stats.ItemsProcessed != want.Stats.ItemsProcessed {
			t.Errorf("concurrent=%v: items %d != %d", concurrent, got.Stats.ItemsProcessed, want.Stats.ItemsProcessed)
		}
		if got.Stats.Sites != len(srcs) {
			t.Errorf("concurrent=%v: sites %d", concurrent, got.Stats.Sites)
		}
	}
}

// TestBaselineProtocolsOverNetwork: the transport is
// protocol-agnostic — the opaque path must carry every simulator
// protocol, not just the paper's.
func TestBaselineProtocolsOverNetwork(t *testing.T) {
	srcs := overlapSources(4, 3)
	for _, p := range []distsim.Protocol{
		distsim.NewKMV(256, 5),
		distsim.NewLogLog(256, 5),
		distsim.Exact{},
	} {
		want, err := distsim.Run(p, srcs, false)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		got, err := RunOptions(p, srcs, true, fastOpts)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if got.DistinctEstimate != want.DistinctEstimate {
			t.Errorf("%s: distinct %.4f != %.4f", p.Name(), got.DistinctEstimate, want.DistinctEstimate)
		}
		sumsEqual := got.SumEstimate == want.SumEstimate ||
			(math.IsNaN(got.SumEstimate) && math.IsNaN(want.SumEstimate))
		if !sumsEqual {
			t.Errorf("%s: sum %.4f != %.4f", p.Name(), got.SumEstimate, want.SumEstimate)
		}
		if got.Stats.BytesSent != want.Stats.BytesSent {
			t.Errorf("%s: bytes %d != %d", p.Name(), got.Stats.BytesSent, want.Stats.BytesSent)
		}
	}
}

func TestRunNoSources(t *testing.T) {
	if _, err := Run(distsim.Exact{}, nil, false); err == nil {
		t.Error("Run with no sources succeeded")
	}
}

func TestByteAccountantPerSite(t *testing.T) {
	a := distsim.NewByteAccountant()
	a.Record(0, 100)
	a.Record(1, 250)
	a.Record(0, 50)
	if a.Messages() != 3 || a.TotalBytes() != 400 || a.MaxMessageBytes() != 250 {
		t.Errorf("totals: %d msgs, %d bytes, max %d", a.Messages(), a.TotalBytes(), a.MaxMessageBytes())
	}
	if a.SiteBytes(0) != 150 || a.SiteBytes(1) != 250 || a.SiteBytes(9) != 0 {
		t.Errorf("per-site: %d, %d", a.SiteBytes(0), a.SiteBytes(1))
	}
	var st distsim.Stats
	st.Sites = 2
	a.FillStats(&st)
	if st.Messages != 3 || st.BytesSent != 400 || st.MaxSiteBytes != 250 || st.Sites != 2 {
		t.Errorf("FillStats: %+v", st)
	}
}
