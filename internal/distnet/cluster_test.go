package distnet

// Cluster convergence suite — the tentpole contract of the sharded
// tier: three shards relaying into a parent must leave the parent
// bit-identical to a single coordinator that absorbed every site push
// directly. Fault-free at 10^5 merge groups, across shard death with
// ring migration, and (in cluster_chaos_test.go) under seeded faults
// on every hop.

import (
	"bytes"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/sketch/kmv"
)

// clusterEnvelopes builds one envelope per merge group for a wave:
// group i is the kmv sketch with coordination seed baseSeed+i, and
// each wave observes an overlapping label range so later waves
// genuinely change (and duplicate) state.
func clusterEnvelopes(t testing.TB, groups, wave int) [][]byte {
	t.Helper()
	envs := make([][]byte, groups)
	for i := range envs {
		sk := kmv.New(4, uint64(20000+i))
		base := uint64(wave) * 12
		for x := base; x < base+20; x++ {
			sk.Process(x*2654435761 + uint64(i))
		}
		env, err := sketch.Envelope(sk)
		if err != nil {
			t.Fatal(err)
		}
		envs[i] = env
	}
	return envs
}

// controlServer starts a plain single coordinator.
func controlServer(t testing.TB) (*server.Server, string) {
	t.Helper()
	srv := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("control shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("control serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func clientConfig(addr string) client.Config {
	return client.Config{
		Addr:        addr,
		Attempts:    4,
		BackoffBase: time.Millisecond,
		IOTimeout:   5 * time.Second,
		JitterSeed:  1,
	}
}

// pushSharded buckets the envelopes by ring owner and pushes each
// shard's slice concurrently over one batched connection per shard —
// how a real site fleet loads a cluster.
func pushSharded(t testing.TB, sc *client.Sharded, envs [][]byte) {
	t.Helper()
	perShard := make([][][]byte, sc.Shards())
	for _, env := range envs {
		shard, err := sc.Route(env)
		if err != nil {
			t.Fatal(err)
		}
		perShard[shard] = append(perShard[shard], env)
	}
	var wg sync.WaitGroup
	errs := make([]error, sc.Shards())
	for i, batch := range perShard {
		if len(batch) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, batch [][]byte) {
			defer wg.Done()
			_, errs[i] = sc.Shard(i).PushBatch(batch)
		}(i, batch)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d batch: %v", i, err)
		}
	}
}

// requireIdentical asserts two coordinators hold bit-identical group
// state: same groups, same merged envelope bytes.
func requireIdentical(t testing.TB, got, want *server.Server, label string) {
	t.Helper()
	gs, err := got.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := want.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != len(ws) {
		t.Fatalf("%s: %d groups vs control's %d", label, len(gs), len(ws))
	}
	for i := range gs {
		if gs[i].Stream != ws[i].Stream || gs[i].Kind != ws[i].Kind || gs[i].Digest != ws[i].Digest {
			t.Fatalf("%s: group %d is %q/%s/%016x, control has %q/%s/%016x",
				label, i, gs[i].Stream, gs[i].KindName, gs[i].Digest, ws[i].Stream, ws[i].KindName, ws[i].Digest)
		}
		if !bytes.Equal(gs[i].Envelope, ws[i].Envelope) {
			t.Fatalf("%s: group %q/%s/%016x diverged from control", label, gs[i].Stream, gs[i].KindName, gs[i].Digest)
		}
	}
}

// TestClusterConvergesBitIdentical is the tentpole: 3 shards serving
// 10^5 merge groups relay into a parent, and the parent's state is
// bit-identical to the single coordinator that absorbed the same site
// pushes directly — including after a second wave that re-dirties and
// re-relays a slice of hot groups (duplicate upstream deliveries).
func TestClusterConvergesBitIdentical(t *testing.T) {
	groups := 100_000
	if testing.Short() {
		groups = 2_000
	}
	ctl, ctlAddr := controlServer(t)
	ctlClient := client.New(clientConfig(ctlAddr))

	c, err := StartCluster(ClusterOptions{
		Shards:      3,
		RingSeed:    42,
		Attempts:    4,
		BackoffBase: time.Millisecond,
		IOTimeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
	}()
	sc, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}

	wave1 := clusterEnvelopes(t, groups, 0)
	pushSharded(t, sc, wave1)
	if _, err := ctlClient.PushBatch(wave1); err != nil {
		t.Fatal(err)
	}
	if n, err := c.FlushAll(); err != nil || n != groups {
		t.Fatalf("wave 1 flush = %d, %v; want %d, nil", n, err, groups)
	}

	// Wave 2 hits the hottest 5% of groups again: those groups evolve
	// on their shards and are re-relayed — the parent merges updated
	// envelopes over state it already holds.
	hot := groups / 20
	wave2 := clusterEnvelopes(t, hot, 1)
	pushSharded(t, sc, wave2)
	if _, err := ctlClient.PushBatch(wave2); err != nil {
		t.Fatal(err)
	}
	if n, err := c.FlushAll(); err != nil || n != hot {
		t.Fatalf("wave 2 flush = %d, %v; want %d, nil", n, err, hot)
	}
	if pending := c.PendingRelay(); pending != 0 {
		t.Fatalf("%d absorbs still pending after flushes", pending)
	}

	requireIdentical(t, c.Parent, ctl, "parent")
	if got := len(c.Parent.Stats().Groups); got != groups {
		t.Fatalf("parent serves %d groups, want %d", got, groups)
	}
	// Every shard's groups really are partitioned by the ring.
	for i, srv := range c.Servers {
		st := srv.Stats()
		if st.Cluster == nil || st.Cluster.GroupsForeign != 0 {
			t.Fatalf("shard %d cluster stats = %+v, want zero foreign groups", i, st.Cluster)
		}
	}
}

// TestClusterShardDeathMigrationConverges: a shard dies (drain-
// flushing upstream), the ring drops it, its groups migrate to their
// new owners, and a second wave lands on the survivors — the parent
// still converges bit-identically to the direct control. Shard death
// costs availability of one arc of the ring, never correctness.
func TestClusterShardDeathMigrationConverges(t *testing.T) {
	const groups = 120
	const dead = 1
	ctl, ctlAddr := controlServer(t)
	ctlClient := client.New(clientConfig(ctlAddr))

	c, err := StartCluster(ClusterOptions{
		Shards:      3,
		RingSeed:    42,
		Attempts:    4,
		BackoffBase: time.Millisecond,
		IOTimeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
	}()
	sc, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}

	wave1 := clusterEnvelopes(t, groups, 0)
	pushSharded(t, sc, wave1)
	if _, err := ctlClient.PushBatch(wave1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Shard 1 dies cleanly: Shutdown's drain flush has already pushed
	// its state upstream, but the group state it held must also move to
	// the survivors so future waves keep accumulating somewhere live.
	deadSnaps, err := c.Servers[dead].Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.StopShard(dead); err != nil {
		t.Fatalf("stopping shard %d: %v", dead, err)
	}
	next := c.Ring.Without(dead)

	migrating := make([]cluster.Group, len(deadSnaps))
	for i, snap := range deadSnaps {
		migrating[i] = cluster.Group{
			Key:      cluster.GroupKey{Kind: snap.Kind, Digest: snap.Digest},
			Envelope: snap.Envelope,
		}
	}
	moved, err := cluster.Migrate(migrating, c.Ring, next, func(shard int, envelope []byte) error {
		_, perr := client.New(clientConfig(c.ShardAddrs[shard])).Push(envelope)
		return perr
	})
	if err != nil {
		t.Fatalf("migration: %v", err)
	}
	if moved != len(deadSnaps) {
		t.Fatalf("migrated %d of the dead shard's %d groups", moved, len(deadSnaps))
	}

	// Wave 2 routes over the shrunken ring: the dead shard's arcs now
	// belong to the survivors, which hold the migrated state.
	sc2, err := client.NewSharded(next, c.ShardAddrs, clientConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	wave2 := clusterEnvelopes(t, groups, 1)
	pushSharded(t, sc2, wave2)
	if _, err := ctlClient.PushBatch(wave2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if pending := c.PendingRelay(); pending != 0 {
		t.Fatalf("%d absorbs still pending after flushes", pending)
	}

	// The parent saw wave-1 state twice for migrated groups (drain
	// flush, then the survivor's re-relay) — pure duplicates under the
	// idempotent merge.
	requireIdentical(t, c.Parent, ctl, "parent after shard death")
}
