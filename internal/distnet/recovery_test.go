package distnet

// The sharded leg of the WAL crash-recovery matrix: a 3-shard cluster
// relays into a durable parent; the parent is killed at every wal/*
// failpoint (plus a torn tail), rebooted on the same address, and the
// shards' at-least-once flush contract plus log replay must land it
// bit-identical to a single coordinator that absorbed every site push
// directly. Run with -chaos.seed=N to move the crash point; ci.sh
// sweeps 1..3.

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/failpoint"
	"repro/internal/server"
)

var errParentCrash = errors.New("injected parent crash")

// tearNewestSegment truncates the newest non-empty WAL segment by n
// bytes — the on-disk shape of a crash mid-append.
func tearNewestSegment(t *testing.T, dir string, n int64) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments to tear in %s (err=%v)", dir, err)
	}
	for i := len(segs) - 1; i >= 0; i-- {
		st, serr := os.Stat(segs[i])
		if serr != nil {
			t.Fatal(serr)
		}
		if st.Size() == 0 {
			continue
		}
		cut := n
		if cut >= st.Size() {
			cut = st.Size() - 1
		}
		if cut < 1 {
			cut = 1
		}
		if terr := os.Truncate(segs[i], st.Size()-cut); terr != nil {
			t.Fatal(terr)
		}
		return
	}
	t.Fatalf("every segment in %s is empty", dir)
}

// TestWALClusterParentCrashRecovery drives the full matrix against
// the 3-shard topology.
func TestWALClusterParentCrashRecovery(t *testing.T) {
	legs := []struct {
		name string
		site string
	}{
		{"append", failpoint.WALAppend},
		{"fsync", failpoint.WALFsync},
		{"rotate", failpoint.WALRotate},
		{"snapshot", failpoint.WALSnapshot},
		{"replay", failpoint.WALReplay},
		{"torn-tail", ""},
	}
	for _, seed := range chaosSeeds() {
		const groups = 40
		crashHit := 1 + int64(seed%5)

		for _, leg := range legs {
			t.Run(leg.name, func(t *testing.T) {
				t.Cleanup(failpoint.Reset)
				dir := t.TempDir()

				c, err := StartCluster(ClusterOptions{
					Shards:      3,
					RingSeed:    seed,
					Attempts:    2,
					BackoffBase: time.Millisecond,
					IOTimeout:   time.Second,
					ParentWAL: &server.WALConfig{
						Dir:           dir,
						SegmentBytes:  256,
						SnapshotEvery: time.Hour,
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()

				ctrl, ctrlAddr := controlServer(t)
				ctrlClient := client.New(clientConfig(ctrlAddr))
				sc, err := c.Client()
				if err != nil {
					t.Fatal(err)
				}

				// Wave 1 lands before the crash and is (partially)
				// flushed into the durable parent.
				wave1 := clusterEnvelopes(t, groups, 0)
				pushSharded(t, sc, wave1)
				if _, err := ctrlClient.PushBatch(wave1); err != nil {
					t.Fatal(err)
				}
				if _, err := c.FlushAll(); err != nil {
					t.Fatalf("pre-crash flush: %v", err)
				}
				if _, err := c.Parent.SnapshotWAL(); err != nil {
					t.Fatalf("pre-crash parent snapshot: %v", err)
				}

				// Arm the crash (except for the boot-time legs) and
				// drive wave 2 through it: more shard pushes, flushes
				// that die mid-hop, snapshot rounds that die mid-cut.
				var crashed chan struct{}
				if leg.site != "" && leg.site != failpoint.WALReplay {
					crashed = make(chan struct{})
					var hits atomic.Int64
					var once sync.Once
					srv := c.Parent
					failpoint.Enable(leg.site, func() error {
						if hits.Add(1) >= crashHit {
							once.Do(func() {
								close(crashed)
								go srv.Abort()
							})
							return errParentCrash
						}
						return nil
					})
				}
				wave2 := clusterEnvelopes(t, groups, 1)
				pushSharded(t, sc, wave2)
				if _, err := ctrlClient.PushBatch(wave2); err != nil {
					t.Fatal(err)
				}
				// Several flush+snapshot rounds so every site reaches its
				// crash hit regardless of seed. The torn-tail leg skips
				// the snapshots: pruning would erase the very segments
				// that leg exists to damage.
				for i := 0; i < 6; i++ {
					c.FlushAll()
					if leg.site != "" {
						c.Parent.SnapshotWAL()
					}
				}

				switch {
				case crashed != nil:
					select {
					case <-crashed:
					default:
						t.Fatalf("seed %d: %s never fired on the parent", seed, leg.site)
					}
					if err := c.CrashParent(); err != nil {
						t.Fatalf("crashed parent serve loop: %v", err)
					}
					failpoint.Reset()
				default:
					if err := c.CrashParent(); err != nil {
						t.Fatalf("crashed parent serve loop: %v", err)
					}
					if leg.site == "" {
						tearNewestSegment(t, dir, 2+int64(seed%29))
					}
				}

				if leg.site == failpoint.WALReplay {
					// The boot itself must refuse while replay fails,
					// then recover once the fault clears.
					failpoint.Enable(failpoint.WALReplay, failpoint.Error(errParentCrash))
					if err := c.RestartParent(); err == nil {
						t.Fatal("parent served with a failing replay — partial state went live")
					}
					failpoint.Reset()
				}
				if err := c.RestartParent(); err != nil {
					t.Fatalf("parent restart: %v", err)
				}

				// Close the at-least-once loop: re-dirty every group so
				// each shard re-relays its full merged state (covering
				// anything acked-then-torn), then flush until drained.
				wave3 := clusterEnvelopes(t, groups, 2)
				pushSharded(t, sc, wave3)
				if _, err := ctrlClient.PushBatch(wave3); err != nil {
					t.Fatal(err)
				}
				deadline := time.Now().Add(15 * time.Second)
				for c.PendingRelay() > 0 {
					if time.Now().After(deadline) {
						t.Fatalf("shards never drained into the rebooted parent (%d pending)", c.PendingRelay())
					}
					c.FlushAll()
					time.Sleep(5 * time.Millisecond)
				}

				requireIdentical(t, c.Parent, ctrl, "recovered parent vs control")
				if st := c.Parent.Stats(); st.WAL == nil || !st.WAL.Recovered {
					t.Fatalf("rebooted parent reports no recovery: %+v", st.WAL)
				}
			})
		}
	}
}
