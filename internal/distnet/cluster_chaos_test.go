package distnet

// Chaos suite for the sharded tier: seeded faultnet proxies on every
// hop — one per site→shard link, one on the shard→parent relay link —
// inject rejected dials, mid-frame truncations, corrupted bytes,
// swallowed acks, and replayed (duplicate) deliveries. Site retries,
// batched-push resume, and relay re-flushes must ride all of it out,
// and the parent must still end bit-identical to the single
// coordinator that absorbed every site push directly.
//
// Run with -chaos.seed=N to pin the fault schedules; ci.sh sweeps
// seeds 1..3.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faultnet"
)

// TestChaosClusterConvergesThroughFaultyHops: the tentpole's chaos
// leg. Two waves of site pushes and repeated relay flushes through
// independently scheduled fault proxies on both tiers of the tree.
func TestChaosClusterConvergesThroughFaultyHops(t *testing.T) {
	for _, seed := range chaosSeeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const groups = 150
			ctl, ctlAddr := controlServer(t)
			ctlClient := client.New(clientConfig(ctlAddr))

			// The relay hop's proxy is created inside the intercept so the
			// shards dial it from birth; its schedule is seeded apart from
			// the shard hops so the two tiers fault independently.
			var upFleet *faultnet.Fleet
			c, err := StartCluster(ClusterOptions{
				Shards:      3,
				RingSeed:    42,
				Attempts:    25,
				BackoffBase: time.Millisecond,
				IOTimeout:   250 * time.Millisecond,
				InterceptUpstream: func(addr string) (string, error) {
					f, ferr := faultnet.NewFleet([]string{addr}, func(int) faultnet.Schedule {
						return faultnet.Seeded(seed<<8 | 7)
					})
					if ferr != nil {
						return "", ferr
					}
					upFleet = f
					return f.Addrs()[0], nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			shardFleet, err := faultnet.NewFleet(c.ShardAddrs, func(i int) faultnet.Schedule {
				return faultnet.Seeded(seed<<8 | uint64(i))
			})
			if err != nil {
				t.Fatal(err)
			}
			// Shards drain-flush on Close; the proxies must outlive them.
			defer upFleet.Close()
			defer shardFleet.Close()
			defer func() {
				if cerr := c.Close(); cerr != nil {
					t.Errorf("cluster close: %v", cerr)
				}
			}()
			sc, err := client.NewSharded(c.Ring, shardFleet.Addrs(), client.Config{
				Attempts:    25,
				BackoffBase: time.Millisecond,
				BackoffMax:  8 * time.Millisecond,
				IOTimeout:   250 * time.Millisecond,
				JitterSeed:  1,
			})
			if err != nil {
				t.Fatal(err)
			}

			// flushUntilClean re-runs the relay until every absorb has been
			// acked upstream: the at-least-once loop a real relay's timer
			// provides, compressed for the test.
			flushUntilClean := func(wave int) {
				t.Helper()
				for i := 0; i < 60 && c.PendingRelay() > 0; i++ {
					if _, ferr := c.FlushAll(); ferr != nil {
						t.Logf("seed %d wave %d flush retry %d: %v", seed, wave, i, ferr)
					}
				}
				if p := c.PendingRelay(); p != 0 {
					t.Fatalf("seed %d wave %d: %d absorbs still pending after retries", seed, wave, p)
				}
			}

			for wave := 0; wave < 2; wave++ {
				envs := clusterEnvelopes(t, groups, wave)
				pushSharded(t, sc, envs)
				if _, err := ctlClient.PushBatch(envs); err != nil {
					t.Fatal(err)
				}
				flushUntilClean(wave)
			}

			requireIdentical(t, c.Parent, ctl, fmt.Sprintf("seed %d parent", seed))
			if shardFleet.TraceString() == "" || upFleet.TraceString() == "" {
				t.Errorf("seed %d: a fault proxy never saw traffic (shard trace empty: %v, upstream trace empty: %v)",
					seed, shardFleet.TraceString() == "", upFleet.TraceString() == "")
			}
		})
	}
}
