package distnet

// Chaos suite for the full network transport: distnet runs routed
// through a seeded faultnet proxy must still reproduce the in-process
// simulator exactly — estimates AND byte accounting — because every
// fault the schedule can inject (dropped dials, mid-frame cuts,
// corrupted bytes, swallowed acks, duplicated deliveries) is absorbed
// by the retry loop on one side and the idempotent, commutative merge
// on the other.
//
// Run with -chaos.seed=N to pin the fault schedule; ci.sh sweeps
// seeds 1..3.

import (
	"flag"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/distsim"
	"repro/internal/faultnet"
)

var chaosSeed = flag.Uint64("chaos.seed", 0, "fault schedule seed for the chaos suite (0 = default seed 1)")

func chaosSeeds() []uint64 {
	if *chaosSeed != 0 {
		return []uint64{*chaosSeed}
	}
	return []uint64{1}
}

func chaosOpts(seed uint64, proxy **faultnet.Proxy) Options {
	return Options{
		Attempts:    25,
		BackoffBase: time.Millisecond,
		IOTimeout:   250 * time.Millisecond,
		Intercept: func(serverAddr string) (string, error) {
			p, err := faultnet.New(serverAddr, faultnet.Seeded(seed))
			if err != nil {
				return "", err
			}
			*proxy = p
			return p.Addr(), nil
		},
	}
}

// TestChaosNetworkRunMatchesSimulator: a serial distnet run through
// the fault proxy must equal distsim.Run on the same sources in every
// field — estimates bit for bit, and byte accounting too, because
// retries and duplicate deliveries are protocol noise, not protocol
// cost. Replaying the same seed must reproduce the identical fault
// trace.
func TestChaosNetworkRunMatchesSimulator(t *testing.T) {
	for _, seed := range chaosSeeds() {
		srcs := overlapSources(6, seed+20)
		p := distsim.GT{Config: core.EstimatorConfig{Capacity: 256, Copies: 3, Seed: 909}}
		want, err := distsim.Run(p, srcs, false)
		if err != nil {
			t.Fatal(err)
		}

		run := func() (*distsim.Result, string) {
			var proxy *faultnet.Proxy
			got, err := RunOptions(p, srcs, false, chaosOpts(seed, &proxy))
			if proxy != nil {
				defer proxy.Close()
			}
			if err != nil {
				t.Fatalf("seed %d: chaos run failed: %v", seed, err)
			}
			proxy.Close()
			return got, proxy.TraceString()
		}

		got, trace1 := run()
		if got.DistinctEstimate != want.DistinctEstimate {
			t.Errorf("seed %d: distinct %.6f != simulator %.6f", seed, got.DistinctEstimate, want.DistinctEstimate)
		}
		if got.SumEstimate != want.SumEstimate {
			t.Errorf("seed %d: sum %.6f != simulator %.6f", seed, got.SumEstimate, want.SumEstimate)
		}
		if got.Stats.BytesSent != want.Stats.BytesSent {
			t.Errorf("seed %d: bytes %d != simulator %d (retries must not be billed)", seed, got.Stats.BytesSent, want.Stats.BytesSent)
		}
		if got.Stats.ItemsProcessed != want.Stats.ItemsProcessed {
			t.Errorf("seed %d: items %d != %d", seed, got.Stats.ItemsProcessed, want.Stats.ItemsProcessed)
		}

		got2, trace2 := run()
		if got2.DistinctEstimate != got.DistinctEstimate || got2.SumEstimate != got.SumEstimate {
			t.Errorf("seed %d: two runs of the same schedule disagree", seed)
		}
		if trace1 != trace2 {
			t.Errorf("seed %d: fault trace not reproducible\n--- run 1\n%s--- run 2\n%s", seed, trace1, trace2)
		}
		if trace1 == "" {
			t.Errorf("seed %d: empty fault trace — proxy never saw traffic", seed)
		}
	}
}

// TestChaosConcurrentSitesThroughProxy: with sites pushing in
// parallel the fault *assignment* is no longer deterministic (accept
// order races), but the estimates still must not move — commutativity
// and idempotence hold under any interleaving of faults and retries.
func TestChaosConcurrentSitesThroughProxy(t *testing.T) {
	for _, seed := range chaosSeeds() {
		srcs := overlapSources(6, seed+21)
		p := distsim.GT{Config: core.EstimatorConfig{Capacity: 256, Copies: 3, Seed: 910}}
		want, err := distsim.Run(p, srcs, false)
		if err != nil {
			t.Fatal(err)
		}
		var proxy *faultnet.Proxy
		got, err := RunOptions(p, srcs, true, chaosOpts(seed, &proxy))
		if proxy != nil {
			defer proxy.Close()
		}
		if err != nil {
			t.Fatalf("seed %d: concurrent chaos run failed: %v", seed, err)
		}
		if got.DistinctEstimate != want.DistinctEstimate || got.SumEstimate != want.SumEstimate {
			t.Errorf("seed %d: concurrent chaos estimates (%.6f, %.6f) != simulator (%.6f, %.6f)",
				seed, got.DistinctEstimate, got.SumEstimate, want.DistinctEstimate, want.SumEstimate)
		}
	}
}
