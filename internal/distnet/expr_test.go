package distnet

// End-to-end acceptance for the set-expression query engine: three
// named streams pushed over real TCP, nested expressions — (A∪B)∩C,
// A\B, Jaccard — evaluated on a single coordinator, a relay tier, and
// a 3-shard cluster, with every answer required to match a local
// evaluation through internal/core's set operations EXACTLY (float64
// equality, not tolerance: the server evaluates clones of the same
// merged state through the same code paths, so any drift is a bug in
// the stream plumbing). A recovery test closes the loop: a durable
// coordinator holding named-stream records must come back from a
// crash bit-identical and answer the same expressions with the same
// values.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/wire"
)

// exprStreams is the named-stream fixture: three overlapping label
// sets, each split across three sites, all sketched under one
// coordinated configuration (same seed — the precondition for any
// cross-stream set operation).
var exprStreams = []struct {
	name     string
	lo, hi   uint64 // label range [lo, hi)
	numSites int
}{
	{"ads", 0, 600, 3},
	{"buys", 300, 900, 3},
	{"clicks", 450, 1050, 3},
}

var exprCfg = core.EstimatorConfig{Capacity: 64, Copies: 5, Seed: 77}

// exprLabel spreads the label space so retention levels vary.
func exprLabel(x uint64) uint64 { return x * 2654435761 }

// exprEnvelopes builds one envelope per (stream, site) pair.
func exprEnvelopes(t testing.TB) []client.Record {
	t.Helper()
	var recs []client.Record
	for _, st := range exprStreams {
		for site := 0; site < st.numSites; site++ {
			est := core.NewEstimator(exprCfg)
			for x := st.lo; x < st.hi; x++ {
				if int(x)%st.numSites == site {
					est.Process(exprLabel(x))
				}
			}
			env, err := sketch.Envelope(est)
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, client.Record{Stream: st.name, Envelope: env})
		}
	}
	return recs
}

// exprLocalStreams mirrors what each coordinator group converges to:
// the merge of every site envelope belonging to the stream.
func exprLocalStreams(t testing.TB, recs []client.Record) map[string]sketch.Sketch {
	t.Helper()
	merged := make(map[string]sketch.Sketch)
	for _, rec := range recs {
		sk, err := sketch.Open(rec.Envelope)
		if err != nil {
			t.Fatal(err)
		}
		if cur, ok := merged[rec.Stream]; ok {
			if err := cur.Merge(sk); err != nil {
				t.Fatal(err)
			}
		} else {
			merged[rec.Stream] = sk
		}
	}
	return merged
}

// exprExpected evaluates the three acceptance expressions locally
// through the exact capability paths the server evaluator uses, so
// the network answers must be float64-equal.
type exprExpected struct {
	unionIntersect float64 // ("ads" | "buys") & "clicks"
	diff           float64 // "ads" - "buys"
	jaccard        float64 // "ads" ~ "buys"
}

func exprEvalLocal(t testing.TB, streams map[string]sketch.Sketch) exprExpected {
	t.Helper()
	clone := func(name string) sketch.Sketch {
		env, err := sketch.Envelope(streams[name])
		if err != nil {
			t.Fatal(err)
		}
		sk, err := sketch.Open(env)
		if err != nil {
			t.Fatal(err)
		}
		return sk
	}
	var exp exprExpected

	u := clone("ads")
	if err := u.Merge(clone("buys")); err != nil {
		t.Fatal(err)
	}
	inter, err := u.(sketch.SetCombiner).CombineIntersect(clone("clicks"))
	if err != nil {
		t.Fatal(err)
	}
	exp.unionIntersect = inter.Estimate()

	d, err := clone("ads").(sketch.SetCombiner).CombineDiff(clone("buys"))
	if err != nil {
		t.Fatal(err)
	}
	exp.diff = d.Estimate()

	if exp.jaccard, err = clone("ads").(sketch.SetAlgebra).SetJaccard(clone("buys")); err != nil {
		t.Fatal(err)
	}
	return exp
}

// exprQueries builds the three acceptance queries.
func exprQueries() (unionIntersect, diff, jaccard wire.ExprQuery) {
	unionIntersect = wire.ExprQuery{Expr: wire.Intersect(wire.Union(wire.Leaf("ads"), wire.Leaf("buys")), wire.Leaf("clicks"))}
	diff = wire.ExprQuery{Expr: wire.Diff(wire.Leaf("ads"), wire.Leaf("buys"))}
	jaccard = wire.ExprQuery{Expr: wire.Jaccard(wire.Leaf("ads"), wire.Leaf("buys"))}
	return
}

// checkExprAnswers runs the three queries through ask and requires
// exact agreement with the local evaluation.
func checkExprAnswers(t *testing.T, label string, exp exprExpected, ask func(wire.ExprQuery) (*wire.ExprResult, error)) {
	t.Helper()
	ui, diff, jac := exprQueries()
	cases := []struct {
		name string
		eq   wire.ExprQuery
		want float64
	}{
		{"(ads|buys)&clicks", ui, exp.unionIntersect},
		{"ads-buys", diff, exp.diff},
		{"ads~buys", jac, exp.jaccard},
	}
	for _, tc := range cases {
		res, err := ask(tc.eq)
		if err != nil {
			t.Fatalf("%s: %s: %v", label, tc.name, err)
		}
		if res.Value != tc.want {
			t.Fatalf("%s: %s = %v, local core evaluation says %v", label, tc.name, res.Value, tc.want)
		}
		if res.ErrBound <= 0 {
			t.Fatalf("%s: %s reported non-positive error bound %v", label, tc.name, res.ErrBound)
		}
		if res.Op != tc.eq.Expr.Op {
			t.Fatalf("%s: %s: result tree root op %d, query op %d", label, tc.name, res.Op, tc.eq.Expr.Op)
		}
	}
}

// TestExprSingleCoordinator pushes the named streams at one
// coordinator over TCP and checks the three expressions.
func TestExprSingleCoordinator(t *testing.T) {
	recs := exprEnvelopes(t)
	exp := exprEvalLocal(t, exprLocalStreams(t, recs))

	_, addr := controlServer(t)
	cl := client.New(clientConfig(addr))
	if n, err := cl.PushBatchNamed(recs); err != nil || n != len(recs) {
		t.Fatalf("push: %d/%d acked, err=%v", n, len(recs), err)
	}
	checkExprAnswers(t, "single", exp, cl.QueryExpr)

	// A leaf naming an unknown stream must refuse, not misresolve.
	if _, err := cl.QueryExpr(wire.ExprQuery{Expr: wire.Union(wire.Leaf("ads"), wire.Leaf("nope"))}); err == nil {
		t.Fatal("expression over unknown stream succeeded")
	}
}

// TestExprRelayTier pushes the streams at a relay shard and checks
// the expressions against BOTH the shard and its parent: the relayed
// groups carry their stream names upstream, so the parent answers
// identically.
func TestExprRelayTier(t *testing.T) {
	recs := exprEnvelopes(t)
	exp := exprEvalLocal(t, exprLocalStreams(t, recs))

	c, err := StartCluster(ClusterOptions{
		Shards:      1,
		RingSeed:    7,
		Attempts:    3,
		BackoffBase: time.Millisecond,
		IOTimeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sc, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	if n, err := sc.PushBatchNamed(recs); err != nil || n != len(recs) {
		t.Fatalf("push: %d/%d acked, err=%v", n, len(recs), err)
	}
	checkExprAnswers(t, "relay shard", exp, sc.Shard(0).QueryExpr)

	deadline := time.Now().Add(10 * time.Second)
	for c.PendingRelay() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("relay never drained (%d pending)", c.PendingRelay())
		}
		if _, err := c.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	parent := client.New(clientConfig(c.ParentAddr))
	checkExprAnswers(t, "relay parent", exp, parent.QueryExpr)
}

// TestExprShardedCluster is the cross-shard leg: with three named
// streams routed across a 3-shard ring, expression leaves generally
// land on different shards, so the sharded client must route the
// query to the parent coordinator — whose relayed groups have
// converged to every stream's full union. The ring seed comes from
// -chaos.seed so ci.sh can sweep stream placements.
func TestExprShardedCluster(t *testing.T) {
	for _, seed := range chaosSeeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { testExprShardedCluster(t, seed) })
	}
}

func testExprShardedCluster(t *testing.T, ringSeed uint64) {
	recs := exprEnvelopes(t)
	exp := exprEvalLocal(t, exprLocalStreams(t, recs))

	c, err := StartCluster(ClusterOptions{
		Shards:      3,
		RingSeed:    ringSeed,
		Attempts:    3,
		BackoffBase: time.Millisecond,
		IOTimeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sc, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	if n, err := sc.PushBatchNamed(recs); err != nil || n != len(recs) {
		t.Fatalf("push: %d/%d acked, err=%v", n, len(recs), err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.PendingRelay() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("relay never drained (%d pending)", c.PendingRelay())
		}
		if _, err := c.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}

	kind, digest, ok := sketch.PeekHeader(recs[0].Envelope)
	if !ok {
		t.Fatal("fixture envelope has no header")
	}
	checkExprAnswers(t, "sharded", exp, func(eq wire.ExprQuery) (*wire.ExprResult, error) {
		return sc.QueryExpr(eq, uint8(kind), digest)
	})

	// The parent converged bit-identically to a single coordinator
	// absorbing the same named pushes directly — stream names intact
	// through the relay hop.
	ctrl, ctrlAddr := controlServer(t)
	ctrlClient := client.New(clientConfig(ctrlAddr))
	if _, err := ctrlClient.PushBatchNamed(recs); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, c.Parent, ctrl, "sharded parent vs named control")

	// Without a parent wired in, a spanning query must refuse cleanly
	// rather than answer from one shard's partial view.
	bare, err := client.NewSharded(c.Ring, c.ShardAddrs, clientConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	ui, _, _ := exprQueries()
	spans := false
	owner := c.Ring.OwnerOfGroup("ads", uint8(kind), digest)
	for _, stream := range []string{"buys", "clicks"} {
		if c.Ring.OwnerOfGroup(stream, uint8(kind), digest) != owner {
			spans = true
		}
	}
	if spans {
		if _, err := bare.QueryExpr(ui, uint8(kind), digest); !errors.Is(err, client.ErrRejected) {
			t.Fatalf("spanning query without a parent: got %v, want ErrRejected", err)
		}
	}
}

// TestExprWALRecovery is the named-stream leg of the WAL recovery
// matrix: a durable coordinator absorbs the named streams (half
// before a snapshot cut, half after, so both the snapshot and the
// live-tail replay path carry named records), crashes without a
// drain, and the rebooted coordinator must hold bit-identical groups
// and answer the acceptance expressions with bit-identical values.
func TestExprWALRecovery(t *testing.T) {
	recs := exprEnvelopes(t)
	exp := exprEvalLocal(t, exprLocalStreams(t, recs))
	dir := t.TempDir()

	boot := func() (*server.Server, string, chan error) {
		srv := server.New(server.Config{WAL: &server.WALConfig{
			Dir:           dir,
			SegmentBytes:  4096,
			SnapshotEvery: time.Hour,
		}})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		waitRecovered(t, srv, done)
		return srv, ln.Addr().String(), done
	}

	srv, addr, done := boot()
	cl := client.New(clientConfig(addr))
	half := len(recs) / 2
	if _, err := cl.PushBatchNamed(recs[:half]); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.SnapshotWAL(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.PushBatchNamed(recs[half:]); err != nil {
		t.Fatal(err)
	}
	pre, err := srv.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	srv.Abort()
	if err := <-done; err != nil {
		t.Fatalf("aborted serve loop: %v", err)
	}

	srv2, addr2, done2 := boot()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv2.Shutdown(ctx); err != nil {
			t.Error(err)
		}
		if err := <-done2; err != nil {
			t.Error(err)
		}
	}()
	post, err := srv2.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(post) != len(pre) {
		t.Fatalf("recovered %d groups, crashed coordinator held %d", len(post), len(pre))
	}
	for i := range post {
		if post[i].Stream != pre[i].Stream || post[i].Kind != pre[i].Kind || post[i].Digest != pre[i].Digest {
			t.Fatalf("group %d recovered as %q/%s/%016x, was %q/%s/%016x",
				i, post[i].Stream, post[i].KindName, post[i].Digest, pre[i].Stream, pre[i].KindName, pre[i].Digest)
		}
		if string(post[i].Envelope) != string(pre[i].Envelope) {
			t.Fatalf("group %q/%s/%016x diverged across recovery", post[i].Stream, post[i].KindName, post[i].Digest)
		}
	}
	checkExprAnswers(t, "recovered", exp, client.New(clientConfig(addr2)).QueryExpr)
}

// waitRecovered blocks until the coordinator finishes WAL recovery
// (or its serve loop dies first).
func waitRecovered(t testing.TB, srv *server.Server, done chan error) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case err := <-done:
			t.Fatalf("coordinator exited during recovery: %v", err)
		default:
		}
		if st := srv.Stats(); st.WAL == nil || st.WAL.Recovered {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("recovery never completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
