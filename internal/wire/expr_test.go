package wire

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestPushNamedRoundTrip(t *testing.T) {
	env := []byte("GT\x01payload bytes")
	for _, stream := range []string{"", "clicks", "a b c", strings.Repeat("x", MaxStreamName)} {
		enc, err := EncodePushNamed(stream, env)
		if err != nil {
			t.Fatalf("encode %q: %v", stream, err)
		}
		gotStream, gotEnv, err := DecodePushNamed(enc)
		if err != nil {
			t.Fatalf("decode %q: %v", stream, err)
		}
		if gotStream != stream || !bytes.Equal(gotEnv, env) {
			t.Fatalf("round trip %q: got %q / %d bytes", stream, gotStream, len(gotEnv))
		}
	}
	if _, err := EncodePushNamed(strings.Repeat("x", MaxStreamName+1), env); err == nil {
		t.Fatal("over-long stream name encoded")
	}
	if _, _, err := DecodePushNamed(nil); err == nil {
		t.Fatal("empty named push decoded")
	}
	enc, _ := EncodePushNamed("clicks", env)
	if _, _, err := DecodePushNamed(enc[:3]); err == nil {
		t.Fatal("truncated named push decoded")
	}
}

func TestExprQueryRoundTrip(t *testing.T) {
	exprs := []*QueryExpr{
		Leaf(""),
		Leaf("ads"),
		Union(Leaf("a"), Leaf("b")),
		Diff(Intersect(Union(Leaf("ads"), Leaf("buys")), Leaf("clicks")), Leaf("")),
		Jaccard(Union(Leaf("a"), Leaf("b")), Intersect(Leaf("c"), Leaf("d"))),
	}
	queries := []ExprQuery{
		{},
		{HasSeed: true, Seed: 42},
		{HasKind: true, SketchKind: 3},
		{HasSeed: true, Seed: math.MaxUint64, HasKind: true, SketchKind: 255},
	}
	for _, e := range exprs {
		for _, q := range queries {
			q.Expr = e
			enc, err := q.Encode()
			if err != nil {
				t.Fatalf("%s: %v", e, err)
			}
			got, err := DecodeExprQuery(enc)
			if err != nil {
				t.Fatalf("%s: decode: %v", e, err)
			}
			re, err := got.Encode()
			if err != nil || !bytes.Equal(re, enc) {
				t.Fatalf("%s: re-encode differs (err=%v)", e, err)
			}
			if got.HasSeed != q.HasSeed || got.Seed != q.Seed || got.HasKind != q.HasKind || got.SketchKind != q.SketchKind {
				t.Fatalf("%s: filters drifted: %+v vs %+v", e, got, q)
			}
			if got.Expr.String() != e.String() {
				t.Fatalf("tree drifted: %s vs %s", got.Expr, e)
			}
		}
	}
}

func TestExprValidate(t *testing.T) {
	deep := Leaf("d")
	for i := 1; i < MaxExprDepth; i++ {
		deep = Union(deep, Leaf("d"))
	}
	if err := deep.Validate(); err != nil {
		t.Fatalf("depth-%d spine refused: %v", MaxExprDepth, err)
	}
	if err := Union(deep, Leaf("d")).Validate(); err == nil {
		t.Fatalf("depth-%d spine accepted", MaxExprDepth+1)
	}
	if _, err := (ExprQuery{Expr: Union(deep, Leaf("d"))}).Encode(); err == nil {
		t.Fatal("over-deep expression encoded")
	}

	bad := []*QueryExpr{
		nil,
		{Op: OpLeaf, Left: Leaf("a")},  // leaf with a child
		{Op: OpUnion, Left: Leaf("a")}, // operator missing a child
		{Op: ExprOp(99), Left: Leaf("a"), Right: Leaf("b")},
		Union(Jaccard(Leaf("a"), Leaf("b")), Leaf("c")), // jaccard below root
		Leaf(strings.Repeat("s", MaxStreamName+1)),
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d: invalid expression validated: %s", i, e)
		}
	}
	// Jaccard at the root is the one legal position.
	if err := Jaccard(Leaf("a"), Leaf("b")).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExprQueryDecodeRejects(t *testing.T) {
	enc, err := ExprQuery{Expr: Union(Leaf("a"), Leaf("b"))}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeExprQuery(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	if _, err := DecodeExprQuery(append(append([]byte{}, enc...), 0xff)); err == nil {
		t.Fatal("trailing garbage decoded")
	}
	if !errors.Is(func() error { _, err := DecodeExprQuery(nil); return err }(), ErrFrame) {
		t.Fatal("decode errors are not ErrFrame-typed")
	}
}

func TestExprLeavesAndString(t *testing.T) {
	e := Diff(Intersect(Union(Leaf("ads"), Leaf("buys")), Leaf("clicks")), Leaf(""))
	if got, want := e.String(), `(((ads | buys) & clicks) - "")`; got != want {
		t.Fatalf("String = %s, want %s", got, want)
	}
	leaves := e.Leaves(nil)
	if len(leaves) != 4 || leaves[0] != "ads" || leaves[1] != "buys" || leaves[2] != "clicks" || leaves[3] != "" {
		t.Fatalf("Leaves = %q", leaves)
	}
	// dst is appended to, not replaced.
	if got := e.Leaves([]string{"x"}); len(got) != 5 || got[0] != "x" {
		t.Fatalf("Leaves with prefix = %q", got)
	}
}

func TestExprResultRoundTrip(t *testing.T) {
	res := &ExprResult{
		Op: OpJaccard, Value: 0.25, ErrBound: 0.06,
		Left: &ExprResult{Op: OpUnion, Value: 400, ErrBound: 0.03,
			Left:  &ExprResult{Op: OpLeaf, Stream: "ads", Value: 100, ErrBound: 0.03},
			Right: &ExprResult{Op: OpLeaf, Stream: "", Value: 300, ErrBound: math.Inf(1)},
		},
		Right: &ExprResult{Op: OpLeaf, Stream: "buys", Value: 200, ErrBound: math.NaN()},
	}
	enc, err := EncodeExprResult(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeExprResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	re, err := EncodeExprResult(got)
	if err != nil || !bytes.Equal(re, enc) {
		t.Fatalf("re-encode differs (err=%v)", err)
	}
	if got.Left.Left.Stream != "ads" || got.Left.Right.Value != 300 {
		t.Fatalf("tree drifted: %+v", got)
	}
	if !math.IsInf(got.Left.Right.ErrBound, 1) || !math.IsNaN(got.Right.ErrBound) {
		t.Fatalf("non-finite bounds drifted: %v, %v", got.Left.Right.ErrBound, got.Right.ErrBound)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeExprResult(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
}
