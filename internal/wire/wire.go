// Package wire defines the framed binary protocol that unionstreamd
// (the networked referee) and its site clients speak over TCP.
//
// The paper's model has each party send exactly one small message; this
// package is the transport framing for that message on a real network.
// A frame wraps an opaque payload — for pushes, a self-describing
// internal/sketch envelope — in a fixed 12-byte header:
//
//	offset  size  field
//	0       2     magic "US"
//	2       1     protocol version (currently 1)
//	3       1     message type
//	4       4     payload length, uint32 little endian
//	8       4     CRC-32 (IEEE) of the payload, uint32 little endian
//	12      n     payload
//
// The decoder is deliberately paranoid: it rejects bad magic, unknown
// versions and types, frames beyond a caller-chosen size limit, and
// payloads whose checksum does not match — before any payload byte is
// interpreted. A coordinator absorbing messages from many remote sites
// must survive arbitrary junk on the socket (FuzzWireDecode asserts
// exactly that), and the sketch decoders behind it already carry their
// own validation as a second layer.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/failpoint"
)

const (
	// Magic0 and Magic1 open every frame.
	Magic0 = 'U'
	Magic1 = 'S'
	// Version is the protocol version this package speaks. A decoder
	// that sees any other version fails with ErrVersion so the peer
	// can be told apart from line noise.
	Version = 1
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 12
	// DefaultMaxPayload bounds payload length when the caller passes 0.
	// Sketch messages are O(log(1/δ)/ε²·log m) bytes — kilobytes — so
	// 16 MiB is generous headroom, not a real operating point.
	DefaultMaxPayload = 16 << 20
)

// MsgType identifies what a frame's payload is.
type MsgType uint8

const (
	// MsgPush carries a sketch envelope (see internal/sketch: kind tag
	// + format version + config digest + payload) from a site; the
	// coordinator routes it through the kind registry and merges it
	// into the matching (kind, digest) group. Former protocol
	// generations had a separate MsgOpaque (type 7) for uninterpreted
	// coordinator messages; the registry subsumed it, and type 7 is
	// retired — never reuse it.
	MsgPush MsgType = iota + 1
	// MsgAck answers MsgPush (and reports request errors); payload is
	// an Ack encoding.
	MsgAck
	// MsgQuery requests an estimate; payload is a Query encoding.
	MsgQuery
	// MsgQueryResult answers MsgQuery; payload is a float64 estimate.
	MsgQueryResult
	// MsgStats requests the coordinator's introspection snapshot
	// (empty payload).
	MsgStats
	// MsgStatsResult answers MsgStats; payload is JSON.
	MsgStatsResult
)

// Minor-version-2 message types. Type 7 is the retired MsgOpaque slot
// (see MsgPush), so this block starts at 8: a decoder from the
// previous protocol generation rejects these as unknown types, which
// is exactly the compatibility contract MinorVersion documents.
const (
	// MsgPushNamed carries a stream name plus a sketch envelope (see
	// EncodePushNamed): the named-stream variant of MsgPush. A plain
	// MsgPush is equivalent to a MsgPushNamed with the empty (default)
	// stream name.
	MsgPushNamed MsgType = iota + 8
	// MsgQueryExpr requests a set-expression estimate; payload is an
	// ExprQuery encoding (a QueryExpr AST plus group filters).
	MsgQueryExpr
	// MsgQueryExprResult answers MsgQueryExpr; payload is an ExprResult
	// tree mirroring the query with per-node values and error bounds.
	MsgQueryExprResult

	maxMsgType
)

// MinorVersion is the protocol's minor revision. The frame header
// still says Version 1 — every frame either side of minor 2 emits is
// readable by a minor-1 peer or refused as an unknown message type,
// never misparsed — and minor 2 adds named streams (MsgPushNamed) and
// set-expression queries (MsgQueryExpr/MsgQueryExprResult). A minor-1
// coordinator answers those frames with an AckError/AckBadFrame-class
// refusal rather than junk, and unnamed pushes keep meaning "the
// default stream" on both sides.
const MinorVersion = 2

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgPush:
		return "push"
	case MsgAck:
		return "ack"
	case MsgQuery:
		return "query"
	case MsgQueryResult:
		return "query-result"
	case MsgStats:
		return "stats"
	case MsgStatsResult:
		return "stats-result"
	case MsgPushNamed:
		return "push-named"
	case MsgQueryExpr:
		return "query-expr"
	case MsgQueryExprResult:
		return "query-expr-result"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

func (t MsgType) valid() bool {
	// The gap between the two ranges is type 7, the retired MsgOpaque
	// slot: a frame claiming it is junk, not a protocol generation.
	return (t >= MsgPush && t <= MsgStatsResult) || (t >= MsgPushNamed && t < maxMsgType)
}

// Errors returned by the frame decoder. ErrVersion and ErrOversize are
// distinct from ErrFrame so callers can give them protocol-level
// responses (a version-mismatch ack, a hard close) instead of treating
// them as noise.
var (
	// ErrFrame reports a structurally malformed frame: bad magic,
	// unknown type, truncation, or checksum mismatch.
	ErrFrame = errors.New("wire: malformed frame")
	// ErrVersion reports a well-formed header speaking a different
	// protocol version.
	ErrVersion = errors.New("wire: protocol version mismatch")
	// ErrOversize reports a frame whose declared payload exceeds the
	// reader's limit.
	ErrOversize = errors.New("wire: frame exceeds size limit")
)

func maxPayload(limit uint32) uint32 {
	if limit == 0 {
		return DefaultMaxPayload
	}
	return limit
}

// AppendFrame appends a frame of type t wrapping payload to b and
// returns the extended slice.
func AppendFrame(b []byte, t MsgType, payload []byte) []byte {
	b = append(b, Magic0, Magic1, Version, byte(t))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

// EncodeFrame returns a fresh frame of type t wrapping payload.
func EncodeFrame(t MsgType, payload []byte) []byte {
	return AppendFrame(make([]byte, 0, HeaderSize+len(payload)), t, payload)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if err := failpoint.Inject(failpoint.WireEncode); err != nil {
		return err
	}
	_, err := w.Write(EncodeFrame(t, payload))
	return err
}

// ReadFrame reads exactly one frame from r, enforcing limit (0 selects
// DefaultMaxPayload) on the payload length. It returns the message
// type and payload, or one of ErrFrame/ErrVersion/ErrOversize. A bare
// io.EOF is returned only when the stream ends cleanly between frames;
// every mid-frame truncation — including inside the header's CRC
// trailer or exactly at the header/payload boundary — surfaces as an
// ErrFrame-wrapped error that satisfies errors.Is(err,
// io.ErrUnexpectedEOF) and never errors.Is(err, io.EOF), so callers
// cannot mistake a damaged frame for a clean goodbye.
func ReadFrame(r io.Reader, limit uint32) (MsgType, []byte, error) {
	if err := failpoint.Inject(failpoint.WireDecode); err != nil {
		return 0, nil, err
	}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: truncated header: %w", ErrFrame, err)
	}
	t, n, err := parseHeader(hdr, limit)
	if err != nil {
		return 0, nil, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			// Zero payload bytes after a complete header is still a
			// truncated frame, not a clean end of stream; wrapping the
			// bare io.EOF would let errors.Is(err, io.EOF) misclassify
			// it as a graceful hangup.
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("%w: truncated payload: %w", ErrFrame, err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[8:12]); got != want {
		return 0, nil, fmt.Errorf("%w: checksum %08x, header says %08x", ErrFrame, got, want)
	}
	return t, payload, nil
}

// DecodeFrame decodes one frame from the front of b, returning the
// remaining bytes after it. It is the buffer-oriented twin of
// ReadFrame, used by the fuzz target and anywhere frames arrive
// pre-buffered.
func DecodeFrame(b []byte, limit uint32) (t MsgType, payload, rest []byte, err error) {
	if len(b) < HeaderSize {
		return 0, nil, nil, fmt.Errorf("%w: %d bytes, need %d-byte header", ErrFrame, len(b), HeaderSize)
	}
	var hdr [HeaderSize]byte
	copy(hdr[:], b)
	t, n, err := parseHeader(hdr, limit)
	if err != nil {
		return 0, nil, nil, err
	}
	if uint32(len(b)-HeaderSize) < n {
		return 0, nil, nil, fmt.Errorf("%w: payload truncated at %d of %d bytes", ErrFrame, len(b)-HeaderSize, n)
	}
	payload = b[HeaderSize : HeaderSize+int(n)]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[8:12]); got != want {
		return 0, nil, nil, fmt.Errorf("%w: checksum %08x, header says %08x", ErrFrame, got, want)
	}
	return t, payload, b[HeaderSize+int(n):], nil
}

func parseHeader(hdr [HeaderSize]byte, limit uint32) (MsgType, uint32, error) {
	if hdr[0] != Magic0 || hdr[1] != Magic1 {
		return 0, 0, fmt.Errorf("%w: bad magic %q", ErrFrame, hdr[:2])
	}
	if hdr[2] != Version {
		return 0, 0, fmt.Errorf("%w: peer speaks version %d, this side speaks %d", ErrVersion, hdr[2], Version)
	}
	t := MsgType(hdr[3])
	if !t.valid() {
		return 0, 0, fmt.Errorf("%w: unknown message type %d", ErrFrame, hdr[3])
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxPayload(limit) {
		return 0, 0, fmt.Errorf("%w: payload %d > limit %d", ErrOversize, n, maxPayload(limit))
	}
	return t, n, nil
}

// AckCode classifies the coordinator's response to a message.
type AckCode uint8

const (
	// AckOK: the message was absorbed.
	// ackclass: success
	AckOK AckCode = iota
	// AckVersionMismatch: the peer spoke a different protocol version.
	// ackclass: permanent
	AckVersionMismatch
	// AckSeedMismatch: the sketch's coordination seed (or wider
	// configuration) is incompatible with what the coordinator
	// requires — the uncoordinated-merge failure the paper's shared
	// seed exists to prevent, surfaced as a typed refusal.
	// ackclass: permanent
	AckSeedMismatch
	// AckCorrupt: the payload failed sketch-level validation.
	// ackclass: permanent
	AckCorrupt
	// AckUnsupported: the request is valid but this coordinator cannot
	// serve it (e.g. a sketch kind with no registered decoder in the
	// server's build).
	// ackclass: permanent
	AckUnsupported
	// AckError: any other server-side failure; Detail explains. The
	// coordinator failed, not the message — a restarted or recovered
	// coordinator may accept the retry.
	// ackclass: transient
	AckError
	// AckBadFrame: the frame itself failed wire-level validation (bad
	// magic, truncation, checksum mismatch) — the bytes were damaged
	// in transit, not the message, so the sender may retry the same
	// payload. Distinct from AckCorrupt, which reports a well-framed
	// payload whose sketch-level decoding failed and is permanent.
	// ackclass: transient
	AckBadFrame
	// AckKindMismatch: the pushed sketch kind differs from the one
	// this coordinator is pinned to (server.Config.RequireKind) — a
	// site running the wrong backend must hear a typed, permanent
	// refusal rather than silently forming its own group.
	// ackclass: permanent
	AckKindMismatch

	numAckCodes
)

// String implements fmt.Stringer.
func (c AckCode) String() string {
	switch c {
	case AckOK:
		return "ok"
	case AckVersionMismatch:
		return "version-mismatch"
	case AckSeedMismatch:
		return "seed-mismatch"
	case AckCorrupt:
		return "corrupt"
	case AckUnsupported:
		return "unsupported"
	case AckError:
		return "error"
	case AckBadFrame:
		return "bad-frame"
	case AckKindMismatch:
		return "kind-mismatch"
	default:
		return fmt.Sprintf("AckCode(%d)", uint8(c))
	}
}

// maxAckDetail bounds the human-readable detail string on decode.
const maxAckDetail = 4096

// Ack is the payload of a MsgAck frame.
type Ack struct {
	Code   AckCode
	Detail string
}

// Encode serializes the ack: code byte, uvarint detail length, detail.
func (a Ack) Encode() []byte {
	d := a.Detail
	if len(d) > maxAckDetail {
		d = d[:maxAckDetail]
	}
	b := make([]byte, 0, 2+len(d))
	b = append(b, byte(a.Code))
	b = binary.AppendUvarint(b, uint64(len(d)))
	return append(b, d...)
}

// DecodeAck parses an Ack payload.
func DecodeAck(b []byte) (Ack, error) {
	if len(b) < 2 {
		return Ack{}, fmt.Errorf("%w: ack payload %d bytes", ErrFrame, len(b))
	}
	code := AckCode(b[0])
	if code >= numAckCodes {
		return Ack{}, fmt.Errorf("%w: unknown ack code %d", ErrFrame, b[0])
	}
	n, k := binary.Uvarint(b[1:])
	if k <= 0 || n > maxAckDetail {
		return Ack{}, fmt.Errorf("%w: bad ack detail length", ErrFrame)
	}
	rest := b[1+k:]
	if uint64(len(rest)) != n {
		return Ack{}, fmt.Errorf("%w: ack detail %d bytes, declared %d", ErrFrame, len(rest), n)
	}
	return Ack{Code: code, Detail: string(rest)}, nil
}

// QueryKind selects which estimate a MsgQuery asks for.
type QueryKind uint8

const (
	// QueryDistinct asks for the distinct-count (F0) estimate of the
	// union.
	QueryDistinct QueryKind = iota
	// QuerySum asks for the SumDistinct estimate.
	QuerySum
	// QueryCountWhere asks for the predicate-count estimate.
	QueryCountWhere
	// QuerySumWhere asks for the predicate-sum estimate.
	QuerySumWhere

	numQueryKinds
)

// String implements fmt.Stringer.
func (k QueryKind) String() string {
	switch k {
	case QueryDistinct:
		return "distinct"
	case QuerySum:
		return "sum"
	case QueryCountWhere:
		return "count-where"
	case QuerySumWhere:
		return "sum-where"
	default:
		return fmt.Sprintf("QueryKind(%d)", uint8(k))
	}
}

// PredKind selects the predicate family a query carries. Predicates
// must travel the wire, so the protocol offers closed forms rather
// than arbitrary closures; both cover the repository's experiment
// predicates (label classes and ranges).
type PredKind uint8

const (
	// PredNone: no predicate (QueryDistinct / QuerySum).
	PredNone PredKind = iota
	// PredMod selects labels with label % A == B.
	PredMod
	// PredRange selects labels with A <= label <= B.
	PredRange

	numPredKinds
)

// Query flag bits (byte 1 of the encoding).
const (
	queryFlagSeed = 1 << 0
	queryFlagKind = 1 << 1
)

const queryEncodedLen = 1 + 1 + 8 + 1 + 1 + 8 + 8

// Query is the payload of a MsgQuery frame.
type Query struct {
	Kind QueryKind
	// HasSeed selects the merge group by coordination seed; without
	// it the coordinator answers from its sole group (and refuses if
	// it holds several, since "the union" would be ambiguous).
	HasSeed bool
	Seed    uint64
	// HasKind restricts the query to groups of one sketch kind
	// (SketchKind is a sketch.Kind tag) — needed when several
	// backends share a coordination seed and the seed alone is
	// ambiguous.
	HasKind    bool
	SketchKind uint8
	Pred       PredKind
	// A and B parameterize Pred (modulus/residue, or range bounds).
	A, B uint64
}

// Encode serializes the query to its fixed-length wire form.
func (q Query) Encode() []byte {
	b := make([]byte, 0, queryEncodedLen)
	b = append(b, byte(q.Kind))
	var flags byte
	if q.HasSeed {
		flags |= queryFlagSeed
	}
	if q.HasKind {
		flags |= queryFlagKind
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint64(b, q.Seed)
	var kind byte
	if q.HasKind {
		kind = q.SketchKind
	}
	b = append(b, kind)
	b = append(b, byte(q.Pred))
	b = binary.LittleEndian.AppendUint64(b, q.A)
	b = binary.LittleEndian.AppendUint64(b, q.B)
	return b
}

// DecodeQuery parses a Query payload.
func DecodeQuery(b []byte) (Query, error) {
	if len(b) != queryEncodedLen {
		return Query{}, fmt.Errorf("%w: query payload %d bytes, want %d", ErrFrame, len(b), queryEncodedLen)
	}
	q := Query{
		Kind:       QueryKind(b[0]),
		HasSeed:    b[1]&queryFlagSeed != 0,
		Seed:       binary.LittleEndian.Uint64(b[2:10]),
		HasKind:    b[1]&queryFlagKind != 0,
		SketchKind: b[10],
		Pred:       PredKind(b[11]),
		A:          binary.LittleEndian.Uint64(b[12:20]),
		B:          binary.LittleEndian.Uint64(b[20:28]),
	}
	if q.Kind >= numQueryKinds {
		return Query{}, fmt.Errorf("%w: unknown query kind %d", ErrFrame, b[0])
	}
	if b[1]&^(queryFlagSeed|queryFlagKind) != 0 {
		return Query{}, fmt.Errorf("%w: unknown query flags %#x", ErrFrame, b[1])
	}
	if !q.HasKind && q.SketchKind != 0 {
		// The encoding is canonical: an absent field must be zero.
		return Query{}, fmt.Errorf("%w: sketch kind %d without the kind flag", ErrFrame, b[10])
	}
	if q.Pred >= numPredKinds {
		return Query{}, fmt.Errorf("%w: unknown predicate kind %d", ErrFrame, b[11])
	}
	return q, nil
}

// Predicate materializes the query's predicate as a label function.
// Predicate-less queries yield a nil function; a predicate query with
// no predicate (or an undefined one, like a zero modulus) is an error.
func (q Query) Predicate() (func(uint64) bool, error) {
	needsPred := q.Kind == QueryCountWhere || q.Kind == QuerySumWhere
	switch q.Pred {
	case PredNone:
		if needsPred {
			return nil, fmt.Errorf("%w: %s query without a predicate", ErrFrame, q.Kind)
		}
		return nil, nil
	case PredMod:
		if q.A == 0 {
			return nil, fmt.Errorf("%w: modulus 0", ErrFrame)
		}
		m, r := q.A, q.B
		return func(label uint64) bool { return label%m == r }, nil
	case PredRange:
		lo, hi := q.A, q.B
		if lo > hi {
			return nil, fmt.Errorf("%w: empty range [%d, %d]", ErrFrame, lo, hi)
		}
		return func(label uint64) bool { return lo <= label && label <= hi }, nil
	default:
		return nil, fmt.Errorf("%w: unknown predicate kind %d", ErrFrame, q.Pred)
	}
}

// EncodeQueryResult serializes an estimate for a MsgQueryResult frame.
func EncodeQueryResult(v float64) []byte {
	return binary.LittleEndian.AppendUint64(make([]byte, 0, 8), math.Float64bits(v))
}

// DecodeQueryResult parses a MsgQueryResult payload.
func DecodeQueryResult(b []byte) (float64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("%w: query result %d bytes, want 8", ErrFrame, len(b))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}
