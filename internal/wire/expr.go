package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Named streams and set-expression queries (protocol minor version 2).
//
// The paper's coordinator merges everything compatible into one group
// and answers union queries; its successors (Cohen's coordinated-
// sample estimators, the MTS set-expression sketch) show the same
// coordinated samples answer a whole algebra. This file is the wire
// half of that upgrade: pushes may name the stream they belong to, so
// the coordinator can keep per-stream groups, and queries may carry a
// recursive set expression — Union | Intersect | Diff | Jaccard over
// stream-name leaves — answered with a result tree carrying per-node
// estimates and error bounds.

const (
	// MaxStreamName bounds a stream name's encoded length. Names are
	// group-key components, not documents.
	MaxStreamName = 255
	// MaxExprDepth bounds the QueryExpr tree height on decode (and the
	// recursive evaluator server-side): deep enough for any real
	// expression, shallow enough that a hostile frame cannot win a
	// stack-depth contest with the decoder.
	MaxExprDepth = 32
	// maxExprNodes bounds the total node count on decode, so a frame
	// cannot be wide instead of deep.
	maxExprNodes = 4096
)

// validStreamName reports whether s can travel as a stream name. The
// empty name is the default stream and is valid everywhere a name is.
func validStreamName(s string) error {
	if len(s) > MaxStreamName {
		// allocflow:cold an oversized name refuses the frame, it is not streamed
		return fmt.Errorf("%w: stream name %d bytes, limit %d", ErrFrame, len(s), MaxStreamName)
	}
	return nil
}

// ValidStreamName reports whether s can travel as a stream name (the
// exported form for callers accepting names outside the codec, e.g.
// the coordinator's in-process absorb path).
func ValidStreamName(s string) error { return validStreamName(s) }

// EncodePushNamed builds a MsgPushNamed payload: uvarint name length,
// name bytes, then the sketch envelope verbatim. An empty stream name
// is legal and means the default stream — the same group a plain
// MsgPush of the envelope would reach.
func EncodePushNamed(stream string, envelope []byte) ([]byte, error) {
	if err := validStreamName(stream); err != nil {
		return nil, err
	}
	b := make([]byte, 0, 1+len(stream)+len(envelope))
	b = binary.AppendUvarint(b, uint64(len(stream)))
	b = append(b, stream...)
	return append(b, envelope...), nil
}

// DecodePushNamed parses a MsgPushNamed payload into its stream name
// and sketch envelope. The envelope is a sub-slice of b, not a copy.
func DecodePushNamed(b []byte) (stream string, envelope []byte, err error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > MaxStreamName {
		return "", nil, fmt.Errorf("%w: bad stream name length", ErrFrame)
	}
	rest := b[k:]
	if uint64(len(rest)) < n {
		return "", nil, fmt.Errorf("%w: stream name %d bytes, declared %d", ErrFrame, len(rest), n)
	}
	return string(rest[:n]), rest[n:], nil
}

// ExprOp is a QueryExpr node's operator.
type ExprOp uint8

const (
	// OpLeaf names one stream; the node's value is that stream's
	// distinct-count estimate.
	OpLeaf ExprOp = iota
	// OpUnion estimates |A ∪ B| — the paper's original query, now one
	// operator among four.
	OpUnion
	// OpIntersect estimates |A ∩ B|.
	OpIntersect
	// OpDiff estimates |A \ B|.
	OpDiff
	// OpJaccard estimates |A∩B| / |A∪B| ∈ [0, 1]. Its value is a
	// ratio, not a set, so it is only legal at the expression root.
	OpJaccard

	numExprOps
)

// String implements fmt.Stringer.
func (op ExprOp) String() string {
	switch op {
	case OpLeaf:
		return "leaf"
	case OpUnion:
		return "union"
	case OpIntersect:
		return "intersect"
	case OpDiff:
		return "diff"
	case OpJaccard:
		return "jaccard"
	default:
		return fmt.Sprintf("ExprOp(%d)", uint8(op))
	}
}

// QueryExpr is one node of a set-expression AST: a stream-name leaf,
// or a binary operator over two subtrees.
type QueryExpr struct {
	Op ExprOp
	// Stream is the leaf's stream name (OpLeaf only); "" names the
	// default stream.
	Stream string
	// Left and Right are the operands (operator nodes only).
	Left, Right *QueryExpr
}

// Leaf returns a leaf node for the named stream.
func Leaf(stream string) *QueryExpr { return &QueryExpr{Op: OpLeaf, Stream: stream} }

// Union returns the |l ∪ r| node.
func Union(l, r *QueryExpr) *QueryExpr { return &QueryExpr{Op: OpUnion, Left: l, Right: r} }

// Intersect returns the |l ∩ r| node.
func Intersect(l, r *QueryExpr) *QueryExpr { return &QueryExpr{Op: OpIntersect, Left: l, Right: r} }

// Diff returns the |l \ r| node.
func Diff(l, r *QueryExpr) *QueryExpr { return &QueryExpr{Op: OpDiff, Left: l, Right: r} }

// Jaccard returns the Jaccard-similarity node (root only).
func Jaccard(l, r *QueryExpr) *QueryExpr { return &QueryExpr{Op: OpJaccard, Left: l, Right: r} }

// String renders the expression in the grammar cmd/unionpush parses:
// `|` union, `&` intersect, `-` diff, `~` Jaccard, parenthesized
// subtrees, bare words or "quoted" strings as stream names.
func (e *QueryExpr) String() string {
	if e == nil {
		return "<nil>"
	}
	if e.Op == OpLeaf {
		if e.Stream == "" {
			return `""`
		}
		return e.Stream
	}
	var op string
	switch e.Op {
	case OpUnion:
		op = "|"
	case OpIntersect:
		op = "&"
	case OpDiff:
		op = "-"
	case OpJaccard:
		op = "~"
	default:
		op = e.Op.String()
	}
	return fmt.Sprintf("(%s %s %s)", e.Left, op, e.Right)
}

// Validate checks the tree's structural contract: known operators,
// legal stream names, leaves with no children and operators with two,
// depth within MaxExprDepth, and Jaccard only at the root. Decoding
// enforces the same rules; Validate lets a client refuse a bad tree
// before spending a round trip on it.
func (e *QueryExpr) Validate() error {
	_, err := e.validate(1, true)
	return err
}

func (e *QueryExpr) validate(depth int, root bool) (nodes int, err error) {
	if e == nil {
		return 0, fmt.Errorf("%w: nil expression node", ErrFrame)
	}
	if depth > MaxExprDepth {
		return 0, fmt.Errorf("%w: expression deeper than %d", ErrFrame, MaxExprDepth)
	}
	switch e.Op {
	case OpLeaf:
		if e.Left != nil || e.Right != nil {
			return 0, fmt.Errorf("%w: leaf node with children", ErrFrame)
		}
		if err := validStreamName(e.Stream); err != nil {
			return 0, err
		}
		return 1, nil
	case OpUnion, OpIntersect, OpDiff, OpJaccard:
		if e.Op == OpJaccard && !root {
			// A Jaccard value is a ratio in [0,1], not a set — it has no
			// meaning as an operand of a set operator.
			return 0, fmt.Errorf("%w: jaccard below the expression root", ErrFrame)
		}
		if e.Stream != "" {
			return 0, fmt.Errorf("%w: operator node with a stream name", ErrFrame)
		}
		ln, err := e.Left.validate(depth+1, false)
		if err != nil {
			return 0, err
		}
		rn, err := e.Right.validate(depth+1, false)
		if err != nil {
			return 0, err
		}
		return ln + rn + 1, nil
	default:
		return 0, fmt.Errorf("%w: unknown expression operator %d", ErrFrame, uint8(e.Op))
	}
}

// Leaves appends the expression's stream names, left to right
// (duplicates included), and returns the extended slice.
func (e *QueryExpr) Leaves(dst []string) []string {
	if e == nil {
		return dst
	}
	if e.Op == OpLeaf {
		return append(dst, e.Stream)
	}
	return e.Right.Leaves(e.Left.Leaves(dst))
}

// appendExpr serializes the node preorder: op byte, then for a leaf
// the uvarint-prefixed stream name, for an operator the two subtrees.
func (e *QueryExpr) appendExpr(b []byte) []byte {
	b = append(b, byte(e.Op))
	if e.Op == OpLeaf {
		b = binary.AppendUvarint(b, uint64(len(e.Stream)))
		return append(b, e.Stream...)
	}
	return e.Right.appendExpr(e.Left.appendExpr(b))
}

// decodeExpr is the recursive half of DecodeQueryExpr; nodes is the
// running node budget.
func decodeExpr(b []byte, depth int, nodes *int) (*QueryExpr, []byte, error) {
	if depth > MaxExprDepth {
		return nil, nil, fmt.Errorf("%w: expression deeper than %d", ErrFrame, MaxExprDepth)
	}
	if *nodes++; *nodes > maxExprNodes {
		return nil, nil, fmt.Errorf("%w: expression wider than %d nodes", ErrFrame, maxExprNodes)
	}
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("%w: truncated expression", ErrFrame)
	}
	op := ExprOp(b[0])
	b = b[1:]
	switch op {
	case OpLeaf:
		n, k := binary.Uvarint(b)
		if k <= 0 || n > MaxStreamName {
			return nil, nil, fmt.Errorf("%w: bad stream name length", ErrFrame)
		}
		b = b[k:]
		if uint64(len(b)) < n {
			return nil, nil, fmt.Errorf("%w: truncated stream name", ErrFrame)
		}
		return &QueryExpr{Op: OpLeaf, Stream: string(b[:n])}, b[n:], nil
	case OpUnion, OpIntersect, OpDiff, OpJaccard:
		if op == OpJaccard && depth > 1 {
			return nil, nil, fmt.Errorf("%w: jaccard below the expression root", ErrFrame)
		}
		left, rest, err := decodeExpr(b, depth+1, nodes)
		if err != nil {
			return nil, nil, err
		}
		right, rest, err := decodeExpr(rest, depth+1, nodes)
		if err != nil {
			return nil, nil, err
		}
		return &QueryExpr{Op: op, Left: left, Right: right}, rest, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown expression operator %d", ErrFrame, uint8(op))
	}
}

// ExprQuery flag bits (byte 0 of the encoding); they mirror Query's.
const (
	exprFlagSeed = 1 << 0
	exprFlagKind = 1 << 1
)

// ExprQuery is the payload of a MsgQueryExpr frame: the expression
// plus the same group filters a flat Query carries. Every leaf
// resolves within one (kind, config digest) family — set algebra is
// only defined between coordinated siblings — so the filters select
// the family when the coordinator holds several.
type ExprQuery struct {
	// HasSeed/Seed filter candidate groups by coordination seed.
	HasSeed bool
	Seed    uint64
	// HasKind/SketchKind filter candidate groups by sketch kind tag.
	HasKind    bool
	SketchKind uint8
	// Expr is the expression tree; it must Validate.
	Expr *QueryExpr
}

// Encode serializes the query: flags, seed, kind (canonical zero when
// absent), then the expression preorder.
func (q ExprQuery) Encode() ([]byte, error) {
	if err := q.Expr.Validate(); err != nil {
		return nil, err
	}
	b := make([]byte, 0, 16)
	var flags byte
	if q.HasSeed {
		flags |= exprFlagSeed
	}
	if q.HasKind {
		flags |= exprFlagKind
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint64(b, q.Seed)
	var kind byte
	if q.HasKind {
		kind = q.SketchKind
	}
	b = append(b, kind)
	return q.Expr.appendExpr(b), nil
}

// DecodeExprQuery parses a MsgQueryExpr payload, enforcing the
// expression depth/width bounds and the canonical-zero rule for
// absent fields. The whole payload must be consumed.
func DecodeExprQuery(b []byte) (ExprQuery, error) {
	if len(b) < 10 {
		return ExprQuery{}, fmt.Errorf("%w: expr query payload %d bytes", ErrFrame, len(b))
	}
	q := ExprQuery{
		HasSeed:    b[0]&exprFlagSeed != 0,
		HasKind:    b[0]&exprFlagKind != 0,
		Seed:       binary.LittleEndian.Uint64(b[1:9]),
		SketchKind: b[9],
	}
	if b[0]&^(exprFlagSeed|exprFlagKind) != 0 {
		return ExprQuery{}, fmt.Errorf("%w: unknown expr query flags %#x", ErrFrame, b[0])
	}
	if !q.HasSeed && q.Seed != 0 {
		return ExprQuery{}, fmt.Errorf("%w: seed %d without the seed flag", ErrFrame, q.Seed)
	}
	if !q.HasKind && q.SketchKind != 0 {
		return ExprQuery{}, fmt.Errorf("%w: sketch kind %d without the kind flag", ErrFrame, b[9])
	}
	nodes := 0
	expr, rest, err := decodeExpr(b[10:], 1, &nodes)
	if err != nil {
		return ExprQuery{}, err
	}
	if len(rest) != 0 {
		return ExprQuery{}, fmt.Errorf("%w: %d trailing bytes after expression", ErrFrame, len(rest))
	}
	q.Expr = expr
	return q, nil
}

// ExprResult is one node of a MsgQueryExprResult payload: the query
// tree mirrored back with a per-node estimate and error bound, so a
// caller can see not just the final answer but how each intermediate
// set was sized and how trustworthy each level is.
type ExprResult struct {
	Op ExprOp
	// Stream echoes the leaf's stream name.
	Stream string
	// Value is the node's estimate: a cardinality for leaf/set nodes,
	// a ratio in [0, 1] for a Jaccard root.
	Value float64
	// ErrBound is the estimator's relative standard error bound for
	// this node's value, when the backing kind reports one (0 means
	// unknown). For intersections and differences the bound degrades
	// with selectivity — a small result carved out of large inputs is
	// estimated from proportionally few coordinated samples.
	ErrBound float64
	// Left and Right mirror the query's operand subtrees.
	Left, Right *ExprResult
}

// appendResult serializes the node preorder: op, leaf name, value and
// bound as float64 bits, then the subtrees.
func (r *ExprResult) appendResult(b []byte) []byte {
	b = append(b, byte(r.Op))
	if r.Op == OpLeaf {
		b = binary.AppendUvarint(b, uint64(len(r.Stream)))
		b = append(b, r.Stream...)
	}
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Value))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.ErrBound))
	if r.Op == OpLeaf {
		return b
	}
	return r.Right.appendResult(r.Left.appendResult(b))
}

// EncodeExprResult serializes a result tree for a MsgQueryExprResult
// frame.
func EncodeExprResult(r *ExprResult) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("%w: nil expr result", ErrFrame)
	}
	return r.appendResult(make([]byte, 0, 64)), nil
}

// DecodeExprResult parses a MsgQueryExprResult payload; the whole
// payload must be consumed.
func DecodeExprResult(b []byte) (*ExprResult, error) {
	nodes := 0
	r, rest, err := decodeResult(b, 1, &nodes)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after expr result", ErrFrame, len(rest))
	}
	return r, nil
}

func decodeResult(b []byte, depth int, nodes *int) (*ExprResult, []byte, error) {
	if depth > MaxExprDepth {
		return nil, nil, fmt.Errorf("%w: expr result deeper than %d", ErrFrame, MaxExprDepth)
	}
	if *nodes++; *nodes > maxExprNodes {
		return nil, nil, fmt.Errorf("%w: expr result wider than %d nodes", ErrFrame, maxExprNodes)
	}
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("%w: truncated expr result", ErrFrame)
	}
	op := ExprOp(b[0])
	if op >= numExprOps {
		return nil, nil, fmt.Errorf("%w: unknown expression operator %d", ErrFrame, b[0])
	}
	if op == OpJaccard && depth > 1 {
		return nil, nil, fmt.Errorf("%w: jaccard below the expr result root", ErrFrame)
	}
	b = b[1:]
	r := &ExprResult{Op: op}
	if op == OpLeaf {
		n, k := binary.Uvarint(b)
		if k <= 0 || n > MaxStreamName {
			return nil, nil, fmt.Errorf("%w: bad stream name length", ErrFrame)
		}
		b = b[k:]
		if uint64(len(b)) < n {
			return nil, nil, fmt.Errorf("%w: truncated stream name", ErrFrame)
		}
		r.Stream = string(b[:n])
		b = b[n:]
	}
	if len(b) < 16 {
		return nil, nil, fmt.Errorf("%w: truncated expr result values", ErrFrame)
	}
	r.Value = math.Float64frombits(binary.LittleEndian.Uint64(b[:8]))
	r.ErrBound = math.Float64frombits(binary.LittleEndian.Uint64(b[8:16]))
	b = b[16:]
	if op == OpLeaf {
		return r, b, nil
	}
	var err error
	if r.Left, b, err = decodeResult(b, depth+1, nodes); err != nil {
		return nil, nil, err
	}
	if r.Right, b, err = decodeResult(b, depth+1, nodes); err != nil {
		return nil, nil, err
	}
	return r, b, nil
}
